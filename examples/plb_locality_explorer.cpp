/**
 * @file
 * PLB locality explorer: how program locality turns into PLB hits and
 * bandwidth savings (the mechanism behind Figures 5-7).
 *
 * Sweeps the working-set size of a scanning workload over a 1 GB
 * PC_X32 ORAM and reports PLB hit rate, average tree accesses per
 * request (the "page-table-walk depth"), and KB moved per request.
 *
 *   $ ./plb_locality_explorer
 */
#include <iomanip>
#include <iostream>

#include "core/oram_system.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace froram;

int
main()
{
    std::cout
        << "PC_X32 over a 1 GB ORAM, 64 KB direct-mapped PLB.\n"
        << "Each PosMap block covers X=32 consecutive data blocks\n"
        << "(2 KB); the PLB holds 1024 of them (2 MB of coverage at\n"
        << "the first PosMap level).\n\n";

    TextTable table({"working_set", "plb_hit_pct", "tree_accesses_per_req",
                     "KB_per_req", "posmap_KB_per_req"});
    for (u64 ws_kb : {256, 1024, 2048, 8192, 65536, 262144}) {
        OramSystemConfig cfg;
        cfg.capacityBytes = u64{1} << 30;
        cfg.plbBytes = 64 * 1024;
        cfg.storage = StorageMode::Null;
        OramSystem sys(SchemeId::PlbCompressed, cfg);
        auto& fe = static_cast<UnifiedFrontend&>(sys.frontend());

        const u64 ws_blocks = ws_kb * 1024 / 64;
        Xoshiro256 rng(1);
        // Warm, then measure: random accesses within the working set.
        for (int i = 0; i < 30000; ++i)
            fe.access(rng.below(ws_blocks), false);
        const u64 h0 = fe.plb().stats().get("hits");
        const u64 m0 = fe.plb().stats().get("misses");
        const u64 b0 = fe.stats().get("backendAccesses");
        const u64 by0 = fe.stats().get("bytesMoved");
        const u64 pby0 = fe.stats().get("posmapBytes");
        const int reqs = 30000;
        for (int i = 0; i < reqs; ++i)
            fe.access(rng.below(ws_blocks), false);
        const double hits =
            static_cast<double>(fe.plb().stats().get("hits") - h0);
        const double misses =
            static_cast<double>(fe.plb().stats().get("misses") - m0);

        table.newRow();
        table.cell(std::to_string(ws_kb) + "KB");
        table.cell(100.0 * hits / (hits + misses), 1);
        table.cell(static_cast<double>(
                       fe.stats().get("backendAccesses") - b0) /
                       reqs,
                   3);
        table.cell(static_cast<double>(fe.stats().get("bytesMoved") -
                                       by0) /
                       reqs / 1024.0,
                   1);
        table.cell(static_cast<double>(fe.stats().get("posmapBytes") -
                                       pby0) /
                       reqs / 1024.0,
                   1);
    }
    table.print(std::cout);

    std::cout << "\nReading the table: while the working set fits the\n"
              << "PLB's coverage, a request costs ~1 tree access (the\n"
              << "data block itself). As locality degrades, the walk\n"
              << "deepens toward the full Recursive ORAM cost -- the\n"
              << "overhead the PLB exists to remove.\n";
    return 0;
}
