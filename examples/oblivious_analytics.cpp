/**
 * @file
 * Oblivious analytics demo: a tiny orders/customers warehouse hosted in
 * untrusted memory, queried through the src/ds/ layer without leaking
 * anything beyond public query shape.
 *
 * The schema is the classic two-table join:
 *
 *   customers : ObliviousMap   customer_id -> profile        (point DS)
 *   orders    : ObliviousIndex order_day   -> (fk, amount)   (range DS)
 *
 * and the demo runs "revenue for days [d, d+w) joined with customer
 * tier" as an ObliviousHashJoin. Every query of width w costs exactly
 * accessesPerQuery(w) ORAM accesses — the demo prints the prediction
 * next to the measured count for selective, empty, and full ranges, so
 * you can watch match count, hit rate, and key values drop out of the
 * adversary's view.
 *
 *   $ ./oblivious_analytics                  # flat RAM (default)
 *   $ ./oblivious_analytics --backend=dram   # DRAM-timed medium
 */
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/oram_system.hpp"
#include "ds/oblivious_index.hpp"
#include "ds/oblivious_join.hpp"
#include "ds/oblivious_map.hpp"
#include "util/rng.hpp"

using namespace froram;

namespace {

constexpr u32 kValueBytes = 16;
constexpr u64 kCustomerBuckets = 1024;
constexpr Addr kOrdersBase = kCustomerBuckets;
constexpr u64 kOrderBlocks = 512;

u64
accessCount(const OramSystem& sys)
{
    return sys.frontend().stats().get("accesses");
}

/** Order value layout: fk (8 B LE) + amount (4 B LE) + padding. */
void
packOrder(u8* out, u64 fk, u32 amount)
{
    std::memset(out, 0, kValueBytes);
    for (int b = 0; b < 8; ++b)
        out[b] = static_cast<u8>(fk >> (8 * b));
    for (int b = 0; b < 4; ++b)
        out[8 + b] = static_cast<u8>(amount >> (8 * b));
}

u32
orderAmount(const u8* val)
{
    u32 a = 0;
    for (int b = 0; b < 4; ++b)
        a |= static_cast<u32>(val[8 + b]) << (8 * b);
    return a;
}

} // namespace

int
main(int argc, char** argv)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 20;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = StorageBackendKind::Flat;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--backend=dram")
            cfg.backend = StorageBackendKind::TimedDram;
    }
    OramSystem sys(SchemeId::PlbCompressed, cfg);

    ObliviousMapConfig mcfg;
    mcfg.valueBytes = kValueBytes;
    ObliviousMap customers(sys.frontend(), 0, kCustomerBuckets, mcfg);

    ObliviousIndexConfig icfg;
    icfg.valueBytes = kValueBytes;
    icfg.deltaCapacity = 32;
    ObliviousIndex orders(sys.frontend(), kOrdersBase, kOrderBlocks,
                          icfg);
    ObliviousHashJoin join(orders, customers);

    // ------------------------------------------------------ load data
    Xoshiro256 rng(2026);
    std::cout << "Loading 200 customers + 600 orders...\n";
    u8 val[kValueBytes];
    for (u64 c = 0; c < 200; ++c) {
        std::memset(val, 0, sizeof(val));
        val[0] = static_cast<u8>(c % 3); // tier
        customers.put(1000 + c, val);
    }
    std::vector<u64> days;
    std::vector<u8> ovals;
    u64 day = 0;
    for (u64 o = 0; o < 600; ++o) {
        day += 1 + rng.below(3); // strictly increasing order keys
        days.push_back(day);
        ovals.resize(ovals.size() + kValueBytes);
        packOrder(ovals.data() + o * kValueBytes,
                  1000 + rng.below(240), // some fks dangle: no match
                  10 + static_cast<u32>(rng.below(90)));
    }
    orders.bulkLoad(days.data(), ovals.data(), days.size());

    // --------------------------------------------------- point lookup
    std::cout << "\nPoint lookups (every op costs exactly "
              << ObliviousMap::kAccessesPerOp << " accesses):\n";
    for (const u64 cid : {u64{1000}, u64{1099}, u64{4242}}) {
        const u64 before = accessCount(sys);
        const bool hit = customers.get(cid, val);
        std::cout << "  get(" << cid << ") -> "
                  << (hit ? "hit " : "miss") << "   ["
                  << accessCount(sys) - before << " accesses]\n";
    }

    // --------------------------------------------------- range + join
    const u32 width = 8;
    std::cout << "\nJoin queries of width " << width
              << " (predicted cost " << join.accessesPerQuery(width)
              << " accesses each, independent of matches):\n";
    JoinOutput out;
    const u64 los[] = {days[5], days[300], day + 1000};
    const char* labels[] = {"dense range ", "mid range   ",
                            "empty range "};
    for (int q = 0; q < 3; ++q) {
        const u64 before = accessCount(sys);
        const u64 matched = join.run(los[q], width, out);
        u64 revenue = 0;
        for (u32 r = 0; r < width; ++r)
            if (out.matched[r])
                revenue += orderAmount(out.indexValue.data() +
                                       size_t{r} * kValueBytes);
        std::cout << "  " << labels[q] << "lo=" << los[q] << ": "
                  << out.rows << " rows, " << matched
                  << " joined, revenue " << revenue << "   ["
                  << accessCount(sys) - before << " accesses]\n";
    }

    std::cout << "\nThe bracketed counts never change with the data: "
                 "only the public width does.\n";
    return 0;
}
