/**
 * @file
 * Active-adversary demonstration (Sections 2 and 6): a data center
 * tampers with DRAM in four different ways; PMMAC detects each attack
 * the moment tampered state reaches the processor, at 1/68th the hash
 * bandwidth of a Merkle tree.
 *
 *   $ ./integrity_attack_demo
 */
#include <iostream>

#include "core/unified_frontend.hpp"
#include "integrity/adversary.hpp"

using namespace froram;

namespace {

UnifiedFrontend*
makeOram(AesCtrCipher& cipher)
{
    UnifiedFrontendConfig c;
    c.numBlocks = 8192;
    c.blockBytes = 64;
    c.format = PosMapFormat::Kind::Compressed;
    c.integrity = true;
    c.plb.capacityBytes = 4 * 1024;
    c.onChipTargetBytes = 1024;
    c.storage = StorageMode::Encrypted;
    return new UnifiedFrontend(c, &cipher, nullptr);
}

bool
scanDetects(UnifiedFrontend& fe)
{
    try {
        for (Addr a = 0; a < 2048; ++a)
            fe.access(a, false);
    } catch (const IntegrityViolation& e) {
        std::cout << "    DETECTED: " << e.what() << "\n";
        return true;
    }
    return false;
}

} // namespace

int
main()
{
    AesCtrCipher cipher;
    int failures = 0;

    std::cout << "Attack 1: flip one bit of a live block's ciphertext\n";
    {
        std::unique_ptr<UnifiedFrontend> fe(makeOram(cipher));
        for (Addr a = 0; a < 2048; ++a)
            fe->access(a, a % 3 == 0);
        auto& st =
            static_cast<EncryptedTreeStorage&>(fe->backend().storage());
        Adversary adv(&st, fe->backend().params());
        adv.flipBitInLiveSlotPayload();
        failures += scanDetects(*fe) ? 0 : 1;
    }

    std::cout << "Attack 2: replay a stale (once-authentic) bucket\n";
    {
        std::unique_ptr<UnifiedFrontend> fe(makeOram(cipher));
        for (Addr a = 0; a < 2048; ++a)
            fe->access(a, true);
        auto& st =
            static_cast<EncryptedTreeStorage&>(fe->backend().storage());
        Adversary adv(&st, fe->backend().params());
        // Snapshot the top of the tree, let the system evolve, then
        // roll those buckets back wholesale.
        std::vector<std::pair<u64, std::vector<u8>>> stale;
        for (u64 id = 0; id < 31; ++id)
            if (st.hasImage(id))
                stale.emplace_back(id, adv.snapshot(id));
        for (Addr a = 0; a < 2048; ++a)
            fe->access(a, true); // counters advance
        for (auto& [id, img] : stale)
            adv.replay(id, std::move(img));
        failures += scanDetects(*fe) ? 0 : 1;
    }

    std::cout << "Attack 3: suppress blocks (zero out written buckets)\n";
    {
        std::unique_ptr<UnifiedFrontend> fe(makeOram(cipher));
        for (Addr a = 0; a < 1024; ++a)
            fe->access(a, true);
        auto& st =
            static_cast<EncryptedTreeStorage&>(fe->backend().storage());
        const auto& p = fe->backend().params();
        for (u64 id = 0; id < p.numBuckets(); ++id) {
            if (st.hasImage(id))
                st.replaceImage(
                    id, std::vector<u8>(p.bucketPhysBytes(), 0));
        }
        failures += scanDetects(*fe) ? 0 : 1;
    }

    std::cout << "Attack 4: rewind a bucket's encryption seed\n"
              << "  (defeated by the Section 6.4 GlobalSeed fix: the\n"
              << "   rewound bucket decrypts to garbage, which PMMAC\n"
              << "   flags; re-encryption still uses a fresh pad)\n";
    {
        std::unique_ptr<UnifiedFrontend> fe(makeOram(cipher));
        for (Addr a = 0; a < 2048; ++a)
            fe->access(a, true);
        auto& st =
            static_cast<EncryptedTreeStorage&>(fe->backend().storage());
        Adversary adv(&st, fe->backend().params());
        // Rewind the seed of a bucket that actually holds live blocks
        // (rewinding a dummy-only bucket provably affects nothing).
        const auto& p = fe->backend().params();
        for (u64 id = 0; id < p.numBuckets(); ++id) {
            if (st.hasImage(id) && st.readBucket(id).occupancy() > 0) {
                adv.rewindSeed(id);
                break;
            }
        }
        failures += scanDetects(*fe) ? 0 : 1;
    }

    std::cout << "\nHash-bandwidth note: each detection above cost one\n"
              << "SHA3 per ORAM access (the block of interest); a Merkle\n"
              << "tree would hash Z*(L+1) = 4*(L+1) blocks per access\n"
              << "(68x more at L=16; Section 6.3).\n";

    std::cout << (failures == 0 ? "\nAll attacks detected.\n"
                                : "\nSOME ATTACKS MISSED!\n");
    return failures;
}
