/**
 * @file
 * Sharded-service crash recovery: the multi-shard kill -9 scenario.
 *
 * `run` drives a persistent (mmap-backed, one file per shard)
 * integrity-verified ShardedOramService with batched writes from the
 * worker pool, committing a full-scope multi-shard checkpoint (per-
 * shard snapshots + sealed manifest) every few batches, forever — it
 * is meant to be SIGKILLed at an arbitrary instruction:
 *
 *   $ ./sharded_service run --dir=/tmp/shards --shards=4 &
 *   $ sleep 3; kill -9 $!
 *
 * `verify` then resumes in a fresh process from the last committed
 * manifest generation and checks every record it can read:
 *
 *   $ ./sharded_service verify --dir=/tmp/shards --shards=4
 *
 * The manifest rename is the commit point for the WHOLE service, so a
 * kill between per-shard snapshot writes rolls back to the previous
 * generation on every shard at once — shards can never resume from
 * mixed generations. Every read is PMMAC-verified against the restored
 * per-shard counters; verify either reproduces a consistent pre-crash
 * state or fails loudly. CI runs exactly this kill/restore dance.
 *
 * `run --fault-rate=F` additionally arms seeded random transient EIO
 * on every shard's storage (see README "Fault model & recovery"): the
 * retry layer absorbs the faults, the service keeps answering
 * correctly, and a later `verify` still checks out — chaos on top of
 * the kill -9 story.
 *
 * `--journal` arms the per-shard request journal on both sides
 * (a journaled manifest refuses to open unjournaled): `run` then
 * acks every request only once its journal record is durable, and
 * `verify`'s open() replays the suffix past the last committed
 * generation — acknowledged writes survive the kill even when it
 * lands between checkpoints (RPO = 0 instead of checkpoint-bounded).
 */
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "mem/fault_injecting_backend.hpp"
#include "shard/sharded_service.hpp"

using namespace froram;

namespace {

ShardedServiceConfig
makeConfig(const std::string& dir, u32 shards, bool journal)
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbIntegrityCompressed;
    cfg.base.capacityBytes = u64{1} << 20; // 16384 records
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = StorageBackendKind::MmapFile;
    cfg.base.seed = 0x5ca1ab1e;
    cfg.numShards = shards;
    cfg.directory = dir;
    cfg.supervision.journal.enabled = journal;
    return cfg;
}

/** Deterministic record payload, verifiable from the address alone. */
std::vector<u8>
recordFor(Addr addr, u64 block_bytes)
{
    std::vector<u8> data(block_bytes);
    for (u64 j = 0; j < block_bytes; ++j)
        data[j] = static_cast<u8>(addr * 131 + j * 17 + 7);
    return data;
}

int
runForever(const std::string& dir, u32 shards, u64 commit_every,
           u64 max_batches, double fault_rate, bool journal)
{
    ShardedServiceConfig cfg = makeConfig(dir, shards, journal);
    cfg.base.backendReset = true;
    if (fault_rate > 0.0) {
        cfg.base.faultSchedule = std::make_shared<FaultSchedule>();
        cfg.base.faultSchedule->setRandomRate(fault_rate, 0xc4a05);
        cfg.supervision.retry.maxAttempts = 8;
        cfg.supervision.retry.baseBackoffUs = 1;
        cfg.supervision.retry.maxBackoffUs = 50;
    }
    ShardedOramService svc(cfg);
    const u64 n = svc.numBlocks();
    const u64 bb = cfg.base.blockBytes;
    constexpr u64 kBatch = 64;

    // Commit an initial (empty-state) generation so even an immediate
    // kill leaves something restorable.
    svc.checkpoint(CheckpointScope::Full);
    std::cout << "running " << shards << " shards / "
              << svc.numWorkers() << " workers; committing to " << dir
              << "/MANIFEST every " << commit_every << " batches"
              << (journal ? "; request journal armed (RPO = 0)" : "")
              << " (kill -9 me anytime)\n"
              << std::flush;

    u64 failed = 0;
    for (u64 b = 0; max_batches == 0 || b < max_batches; ++b) {
        std::vector<ShardRequest> batch(kBatch);
        for (u64 i = 0; i < kBatch; ++i) {
            const Addr addr = (b * kBatch + i) % n;
            batch[i].addr = addr;
            batch[i].isWrite = true;
            batch[i].writeData = recordFor(addr, bb);
        }
        const auto res = svc.submit(std::move(batch)).get();
        for (const auto& r : res) {
            if (r.status != RequestStatus::Ok)
                ++failed;
        }
        if (b % commit_every == commit_every - 1) {
            svc.checkpoint(CheckpointScope::Full);
            if (cfg.base.faultSchedule) {
                u64 retries = 0;
                for (u32 s = 0; s < svc.numShards(); ++s)
                    retries += svc.shardReport(s).transientFaults;
                std::cout << "committed; "
                          << cfg.base.faultSchedule->faultsFired()
                          << " faults injected, " << retries
                          << " absorbed by retry, " << failed
                          << " requests failed\n"
                          << std::flush;
            }
        }
    }
    svc.checkpoint(CheckpointScope::Full);
    std::cout << "completed " << max_batches << " batches ("
              << failed << " failed requests)\n";
    return failed != 0;
}

int
verify(const std::string& dir, u32 shards, bool journal)
{
    std::unique_ptr<ShardedOramService> svc;
    try {
        svc = ShardedOramService::open(makeConfig(dir, shards, journal));
    } catch (const CheckpointError& e) {
        std::cerr << "restore failed loudly (no silent corruption): "
                  << e.what() << "\n";
        return 3;
    } catch (const FatalError& e) {
        std::cerr << "restore failed loudly (torn directory): "
                  << e.what() << "\n";
        return 3;
    }

    const u64 n = svc->numBlocks();
    const u64 bb = svc->config().base.blockBytes;
    u64 written = 0;
    for (Addr addr = 0; addr < n; ++addr) {
        FrontendResult r;
        try {
            r = svc->access(addr, false);
        } catch (const IntegrityViolation& e) {
            std::cerr << "PMMAC violation at record " << addr << ": "
                      << e.what() << "\n";
            return 1;
        }
        if (r.coldMiss)
            continue; // never written before the crash
        const std::vector<u8> expect = recordFor(addr, bb);
        for (u64 j = 0; j < expect.size(); ++j) {
            if (r.data[j] != expect[j]) {
                std::cerr << "record " << addr << " byte " << j
                          << " corrupt after restore\n";
                return 1;
            }
        }
        ++written;
    }
    u64 replayed = 0;
    for (u32 s = 0; s < svc->numShards(); ++s)
        replayed += svc->shardReport(s).lastReplayDepth;
    std::cout << "restored generation " << svc->generation();
    if (journal)
        std::cout << " and replayed " << replayed
                  << " journaled requests";
    std::cout << "; verified " << written << "/" << n
              << " records across " << svc->numShards()
              << " shards (every read PMMAC-checked)\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string mode;
    std::string dir = "/tmp/froram_sharded_demo";
    u32 shards = 4;
    u64 commit_every = 4;
    u64 max_batches = 0;
    double fault_rate = 0.0;
    bool journal = false;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "run" || arg == "verify")
                mode = arg;
            else if (arg.rfind("--dir=", 0) == 0)
                dir = arg.substr(6);
            else if (arg.rfind("--shards=", 0) == 0)
                shards = static_cast<u32>(
                    std::stoul(arg.substr(9)));
            else if (arg.rfind("--commit-every=", 0) == 0)
                commit_every = std::stoull(arg.substr(15));
            else if (arg.rfind("--max-batches=", 0) == 0)
                max_batches = std::stoull(arg.substr(14));
            else if (arg.rfind("--fault-rate=", 0) == 0)
                fault_rate = std::stod(arg.substr(13));
            else if (arg == "--journal")
                journal = true;
            else
                fatal("unknown argument: ", arg);
        }
        if (mode.empty() || commit_every == 0 || shards == 0)
            fatal("mode required");
        if (fault_rate < 0.0 || fault_rate > 1.0)
            fatal("--fault-rate must be in [0, 1]");
    } catch (const std::exception& e) {
        std::cerr << e.what()
                  << "\nusage: sharded_service run|verify [--dir=PATH] "
                     "[--shards=N] [--commit-every=N] "
                     "[--max-batches=N] [--fault-rate=F] [--journal]\n";
        return 2;
    }
    try {
        return mode == "run"
                   ? runForever(dir, shards, commit_every, max_batches,
                                fault_rate, journal)
                   : verify(dir, shards, journal);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
