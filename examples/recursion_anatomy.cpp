/**
 * @file
 * Anatomy of a Recursive ORAM access: the paper's core observation is
 * that Recursive ORAM is a multi-level page table (Section 3.2). This
 * example dissects one access end to end: the address chain a_i =
 * a_0 / X^i, the unified addresses, what the PLB held, which blocks
 * were fetched, and the adversary's view of the same access.
 *
 *   $ ./recursion_anatomy [address]
 */
#include <cstdlib>
#include <iostream>

#include "core/oram_system.hpp"

using namespace froram;

int
main(int argc, char** argv)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = u64{1} << 30; // 1 GB
    cfg.plbBytes = 8 * 1024;
    cfg.storage = StorageMode::Meta;
    cfg.collectTrace = true;
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    auto& fe = static_cast<UnifiedFrontend&>(sys.frontend());
    const auto& geo = fe.geometry();

    const Addr a0 = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                             : 0x123456;

    std::cout << "ORAM: " << fe.name() << ", N = 2^"
              << log2Ceil(geo.levelBlocks[0]) << " data blocks, X = "
              << geo.x << ", H = " << geo.h << " ORAMs unified into one "
              << "tree of 2^" << fe.backend().params().levels
              << " leaves\n\n";

    std::cout << "Page-table analogy for data address a0 = " << a0
              << ":\n";
    for (u32 i = 0; i < geo.h; ++i) {
        std::cout << "  level " << i << ": a_" << i << " = a0/X^" << i
                  << " = " << geo.levelAddr(i, a0) << "  (unified addr "
                  << geo.unifiedAddr(i, a0) << ", "
                  << (i == 0 ? "the data block"
                             : i == geo.h - 1
                                   ? "leaf held by on-chip PosMap"
                                   : "PosMap block")
                  << ")\n";
    }

    auto narrate = [&](const char* label) {
        sys.clearTrace();
        const auto r = fe.access(a0, false);
        std::cout << "\n" << label << ":\n  " << r.backendAccesses
                  << " tree accesses, " << r.bytesMoved / 1024
                  << " KB moved (" << r.posmapBytes / 1024
                  << " KB PosMap)\n  adversary saw: ";
        for (const auto& e : sys.trace()) {
            if (e.kind == TraceEvent::Kind::PathRead)
                std::cout << "R(leaf " << e.leaf << ") ";
            else
                std::cout << "W ";
        }
        std::cout << "\n";
    };

    narrate("Access 1 (cold: full page-table walk)");
    narrate("Access 2 (PosMap blocks now in the PLB)");

    std::cout << "\nNote: every path leaf above is freshly random; two"
              << "\naccesses to the SAME address are indistinguishable"
              << "\nfrom accesses to different addresses (Section 3.1.2)."
              << "\nOnly the number of tree accesses varies -- and with"
              << "\nthe unified tree that is all the adversary learns"
              << "\n(Section 4.3).\n";
    return 0;
}
