/**
 * @file
 * Checkpoint/restore round trip: the crash-recovery scenario.
 *
 * `run` drives a persistent (mmap-backed) integrity-verified ORAM,
 * committing a full-scope checkpoint every few writes, forever — it is
 * meant to be killed (SIGKILL) at an arbitrary instruction:
 *
 *   $ ./checkpoint_restore run --file=/tmp/ck.oram --ckpt=/tmp/ck.snap &
 *   $ sleep 3; kill -9 $!
 *
 * `verify` then resumes in a fresh process from the last committed
 * snapshot and checks every record it can read:
 *
 *   $ ./checkpoint_restore verify --file=/tmp/ck.oram --ckpt=/tmp/ck.snap
 *
 * Because snapshot commits are atomic (write-then-rename) and every
 * read is PMMAC-verified against the restored counters, verify either
 * reproduces a consistent pre-crash state or fails loudly — there is no
 * silently-corrupt outcome. CI runs exactly this kill/restore dance,
 * including under ASan/UBSan.
 */
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/oram_system.hpp"

using namespace froram;

namespace {

OramSystemConfig
makeConfig(const std::string& file)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = u64{1} << 20; // 1 MB store: 16384 records
    cfg.blockBytes = 64;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = StorageBackendKind::MmapFile;
    cfg.backendPath = file;
    cfg.seed = 0x5ca1ab1e;
    return cfg;
}

/** Deterministic record payload, verifiable from the address alone. */
std::vector<u8>
recordFor(Addr addr, u64 block_bytes)
{
    std::vector<u8> data(block_bytes);
    for (u64 j = 0; j < block_bytes; ++j)
        data[j] = static_cast<u8>(addr * 131 + j * 17 + 7);
    return data;
}

int
runForever(const std::string& file, const std::string& snap,
           u64 commit_every, u64 max_ops)
{
    OramSystemConfig cfg = makeConfig(file);
    cfg.backendReset = true;
    OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
    const u64 n = cfg.capacityBytes / cfg.blockBytes;

    // Commit an initial (empty-state) snapshot so even an immediate
    // kill leaves something restorable.
    sys.checkpointTo(snap, CheckpointScope::Full);
    std::cout << "running; committing to " << snap << " every "
              << commit_every << " writes (kill -9 me anytime)\n"
              << std::flush;

    for (u64 i = 0; max_ops == 0 || i < max_ops; ++i) {
        const Addr addr = i % n;
        const std::vector<u8> data = recordFor(addr, cfg.blockBytes);
        sys.frontend().access(addr, true, &data);
        if (i % commit_every == commit_every - 1)
            sys.checkpointTo(snap, CheckpointScope::Full);
    }
    sys.checkpointTo(snap, CheckpointScope::Full);
    std::cout << "completed " << max_ops << " writes\n";
    return 0;
}

int
verify(const std::string& file, const std::string& snap)
{
    OramSystemConfig cfg = makeConfig(file);
    std::unique_ptr<OramSystem> sys;
    try {
        sys = OramSystem::open(SchemeId::PlbIntegrityCompressed, cfg,
                               snap);
    } catch (const CheckpointError& e) {
        std::cerr << "restore failed loudly (no silent corruption): "
                  << e.what() << "\n";
        return 3;
    }

    const u64 n = cfg.capacityBytes / cfg.blockBytes;
    u64 written = 0;
    for (Addr addr = 0; addr < n; ++addr) {
        FrontendResult r;
        try {
            r = sys->frontend().access(addr, false);
        } catch (const IntegrityViolation& e) {
            std::cerr << "PMMAC violation at record " << addr << ": "
                      << e.what() << "\n";
            return 1;
        }
        if (r.coldMiss)
            continue; // never written before the crash
        const std::vector<u8> expect = recordFor(addr, cfg.blockBytes);
        for (u64 j = 0; j < expect.size(); ++j) {
            if (r.data[j] != expect[j]) {
                std::cerr << "record " << addr << " byte " << j
                          << " corrupt after restore\n";
                return 1;
            }
        }
        ++written;
    }
    std::cout << "restored and verified " << written << "/" << n
              << " records (every read PMMAC-checked)\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string mode;
    std::string file = "/tmp/froram_ckpt_demo.oram";
    std::string snap;
    u64 commit_every = 8;
    u64 max_ops = 0;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "run" || arg == "verify")
                mode = arg;
            else if (arg.rfind("--file=", 0) == 0)
                file = arg.substr(7);
            else if (arg.rfind("--ckpt=", 0) == 0)
                snap = arg.substr(7);
            else if (arg.rfind("--commit-every=", 0) == 0)
                commit_every = std::stoull(arg.substr(15));
            else if (arg.rfind("--max-ops=", 0) == 0)
                max_ops = std::stoull(arg.substr(10));
            else
                fatal("unknown argument: ", arg);
        }
        if (mode.empty() || commit_every == 0)
            fatal("mode required");
    } catch (const std::exception& e) {
        std::cerr << e.what()
                  << "\nusage: checkpoint_restore run|verify "
                     "[--file=PATH] [--ckpt=PATH] [--commit-every=N] "
                     "[--max-ops=N]\n";
        return 2;
    }
    if (snap.empty())
        snap = file + ".ckpt";
    try {
        return mode == "run" ? runForever(file, snap, commit_every,
                                          max_ops)
                             : verify(file, snap);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
