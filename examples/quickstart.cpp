/**
 * @file
 * Quickstart: build a complete Freecursive ORAM (PLB + compressed
 * PosMap + PMMAC, i.e. the paper's PIC_X32), write and read some
 * blocks, and print what the machinery did.
 *
 *   $ ./quickstart
 */
#include <iostream>

#include "core/oram_system.hpp"

using namespace froram;

int
main()
{
    // A 64 MB ORAM with the paper's defaults: 64-byte blocks, Z = 4,
    // 2 DRAM channels, 64 KB direct-mapped PLB, recursion until the
    // on-chip PosMap is small. Encrypted storage carries real data.
    OramSystemConfig cfg;
    cfg.capacityBytes = u64{64} << 20;
    cfg.storage = StorageMode::Encrypted;
    cfg.realAes = true;
    OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
    Frontend& oram = sys.frontend();

    std::cout << "Scheme: " << oram.name() << "\n";
    const auto& geo =
        static_cast<UnifiedFrontend&>(oram).geometry();
    std::cout << "Recursion: H = " << geo.h << " levels, X = " << geo.x
              << ", on-chip PosMap = " << geo.onChipEntries
              << " entries\n\n";

    // Write a few blocks.
    for (u64 i = 0; i < 16; ++i) {
        std::vector<u8> data(64);
        for (size_t b = 0; b < data.size(); ++b)
            data[b] = static_cast<u8>(i * 100 + b);
        oram.access(/*addr=*/i * 1000, /*is_write=*/true, &data);
    }

    // Read them back (every read is also verified by PMMAC).
    bool all_good = true;
    for (u64 i = 0; i < 16; ++i) {
        const auto r = oram.access(i * 1000, false);
        for (size_t b = 0; b < r.data.size(); ++b) {
            if (r.data[b] != static_cast<u8>(i * 100 + b))
                all_good = false;
        }
    }
    std::cout << "Read-back of 16 blocks: "
              << (all_good ? "OK (and MAC-verified)" : "CORRUPT")
              << "\n\n";

    const auto& st = oram.stats();
    std::cout << "Frontend accesses:      " << st.get("accesses") << "\n"
              << "Backend tree accesses:  " << st.get("backendAccesses")
              << "\n"
              << "DRAM bytes moved:       " << st.get("bytesMoved")
              << " (" << st.get("posmapBytes") << " for the PosMap)\n"
              << "PMMAC checks:           " << st.get("macChecks")
              << "\n"
              << "Average latency:        "
              << st.get("cycles") / std::max<u64>(1, st.get("accesses"))
              << " processor cycles/access\n";
    return all_good ? 0 : 1;
}
