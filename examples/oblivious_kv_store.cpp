/**
 * @file
 * Oblivious key-value store: the cloud-outsourcing scenario from the
 * paper's introduction. A client keeps an encrypted, integrity-verified
 * KV store in untrusted memory; the ORAM controller guarantees the
 * server learns nothing from the access pattern -- lookups of a hot key
 * are indistinguishable from uniform scans.
 *
 * The untrusted medium is pluggable:
 *
 *   $ ./oblivious_kv_store                    # DRAM-timed (default)
 *   $ ./oblivious_kv_store --backend=flat    # fast functional RAM
 *   $ ./oblivious_kv_store --backend=mmap --file=/tmp/kv.oram
 *
 * With --backend=mmap every encrypted bucket the server holds lives in
 * the backing file (msync-durable), which is the seam a durable KV
 * deployment builds on. --fault-rate=F arms seeded random transient
 * EIO on the medium (absorbed by the retry layer — the store keeps
 * answering correctly; see README "Fault model & recovery").
 */
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include <unistd.h>

#include "core/oram_system.hpp"
#include "mem/fault_injecting_backend.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

using namespace froram;

namespace {

/**
 * A fixed-capacity open-addressed hash table stored in ORAM blocks.
 * Each 64 B block holds one record: 16-byte key, 40-byte value, 8-byte
 * tag. All probing happens through the oblivious frontend, so slot
 * positions never leak.
 */
class ObliviousKvStore {
  public:
    explicit ObliviousKvStore(Frontend& oram, u64 num_slots)
        : oram_(oram), slots_(num_slots)
    {
    }

    void
    put(const std::string& key, const std::string& value)
    {
        for (u64 probe = 0; probe < 32; ++probe) {
            const Addr slot = slotOf(key, probe);
            auto r = oram_.access(slot, false);
            if (r.data[0] == 0 || keyMatches(r.data, key)) {
                std::vector<u8> rec(64, 0);
                rec[0] = 1;
                for (size_t i = 0; i < 15 && i < key.size(); ++i)
                    rec[1 + i] = static_cast<u8>(key[i]);
                for (size_t i = 0; i < 40 && i < value.size(); ++i)
                    rec[16 + i] = static_cast<u8>(value[i]);
                oram_.access(slot, true, &rec);
                return;
            }
        }
        fatal("kv store full along probe chain");
    }

    std::string
    get(const std::string& key)
    {
        for (u64 probe = 0; probe < 32; ++probe) {
            const Addr slot = slotOf(key, probe);
            const auto r = oram_.access(slot, false);
            if (r.data[0] == 0)
                return {};
            if (keyMatches(r.data, key)) {
                std::string v;
                for (size_t i = 16; i < 56 && r.data[i]; ++i)
                    v += static_cast<char>(r.data[i]);
                return v;
            }
        }
        return {};
    }

  private:
    Addr
    slotOf(const std::string& key, u64 probe) const
    {
        u64 h = 1469598103934665603ULL;
        for (char c : key)
            h = (h ^ static_cast<u8>(c)) * 1099511628211ULL;
        return (h + probe) % slots_;
    }

    static bool
    keyMatches(const std::vector<u8>& rec, const std::string& key)
    {
        for (size_t i = 0; i < 15; ++i) {
            const u8 expect =
                i < key.size() ? static_cast<u8>(key[i]) : 0;
            if (rec[1 + i] != expect)
                return false;
        }
        return true;
    }

    Frontend& oram_;
    u64 slots_;
};

} // namespace

int
main(int argc, char** argv)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = u64{16} << 20; // 16 MB store
    cfg.storage = StorageMode::Encrypted;
    cfg.realAes = true;
    cfg.collectTrace = true;
    // Per-user default path: a fixed shared /tmp name would collide
    // between users (and could be pre-created as a symlink trap).
    const char* tmpdir = std::getenv("TMPDIR");
    cfg.backendPath = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                      "/froram_kv_store." + std::to_string(::getuid()) +
                      ".oram";
    double fault_rate = 0.0;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--backend=", 0) == 0)
                cfg.backend = storageBackendKindFromName(arg.substr(10));
            else if (arg.rfind("--file=", 0) == 0)
                cfg.backendPath = arg.substr(7);
            else if (arg.rfind("--fault-rate=", 0) == 0)
                fault_rate = std::stod(arg.substr(13));
            else
                fatal("unknown argument: ", arg);
        }
        if (fault_rate < 0.0 || fault_rate > 1.0)
            fatal("--fault-rate must be in [0, 1]");
    } catch (const std::exception& e) {
        std::cerr << e.what()
                  << "\nusage: oblivious_kv_store "
                     "[--backend=flat|dram|mmap] [--file=PATH] "
                     "[--fault-rate=F]\n";
        return 2;
    }
    if (fault_rate > 0.0) {
        cfg.faultSchedule = std::make_shared<FaultSchedule>();
        cfg.faultSchedule->setRandomRate(fault_rate, 0x6b7501);
        cfg.storageRetry.maxAttempts = 8;
        cfg.storageRetry.baseBackoffUs = 1;
        cfg.storageRetry.maxBackoffUs = 50;
    }
    std::unique_ptr<OramSystem> sys_holder;
    try {
        sys_holder = std::make_unique<OramSystem>(
            SchemeId::PlbIntegrityCompressed, cfg);
    } catch (const FatalError& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    OramSystem& sys = *sys_holder;
    std::cout << "Untrusted storage backend: "
              << toString(sys.storage().kind())
              << (sys.storage().persistent()
                      ? " (persistent: " + cfg.backendPath + ")"
                      : "")
              << "\n";
    ObliviousKvStore kv(sys.frontend(), cfg.capacityBytes / 64);

    std::cout << "Populating the store...\n";
    for (int i = 0; i < 200; ++i)
        kv.put("user:" + std::to_string(i),
               "profile-data-" + std::to_string(i * 7));

    // Workload A: hammer one hot key. Workload B: uniform lookups.
    auto observe = [&](auto&& work) {
        sys.clearTrace();
        work();
        Histogram h(32);
        const u64 leaves =
            static_cast<UnifiedFrontend&>(sys.frontend())
                .backend()
                .params()
                .numLeaves();
        for (const auto& e : sys.trace())
            if (e.kind == TraceEvent::Kind::PathRead)
                h.add(e.leaf * 32 / leaves);
        return h;
    };

    Xoshiro256 rng(3);
    const Histogram hot = observe([&] {
        for (int i = 0; i < 300; ++i)
            kv.get("user:42");
    });
    const Histogram uniform = observe([&] {
        for (int i = 0; i < 300; ++i)
            kv.get("user:" + std::to_string(rng.below(200)));
    });

    std::cout << "Spot checks: user:42 -> '" << kv.get("user:42")
              << "', user:199 -> '" << kv.get("user:199") << "'\n\n";

    const double chi2 = hot.chiSquareTwoSample(uniform);
    const double crit = chiSquareCritical(31, 0.001);
    std::cout << "Adversary's view (path-access histograms over "
              << hot.total() << "+" << uniform.total() << " accesses):\n"
              << "  hot-key workload vs uniform workload chi^2 = "
              << chi2 << " (threshold " << crit << ")\n"
              << "  => the two workloads are "
              << (chi2 < crit ? "statistically indistinguishable"
                              : "DISTINGUISHABLE (bug!)")
              << "\n\nEvery record is also MAC-verified on read "
              << "(PMMAC), so the server\ncan neither observe nor "
              << "undetectably modify the store.\n";
    if (cfg.faultSchedule) {
        std::cout << "\nChaos: " << cfg.faultSchedule->faultsFired()
                  << " storage faults injected, " << sys.storageRetries()
                  << " absorbed by retry — every answer above was still "
                  << "correct.\n";
    }
    if (sys.storage().persistent()) {
        sys.storage().sync();
        std::cout << "\nDurability: " << (sys.storage().bytesTouched() >> 10)
                  << " KB of encrypted buckets msync'd to "
                  << cfg.backendPath << ".\n";
    }
    return chi2 < crit ? 0 : 1;
}
