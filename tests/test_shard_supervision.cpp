/**
 * @file
 * Supervised shard runtime: health-state transitions, quarantine +
 * rollback-to-recovery-point (bit-identical restore, RPO semantics),
 * sibling availability during a shard's outage, the worker-death guard
 * (futures must never hang), per-request deadlines, and multi-threaded
 * submitters over a faulting medium. Suite name starts with "Sharded"
 * so the TSan CI leg (`ctest -R 'Sharded'`) covers it.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <unistd.h>
#include <vector>

#include "mem/fault_injecting_backend.hpp"
#include "shard/sharded_service.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::string
freshDir(const std::string& tag)
{
    static int counter = 0;
    return ::testing::TempDir() + "froram_superv_" +
           std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++);
}

ShardedServiceConfig
smallConfig(u32 shards, u32 workers)
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbCompressed;
    cfg.base.capacityBytes = u64{1} << 18; // 4096 blocks
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = StorageBackendKind::Flat;
    cfg.base.seed = 0x5eed2;
    cfg.numShards = shards;
    cfg.numWorkers = workers;
    cfg.supervision.retry.baseBackoffUs = 1;
    cfg.supervision.retry.maxBackoffUs = 20;
    return cfg;
}

std::vector<u8>
payloadFor(Addr addr, u64 version, u64 block_bytes)
{
    std::vector<u8> data(block_bytes);
    for (u64 j = 0; j < block_bytes; ++j)
        data[j] = static_cast<u8>(addr * 31 + version * 131 + j);
    return data;
}

/** The `index`-th global address served by shard `shard`. */
Addr
addrOnShard(const ShardedOramService& svc, u32 shard, u32 index = 0)
{
    u32 seen = 0;
    for (Addr a = 0; a < svc.numBlocks(); ++a)
        if (svc.shardOf(a) == shard && seen++ == index)
            return a;
    ADD_FAILURE() << "shard " << shard << " has no address " << index;
    return 0;
}

/** Poll a shard's health until `want` or a 5 s timeout. */
bool
awaitHealth(const ShardedOramService& svc, u32 shard, ShardHealth want)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
        if (svc.shardHealth(shard) == want)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return svc.shardHealth(shard) == want;
}

TEST(ShardedSupervision, HealthyDegradedHealthyTransitions)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/2, /*workers=*/1);
    cfg.supervision.retry.maxAttempts = 4;
    cfg.supervision.healthyStreak = 6;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched, nullptr};
    ShardedOramService svc(cfg);

    const Addr victim = addrOnShard(svc, 0);
    EXPECT_EQ(svc.shardHealth(0), ShardHealth::Healthy);

    const std::vector<u8> data = payloadFor(victim, 1, 64);
    svc.access(victim, true, &data);

    // Two transient EIOs on upcoming reads: absorbed by the retry
    // layer, but the shard must report Degraded.
    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 2;
    spec.transient = true;
    sched->inject(spec);

    EXPECT_EQ(svc.access(victim, false).data, data);
    ASSERT_TRUE(awaitHealth(svc, 0, ShardHealth::Degraded));
    EXPECT_GT(svc.shardReport(0).transientFaults, 0u);
    EXPECT_EQ(svc.shardHealth(1), ShardHealth::Healthy);

    // A clean streak promotes the shard back to Healthy.
    for (u32 i = 0; i < cfg.supervision.healthyStreak + 2; ++i)
        EXPECT_EQ(svc.access(victim, false).data, data);
    ASSERT_TRUE(awaitHealth(svc, 0, ShardHealth::Healthy));
}

TEST(ShardedSupervision, QuarantineRollsBackBitIdenticalWhileSiblingsServe)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/2, /*workers=*/2);
    cfg.supervision.retry.maxAttempts = 1;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched, nullptr};
    ShardedOramService svc(cfg);
    const Addr v0 = addrOnShard(svc, 0, 0);
    const Addr v1 = addrOnShard(svc, 0, 1);
    const Addr sib = addrOnShard(svc, 1, 0);

    const std::vector<u8> kept = payloadFor(v0, 1, 64);
    const std::vector<u8> sibData = payloadFor(sib, 2, 64);
    svc.access(v0, true, &kept);
    svc.access(sib, true, &sibData);

    // Seal the recovery point, then snapshot the shard directly as the
    // control image of the state rollback must reproduce.
    svc.refreshRecoveryPoints();
    svc.drain();
    ASSERT_TRUE(svc.shardReport(0).hasRecoveryPoint);
    const std::vector<u8> control =
        svc.shard(0).checkpoint(CheckpointScope::Full);

    // A write AFTER the recovery point: rollback must discard it (the
    // documented RPO), not replay it.
    const std::vector<u8> lost = payloadFor(v1, 3, 64);
    svc.access(v1, true, &lost);

    // One-shot hard fault on shard 0's next read, inside a batch that
    // also targets the sibling shard: shard 0's requests fail typed,
    // the sibling's complete normally.
    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    std::vector<ShardRequest> batch;
    batch.push_back({v0, false, {}, 0});
    batch.push_back({v0, false, {}, 0});
    batch.push_back({sib, false, {}, 0});
    auto res = svc.submit(std::move(batch)).get(); // never hangs
    ASSERT_EQ(res.size(), 3u);
    EXPECT_EQ(res[0].status, RequestStatus::StorageFault);
    EXPECT_FALSE(res[0].error.empty());
    // The second shard-0 request hit the quarantined window or the
    // already-recovered shard, depending on drain timing; it must be
    // typed either way — and if it served, it must be correct.
    if (res[1].status == RequestStatus::Ok) {
        EXPECT_EQ(res[1].result.data, kept);
    } else {
        EXPECT_TRUE(res[1].status == RequestStatus::Quarantined ||
                    res[1].status == RequestStatus::StorageFault);
    }
    EXPECT_EQ(res[2].status, RequestStatus::Ok);
    EXPECT_EQ(res[2].result.data, sibData);

    // The worker rolls the shard back and re-admits it as Degraded.
    ASSERT_TRUE(awaitHealth(svc, 0, ShardHealth::Degraded));
    svc.drain();
    const ShardedOramService::ShardHealthReport rep = svc.shardReport(0);
    EXPECT_EQ(rep.recoveries, 1u);
    EXPECT_FALSE(rep.lastError.empty());

    // Bit-identical restore: the recovered shard's sealed Full-scope
    // snapshot equals the control taken at the recovery point.
    EXPECT_EQ(svc.shard(0).checkpoint(CheckpointScope::Full), control);

    // RPO semantics: the pre-point write survived, the post-point
    // write was discarded (reads as never-written).
    EXPECT_EQ(svc.access(v0, false).data, kept);
    const FrontendResult gone = svc.access(v1, false);
    EXPECT_TRUE(gone.coldMiss ||
                std::all_of(gone.data.begin(), gone.data.end(),
                            [](u8 b) { return b == 0; }));
}

TEST(ShardedSupervision, WorkerDeathFailsInFlightTypedAndNeverHangs)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/4, /*workers=*/2);
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;

    std::map<Addr, std::vector<u8>> reference;
    for (u32 s = 0; s < 4; ++s) {
        const Addr a = addrOnShard(svc, s);
        reference[a] = payloadFor(a, 1, bb);
        svc.access(a, true, &reference[a]);
    }
    svc.drain();

    // Pile up load on every shard, then kill worker 0 mid-stream. The
    // regression this pins: every future must resolve — in-flight and
    // queued requests of the dead worker's shards fail typed with
    // WorkerLost instead of stranding their promises.
    std::vector<std::future<ShardedOramService::BatchResult>> futures;
    for (int round = 0; round < 40; ++round) {
        std::vector<ShardRequest> batch;
        for (u32 s = 0; s < 4; ++s)
            batch.push_back({addrOnShard(svc, s), false, {}, 0});
        futures.push_back(svc.submit(std::move(batch)));
        if (round == 10)
            svc.debugKillWorker(0);
    }

    u64 ok = 0;
    u64 lost = 0;
    for (auto& f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "a future hung after worker death";
        for (const ShardAccessResult& r : f.get()) {
            if (r.status == RequestStatus::Ok) {
                ++ok;
                EXPECT_EQ(r.result.data, reference[r.addr])
                    << "addr " << r.addr;
            } else {
                ++lost;
                EXPECT_EQ(r.status, RequestStatus::WorkerLost);
                EXPECT_FALSE(r.error.empty());
            }
        }
    }
    EXPECT_GT(ok, 0u);   // surviving worker's shards kept serving
    EXPECT_GT(lost, 0u); // the dead worker's shards failed typed

    // The dead worker's shards are permanently quarantined; the
    // survivor's shards still serve, and drain() completes.
    u32 quarantined = 0;
    for (u32 s = 0; s < 4; ++s)
        quarantined +=
            svc.shardHealth(s) == ShardHealth::Quarantined ? 1 : 0;
    EXPECT_EQ(quarantined, 2u);

    std::vector<ShardRequest> after;
    for (u32 s = 0; s < 4; ++s)
        after.push_back({addrOnShard(svc, s), false, {}, 0});
    auto res = svc.submit(std::move(after)).get();
    for (const ShardAccessResult& r : res) {
        if (svc.shardHealth(r.shard) == ShardHealth::Quarantined) {
            EXPECT_EQ(r.status, RequestStatus::WorkerLost);
        } else {
            EXPECT_EQ(r.status, RequestStatus::Ok);
        }
    }
    svc.drain();
}

TEST(ShardedSupervision, DeadlineExpiryFailsTypedWithoutInterrupting)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/1, /*workers=*/1);
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched};
    ShardedOramService svc(cfg);
    const Addr a = addrOnShard(svc, 0, 0);
    const Addr b = addrOnShard(svc, 0, 1);
    const std::vector<u8> dataA = payloadFor(a, 1, 64);
    svc.access(a, true, &dataA);
    svc.drain();

    // Make the first request slow (latency spikes on its path reads);
    // the second request's deadline expires while it waits in queue.
    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Latency;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 3;
    spec.latencyUs = 20000;
    sched->inject(spec);

    std::vector<ShardRequest> batch;
    batch.push_back({a, false, {}, 0});
    batch.push_back({b, false, {}, /*deadlineUs=*/5000});
    auto res = svc.submit(std::move(batch)).get();
    ASSERT_EQ(res.size(), 2u);
    EXPECT_EQ(res[0].status, RequestStatus::Ok); // slow, not failed
    EXPECT_EQ(res[0].result.data, dataA);
    EXPECT_EQ(res[1].status, RequestStatus::Deadline);
    EXPECT_FALSE(res[1].error.empty());
    // A deadline is not a fault: the shard stays healthy.
    EXPECT_NE(svc.shardHealth(0), ShardHealth::Quarantined);
}

TEST(ShardedSupervision, NoRecoveryPointMeansPermanentQuarantine)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/2, /*workers=*/1);
    cfg.supervision.retry.maxAttempts = 1;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched, nullptr};
    ShardedOramService svc(cfg);
    const Addr victim = addrOnShard(svc, 0);
    const Addr sib = addrOnShard(svc, 1);
    const std::vector<u8> sibData = payloadFor(sib, 1, 64);
    svc.access(sib, true, &sibData);
    // Warm the victim so its read walks a real path (a cold miss never
    // reaches the backend and could not fire the fault).
    const std::vector<u8> vData = payloadFor(victim, 1, 64);
    svc.access(victim, true, &vData);
    svc.drain();

    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    std::vector<ShardRequest> one;
    one.push_back({victim, false, {}, 0});
    auto res = svc.submit(std::move(one)).get();
    EXPECT_EQ(res[0].status, RequestStatus::StorageFault);
    svc.drain();

    // Nothing to roll back to: the quarantine is final.
    EXPECT_EQ(svc.shardHealth(0), ShardHealth::Quarantined);
    const ShardedOramService::ShardHealthReport rep = svc.shardReport(0);
    EXPECT_FALSE(rep.hasRecoveryPoint);
    EXPECT_EQ(rep.recoveries, 0u);

    // Its slice rejects typed — through both API surfaces — while the
    // sibling keeps serving.
    std::vector<ShardRequest> again;
    again.push_back({victim, false, {}, 0});
    EXPECT_EQ(svc.submit(std::move(again)).get()[0].status,
              RequestStatus::Quarantined);
    EXPECT_THROW(svc.access(victim, false), StorageError);
    EXPECT_EQ(svc.access(sib, false).data, sibData);
}

TEST(ShardedSupervision, RecoveryBudgetExhaustionIsPermanent)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/1, /*workers=*/1);
    cfg.supervision.retry.maxAttempts = 1;
    cfg.supervision.maxRecoveries = 1;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched};
    ShardedOramService svc(cfg);
    const Addr victim = addrOnShard(svc, 0);
    const std::vector<u8> data = payloadFor(victim, 1, 64);
    svc.access(victim, true, &data); // warm: cold misses skip the path
    svc.refreshRecoveryPoints();
    svc.drain();

    // A persistently broken medium: every rollback re-faults on the
    // next access. One recovery is budgeted; the second quarantine is
    // final.
    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.count = FaultSpec::kPersistentCount;
    spec.transient = false;
    sched->inject(spec);

    for (int i = 0; i < 6; ++i) {
        std::vector<ShardRequest> one;
        one.push_back({victim, false, {}, 0});
        const RequestStatus st =
            svc.submit(std::move(one)).get()[0].status;
        EXPECT_NE(st, RequestStatus::Ok);
        svc.drain();
        if (svc.shardHealth(0) == ShardHealth::Quarantined &&
            svc.shardReport(0).recoveries >= 1)
            break;
    }
    EXPECT_EQ(svc.shardHealth(0), ShardHealth::Quarantined);
    EXPECT_EQ(svc.shardReport(0).recoveries, 1u);
    std::vector<ShardRequest> one;
    one.push_back({victim, false, {}, 0});
    EXPECT_EQ(svc.submit(std::move(one)).get()[0].status,
              RequestStatus::Quarantined);
}

TEST(ShardedSupervision, PeriodicSupervisorCapturesRecoveryPoints)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/2, /*workers=*/1);
    cfg.supervision.retry.maxAttempts = 1;
    cfg.supervision.checkpointIntervalMs = 10;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched, nullptr};
    ShardedOramService svc(cfg);
    const Addr victim = addrOnShard(svc, 0);
    const std::vector<u8> data = payloadFor(victim, 1, 64);
    svc.access(victim, true, &data);

    // The background supervisor must take the points on its own — no
    // refreshRecoveryPoints() call anywhere in this test.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while ((!svc.shardReport(0).hasRecoveryPoint ||
            !svc.shardReport(1).hasRecoveryPoint) &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(svc.shardReport(0).hasRecoveryPoint);
    ASSERT_TRUE(svc.shardReport(1).hasRecoveryPoint);
    // Let the cadence settle so the latest point includes the write.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    std::vector<ShardRequest> one;
    one.push_back({victim, false, {}, 0});
    EXPECT_EQ(svc.submit(std::move(one)).get()[0].status,
              RequestStatus::StorageFault);
    ASSERT_TRUE(awaitHealth(svc, 0, ShardHealth::Degraded));
    svc.drain();
    EXPECT_EQ(svc.shardReport(0).recoveries, 1u);
    EXPECT_EQ(svc.access(victim, false).data, data);
}

TEST(ShardedSupervision, CheckpointRefusesQuarantinedShard)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/2, /*workers=*/1);
    cfg.supervision.retry.maxAttempts = 1;
    cfg.directory = freshDir("ckptrefuse");
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched, nullptr};
    ShardedOramService svc(cfg);
    const Addr victim = addrOnShard(svc, 0);
    const std::vector<u8> data = payloadFor(victim, 1, 64);
    svc.access(victim, true, &data); // warm: cold misses skip the path
    svc.drain();

    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);
    std::vector<ShardRequest> one;
    one.push_back({victim, false, {}, 0});
    EXPECT_NE(svc.submit(std::move(one)).get()[0].status,
              RequestStatus::Ok);
    svc.drain();
    ASSERT_EQ(svc.shardHealth(0), ShardHealth::Quarantined);

    // A service checkpoint must not silently commit a generation with
    // a hole where shard 0's state should be.
    EXPECT_THROW(svc.checkpoint(), FatalError);
}

TEST(ShardedSupervision, ConcurrentSubmittersOverFaultingMedium)
{
    // TSan-leg soak: several submitter threads over a shared faulting
    // medium with a generous retry budget — every access must come
    // back Ok and correct while the supervision bookkeeping churns.
    ShardedServiceConfig cfg = smallConfig(/*shards=*/4, /*workers=*/2);
    cfg.base.faultSchedule = std::make_shared<FaultSchedule>();
    cfg.base.faultSchedule->setRandomRate(0.002, 0xc4a05);
    cfg.supervision.retry.maxAttempts = 10;
    cfg.supervision.healthyStreak = 16;
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;

    constexpr u32 kThreads = 4;
    constexpr u32 kOpsPerThread = 200;
    std::vector<std::thread> threads;
    for (u32 t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Disjoint address range per thread: each thread's
            // reference map is authoritative for its own blocks.
            const Addr lo = t * 64;
            std::map<Addr, std::vector<u8>> reference;
            Xoshiro256 rng(0x7e57 + t);
            for (u32 i = 0; i < kOpsPerThread; ++i) {
                const Addr addr = lo + rng.below(64);
                if (rng.below(2) == 0) {
                    const std::vector<u8> data = payloadFor(addr, i, bb);
                    svc.access(addr, true, &data);
                    reference[addr] = data;
                } else {
                    const FrontendResult r = svc.access(addr, false);
                    const auto it = reference.find(addr);
                    if (it != reference.end()) {
                        EXPECT_EQ(r.data, it->second)
                            << "addr " << addr;
                    }
                }
            }
        });
    }
    for (std::thread& th : threads)
        th.join();
    EXPECT_GT(cfg.base.faultSchedule->faultsFired(), 0u);
    for (u32 s = 0; s < svc.numShards(); ++s)
        EXPECT_NE(svc.shardHealth(s), ShardHealth::Quarantined);
}

TEST(ShardedSupervision, JournalMetricsSurfaceInShardReport)
{
    // Unjournaled service: the journal fields are present but inert.
    {
        ShardedServiceConfig cfg = smallConfig(1, 1);
        ShardedOramService svc(cfg);
        const auto rep = svc.shardReport(0);
        EXPECT_FALSE(rep.journaled);
        EXPECT_EQ(rep.journalLagRecords, 0u);
        EXPECT_EQ(rep.lastReplayDepth, 0u);
        EXPECT_EQ(rep.lastRecoveryMs, 0u);
    }

    // Journaled service: the flag is set, the lag drains to zero at
    // the worker's drain-end group commit, and a forced rollback
    // records its replay depth and recovery latency.
    ShardedServiceConfig cfg = smallConfig(1, 1);
    cfg.directory = freshDir("jmetrics");
    cfg.supervision.retry.maxAttempts = 1;
    cfg.supervision.journal.enabled = true;
    cfg.supervision.journal.fsyncEveryRecords = 64;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched};
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;
    const Addr a = addrOnShard(svc, 0);
    const std::vector<u8> data = payloadFor(a, 1, bb);
    svc.access(a, true, &data);
    svc.drain();
    {
        const auto rep = svc.shardReport(0);
        EXPECT_TRUE(rep.journaled);
        EXPECT_EQ(rep.journalLagRecords, 0u)
            << "drain-end flush must have acked every parked record";
        EXPECT_EQ(rep.lastReplayDepth, 0u);
    }

    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);
    const FrontendResult r = svc.access(a, false); // lossless rollback
    EXPECT_EQ(r.data, data);
    svc.drain();
    {
        const auto rep = svc.shardReport(0);
        EXPECT_EQ(rep.recoveries, 1u);
        EXPECT_TRUE(rep.journaled);
        EXPECT_GT(rep.lastReplayDepth, 0u)
            << "the rollback replayed the journal suffix";
        EXPECT_EQ(rep.journalLagRecords, 0u);
    }
}

} // namespace
} // namespace froram
