/**
 * @file
 * Parameterized property sweeps across configuration space: bucket
 * codec geometries, PosMap format widths, recursion fan-outs, PLB
 * geometries, DRAM configurations, and frontend scheme matrices. These
 * complement the per-module unit tests with breadth.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/unified_frontend.hpp"
#include "mem/dram_model.hpp"
#include "codec_test_util.hpp"
#include "oram/bucket_codec.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

// ---------------------------------------------------------------- codec

struct CodecGeom {
    u64 numBlocks;
    u64 blockBytes;
    u32 z;
    u64 macBytes;
};

class CodecSweep : public ::testing::TestWithParam<CodecGeom> {};

TEST_P(CodecSweep, FullBucketRoundTrip)
{
    const auto g = GetParam();
    OramParams p = OramParams::forCapacity(g.numBlocks * g.blockBytes,
                                           g.blockBytes, g.z);
    p.macBytes = g.macBytes;
    AesCtrCipher cipher;
    BucketCodec codec(p, &cipher);
    Xoshiro256 rng(77);

    Bucket b = Bucket::empty(p);
    for (u32 s = 0; s < p.z; ++s) {
        if (s % 2 == 1)
            continue; // leave odd slots dummy
        b.slots[s].addr = rng.below(p.numBlocks);
        b.slots[s].leaf = rng.below(p.numLeaves());
        b.slots[s].data.resize(p.storedBlockBytes());
        for (auto& byte : b.slots[s].data)
            byte = static_cast<u8>(rng.next());
    }
    std::vector<u8> image;
    encodeBucket(codec, 9, b, {}, image);
    ASSERT_EQ(image.size(), p.bucketPhysBytes());
    const Bucket d = decodeBucket(codec, 9, image);
    for (u32 s = 0; s < p.z; ++s) {
        if (s % 2 == 1) {
            EXPECT_FALSE(d.slots[s].valid()) << "slot " << s;
            continue;
        }
        EXPECT_EQ(d.slots[s].addr, b.slots[s].addr) << "slot " << s;
        EXPECT_EQ(d.slots[s].leaf, b.slots[s].leaf) << "slot " << s;
        EXPECT_EQ(d.slots[s].data, b.slots[s].data) << "slot " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CodecSweep,
    ::testing::Values(CodecGeom{1 << 10, 64, 4, 0},
                      CodecGeom{1 << 14, 64, 4, 16},
                      CodecGeom{1 << 12, 128, 3, 0},
                      CodecGeom{1 << 12, 128, 3, 16},
                      CodecGeom{1 << 10, 32, 4, 0},
                      CodecGeom{1 << 16, 4096, 4, 0},
                      CodecGeom{1 << 10, 64, 7, 0},
                      CodecGeom{1 << 18, 64, 4, 16}),
    [](const auto& info) {
        return "N" + std::to_string(info.param.numBlocks) + "_B" +
               std::to_string(info.param.blockBytes) + "_Z" +
               std::to_string(info.param.z) + "_M" +
               std::to_string(info.param.macBytes);
    });

// --------------------------------------------------------- posmap format

class BetaSweep : public ::testing::TestWithParam<u32> {};

TEST_P(BetaSweep, CompressedRoundTripAndBounds)
{
    const u32 beta = GetParam();
    PosMapFormat f(PosMapFormat::Kind::Compressed, 64, beta);
    // alpha + X*beta must fit the block.
    EXPECT_LE(64 + u64{f.x()} * beta, 64 * 8u);
    EXPECT_LE(f.serializedBytes(), 64u);
    // Round-trip with extreme counter values.
    PosMapContent c = f.makeFresh();
    c.gc = ~u64{0} >> beta; // maximal GC that still shifts safely
    for (u32 j = 0; j < f.x(); ++j)
        c.ic[j] = static_cast<u16>((u32{1} << beta) - 1 - (j % 3));
    std::vector<u8> buf(f.serializedBytes());
    f.serialize(c, buf.data());
    const PosMapContent d = f.deserialize(buf.data());
    EXPECT_EQ(d.gc, c.gc);
    for (u32 j = 0; j < f.x(); ++j)
        EXPECT_EQ(d.ic[j], c.ic[j]) << "beta " << beta << " j " << j;
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaSweep,
                         ::testing::Values(2, 3, 5, 7, 8, 11, 14, 16),
                         [](const auto& info) {
                             return "beta" + std::to_string(info.param);
                         });

// ------------------------------------------------------------ recursion

class FanoutSweep : public ::testing::TestWithParam<u32> {};

TEST_P(FanoutSweep, GeometryInvariants)
{
    const u32 x = GetParam();
    for (u64 n : {u64{100}, u64{4096}, u64{1} << 20, (u64{1} << 20) + 3}) {
        const auto g = RecursionGeometry::compute(n, x, 64);
        // Level sizes shrink by exactly X (ceil) per level.
        for (u32 i = 1; i < g.h; ++i)
            EXPECT_EQ(g.levelBlocks[i],
                      divCeil(g.levelBlocks[i - 1], x));
        EXPECT_LE(g.onChipEntries, 64u);
        // Every data address maps to strictly increasing unified
        // addresses up the levels, all within totalBlocks.
        Xoshiro256 rng(x);
        for (int t = 0; t < 50; ++t) {
            const u64 a0 = rng.below(n);
            u64 prev = 0;
            for (u32 i = 0; i < g.h; ++i) {
                const u64 ua = g.unifiedAddr(i, a0);
                EXPECT_LT(ua, g.totalBlocks);
                if (i > 0) {
                    EXPECT_GT(ua, prev);
                }
                prev = ua;
                EXPECT_LT(g.levelAddr(i, a0), g.levelBlocks[i]);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64),
                         [](const auto& info) {
                             return "X" + std::to_string(info.param);
                         });

// ------------------------------------------------------------------ plb

class PlbGeomSweep
    : public ::testing::TestWithParam<std::pair<u64, u32>> {};

TEST_P(PlbGeomSweep, FillEvictConsistency)
{
    const auto [bytes, ways] = GetParam();
    Plb plb({bytes, 64, ways});
    const u64 entries = plb.numEntries();
    // Fill with twice the capacity; every insert must either fit or
    // evict exactly one block, and the PLB never exceeds capacity.
    u64 resident = 0;
    for (Addr a = 0; a < 2 * entries; ++a) {
        PlbEntry e;
        e.addr = a;
        const auto victim = plb.insert(std::move(e));
        resident += victim.has_value() ? 0 : 1;
        EXPECT_LE(resident, entries);
    }
    // Drain returns exactly the resident set, each address once.
    const auto all = plb.drain();
    EXPECT_EQ(all.size(), resident);
    std::set<Addr> seen;
    for (const auto& e : all)
        EXPECT_TRUE(seen.insert(e.addr).second);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PlbGeomSweep,
    ::testing::Values(std::make_pair(u64{1024}, 1u),
                      std::make_pair(u64{4096}, 2u),
                      std::make_pair(u64{8192}, 4u),
                      std::make_pair(u64{65536}, 1u),
                      std::make_pair(u64{65536}, 1024u)),
    [](const auto& info) {
        return "B" + std::to_string(info.param.first) + "_W" +
               std::to_string(info.param.second);
    });

// ----------------------------------------------------------------- dram

TEST(DramSweep, TimingMonotoneInChannelCount)
{
    // Under any fixed request pattern, more channels never hurt.
    for (u64 span : {u64{1} << 14, u64{1} << 18, u64{1} << 22}) {
        u64 prev = ~u64{0};
        for (u32 ch : {1u, 2u, 4u, 8u}) {
            DramModel m(DramConfig::ddr3(ch));
            std::vector<DramRequest> reqs;
            Xoshiro256 rng(span);
            for (int i = 0; i < 512; ++i)
                reqs.push_back({rng.below(span) & ~63ULL, i % 4 == 0});
            const u64 t = m.accessBatch(reqs);
            EXPECT_LE(t, prev) << "span " << span << " ch " << ch;
            prev = t;
        }
    }
}

TEST(DramSweep, DecodePartitionsAddressSpace)
{
    // Every 64-byte burst maps to exactly one (channel, bank, row, col)
    // and distinct bursts within a row region stay distinct.
    DramModel m(DramConfig::ddr3(4));
    std::set<std::tuple<u32, u32, u64, u64>> seen;
    for (u64 a = 0; a < 64 * 4096; a += 64) {
        const auto d = m.decode(a);
        EXPECT_TRUE(
            seen.insert({d.channel, d.bank, d.row, d.col}).second)
            << "duplicate mapping at " << a;
    }
}

// ------------------------------------------------------ frontend matrix

struct MatrixPoint {
    u64 blockBytes;
    u32 z;
    PosMapFormat::Kind kind;
    bool integrity;
};

class FrontendMatrix : public ::testing::TestWithParam<MatrixPoint> {};

TEST_P(FrontendMatrix, SmokeAndAccounting)
{
    const auto m = GetParam();
    UnifiedFrontendConfig c;
    c.numBlocks = 4096;
    c.blockBytes = m.blockBytes;
    c.z = m.z;
    c.format = m.kind;
    c.integrity = m.integrity;
    c.plb.capacityBytes = 16 * m.blockBytes;
    c.onChipTargetBytes = 256;
    c.storage = StorageMode::Meta;
    UnifiedFrontend fe(c, nullptr, nullptr);
    Xoshiro256 rng(3);
    for (int i = 0; i < 300; ++i) {
        const auto r = fe.access(rng.below(4096), i % 2 == 0);
        // Accounting invariants.
        EXPECT_GE(r.bytesMoved, r.posmapBytes);
        EXPECT_EQ(r.bytesMoved % (2 * fe.backend().params().pathBytes()),
                  0u);
        EXPECT_GE(r.backendAccesses, 1u);
        EXPECT_GT(r.cycles, 0u);
    }
    // PLB hit counters consistent with lookups.
    const auto& ps = fe.plb().stats();
    EXPECT_EQ(ps.get("hits") + ps.get("misses") > 0, fe.geometry().h > 1);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FrontendMatrix,
    ::testing::Values(
        MatrixPoint{64, 4, PosMapFormat::Kind::Leaves, false},
        MatrixPoint{64, 3, PosMapFormat::Kind::Compressed, false},
        MatrixPoint{64, 4, PosMapFormat::Kind::Compressed, true},
        MatrixPoint{128, 4, PosMapFormat::Kind::Compressed, false},
        MatrixPoint{128, 3, PosMapFormat::Kind::FlatCounter, true},
        MatrixPoint{256, 4, PosMapFormat::Kind::Leaves, false},
        MatrixPoint{32, 4, PosMapFormat::Kind::FlatCounter, false},
        MatrixPoint{128, 5, PosMapFormat::Kind::Compressed, true}),
    [](const auto& info) {
        const auto& p = info.param;
        std::string k = p.kind == PosMapFormat::Kind::Leaves ? "L"
                        : p.kind == PosMapFormat::Kind::Compressed
                            ? "C"
                            : "F";
        return "B" + std::to_string(p.blockBytes) + "_Z" +
               std::to_string(p.z) + "_" + k +
               (p.integrity ? "_int" : "");
    });

} // namespace
} // namespace froram
