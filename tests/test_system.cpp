/**
 * @file
 * Full-system integration tests: the OramSystem builder, scheme naming
 * under the paper's parameterizations, end-to-end latency sanity (the
 * Table 2 zone), channel scaling, and the insecure baseline.
 */
#include <gtest/gtest.h>

#include "cachesim/core_model.hpp"
#include "core/oram_system.hpp"
#include "workload/spec_proxy.hpp"

namespace froram {
namespace {

OramSystemConfig
quickConfig()
{
    OramSystemConfig c;
    c.capacityBytes = u64{64} << 20; // 64 MB: fast but still recursive
    c.storage = StorageMode::Meta;
    return c;
}

TEST(OramSystem, SchemeNamesMatchPaper)
{
    // Table-1 configuration (64 B blocks) yields the paper's names.
    OramSystemConfig c = quickConfig();
    EXPECT_EQ(OramSystem(SchemeId::Recursive, c).frontend().name(),
              "R_X8");
    EXPECT_EQ(OramSystem(SchemeId::Plb, c).frontend().name(), "P_X16");
    EXPECT_EQ(OramSystem(SchemeId::PlbCompressed, c).frontend().name(),
              "PC_X32");
    EXPECT_EQ(OramSystem(SchemeId::PlbIntegrity, c).frontend().name(),
              "PI_X8");
    EXPECT_EQ(
        OramSystem(SchemeId::PlbIntegrityCompressed, c).frontend().name(),
        "PIC_X32");
}

TEST(OramSystem, Figure8BlockSizeDoublesX)
{
    // 128-byte blocks (the [26] parameters) turn PC_X32 into PC_X64.
    OramSystemConfig c = quickConfig();
    c.blockBytes = 128;
    c.z = 3;
    c.dramChannels = 4;
    EXPECT_EQ(OramSystem(SchemeId::PlbCompressed, c).frontend().name(),
              "PC_X64");
}

TEST(OramSystem, SchemeFromNameRoundTrip)
{
    EXPECT_EQ(schemeFromName("R_X8"), SchemeId::Recursive);
    EXPECT_EQ(schemeFromName("P_X16"), SchemeId::Plb);
    EXPECT_EQ(schemeFromName("PC_X32"), SchemeId::PlbCompressed);
    EXPECT_EQ(schemeFromName("PI"), SchemeId::PlbIntegrity);
    EXPECT_EQ(schemeFromName("PIC_X32"),
              SchemeId::PlbIntegrityCompressed);
    EXPECT_EQ(schemeFromName("Phantom"), SchemeId::Phantom);
    EXPECT_THROW(schemeFromName("XYZ"), FatalError);
}

TEST(OramSystem, Table2LatencyZone)
{
    // Table 2: ORAM tree latency at 4 GB / Z=4 / 64 B blocks is ~2147 /
    // 1208 / 697 / 463 processor cycles for 1/2/4/8 channels. Check the
    // zone and the monotone sub-linear shape.
    OramSystemConfig c;
    c.capacityBytes = u64{4} << 30;
    c.storage = StorageMode::Null;
    std::vector<double> avg;
    for (u32 ch : {1u, 2u, 4u, 8u}) {
        c.dramChannels = ch;
        OramSystem sys(SchemeId::PlbCompressed, c);
        // Measure pure backend path latency: access random addresses
        // and divide total DRAM time by backend accesses.
        Xoshiro256 rng(1);
        u64 cycles = 0, accesses = 0;
        for (int i = 0; i < 200; ++i) {
            const auto r = sys.frontend().access(
                rng.below(c.capacityBytes / 64), false);
            cycles += r.cycles;
            accesses += r.backendAccesses;
        }
        avg.push_back(static_cast<double>(cycles) / accesses);
    }
    // Zone: paper values +-45% (our DRAM model is a reimplementation).
    EXPECT_NEAR(avg[0], 2147, 2147 * 0.45);
    EXPECT_NEAR(avg[1], 1208, 1208 * 0.45);
    EXPECT_NEAR(avg[2], 697, 697 * 0.45);
    EXPECT_NEAR(avg[3], 463, 463 * 0.45);
    // Monotone decreasing, sub-linear gains.
    EXPECT_GT(avg[0], avg[1]);
    EXPECT_GT(avg[1], avg[2]);
    EXPECT_GT(avg[2], avg[3]);
    EXPECT_LT(avg[0] / avg[3], 8.0);
}

TEST(InsecureBaseline, LatencyNearPaperValue)
{
    // "a DRAM access for an insecure system takes on average 58
    // processor cycles" (Section 7.1.2).
    InsecureMemory mem(2, LatencyModel{});
    Xoshiro256 rng(2);
    u64 total = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        total += mem.accessCycles(rng.below(u64{4} << 30) & ~63ULL,
                                  i % 3 == 0);
    const double avg = static_cast<double>(total) / n;
    EXPECT_NEAR(avg, 58.0, 25.0);
}

TEST(FullSystem, OramSlowsDownVsInsecure)
{
    // End-to-end: proxy workload through caches; ORAM must cost several
    // x the insecure system (Figure 6's premise), and PC_X32 must beat
    // R_X8.
    OramSystemConfig c = quickConfig();
    c.capacityBytes = u64{256} << 20;
    auto run_scheme = [&](SchemeId id) {
        OramSystem sys(id, c);
        OramMainMemory mem(&sys.frontend());
        MemoryHierarchy hier(HierarchyConfig{}, &mem);
        InOrderCore core(&hier);
        auto gen = makeSpecProxy(specByName("gcc"), 7);
        return core.run(*gen, 4000, 2000).cycles;
    };
    InsecureMemory imem(2, LatencyModel{});
    PlainMainMemory pmem(&imem);
    MemoryHierarchy hier(HierarchyConfig{}, &pmem);
    InOrderCore core(&hier);
    auto gen = makeSpecProxy(specByName("gcc"), 7);
    const u64 base = core.run(*gen, 4000, 2000).cycles;

    const u64 recursive = run_scheme(SchemeId::Recursive);
    const u64 plb = run_scheme(SchemeId::PlbCompressed);
    EXPECT_GT(recursive, 2 * base);
    EXPECT_LT(plb, recursive) << "PC_X32 must outperform R_X8";
}

TEST(FullSystem, IntegrityCostsLittleOverCompressed)
{
    // 256 MB keeps PC/PIC at the same recursion depth (as at 4 GB), so
    // the comparison isolates the MAC-bit overhead.
    OramSystemConfig c = quickConfig();
    c.capacityBytes = u64{256} << 20;
    auto bytes_per_access = [&](SchemeId id) {
        OramSystem sys(id, c);
        Xoshiro256 rng(3);
        u64 bytes = 0;
        const int n = 300;
        for (int i = 0; i < n; ++i)
            bytes +=
                sys.frontend().access(rng.below(c.capacityBytes / 64),
                                      false)
                    .bytesMoved;
        return static_cast<double>(bytes) / n;
    };
    const double pc = bytes_per_access(SchemeId::PlbCompressed);
    const double pic =
        bytes_per_access(SchemeId::PlbIntegrityCompressed);
    // PMMAC adds only the MAC bits: ~5-15% more bytes (the "7%
    // performance overhead" claim's mechanism).
    EXPECT_GT(pic, pc);
    EXPECT_LT(pic / pc, 1.25);
}

TEST(FullSystem, TraceCollection)
{
    OramSystemConfig c = quickConfig();
    c.collectTrace = true;
    OramSystem sys(SchemeId::PlbCompressed, c);
    sys.frontend().access(0, false);
    EXPECT_FALSE(sys.trace().empty());
    sys.clearTrace();
    EXPECT_TRUE(sys.trace().empty());
}

} // namespace
} // namespace froram
