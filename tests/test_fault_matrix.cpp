/**
 * @file
 * Fault-matrix conformance suite: the FaultInjectingBackend /
 * RetryingBackend / fail-stop stack exercised over every storage
 * backend and both bucket schemes.
 *
 * The invariant every test enforces is the robustness contract of the
 * fault model (README "Fault model & recovery"): under injected storage
 * misbehavior an access either returns the CORRECT value or raises a
 * TYPED error (StorageError / IntegrityViolation) — never a wrong
 * value, never a hang, never an abort. Bit-rot is the one fault class
 * whose detection is scheme-conditional: PI/PIC (PMMAC) detect it
 * fail-stop, PC by design cannot (the paper's integrity claim belongs
 * to the PMMAC schemes), so rot assertions run under PlbIntegrity.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/oram_system.hpp"
#include "mem/fault_injecting_backend.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::string
freshFile(const std::string& tag)
{
    static int counter = 0;
    return ::testing::TempDir() + "froram_fault_" +
           std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++) + ".oram";
}

/** Small functional system; 1024 data blocks of 64 B. */
OramSystemConfig
smallConfig(StorageBackendKind kind, BucketSchemeKind bucket,
            const std::string& path = "")
{
    OramSystemConfig c;
    c.capacityBytes = u64{1} << 16;
    c.blockBytes = 64;
    c.storage = StorageMode::Encrypted;
    c.backend = kind;
    c.backendPath = path;
    c.bucketScheme = bucket;
    c.seed = 0xfa017;
    return c;
}

std::vector<u8>
payloadFor(Addr addr, u64 version, u64 block_bytes)
{
    std::vector<u8> data(block_bytes);
    for (u64 j = 0; j < block_bytes; ++j)
        data[j] = static_cast<u8>(addr * 31 + version * 131 + j);
    return data;
}

/** One write access through the unified submit surface. */
void
writeBlock(OramSystem& sys, Addr addr, const std::vector<u8>& data)
{
    std::vector<AccessRequest> reqs{{addr, true, &data, false}};
    std::vector<AccessResult> res;
    sys.submit(reqs, res);
}

/** One read access through the unified submit surface. */
AccessResult
readBlock(OramSystem& sys, Addr addr)
{
    std::vector<AccessRequest> reqs{{addr, false, nullptr, false}};
    std::vector<AccessResult> res;
    sys.submit(reqs, res);
    return res[0];
}

TEST(FaultMatrix, ScheduleCountersTriggersAndPersistence)
{
    FaultSchedule sched;
    EXPECT_EQ(sched.opsSeen(FaultOp::Read), 0u);
    EXPECT_EQ(sched.faultsFired(), 0u);

    // afterOps gates eligibility; count bounds firings; a persistent
    // spec never exhausts.
    sched.inject({FaultOp::Read, FaultKind::Eio, /*afterOps=*/2,
                  /*count=*/2});
    for (int i = 0; i < 8; ++i) {
        const FaultSchedule::Decision d = sched.onOp(FaultOp::Read);
        const bool expect_fire = i >= 2 && i < 4;
        EXPECT_EQ(d.fire, expect_fire) << "op " << i;
    }
    EXPECT_EQ(sched.opsSeen(FaultOp::Read), 8u);
    EXPECT_EQ(sched.faultsFired(), 2u);

    // Other op classes are untouched by a Read spec.
    EXPECT_FALSE(sched.onOp(FaultOp::Write).fire);
    EXPECT_EQ(sched.opsSeen(FaultOp::Write), 1u);

    FaultSpec forever;
    forever.op = FaultOp::Sync;
    forever.count = FaultSpec::kPersistentCount;
    sched.inject(forever);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(sched.onOp(FaultOp::Sync).fire);

    // clear() disarms but keeps counting.
    sched.clear();
    EXPECT_FALSE(sched.onOp(FaultOp::Sync).fire);
    EXPECT_EQ(sched.opsSeen(FaultOp::Sync), 6u);
}

TEST(FaultMatrix, RandomModeIsSeedDeterministic)
{
    FaultSchedule a;
    FaultSchedule b;
    a.setRandomRate(0.25, 0xdeadbeef);
    b.setRandomRate(0.25, 0xdeadbeef);
    u64 fired = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool fa = a.onOp(FaultOp::Read).fire;
        const bool fb = b.onOp(FaultOp::Read).fire;
        ASSERT_EQ(fa, fb) << "op " << i;
        fired += fa ? 1 : 0;
    }
    // Rate is honored to within loose bounds (seeded, so this is a
    // fixed outcome, not a statistical assertion).
    EXPECT_GT(fired, 300u);
    EXPECT_LT(fired, 700u);
}

TEST(FaultMatrix, IdleDecoratorIsTransparent)
{
    // An armed-but-empty schedule must not change any access outcome
    // versus the undecorated system (the zero-fault hot path is the
    // undecorated system; this pins the injected path's equivalence).
    OramSystemConfig plain =
        smallConfig(StorageBackendKind::Flat, BucketSchemeKind::Path);
    OramSystemConfig wrapped = plain;
    wrapped.faultSchedule = std::make_shared<FaultSchedule>();

    OramSystem a(SchemeId::PlbCompressed, plain);
    OramSystem b(SchemeId::PlbCompressed, wrapped);
    Xoshiro256 rng(7);
    for (int i = 0; i < 300; ++i) {
        const Addr addr = rng.below(1024);
        if (rng.below(2) == 0) {
            const std::vector<u8> data = payloadFor(addr, i, 64);
            writeBlock(a, addr, data);
            writeBlock(b, addr, data);
        } else {
            const AccessResult ra = readBlock(a, addr);
            const AccessResult rb = readBlock(b, addr);
            ASSERT_EQ(ra.data, rb.data) << "addr " << addr;
            ASSERT_EQ(ra.coldMiss, rb.coldMiss);
        }
    }
    EXPECT_EQ(wrapped.faultSchedule->faultsFired(), 0u);
}

/**
 * The matrix: {flat, dram, mmap} x {Path, Ring} x one persistent-EIO
 * spec per data-plane op class, with the retry layer disabled. Every
 * access must either return the reference value or throw a typed
 * StorageError; once one escapes, the system must be fail-stopped. Op
 * classes a given backend/engine combination never issues simply never
 * fire — the invariant holds vacuously and is still checked.
 */
TEST(FaultMatrix, TypedErrorOrCorrectValueAcrossMatrix)
{
    const StorageBackendKind kinds[] = {StorageBackendKind::Flat,
                                        StorageBackendKind::TimedDram,
                                        StorageBackendKind::MmapFile};
    const BucketSchemeKind buckets[] = {BucketSchemeKind::Path,
                                        BucketSchemeKind::Ring};
    const FaultOp ops[] = {FaultOp::Read, FaultOp::Write,
                           FaultOp::GatherView, FaultOp::StreamBatch};

    for (const StorageBackendKind kind : kinds) {
        for (const BucketSchemeKind bucket : buckets) {
            for (const FaultOp op : ops) {
                SCOPED_TRACE(std::string(toString(kind)) + "/" +
                             (bucket == BucketSchemeKind::Ring ? "ring"
                                                               : "path") +
                             "/" + toString(op));
                std::string path;
                if (kind == StorageBackendKind::MmapFile)
                    path = freshFile("matrix");
                OramSystemConfig cfg = smallConfig(kind, bucket, path);
                cfg.faultSchedule = std::make_shared<FaultSchedule>();
                cfg.storageRetry.maxAttempts = 1; // no absorption
                OramSystem sys(SchemeId::PlbCompressed, cfg);

                std::map<Addr, std::vector<u8>> reference;
                for (Addr a = 0; a < 32; ++a) {
                    const std::vector<u8> data = payloadFor(a, 1, 64);
                    writeBlock(sys, a, data);
                    reference[a] = data;
                }

                FaultSpec spec;
                spec.op = op;
                spec.kind = FaultKind::Eio;
                spec.afterOps = cfg.faultSchedule->opsSeen(op);
                spec.count = 1;
                spec.transient = false;
                cfg.faultSchedule->inject(spec);

                bool escaped = false;
                for (int i = 0; i < 60 && !escaped; ++i) {
                    const Addr addr = static_cast<Addr>(i % 32);
                    try {
                        const AccessResult r = readBlock(sys, addr);
                        ASSERT_EQ(r.data, reference[addr])
                            << "wrong value for addr " << addr;
                    } catch (const StorageError&) {
                        escaped = true;
                    }
                }
                if (escaped) {
                    EXPECT_GE(cfg.faultSchedule->faultsFired(), 1u);
                    EXPECT_TRUE(sys.faulted());
                    // Fail-stop: the system refuses further service
                    // instead of running on possibly-torn state.
                    EXPECT_THROW(readBlock(sys, 0), StorageError);
                } else {
                    // This op class is not exercised by this stack;
                    // nothing fired and every value stayed correct.
                    EXPECT_EQ(cfg.faultSchedule->faultsFired(), 0u);
                }
                if (!path.empty())
                    std::remove(path.c_str());
            }
        }
    }
}

TEST(FaultMatrix, TransientFaultsAreAbsorbedByRetry)
{
    OramSystemConfig cfg =
        smallConfig(StorageBackendKind::Flat, BucketSchemeKind::Path);
    cfg.faultSchedule = std::make_shared<FaultSchedule>();
    cfg.storageRetry.maxAttempts = 5;
    cfg.storageRetry.baseBackoffUs = 1;
    cfg.storageRetry.maxBackoffUs = 20;
    OramSystem sys(SchemeId::PlbCompressed, cfg);

    std::map<Addr, std::vector<u8>> reference;
    for (Addr a = 0; a < 16; ++a) {
        const std::vector<u8> data = payloadFor(a, 3, 64);
        writeBlock(sys, a, data);
        reference[a] = data;
    }

    // Three one-shot transient EIOs on upcoming reads: the retry layer
    // must absorb each one below the engine.
    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = cfg.faultSchedule->opsSeen(FaultOp::Read);
    spec.count = 3;
    spec.transient = true;
    cfg.faultSchedule->inject(spec);

    for (Addr a = 0; a < 16; ++a)
        EXPECT_EQ(readBlock(sys, a).data, reference[a]) << "addr " << a;

    EXPECT_EQ(cfg.faultSchedule->faultsFired(), 3u);
    EXPECT_GE(sys.storageRetries(), 3u);
    EXPECT_FALSE(sys.faulted());
}

TEST(FaultMatrix, RetryBudgetExhaustionEscapesTyped)
{
    OramSystemConfig cfg =
        smallConfig(StorageBackendKind::Flat, BucketSchemeKind::Path);
    cfg.faultSchedule = std::make_shared<FaultSchedule>();
    cfg.storageRetry.maxAttempts = 3;
    cfg.storageRetry.baseBackoffUs = 1;
    cfg.storageRetry.maxBackoffUs = 10;
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    writeBlock(sys, 5, payloadFor(5, 1, 64));

    // A persistently failing medium: every attempt of every read
    // faults, so the budget runs dry and the error escapes — still
    // typed, still marked transient for the caller's own policy.
    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.count = FaultSpec::kPersistentCount;
    spec.transient = true;
    cfg.faultSchedule->inject(spec);

    bool caught = false;
    try {
        readBlock(sys, 5);
    } catch (const StorageError& e) {
        caught = true;
        EXPECT_TRUE(e.transient());
    }
    EXPECT_TRUE(caught);
    EXPECT_GE(sys.storageRetries(), 2u); // maxAttempts - 1 reissues
    EXPECT_TRUE(sys.faulted());
}

TEST(FaultMatrix, TornWriteSurfacesTypedAndCheckpointRecovers)
{
    OramSystemConfig cfg =
        smallConfig(StorageBackendKind::Flat, BucketSchemeKind::Path);
    cfg.faultSchedule = std::make_shared<FaultSchedule>();
    cfg.storageRetry.maxAttempts = 1;
    OramSystem sys(SchemeId::PlbCompressed, cfg);

    std::map<Addr, std::vector<u8>> reference;
    for (Addr a = 0; a < 24; ++a) {
        const std::vector<u8> data = payloadFor(a, 9, 64);
        writeBlock(sys, a, data);
        reference[a] = data;
    }
    const std::vector<u8> blob = sys.checkpoint(CheckpointScope::Full);

    FaultSpec spec;
    spec.op = FaultOp::Write;
    spec.kind = FaultKind::TornWrite;
    spec.afterOps = cfg.faultSchedule->opsSeen(FaultOp::Write);
    spec.count = 1;
    spec.transient = false;
    cfg.faultSchedule->inject(spec);

    // Every access writes its path back, so the torn write fires on
    // the next access and must surface typed (the medium really did
    // tear the bytes — continuing would be serving torn state).
    EXPECT_THROW(readBlock(sys, 0), StorageError);
    EXPECT_TRUE(sys.faulted());
    EXPECT_THROW(readBlock(sys, 1), StorageError);

    // Recovery path: a fresh system (no fault plumbing — operational
    // config is excluded from the snapshot fingerprint) restores the
    // pre-fault checkpoint and serves every reference value.
    OramSystemConfig clean =
        smallConfig(StorageBackendKind::Flat, BucketSchemeKind::Path);
    OramSystem fresh(SchemeId::PlbCompressed, clean);
    fresh.restore(blob);
    for (const auto& [addr, data] : reference)
        EXPECT_EQ(readBlock(fresh, addr).data, data) << "addr " << addr;
}

TEST(FaultMatrix, BitRotIsDetectedUnderPmmac)
{
    // PI scheme: PMMAC must turn silent rot into a typed fail-stop —
    // either a payload MAC mismatch or a block-suppression violation —
    // and never let a wrong value out. (Under PC this fault class is
    // undetectable by design; see the file comment.)
    OramSystemConfig cfg =
        smallConfig(StorageBackendKind::Flat, BucketSchemeKind::Path);
    cfg.faultSchedule = std::make_shared<FaultSchedule>();
    OramSystem sys(SchemeId::PlbIntegrity, cfg);

    std::map<Addr, std::vector<u8>> reference;
    for (Addr a = 0; a < 1024; ++a) {
        const std::vector<u8> data = payloadFor(a, 2, 64);
        writeBlock(sys, a, data);
        reference[a] = data;
    }

    // Rot a pseudorandom bit of every upcoming path read. Seeded, so
    // the hit sequence — and hence the test outcome — is fixed.
    const u64 base = cfg.faultSchedule->opsSeen(FaultOp::Read);
    for (u64 k = 0; k < 64; ++k) {
        FaultSpec spec;
        spec.op = FaultOp::Read;
        spec.kind = FaultKind::BitRot;
        spec.afterOps = base + k;
        spec.count = 1;
        spec.bitIndex = splitmix64Mix(0xb17507 + k);
        cfg.faultSchedule->inject(spec);
    }

    Xoshiro256 rng(99);
    bool detected = false;
    for (int i = 0; i < 64 && !detected; ++i) {
        const Addr addr = rng.below(1024);
        try {
            const AccessResult r = readBlock(sys, addr);
            // Pre-detection reads whose rotted bit fell on dead bytes
            // must still be exactly right.
            ASSERT_EQ(r.data, reference[addr]) << "wrong value, addr "
                                               << addr;
        } catch (const IntegrityViolation&) {
            detected = true;
        }
    }
    EXPECT_TRUE(detected) << "64 rotted path reads escaped PMMAC";
    EXPECT_TRUE(sys.faulted());
    EXPECT_THROW(readBlock(sys, 0), StorageError); // fail-stopped
}

TEST(FaultMatrix, CheckpointSyncFaultIsTypedAndNonFatal)
{
    // The msync-failure class, at the checkpoint stage: checkpoint()
    // issues the durability barrier BEFORE serializing, so a failed
    // barrier aborts the snapshot typed, leaves the system serving,
    // and the next checkpoint succeeds.
    for (const StorageBackendKind kind :
         {StorageBackendKind::Flat, StorageBackendKind::MmapFile}) {
        SCOPED_TRACE(toString(kind));
        std::string path;
        if (kind == StorageBackendKind::MmapFile)
            path = freshFile("sync");
        OramSystemConfig cfg =
            smallConfig(kind, BucketSchemeKind::Path, path);
        cfg.faultSchedule = std::make_shared<FaultSchedule>();
        cfg.storageRetry.maxAttempts = 1;
        OramSystem sys(SchemeId::PlbCompressed, cfg);

        std::map<Addr, std::vector<u8>> reference;
        for (Addr a = 0; a < 16; ++a) {
            const std::vector<u8> data = payloadFor(a, 4, 64);
            writeBlock(sys, a, data);
            reference[a] = data;
        }

        FaultSpec spec;
        spec.op = FaultOp::Sync;
        spec.kind = FaultKind::Eio;
        spec.afterOps = cfg.faultSchedule->opsSeen(FaultOp::Sync);
        spec.count = 1;
        spec.transient = false;
        cfg.faultSchedule->inject(spec);

        EXPECT_THROW(sys.checkpoint(CheckpointScope::Full),
                     StorageError);
        EXPECT_FALSE(sys.faulted()); // nothing was serialized or torn
        for (Addr a = 0; a < 16; ++a)
            EXPECT_EQ(readBlock(sys, a).data, reference[a]);
        EXPECT_FALSE(sys.checkpoint(CheckpointScope::Full).empty());
        if (!path.empty())
            std::remove(path.c_str());
    }
}

TEST(FaultMatrix, LatencySpikesOnlyDelay)
{
    OramSystemConfig cfg =
        smallConfig(StorageBackendKind::Flat, BucketSchemeKind::Path);
    cfg.faultSchedule = std::make_shared<FaultSchedule>();
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    const std::vector<u8> data = payloadFor(3, 6, 64);
    writeBlock(sys, 3, data);

    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Latency;
    spec.afterOps = cfg.faultSchedule->opsSeen(FaultOp::Read);
    spec.count = 3;
    spec.latencyUs = 500;
    cfg.faultSchedule->inject(spec);

    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(readBlock(sys, 3).data, data);
    EXPECT_EQ(cfg.faultSchedule->faultsFired(), 3u);
    EXPECT_FALSE(sys.faulted());
}

TEST(FaultMatrix, PrefetchFaultsAreSwallowed)
{
    // Prefetch is advisory: a persistent EIO scheduled against it may
    // burn firings but must never surface (mmap is the prefetchable
    // backend, so hints actually reach the decorator here).
    const std::string path = freshFile("prefetch");
    OramSystemConfig cfg = smallConfig(StorageBackendKind::MmapFile,
                                       BucketSchemeKind::Path, path);
    cfg.faultSchedule = std::make_shared<FaultSchedule>();
    OramSystem sys(SchemeId::PlbCompressed, cfg);

    FaultSpec spec;
    spec.op = FaultOp::Prefetch;
    spec.kind = FaultKind::Eio;
    spec.count = FaultSpec::kPersistentCount;
    spec.transient = false;
    cfg.faultSchedule->inject(spec);

    std::map<Addr, std::vector<u8>> reference;
    std::vector<AccessRequest> reqs;
    std::vector<std::vector<u8>> payloads;
    for (Addr a = 0; a < 32; ++a)
        payloads.push_back(payloadFor(a, 5, 64));
    for (Addr a = 0; a < 32; ++a) {
        reqs.push_back({a, true, &payloads[a], false});
        reference[a] = payloads[a];
    }
    std::vector<AccessResult> res;
    sys.submit(reqs, res); // batched: hints fire between requests
    for (Addr a = 0; a < 32; ++a) {
        reqs[a] = {a, false, nullptr, false};
    }
    sys.submit(reqs, res);
    for (Addr a = 0; a < 32; ++a)
        EXPECT_EQ(res[a].data, reference[a]) << "addr " << a;
    EXPECT_FALSE(sys.faulted());
    std::remove(path.c_str());
}

TEST(FaultMatrix, SeededSoakUnderRandomTransientFaults)
{
    // The chaos-leg workhorse: a 1% random transient-EIO rate on reads
    // under a generous retry budget, verified access-by-access against
    // a reference map. Everything is seeded, so the run (including
    // every fault site) is reproducible bit-for-bit.
    for (const BucketSchemeKind bucket :
         {BucketSchemeKind::Path, BucketSchemeKind::Ring}) {
        SCOPED_TRACE(bucket == BucketSchemeKind::Ring ? "ring" : "path");
        OramSystemConfig cfg =
            smallConfig(StorageBackendKind::Flat, bucket);
        cfg.faultSchedule = std::make_shared<FaultSchedule>();
        cfg.faultSchedule->setRandomRate(0.01, 0x5047);
        cfg.storageRetry.maxAttempts = 8;
        cfg.storageRetry.baseBackoffUs = 1;
        cfg.storageRetry.maxBackoffUs = 20;
        OramSystem sys(SchemeId::PlbCompressed, cfg);

        std::map<Addr, std::vector<u8>> reference;
        Xoshiro256 rng(0x50a4);
        for (int i = 0; i < 3000; ++i) {
            const Addr addr = rng.below(1024);
            if (rng.below(2) == 0) {
                const std::vector<u8> data = payloadFor(addr, i, 64);
                writeBlock(sys, addr, data);
                reference[addr] = data;
            } else {
                const AccessResult r = readBlock(sys, addr);
                const auto it = reference.find(addr);
                if (it == reference.end()) {
                    EXPECT_TRUE(
                        r.coldMiss ||
                        std::all_of(r.data.begin(), r.data.end(),
                                    [](u8 b) { return b == 0; }));
                } else {
                    ASSERT_EQ(r.data, it->second) << "addr " << addr;
                }
            }
        }
        EXPECT_GT(cfg.faultSchedule->faultsFired(), 0u);
        EXPECT_GT(sys.storageRetries(), 0u);
        EXPECT_FALSE(sys.faulted());
    }
}

} // namespace
} // namespace froram
