/**
 * @file
 * Cache hierarchy and core model tests (the Graphite-substitute
 * substrate, DESIGN.md #2).
 */
#include <gtest/gtest.h>

#include "cachesim/core_model.hpp"
#include "cachesim/hierarchy.hpp"
#include "workload/spec_proxy.hpp"

namespace froram {
namespace {

TEST(Cache, HitAfterMiss)
{
    SetAssocCache c({1024, 2, 64});
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(63, false).hit);  // same line
    EXPECT_FALSE(c.access(64, false).hit); // next line
}

TEST(Cache, LruEviction)
{
    SetAssocCache c({2 * 64, 2, 64}); // 2 lines, 1 set, 2-way
    c.access(0, false);
    c.access(64, false);
    c.access(0, false); // 0 is MRU
    const auto r = c.access(128, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evictedValid);
    EXPECT_EQ(r.evictedLineAddr, 1u); // line 64/64 was LRU
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(64));
}

TEST(Cache, DirtyEvictionFlagged)
{
    SetAssocCache c({64, 1, 64}); // 1 line
    c.access(0, true);
    const auto r = c.access(64, false);
    EXPECT_TRUE(r.evictedDirty);
    const auto r2 = c.access(128, false);
    EXPECT_FALSE(r2.evictedDirty); // previous line was clean
}

TEST(Cache, InstallMergesDirty)
{
    SetAssocCache c({1024, 4, 64});
    c.install(5, false);
    c.install(5, true);
    const auto r = c.access(5 * 64, false);
    EXPECT_TRUE(r.hit);
}

class CountingMemory : public MainMemory {
  public:
    u64
    lineAccessCycles(u64 line_addr, u64 line_bytes, bool is_write) override
    {
        reads += is_write ? 0 : 1;
        writes += is_write ? 1 : 0;
        return 100;
    }

    u64 reads = 0, writes = 0;
};

TEST(Hierarchy, L1HitIsCheap)
{
    CountingMemory mem;
    MemoryHierarchy h(HierarchyConfig{}, &mem);
    const u64 first = h.access(0, false); // cold: L1+L2+mem
    const u64 second = h.access(0, false); // L1 hit
    EXPECT_GT(first, 100u);
    EXPECT_EQ(second, 2u);
    EXPECT_EQ(mem.reads, 1u);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    CountingMemory mem;
    HierarchyConfig cfg;
    cfg.l1 = {2 * 64, 1, 64}; // tiny L1: 2 sets, direct mapped
    MemoryHierarchy h(cfg, &mem);
    h.access(0, false);
    h.access(128, false); // evicts line 0 from L1 (clean)
    h.access(0, false);   // L2 hit, no new memory read
    EXPECT_EQ(mem.reads, 2u);
}

TEST(Hierarchy, DirtyLlcEvictionWritesBack)
{
    CountingMemory mem;
    HierarchyConfig cfg;
    cfg.l1 = {64, 1, 64};
    cfg.l2 = {64, 1, 64}; // 1-line LLC
    MemoryHierarchy h(cfg, &mem);
    h.access(0, true);   // miss, fill
    h.access(64, false); // evicts L1 dirty line 0 -> L2; L2 evicts...
    h.access(128, false);
    EXPECT_GT(mem.writes, 0u);
}

TEST(CoreModel, CyclesAccumulateGapsAndLatency)
{
    CountingMemory mem;
    MemoryHierarchy h(HierarchyConfig{}, &mem);
    InOrderCore core(&h);
    StrideGen gen(1 << 20, 64, 0.0, 5, 1);
    const auto r = core.run(gen, 100);
    EXPECT_EQ(r.memRefs, 100u);
    EXPECT_EQ(r.instructions, 100u * 6);
    // Every ref is a cold miss with 100-cycle memory: cycles dominated
    // by memory.
    EXPECT_GT(r.cycles, 100u * 100);
}

TEST(CoreModel, WarmupExcludedFromCounters)
{
    CountingMemory mem;
    MemoryHierarchy h(HierarchyConfig{}, &mem);
    InOrderCore core(&h);
    StrideGen gen(1 << 14, 64, 0.0, 2, 1); // 256 lines: fits L2
    const auto r = core.run(gen, 256, /*warmup=*/256);
    // After warmup the working set is L2-resident: ~no new misses.
    EXPECT_EQ(r.memRefs, 256u);
    EXPECT_LT(r.llcMisses, 10u);
}

TEST(Workload, StrideGenWrapsFootprint)
{
    StrideGen gen(1024, 64, 0.0, 2, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(gen.next().addr, 1024u);
}

TEST(Workload, UniformGenStaysInBounds)
{
    UniformGen gen(4096, 0.5, 3, 1, /*base=*/1 << 20);
    for (int i = 0; i < 1000; ++i) {
        const auto r = gen.next();
        EXPECT_GE(r.addr, u64{1} << 20);
        EXPECT_LT(r.addr, (u64{1} << 20) + 4096);
    }
}

TEST(Workload, ZipfGenIsSkewed)
{
    ZipfGen gen(64 * 1024, 1.5, 0.0, 2, 1);
    std::map<u64, u64> counts;
    for (int i = 0; i < 20000; ++i)
        counts[gen.next().addr]++;
    // The hottest line should absorb far more than the uniform share.
    u64 max_count = 0;
    for (const auto& [addr, n] : counts)
        max_count = std::max(max_count, n);
    EXPECT_GT(max_count, 20000u / 1024 * 10);
}

TEST(Workload, MixGenDrawsFromAllParts)
{
    MixGen mix("m", 1);
    mix.add(std::make_unique<StrideGen>(1024, 64, 0.0, 2, 1, 0), 0.5);
    mix.add(std::make_unique<UniformGen>(1024, 0.0, 2, 1, 1 << 20), 0.5);
    u64 low = 0, high = 0;
    for (int i = 0; i < 2000; ++i) {
        if (mix.next().addr >= (u64{1} << 20))
            ++high;
        else
            ++low;
    }
    EXPECT_GT(low, 500u);
    EXPECT_GT(high, 500u);
}

TEST(Workload, SpecSuiteHasElevenBenchmarks)
{
    EXPECT_EQ(specSuite().size(), 11u);
    EXPECT_NO_THROW(specByName("mcf"));
    EXPECT_NO_THROW(specByName("libq"));
    EXPECT_THROW(specByName("nonesuch"), FatalError);
}

TEST(Workload, SpecProxiesAreDeterministic)
{
    for (const auto& spec : specSuite()) {
        auto g1 = makeSpecProxy(spec, 42);
        auto g2 = makeSpecProxy(spec, 42);
        for (int i = 0; i < 50; ++i) {
            const auto a = g1->next();
            const auto b = g2->next();
            EXPECT_EQ(a.addr, b.addr) << spec.name;
            EXPECT_EQ(a.isWrite, b.isWrite);
        }
    }
}

TEST(Workload, McfHasLargerFootprintThanHmmer)
{
    // The locality contrast the PLB results rely on.
    auto mcf = makeSpecProxy(specByName("mcf"), 1);
    auto hmmer = makeSpecProxy(specByName("hmmer"), 1);
    u64 mcf_max = 0, hmmer_max = 0;
    for (int i = 0; i < 20000; ++i) {
        mcf_max = std::max(mcf_max, mcf->next().addr);
        hmmer_max = std::max(hmmer_max, hmmer->next().addr);
    }
    EXPECT_GT(mcf_max, 100 * hmmer_max);
}

} // namespace
} // namespace froram
