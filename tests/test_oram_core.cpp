/**
 * @file
 * ORAM substrate unit tests: parameters, stash, bucket codec, and tree
 * storage (including the tamper API).
 */
#include <gtest/gtest.h>

#include "stash_test_util.hpp"
#include "codec_test_util.hpp"
#include "oram/bucket_codec.hpp"
#include "oram/params.hpp"
#include "oram/stash.hpp"
#include "oram/tree_storage.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

TEST(OramParams, PaperConfiguration)
{
    // Table 1: 4 GB ORAM, 64 B blocks, Z = 4 => N = 2^26, L = 24, and
    // ~2x DRAM footprint (50% utilization).
    const OramParams p = OramParams::forCapacity(u64{4} << 30, 64, 4);
    EXPECT_EQ(p.numBlocks, u64{1} << 26);
    EXPECT_EQ(p.levels, 24u);
    EXPECT_EQ(p.numLeaves(), u64{1} << 24);
    // Z * total buckets ~= 2N slots.
    EXPECT_NEAR(static_cast<double>(p.numBuckets() * p.z) / p.numBlocks,
                2.0, 0.1);
    // Bucket padded to whole bursts; 4x64B payload + header fits 320 B.
    EXPECT_EQ(p.bucketPhysBytes() % 64, 0u);
    EXPECT_EQ(p.bucketPhysBytes(), 320u);
    EXPECT_EQ(p.pathBytes(), 25u * 320);
}

TEST(OramParams, MacBytesGrowBucket)
{
    OramParams p = OramParams::forCapacity(1 << 20, 64, 4);
    const u64 plain = p.bucketPhysBytes();
    p.macBytes = 16;
    EXPECT_GT(p.bucketPhysBytes(), plain);
    EXPECT_EQ(p.storedBlockBytes(), 80u);
}

TEST(OramParams, ValidationCatchesBadConfigs)
{
    OramParams p;
    EXPECT_THROW(p.validate(), FatalError); // no blocks
    p.numBlocks = 100;
    p.levels = 0;
    EXPECT_THROW(p.validate(), FatalError);
    p.levels = 5;
    p.z = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(OramParams, Z3Configuration)
{
    // Figure 8 uses Z = 3 following [26]; geometry must still be sane.
    const OramParams p = OramParams::forCapacity(u64{4} << 30, 128, 3);
    EXPECT_EQ(p.numBlocks, u64{1} << 25);
    EXPECT_GE(p.levels, 23u);
    p.validate();
}

Block
makeBlock(Addr a, Leaf l, u8 fill, u64 size = 64)
{
    Block b;
    b.addr = a;
    b.leaf = l;
    b.data.assign(size, fill);
    return b;
}

TEST(Stash, InsertFindRemove)
{
    Stash s(10, 10);
    s.insert(makeBlock(1, 0, 0xaa));
    s.insert(makeBlock(2, 1, 0xbb));
    EXPECT_TRUE(s.contains(1));
    EXPECT_FALSE(s.contains(3));
    ASSERT_NE(s.find(2), nullptr);
    EXPECT_EQ(s.find(2)->data[0], 0xbb);
    const Block b = s.remove(1);
    EXPECT_EQ(b.data[0], 0xaa);
    EXPECT_FALSE(s.contains(1));
    EXPECT_EQ(s.occupancy(), 1u);
}

TEST(Stash, InsertOverwritesSameAddress)
{
    Stash s(10, 10);
    s.insert(makeBlock(1, 0, 0xaa));
    s.insert(makeBlock(1, 3, 0xcc));
    EXPECT_EQ(s.occupancy(), 1u);
    EXPECT_EQ(s.find(1)->data[0], 0xcc);
    EXPECT_EQ(s.find(1)->leaf, 3u);
}

TEST(Stash, OverflowPanics)
{
    Stash s(2, 1);
    s.insert(makeBlock(1, 0, 1));
    s.insert(makeBlock(2, 0, 2));
    s.insert(makeBlock(3, 0, 3));
    EXPECT_THROW(s.insert(makeBlock(4, 0, 4)), PanicError);
}

TEST(Stash, RejectsDummyBlock)
{
    Stash s(4, 4);
    Block dummy;
    EXPECT_THROW(s.insert(std::move(dummy)), PanicError);
}

TEST(Stash, EvictPathRespectsInvariant)
{
    // L = 3 tree: a block mapped to leaf l may sit at level v on the
    // path to `leaf` only if their paths agree down to level v.
    const u32 levels = 3;
    const u32 z = 2;
    Stash s(100, 100);
    s.insert(makeBlock(1, 0b000, 1)); // shares root..leaf with path 0
    s.insert(makeBlock(2, 0b001, 2)); // shares levels 0..2
    s.insert(makeBlock(3, 0b100, 3)); // shares only the root
    s.insert(makeBlock(4, 0b011, 4)); // shares levels 0..1
    auto out = evictPathCopy(s, 0b000, levels, z);
    ASSERT_EQ(out.size(), 4u);
    // Deepest placement first: block 1 must land at the leaf.
    ASSERT_EQ(out[3].size(), 1u);
    EXPECT_EQ(out[3][0].addr, 1u);
    // Block 2 diverges at the last level => level 2 at best.
    ASSERT_EQ(out[2].size(), 1u);
    EXPECT_EQ(out[2][0].addr, 2u);
    // Everything was evictable somewhere.
    EXPECT_EQ(s.occupancy(), 0u);
    for (u32 v = 0; v <= levels; ++v)
        EXPECT_LE(out[v].size(), z);
}

TEST(Stash, EvictPathHonorsZ)
{
    const u32 levels = 2;
    Stash s(100, 100);
    for (Addr a = 0; a < 10; ++a)
        s.insert(makeBlock(a + 1, 0, static_cast<u8>(a)));
    auto out = evictPathCopy(s, 0, levels, 2);
    u64 evicted = 0;
    for (const auto& lvl : out) {
        EXPECT_LE(lvl.size(), 2u);
        evicted += lvl.size();
    }
    EXPECT_EQ(evicted, 6u); // 3 levels x Z=2
    EXPECT_EQ(s.occupancy(), 4u);
}

class BucketCodecTest : public ::testing::Test {
  protected:
    BucketCodecTest()
    {
        params_ = OramParams::forCapacity(1 << 20, 64, 4);
    }

    OramParams params_;
    AesCtrCipher cipher_;
};

TEST_F(BucketCodecTest, RoundTrip)
{
    BucketCodec codec(params_, &cipher_);
    Bucket b = Bucket::empty(params_);
    b.slots[0] = makeBlock(7, 3, 0x11);
    b.slots[2] = makeBlock(9, 5, 0x22);
    std::vector<u8> image;
    encodeBucket(codec, 42, b, {}, image);
    EXPECT_EQ(image.size(), params_.bucketPhysBytes());
    const Bucket d = decodeBucket(codec, 42, image);
    EXPECT_EQ(d.slots[0].addr, 7u);
    EXPECT_EQ(d.slots[0].leaf, 3u);
    EXPECT_EQ(d.slots[0].data[5], 0x11);
    EXPECT_FALSE(d.slots[1].valid());
    EXPECT_EQ(d.slots[2].addr, 9u);
    EXPECT_FALSE(d.slots[3].valid());
    EXPECT_EQ(d.occupancy(), 2u);
}

TEST_F(BucketCodecTest, EmptyImageDecodesAllDummy)
{
    BucketCodec codec(params_, &cipher_);
    const Bucket d = decodeBucket(codec, 0, {});
    EXPECT_EQ(d.occupancy(), 0u);
}

TEST_F(BucketCodecTest, ReencryptionChangesCiphertext)
{
    BucketCodec codec(params_, &cipher_);
    Bucket b = Bucket::empty(params_);
    b.slots[0] = makeBlock(7, 3, 0x11);
    std::vector<u8> img1, img2;
    encodeBucket(codec, 42, b, {}, img1);
    encodeBucket(codec, 42, b, img1, img2);
    // Same plaintext, fresh seed => different ciphertext bytes.
    EXPECT_NE(img1, img2);
    // But both decode identically.
    const Bucket d1 = decodeBucket(codec, 42, img1);
    const Bucket d2 = decodeBucket(codec, 42, img2);
    EXPECT_EQ(d1.slots[0].data, d2.slots[0].data);
}

TEST_F(BucketCodecTest, GlobalSeedMonotone)
{
    BucketCodec codec(params_, &cipher_, SeedScheme::GlobalCounter);
    Bucket b = Bucket::empty(params_);
    std::vector<u8> img;
    const u64 s0 = codec.globalSeed();
    encodeBucket(codec, 1, b, {}, img);
    encodeBucket(codec, 2, b, {}, img);
    EXPECT_EQ(codec.globalSeed(), s0 + 2);
}

TEST_F(BucketCodecTest, DummySlotsIndistinguishableAfterEncryption)
{
    // Two encodings of an all-dummy bucket share no equal 16-byte chunk
    // with each other (probabilistic encryption).
    BucketCodec codec(params_, &cipher_);
    Bucket b = Bucket::empty(params_);
    std::vector<u8> img1, img2;
    encodeBucket(codec, 5, b, {}, img1);
    encodeBucket(codec, 5, b, img1, img2);
    u32 equal_chunks = 0;
    for (size_t off = 8; off + 16 <= img1.size(); off += 16) {
        if (std::equal(img1.begin() + off, img1.begin() + off + 16,
                       img2.begin() + off))
            ++equal_chunks;
    }
    EXPECT_EQ(equal_chunks, 0u);
}

TEST(TreeStorage, EncryptedRoundTripAndTamper)
{
    const OramParams p = OramParams::forCapacity(1 << 18, 64, 4);
    AesCtrCipher cipher;
    EncryptedTreeStorage st(p, &cipher);
    EXPECT_EQ(st.readBucket(3).occupancy(), 0u); // never written

    Bucket b = Bucket::empty(p);
    b.slots[1] = makeBlock(11, 2, 0x77);
    st.writeBucket(3, b);
    EXPECT_TRUE(st.hasImage(3));
    EXPECT_EQ(st.bucketsTouched(), 1u);
    EXPECT_EQ(st.readBucket(3).slots[1].data[0], 0x77);

    // Bit flips mutate the image; decode does NOT error (tamper
    // detection is PMMAC's job, Section 6.5.2). Restoring the snapshot
    // restores the contents.
    const auto snapshot = st.rawImage(3);
    st.flipBit(3, 200);
    EXPECT_NE(st.rawImage(3), snapshot);
    EXPECT_NO_THROW(st.readBucket(3));
    st.replaceImage(3, snapshot);
    EXPECT_EQ(st.readBucket(3).slots[1].data[0], 0x77);
}

TEST(TreeStorage, MetaKeepsPlacementOnly)
{
    const OramParams p = OramParams::forCapacity(1 << 18, 64, 4);
    MetaTreeStorage st(p);
    Bucket b = Bucket::empty(p);
    b.slots[0] = makeBlock(5, 9, 0xff);
    st.writeBucket(7, b);
    const Bucket d = st.readBucket(7);
    EXPECT_EQ(d.slots[0].addr, 5u);
    EXPECT_EQ(d.slots[0].leaf, 9u);
    EXPECT_TRUE(d.slots[0].data.empty());
}

TEST(TreeStorage, NullDropsEverything)
{
    const OramParams p = OramParams::forCapacity(1 << 18, 64, 4);
    NullTreeStorage st(p);
    Bucket b = Bucket::empty(p);
    b.slots[0] = makeBlock(5, 9, 0xff);
    st.writeBucket(7, b);
    EXPECT_EQ(st.readBucket(7).occupancy(), 0u);
    EXPECT_EQ(st.bucketsTouched(), 0u);
}

TEST(TreeStorage, SeedRewind)
{
    const OramParams p = OramParams::forCapacity(1 << 18, 64, 4);
    AesCtrCipher cipher;
    EncryptedTreeStorage st(p, &cipher, SeedScheme::PerBucket);
    Bucket b = Bucket::empty(p);
    st.writeBucket(0, b);
    auto before = st.rawImage(0);
    st.rewindSeed(0, 1);
    auto after = st.rawImage(0);
    u64 seed_before = 0, seed_after = 0;
    for (int i = 0; i < 8; ++i) {
        seed_before |= static_cast<u64>(before[i]) << (8 * i);
        seed_after |= static_cast<u64>(after[i]) << (8 * i);
    }
    EXPECT_EQ(seed_after, seed_before - 1);
}

} // namespace
} // namespace froram
