/**
 * @file
 * Cross-cutting property tests:
 *  - Backend fuzz: random interleavings of read/write/readrmv/append
 *    checked against a shadow memory model, over several geometries.
 *  - Stash eviction greedy-optimality invariant.
 *  - Workload calibration bands (MPKI regression guard).
 *  - Recursive-baseline obliviousness (per-tree leaf uniformity).
 *  - Scheme equivalence: all four unified schemes return identical data
 *    for identical request streams.
 */
#include <gtest/gtest.h>

#include <map>

#include "stash_test_util.hpp"
#include "cachesim/core_model.hpp"
#include "util/histogram.hpp"
#include "core/unified_frontend.hpp"
#include "oram/backend.hpp"
#include "workload/spec_proxy.hpp"

namespace froram {
namespace {

class BackendFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(BackendFuzz, RandomOpSoup)
{
    const u32 z = GetParam();
    const OramParams p = OramParams::forCapacity(1 << 17, 64, z);
    AesCtrCipher cipher;
    BackendConfig bc;
    bc.params = p;
    PathOramBackend backend(
        bc, std::make_unique<EncryptedTreeStorage>(p, &cipher),
        std::make_unique<FlatLayout>(p.levels, p.bucketPhysBytes()),
        nullptr);

    // Shadow model: address -> (leaf, value byte, checkedOut?).
    struct Shadow {
        Leaf leaf = kNoLeaf;
        u8 value = 0;
        bool checkedOut = false;
        bool exists = false;
    };
    std::map<Addr, Shadow> shadow;
    std::map<Addr, Block> held; // read-removed blocks we must re-append
    Xoshiro256 rng(1234);
    const u64 n = 128;

    for (int step = 0; step < 3000; ++step) {
        const Addr a = rng.below(n);
        auto& sh = shadow[a];
        const u32 dice = static_cast<u32>(rng.below(100));
        if (sh.checkedOut) {
            // Must append before the block can be accessed again.
            Block blk = std::move(held[a]);
            held.erase(a);
            blk.leaf = rng.below(p.numLeaves());
            sh.leaf = blk.leaf;
            sh.checkedOut = false;
            backend.append(std::move(blk));
            continue;
        }
        const Leaf use =
            sh.exists ? sh.leaf : rng.below(p.numLeaves());
        const Leaf fresh = rng.below(p.numLeaves());
        if (dice < 40) { // write
            std::vector<u8> data(p.storedBlockBytes(),
                                 static_cast<u8>(step));
            backend.access(Op::Write, a, use, fresh, &data);
            sh.leaf = fresh;
            sh.value = static_cast<u8>(step);
            sh.exists = true;
        } else if (dice < 80) { // read
            const auto r = backend.access(Op::Read, a, use, fresh);
            if (sh.exists) {
                ASSERT_TRUE(r.found) << "step " << step;
                EXPECT_EQ(r.block.data[0], sh.value);
            } else {
                EXPECT_FALSE(r.found);
                sh.value = 0;
                sh.exists = true; // cold-created as zeros
            }
            sh.leaf = fresh;
        } else { // readrmv; re-appended on next touch
            const auto r = backend.access(Op::ReadRmv, a, use, kNoLeaf);
            if (sh.exists) {
                EXPECT_EQ(r.block.data[0], sh.value);
            }
            Block blk = r.block;
            blk.addr = a;
            if (blk.data.empty())
                blk.data.assign(p.storedBlockBytes(), 0);
            held[a] = std::move(blk);
            sh.exists = true;
            sh.checkedOut = true;
        }
    }
    // Drain held blocks and verify everything is still readable.
    for (auto& [a, blk] : held) {
        blk.leaf = rng.below(p.numLeaves());
        shadow[a].leaf = blk.leaf;
        shadow[a].checkedOut = false;
        backend.append(std::move(blk));
    }
    for (auto& [a, sh] : shadow) {
        if (!sh.exists)
            continue;
        const Leaf fresh = rng.below(p.numLeaves());
        const auto r = backend.access(Op::Read, a, sh.leaf, fresh);
        ASSERT_TRUE(r.found) << "block " << a;
        EXPECT_EQ(r.block.data[0], sh.value) << "block " << a;
        sh.leaf = fresh;
    }
}

INSTANTIATE_TEST_SUITE_P(Zs, BackendFuzz, ::testing::Values(3, 4, 6),
                         [](const ::testing::TestParamInfo<u32>& i) {
                             return "Z" + std::to_string(i.param);
                         });

TEST(StashProperty, GreedyEvictionIsMaximal)
{
    // After evictPath, no remaining stash block may fit in a bucket
    // that still has a free slot (greedy deepest-first maximality).
    const u32 levels = 6, z = 2;
    for (u64 seed = 0; seed < 20; ++seed) {
        Stash stash(400, 400);
        Xoshiro256 rng(seed);
        const u64 blocks = 30 + rng.below(50);
        for (Addr a = 1; a <= blocks; ++a) {
            Block b;
            b.addr = a;
            b.leaf = rng.below(u64{1} << levels);
            b.data.assign(8, 1);
            stash.insert(std::move(b));
        }
        const Leaf path = rng.below(u64{1} << levels);
        auto out = evictPathCopy(stash, path, levels, z);
        for (u32 v = 0; v <= levels; ++v) {
            if (out[v].size() == z)
                continue; // bucket full
            // Bucket v has room: no remaining block may be eligible.
            for (const Block& blk : stash.blocksSnapshot()) {
                const u32 shift = levels - v;
                EXPECT_NE(blk.leaf >> shift, path >> shift)
                    << "seed " << seed << ": block " << blk.addr
                    << " could have been evicted to level " << v;
            }
        }
    }
}

TEST(WorkloadCalibration, MpkiStaysInBand)
{
    // Regression guard for the SPEC-proxy calibration (DESIGN.md #1).
    // Bands are generous; the point is catching accidental 10x drift.
    const std::map<std::string, std::pair<double, double>> bands = {
        {"astar", {3, 13}}, {"bzip2", {2, 9}},   {"gcc", {3, 13}},
        {"gob", {0.7, 4}},  {"h264", {0.8, 4}},  {"hmmer", {0.3, 2}},
        {"libq", {15, 40}}, {"mcf", {25, 65}},   {"omnet", {10, 33}},
        {"perl", {0.8, 4}}, {"sjeng", {0.4, 2.5}}};
    for (const auto& spec : specSuite()) {
        InsecureMemory imem(2, LatencyModel{});
        PlainMainMemory mem(&imem);
        MemoryHierarchy hier(HierarchyConfig{}, &mem);
        InOrderCore core(&hier);
        auto gen = makeSpecProxy(spec, 7);
        core.run(*gen, 0, 120000);
        const auto r = core.run(*gen, 150000, 0);
        const double mpki = 1000.0 * static_cast<double>(r.llcMisses) /
                            static_cast<double>(r.instructions);
        const auto band = bands.at(spec.name);
        EXPECT_GE(mpki, band.first) << spec.name;
        EXPECT_LE(mpki, band.second) << spec.name;
    }
}

TEST(RecursiveObliviousness, PerTreeLeafUniformity)
{
    // The baseline is oblivious too: each tree's leaf sequence must be
    // uniform even for a maximally structured program.
    RecursiveFrontendConfig c;
    c.numBlocks = 4096;
    c.maxOnChipEntries = 16;
    c.storage = StorageMode::Meta;
    std::vector<TraceEvent> trace;
    RecursiveFrontend fe(c, nullptr, nullptr,
                         [&](const TraceEvent& e) { trace.push_back(e); });
    for (int round = 0; round < 4; ++round)
        for (Addr a = 0; a < 1024; ++a)
            fe.access(a, false);
    // Bin data-tree (id 0) leaves.
    Histogram h(32);
    const u64 leaves = u64{1} << fe.tree(0).params().levels;
    for (const auto& e : trace)
        if (e.treeId == 0 && e.kind == TraceEvent::Kind::PathRead)
            h.add(e.leaf * 32 / leaves);
    ASSERT_GT(h.total(), 2000u);
    EXPECT_LT(h.chiSquareUniform(), chiSquareCritical(31, 0.001));
}

TEST(SchemeEquivalence, AllSchemesReturnIdenticalData)
{
    // P/PC/PI/PIC differ in traffic and metadata, never in semantics.
    struct Cfg {
        PosMapFormat::Kind kind;
        bool integrity;
    };
    const Cfg cfgs[] = {{PosMapFormat::Kind::Leaves, false},
                        {PosMapFormat::Kind::Compressed, false},
                        {PosMapFormat::Kind::FlatCounter, true},
                        {PosMapFormat::Kind::Compressed, true}};
    std::vector<std::vector<u8>> outputs;
    for (const auto& k : cfgs) {
        UnifiedFrontendConfig c;
        c.numBlocks = 2048;
        c.format = k.kind;
        c.integrity = k.integrity;
        c.plb.capacityBytes = 2 * 1024;
        c.onChipTargetBytes = 512;
        c.storage = StorageMode::Encrypted;
        AesCtrCipher cipher;
        UnifiedFrontend fe(c, &cipher, nullptr);
        Xoshiro256 rng(99);
        std::vector<u8> digest;
        for (int i = 0; i < 400; ++i) {
            const Addr a = rng.below(2048);
            if (rng.chance(0.4)) {
                std::vector<u8> d(64, static_cast<u8>(i));
                fe.access(a, true, &d);
            } else {
                const auto r = fe.access(a, false);
                digest.insert(digest.end(), r.data.begin(),
                              r.data.end());
            }
        }
        outputs.push_back(std::move(digest));
    }
    for (size_t i = 1; i < outputs.size(); ++i)
        EXPECT_EQ(outputs[0], outputs[i]) << "scheme " << i;
}

TEST(LatencyModel, PsToCyclesScalesWithClock)
{
    LatencyModel slow;
    slow.procGHz = 1.3;
    LatencyModel fast;
    fast.procGHz = 2.6;
    EXPECT_EQ(slow.psToCycles(10000), 13u);
    EXPECT_EQ(fast.psToCycles(10000), 26u);
}

} // namespace
} // namespace froram
