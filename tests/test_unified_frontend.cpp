/**
 * @file
 * UnifiedFrontend (PLB + unified tree + compression + PMMAC) tests:
 * functional memory consistency through full recursion for every scheme,
 * PLB behavior, group remaps, and scheme naming/geometry against the
 * paper's parameterizations.
 */
#include <gtest/gtest.h>

#include <map>

#include "core/unified_frontend.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

UnifiedFrontendConfig
smallConfig(PosMapFormat::Kind kind, bool integrity)
{
    UnifiedFrontendConfig c;
    c.numBlocks = 4096;
    c.blockBytes = 64;
    c.z = 4;
    c.format = kind;
    c.integrity = integrity;
    c.plb.capacityBytes = 2 * 1024; // 32 entries: small enough to evict
    c.plb.ways = 1;
    c.onChipTargetBytes = 256; // force deep recursion even at N=4096
    c.storage = StorageMode::Encrypted;
    c.rngSeed = 99;
    return c;
}

struct SchemeCase {
    PosMapFormat::Kind kind;
    bool integrity;
    const char* expectName;
};

class UnifiedSchemeTest : public ::testing::TestWithParam<SchemeCase> {
  protected:
    void
    SetUp() override
    {
        const auto& p = GetParam();
        fe_ = std::make_unique<UnifiedFrontend>(
            smallConfig(p.kind, p.integrity), &cipher_, nullptr);
    }

    std::vector<u8>
    pattern(Addr a, u32 version)
    {
        std::vector<u8> d(64);
        for (size_t i = 0; i < d.size(); ++i)
            d[i] = static_cast<u8>(a * 37 + version * 5 + i);
        return d;
    }

    AesCtrCipher cipher_;
    std::unique_ptr<UnifiedFrontend> fe_;
};

TEST_P(UnifiedSchemeTest, Name)
{
    EXPECT_EQ(fe_->name(), GetParam().expectName);
}

TEST_P(UnifiedSchemeTest, RecursionIsExercised)
{
    EXPECT_GE(fe_->geometry().h, 3u) << "test must exercise recursion";
}

TEST_P(UnifiedSchemeTest, ReadYourWritesThroughRecursion)
{
    std::map<Addr, u32> version;
    Xoshiro256 rng(5);
    const u64 n = 512;
    for (u32 round = 0; round < 3; ++round) {
        for (u64 i = 0; i < n; ++i) {
            const Addr a = rng.below(4096);
            const auto data = pattern(a, round);
            fe_->access(a, /*is_write=*/true, &data);
            version[a] = round;
        }
        for (const auto& [a, v] : version) {
            const auto r = fe_->access(a, /*is_write=*/false);
            EXPECT_EQ(r.data, pattern(a, v)) << "block " << a;
        }
    }
}

TEST_P(UnifiedSchemeTest, ColdReadIsZero)
{
    const auto r = fe_->access(77, false);
    EXPECT_TRUE(r.coldMiss);
    EXPECT_EQ(r.data, std::vector<u8>(64, 0));
}

TEST_P(UnifiedSchemeTest, SequentialScanHitsPlb)
{
    // Warm: touch a small window so its PosMap blocks enter the PLB.
    for (Addr a = 0; a < 64; ++a)
        fe_->access(a, false);
    const u64 h0 = fe_->plb().stats().get("hits");
    const u64 b0 = fe_->stats().get("backendAccesses");
    for (Addr a = 0; a < 64; ++a)
        fe_->access(a, false);
    const u64 hits = fe_->plb().stats().get("hits") - h0;
    const u64 accesses = fe_->stats().get("backendAccesses") - b0;
    EXPECT_GT(hits, 32u) << "sequential re-scan should hit the PLB";
    // With PLB hits, most accesses need only the data-block access.
    EXPECT_LT(accesses, 2 * 64u);
}

TEST_P(UnifiedSchemeTest, StashAndPlbInvariant)
{
    // After draining the PLB, every touched block must live in the
    // stash or the tree; nothing is lost or duplicated.
    Xoshiro256 rng(7);
    for (int i = 0; i < 300; ++i)
        fe_->access(rng.below(4096), i % 2 == 0);
    fe_->drainPlb();
    // Spot-check a sample of data blocks: they are readable with
    // consistent content (access would panic/violate on duplicates).
    for (Addr a = 0; a < 32; ++a)
        EXPECT_NO_THROW(fe_->access(a, false));
}

TEST_P(UnifiedSchemeTest, PosMapBytesAreCounted)
{
    Xoshiro256 rng(11);
    for (int i = 0; i < 64; ++i)
        fe_->access(rng.below(4096), false);
    EXPECT_GT(fe_->stats().get("posmapBytes"), 0u);
    EXPECT_GT(fe_->stats().get("bytesMoved"),
              fe_->stats().get("posmapBytes"));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, UnifiedSchemeTest,
    ::testing::Values(
        SchemeCase{PosMapFormat::Kind::Leaves, false, "P_X16"},
        SchemeCase{PosMapFormat::Kind::Compressed, false, "PC_X32"},
        SchemeCase{PosMapFormat::Kind::FlatCounter, true, "PI_X8"},
        SchemeCase{PosMapFormat::Kind::Compressed, true, "PIC_X32"}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
        return info.param.expectName;
    });

TEST(UnifiedFrontend, PaperGeometryAt4GB)
{
    // PC_X32 at 4 GB with <=128 KB on-chip target: H = 4, 2^11-entry
    // on-chip PosMap; unified tree adds at most one level over L = 24.
    UnifiedFrontendConfig c;
    c.numBlocks = u64{1} << 26;
    c.format = PosMapFormat::Kind::Compressed;
    c.onChipTargetBytes = 128 * 1024;
    c.storage = StorageMode::Null;
    UnifiedFrontend fe(c, nullptr, nullptr);
    EXPECT_EQ(fe.name(), "PC_X32");
    EXPECT_EQ(fe.geometry().h, 4u);
    EXPECT_EQ(fe.geometry().onChipEntries, u64{1} << 11);
    EXPECT_LE(fe.backend().params().levels, 25u);
    EXPECT_GE(fe.backend().params().levels, 24u);
}

TEST(UnifiedFrontend, FlatCounterNeedsMoreRecursion)
{
    // PI_X8's 64-bit counters halve X, adding recursion levels
    // (Section 6.2.2).
    UnifiedFrontendConfig pc;
    pc.numBlocks = u64{1} << 26;
    pc.format = PosMapFormat::Kind::Compressed;
    pc.storage = StorageMode::Null;
    UnifiedFrontendConfig pi = pc;
    pi.format = PosMapFormat::Kind::FlatCounter;
    pi.integrity = true;
    UnifiedFrontend fe_pc(pc, nullptr, nullptr);
    UnifiedFrontend fe_pi(pi, nullptr, nullptr);
    EXPECT_GT(fe_pi.geometry().h, fe_pc.geometry().h);
}

TEST(UnifiedFrontend, GroupRemapTriggersAndPreservesData)
{
    // beta = 3: IC overflows after 7 increments of one entry, forcing
    // group remaps (Section 5.2.2) which must not corrupt anything.
    UnifiedFrontendConfig c = smallConfig(
        PosMapFormat::Kind::Compressed, false);
    c.beta = 3;
    AesCtrCipher cipher;
    UnifiedFrontend fe(c, &cipher, nullptr);

    const Addr hot = 123;
    std::vector<u8> data(64, 0x5a);
    fe.access(hot, true, &data);
    for (int i = 0; i < 40; ++i) {
        const auto r = fe.access(hot, false);
        EXPECT_EQ(r.data, data) << "iteration " << i;
    }
    EXPECT_GT(fe.stats().get("groupRemaps"), 0u);
    EXPECT_GT(fe.stats().get("groupRemapAccesses"), 0u);
}

TEST(UnifiedFrontend, GroupRemapWithIntegrity)
{
    UnifiedFrontendConfig c = smallConfig(
        PosMapFormat::Kind::Compressed, true);
    c.beta = 3;
    AesCtrCipher cipher;
    UnifiedFrontend fe(c, &cipher, nullptr);
    const Addr hot = 55;
    std::vector<u8> data(64, 0x77);
    fe.access(hot, true, &data);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(fe.access(hot, false).data, data);
    EXPECT_GT(fe.stats().get("groupRemaps"), 0u);
}

TEST(UnifiedFrontend, MetadataModeTracksSameCounts)
{
    // Meta and Encrypted modes must agree on all traffic accounting.
    auto run = [&](StorageMode mode) {
        UnifiedFrontendConfig c =
            smallConfig(PosMapFormat::Kind::Compressed, false);
        c.storage = mode;
        AesCtrCipher cipher;
        UnifiedFrontend fe(c, &cipher, nullptr);
        Xoshiro256 rng(3);
        for (int i = 0; i < 400; ++i)
            fe.access(rng.below(4096), i % 3 == 0);
        return std::make_pair(fe.stats().get("backendAccesses"),
                              fe.stats().get("bytesMoved"));
    };
    const auto enc = run(StorageMode::Encrypted);
    const auto meta = run(StorageMode::Meta);
    EXPECT_EQ(enc.first, meta.first);
    EXPECT_EQ(enc.second, meta.second);
}

TEST(UnifiedFrontend, RejectsIntegrityWithLeavesFormat)
{
    UnifiedFrontendConfig c = smallConfig(PosMapFormat::Kind::Leaves,
                                          true);
    AesCtrCipher cipher;
    EXPECT_THROW(UnifiedFrontend fe(c, &cipher, nullptr), FatalError);
}

TEST(UnifiedFrontend, RejectsOutOfRangeAddress)
{
    AesCtrCipher cipher;
    UnifiedFrontend fe(smallConfig(PosMapFormat::Kind::Compressed, false),
                       &cipher, nullptr);
    EXPECT_THROW(fe.access(4096, false), PanicError);
}

TEST(UnifiedFrontend, TinyOramDegeneratesToFlat)
{
    // H == 1: everything fits on-chip; accesses still work.
    UnifiedFrontendConfig c = smallConfig(
        PosMapFormat::Kind::Compressed, false);
    c.numBlocks = 64;
    c.onChipTargetBytes = 64 * 1024;
    AesCtrCipher cipher;
    UnifiedFrontend fe(c, &cipher, nullptr);
    EXPECT_EQ(fe.geometry().h, 1u);
    std::vector<u8> d(64, 9);
    fe.access(3, true, &d);
    EXPECT_EQ(fe.access(3, false).data, d);
}

TEST(UnifiedFrontend, StashStaysBoundedUnderChurn)
{
    AesCtrCipher cipher;
    UnifiedFrontend fe(smallConfig(PosMapFormat::Kind::Compressed, false),
                       &cipher, nullptr);
    Xoshiro256 rng(17);
    for (int i = 0; i < 2000; ++i)
        fe.access(rng.below(4096), i % 2 == 0);
    const u64 peak = fe.backend().stash().stats().get("peakOccupancy");
    EXPECT_LT(peak,
              150u + fe.backend().params().z *
                         (fe.backend().params().levels + 1));
}

} // namespace
} // namespace froram
