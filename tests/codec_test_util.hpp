/**
 * @file
 * Test-side Bucket <-> image round-trip helpers over BucketCodec's raw
 * span layer. The production codec API is allocation-free and operates
 * on caller buffers (encodeInto/decryptInto + slot accessors); these
 * wrappers rebuild the convenient decoded-Bucket view that tests like
 * to assert against, without the library carrying a legacy vector API.
 */
#ifndef FRORAM_TESTS_CODEC_TEST_UTIL_HPP
#define FRORAM_TESTS_CODEC_TEST_UTIL_HPP

#include <vector>

#include "oram/bucket.hpp"
#include "oram/bucket_codec.hpp"

namespace froram {

/**
 * Encode `b` as the next image of bucket `bucket_id`, chaining the seed
 * off `prev` (the bucket's previous image; empty = never written).
 */
inline void
encodeBucket(BucketCodec& codec, u64 bucket_id, const Bucket& b,
             const std::vector<u8>& prev, std::vector<u8>& out)
{
    const u64 prev_seed =
        prev.size() >= 8 ? loadLe(prev.data(), 8) : 0;
    const u64 seed = codec.nextSeed(prev_seed);
    std::vector<const Block*> slots(codec.slots(), nullptr);
    for (u32 s = 0; s < codec.slots() && s < b.slots.size(); ++s) {
        if (b.slots[s].valid())
            slots[s] = &b.slots[s];
    }
    std::vector<u8> stage(codec.physBytes());
    out.assign(codec.physBytes(), 0);
    codec.encodeInto(bucket_id, seed, slots.data(), stage.data(),
                     out.data());
}

/** Decrypt + deserialize an image (empty = all-dummy bucket). */
inline Bucket
decodeBucket(const BucketCodec& codec, u64 bucket_id,
             const std::vector<u8>& image)
{
    Bucket b(codec.slots());
    if (image.empty())
        return b;
    std::vector<u8> plain(codec.physBytes());
    codec.decryptInto(bucket_id, image.data(), plain.data());
    const u64 stored = codec.params().storedBlockBytes();
    for (u32 s = 0; s < codec.slots(); ++s) {
        b.slots[s].addr = codec.slotAddr(plain.data(), s);
        b.slots[s].leaf = codec.slotLeaf(plain.data(), s);
        if (b.slots[s].valid()) {
            const u8* p = codec.slotPayload(plain.data(), s);
            b.slots[s].data.assign(p, p + stored);
        }
    }
    return b;
}

} // namespace froram

#endif // FRORAM_TESTS_CODEC_TEST_UTIL_HPP
