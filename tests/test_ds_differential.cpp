/**
 * @file
 * Randomized differential fuzz for the oblivious data structures:
 * ObliviousMap vs std::unordered_map and ObliviousIndex vs std::map,
 * over {flat, dram, mmap} x {path, ring}, with a composition check for
 * ObliviousHashJoin. Every trace is seeded and replayable:
 *
 *   FRORAM_DS_FUZZ_SEED=<n>   re-run the printed failing seed
 *   FRORAM_DS_FUZZ_OPS=<n>    override the op count (e.g. long soaks)
 *
 * The padded probe schedules (the obliviousness tentpole) are easy to
 * get subtly wrong in exactly the ways a fuzzer finds: canonical-image
 * dedup when both cuckoo buckets coincide, stash drain/evict cycles,
 * delta-vs-array precedence on upserts and tombstones, rebuild carry
 * bounds, range scans that wrap the block ring. Hence mixed op traces
 * against in-memory oracles, not curated unit cases.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/oram_system.hpp"
#include "ds/oblivious_index.hpp"
#include "ds/oblivious_join.hpp"
#include "ds/oblivious_map.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

struct Combo {
    StorageBackendKind backend;
    BucketSchemeKind bucket;
};

std::string
comboName(const ::testing::TestParamInfo<Combo>& info)
{
    return std::string(toString(info.param.backend)) +
           (info.param.bucket == BucketSchemeKind::Ring ? "_ring"
                                                        : "_path");
}

u64
envU64(const char* name, u64 fallback)
{
    const char* v = std::getenv(name);
    return v != nullptr ? std::strtoull(v, nullptr, 0) : fallback;
}

/** Fuzz scale: flat combos carry the bulk of the 10k+ ops; the timed
 *  and mmap combos re-run the same logic against slower media. */
u64
opsFor(const Combo& combo, u64 flat_ops)
{
    const u64 ops = envU64("FRORAM_DS_FUZZ_OPS", flat_ops);
    return combo.backend == StorageBackendKind::Flat ? ops
                                                     : (ops * 3) / 8;
}

OramSystemConfig
makeConfig(const Combo& combo, const std::string& path)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 19; // 8192 blocks
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = combo.backend;
    cfg.backendPath = path;
    cfg.bucketScheme = combo.bucket;
    return cfg;
}

std::string
tmpPath(const std::string& stem)
{
    return ::testing::TempDir() + "froram_ds_" + stem + ".bin";
}

class DsDifferential : public ::testing::TestWithParam<Combo> {};

TEST_P(DsDifferential, MapMatchesUnorderedMapOracle)
{
    const Combo combo = GetParam();
    const u64 seed = envU64("FRORAM_DS_FUZZ_SEED", 20260808);
    const u64 ops = opsFor(combo, 4000);
    std::printf("[ map fuzz ] seed=%llu ops=%llu (override with "
                "FRORAM_DS_FUZZ_SEED / FRORAM_DS_FUZZ_OPS)\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(ops));

    const std::string path =
        tmpPath("map_" + comboName({combo, 0}));
    std::remove(path.c_str());
    OramSystem sys(SchemeId::PlbCompressed, makeConfig(combo, path));

    constexpr u32 kValueBytes = 16;
    constexpr u64 kBuckets = 2048;
    ObliviousMapConfig mcfg;
    mcfg.valueBytes = kValueBytes;
    mcfg.seed = seed;
    ObliviousMap map(sys.frontend(), 0, kBuckets, mcfg);
    std::unordered_map<u64, std::vector<u8>> oracle;

    Xoshiro256 rng(seed);
    auto draw_key = [&]() -> u64 {
        // Hot working set plus a miss band, so gets/erases exercise
        // both outcomes and puts revisit keys (update path).
        return rng.chance(0.8) ? rng.below(600) : 600 + rng.below(1000);
    };
    std::vector<u8> val(kValueBytes);
    std::vector<u8> got(kValueBytes);

    for (u64 i = 0; i < ops; ++i) {
        const u64 key = draw_key();
        const double dice = rng.uniform();
        if (dice < 0.45) {
            for (auto& b : val)
                b = static_cast<u8>(rng.next());
            map.put(key, val.data());
            oracle[key] = val;
        } else if (dice < 0.80) {
            const bool found = map.get(key, got.data());
            const auto it = oracle.find(key);
            ASSERT_EQ(found, it != oracle.end())
                << "op " << i << " get(" << key << ") seed " << seed;
            if (found) {
                ASSERT_EQ(got, it->second)
                    << "op " << i << " get(" << key << ") seed " << seed;
            }
        } else {
            const bool found = map.erase(key);
            ASSERT_EQ(found, oracle.erase(key) == 1)
                << "op " << i << " erase(" << key << ") seed " << seed;
        }
        ASSERT_EQ(map.size(), oracle.size()) << "op " << i;
    }

    // Batched multi-get sweep: hits, misses and duplicate keys in one
    // wave must match per-key gets against the oracle.
    constexpr u64 kBatch = 48;
    u64 keys[kBatch];
    std::vector<u8> values(kBatch * kValueBytes);
    u8 found[kBatch];
    for (u64 i = 0; i < kBatch; ++i)
        keys[i] = i % 5 == 4 ? keys[i - 1] : draw_key();
    const u64 hits = map.getBatch(keys, kBatch, values.data(), found);
    u64 expect_hits = 0;
    for (u64 i = 0; i < kBatch; ++i) {
        const auto it = oracle.find(keys[i]);
        ASSERT_EQ(found[i] != 0, it != oracle.end()) << "batch slot " << i;
        if (it != oracle.end()) {
            ++expect_hits;
            const std::vector<u8> v(
                values.begin() +
                    static_cast<long>(i * kValueBytes),
                values.begin() +
                    static_cast<long>((i + 1) * kValueBytes));
            ASSERT_EQ(v, it->second) << "batch slot " << i;
        }
    }
    EXPECT_EQ(hits, expect_hits);

    // Full final sweep over every key either side ever held.
    for (const auto& kv : oracle) {
        ASSERT_TRUE(map.get(kv.first, got.data())) << "key " << kv.first;
        ASSERT_EQ(got, kv.second) << "key " << kv.first;
    }
    std::remove(path.c_str());
}

TEST_P(DsDifferential, IndexMatchesMapOracle)
{
    const Combo combo = GetParam();
    const u64 seed = envU64("FRORAM_DS_FUZZ_SEED", 20260809);
    const u64 ops = opsFor(combo, 1000);
    std::printf("[ index fuzz ] seed=%llu ops=%llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(ops));

    const std::string path =
        tmpPath("index_" + comboName({combo, 0}));
    std::remove(path.c_str());
    OramSystem sys(SchemeId::PlbCompressed, makeConfig(combo, path));

    constexpr u32 kValueBytes = 16;
    constexpr u64 kBlocks = 96;
    ObliviousIndexConfig icfg;
    icfg.valueBytes = kValueBytes;
    icfg.deltaCapacity = 16;
    ObliviousIndex index(sys.frontend(), 0, kBlocks, icfg);
    std::map<u64, std::vector<u8>> oracle;

    Xoshiro256 rng(seed);
    // Key space sized well under capacityEntries() so the conservative
    // fullness guard never fires mid-fuzz.
    auto draw_key = [&]() -> u64 { return 1 + rng.below(150); };
    std::vector<u8> val(kValueBytes);
    const u32 kWidths[] = {1, 4, 16};
    std::vector<u64> rkeys(16);
    std::vector<u8> rvals(16 * kValueBytes);

    for (u64 i = 0; i < ops; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.40) {
            const u64 key = draw_key();
            for (auto& b : val)
                b = static_cast<u8>(rng.next());
            index.insert(key, val.data());
            oracle[key] = val;
        } else if (dice < 0.60) {
            const u64 key = draw_key();
            index.erase(key);
            oracle.erase(key);
        } else {
            const u64 lo = rng.below(170);
            const u32 width = kWidths[rng.below(3)];
            const u64 n =
                index.range(lo, width, rkeys.data(), rvals.data());
            auto it = oracle.lower_bound(lo);
            u64 expect = 0;
            for (; it != oracle.end() && expect < width; ++it, ++expect) {
                ASSERT_LT(expect, n)
                    << "op " << i << " range(" << lo << "," << width
                    << ") seed " << seed;
                ASSERT_EQ(rkeys[expect], it->first) << "op " << i;
                const std::vector<u8> v(
                    rvals.begin() +
                        static_cast<long>(expect * kValueBytes),
                    rvals.begin() +
                        static_cast<long>((expect + 1) * kValueBytes));
                ASSERT_EQ(v, it->second)
                    << "op " << i << " range key " << it->first;
            }
            ASSERT_EQ(n, expect)
                << "op " << i << " range(" << lo << "," << width
                << ") seed " << seed;
        }
    }

    // Flush the delta and re-verify the whole keyspace via width-1
    // point ranges, so the rebuilt array itself is checked too.
    index.flush();
    for (const auto& kv : oracle) {
        const u64 n = index.range(kv.first, 1, rkeys.data(), rvals.data());
        ASSERT_GE(n, u64{1}) << "key " << kv.first;
        ASSERT_EQ(rkeys[0], kv.first);
        const std::vector<u8> v(rvals.begin(),
                                rvals.begin() + kValueBytes);
        ASSERT_EQ(v, kv.second) << "key " << kv.first;
    }
    EXPECT_EQ(index.size(), oracle.size());
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndSchemes, DsDifferential,
    ::testing::Values(
        Combo{StorageBackendKind::Flat, BucketSchemeKind::Path},
        Combo{StorageBackendKind::Flat, BucketSchemeKind::Ring},
        Combo{StorageBackendKind::TimedDram, BucketSchemeKind::Path},
        Combo{StorageBackendKind::TimedDram, BucketSchemeKind::Ring},
        Combo{StorageBackendKind::MmapFile, BucketSchemeKind::Path},
        Combo{StorageBackendKind::MmapFile, BucketSchemeKind::Ring}),
    comboName);

TEST(DsJoin, JoinMatchesOracleComposition)
{
    // Orders (day -> record carrying a customer fk) joined against
    // customers (id -> profile): every windowed join must agree with
    // the two in-memory oracles composed by hand.
    const u64 seed = envU64("FRORAM_DS_FUZZ_SEED", 20260810);
    const Combo combo{StorageBackendKind::Flat, BucketSchemeKind::Path};
    OramSystem sys(SchemeId::PlbCompressed, makeConfig(combo, ""));

    constexpr u32 kValueBytes = 16;
    constexpr u64 kMapBuckets = 1024;
    constexpr u64 kIdxBlocks = 96;
    ObliviousMapConfig mcfg;
    mcfg.valueBytes = kValueBytes;
    mcfg.seed = seed;
    ObliviousMap customers(sys.frontend(), 0, kMapBuckets, mcfg);
    ObliviousIndexConfig icfg;
    icfg.valueBytes = kValueBytes;
    icfg.deltaCapacity = 16;
    ObliviousIndex orders(sys.frontend(), kMapBuckets, kIdxBlocks, icfg);
    ObliviousHashJoin join(orders, customers);

    std::unordered_map<u64, std::vector<u8>> customer_oracle;
    std::map<u64, std::vector<u8>> order_oracle;
    Xoshiro256 rng(seed);
    std::vector<u8> val(kValueBytes);

    // 60 customers; 120 orders on days 1..200, each fk'ing a customer
    // id drawn from a wider band so some orders dangle (no match).
    for (u64 c = 0; c < 60; ++c) {
        for (auto& b : val)
            b = static_cast<u8>(rng.next());
        customers.put(1000 + c, val.data());
        customer_oracle[1000 + c] = val;
    }
    for (u64 o = 0; o < 120; ++o) {
        const u64 day = 1 + rng.below(200);
        const u64 fk = 1000 + rng.below(90);
        for (auto& b : val)
            b = static_cast<u8>(rng.next());
        for (int i = 0; i < 8; ++i)
            val[static_cast<size_t>(i)] = static_cast<u8>(fk >> (8 * i));
        orders.insert(day, val.data());
        order_oracle[day] = val;
    }

    JoinOutput out;
    for (u64 q = 0; q < 40; ++q) {
        const u64 lo = rng.below(220);
        const u32 width = 8;
        const u64 matched = join.run(lo, width, out);

        auto it = order_oracle.lower_bound(lo);
        u64 expect_rows = 0, expect_matched = 0;
        for (; it != order_oracle.end() && expect_rows < width;
             ++it, ++expect_rows) {
            ASSERT_LT(expect_rows, out.rows) << "query " << q;
            ASSERT_EQ(out.indexKey[expect_rows], it->first);
            u64 fk = 0;
            for (int i = 0; i < 8; ++i)
                fk |= static_cast<u64>(it->second[static_cast<size_t>(i)])
                      << (8 * i);
            ASSERT_EQ(out.fk[expect_rows], fk);
            const auto cit = customer_oracle.find(fk);
            ASSERT_EQ(out.matched[expect_rows] != 0,
                      cit != customer_oracle.end())
                << "query " << q << " row " << expect_rows;
            if (cit != customer_oracle.end()) {
                ++expect_matched;
                const std::vector<u8> v(
                    out.mapValue.begin() +
                        static_cast<long>(expect_rows * kValueBytes),
                    out.mapValue.begin() +
                        static_cast<long>((expect_rows + 1) *
                                          kValueBytes));
                ASSERT_EQ(v, cit->second) << "query " << q;
            }
        }
        ASSERT_EQ(out.rows, expect_rows) << "query " << q;
        ASSERT_EQ(matched, expect_matched) << "query " << q;
    }
}

} // namespace
} // namespace froram
