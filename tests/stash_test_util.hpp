/**
 * @file
 * Test-side convenience eviction over Stash's pointer-slot API. The
 * production eviction hands out pool-resident slot pointers
 * (evictPath(leaf, levels, z, slots) + finishEviction()); this wrapper
 * rebuilds the per-level copied-vector view that invariant tests assert
 * against.
 */
#ifndef FRORAM_TESTS_STASH_TEST_UTIL_HPP
#define FRORAM_TESTS_STASH_TEST_UTIL_HPP

#include <vector>

#include "oram/stash.hpp"

namespace froram {

/** Evict up to z blocks per level for `leaf`'s path; returns per-level
 *  copies ([0] = root .. [levels]). */
inline std::vector<std::vector<Block>>
evictPathCopy(Stash& stash, Leaf leaf, u32 levels, u32 z)
{
    std::vector<Block*> slots(u64{levels + 1} * z, nullptr);
    stash.evictPath(leaf, levels, z, slots.data());
    std::vector<std::vector<Block>> out(levels + 1);
    for (u32 v = 0; v <= levels; ++v) {
        for (u32 s = 0; s < z; ++s) {
            if (slots[u64{v} * z + s] != nullptr)
                out[v].push_back(*slots[u64{v} * z + s]);
        }
    }
    stash.finishEviction();
    return out;
}

} // namespace froram

#endif // FRORAM_TESTS_STASH_TEST_UTIL_HPP
