/**
 * @file
 * Ring ORAM bucket-scheme tests: reference-model consistency across
 * storage layers, the deterministic reverse-lexicographic eviction
 * schedule, early reshuffles, metadata invariants, online-bandwidth
 * accounting and checkpoint round-trips of the scheme state.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/oram_system.hpp"
#include "mem/storage_backend.hpp"
#include "oram/backend.hpp"
#include "oram/bucket_scheme.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

struct RingCase {
    const char* name;
    u64 numBlocks;
    u64 blockBytes;
    u32 z;
    u32 ringS; ///< 0 = normalizeRing default
    u32 ringA; ///< 0 = normalizeRing default
    bool backed; ///< BackedTreeStorage over a flat medium (path-IO
                 ///< gather + partial reads) vs map-resident Encrypted
};

class RingBackendTest : public ::testing::TestWithParam<RingCase> {
  protected:
    void
    SetUp() override
    {
        const RingCase c = GetParam();
        params_ = OramParams::forCapacity(c.numBlocks * c.blockBytes,
                                          c.blockBytes, c.z);
        params_.bucketScheme = BucketSchemeKind::Ring;
        params_.ringS = c.ringS;
        params_.ringA = c.ringA;
        params_.normalizeRing();

        BackendConfig bc;
        bc.params = params_;
        bc.schemeSeed = 0xabc123;
        std::unique_ptr<TreeStorage> storage;
        if (c.backed) {
            StorageBackendConfig sc;
            sc.kind = StorageBackendKind::Flat;
            store_ = makeStorageBackend(sc);
            storage = makeTreeStorage(StorageMode::Encrypted, params_,
                                      &cipher_, SeedScheme::GlobalCounter,
                                      store_.get());
        } else {
            storage = std::make_unique<EncryptedTreeStorage>(params_,
                                                             &cipher_);
        }
        backend_ = std::make_unique<OramBackend>(
            bc, std::move(storage),
            std::make_unique<FlatLayout>(params_.levels,
                                         params_.bucketPhysBytes()),
            store_.get());
    }

    RingBucketScheme&
    ring()
    {
        return static_cast<RingBucketScheme&>(backend_->scheme());
    }

    Leaf randLeaf() { return rng_.below(params_.numLeaves()); }

    std::vector<u8>
    pattern(Addr a, u32 version)
    {
        std::vector<u8> d(params_.blockBytes);
        for (size_t i = 0; i < d.size(); ++i)
            d[i] = static_cast<u8>(a * 131 + version * 17 + i);
        return d;
    }

    OramParams params_;
    AesCtrCipher cipher_;
    std::unique_ptr<StorageBackend> store_;
    std::unique_ptr<OramBackend> backend_;
    Xoshiro256 rng_{123};
};

TEST_P(RingBackendTest, ReadYourWrites)
{
    // Functional model: leaf bookkeeping stands in for the Frontend;
    // data must survive online reads, scheduled evictions and early
    // reshuffles interleaving arbitrarily.
    std::map<Addr, Leaf> posmap;
    std::map<Addr, u32> version;
    const u64 n = std::min<u64>(params_.numBlocks, 64);

    for (u32 round = 0; round < 4; ++round) {
        for (Addr a = 0; a < n; ++a) {
            const Leaf use = posmap.count(a) ? posmap[a] : randLeaf();
            const Leaf fresh = randLeaf();
            posmap[a] = fresh;
            const auto data = pattern(a, round);
            backend_->access(Op::Write, a, use, fresh, &data);
            version[a] = round;
        }
        for (Addr a = 0; a < n; ++a) {
            const Addr target = (a * 31 + 7) % n;
            const Leaf use = posmap[target];
            const Leaf fresh = randLeaf();
            posmap[target] = fresh;
            const auto r =
                backend_->access(Op::Read, target, use, fresh);
            ASSERT_TRUE(r.found) << "block " << target << " lost";
            EXPECT_EQ(r.block.data, pattern(target, version[target]))
                << "stale data for block " << target;
        }
    }
}

TEST_P(RingBackendTest, BlockIsOnPathOrInStash)
{
    // The tree invariant, with Ring's twist: only LIVE slots count (a
    // consumed slot's stale image is not the block's home).
    std::map<Addr, Leaf> posmap;
    const u64 n = std::min<u64>(params_.numBlocks, 32);
    for (Addr a = 0; a < n; ++a) {
        const Leaf fresh = randLeaf();
        const auto data = pattern(a, 0);
        backend_->access(Op::Write, a,
                         posmap.count(a) ? posmap[a] : randLeaf(), fresh,
                         &data);
        posmap[a] = fresh;
    }
    for (const auto& [addr, leaf] : posmap) {
        if (backend_->stash().contains(addr))
            continue;
        const auto where = backend_->locateInTree(addr);
        ASSERT_TRUE(where.has_value()) << "block " << addr << " lost";
        // The bucket must lie on the path to the mapped leaf.
        const u32 l = where->level;
        EXPECT_EQ(where->index, leaf >> (params_.levels - l))
            << "block " << addr << " off its path";
    }
}

TEST_P(RingBackendTest, OnlineBandwidthBelowWholePath)
{
    // Ring's point: the online read touches at most one block (plus
    // header) per path bucket, vs Z blocks per bucket for Path.
    std::map<Addr, Leaf> posmap;
    const u64 n = std::min<u64>(params_.numBlocks, 64);
    for (u32 round = 0; round < 3; ++round) {
        for (Addr a = 0; a < n; ++a) {
            const Leaf fresh = randLeaf();
            const auto data = pattern(a, round);
            backend_->access(Op::Write, a,
                             posmap.count(a) ? posmap[a] : randLeaf(),
                             fresh, &data);
            posmap[a] = fresh;
        }
    }
    const u64 accesses = backend_->stats().get("accesses");
    const u64 online = backend_->stats().get("onlineBlocks");
    ASSERT_GT(accesses, 0u);
    // <= (L+1) online blocks per access...
    EXPECT_LE(online, accesses * (params_.levels + 1));
    // ...which beats Path's (L+1)*Z whenever Z > 1.
    EXPECT_LT(online, accesses * (params_.levels + 1) * params_.z);
}

TEST_P(RingBackendTest, MetadataInvariants)
{
    std::map<Addr, Leaf> posmap;
    const u64 n = std::min<u64>(params_.numBlocks, 48);
    for (u32 round = 0; round < 3; ++round) {
        for (Addr a = 0; a < n; ++a) {
            const Leaf fresh = randLeaf();
            const auto data = pattern(a, round);
            backend_->access(Op::Write, a,
                             posmap.count(a) ? posmap[a] : randLeaf(),
                             fresh, &data);
            posmap[a] = fresh;
        }
    }
    const RingBucketScheme& r = ring();
    EXPECT_EQ(r.round(), backend_->stats().get("accesses"));
    // Every bucket owes the scheme at most S reads before a reshuffle;
    // readsUntilReshuffle never underflows (count <= S).
    const u64 buckets = (u64{1} << (params_.levels + 1)) - 1;
    for (u64 id = 0; id < buckets; ++id)
        EXPECT_LE(r.readsUntilReshuffle(id), r.ringS()) << "bucket " << id;
    // The scheduled-eviction cadence: one EvictPath per A accesses.
    EXPECT_EQ(backend_->stats().get("evictPaths"),
              backend_->stats().get("accesses") / r.ringA());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RingBackendTest,
    ::testing::Values(
        RingCase{"map_defaults", 1 << 10, 64, 4, 0, 0, false},
        RingCase{"map_tight_s", 1 << 10, 64, 4, 3, 2, false},
        RingCase{"backed_defaults", 1 << 10, 64, 4, 0, 0, true},
        RingCase{"backed_z8", 1 << 12, 32, 8, 0, 0, true}),
    [](const ::testing::TestParamInfo<RingCase>& info) {
        return info.param.name;
    });

TEST(RingScheme, ReverseLexSequence)
{
    EXPECT_EQ(RingBucketScheme::reverseBits(0, 3), 0u);
    EXPECT_EQ(RingBucketScheme::reverseBits(1, 3), 4u);
    EXPECT_EQ(RingBucketScheme::reverseBits(2, 3), 2u);
    EXPECT_EQ(RingBucketScheme::reverseBits(3, 3), 6u);
    EXPECT_EQ(RingBucketScheme::reverseBits(4, 3), 1u);
    // Consecutive reverse-lex leaves maximize shared-prefix turnover:
    // all 2^L leaves appear once per 2^L evictions.
    std::set<u64> seen;
    for (u64 g = 0; g < 8; ++g)
        seen.insert(RingBucketScheme::reverseBits(g, 3));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RingSystem, EvictScheduleIsWorkloadIndependent)
{
    // System-level: the EvictPath trace is the deterministic reverse-lex
    // sequence regardless of which addresses the program touches.
    auto run = [](u64 addr_stride) {
        OramSystemConfig cfg;
        cfg.capacityBytes = 64 * 1024;
        cfg.blockBytes = 64;
        cfg.backend = StorageBackendKind::Flat;
        cfg.storage = StorageMode::Encrypted;
        cfg.bucketScheme = BucketSchemeKind::Ring;
        cfg.collectTrace = true;
        OramSystem sys(SchemeId::PlbCompressed, cfg);
        for (u64 i = 0; i < 200; ++i)
            sys.frontend().access((i * addr_stride) % 512, i % 2 == 0);
        std::vector<Leaf> evicts;
        for (const TraceEvent& e : sys.trace()) {
            if (e.kind == TraceEvent::Kind::EvictPath && e.treeId == 0)
                evicts.push_back(e.leaf);
        }
        return evicts;
    };
    const auto a = run(1);
    const auto b = run(97);
    ASSERT_FALSE(a.empty());
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i], b[i]) << "evict " << i << " depends on workload";
}

TEST(RingSystem, EarlyReshuffleFires)
{
    // A hammered address forces its path buckets through S reads long
    // before the reverse-lex schedule refreshes them.
    OramSystemConfig cfg;
    cfg.capacityBytes = 64 * 1024;
    cfg.blockBytes = 64;
    cfg.backend = StorageBackendKind::Flat;
    cfg.storage = StorageMode::Encrypted;
    cfg.bucketScheme = BucketSchemeKind::Ring;
    cfg.ringS = 3; // tight dummy budget
    cfg.ringA = 4; // slow scheduled evictions
    cfg.collectTrace = true;
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    for (u64 i = 0; i < 400; ++i)
        sys.frontend().access(7, false);
    u64 reshuffles = 0;
    for (const TraceEvent& e : sys.trace())
        reshuffles += e.kind == TraceEvent::Kind::BucketReshuffle ? 1 : 0;
    EXPECT_GT(reshuffles, 0u);
}

TEST(RingSystem, CheckpointRoundTripReplaysBitIdentical)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = 64 * 1024;
    cfg.blockBytes = 64;
    cfg.backend = StorageBackendKind::Flat;
    cfg.storage = StorageMode::Encrypted;
    cfg.bucketScheme = BucketSchemeKind::Ring;
    cfg.collectTrace = true;

    OramSystem sys(SchemeId::PlbCompressed, cfg);
    std::vector<u8> payload(64, 0x5a);
    for (u64 i = 0; i < 150; ++i)
        sys.frontend().access(i % 300, i % 3 == 0, &payload);
    const auto snap = sys.checkpoint(CheckpointScope::Full);

    // Continue the original; replay the restored clone; every result,
    // cycle count and trace event must match (the scheme's RNG, round
    // counter and per-bucket metadata all replayed exactly).
    OramSystem clone(SchemeId::PlbCompressed, cfg);
    clone.restore(snap);
    sys.clearTrace();
    clone.clearTrace();
    for (u64 i = 0; i < 120; ++i) {
        const Addr a = (i * 13) % 300;
        const auto r1 = sys.frontend().access(a, i % 4 == 0, &payload);
        const auto r2 = clone.frontend().access(a, i % 4 == 0, &payload);
        ASSERT_EQ(r1.data, r2.data) << "divergence at access " << i;
        ASSERT_EQ(r1.cycles, r2.cycles) << "timing divergence at " << i;
    }
    ASSERT_EQ(sys.trace().size(), clone.trace().size());
    for (size_t i = 0; i < sys.trace().size(); ++i) {
        EXPECT_EQ(sys.trace()[i].kind, clone.trace()[i].kind);
        EXPECT_EQ(sys.trace()[i].leaf, clone.trace()[i].leaf);
    }
}

} // namespace
} // namespace froram
