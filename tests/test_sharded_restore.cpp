/**
 * @file
 * ShardedOramService persistence: checkpoint()/open() round trips, the
 * manifest tamper/missing-shard failure matrix, and the mmap shard
 * directory lifecycle (creation, wrong-shard-count reopen, partially
 * written directories) — every failure mode must raise a typed error
 * and leave the on-disk state unclobbered.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

#include "mem/fault_injecting_backend.hpp"
#include "shard/sharded_service.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::string
freshDir(const std::string& tag)
{
    // Unique across runs too (the pid), so a previous run's leftovers
    // can never masquerade as this run's directories.
    static int counter = 0;
    return ::testing::TempDir() + "froram_shardr_" +
           std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++);
}

ShardedServiceConfig
mmapConfig(const std::string& dir, u32 shards = 4)
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbIntegrityCompressed;
    cfg.base.capacityBytes = u64{256} << 10;
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = StorageBackendKind::MmapFile;
    cfg.base.seed = 0xd1d1;
    cfg.numShards = shards;
    cfg.numWorkers = 2;
    cfg.directory = dir;
    return cfg;
}

std::vector<u8>
payloadFor(Addr addr, u64 version, u64 block_bytes)
{
    std::vector<u8> data(block_bytes);
    for (u64 j = 0; j < block_bytes; ++j)
        data[j] = static_cast<u8>(addr * 37 + version * 101 + j);
    return data;
}

void
writeSome(ShardedOramService& svc, u64 version, u64 block_bytes,
          int count = 64)
{
    for (int i = 0; i < count; ++i) {
        const std::vector<u8> data =
            payloadFor(static_cast<Addr>(i), version, block_bytes);
        svc.access(static_cast<Addr>(i), true, &data);
    }
}

void
expectSome(ShardedOramService& svc, u64 version, u64 block_bytes,
           int count = 64)
{
    for (int i = 0; i < count; ++i)
        EXPECT_EQ(svc.access(static_cast<Addr>(i), false).data,
                  payloadFor(static_cast<Addr>(i), version,
                             block_bytes))
            << "record " << i;
}

std::vector<u8>
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<u8>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void
spit(const std::string& path, const std::vector<u8>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<long>(bytes.size()));
}

std::string
snapName(const std::string& dir, u32 shard, u64 gen)
{
    char name[48];
    std::snprintf(name, sizeof(name), "shard-%04u.g%llu.ckpt", shard,
                  static_cast<unsigned long long>(gen));
    return dir + "/" + name;
}

TEST(ShardedRestore, MmapRoundTripContinuesBitIdentically)
{
    const std::string dir = freshDir("roundtrip");
    const std::string control_dir = freshDir("roundtrip_ctl");
    const u64 bb = 64;

    // Control: an identical service that never checkpoints. Its
    // post-snapshot-point accesses are the ground truth the resumed
    // service must reproduce bit-for-bit (remap RNG, PMMAC counters
    // and stash state all restored exactly).
    ShardedOramService control(mmapConfig(control_dir));
    writeSome(control, /*version=*/1, bb);

    {
        ShardedOramService svc(mmapConfig(dir));
        writeSome(svc, /*version=*/1, bb);
        svc.checkpoint();
        EXPECT_EQ(svc.generation(), 1u);
    } // destructor: original gone (simulates clean process exit)

    auto resumed = ShardedOramService::open(mmapConfig(dir));
    EXPECT_EQ(resumed->generation(), 1u);
    Xoshiro256 rng(5);
    for (int i = 0; i < 40; ++i) {
        const Addr addr = rng.below(64);
        const bool write = i % 4 == 0;
        if (write) {
            const std::vector<u8> data =
                payloadFor(addr, 90 + static_cast<u64>(i), bb);
            EXPECT_EQ(resumed->access(addr, true, &data).data,
                      control.access(addr, true, &data).data);
        } else {
            EXPECT_EQ(resumed->access(addr, false).data,
                      control.access(addr, false).data)
                << "replayed access " << i;
        }
    }
    // Per-shard trace leaves also line up between control and resumed
    // ... but the control collected no trace here; value equality above
    // plus the determinism suite covers the trace dimension.
}

TEST(ShardedRestore, VolatileBackendFullScopeRoundTrip)
{
    const std::string dir = freshDir("flatfull");
    ShardedServiceConfig cfg = mmapConfig(dir);
    cfg.base.backend = StorageBackendKind::Flat;
    const u64 bb = 64;
    {
        ShardedOramService svc(cfg);
        writeSome(svc, 3, bb);
        svc.checkpoint(); // Auto resolves to Full on a volatile backend
    }
    auto resumed = ShardedOramService::open(cfg);
    expectSome(*resumed, 3, bb);
}

TEST(ShardedRestore, CheckpointedUnderChaosReopensWithoutFaultPlumbing)
{
    // Operational config — fault schedule, retry policy, supervision —
    // is excluded from every fingerprint: a generation committed while
    // fault injection was hammering the medium must reopen (and
    // verify) in a plain config with no fault plumbing at all.
    const std::string dir = freshDir("chaos_ckpt");
    const u64 bb = 64;
    ShardedServiceConfig chaos = mmapConfig(dir);
    chaos.base.faultSchedule = std::make_shared<FaultSchedule>();
    chaos.base.faultSchedule->setRandomRate(0.05, 0x0dd5);
    chaos.supervision.retry.maxAttempts = 8;
    chaos.supervision.retry.baseBackoffUs = 1;
    chaos.supervision.retry.maxBackoffUs = 20;
    {
        ShardedOramService svc(chaos);
        writeSome(svc, /*version=*/7, bb);
        svc.checkpoint();
        // The run actually exercised the fault path (seeded, so this
        // is deterministic, not flaky).
        EXPECT_GT(chaos.base.faultSchedule->faultsFired(), 0u);
        for (u32 s = 0; s < svc.numShards(); ++s)
            EXPECT_NE(svc.shardHealth(s), ShardHealth::Quarantined)
                << "shard " << s << " must never quarantine on "
                << "absorbed transient faults";
    }
    auto resumed = ShardedOramService::open(mmapConfig(dir));
    expectSome(*resumed, 7, bb);
}

TEST(ShardedRestore, SecondCheckpointSupersedesAndCleansUp)
{
    const std::string dir = freshDir("gen2");
    ShardedServiceConfig cfg = mmapConfig(dir);
    const u64 bb = 64;
    {
        ShardedOramService svc(cfg);
        writeSome(svc, 1, bb);
        svc.checkpoint();
        writeSome(svc, 2, bb);
        svc.checkpoint();
        EXPECT_EQ(svc.generation(), 2u);
        // Generation-1 snapshots are gone once gen 2 committed.
        for (u32 s = 0; s < cfg.numShards; ++s)
            EXPECT_FALSE(ckpt::fileExists(snapName(dir, s, 1)));
    }
    auto resumed = ShardedOramService::open(mmapConfig(dir));
    expectSome(*resumed, 2, bb);
}

TEST(ShardedRestore, ManifestTamperMatrix)
{
    const std::string dir = freshDir("tamper");
    ShardedServiceConfig cfg = mmapConfig(dir);
    {
        ShardedOramService svc(cfg);
        writeSome(svc, 1, 64, 16);
        svc.checkpoint();
    }
    const std::string mpath = dir + "/MANIFEST";
    const std::vector<u8> good = slurp(mpath);
    ASSERT_FALSE(good.empty());

    // Flip one byte at representative offsets: magic, version,
    // fingerprint, payload (shard count / tags), MAC tail.
    const size_t offsets[] = {0,           9,  20,
                              40,          good.size() / 2,
                              good.size() - 1};
    for (const size_t off : offsets) {
        ASSERT_LT(off, good.size());
        std::vector<u8> bad = good;
        bad[off] ^= 0x40;
        spit(mpath, bad);
        EXPECT_THROW(ShardedOramService::open(mmapConfig(dir)),
                     CheckpointError)
            << "flipped byte " << off;
    }
    // Truncations.
    for (const size_t keep :
         {size_t{0}, size_t{16}, good.size() - 1}) {
        spit(mpath, std::vector<u8>(good.begin(),
                                    good.begin() +
                                        static_cast<long>(keep)));
        EXPECT_THROW(ShardedOramService::open(mmapConfig(dir)),
                     CheckpointError)
            << "truncated to " << keep;
    }
    // Restoring the pristine manifest still works: nothing above
    // clobbered any other file.
    spit(mpath, good);
    auto resumed = ShardedOramService::open(mmapConfig(dir));
    expectSome(*resumed, 1, 64, 16);
}

TEST(ShardedRestore, MissingManifestOrSnapshotFailsAtomically)
{
    const std::string dir = freshDir("missing");
    ShardedServiceConfig cfg = mmapConfig(dir);
    {
        ShardedOramService svc(cfg);
        writeSome(svc, 1, 64, 16);
        svc.checkpoint();
    }

    // Missing shard snapshot: open must fail and must not touch the
    // remaining files (sizes unchanged).
    const std::string victim = snapName(dir, 2, 1);
    const std::vector<u8> saved = slurp(victim);
    ASSERT_FALSE(saved.empty());
    std::remove(victim.c_str());
    const std::vector<u8> other = slurp(snapName(dir, 1, 1));
    EXPECT_THROW(ShardedOramService::open(mmapConfig(dir)),
                 CheckpointError);
    EXPECT_EQ(slurp(snapName(dir, 1, 1)), other);

    // Putting it back heals the service.
    spit(victim, saved);
    auto resumed = ShardedOramService::open(mmapConfig(dir));
    expectSome(*resumed, 1, 64, 16);
    resumed.reset();

    // Missing manifest entirely.
    std::remove((dir + "/MANIFEST").c_str());
    EXPECT_THROW(ShardedOramService::open(mmapConfig(dir)),
                 CheckpointError);
}

TEST(ShardedRestore, RolledBackShardSnapshotIsRejected)
{
    const std::string dir = freshDir("rollback");
    ShardedServiceConfig cfg = mmapConfig(dir);
    std::vector<u8> old_snap;
    {
        ShardedOramService svc(cfg);
        writeSome(svc, 1, 64, 16);
        svc.checkpoint();
        old_snap = slurp(snapName(dir, 0, 1));
        writeSome(svc, 2, 64, 16);
        svc.checkpoint();
    }
    // Replay attack: slide shard 0 back to its (validly sealed!)
    // generation-1 snapshot under the generation-2 name. The manifest
    // pinned generation 2's MAC tag, so open() must reject it.
    ASSERT_FALSE(old_snap.empty());
    spit(snapName(dir, 0, 2), old_snap);
    EXPECT_THROW(ShardedOramService::open(mmapConfig(dir)),
                 CheckpointError);
}

TEST(ShardedRestore, WrongShardCountOnOpenIsTyped)
{
    const std::string dir = freshDir("wrongcount");
    {
        ShardedOramService svc(mmapConfig(dir, 4));
        writeSome(svc, 1, 64, 16);
        svc.checkpoint();
    }
    EXPECT_THROW(ShardedOramService::open(mmapConfig(dir, 2)),
                 CheckpointError);
    EXPECT_THROW(ShardedOramService::open(mmapConfig(dir, 8)),
                 CheckpointError);
    // The right count still opens: the failures above changed nothing.
    auto resumed = ShardedOramService::open(mmapConfig(dir, 4));
    expectSome(*resumed, 1, 64, 16);
}

TEST(ShardedLifecycle, CreatingOverMismatchedLayoutRefusesToClobber)
{
    const std::string dir = freshDir("mismatch");
    { ShardedOramService svc(mmapConfig(dir, 4)); }

    // Reinitializing (reset=true) with a different shard count must
    // fail before any file is truncated.
    const std::vector<u8> shard0 =
        slurp(shardBackendPath(dir, 0));
    ASSERT_FALSE(shard0.empty());
    EXPECT_THROW(ShardedOramService svc(mmapConfig(dir, 2)),
                 FatalError);
    EXPECT_THROW(ShardedOramService svc(mmapConfig(dir, 8)),
                 FatalError);
    EXPECT_EQ(slurp(shardBackendPath(dir, 0)), shard0);

    // Reopening (reset=false) with a wrong count is equally typed.
    ShardedServiceConfig reopen = mmapConfig(dir, 2);
    reopen.base.backendReset = false;
    EXPECT_THROW(ShardedOramService svc(reopen), FatalError);

    // Same count + reset reinitializes fine.
    ShardedOramService again(mmapConfig(dir, 4));
}

TEST(ShardedLifecycle, ResetDropsStaleServiceMetadata)
{
    const std::string dir = freshDir("stale");
    {
        ShardedOramService svc(mmapConfig(dir, 4));
        writeSome(svc, 1, 64, 16);
        svc.checkpoint();
    }
    ASSERT_TRUE(ckpt::fileExists(dir + "/MANIFEST"));
    // Reinitialize: the old epoch's manifest and snapshots must not
    // survive to be opened against the reset trees.
    { ShardedOramService svc(mmapConfig(dir, 4)); }
    EXPECT_FALSE(ckpt::fileExists(dir + "/MANIFEST"));
    EXPECT_FALSE(ckpt::fileExists(snapName(dir, 0, 1)));
    EXPECT_THROW(ShardedOramService::open(mmapConfig(dir, 4)),
                 CheckpointError);
}

TEST(ShardedLifecycle, ResetSweepsStaleMetadataEvenWithoutShardFiles)
{
    const std::string dir = freshDir("stale_nofiles");
    {
        ShardedOramService svc(mmapConfig(dir, 4));
        writeSome(svc, 1, 64, 16);
        svc.checkpoint();
    }
    // All backend files vanish (hand-deleted) but the old epoch's
    // MANIFEST/snapshots survive. A reset re-creation must sweep them:
    // otherwise open() would marry the stale (validly sealed, Full-
    // scope) trusted state to the freshly reset trees.
    for (u32 s = 0; s < 4; ++s)
        std::remove(shardBackendPath(dir, s).c_str());
    ASSERT_TRUE(ckpt::fileExists(dir + "/MANIFEST"));
    { ShardedOramService svc(mmapConfig(dir, 4)); }
    EXPECT_FALSE(ckpt::fileExists(dir + "/MANIFEST"));
    EXPECT_THROW(ShardedOramService::open(mmapConfig(dir, 4)),
                 CheckpointError);
}

TEST(ShardedLifecycle, PartiallyWrittenDirectoryIsTorn)
{
    const std::string dir = freshDir("torn");
    {
        ShardedOramService svc(mmapConfig(dir, 4));
        writeSome(svc, 1, 64, 16);
        svc.checkpoint();
    }
    // Simulate a partially materialized directory: shard 1's backing
    // file vanished (e.g. interrupted copy). Creation, reopening and
    // restoring must all detect the gap as a typed error.
    std::remove(shardBackendPath(dir, 1).c_str());
    EXPECT_THROW(ShardedOramService svc(mmapConfig(dir, 4)),
                 FatalError);
    ShardedServiceConfig reopen = mmapConfig(dir, 4);
    reopen.base.backendReset = false;
    EXPECT_THROW(ShardedOramService svc(reopen), FatalError);
    EXPECT_THROW(ShardedOramService::open(mmapConfig(dir, 4)),
                 FatalError);
}

TEST(ShardedLifecycle, NonDirectoryPathIsTyped)
{
    const std::string path = freshDir("file");
    spit(path, {1, 2, 3});
    EXPECT_THROW(ShardedOramService svc(mmapConfig(path, 2)),
                 FatalError);
}

TEST(ShardedLifecycle, CheckpointRefusesDirectoryOfOtherService)
{
    // A volatile-backend service checkpointing into a directory that
    // belongs to an mmap service with a different shard count.
    const std::string dir = freshDir("foreign");
    { ShardedOramService svc(mmapConfig(dir, 4)); }
    ShardedServiceConfig cfg = mmapConfig(dir, 2);
    cfg.base.backend = StorageBackendKind::Flat;
    ShardedOramService svc(cfg);
    EXPECT_THROW(svc.checkpoint(), FatalError);
}

} // namespace
} // namespace froram
