/**
 * @file
 * Obliviousness (privacy) tests.
 *
 * The ORAM security definition (Section 2) says the adversary-visible
 * request sequence leaks only its length. These tests check the
 * statistical consequences: the leaf sequence is uniform, the traces of
 * two very different programs are indistinguishable, consecutive
 * accesses to the same block use independent leaves, and the Section
 * 4.1.2 PLB-without-unified-tree leak exists (as walk-depth structure)
 * while the unified tree hides it.
 *
 * The statistical tests run for both bucket schemes (TEST_P over the
 * scheme axis): Path and Ring differ in what a "path read" physically
 * moves, but the adversary-visible leaf sequence must be uniform and
 * workload-independent either way. Scheme-specific trace composition
 * (Path's strict read/write pairing, Ring's deterministic eviction
 * cadence) is pinned per scheme at the end.
 */
#include <gtest/gtest.h>

#include "core/unified_frontend.hpp"
#include "oram/bucket_scheme.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

class SchemeObliviousness
    : public ::testing::TestWithParam<BucketSchemeKind> {};

struct TraceHarness {
    std::vector<TraceEvent> events;
    BucketSchemeKind scheme = BucketSchemeKind::Path;

    UnifiedFrontendConfig
    config()
    {
        UnifiedFrontendConfig c;
        c.bucketScheme = scheme;
        c.numBlocks = 4096;
        c.blockBytes = 64;
        c.format = PosMapFormat::Kind::Compressed;
        c.plb.capacityBytes = 4 * 1024;
        c.onChipTargetBytes = 512;
        c.storage = StorageMode::Meta;
        c.rngSeed = 77;
        return c;
    }

    std::unique_ptr<UnifiedFrontend>
    make(const StreamCipher* cipher)
    {
        return std::make_unique<UnifiedFrontend>(
            config(), cipher, nullptr,
            [this](const TraceEvent& e) { events.push_back(e); });
    }
};

TEST_P(SchemeObliviousness, LeafSequenceIsUniform)
{
    TraceHarness h;
    h.scheme = GetParam();
    auto fe = h.make(nullptr);
    const u64 leaves = fe->backend().params().numLeaves();
    // Program: sequential scan (maximum structure in the address trace).
    for (int round = 0; round < 8; ++round)
        for (Addr a = 0; a < 1024; ++a)
            fe->access(a, false);
    Histogram hist(64);
    for (const auto& e : h.events) {
        if (e.kind == TraceEvent::Kind::PathRead)
            hist.add(e.leaf * 64 / leaves);
    }
    ASSERT_GT(hist.total(), 4000u);
    EXPECT_LT(hist.chiSquareUniform(), chiSquareCritical(63, 0.001))
        << "path access distribution must look uniform";
}

TEST_P(SchemeObliviousness, RepeatedAccessUsesIndependentLeaves)
{
    // Accessing the same block repeatedly must produce fresh leaves
    // every time (the core Path ORAM security argument).
    TraceHarness h;
    h.scheme = GetParam();
    auto fe = h.make(nullptr);
    for (int i = 0; i < 400; ++i)
        fe->access(42, false);
    // Collect the data-access leaves (the last PathRead of each access
    // group); just test the whole sequence for serial correlation.
    std::vector<Leaf> seq;
    for (const auto& e : h.events)
        if (e.kind == TraceEvent::Kind::PathRead)
            seq.push_back(e.leaf);
    ASSERT_GT(seq.size(), 300u);
    u64 repeats = 0;
    for (size_t i = 1; i < seq.size(); ++i)
        repeats += seq[i] == seq[i - 1] ? 1 : 0;
    // With 2^10+ leaves, consecutive repeats should be rare.
    EXPECT_LT(static_cast<double>(repeats) / seq.size(), 0.01);
}

TEST_P(SchemeObliviousness, TwoProgramsProduceIndistinguishableTraces)
{
    // Program A: sequential unit stride. Program B: stride X (the two
    // programs of Section 4.1.2). Their *unified-tree* traces must be
    // statistically identical per event.
    auto run = [&](u64 stride) {
        TraceHarness h;
        h.scheme = GetParam();
        auto fe = h.make(nullptr);
        Addr a = 0;
        for (int i = 0; i < 3000; ++i) {
            fe->access(a % 4096, false);
            a += stride;
        }
        Histogram hist(64);
        const u64 leaves = fe->backend().params().numLeaves();
        for (const auto& e : h.events)
            if (e.kind == TraceEvent::Kind::PathRead)
                hist.add(e.leaf * 64 / leaves);
        return hist;
    };
    Histogram a = run(1), b = run(32);
    // Same binning: two-sample chi-square must not separate them.
    EXPECT_LT(a.chiSquareTwoSample(b), chiSquareCritical(63, 0.001));
    EXPECT_LT(a.ksDistance(b), 0.03);
}

TEST_P(SchemeObliviousness, AllUnifiedEventsTouchOneTree)
{
    // With the unified ORAM tree, the adversary never learns *which*
    // recursion level an access serves (Section 4.1.3).
    TraceHarness h;
    h.scheme = GetParam();
    auto fe = h.make(nullptr);
    for (Addr a = 0; a < 500; ++a)
        fe->access(a, false);
    for (const auto& e : h.events)
        EXPECT_EQ(e.treeId, 0u);
}

TEST_P(SchemeObliviousness, PlbWithoutUnifiedTreeWouldLeak)
{
    // Section 4.1.2 demonstration. The PLB's walk depth (how many
    // PosMap ORAMs would be accessed) differs structurally between
    // program A (unit stride) and program B (stride X): in a SPLIT-tree
    // design the adversary sees exactly this as per-tree accesses. The
    // unified tree collapses it into one indistinguishable stream
    // (previous tests); here we show the signal it removed is real.
    auto depths = [&](u64 stride) {
        TraceHarness h;
        h.scheme = GetParam();
        auto fe = h.make(nullptr);
        const u32 x = fe->format().x();
        u64 walk_accesses = 0, data_accesses = 0;
        Addr a = 0;
        for (int i = 0; i < 2000; ++i) {
            const auto r = fe->access(a % 4096, false);
            walk_accesses += r.backendAccesses - 1;
            data_accesses += 1;
            a += stride == 0 ? x : stride;
        }
        return static_cast<double>(walk_accesses) / data_accesses;
    };
    const double unit_stride_depth = depths(1);
    const double x_stride_depth = depths(0); // stride = X
    // Program B misses the PLB's level-1 blocks ~X times as often.
    EXPECT_GT(x_stride_depth, 2.0 * unit_stride_depth);
}

TEST(Obliviousness, TraceLengthIsTheOnlyWorkloadSignal)
{
    // For a fixed number of *backend* accesses, traces from different
    // programs are exchangeable. Verify composition: every backend
    // access is exactly one PathRead followed by one PathWrite. (Path
    // scheme only: Ring decouples reads from evictions, pinned below.)
    TraceHarness h;
    auto fe = h.make(nullptr);
    for (int i = 0; i < 500; ++i)
        fe->access((i * 797) % 4096, i % 2 == 0);
    ASSERT_FALSE(h.events.empty());
    for (size_t i = 0; i + 1 < h.events.size(); i += 2) {
        EXPECT_EQ(h.events[i].kind, TraceEvent::Kind::PathRead);
        EXPECT_EQ(h.events[i + 1].kind, TraceEvent::Kind::PathWrite);
        EXPECT_EQ(h.events[i].leaf, h.events[i + 1].leaf);
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeObliviousness,
                         ::testing::Values(BucketSchemeKind::Path,
                                           BucketSchemeKind::Ring),
                         [](const auto& info) {
                             return std::string(toString(info.param));
                         });

TEST(Obliviousness, RingTraceCompositionIsDeterministic)
{
    // Ring's analogue of the pairing test: one PathRead (the online
    // read) per backend access, one EvictPath every A accesses, and the
    // EvictPath leaf order is fixed by the reverse-lexicographic
    // schedule — none of it depends on the program.
    TraceHarness h;
    h.scheme = BucketSchemeKind::Ring;
    auto fe = h.make(nullptr);
    const u32 a_cadence =
        static_cast<const RingBucketScheme&>(fe->backend().scheme())
            .ringA();
    for (int i = 0; i < 500; ++i)
        fe->access((i * 797) % 4096, i % 2 == 0);
    u64 reads = 0, evicts = 0;
    std::vector<Leaf> evict_leaves;
    for (const auto& e : h.events) {
        if (e.kind == TraceEvent::Kind::PathRead)
            ++reads;
        if (e.kind == TraceEvent::Kind::EvictPath) {
            ++evicts;
            evict_leaves.push_back(e.leaf);
        }
    }
    ASSERT_GT(reads, 0u);
    EXPECT_EQ(evicts, reads / a_cadence);
    // Reverse-lex: the g-th eviction touches bit-reversed(g).
    const u32 levels = fe->backend().params().levels;
    const u64 leaves = fe->backend().params().numLeaves();
    for (u64 g = 0; g < evict_leaves.size(); ++g)
        EXPECT_EQ(evict_leaves[g],
                  RingBucketScheme::reverseBits(g % leaves, levels))
            << "eviction " << g;
}

} // namespace
} // namespace froram
