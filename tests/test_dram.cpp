/**
 * @file
 * DRAM timing model tests: address decode, row-buffer behavior, latency
 * ordering, bandwidth sanity against the configured peak, and channel
 * scaling (the substrate behind Table 2).
 */
#include <gtest/gtest.h>

#include "mem/dram_model.hpp"

namespace froram {
namespace {

TEST(DramConfig, PeakBandwidthMatchesPaper)
{
    // 667 MHz DDR x 64-bit bus ~ 10.67 GB/s per channel (Section 7.1.1).
    const DramConfig one = DramConfig::ddr3(1);
    EXPECT_NEAR(one.peakBandwidthBytesPerSec() / 1e9, 10.67, 0.05);
    const DramConfig two = DramConfig::ddr3(2);
    EXPECT_NEAR(two.peakBandwidthBytesPerSec() / 1e9, 21.33, 0.1);
}

TEST(DramModel, RejectsBadChannelCount)
{
    DramConfig c = DramConfig::ddr3(2);
    c.channels = 3;
    EXPECT_THROW(DramModel m(c), FatalError);
}

TEST(DramModel, DecodeStripesBurstsAcrossChannels)
{
    DramModel m(DramConfig::ddr3(4));
    for (u64 i = 0; i < 16; ++i) {
        const auto d = m.decode(i * 64);
        EXPECT_EQ(d.channel, i % 4);
    }
}

TEST(DramModel, DecodeRoundTripsWithinRow)
{
    DramModel m(DramConfig::ddr3(2));
    // Consecutive bursts on the same channel land in the same row until
    // rowBytes are exhausted.
    const auto first = m.decode(0);
    const auto later = m.decode(2 * 64 * 10); // same channel, +10 bursts
    EXPECT_EQ(first.channel, later.channel);
    EXPECT_EQ(first.row, later.row);
    EXPECT_NE(first.col, later.col);
}

TEST(DramModel, RowHitFasterThanRowMiss)
{
    DramModel m(DramConfig::ddr3(1));
    const u64 miss = m.accessSingle(0, false); // cold: activate needed
    const u64 hit = m.accessSingle(64, false); // same row
    EXPECT_LT(hit, miss);
    EXPECT_EQ(m.stats().get("rowHits"), 1u);
    EXPECT_EQ(m.stats().get("rowMisses"), 1u);
}

TEST(DramModel, RowConflictSlowerThanMiss)
{
    DramConfig cfg = DramConfig::ddr3(1);
    DramModel m(cfg);
    const u64 row_span =
        u64{cfg.rowBytes} * cfg.totalBanksPerChannel(); // next row, bank 0
    m.accessSingle(0, false);                  // open row 0 in bank 0
    m.idle(1000000);                           // let tRAS pass
    const u64 conflict = m.accessSingle(row_span, false);
    DramModel fresh(cfg);
    const u64 miss = fresh.accessSingle(0, false);
    EXPECT_GT(conflict, miss);
    EXPECT_EQ(m.stats().get("rowConflicts"), 1u);
}

TEST(DramModel, SequentialStreamApproachesPeakBandwidth)
{
    DramConfig cfg = DramConfig::ddr3(2);
    DramModel m(cfg);
    std::vector<DramRequest> reqs;
    const u64 total_bytes = 4 << 20;
    for (u64 a = 0; a < total_bytes; a += cfg.burstBytes)
        reqs.push_back({a, false});
    const u64 ps = m.accessBatch(reqs);
    const double gbs = static_cast<double>(total_bytes) / 1e9 /
                       (static_cast<double>(ps) * 1e-12);
    const double peak = cfg.peakBandwidthBytesPerSec() / 1e9;
    EXPECT_GT(gbs, 0.75 * peak); // subtree-style streaming is near-peak
    EXPECT_LE(gbs, peak * 1.01);
}

TEST(DramModel, MoreChannelsReduceBatchLatency)
{
    std::vector<u64> latency;
    for (u32 ch : {1u, 2u, 4u, 8u}) {
        DramModel m(DramConfig::ddr3(ch));
        std::vector<DramRequest> reqs;
        for (u64 a = 0; a < 16384; a += 64)
            reqs.push_back({a, false});
        latency.push_back(m.accessBatch(reqs));
    }
    EXPECT_GT(latency[0], latency[1]);
    EXPECT_GT(latency[1], latency[2]);
    EXPECT_GT(latency[2], latency[3]);
    // Scaling is sub-linear: 8 channels gain less than 8x (Table 2).
    EXPECT_LT(static_cast<double>(latency[0]) / latency[3], 8.0);
    EXPECT_GT(static_cast<double>(latency[0]) / latency[3], 2.0);
}

TEST(DramModel, WritesCostWriteRecovery)
{
    DramModel m(DramConfig::ddr3(1));
    m.accessSingle(0, true);
    const u64 after_write = m.accessSingle(64, false);
    DramModel m2(DramConfig::ddr3(1));
    m2.accessSingle(0, false);
    const u64 after_read = m2.accessSingle(64, false);
    EXPECT_GE(after_write, after_read);
}

TEST(DramModel, StatsCountBytes)
{
    DramModel m(DramConfig::ddr3(2));
    std::vector<DramRequest> reqs;
    for (int i = 0; i < 10; ++i)
        reqs.push_back({static_cast<u64>(i) * 64, i % 2 == 0});
    m.accessBatch(reqs);
    EXPECT_EQ(m.stats().get("bytes"), 640u);
    EXPECT_EQ(m.stats().get("readBursts") + m.stats().get("writeBursts"),
              10u);
}

TEST(DramModel, IdleAdvancesClock)
{
    DramModel m(DramConfig::ddr3(1));
    const u64 t0 = m.now();
    m.idle(5000);
    EXPECT_EQ(m.now(), t0 + 5000);
}

} // namespace
} // namespace froram
