/**
 * @file
 * Obliviousness trace tests for the data-structure layer.
 *
 * The ORAM below already hides WHICH block each access touches (leaves
 * are uniform); what the DS layer must add — and what these tests pin —
 * is that the access COUNT is input-independent:
 *
 *  - every ObliviousMap op costs exactly kAccessesPerOp accesses, per
 *    op, for every op type, hit or miss (asserted op by op);
 *  - two same-length op sequences with different keys, values, op
 *    mixes and hit rates produce identical access counts and leaf
 *    traces that pass the two-sample distribution checks;
 *  - every range query of public width w costs exactly
 *    rangeAccesses(w), whether it matches 0, some, or w entries;
 *  - a join of width w always costs accessesPerQuery(w), matched rows
 *    notwithstanding.
 *
 * Event-for-event trace-length equality is asserted for the Path
 * scheme, where the per-access event count is fixed. Ring's reshuffle
 * schedule is driven by the (secret-independent) random leaf sequence,
 * so for Ring the tests assert equality of access/online-read counts
 * and rely on the distribution checks for the rest.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/oram_system.hpp"
#include "ds/oblivious_index.hpp"
#include "ds/oblivious_join.hpp"
#include "ds/oblivious_map.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

constexpr u32 kValueBytes = 16;

OramSystemConfig
makeConfig(BucketSchemeKind bucket)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 19;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = StorageBackendKind::Flat;
    cfg.bucketScheme = bucket;
    cfg.collectTrace = true;
    return cfg;
}

u64
accesses(const OramSystem& sys)
{
    return sys.frontend().stats().get("accesses");
}

u64
pathReads(const OramSystem& sys)
{
    u64 n = 0;
    for (const auto& e : sys.trace())
        n += e.kind == TraceEvent::Kind::PathRead ? 1 : 0;
    return n;
}

/** 32-bin leaf histogram of the PathRead events in `sys`'s trace. */
Histogram
leafHistogram(OramSystem& sys)
{
    Histogram h(32);
    const u64 leaves = static_cast<UnifiedFrontend&>(sys.frontend())
                           .backend()
                           .params()
                           .numLeaves();
    for (const auto& e : sys.trace())
        if (e.kind == TraceEvent::Kind::PathRead)
            h.add(e.leaf * 32 / leaves);
    return h;
}

class DsObliviousness
    : public ::testing::TestWithParam<BucketSchemeKind> {};

TEST_P(DsObliviousness, MapEveryOpCostsExactlyFourAccesses)
{
    OramSystem sys(SchemeId::PlbCompressed, makeConfig(GetParam()));
    ObliviousMapConfig mcfg;
    mcfg.valueBytes = kValueBytes;
    ObliviousMap map(sys.frontend(), 0, 1024, mcfg);

    Xoshiro256 rng(7);
    std::vector<u8> val(kValueBytes, 0xAB);
    std::vector<u8> got(kValueBytes);
    // Mixed script covering every (op, outcome) cell: put-new,
    // put-update, get-hit, get-miss, erase-hit, erase-miss.
    for (u64 i = 0; i < 400; ++i) {
        const u64 before = accesses(sys);
        switch (i % 6) {
        case 0:
            map.put(rng.below(64), val.data());
            break;
        case 1:
            map.put(i % 64, val.data()); // likely update
            break;
        case 2:
            map.get(rng.below(64), got.data()); // likely hit
            break;
        case 3:
            map.get(1000 + rng.below(64), got.data()); // certain miss
            break;
        case 4:
            map.erase(rng.below(64)); // mixed
            break;
        default:
            map.erase(2000 + rng.below(64)); // certain miss
            break;
        }
        ASSERT_EQ(accesses(sys) - before, ObliviousMap::kAccessesPerOp)
            << "op " << i << " leaked through its access count";
    }

    // getBatch: exactly kAccessesPerOp * n, duplicates included.
    u64 keys[16];
    for (u64 i = 0; i < 16; ++i)
        keys[i] = i % 3 == 0 ? 5 : rng.below(2000);
    std::vector<u8> values(16 * kValueBytes);
    u8 found[16];
    const u64 before = accesses(sys);
    map.getBatch(keys, 16, values.data(), found);
    EXPECT_EQ(accesses(sys) - before,
              u64{ObliviousMap::kAccessesPerOp} * 16);
}

TEST_P(DsObliviousness, MapSequencesAreTraceIndistinguishable)
{
    // Same op COUNT, radically different content: A is a hit-heavy
    // put/get loop over 32 hot keys; B is all-miss gets and erases over
    // disjoint keys with different values. Identical access counts,
    // same online-read counts, and leaf histograms that pass the
    // uniformity + two-sample checks.
    OramSystem sys_a(SchemeId::PlbCompressed, makeConfig(GetParam()));
    OramSystem sys_b(SchemeId::PlbCompressed, makeConfig(GetParam()));
    ObliviousMapConfig mcfg;
    mcfg.valueBytes = kValueBytes;
    ObliviousMap map_a(sys_a.frontend(), 0, 1024, mcfg);
    ObliviousMap map_b(sys_b.frontend(), 0, 1024, mcfg);

    constexpr u64 kOps = 360;
    Xoshiro256 rng(11);
    std::vector<u8> val(kValueBytes);
    std::vector<u8> got(kValueBytes);
    for (u64 i = 0; i < kOps; ++i) {
        for (auto& b : val)
            b = static_cast<u8>(rng.next());
        if (i % 2 == 0)
            map_a.put(rng.below(32), val.data());
        else
            map_a.get(rng.below(32), got.data());
    }
    for (u64 i = 0; i < kOps; ++i) {
        if (i % 2 == 0)
            map_b.get(500000 + rng.below(100000), got.data());
        else
            map_b.erase(700000 + rng.below(100000));
    }

    EXPECT_EQ(accesses(sys_a), accesses(sys_b));
    EXPECT_EQ(accesses(sys_a), kOps * ObliviousMap::kAccessesPerOp);
    EXPECT_EQ(pathReads(sys_a), pathReads(sys_b));
    if (GetParam() == BucketSchemeKind::Path) {
        // Path's per-access event count is fixed, so the full traces
        // must have equal length event for event.
        EXPECT_EQ(sys_a.trace().size(), sys_b.trace().size());
    }

    const Histogram ha = leafHistogram(sys_a);
    const Histogram hb = leafHistogram(sys_b);
    const double crit = chiSquareCritical(31, 0.001);
    EXPECT_LT(ha.chiSquareUniform(), crit);
    EXPECT_LT(hb.chiSquareUniform(), crit);
    EXPECT_LT(ha.chiSquareTwoSample(hb), crit);
    EXPECT_LT(ha.ksDistance(hb), 0.1);
}

TEST_P(DsObliviousness, RangeCostDependsOnlyOnPublicWidth)
{
    // Two identically-loaded indexes; one is queried where every range
    // fills all `width` rows, the other where lower_bound falls past
    // the last key and nothing matches. Equal widths must cost exactly
    // rangeAccesses(width) on both, query by query.
    OramSystem sys_dense(SchemeId::PlbCompressed, makeConfig(GetParam()));
    OramSystem sys_empty(SchemeId::PlbCompressed, makeConfig(GetParam()));
    ObliviousIndexConfig icfg;
    icfg.valueBytes = kValueBytes;
    icfg.deltaCapacity = 16;
    ObliviousIndex dense(sys_dense.frontend(), 0, 96, icfg);
    ObliviousIndex empty(sys_empty.frontend(), 0, 96, icfg);

    std::vector<u64> keys;
    std::vector<u8> vals;
    for (u64 k = 0; k < 160; ++k) {
        keys.push_back(1 + k); // dense: 1..160
        for (u32 b = 0; b < kValueBytes; ++b)
            vals.push_back(static_cast<u8>(k + b));
    }
    dense.bulkLoad(keys.data(), vals.data(), keys.size());
    empty.bulkLoad(keys.data(), vals.data(), keys.size());

    Xoshiro256 rng(13);
    std::vector<u64> rkeys(16);
    std::vector<u8> rvals(16 * kValueBytes);
    const u32 kWidths[] = {1, 4, 16};
    for (u64 q = 0; q < 60; ++q) {
        const u32 width = kWidths[q % 3];
        const u64 lo = 1 + rng.below(140);       // width matches left
        const u64 lo_empty = 500 + rng.below(140); // past every key

        const u64 before_d = accesses(sys_dense);
        const u64 n_dense =
            dense.range(lo, width, rkeys.data(), rvals.data());
        ASSERT_EQ(accesses(sys_dense) - before_d,
                  dense.rangeAccesses(width))
            << "query " << q;

        const u64 before_e = accesses(sys_empty);
        const u64 n_empty =
            empty.range(lo_empty, width, rkeys.data(), rvals.data());
        ASSERT_EQ(accesses(sys_empty) - before_e,
                  empty.rangeAccesses(width))
            << "query " << q;

        // The RESULT depends on the data; the COST does not.
        ASSERT_EQ(n_dense, u64{width}) << "query " << q;
        ASSERT_EQ(n_empty, u64{0}) << "query " << q;
    }

    EXPECT_EQ(accesses(sys_dense), accesses(sys_empty));
    EXPECT_EQ(pathReads(sys_dense), pathReads(sys_empty));
    if (GetParam() == BucketSchemeKind::Path) {
        EXPECT_EQ(sys_dense.trace().size(), sys_empty.trace().size());
    }

    const Histogram hd = leafHistogram(sys_dense);
    const Histogram he = leafHistogram(sys_empty);
    const double crit = chiSquareCritical(31, 0.001);
    EXPECT_LT(hd.chiSquareUniform(), crit);
    EXPECT_LT(he.chiSquareUniform(), crit);
    EXPECT_LT(hd.chiSquareTwoSample(he), crit);
}

TEST_P(DsObliviousness, JoinCostDependsOnlyOnPublicWidth)
{
    // All-match vs zero-match joins of the same width must cost
    // exactly accessesPerQuery(width) either way.
    OramSystem sys(SchemeId::PlbCompressed, makeConfig(GetParam()));
    ObliviousMapConfig mcfg;
    mcfg.valueBytes = kValueBytes;
    ObliviousMap map(sys.frontend(), 0, 1024, mcfg);
    ObliviousIndexConfig icfg;
    icfg.valueBytes = kValueBytes;
    icfg.deltaCapacity = 16;
    ObliviousIndex index(sys.frontend(), 1024, 96, icfg);
    ObliviousHashJoin join(index, map);

    std::vector<u8> val(kValueBytes, 0);
    for (u64 c = 0; c < 40; ++c)
        map.put(100 + c, val.data());
    std::vector<u64> keys;
    std::vector<u8> vals;
    for (u64 o = 0; o < 80; ++o) {
        keys.push_back(1 + o);
        // First half fk's an existing customer, second half dangles.
        const u64 fk = o < 40 ? 100 + o : 999999;
        for (u32 b = 0; b < kValueBytes; ++b)
            vals.push_back(b < 8 ? static_cast<u8>(fk >> (8 * b)) : 0);
    }
    index.bulkLoad(keys.data(), vals.data(), keys.size());

    JoinOutput out;
    constexpr u32 kWidth = 8;
    const u64 per_query = join.accessesPerQuery(kWidth);

    u64 before = accesses(sys);
    const u64 m_all = join.run(1, kWidth, out); // rows 1..8: all match
    ASSERT_EQ(accesses(sys) - before, per_query);
    EXPECT_EQ(m_all, u64{kWidth});
    EXPECT_EQ(out.rows, u64{kWidth});

    before = accesses(sys);
    const u64 m_none = join.run(41, kWidth, out); // rows 41..48: dangle
    ASSERT_EQ(accesses(sys) - before, per_query);
    EXPECT_EQ(m_none, u64{0});
    EXPECT_EQ(out.rows, u64{kWidth});

    before = accesses(sys);
    const u64 m_short = join.run(200, kWidth, out); // no rows at all
    ASSERT_EQ(accesses(sys) - before, per_query);
    EXPECT_EQ(m_short, u64{0});
    EXPECT_EQ(out.rows, u64{0});
}

INSTANTIATE_TEST_SUITE_P(PathAndRing, DsObliviousness,
                         ::testing::Values(BucketSchemeKind::Path,
                                           BucketSchemeKind::Ring),
                         [](const ::testing::TestParamInfo<
                             BucketSchemeKind>& info) {
                             return std::string(toString(info.param));
                         });

} // namespace
} // namespace froram
