/**
 * @file
 * Area-model tests against Table 3 / Section 7.2.3, and the analytic
 * recursion-bandwidth model behind Figure 3.
 */
#include <gtest/gtest.h>

#include "area/area_model.hpp"
#include "core/analysis.hpp"

namespace froram {
namespace {

AreaInputs
paperInputs(u32 channels)
{
    AreaInputs in;
    in.channels = channels;
    return in; // defaults are the Section 7.2.1 hardware configuration
}

TEST(AreaModel, Table3TotalsWithinTolerance)
{
    // Published post-synthesis totals: .316 / .326 / .438 mm^2.
    const double expected[3] = {0.316, 0.326, 0.438};
    const u32 chans[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
        const auto a = AreaModel::synthesis(paperInputs(chans[i]));
        EXPECT_NEAR(a.total(), expected[i], 0.12 * expected[i])
            << "channels=" << chans[i];
    }
}

TEST(AreaModel, Table3SharesWithinTolerance)
{
    // nchannel = 2 column: Frontend 30.0%, PLB 9.7%, PMMAC 11.9%,
    // stash 28.9%, AES 41.1%.
    const auto a = AreaModel::synthesis(paperInputs(2));
    const double tot = a.total();
    EXPECT_NEAR(a.frontend() / tot, 0.300, 0.05);
    EXPECT_NEAR(a.plb / tot, 0.097, 0.03);
    EXPECT_NEAR(a.pmmac / tot, 0.119, 0.03);
    EXPECT_NEAR(a.stash / tot, 0.289, 0.05);
    EXPECT_NEAR(a.aes / tot, 0.411, 0.06);
}

TEST(AreaModel, FrontendShareShrinksWithChannels)
{
    // Table 3's main observation: the Frontend (and PMMAC/PLB within
    // it) amortizes as DRAM bandwidth grows.
    const auto a1 = AreaModel::synthesis(paperInputs(1));
    const auto a4 = AreaModel::synthesis(paperInputs(4));
    EXPECT_GT(a1.frontend() / a1.total(), a4.frontend() / a4.total());
    EXPECT_LT(a1.total(), a4.total());
}

TEST(AreaModel, PmmacCostBounded)
{
    // "PMMAC costs <= 13% of total design area" (abstract).
    for (u32 ch : {1u, 2u, 4u}) {
        const auto a = AreaModel::synthesis(paperInputs(ch));
        EXPECT_LE(a.pmmac / a.total(), 0.135) << ch;
    }
    // Dropping integrity removes the block entirely.
    AreaInputs in = paperInputs(2);
    in.integrity = false;
    EXPECT_EQ(AreaModel::synthesis(in).pmmac, 0.0);
}

TEST(AreaModel, PostLayoutMatchesPaper)
{
    // Section 7.2.2: nchannel = 2 post-layout ~ .47 mm^2.
    const auto a = AreaModel::layout(paperInputs(2));
    EXPECT_NEAR(a.total(), 0.47, 0.05);
}

TEST(AreaModel, NoRecursionPosMapExplodes)
{
    // Section 7.2.3: a 2^20-entry on-chip PosMap (no recursion, 4 KB
    // blocks) costs ~5 mm^2, >10x the whole recursive design.
    AreaInputs in = paperInputs(2);
    in.onChipPosMapBits = (u64{1} << 20) * 20; // 2^20 entries x L=20
    const auto a = AreaModel::synthesis(in);
    EXPECT_NEAR(a.posmap, 5.0, 1.0);
    EXPECT_GT(a.total() / AreaModel::synthesis(paperInputs(2)).total(),
              10.0);
}

TEST(AreaModel, BigPlbCostsAbout29Percent)
{
    // Section 7.2.3: 64 KB PLB adds ~29% to the 1-channel design.
    AreaInputs small = paperInputs(1);
    AreaInputs big = paperInputs(1);
    big.plbDataBits = 64 * 1024 * 8;
    big.plbEntries = 1024;
    const double ratio = AreaModel::synthesis(big).total() /
                         AreaModel::synthesis(small).total();
    EXPECT_NEAR(ratio, 1.29, 0.08);
}

TEST(AreaModel, SramDensityTiersAreMonotone)
{
    EXPECT_LT(AreaModel::sramMm2(1 << 10), AreaModel::sramMm2(1 << 20));
    // Per-bit cost falls with size.
    const double small_per_bit = AreaModel::sramMm2(1 << 15) / (1 << 15);
    const double large_per_bit = AreaModel::sramMm2(1 << 22) / (1 << 22);
    EXPECT_GT(small_per_bit, large_per_bit);
    EXPECT_EQ(AreaModel::sramMm2(0), 0.0);
}

TEST(Fig3Analysis, FourGigabyteZoneMatchesPaper)
{
    // Section 3.2.1: at 4 GB capacity, PosMap ORAMs consume roughly
    // half the bandwidth (39%-56% in the paper; our codec's byte-level
    // headers land in the same zone).
    const auto r64 = analyzeRecursiveBandwidth(u64{4} << 30, 64, 32, 4,
                                               8 * 1024);
    const auto r128 = analyzeRecursiveBandwidth(u64{4} << 30, 128, 32, 4,
                                                8 * 1024);
    EXPECT_GT(r64.posmapFraction(), 0.35);
    EXPECT_LT(r64.posmapFraction(), 0.75);
    EXPECT_GT(r128.posmapFraction(), 0.25);
    // Smaller data blocks => larger PosMap share.
    EXPECT_GT(r64.posmapFraction(), r128.posmapFraction());
}

TEST(Fig3Analysis, FractionGrowsWithCapacity)
{
    double last = 0;
    for (u32 lg = 30; lg <= 40; lg += 2) {
        const auto r = analyzeRecursiveBandwidth(u64{1} << lg, 64, 32, 4,
                                                 8 * 1024);
        EXPECT_GE(r.posmapFraction() + 0.02, last)
            << "capacity 2^" << lg;
        last = r.posmapFraction();
    }
}

TEST(Fig3Analysis, BiggerOnChipPosMapOnlySlightlyDampens)
{
    const auto small = analyzeRecursiveBandwidth(u64{4} << 30, 64, 32, 4,
                                                 8 * 1024);
    const auto big = analyzeRecursiveBandwidth(u64{4} << 30, 64, 32, 4,
                                               256 * 1024);
    EXPECT_LE(big.posmapFraction(), small.posmapFraction());
    EXPECT_GT(big.posmapFraction(), small.posmapFraction() - 0.15);
    EXPECT_LE(big.h, small.h);
}

TEST(Fig3Analysis, TreeByteBreakdownIsConsistent)
{
    const auto r = analyzeRecursiveBandwidth(u64{1} << 32, 64, 32, 4,
                                             8 * 1024);
    u64 sum = 0;
    for (u64 b : r.treeBytes)
        sum += b;
    EXPECT_EQ(sum, r.totalBytes());
    EXPECT_EQ(r.treeBytes.size(), r.h);
    EXPECT_EQ(r.treeBytes[0], r.dataBytes);
}

} // namespace
} // namespace froram
