/**
 * @file
 * Tree layout tests: path enumeration, address uniqueness, subtree
 * packing locality ([26]) and base offsets for multi-tree systems.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "mem/dram_model.hpp"
#include "mem/tree_layout.hpp"

namespace froram {
namespace {

TEST(TreeLayout, PathEnumeratesRootToLeaf)
{
    FlatLayout layout(3, 64);
    const auto p = layout.path(5); // 0b101
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p[0].level, 0u);
    EXPECT_EQ(p[0].index, 0u);
    EXPECT_EQ(p[1].index, 1u);  // 5 >> 2
    EXPECT_EQ(p[2].index, 2u);  // 5 >> 1
    EXPECT_EQ(p[3].index, 5u);
}

TEST(FlatLayout, HeapOrderAddresses)
{
    FlatLayout layout(2, 100);
    EXPECT_EQ(layout.addressOf({0, 0}), 0u);
    EXPECT_EQ(layout.addressOf({1, 0}), 100u);
    EXPECT_EQ(layout.addressOf({1, 1}), 200u);
    EXPECT_EQ(layout.addressOf({2, 3}), 600u);
    EXPECT_EQ(layout.footprintBytes(), 700u);
}

TEST(SubtreeLayout, AddressesAreUniqueAndInBounds)
{
    const u32 levels = 9;
    SubtreeLayout layout(levels, 320, 16384);
    std::set<u64> seen;
    for (u32 l = 0; l <= levels; ++l) {
        for (u64 i = 0; i < (u64{1} << l); ++i) {
            const u64 a = layout.addressOf({l, i});
            EXPECT_TRUE(seen.insert(a).second)
                << "duplicate address at level " << l << " idx " << i;
            EXPECT_LT(a, layout.footprintBytes());
            EXPECT_EQ(a % 320, 0u);
        }
    }
}

TEST(SubtreeLayout, PicksDeepestFittingSubtree)
{
    // 320-byte buckets, 16 KB unit: 2^k-1 buckets * 320 <= 16384
    // => k = 5 (31 buckets, 9920 B); k = 6 would need 20160 B.
    SubtreeLayout layout(20, 320, 16384);
    EXPECT_EQ(layout.subtreeDepth(), 5u);
}

TEST(SubtreeLayout, PathTouchesFewLocalityUnits)
{
    const u32 levels = 19;
    const u64 bucket = 320, unit = 16384;
    SubtreeLayout subtree(levels, bucket, unit);
    FlatLayout flat(levels, bucket);
    auto units_touched = [&](const TreeLayout& lay, u64 leaf) {
        std::set<u64> units;
        for (const auto& c : lay.path(leaf))
            units.insert(lay.addressOf(c) / unit);
        return units.size();
    };
    // Subtree layout: one unit per k levels; flat layout: deep levels
    // scatter across units.
    u64 subtree_total = 0, flat_total = 0;
    for (u64 leaf = 0; leaf < 64; ++leaf) {
        subtree_total += units_touched(subtree, leaf * 7919 % (1 << 19));
        flat_total += units_touched(flat, leaf * 7919 % (1 << 19));
    }
    EXPECT_LT(subtree_total, flat_total);
    // ceil(20 levels / k) subtrees per path; a subtree smaller than the
    // unit may straddle one unit boundary, hence the +2 slack.
    EXPECT_LE(subtree_total / 64,
              (levels + 1 + subtree.subtreeDepth() - 1) /
                      subtree.subtreeDepth() +
                  2);
}

TEST(SubtreeLayout, BaseAddressOffsetsWholeTree)
{
    SubtreeLayout layout(4, 64, 4096);
    const u64 a0 = layout.addressOf({2, 1});
    layout.setBaseAddress(1 << 20);
    EXPECT_EQ(layout.addressOf({2, 1}), a0 + (1 << 20));
}

TEST(SubtreeLayout, RejectsOutOfRangeLevel)
{
    SubtreeLayout layout(4, 64, 4096);
    EXPECT_THROW(layout.addressOf({5, 0}), PanicError);
}

TEST(FlatLayout, PathRunsDefaultIsOneRunPerBucket)
{
    FlatLayout layout(5, 128);
    layout.setBaseAddress(1 << 16);
    std::vector<PathRun> runs(6);
    std::vector<u64> off(6);
    const u32 n = layout.pathRuns(21, runs.data(), off.data());
    ASSERT_EQ(n, 6u);
    for (u32 l = 0; l < n; ++l) {
        EXPECT_EQ(runs[l].firstLevel, l);
        EXPECT_EQ(runs[l].numLevels, 1u);
        EXPECT_EQ(runs[l].bytes, 128u);
        EXPECT_EQ(off[l], 0u);
        EXPECT_EQ(runs[l].addr, layout.addressOf({l, u64{21} >> (5 - l)}));
    }
}

class SubtreePathRuns : public ::testing::TestWithParam<bool> {};

TEST_P(SubtreePathRuns, CoverEveryPathBucketContiguously)
{
    const bool pack_tail = GetParam();
    const u32 levels = 17; // 18 path levels, k=5 => ragged tail group
    const u64 bucket = 320;
    SubtreeLayout layout(levels, bucket, 16384, pack_tail);
    layout.setBaseAddress(1 << 20);

    std::vector<PathRun> runs(levels + 1);
    std::vector<u64> off(levels + 1);
    for (u64 seed = 0; seed < 64; ++seed) {
        const u64 leaf = (seed * 7919) & ((u64{1} << levels) - 1);
        const u32 n = layout.pathRuns(leaf, runs.data(), off.data());
        // One run per depth-k subtree crossed.
        EXPECT_EQ(n, (levels + 1 + layout.subtreeDepth() - 1) /
                         layout.subtreeDepth());
        u32 covered = 0;
        for (u32 i = 0; i < n; ++i) {
            for (u32 r = 0; r < runs[i].numLevels; ++r) {
                const u32 l = runs[i].firstLevel + r;
                // The run-relative offset lands exactly on the bucket's
                // own address, and stays inside the run.
                EXPECT_EQ(runs[i].addr + off[l],
                          layout.addressOf({l, leaf >> (levels - l)}))
                    << "level " << l << " leaf " << leaf;
                EXPECT_LE(off[l] + bucket, runs[i].bytes);
                ++covered;
            }
        }
        EXPECT_EQ(covered, levels + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(PaddedAndPacked, SubtreePathRuns,
                         ::testing::Bool(),
                         [](const auto& info) {
                             return info.param ? std::string("packed")
                                               : std::string("padded");
                         });

TEST(SubtreeLayout, PackedTailFitsBucketCountExactly)
{
    // levels+1 = 18 with k = 5 leaves a 3-deep tail group; packing it
    // must shrink the footprint to exactly one slot per bucket (the
    // padded form pays full-depth subtrees in the tail group).
    const u32 levels = 17;
    const u64 bucket = 320;
    SubtreeLayout padded(levels, bucket, 16384, /*pack_tail=*/false);
    SubtreeLayout packed(levels, bucket, 16384, /*pack_tail=*/true);
    const u64 buckets = (u64{1} << (levels + 1)) - 1;
    EXPECT_EQ(packed.footprintBytes(), buckets * bucket);
    EXPECT_GT(padded.footprintBytes(), packed.footprintBytes());

    // Packed addresses stay unique and in bounds.
    std::set<u64> seen;
    for (u32 l = 0; l <= levels; ++l) {
        for (u64 i = 0; i < (u64{1} << l); i += (l > 10 ? 97 : 1)) {
            const u64 a = packed.addressOf({l, i});
            EXPECT_TRUE(seen.insert(a).second);
            EXPECT_LT(a, packed.footprintBytes());
            EXPECT_EQ(a % bucket, 0u);
        }
    }
}

TEST(SubtreeLayout, SubtreePathStaysInOneDramRowRegion)
{
    // With unit = channels * rowBytes, consecutive path levels inside a
    // subtree should decode to the same DRAM row per channel.
    DramConfig cfg = DramConfig::ddr3(2);
    DramModel m(cfg);
    const u64 unit = u64{cfg.rowBytes} * cfg.channels;
    SubtreeLayout layout(18, 320, unit);
    const u64 leaf = 0x2a5a5;
    u64 row_changes = 0, last_row = ~u64{0};
    for (const auto& c : layout.path(leaf & ((1 << 18) - 1))) {
        const auto d = m.decode(layout.addressOf(c));
        if (d.channel == 0) {
            if (last_row != ~u64{0} && d.row != last_row)
                ++row_changes;
            last_row = d.row;
        }
    }
    // 19 levels / k levels-per-subtree ~= 4 subtrees => few row changes.
    EXPECT_LE(row_changes, 19u / layout.subtreeDepth() + 1);
}

} // namespace
} // namespace froram
