/**
 * @file
 * Integrity tests: PMMAC end-to-end tamper detection (Section 6), the
 * Merkle baseline (hash bandwidth + detection), and the Section 6.4
 * encryption-seed replay attack with its GlobalSeed fix.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "codec_test_util.hpp"
#include "core/oram_system.hpp"
#include "core/unified_frontend.hpp"
#include "integrity/adversary.hpp"
#include "integrity/merkle_tree.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

UnifiedFrontendConfig
pmmacConfig(PosMapFormat::Kind kind = PosMapFormat::Kind::Compressed)
{
    UnifiedFrontendConfig c;
    c.numBlocks = 2048;
    c.blockBytes = 64;
    c.format = kind;
    c.integrity = true;
    c.plb.capacityBytes = 2 * 1024;
    c.onChipTargetBytes = 256;
    c.storage = StorageMode::Encrypted;
    c.rngSeed = 31;
    return c;
}

EncryptedTreeStorage&
storageOf(UnifiedFrontend& fe)
{
    return static_cast<EncryptedTreeStorage&>(fe.backend().storage());
}

/** Touch blocks until an integrity violation fires or the budget ends. */
bool
violationWithin(UnifiedFrontend& fe, u64 accesses, u64 seed = 5)
{
    Xoshiro256 rng(seed);
    try {
        for (u64 i = 0; i < accesses; ++i)
            fe.access(rng.below(2048), i % 4 == 0);
    } catch (const IntegrityViolation&) {
        return true;
    }
    return false;
}

TEST(Pmmac, CleanRunHasNoViolations)
{
    AesCtrCipher cipher;
    UnifiedFrontend fe(pmmacConfig(), &cipher, nullptr);
    EXPECT_FALSE(violationWithin(fe, 600));
    EXPECT_GT(fe.stats().get("macChecks"), 0u);
}

TEST(Pmmac, DetectsLiveSlotBitFlips)
{
    // Property sweep: a bit flip in the MAC-covered payload of ANY live
    // block (data or PosMap) must be detected once that block is
    // consumed. Fresh frontend per trial so state is clean.
    for (u32 trial = 0; trial < 5; ++trial) {
        AesCtrCipher cipher;
        UnifiedFrontend fe(pmmacConfig(), &cipher, nullptr);
        Xoshiro256 rng(trial);
        for (int i = 0; i < 150; ++i)
            fe.access(rng.below(2048), i % 3 == 0);
        fe.drainPlb(); // PosMap blocks become tamperable tree content

        Adversary adv(&storageOf(fe), fe.backend().params(),
                      5000 + trial);
        // Flush the stash into the tree so the flip hits the live copy:
        // a few accesses first, then tamper, then full scan.
        ASSERT_TRUE(adv.flipBitInLiveSlotPayload().has_value());
        bool caught = false;
        try {
            // Full scan touches every data block and hence every PosMap
            // block on the way.
            for (Addr a = 0; a < 2048; ++a)
                fe.access(a, false);
        } catch (const IntegrityViolation&) {
            caught = true;
        }
        EXPECT_TRUE(caught) << "trial " << trial;
    }
}

TEST(Pmmac, DummyAreaFlipsAreHarmless)
{
    // Flips that touch no live block (dummy-slot payloads) must NOT
    // produce spurious violations: PMMAC has no false positives.
    AesCtrCipher cipher;
    UnifiedFrontend fe(pmmacConfig(), &cipher, nullptr);
    Xoshiro256 rng(9);
    for (int i = 0; i < 150; ++i)
        fe.access(rng.below(2048), i % 3 == 0);
    auto& st = storageOf(fe);
    const auto& p = fe.backend().params();
    u32 flips = 0;
    for (u64 id = 0; id < p.numBuckets() && flips < 20; ++id) {
        if (!st.hasImage(id))
            continue;
        const Bucket b = st.readBucket(id);
        for (u32 s = 0; s < p.z && flips < 20; ++s) {
            if (b.slots[s].valid())
                continue;
            const u64 payload_base = 8 + p.z * p.slotHeaderBytes() +
                                     s * p.storedBlockBytes();
            st.flipBit(id, payload_base * 8 + 13);
            ++flips;
        }
    }
    ASSERT_GT(flips, 0u);
    EXPECT_FALSE(violationWithin(fe, 500));
}

TEST(Pmmac, DetectsTargetedDataTamper)
{
    // Deterministic variant: flip a bit in the root bucket (always on
    // every path, rewritten every access => always live soon).
    AesCtrCipher cipher;
    UnifiedFrontend fe(pmmacConfig(), &cipher, nullptr);
    std::vector<u8> d(64, 0xaa);
    fe.access(5, true, &d);
    // Locate the written block: flip bits across the whole bucket image
    // of every written bucket to guarantee the block of interest is hit.
    auto& st = storageOf(fe);
    u32 tampered = 0;
    for (u64 id = 0; id < fe.backend().params().numBuckets() &&
                     tampered < 50;
         ++id) {
        if (st.hasImage(id)) {
            st.flipBit(id, 8 * 8 + 7); // inside the encrypted region
            ++tampered;
        }
    }
    ASSERT_GT(tampered, 0u);
    EXPECT_TRUE(violationWithin(fe, 800));
}

TEST(Pmmac, DetectsReplayOfStaleBucket)
{
    AesCtrCipher cipher;
    UnifiedFrontend fe(pmmacConfig(), &cipher, nullptr);
    Xoshiro256 rng(2);
    for (int i = 0; i < 100; ++i)
        fe.access(rng.below(2048), true);

    // Snapshot the root bucket, let the system evolve, then roll it
    // back: stale (authentic-at-the-time) data must still be rejected
    // because counters have advanced.
    auto& st = storageOf(fe);
    ASSERT_TRUE(st.hasImage(0));
    Adversary adv(&st, fe.backend().params());
    const auto stale = adv.snapshot(0);
    for (int i = 0; i < 100; ++i)
        fe.access(rng.below(2048), true);
    adv.replay(0, stale);
    EXPECT_TRUE(violationWithin(fe, 800));
}

TEST(Pmmac, DetectsBlockSuppression)
{
    // Erasing a bucket makes previously written blocks vanish; PMMAC
    // must flag "absent but counter > 0".
    AesCtrCipher cipher;
    UnifiedFrontend fe(pmmacConfig(), &cipher, nullptr);
    Xoshiro256 rng(3);
    for (int i = 0; i < 150; ++i)
        fe.access(rng.below(2048), true);
    auto& st = storageOf(fe);
    u32 wiped = 0;
    for (u64 id = 0; id < fe.backend().params().numBuckets(); ++id) {
        if (st.hasImage(id)) {
            st.replaceImage(
                id,
                std::vector<u8>(fe.backend().params().bucketPhysBytes(),
                                0));
            ++wiped;
        }
    }
    ASSERT_GT(wiped, 0u);
    EXPECT_TRUE(violationWithin(fe, 600));
}

TEST(Pmmac, FlatCounterSchemeAlsoDetects)
{
    AesCtrCipher cipher;
    UnifiedFrontend fe(pmmacConfig(PosMapFormat::Kind::FlatCounter),
                       &cipher, nullptr);
    Xoshiro256 rng(4);
    for (int i = 0; i < 150; ++i)
        fe.access(rng.below(2048), true);
    Adversary adv(&storageOf(fe), fe.backend().params(), 42);
    ASSERT_TRUE(adv.flipBitInLiveSlotPayload().has_value());
    bool caught = false;
    try {
        for (Addr a = 0; a < 2048; ++a)
            fe.access(a, false);
    } catch (const IntegrityViolation&) {
        caught = true;
    }
    EXPECT_TRUE(caught);
}

TEST(Pmmac, ResumedAdversaryTamperIsDetected)
{
    // The resumed-adversary scenario: the controller checkpoints its
    // trusted state and exits; the data center tampers with the
    // persisted tree while the system is offline; a fresh process
    // resumes from the snapshot. The restored PMMAC counters must catch
    // the tamper exactly as the uninterrupted controller would have.
    const std::string store =
        ::testing::TempDir() + "froram_resumed_adv.oram";
    const std::string snap = store + ".ckpt";
    std::remove(store.c_str());
    std::remove(snap.c_str());

    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 17;
    cfg.blockBytes = 64;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = StorageBackendKind::MmapFile;
    cfg.backendPath = store;
    cfg.onChipTargetBytes = 512;
    cfg.seed = 61;
    const u64 n = cfg.capacityBytes / cfg.blockBytes;
    {
        OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
        Xoshiro256 rng(8);
        for (int i = 0; i < 200; ++i)
            sys.frontend().access(rng.below(n), i % 2 == 0);
        sys.checkpointTo(snap); // trusted-only: the tree stays on disk
    }

    auto sys =
        OramSystem::open(SchemeId::PlbIntegrityCompressed, cfg, snap);
    auto& fe = static_cast<UnifiedFrontend&>(sys->frontend());
    auto& storage =
        static_cast<CodecTreeStorage&>(fe.backend().storage());
    Adversary adv(&storage, fe.backend().params(), 77);
    ASSERT_TRUE(adv.flipBitInLiveSlotPayload().has_value());

    bool caught = false;
    try {
        for (Addr a = 0; a < n; ++a)
            sys->frontend().access(a, false);
    } catch (const IntegrityViolation&) {
        caught = true;
    }
    EXPECT_TRUE(caught);
    std::remove(store.c_str());
    std::remove(snap.c_str());
}

TEST(Pmmac, ResumedCleanRunStaysViolationFree)
{
    // Control for the resumed-adversary scenario: without tampering the
    // restored counters agree with the tree and a full scan verifies.
    const std::string store =
        ::testing::TempDir() + "froram_resumed_clean.oram";
    const std::string snap = store + ".ckpt";
    std::remove(store.c_str());
    std::remove(snap.c_str());

    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 17;
    cfg.blockBytes = 64;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = StorageBackendKind::MmapFile;
    cfg.backendPath = store;
    cfg.onChipTargetBytes = 512;
    cfg.seed = 62;
    const u64 n = cfg.capacityBytes / cfg.blockBytes;
    {
        OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
        Xoshiro256 rng(9);
        for (int i = 0; i < 200; ++i)
            sys.frontend().access(rng.below(n), i % 2 == 0);
        sys.checkpointTo(snap);
    }
    auto sys =
        OramSystem::open(SchemeId::PlbIntegrityCompressed, cfg, snap);
    EXPECT_NO_THROW({
        for (Addr a = 0; a < n; ++a)
            sys->frontend().access(a, false);
    });
    EXPECT_GT(sys->frontend().stats().get("macChecks"), 0u);
    std::remove(store.c_str());
    std::remove(snap.c_str());
}

TEST(EncryptionSeeds, BucketSeedRewindForcesPadReuse)
{
    // Section 6.4: under the per-bucket-seed scheme of [26], rewinding
    // the stored seed makes the controller re-encrypt with an
    // already-used pad; XORing the two ciphertexts cancels the pad.
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    AesCtrCipher cipher;
    BucketCodec codec(p, &cipher, SeedScheme::PerBucket);

    Bucket plain1 = Bucket::empty(p);
    plain1.slots[0].addr = 1;
    plain1.slots[0].leaf = 2;
    plain1.slots[0].data.assign(p.storedBlockBytes(), 0x11);
    Bucket plain2 = plain1;
    plain2.slots[0].data.assign(p.storedBlockBytes(), 0x22);

    std::vector<u8> img1, img2;
    encodeBucket(codec, 7, plain1, {}, img1); // seed s
    // Adversary rewinds the seed: re-encode sees seed s-1 and reuses s.
    auto rewound = img1;
    u64 seed = 0;
    for (int i = 0; i < 8; ++i)
        seed |= static_cast<u64>(rewound[i]) << (8 * i);
    seed -= 1;
    for (int i = 0; i < 8; ++i)
        rewound[i] = static_cast<u8>(seed >> (8 * i));
    encodeBucket(codec, 7, plain2, rewound, img2); // pad reuse!

    // Same pad => ciphertext XOR equals plaintext XOR in the payload
    // region: the adversary learns plaintext relationships.
    const size_t payload0 = 8 + p.z * p.slotHeaderBytes();
    u32 leaking = 0;
    for (size_t i = payload0; i < payload0 + 64; ++i) {
        if ((img1[i] ^ img2[i]) == (0x11 ^ 0x22))
            ++leaking;
    }
    EXPECT_GT(leaking, 32u);
}

TEST(EncryptionSeeds, GlobalSeedNeverReusesPads)
{
    // The GlobalSeed fix: even with a rewound stored seed, re-encryption
    // draws a fresh monotonic seed, so ciphertext XOR looks random.
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    AesCtrCipher cipher;
    BucketCodec codec(p, &cipher, SeedScheme::GlobalCounter);

    Bucket plain1 = Bucket::empty(p);
    plain1.slots[0].addr = 1;
    plain1.slots[0].leaf = 2;
    plain1.slots[0].data.assign(p.storedBlockBytes(), 0x11);
    Bucket plain2 = plain1;
    plain2.slots[0].data.assign(p.storedBlockBytes(), 0x22);

    std::vector<u8> img1, img2;
    encodeBucket(codec, 7, plain1, {}, img1);
    auto rewound = img1; // seed tampering is irrelevant for fresh writes
    encodeBucket(codec, 7, plain2, rewound, img2);
    const size_t payload0 = 8 + p.z * p.slotHeaderBytes();
    u32 leaking = 0;
    for (size_t i = payload0; i < payload0 + 64; ++i) {
        if ((img1[i] ^ img2[i]) == (0x11 ^ 0x22))
            ++leaking;
    }
    EXPECT_LT(leaking, 8u);
}

class MerkleTest : public ::testing::Test {
  protected:
    MerkleTest()
    {
        params_ = OramParams::forCapacity(1 << 16, 64, 4);
        auto storage =
            std::make_unique<EncryptedTreeStorage>(params_, &cipher_);
        storage_ = storage.get();
        u8 key[16] = {9};
        merkle_ = std::make_unique<MerkleTree>(params_, storage_, key);
        BackendConfig bc;
        bc.params = params_;
        merkle_->attach(bc);
        backend_ = std::make_unique<PathOramBackend>(
            bc, std::move(storage),
            std::make_unique<FlatLayout>(params_.levels,
                                         params_.bucketPhysBytes()),
            nullptr);
    }

    OramParams params_;
    AesCtrCipher cipher_;
    EncryptedTreeStorage* storage_;
    std::unique_ptr<MerkleTree> merkle_;
    std::unique_ptr<PathOramBackend> backend_;
    Xoshiro256 rng_{8};
};

TEST_F(MerkleTest, CleanAccessesVerify)
{
    std::vector<u8> d(64, 0x12);
    Leaf l = 0;
    for (int i = 0; i < 50; ++i) {
        const Leaf fresh = rng_.below(params_.numLeaves());
        EXPECT_NO_THROW(
            backend_->access(Op::Write, static_cast<Addr>(i % 7), l,
                             fresh, &d));
        l = fresh;
    }
    EXPECT_GT(merkle_->stats().get("pathVerifies"), 0u);
}

TEST_F(MerkleTest, DetectsAnyBucketTamper)
{
    std::vector<u8> d(64, 0x21);
    Leaf l = 0;
    for (int i = 0; i < 30; ++i) {
        const Leaf fresh = rng_.below(params_.numLeaves());
        backend_->access(Op::Write, static_cast<Addr>(i), l, fresh, &d);
        l = fresh;
    }
    Adversary adv(storage_, params_);
    ASSERT_TRUE(adv.flipRandomBit().has_value());
    // Merkle checks every path bucket, so ANY tamper on any later path
    // is caught (unlike PMMAC, it has no blind spots -- at Z*(L+1)x the
    // hash cost).
    bool caught = false;
    try {
        for (int i = 0; i < 400; ++i) {
            const Leaf fresh = rng_.below(params_.numLeaves());
            backend_->access(Op::Read, 0, l, fresh);
            l = fresh;
        }
    } catch (const IntegrityViolation&) {
        caught = true;
    }
    EXPECT_TRUE(caught);
}

TEST_F(MerkleTest, HashBandwidthMatchesFormula)
{
    // The Section 6.3 comparison: Z*(L+1) blocks hashed per path
    // traversal vs 1 for PMMAC.
    std::vector<u8> d(64, 1);
    backend_->access(Op::Write, 0, 0, 1, &d);
    // One access = verify (L+1 buckets) + update (L+1 buckets).
    const u64 expected_buckets = 2 * (params_.levels + 1);
    EXPECT_EQ(merkle_->stats().get("bucketsHashed"), expected_buckets);
    EXPECT_EQ(merkle_->blocksHashedPerAccess(),
              2 * params_.z * (params_.levels + 1));
}

} // namespace
} // namespace froram
