/**
 * @file
 * Pipelined-batch vs sequential access equivalence.
 *
 * The batched access engine (OramSystem::accessBatch and the prefetch
 * hints the sharded workers issue) must be a pure pipelining of the
 * sequential path: for every backend and every PosMap scheme, the same
 * request sequence must produce bit-identical read values, adversary
 * trace (kinds, tree ids, leaves) and trusted state — the latter pinned
 * by comparing full checkpoints, which cover stash layout/occupancy,
 * PLB, PosMap, RNG and DRAM-model state bit for bit.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "core/oram_system.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

struct Combo {
    SchemeId scheme;
    const char* schemeName;
    StorageBackendKind backend;
    BucketSchemeKind bucket = BucketSchemeKind::Path;
};

std::string
comboName(const ::testing::TestParamInfo<Combo>& info)
{
    std::string name = std::string(info.param.schemeName) + "_" +
                       toString(info.param.backend);
    if (info.param.bucket == BucketSchemeKind::Ring)
        name += "_ring";
    return name;
}

class BatchEquivalence : public ::testing::TestWithParam<Combo> {};

OramSystemConfig
makeConfig(const Combo& combo, const std::string& path)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 20;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = combo.backend;
    cfg.backendPath = path;
    cfg.collectTrace = true;
    // Force real recursion depth so the PLB walk (and the hint's peek
    // path) is exercised, not just the on-chip fast case.
    cfg.onChipTargetBytes = 512;
    cfg.recursiveOnChipTargetBytes = 2048;
    // Phantom: derive the tree depth from the capacity instead of the
    // paper's forced 19 levels (whose 4 GB region would not fit the
    // default mmap file sizing in a unit test).
    cfg.phantomForceLevels = 0;
    cfg.bucketScheme = combo.bucket;
    return cfg;
}

TEST_P(BatchEquivalence, BatchedMatchesSequentialBitForBit)
{
    const Combo combo = GetParam();
    const std::string dir = ::testing::TempDir();
    const std::string path_seq =
        dir + "froram_batch_seq_" + comboName({combo, 0}) + ".bin";
    const std::string path_bat =
        dir + "froram_batch_bat_" + comboName({combo, 0}) + ".bin";
    std::remove(path_seq.c_str());
    std::remove(path_bat.c_str());

    OramSystem seq(combo.scheme, makeConfig(combo, path_seq));
    OramSystem bat(combo.scheme, makeConfig(combo, path_bat));

    // One deterministic request stream, served sequentially on `seq`
    // and through the pipelined batch engine (mixed batch sizes,
    // including 1) on `bat`.
    const u64 kRequests = 160;
    const u64 kWorking = std::min<u64>(
        512, makeConfig(combo, "").capacityBytes /
                 seq.frontend().dataBlockBytes());
    Xoshiro256 rng(2024);
    std::vector<BatchRequest> reqs(kRequests);
    std::vector<std::vector<u8>> payloads(kRequests);
    for (u64 i = 0; i < kRequests; ++i) {
        reqs[i].addr = rng.below(kWorking);
        if (i % 3 == 0) {
            reqs[i].isWrite = true;
            payloads[i].assign(seq.frontend().dataBlockBytes(),
                               static_cast<u8>(rng.next()));
            reqs[i].writeData = &payloads[i];
        }
    }

    std::vector<std::vector<u8>> reads_seq, reads_bat;
    for (u64 i = 0; i < kRequests; ++i) {
        const FrontendResult r = seq.frontend().access(
            reqs[i].addr, reqs[i].isWrite, reqs[i].writeData);
        if (!reqs[i].isWrite)
            reads_seq.push_back(r.data);
    }

    std::vector<FrontendResult> results;
    u64 done = 0;
    const u64 kBatchSizes[] = {1, 8, 32, 5};
    for (u64 bi = 0; done < kRequests; ++bi) {
        const u64 want = kBatchSizes[bi % 4];
        const u64 n = std::min(want, kRequests - done);
        results.resize(n);
        bat.accessBatch(reqs.data() + done, results.data(), n);
        for (u64 i = 0; i < n; ++i) {
            if (!reqs[done + i].isWrite)
                reads_bat.push_back(results[i].data);
        }
        done += n;
    }

    // Read values.
    EXPECT_EQ(reads_seq, reads_bat);

    // Adversary-visible trace: same kinds, tree ids and leaves.
    ASSERT_EQ(seq.trace().size(), bat.trace().size());
    for (u64 i = 0; i < seq.trace().size(); ++i) {
        EXPECT_EQ(static_cast<int>(seq.trace()[i].kind),
                  static_cast<int>(bat.trace()[i].kind)) << i;
        EXPECT_EQ(seq.trace()[i].treeId, bat.trace()[i].treeId) << i;
        EXPECT_EQ(seq.trace()[i].leaf, bat.trace()[i].leaf) << i;
    }

    // Trusted + untrusted state, bit for bit: a Full checkpoint covers
    // stash occupancy AND layout, PLB, on-chip PosMap, RNG, DRAM-model
    // clock and the encrypted data plane. Any divergence the trace
    // missed (e.g. a prefetch hint mutating eviction choices) lands
    // here.
    EXPECT_EQ(seq.checkpoint(CheckpointScope::Full),
              bat.checkpoint(CheckpointScope::Full));

    std::remove(path_seq.c_str());
    std::remove(path_bat.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndBackends, BatchEquivalence,
    ::testing::Values(
        Combo{SchemeId::Plb, "P", StorageBackendKind::Flat},
        Combo{SchemeId::Plb, "P", StorageBackendKind::TimedDram},
        Combo{SchemeId::Plb, "P", StorageBackendKind::MmapFile},
        Combo{SchemeId::PlbCompressed, "PC", StorageBackendKind::Flat},
        Combo{SchemeId::PlbCompressed, "PC",
              StorageBackendKind::TimedDram},
        Combo{SchemeId::PlbCompressed, "PC",
              StorageBackendKind::MmapFile},
        Combo{SchemeId::PlbIntegrity, "PI", StorageBackendKind::Flat},
        Combo{SchemeId::PlbIntegrity, "PI",
              StorageBackendKind::TimedDram},
        Combo{SchemeId::PlbIntegrity, "PI",
              StorageBackendKind::MmapFile},
        Combo{SchemeId::PlbIntegrityCompressed, "PIC",
              StorageBackendKind::Flat},
        Combo{SchemeId::PlbIntegrityCompressed, "PIC",
              StorageBackendKind::TimedDram},
        Combo{SchemeId::PlbIntegrityCompressed, "PIC",
              StorageBackendKind::MmapFile},
        Combo{SchemeId::Recursive, "R", StorageBackendKind::Flat},
        Combo{SchemeId::Recursive, "R", StorageBackendKind::TimedDram},
        Combo{SchemeId::Recursive, "R", StorageBackendKind::MmapFile},
        Combo{SchemeId::Phantom, "Phantom", StorageBackendKind::Flat},
        Combo{SchemeId::Phantom, "Phantom",
              StorageBackendKind::TimedDram},
        Combo{SchemeId::Phantom, "Phantom",
              StorageBackendKind::MmapFile},
        // Ring bucket scheme: the pipelined hint must not perturb the
        // round counter, the evict schedule or per-bucket metadata.
        Combo{SchemeId::PlbCompressed, "PC", StorageBackendKind::Flat,
              BucketSchemeKind::Ring},
        Combo{SchemeId::PlbCompressed, "PC",
              StorageBackendKind::TimedDram, BucketSchemeKind::Ring},
        Combo{SchemeId::PlbIntegrityCompressed, "PIC",
              StorageBackendKind::MmapFile, BucketSchemeKind::Ring},
        Combo{SchemeId::Recursive, "R", StorageBackendKind::Flat,
              BucketSchemeKind::Ring}),
    comboName);

TEST(SubmitSurface, PrefetchOnlyEntriesAreSemanticsFree)
{
    // The unified surface: a submit() span with interleaved
    // prefetchOnly entries must leave results, trace and all trusted
    // state bit-identical to the same real requests submitted alone.
    const Combo combo{SchemeId::PlbCompressed, "PC",
                      StorageBackendKind::Flat, BucketSchemeKind::Ring};
    OramSystem plain(combo.scheme, makeConfig(combo, ""));
    OramSystem hinted(combo.scheme, makeConfig(combo, ""));

    Xoshiro256 rng(5);
    std::vector<AccessRequest> real(96);
    std::vector<std::vector<u8>> payloads(real.size());
    for (u64 i = 0; i < real.size(); ++i) {
        real[i].addr = rng.below(256);
        if (i % 3 == 0) {
            real[i].isWrite = true;
            payloads[i].assign(plain.frontend().dataBlockBytes(),
                               static_cast<u8>(rng.next()));
            real[i].writeData = &payloads[i];
        }
    }
    std::vector<AccessRequest> mixed;
    for (u64 i = 0; i < real.size(); ++i) {
        if (i % 2 == 0) {
            AccessRequest hint;
            hint.addr = real[i].addr;
            hint.prefetchOnly = true;
            mixed.push_back(hint);
        }
        mixed.push_back(real[i]);
    }

    std::vector<AccessResult> r_plain, r_mixed;
    plain.submit(real, r_plain);
    hinted.submit(mixed, r_mixed);

    u64 j = 0;
    for (u64 i = 0; i < mixed.size(); ++i) {
        if (mixed[i].prefetchOnly) {
            EXPECT_TRUE(r_mixed[i].data.empty());
            continue;
        }
        EXPECT_EQ(r_mixed[i].data, r_plain[j].data) << "request " << j;
        EXPECT_EQ(r_mixed[i].cycles, r_plain[j].cycles) << "request " << j;
        ++j;
    }
    EXPECT_EQ(j, r_plain.size());
    EXPECT_EQ(plain.checkpoint(CheckpointScope::Full),
              hinted.checkpoint(CheckpointScope::Full));
}

} // namespace
} // namespace froram
