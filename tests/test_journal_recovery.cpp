/**
 * @file
 * Journaled shard recovery, end to end. The "ShardedJournal" suite
 * (the name keeps it inside the TSan CI leg's `-R 'Sharded'` net)
 * pins the lossless-rollback contract: a forced fault on a journaled
 * shard acks every request — gap requests succeed instead of failing
 * typed — and leaves the shard bit-identical to an uncrashed control;
 * plus the seeded journal-fault soak and the append/sync failure
 * semantics. The "JournalCrash" suite is the kill -9 half: a forked
 * child is SIGKILLed under load and the reopened service must recover
 * every acknowledged request exactly (RPO = 0) and match a control
 * service driven with the surviving request prefix, blob for blob.
 */
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "checkpoint/checkpoint.hpp"
#include "journal/request_journal.hpp"
#include "mem/fault_injecting_backend.hpp"
#include "shard/sharded_service.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::string
freshDir(const std::string& tag)
{
    static int counter = 0;
    return ::testing::TempDir() + "froram_jrec_" +
           std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++);
}

ShardedServiceConfig
journaledConfig(const std::string& dir, u32 shards, u32 workers)
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbCompressed;
    cfg.base.capacityBytes = u64{1} << 18; // 4096 blocks
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = StorageBackendKind::Flat;
    cfg.base.seed = 0x5eed3;
    cfg.numShards = shards;
    cfg.numWorkers = workers;
    cfg.directory = dir;
    cfg.supervision.retry.baseBackoffUs = 1;
    cfg.supervision.retry.maxBackoffUs = 20;
    cfg.supervision.journal.enabled = true;
    cfg.supervision.journal.fsyncEveryRecords = 4;
    return cfg;
}

std::vector<u8>
payloadFor(Addr addr, u64 version, u64 block_bytes)
{
    std::vector<u8> data(block_bytes);
    for (u64 j = 0; j < block_bytes; ++j)
        data[j] = static_cast<u8>(addr * 31 + version * 131 + j);
    return data;
}

/** The `index`-th global address served by shard `shard`. */
Addr
addrOnShard(const ShardedOramService& svc, u32 shard, u32 index = 0)
{
    u32 seen = 0;
    for (Addr a = 0; a < svc.numBlocks(); ++a)
        if (svc.shardOf(a) == shard && seen++ == index)
            return a;
    ADD_FAILURE() << "shard " << shard << " has no address " << index;
    return 0;
}

/**
 * The acceptance test of the journaled mode: a hard storage fault on
 * a journaled shard, mid-batch. Where the unjournaled runtime fails
 * the gap requests typed and discards post-recovery-point writes
 * (test_shard_supervision pins that RPO), the journaled runtime must
 * ack EVERY request with the correct value and leave both shards
 * bit-identical — sealed Full-scope blobs — to a control service that
 * never saw a fault.
 */
TEST(ShardedJournal, ForcedRollbackAcksEverythingBitIdentically)
{
    ShardedServiceConfig cfg =
        journaledConfig(freshDir("lossless"), 2, 2);
    cfg.supervision.retry.maxAttempts = 1;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched, nullptr};
    ShardedOramService svc(cfg);

    ShardedServiceConfig ctl_cfg =
        journaledConfig(freshDir("lossless_ctl"), 2, 2);
    ShardedOramService control(ctl_cfg);

    const u64 bb = cfg.base.blockBytes;
    for (Addr a = 0; a < 32; ++a) {
        const std::vector<u8> data = payloadFor(a, 1, bb);
        svc.access(a, true, &data);
        control.access(a, true, &data);
    }
    // A recovery point mid-stream: replay must cover exactly the
    // suffix past it (and the snapshot job itself must not perturb
    // state — the control never takes one).
    svc.refreshRecoveryPoints();
    svc.drain();

    const Addr v0 = addrOnShard(svc, 0, 0);
    const Addr v1 = addrOnShard(svc, 0, 1);
    const Addr sib = addrOnShard(svc, 1, 0);
    // The write the unjournaled runtime would lose (it is past the
    // recovery point): journaled rollback must preserve it.
    const std::vector<u8> kept = payloadFor(v1, 9, bb);
    svc.access(v1, true, &kept);
    control.access(v1, true, &kept);

    // One-shot hard fault on shard 0's next storage read.
    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    std::vector<ShardRequest> batch;
    batch.push_back({v0, false, {}, 0});
    batch.push_back({v1, false, {}, 0});
    batch.push_back({sib, false, {}, 0});
    auto res = svc.submit(batch).get();
    auto ctl_res = control.submit(std::move(batch)).get();
    ASSERT_EQ(res.size(), 3u);
    for (size_t i = 0; i < res.size(); ++i) {
        EXPECT_EQ(res[i].status, RequestStatus::Ok)
            << "request " << i << ": " << res[i].error;
        EXPECT_EQ(res[i].result.data, ctl_res[i].result.data)
            << "request " << i;
    }
    EXPECT_EQ(res[1].result.data, kept)
        << "the post-recovery-point write must survive the rollback";

    svc.drain();
    control.drain();
    const ShardedOramService::ShardHealthReport rep = svc.shardReport(0);
    EXPECT_EQ(rep.health, ShardHealth::Degraded);
    EXPECT_EQ(rep.recoveries, 1u);
    EXPECT_TRUE(rep.journaled);
    EXPECT_GT(rep.lastReplayDepth, 0u);
    EXPECT_EQ(rep.journalLagRecords, 0u);

    // Bit-identical recovery: both shards' sealed Full-scope blobs
    // equal the control's — the recovered timeline is indistinguishable
    // from one that never faulted.
    for (u32 s = 0; s < 2; ++s)
        EXPECT_EQ(svc.shard(s).checkpoint(CheckpointScope::Full),
                  control.shard(s).checkpoint(CheckpointScope::Full))
            << "shard " << s;
}

TEST(ShardedJournal, SeededJournalFaultSoakStaysLossless)
{
    // The chaos-CI workhorse: random transient Eio across the journal
    // commit I/O (appends and barriers) while requests flow. Every
    // access must come back Ok and correct; the retry layer absorbs
    // everything.
    ShardedServiceConfig cfg = journaledConfig(freshDir("soak"), 2, 2);
    cfg.base.faultSchedule = std::make_shared<FaultSchedule>();
    cfg.base.faultSchedule->setRandomJournalRate(0.05, 0x5eed);
    cfg.supervision.retry.maxAttempts = 10;
    cfg.supervision.journal.fsyncEveryRecords = 2;
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;

    std::map<Addr, std::vector<u8>> reference;
    Xoshiro256 rng(0xab5);
    for (u32 round = 0; round < 40; ++round) {
        std::vector<ShardRequest> batch;
        std::vector<std::vector<u8>> expect;
        for (u32 i = 0; i < 8; ++i) {
            const Addr addr = rng.below(128);
            if (rng.below(2) == 0) {
                std::vector<u8> data = payloadFor(addr, round, bb);
                reference[addr] = data;
                expect.push_back(data);
                batch.push_back({addr, true, std::move(data), 0});
            } else {
                // Expected read value honors earlier writes of the
                // same batch: per-shard FIFO preserves batch order.
                const auto it = reference.find(addr);
                expect.push_back(it != reference.end()
                                     ? it->second
                                     : std::vector<u8>());
                batch.push_back({addr, false, {}, 0});
            }
        }
        auto res = svc.submit(std::move(batch)).get();
        for (size_t i = 0; i < res.size(); ++i) {
            ASSERT_EQ(res[i].status, RequestStatus::Ok)
                << "round " << round << " request " << i << ": "
                << res[i].error;
            if (!expect[i].empty()) {
                EXPECT_EQ(res[i].result.data, expect[i])
                    << "round " << round << " request " << i;
            }
        }
    }
    svc.drain();
    EXPECT_GT(cfg.base.faultSchedule->faultsFired(), 0u)
        << "the soak never exercised the journal fault path";
    u64 retried = 0;
    for (u32 s = 0; s < svc.numShards(); ++s) {
        EXPECT_NE(svc.shardHealth(s), ShardHealth::Quarantined);
        retried += svc.shardReport(s).transientFaults;
    }
    EXPECT_GT(retried, 0u)
        << "absorbed journal faults must surface in shardReport";
}

TEST(ShardedJournal, AppendExhaustionFailsOnlyThatRequest)
{
    ShardedServiceConfig cfg =
        journaledConfig(freshDir("appendfail"), 1, 1);
    cfg.supervision.retry.maxAttempts = 1;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched};
    ShardedOramService svc(cfg);
    const Addr a = addrOnShard(svc, 0);
    const std::vector<u8> data = payloadFor(a, 1, 64);
    svc.access(a, true, &data);
    svc.drain();

    // A persistent append failure is NOT a shard fault: the ORAM state
    // was never touched, so only the un-journaled request fails and
    // nothing rolls back.
    FaultSpec spec;
    spec.op = FaultOp::JournalAppend;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::JournalAppend);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    std::vector<ShardRequest> one;
    one.push_back({a, false, {}, 0});
    auto res = svc.submit(std::move(one)).get();
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].status, RequestStatus::StorageFault);
    EXPECT_NE(res[0].error.find("journal append failed"),
              std::string::npos)
        << res[0].error;
    svc.drain();
    EXPECT_EQ(svc.shardHealth(0), ShardHealth::Degraded);
    EXPECT_EQ(svc.shardReport(0).recoveries, 0u);

    // The journal tail was repaired in place: the next request appends
    // and serves normally.
    EXPECT_EQ(svc.access(a, false).data, data);
}

TEST(ShardedJournal, GroupCommitBarrierFailureRecoversLosslessly)
{
    // The barrier itself fails past the retry budget: flushJournal
    // falls through to the journaled rollback, whose salvage sync then
    // lands (the medium recovered) — so every parked request is STILL
    // acked with its exact result. Nothing is lost on a sync failure.
    ShardedServiceConfig cfg =
        journaledConfig(freshDir("syncfail"), 1, 1);
    cfg.supervision.retry.maxAttempts = 1;
    cfg.supervision.journal.fsyncEveryRecords = 100; // drain-end flush
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched};
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;

    FaultSpec spec;
    spec.op = FaultOp::JournalSync;
    spec.kind = FaultKind::Eio;
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    std::vector<ShardRequest> batch;
    std::vector<std::vector<u8>> expect;
    for (Addr a = 0; a < 4; ++a) {
        std::vector<u8> data = payloadFor(a, 3, bb);
        expect.push_back(data);
        batch.push_back({a, true, std::move(data), 0});
    }
    auto res = svc.submit(std::move(batch)).get();
    ASSERT_EQ(res.size(), 4u);
    for (size_t i = 0; i < res.size(); ++i)
        EXPECT_EQ(res[i].status, RequestStatus::Ok)
            << "request " << i << ": " << res[i].error;
    svc.drain();
    EXPECT_EQ(svc.shardReport(0).recoveries, 1u);
    EXPECT_GE(svc.shardReport(0).lastReplayDepth, 4u);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_EQ(svc.access(a, false).data, expect[a]);
}

TEST(ShardedJournal, DeadlineExpiredBehindRecoveryFailsDeadlineTyped)
{
    // Regression (deadline-before-quarantine ordering): a request
    // whose deadline expired while it sat behind a rollback must fail
    // Deadline — its true cause — not Quarantined.
    ShardedServiceConfig cfg =
        journaledConfig(freshDir("deadline"), 1, 1);
    cfg.supervision.retry.maxAttempts = 1;
    cfg.supervision.maxRecoveries = 0; // first fault is permanent
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules = {sched};
    ShardedOramService svc(cfg);
    const Addr a = addrOnShard(svc, 0);
    const std::vector<u8> data = payloadFor(a, 1, 64);
    svc.access(a, true, &data);
    svc.drain();

    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    // One faulting request, a pile of fillers (so real time passes
    // before the tail request is picked up), then the 1 us deadline.
    std::vector<ShardRequest> batch;
    batch.push_back({a, false, {}, 0});
    for (int i = 0; i < 30; ++i)
        batch.push_back({a, false, {}, 0});
    batch.push_back({a, false, {}, /*deadlineUs=*/1});
    auto res = svc.submit(std::move(batch)).get();
    ASSERT_EQ(res.size(), 32u);
    EXPECT_NE(res[0].status, RequestStatus::Ok);
    EXPECT_EQ(res.back().status, RequestStatus::Deadline)
        << "error: " << res.back().error;
    EXPECT_EQ(svc.shardHealth(0), ShardHealth::Quarantined);
}

/**
 * Regression pin for the seed-register restore bug: reopening a
 * journaled mmap service resumes the backend region at its latest
 * (post-checkpoint) encryption-seed register, then restores a blob
 * from an earlier point. restoreTrustedState must rewind the register
 * to the checkpoint's exact value — keeping the larger resumed value
 * forks the re-encryption stream during replay, and the recovered
 * shard stops being bit-identical to an uninterrupted control (values
 * still read back fine, which is why only a blob comparison sees it).
 */
TEST(ShardedJournal, CleanReopenReplayMatchesUninterruptedControl)
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbCompressed;
    cfg.base.capacityBytes = u64{1} << 16;
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = StorageBackendKind::MmapFile;
    cfg.base.seed = 0x51c1;
    cfg.numShards = 2;
    cfg.numWorkers = 2;
    cfg.directory = freshDir("bisect");
    cfg.supervision.journal.enabled = true;
    cfg.supervision.journal.fsyncEveryRecords = 4;
    const u64 n = cfg.base.capacityBytes / cfg.base.blockBytes;
    const u64 bb = cfg.base.blockBytes;
    auto drive = [&](ShardedOramService& s, u64 from, u64 to) {
        for (u64 g = from; g < to; ++g) {
            const std::vector<u8> d = payloadFor(g % n, g / n + 1, bb);
            s.access(g % n, true, &d);
        }
    };
    {
        ShardedOramService live(cfg);
        drive(live, 0, 40);
        live.checkpoint();
        drive(live, 40, 64); // suffix: replayed at open()
        live.drain();
    }
    auto reopened = ShardedOramService::open(cfg);
    ShardedServiceConfig ctl_cfg = cfg;
    ctl_cfg.directory = freshDir("bisect_ctl");
    ShardedOramService control(ctl_cfg);
    drive(control, 0, 64);
    control.drain();
    reopened->drain();
    for (u32 s = 0; s < 2; ++s)
        EXPECT_EQ(reopened->shard(s).checkpoint(CheckpointScope::Full),
                  control.shard(s).checkpoint(CheckpointScope::Full))
            << "A: replay-suffix reopen diverges, shard " << s;

    // Variant B: checkpoint at the very end — reopen replays nothing.
    ShardedServiceConfig cfg_b = cfg;
    cfg_b.directory = freshDir("bisect_b");
    {
        ShardedOramService live(cfg_b);
        drive(live, 0, 64);
        live.checkpoint();
    }
    auto reopened_b = ShardedOramService::open(cfg_b);
    reopened_b->drain();
    for (u32 s = 0; s < 2; ++s)
        EXPECT_EQ(
            reopened_b->shard(s).checkpoint(CheckpointScope::Full),
            control.shard(s).checkpoint(CheckpointScope::Full))
            << "B: restore-only reopen diverges, shard " << s;

    // Variant C: no reopen at all — live service vs control.
    ShardedServiceConfig cfg_c = cfg;
    cfg_c.directory = freshDir("bisect_c");
    ShardedOramService live_c(cfg_c);
    drive(live_c, 0, 40);
    live_c.checkpoint();
    drive(live_c, 40, 64);
    live_c.drain();
    for (u32 s = 0; s < 2; ++s)
        EXPECT_EQ(live_c.shard(s).checkpoint(CheckpointScope::Full),
                  control.shard(s).checkpoint(CheckpointScope::Full))
            << "C: live checkpointing service diverges, shard " << s;
}

/**
 * The kill -9 half of the acceptance criteria. A forked child drives
 * deterministic write batches through a journaled mmap-backed service,
 * recording each fully-acknowledged batch, checkpointing every 8
 * batches — and is SIGKILLed mid-flight. The parent then proves:
 *
 *  1. every acknowledged request survived (ack count <= journal tip,
 *     append-then-ack made them durable);
 *  2. the reopened service is bit-identical — per-shard sealed Full
 *     blobs — to a control service driven with exactly the surviving
 *     per-shard request prefixes;
 *  3. every written address reads back Ok (zero typed-failed gap
 *     requests) with the exact expected value.
 */
TEST(JournalCrash, SigkillUnderLoadReopensLossless)
{
    const std::string dir = freshDir("sigkill");
    const std::string ack_path = dir + ".acks";
    std::remove(ack_path.c_str());
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbCompressed;
    cfg.base.capacityBytes = u64{1} << 16; // 1024 blocks
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = StorageBackendKind::MmapFile;
    cfg.base.seed = 0x51c1;
    cfg.numShards = 2;
    cfg.numWorkers = 2;
    cfg.directory = dir;
    cfg.supervision.journal.enabled = true;
    cfg.supervision.journal.fsyncEveryRecords = 4;
    const u64 n = cfg.base.capacityBytes / cfg.base.blockBytes;
    const u64 bb = cfg.base.blockBytes;
    constexpr u64 kBatch = 8;

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: deterministic write batches forever; record batch b
        // in the ack file only after its future resolved all-Ok;
        // checkpoint every 8 batches (exercising watermarks + GC).
        try {
            ShardedOramService svc(cfg);
            const int ack =
                ::open(ack_path.c_str(),
                       O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (ack < 0)
                _exit(8);
            for (u64 b = 0;; ++b) {
                std::vector<ShardRequest> batch;
                for (u64 j = 0; j < kBatch; ++j) {
                    const u64 g = b * kBatch + j;
                    const Addr addr = g % n;
                    batch.push_back({addr, true,
                                     payloadFor(addr, g / n + 1, bb),
                                     0});
                }
                auto res = svc.submit(std::move(batch)).get();
                for (const ShardAccessResult& r : res)
                    if (r.status != RequestStatus::Ok)
                        _exit(7);
                u8 rec[8];
                for (int k = 0; k < 8; ++k)
                    rec[k] = static_cast<u8>(b >> (k * 8));
                if (::write(ack, rec, 8) != 8)
                    _exit(6);
                if (b % 8 == 7)
                    svc.checkpoint();
            }
        } catch (const std::exception& e) {
            const int f = ::open((dir + ".err").c_str(),
                                 O_WRONLY | O_CREAT | O_TRUNC, 0644);
            if (f >= 0)
                (void)!::write(f, e.what(), ::strlen(e.what()));
            _exit(9);
        } catch (...) {
            _exit(9);
        }
    }

    // Parent: let the child commit some batches + checkpoints, then
    // kill -9 at an arbitrary instruction.
    ::usleep(600 * 1000);
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child exited on its own (status " << status
        << "); the kill landed after an error";

    if (!ckpt::fileExists(dir + "/MANIFEST"))
        GTEST_SKIP() << "child was killed before the first checkpoint";

    // Acked batches: 0..B inclusive (a torn final ack record is
    // dropped — that batch was not provably acknowledged).
    std::vector<u8> acks;
    {
        const int fd = ::open(ack_path.c_str(), O_RDONLY);
        ASSERT_GE(fd, 0);
        u8 buf[4096];
        ssize_t m = 0;
        while ((m = ::read(fd, buf, sizeof(buf))) > 0)
            acks.insert(acks.end(), buf, buf + m);
        ::close(fd);
    }
    if (acks.size() < 8)
        GTEST_SKIP() << "child was killed before the first ack";
    u64 last_acked = 0;
    for (int k = 0; k < 8; ++k)
        last_acked |= static_cast<u64>(acks[(acks.size() / 8 - 1) * 8 +
                                            static_cast<size_t>(k)])
                      << (k * 8);

    // Per-shard journal tips = exactly the request prefix the reopened
    // service will hold (checkpointed watermark + replayed suffix).
    // Probing them repairs any torn tail, just as open() would.
    u64 tip[2] = {0, 0};
    for (u32 s = 0; s < 2; ++s) {
        RequestJournal j(dir, s, cfg.supervision.journal,
                         cfg.supervision.retry, nullptr,
                         /*reset=*/false);
        tip[s] = j.lastAppended();
    }

    auto svc = ShardedOramService::open(cfg);
    for (u32 s = 0; s < 2; ++s) {
        EXPECT_NE(svc->shardHealth(s), ShardHealth::Quarantined);
        EXPECT_TRUE(svc->shardReport(s).journaled);
    }

    // RPO = 0: every acknowledged request's record is durable.
    u64 acked_per_shard[2] = {0, 0};
    for (u64 g = 0; g < (last_acked + 1) * kBatch; ++g)
        ++acked_per_shard[svc->shardOf(g % n)];
    for (u32 s = 0; s < 2; ++s)
        ASSERT_GE(tip[s], acked_per_shard[s])
            << "shard " << s << ": an acknowledged request's journal "
            << "record did not survive the kill";

    // Control: a fresh service driven with exactly the surviving
    // per-shard request prefixes (the first tip[s] requests of shard
    // s's deterministic stream).
    ShardedServiceConfig ctl_cfg = cfg;
    ctl_cfg.directory = freshDir("sigkill_ctl");
    ShardedOramService control(ctl_cfg);
    u64 applied[2] = {0, 0};
    std::map<Addr, u64> expect_version;
    for (u64 g = 0; applied[0] < tip[0] || applied[1] < tip[1]; ++g) {
        ASSERT_LT(g, u64{1} << 26) << "runaway journal tip";
        const Addr addr = g % n;
        const u32 s = control.shardOf(addr);
        if (applied[s] >= tip[s])
            continue; // this request died with the journal tail
        ++applied[s];
        const std::vector<u8> data = payloadFor(addr, g / n + 1, bb);
        control.access(addr, true, &data);
        expect_version[addr] = g / n + 1;
    }
    control.drain();
    svc->drain();
    for (u32 s = 0; s < 2; ++s)
        EXPECT_EQ(svc->shard(s).checkpoint(CheckpointScope::Full),
                  control.shard(s).checkpoint(CheckpointScope::Full))
            << "shard " << s
            << " is not bit-identical to the uncrashed control";

    // Zero typed-failed gap requests: every written address reads back
    // Ok with the exact surviving version.
    std::vector<ShardRequest> reads;
    std::vector<Addr> read_addrs;
    for (const auto& [addr, version] : expect_version) {
        reads.push_back({addr, false, {}, 0});
        read_addrs.push_back(addr);
        (void)version;
    }
    auto res = svc->submit(std::move(reads)).get();
    ASSERT_EQ(res.size(), read_addrs.size());
    for (size_t i = 0; i < res.size(); ++i) {
        ASSERT_EQ(res[i].status, RequestStatus::Ok)
            << "addr " << read_addrs[i] << ": " << res[i].error;
        EXPECT_EQ(res[i].result.data,
                  payloadFor(read_addrs[i],
                             expect_version[read_addrs[i]], bb))
            << "addr " << read_addrs[i];
    }
}

} // namespace
} // namespace froram
