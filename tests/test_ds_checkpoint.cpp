/**
 * @file
 * Checkpoint round-trip for the data-structure layer: an ObliviousMap +
 * ObliviousIndex running on an OramSystem are checkpointed mid-workload
 * (system snapshot via checkpointTo(), DS trusted residue via
 * saveState()), reopened with OramSystem::open() + restoreState(), and
 * must then replay the rest of the workload bit-identically — values,
 * adversary-visible traces, and final full-system snapshots — against a
 * control twin that never checkpointed.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "core/oram_system.hpp"
#include "ds/oblivious_index.hpp"
#include "ds/oblivious_map.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

constexpr u32 kValueBytes = 16;
constexpr u64 kMapBuckets = 1024;
constexpr Addr kIndexBase = 1024;
constexpr u64 kIndexBlocks = 96;

OramSystemConfig
makeConfig(BucketSchemeKind bucket)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 19;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = StorageBackendKind::Flat;
    cfg.bucketScheme = bucket;
    cfg.collectTrace = true;
    return cfg;
}

ObliviousMapConfig
mapConfig()
{
    ObliviousMapConfig cfg;
    cfg.valueBytes = kValueBytes;
    return cfg;
}

ObliviousIndexConfig
indexConfig()
{
    ObliviousIndexConfig cfg;
    cfg.valueBytes = kValueBytes;
    cfg.deltaCapacity = 16;
    return cfg;
}

/** One DS op's observable outputs, for replay comparison. */
struct OpResult {
    u64 a = 0;
    u8 flag = 0;
    std::vector<u8> bytes;
    std::vector<u64> keys;

    bool operator==(const OpResult& o) const
    {
        return a == o.a && flag == o.flag && bytes == o.bytes
               && keys == o.keys;
    }
};

/** Drive one mixed map/index op; the rng IS the op stream, so two
 *  drivers seeded alike perform identical ops. */
OpResult
step(ObliviousMap& map, ObliviousIndex& index, Xoshiro256& rng)
{
    OpResult out;
    std::vector<u8> val(kValueBytes);
    for (auto& b : val)
        b = static_cast<u8>(rng.next());
    const u64 mkey = rng.below(400);
    const u64 ikey = 1 + rng.below(300);
    switch (rng.below(6)) {
    case 0:
        map.put(mkey, val.data());
        break;
    case 1: {
        out.bytes.resize(kValueBytes);
        out.flag = map.get(mkey, out.bytes.data()) ? 1 : 0;
        if (!out.flag)
            out.bytes.clear();
        break;
    }
    case 2:
        out.flag = map.erase(mkey) ? 1 : 0;
        break;
    case 3:
        index.insert(ikey, val.data());
        break;
    case 4:
        index.erase(ikey);
        break;
    default: {
        const u32 width = 1 + static_cast<u32>(rng.below(8));
        out.keys.resize(width);
        out.bytes.resize(size_t{width} * kValueBytes);
        out.a = index.range(rng.below(320), width, out.keys.data(),
                            out.bytes.data());
        break;
    }
    }
    return out;
}

/** The DS trusted residue, serialized (map then index). */
std::vector<u8>
residueOf(const ObliviousMap& map, const ObliviousIndex& index)
{
    CheckpointWriter w;
    map.saveState(w);
    index.saveState(w);
    return w.bytes();
}

bool
traceEq(const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].kind != b[i].kind || a[i].treeId != b[i].treeId
            || a[i].leaf != b[i].leaf)
            return false;
    return true;
}

class DsCheckpoint : public ::testing::TestWithParam<BucketSchemeKind> {};

TEST_P(DsCheckpoint, ReplayContinuesBitIdenticallyAfterOpen)
{
    const OramSystemConfig cfg = makeConfig(GetParam());
    const std::string snap = ::testing::TempDir() + "ds_ckpt_"
                             + std::string(toString(GetParam())) + ".snap";
    std::remove(snap.c_str());

    // Live system and a control twin, driven with identical op streams.
    OramSystem live(SchemeId::PlbCompressed, cfg);
    OramSystem ctrl(SchemeId::PlbCompressed, cfg);
    ObliviousMap live_map(live.frontend(), 0, kMapBuckets, mapConfig());
    ObliviousMap ctrl_map(ctrl.frontend(), 0, kMapBuckets, mapConfig());
    ObliviousIndex live_ix(live.frontend(), kIndexBase, kIndexBlocks,
                           indexConfig());
    ObliviousIndex ctrl_ix(ctrl.frontend(), kIndexBase, kIndexBlocks,
                           indexConfig());

    Xoshiro256 rng_live(42), rng_ctrl(42);
    for (int i = 0; i < 300; ++i) {
        const OpResult a = step(live_map, live_ix, rng_live);
        const OpResult b = step(ctrl_map, ctrl_ix, rng_ctrl);
        ASSERT_TRUE(a == b) << "pre-checkpoint divergence at op " << i;
    }

    // Snapshot: system state to disk, DS residue to bytes (in a real
    // deployment the residue would ride in the same envelope).
    live.checkpointTo(snap);
    const std::vector<u8> residue = residueOf(live_map, live_ix);

    // Resume in a "fresh process": open the system, rebuild the DS
    // objects over it, and restore their trusted residue.
    auto restored = OramSystem::open(SchemeId::PlbCompressed, cfg, snap);
    ObliviousMap rest_map(restored->frontend(), 0, kMapBuckets,
                          mapConfig());
    ObliviousIndex rest_ix(restored->frontend(), kIndexBase,
                           kIndexBlocks, indexConfig());
    {
        CheckpointReader r(residue.data(), residue.size());
        rest_map.restoreState(r);
        rest_ix.restoreState(r);
    }
    EXPECT_EQ(rest_map.size(), live_map.size());
    EXPECT_EQ(rest_ix.size(), live_ix.size());

    // Replay continues: values AND adversary-visible traces must match
    // the never-interrupted control, op for op.
    ctrl.clearTrace();
    for (int i = 0; i < 200; ++i) {
        const OpResult a = step(rest_map, rest_ix, rng_live);
        const OpResult b = step(ctrl_map, ctrl_ix, rng_ctrl);
        ASSERT_TRUE(a == b) << "post-restore divergence at op " << i;
    }
    EXPECT_TRUE(traceEq(restored->trace(), ctrl.trace()));

    // Strongest form: the full trusted state converged bit for bit.
    EXPECT_EQ(restored->checkpoint(CheckpointScope::Full),
              ctrl.checkpoint(CheckpointScope::Full));
    EXPECT_EQ(residueOf(rest_map, rest_ix),
              residueOf(ctrl_map, ctrl_ix));

    std::remove(snap.c_str());
}

TEST(DsCheckpoint, ResidueGeometryMismatchThrows)
{
    const OramSystemConfig cfg = makeConfig(BucketSchemeKind::Path);
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    ObliviousMap map(sys.frontend(), 0, kMapBuckets, mapConfig());
    ObliviousIndex ix(sys.frontend(), kIndexBase, kIndexBlocks,
                      indexConfig());
    std::vector<u8> v(kValueBytes, 7);
    map.put(1, v.data());
    ix.insert(2, v.data());
    const std::vector<u8> residue = residueOf(map, ix);

    // A map with different geometry must refuse the residue.
    ObliviousMap other(sys.frontend(), 0, kMapBuckets / 2, mapConfig());
    CheckpointReader r1(residue.data(), residue.size());
    EXPECT_THROW(other.restoreState(r1), CheckpointError);

    // An index with a different delta capacity must refuse as well
    // (the rebuild cadence is part of the leakage contract).
    ObliviousIndexConfig icfg = indexConfig();
    icfg.deltaCapacity = 8;
    ObliviousIndex other_ix(sys.frontend(), kIndexBase, kIndexBlocks,
                            icfg);
    CheckpointReader r2(residue.data(), residue.size());
    ObliviousMap same(sys.frontend(), 0, kMapBuckets, mapConfig());
    same.restoreState(r2); // consume the map section
    EXPECT_THROW(other_ix.restoreState(r2), CheckpointError);
}

INSTANTIATE_TEST_SUITE_P(PathAndRing, DsCheckpoint,
                         ::testing::Values(BucketSchemeKind::Path,
                                           BucketSchemeKind::Ring),
                         [](const ::testing::TestParamInfo<
                             BucketSchemeKind>& info) {
                             return std::string(toString(info.param));
                         });

} // namespace
} // namespace froram
