/**
 * @file
 * Allocation accounting for the steady-state access hot path.
 *
 * The whole point of the path-arena + pooled-stash + raw bucket IO design
 * is that a warmed-up PathOramBackend performs ZERO heap allocations per
 * access on an in-RAM backend. This binary replaces the global operator
 * new/delete with counting versions and asserts exactly that, so any
 * future vector-per-bucket regression fails loudly here instead of
 * silently costing throughput.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/oram_system.hpp"
#include "crypto/stream_cipher.hpp"
#include "ds/oblivious_map.hpp"
#include "mem/flat_memory_backend.hpp"
#include "oram/backend.hpp"
#include "oram/tree_storage.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<unsigned long long> g_allocs{0};
}

void*
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void*
operator new(std::size_t size, const std::nothrow_t&) noexcept
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

void*
operator new[](std::size_t size, const std::nothrow_t& tag) noexcept
{
    return ::operator new(size, tag);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

namespace froram {
namespace {

TEST(HotPathAllocations, SteadyStateAccessIsAllocationFree)
{
    OramParams params = OramParams::forCapacity(u64{1} << 18, 64, 4);
    params.stashCapacity = 200;
    params.validate();

    FlatMemoryBackend store;
    AesCtrCipher cipher;

    BackendConfig bc;
    bc.params = params;
    PathOramBackend backend(
        bc,
        makeTreeStorage(StorageMode::Encrypted, params, &cipher,
                        SeedScheme::GlobalCounter, &store),
        /*layout=*/nullptr, &store);

    Xoshiro256 rng(7);
    const u64 blocks = params.numBlocks;
    std::vector<Leaf> posmap(blocks);
    std::vector<u8> payload(params.storedBlockBytes(), 0x5A);
    BackendResult res; // reused across accesses

    // Warm-up: materialize every block (and every chunk, pool slot and
    // scratch buffer on the way).
    for (Addr a = 0; a < blocks; ++a) {
        const Leaf fresh = rng.below(params.numLeaves());
        backend.accessInto(res, Op::Write, a, rng.below(params.numLeaves()),
                           fresh, &payload);
        posmap[a] = fresh;
    }
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(blocks);
        const Leaf fresh = rng.below(params.numLeaves());
        backend.accessInto(res, i % 4 == 0 ? Op::Write : Op::Read, a,
                           posmap[a], fresh,
                           i % 4 == 0 ? &payload : nullptr);
        posmap[a] = fresh;
    }

    // Steady state: every access must run without touching the heap.
    const unsigned long long before =
        g_allocs.load(std::memory_order_relaxed);
    u64 found = 0;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.below(blocks);
        const Leaf fresh = rng.below(params.numLeaves());
        backend.accessInto(res, i % 4 == 0 ? Op::Write : Op::Read, a,
                           posmap[a], fresh,
                           i % 4 == 0 ? &payload : nullptr);
        posmap[a] = fresh;
        found += res.found ? 1 : 0;
    }
    const unsigned long long after =
        g_allocs.load(std::memory_order_relaxed);

    EXPECT_EQ(found, 5000u) << "steady state must not cold-miss";
    EXPECT_EQ(after - before, 0u)
        << "steady-state accesses performed heap allocations";
}

TEST(HotPathAllocations, BatchedSteadyStateIsAllocationFree)
{
    // The batched engine's per-request shape: prefetch the NEXT
    // request's path (issueFetch of the software pipeline), then run
    // the current access through the whole-path gather IO. Warmed up,
    // the prefetch + gather + one-kernel-crypt stages must all run
    // without touching the heap, exactly like the plain access path.
    OramParams params = OramParams::forCapacity(u64{1} << 18, 64, 4);
    params.stashCapacity = 200;
    params.validate();

    FlatMemoryBackend store;
    AesCtrCipher cipher;

    BackendConfig bc;
    bc.params = params;
    PathOramBackend backend(
        bc,
        makeTreeStorage(StorageMode::Encrypted, params, &cipher,
                        SeedScheme::GlobalCounter, &store),
        /*layout=*/nullptr, &store);

    Xoshiro256 rng(11);
    const u64 blocks = params.numBlocks;
    std::vector<Leaf> posmap(blocks);
    std::vector<u8> payload(params.storedBlockBytes(), 0xB4);
    BackendResult res;

    for (Addr a = 0; a < blocks; ++a) {
        const Leaf fresh = rng.below(params.numLeaves());
        backend.accessInto(res, Op::Write, a,
                           rng.below(params.numLeaves()), fresh,
                           &payload);
        posmap[a] = fresh;
    }

    // Pre-draw the batch so the steady-state loop below does nothing
    // but prefetch + access.
    constexpr int kBatch = 32;
    constexpr int kBatches = 100;
    std::vector<Addr> addrs(kBatch * kBatches);
    std::vector<Leaf> fresh(kBatch * kBatches);
    for (auto& a : addrs)
        a = rng.below(blocks);
    for (auto& f : fresh)
        f = rng.below(params.numLeaves());

    // Warm one pipelined batch (materializes any prefetch-side scratch).
    for (int i = 0; i < kBatch; ++i) {
        if (i + 1 < kBatch)
            backend.prefetchPath(posmap[addrs[i + 1]]);
        backend.accessInto(res, Op::Read, addrs[i], posmap[addrs[i]],
                           fresh[i]);
        posmap[addrs[i]] = fresh[i];
    }

    const unsigned long long before =
        g_allocs.load(std::memory_order_relaxed);
    for (int b = 1; b < kBatches; ++b) {
        for (int i = 0; i < kBatch; ++i) {
            const int r = b * kBatch + i;
            if (i + 1 < kBatch)
                backend.prefetchPath(posmap[addrs[r + 1]]);
            backend.accessInto(res, i % 4 == 0 ? Op::Write : Op::Read,
                               addrs[r], posmap[addrs[r]], fresh[r],
                               i % 4 == 0 ? &payload : nullptr);
            posmap[addrs[r]] = fresh[r];
        }
    }
    const unsigned long long after =
        g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "batched steady-state accesses performed heap allocations";
}

TEST(HotPathAllocations, WarmedObliviousMapGetIsAllocationFree)
{
    // Full-stack version of the guarantee: an ObliviousMap::get runs
    // four fixed probes through Frontend::submit -> UnifiedFrontend ->
    // PathOramBackend, and once the map, the frontend's reused request/
    // result vectors and the backend arenas are warm, a lookup touches
    // the heap zero times. This pins the whole chain: the map's
    // pre-sized wave vectors, the frontend's member transform closure
    // (a per-access std::function rebuild would allocate), and the
    // backend pools.
    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 19;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = StorageBackendKind::Flat;
    OramSystem sys(SchemeId::PlbCompressed, cfg);

    ObliviousMapConfig mcfg;
    mcfg.valueBytes = 16;
    ObliviousMap map(sys.frontend(), 0, 1024, mcfg);

    Xoshiro256 rng(13);
    std::vector<u8> val(mcfg.valueBytes, 0xC3);
    std::vector<u8> got(mcfg.valueBytes);
    constexpr u64 kKeys = 64;
    for (u64 k = 0; k < kKeys; ++k)
        map.put(k, val.data());
    // Warm-up lookups (hits and misses) to materialize every payload
    // buffer at its steady-state capacity.
    for (int i = 0; i < 400; ++i)
        map.get(rng.below(2 * kKeys), got.data());

    u64 keys[16];
    std::vector<u8> values(16 * mcfg.valueBytes);
    u8 found[16];
    for (u64 i = 0; i < 16; ++i)
        keys[i] = rng.below(2 * kKeys);
    map.getBatch(keys, 16, values.data(), found);

    const unsigned long long before =
        g_allocs.load(std::memory_order_relaxed);
    u64 hits = 0;
    for (int i = 0; i < 1000; ++i)
        hits += map.get(rng.below(2 * kKeys), got.data()) ? 1 : 0;
    for (u64 i = 0; i < 16; ++i)
        keys[i] = rng.below(2 * kKeys);
    map.getBatch(keys, 16, values.data(), found);
    const unsigned long long after =
        g_allocs.load(std::memory_order_relaxed);

    EXPECT_GT(hits, 0u);
    EXPECT_EQ(after - before, 0u)
        << "warmed ObliviousMap::get performed heap allocations";
}

TEST(HotPathAllocations, AllocatorInstrumentationIsLive)
{
    // Guard the guard: if the counting operator new is not actually
    // linked in, the zero-allocation assertion above proves nothing.
    const unsigned long long before =
        g_allocs.load(std::memory_order_relaxed);
    auto* v = new std::vector<u8>(1024);
    const unsigned long long after =
        g_allocs.load(std::memory_order_relaxed);
    delete v;
    EXPECT_GT(after, before);
}

} // namespace
} // namespace froram
