/**
 * @file
 * Checkpoint subsystem tests: serialization primitives, the sealed
 * envelope, atomic file commits, exact component state round trips
 * (stash, PLB), whole-system restore equivalence for every frontend
 * kind, and the authenticated-restore tamper matrix (every serialized
 * field class flipped and rejected).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include <cstdio>
#include <string>
#include <vector>

#include "stash_test_util.hpp"
#include "checkpoint/checkpoint.hpp"
#include "core/oram_system.hpp"
#include "crypto/prf.hpp"
#include "oram/stash.hpp"
#include "oram/tree_storage.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::string
tempPath(const std::string& tag)
{
    return ::testing::TempDir() + "froram_ckpt_" + tag + ".bin";
}

Mac
testMac(u8 fill = 0x42)
{
    u8 key[16];
    for (auto& b : key)
        b = fill;
    return Mac(key);
}

// ------------------------------------------------------------- primitives

TEST(CheckpointCodec, ScalarsAndSectionsRoundTrip)
{
    CheckpointWriter w;
    w.begin(ckpt::kTagSystem);
    w.putU8(7);
    w.putU32(0xDEADBEEF);
    w.putU64(u64{1} << 60);
    const u8 blob[] = {1, 2, 3};
    w.putBlob(blob, sizeof(blob));
    w.begin(ckpt::kTagRng);
    w.putU64(99);
    w.end();
    w.end();

    const std::vector<u8>& bytes = w.bytes();
    CheckpointReader r(bytes.data(), bytes.size());
    r.enter(ckpt::kTagSystem);
    EXPECT_EQ(r.getU8(), 7);
    EXPECT_EQ(r.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.getU64(), u64{1} << 60);
    EXPECT_EQ(r.getBlob(), std::vector<u8>({1, 2, 3}));
    r.enter(ckpt::kTagRng);
    EXPECT_EQ(r.getU64(), 99u);
    r.exit();
    r.exit();
    r.expectEnd();
}

TEST(CheckpointCodec, RejectsTagMismatchTruncationAndTrailingBytes)
{
    CheckpointWriter w;
    w.begin(ckpt::kTagStash);
    w.putU64(1);
    w.end();
    std::vector<u8> bytes = w.bytes();

    {
        CheckpointReader r(bytes.data(), bytes.size());
        EXPECT_THROW(r.enter(ckpt::kTagPlb), CheckpointError);
    }
    {
        // Truncated mid-section.
        CheckpointReader r(bytes.data(), bytes.size() - 3);
        EXPECT_THROW(r.enter(ckpt::kTagStash), CheckpointError);
    }
    {
        // Section not fully consumed.
        CheckpointReader r(bytes.data(), bytes.size());
        r.enter(ckpt::kTagStash);
        EXPECT_THROW(r.exit(), CheckpointError);
    }
    {
        // Trailing bytes after the last section: the top-level
        // epilogue rejects them.
        bytes.push_back(0);
        CheckpointReader r(bytes.data(), bytes.size());
        r.enter(ckpt::kTagStash);
        r.getU64();
        r.exit();
        EXPECT_THROW(r.expectEnd(), CheckpointError);
    }
}

// --------------------------------------------------------------- envelope

TEST(CheckpointEnvelope, SealUnsealRoundTrip)
{
    const Mac mac = testMac();
    const std::vector<u8> payload = {10, 20, 30, 40, 50};
    const std::vector<u8> blob = ckpt::seal(payload, mac, 0x1234);
    EXPECT_EQ(blob.size(),
              ckpt::kHeaderBytes + payload.size() + ckpt::kTagBytes);
    EXPECT_EQ(ckpt::unseal(blob, mac, 0x1234), payload);
}

TEST(CheckpointEnvelope, RejectsEveryCorruptionClass)
{
    const Mac mac = testMac();
    const std::vector<u8> payload(100, 0xAB);
    const std::vector<u8> blob = ckpt::seal(payload, mac, 7);

    // Wrong key.
    EXPECT_THROW(ckpt::unseal(blob, testMac(0x43), 7), CheckpointError);
    // Wrong configuration fingerprint.
    EXPECT_THROW(ckpt::unseal(blob, mac, 8), CheckpointError);
    // Version flip.
    {
        auto t = blob;
        t[8] ^= 1;
        EXPECT_THROW(ckpt::unseal(t, mac, 7), CheckpointError);
    }
    // Magic flip.
    {
        auto t = blob;
        t[0] ^= 1;
        EXPECT_THROW(ckpt::unseal(t, mac, 7), CheckpointError);
    }
    // Length-prefix flip (torn-write detector).
    {
        auto t = blob;
        t[24] ^= 1;
        EXPECT_THROW(ckpt::unseal(t, mac, 7), CheckpointError);
    }
    // MAC tag flip.
    {
        auto t = blob;
        t.back() ^= 1;
        EXPECT_THROW(ckpt::unseal(t, mac, 7), CheckpointError);
    }
    // Payload flip.
    {
        auto t = blob;
        t[ckpt::kHeaderBytes + 50] ^= 0x80;
        EXPECT_THROW(ckpt::unseal(t, mac, 7), CheckpointError);
    }
    // Truncation to every prefix fails loudly.
    for (u64 len = 0; len < blob.size(); len += 7) {
        const std::vector<u8> t(blob.begin(),
                                blob.begin() + static_cast<long>(len));
        EXPECT_THROW(ckpt::unseal(t, mac, 7), CheckpointError)
            << "prefix " << len;
    }
    // The pristine blob still unseals (the above never mutated it).
    EXPECT_EQ(ckpt::unseal(blob, mac, 7), payload);
}

TEST(CheckpointFile, AtomicWriteReadRoundTrip)
{
    const std::string path = tempPath("atomic");
    std::remove(path.c_str());
    const std::vector<u8> blob(1000, 0x5C);
    ckpt::writeFileAtomic(path, blob);
    EXPECT_EQ(ckpt::readFile(path), blob);
    // The temp file must not linger after a successful commit.
    EXPECT_THROW(ckpt::readFile(path + ".tmp"), CheckpointError);
    // Overwrite commits atomically over the old snapshot.
    const std::vector<u8> blob2(500, 0x11);
    ckpt::writeFileAtomic(path, blob2);
    EXPECT_EQ(ckpt::readFile(path), blob2);
    std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileIsTypedError)
{
    EXPECT_THROW(ckpt::readFile(tempPath("never_written")),
                 CheckpointError);
}

TEST(CheckpointFile, UnwritableTargetIsTypedError)
{
    // A commit into a directory that does not exist must surface as a
    // typed CheckpointError (the open/write/fsync return-code audit),
    // never a silent no-op or an abort — and it must not leave a temp
    // file behind anywhere it *could* write.
    const std::string path =
        tempPath("no_such_dir") + "/sub/snapshot.ckpt";
    const std::vector<u8> blob(64, 0x77);
    EXPECT_THROW(ckpt::writeFileAtomic(path, blob), CheckpointError);
    EXPECT_THROW(ckpt::readFile(path), CheckpointError);
}

// ------------------------------------------------------- component state

TEST(StashCheckpoint, ExactStateRoundTrip)
{
    Stash a(50, 40, 64);
    Xoshiro256 rng(3);
    // Build history: inserts and removes so free-list order and index
    // placement are nontrivial.
    for (u64 i = 1; i <= 40; ++i) {
        std::vector<u8> data(64, static_cast<u8>(i));
        a.insertBytes(i, rng.below(1 << 10), data.data(), data.size());
    }
    for (u64 i = 2; i <= 40; i += 3)
        a.remove(i);

    CheckpointWriter w;
    a.saveState(w);

    Stash b(50, 40, 64);
    CheckpointReader r(w.bytes().data(), w.bytes().size());
    b.restoreState(r);
    r.expectEnd();

    EXPECT_EQ(b.occupancy(), a.occupancy());
    const auto blocks_a = a.blocksSnapshot();
    const auto blocks_b = b.blocksSnapshot();
    ASSERT_EQ(blocks_a.size(), blocks_b.size());
    for (u64 i = 0; i < blocks_a.size(); ++i) {
        // blocksSnapshot walks the index table in slot order: equality
        // element-by-element proves the table layout matches exactly.
        EXPECT_EQ(blocks_a[i].addr, blocks_b[i].addr);
        EXPECT_EQ(blocks_a[i].leaf, blocks_b[i].leaf);
        EXPECT_EQ(blocks_a[i].data, blocks_b[i].data);
    }

    // Eviction — which walks the table and the free list — must make
    // identical choices on both instances.
    const u32 levels = 10, z = 4;
    auto ev_a = evictPathCopy(a, 77, levels, z);
    auto ev_b = evictPathCopy(b, 77, levels, z);
    ASSERT_EQ(ev_a.size(), ev_b.size());
    for (u64 l = 0; l < ev_a.size(); ++l) {
        ASSERT_EQ(ev_a[l].size(), ev_b[l].size()) << "level " << l;
        for (u64 s = 0; s < ev_a[l].size(); ++s)
            EXPECT_EQ(ev_a[l][s].addr, ev_b[l][s].addr);
    }
    EXPECT_EQ(a.occupancy(), b.occupancy());
}

TEST(StashCheckpoint, GeometryMismatchRejected)
{
    Stash a(50, 40, 64);
    CheckpointWriter w;
    a.saveState(w);
    Stash b(51, 40, 64);
    CheckpointReader r(w.bytes().data(), w.bytes().size());
    EXPECT_THROW(b.restoreState(r), CheckpointError);
}

TEST(PlbCheckpoint, ExactStateRoundTrip)
{
    PlbConfig pc;
    pc.capacityBytes = 1024;
    pc.blockBytes = 64;
    pc.ways = 2;
    Plb a(pc);
    PosMapFormat fmt(PosMapFormat::Kind::Compressed, 64);
    for (u64 i = 0; i < 24; ++i) {
        PlbEntry e;
        e.addr = 1000 + i * 3;
        e.leaf = i * 17;
        e.counter = i;
        e.content = fmt.makeFresh();
        e.content.gc = i;
        a.insert(std::move(e));
    }

    CheckpointWriter w;
    a.saveState(w);
    Plb b(pc);
    CheckpointReader r(w.bytes().data(), w.bytes().size());
    b.restoreState(r);
    r.expectEnd();

    auto da = a.drain();
    auto db = b.drain();
    ASSERT_EQ(da.size(), db.size());
    for (u64 i = 0; i < da.size(); ++i) {
        EXPECT_EQ(da[i].addr, db[i].addr);
        EXPECT_EQ(da[i].leaf, db[i].leaf);
        EXPECT_EQ(da[i].counter, db[i].counter);
        EXPECT_EQ(da[i].lastUse, db[i].lastUse);
        EXPECT_EQ(da[i].content.gc, db[i].content.gc);
        EXPECT_EQ(da[i].content.ic, db[i].content.ic);
    }
}

TEST(TreeStorageCheckpoint, EncryptedRamStoreRestoresSeedRegister)
{
    // The RAM-map store must carry its seed register in the snapshot:
    // images travel with it, so a restored instance starting over at
    // seed 1 would re-issue pads those images already consumed.
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    FastCipher cipher;
    EncryptedTreeStorage a(p, &cipher);
    Bucket bucket = Bucket::empty(p);
    bucket.slots[0].addr = 1;
    bucket.slots[0].leaf = 0;
    bucket.slots[0].data.assign(p.storedBlockBytes(), 0x3C);
    for (int i = 0; i < 5; ++i)
        a.writeBucket(5, bucket);

    CheckpointWriter w;
    a.saveTrustedState(w);
    EncryptedTreeStorage b(p, &cipher);
    CheckpointReader r(w.bytes().data(), w.bytes().size());
    b.restoreTrustedState(r);
    r.expectEnd();

    EXPECT_EQ(b.codec()->globalSeed(), a.codec()->globalSeed());
    // A post-restore rewrite draws a fresh seed: the new image's stored
    // seed field moves past every seed the carried images used.
    const std::vector<u8> carried = b.rawImage(5);
    b.writeBucket(5, bucket);
    const std::vector<u8> fresh = b.rawImage(5);
    EXPECT_GT(loadLe(fresh.data(), 8), loadLe(carried.data(), 8));
    EXPECT_NE(fresh, carried);
}

// ------------------------------------------------------------ full system

OramSystemConfig
smallConfig(StorageBackendKind backend = StorageBackendKind::Flat)
{
    OramSystemConfig c;
    c.capacityBytes = 1 << 18;
    c.blockBytes = 64;
    c.storage = StorageMode::Encrypted;
    c.backend = backend;
    c.plbBytes = 4 * 1024;
    c.onChipTargetBytes = 512;
    c.recursiveOnChipTargetBytes = 512;
    c.phantomBlockBytes = 256;
    c.phantomForceLevels = 0;
    c.seed = 0xABCD;
    return c;
}

/** Deterministic mixed read/write workload; returns read payloads. */
std::vector<std::vector<u8>>
drive(OramSystem& sys, u64 accesses, u64 rng_seed,
      std::vector<u64>* cycles = nullptr)
{
    Xoshiro256 rng(rng_seed);
    const u64 n =
        sys.config().capacityBytes / sys.frontend().dataBlockBytes();
    std::vector<std::vector<u8>> reads;
    for (u64 i = 0; i < accesses; ++i) {
        const Addr addr = rng.below(std::min<u64>(n, 512));
        FrontendResult r;
        if (i % 3 == 1) {
            std::vector<u8> data(sys.frontend().dataBlockBytes());
            for (auto& b : data)
                b = static_cast<u8>(rng.next());
            r = sys.frontend().access(addr, true, &data);
        } else {
            r = sys.frontend().access(addr, false);
            reads.push_back(r.data);
        }
        if (cycles != nullptr)
            cycles->push_back(r.cycles);
    }
    return reads;
}

u64
stashOccupancy(OramSystem& sys, SchemeId scheme)
{
    switch (scheme) {
      case SchemeId::Recursive: {
        auto& fe = static_cast<RecursiveFrontend&>(sys.frontend());
        u64 total = 0;
        for (u32 i = 0; i < fe.numTrees(); ++i)
            total += fe.tree(i).stash().occupancy();
        return total;
      }
      case SchemeId::Phantom:
        return static_cast<FlatFrontend&>(sys.frontend())
            .backend()
            .stash()
            .occupancy();
      default:
        return static_cast<UnifiedFrontend&>(sys.frontend())
            .backend()
            .stash()
            .occupancy();
    }
}

struct CkptCase {
    SchemeId scheme;
    BucketSchemeKind bucket;
};

class SystemCheckpoint : public ::testing::TestWithParam<CkptCase> {};

TEST_P(SystemCheckpoint, RestoredSystemContinuesBitIdentically)
{
    const SchemeId scheme = GetParam().scheme;
    OramSystemConfig cfg = smallConfig();
    cfg.bucketScheme = GetParam().bucket;

    OramSystem live(scheme, cfg);
    drive(live, 100, 11);
    const std::vector<u8> blob = live.checkpoint();

    OramSystem restored(scheme, cfg);
    restored.restore(blob);
    EXPECT_EQ(stashOccupancy(live, scheme),
              stashOccupancy(restored, scheme));

    std::vector<u64> cycles_live, cycles_restored;
    const auto reads_live = drive(live, 120, 22, &cycles_live);
    const auto reads_restored = drive(restored, 120, 22, &cycles_restored);
    EXPECT_EQ(reads_live, reads_restored);
    EXPECT_EQ(cycles_live, cycles_restored);
    EXPECT_EQ(stashOccupancy(live, scheme),
              stashOccupancy(restored, scheme));
}

INSTANTIATE_TEST_SUITE_P(
    AllFrontends, SystemCheckpoint,
    ::testing::Values(
        CkptCase{SchemeId::PlbCompressed, BucketSchemeKind::Path},
        CkptCase{SchemeId::PlbIntegrityCompressed,
                 BucketSchemeKind::Path},
        CkptCase{SchemeId::PlbIntegrity, BucketSchemeKind::Path},
        CkptCase{SchemeId::Recursive, BucketSchemeKind::Path},
        CkptCase{SchemeId::Phantom, BucketSchemeKind::Path},
        // Ring carries per-bucket metadata, the round counter and the
        // dummy-shuffle RNG through the kTagScheme section.
        CkptCase{SchemeId::PlbCompressed, BucketSchemeKind::Ring},
        CkptCase{SchemeId::PlbIntegrityCompressed,
                 BucketSchemeKind::Ring},
        CkptCase{SchemeId::Recursive, BucketSchemeKind::Ring},
        CkptCase{SchemeId::Phantom, BucketSchemeKind::Ring}),
    [](const auto& info) {
        std::string name;
        switch (info.param.scheme) {
          case SchemeId::PlbCompressed: name = "PC"; break;
          case SchemeId::PlbIntegrityCompressed: name = "PIC"; break;
          case SchemeId::PlbIntegrity: name = "PI"; break;
          case SchemeId::Recursive: name = "R"; break;
          case SchemeId::Phantom: name = "Phantom"; break;
          default: name = "unknown"; break;
        }
        if (info.param.bucket == BucketSchemeKind::Ring)
            name += "_ring";
        return name;
    });

TEST(SystemCheckpoint, RingSchemeSectionTamperRejected)
{
    // The kTagScheme section (Ring's bucket metadata) sits under the
    // envelope MAC like everything else: a flipped valid-bit must not
    // restore into a scheme that would read a consumed slot as live.
    OramSystemConfig cfg = smallConfig();
    cfg.bucketScheme = BucketSchemeKind::Ring;
    OramSystem live(SchemeId::PlbCompressed, cfg);
    drive(live, 100, 31);
    const std::vector<u8> blob = live.checkpoint();

    // Locate the scheme section by its tag bytes in the payload.
    u8 tag[4];
    storeLe(tag, ckpt::kTagScheme, 4);
    const auto it = std::search(blob.begin() + ckpt::kHeaderBytes,
                                blob.end(), tag, tag + 4);
    ASSERT_NE(it, blob.end()) << "no kTagScheme section in Ring blob";
    std::vector<u8> tampered = blob;
    tampered[static_cast<u64>(it - blob.begin()) + 12] ^= 0x04;

    OramSystem victim(SchemeId::PlbCompressed, cfg);
    EXPECT_THROW(victim.restore(tampered), CheckpointError);
    // The untampered blob still restores.
    victim.restore(blob);
    std::vector<u64> ca, cb;
    drive(live, 60, 32, &ca);
    drive(victim, 60, 32, &cb);
    EXPECT_EQ(ca, cb);
}

TEST(SystemCheckpoint, PathSchemeBlobHasNoSchemeSection)
{
    // Path is stateless: its checkpoint format is byte-compatible with
    // pre-seam snapshots, so no kTagScheme frame may appear.
    OramSystem live(SchemeId::PlbCompressed, smallConfig());
    drive(live, 60, 33);
    const std::vector<u8> blob = live.checkpoint();
    u8 tag[4];
    storeLe(tag, ckpt::kTagScheme, 4);
    EXPECT_EQ(std::search(blob.begin(), blob.end(), tag, tag + 4),
              blob.end());
}

TEST(SystemCheckpoint, MetaStorageModeRoundTrips)
{
    OramSystemConfig cfg = smallConfig();
    cfg.storage = StorageMode::Meta;
    OramSystem live(SchemeId::PlbCompressed, cfg);
    drive(live, 80, 5);
    const auto blob = live.checkpoint();
    OramSystem restored(SchemeId::PlbCompressed, cfg);
    restored.restore(blob);
    std::vector<u64> ca, cb;
    drive(live, 80, 6, &ca);
    drive(restored, 80, 6, &cb);
    EXPECT_EQ(ca, cb);
}

TEST(SystemCheckpoint, TrustedOnlyOnVolatileBackendRejected)
{
    OramSystem sys(SchemeId::PlbCompressed, smallConfig());
    EXPECT_THROW(sys.checkpoint(CheckpointScope::TrustedOnly),
                 CheckpointError);
}

TEST(SystemCheckpoint, PerBucketSeedSchemeForcesFullScope)
{
    const std::string path = tempPath("perbucket");
    std::remove(path.c_str());
    OramSystemConfig cfg = smallConfig(StorageBackendKind::MmapFile);
    cfg.backendPath = path;
    cfg.seedScheme = SeedScheme::PerBucket;
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    drive(sys, 30, 9);
    EXPECT_THROW(sys.checkpoint(CheckpointScope::TrustedOnly),
                 CheckpointError);
    // Auto resolves to Full and succeeds.
    const auto blob = sys.checkpoint();
    OramSystem restored(SchemeId::PlbCompressed, cfg);
    restored.restore(blob);
    std::remove(path.c_str());
}

TEST(SystemCheckpoint, WrongConfigurationRejected)
{
    OramSystem live(SchemeId::PlbCompressed, smallConfig());
    drive(live, 30, 1);
    const auto blob = live.checkpoint();

    // Different capacity: fingerprint mismatch (and MAC still passes,
    // since the seed — hence the MAC key — is shared).
    OramSystemConfig other = smallConfig();
    other.capacityBytes = 1 << 19;
    OramSystem wrong_geo(SchemeId::PlbCompressed, other);
    EXPECT_THROW(wrong_geo.restore(blob), CheckpointError);

    // Different seed: the snapshot MAC key itself differs.
    OramSystemConfig reseeded = smallConfig();
    reseeded.seed = 0x9999;
    OramSystem wrong_key(SchemeId::PlbCompressed, reseeded);
    EXPECT_THROW(wrong_key.restore(blob), CheckpointError);

    // Different scheme under the same config.
    OramSystem wrong_scheme(SchemeId::PlbIntegrityCompressed,
                            smallConfig());
    EXPECT_THROW(wrong_scheme.restore(blob), CheckpointError);
}

TEST(SystemCheckpoint, DivergedMmapRegionRejected)
{
    const std::string path = tempPath("diverged");
    const std::string snap = path + ".ckpt";
    std::remove(path.c_str());
    std::remove(snap.c_str());
    OramSystemConfig cfg = smallConfig(StorageBackendKind::MmapFile);
    cfg.backendPath = path;
    {
        OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
        drive(sys, 60, 2);
        sys.checkpointTo(snap, CheckpointScope::TrustedOnly);
        // The region keeps evolving after the snapshot: the snapshot's
        // integrity counters no longer describe this tree.
        drive(sys, 30, 3);
        sys.storage().sync();
    }
    EXPECT_THROW(
        OramSystem::open(SchemeId::PlbIntegrityCompressed, cfg, snap),
        CheckpointError);
    std::remove(path.c_str());
    std::remove(snap.c_str());
}

TEST(SystemCheckpoint, FailedMidApplyRestorePoisonsTheSystem)
{
    const std::string path = tempPath("poison");
    const std::string snap = path + ".ckpt";
    std::remove(path.c_str());
    std::remove(snap.c_str());
    OramSystemConfig cfg = smallConfig(StorageBackendKind::MmapFile);
    cfg.backendPath = path;

    OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
    drive(sys, 60, 2);
    sys.checkpointTo(snap, CheckpointScope::TrustedOnly);
    drive(sys, 30, 3); // region diverges from the snapshot

    // The restore fails (diverged anchor) after it already overwrote
    // trusted state: the system must refuse further use rather than
    // run snapshot counters against a newer tree.
    EXPECT_THROW(sys.restoreFrom(snap), CheckpointError);
    EXPECT_THROW(sys.frontend(), CheckpointError);
    EXPECT_THROW(sys.checkpoint(), CheckpointError);

    // Failures *before* anything is written leave a system usable.
    OramSystem fresh(SchemeId::PlbIntegrityCompressed, cfg);
    std::vector<u8> junk(100, 0xAA);
    EXPECT_THROW(fresh.restore(junk), CheckpointError);
    drive(fresh, 10, 4); // still fine
    std::remove(path.c_str());
    std::remove(snap.c_str());
}

// ----------------------------------------------------------- tamper matrix

/** Cursor over a snapshot payload mirroring the section framing. */
struct Cursor {
    const std::vector<u8>& p;
    u64 pos = 0;

    u8 u8f() { return p[pos++]; }
    u32
    u32f()
    {
        const u32 v = static_cast<u32>(loadLe(p.data() + pos, 4));
        pos += 4;
        return v;
    }
    u64
    u64f()
    {
        const u64 v = loadLe(p.data() + pos);
        pos += 8;
        return v;
    }
    /** Enter a section; returns its end offset. */
    u64
    enter(u32 tag)
    {
        const u32 t = u32f();
        EXPECT_EQ(t, tag) << "at payload offset " << pos - 4;
        const u64 len = u64f();
        return pos + len;
    }
    void skip(u32 tag) { pos = enter(tag); }
};

TEST(SystemCheckpoint, EveryFlippedFieldClassIsRejected)
{
    const OramSystemConfig cfg = smallConfig();
    OramSystem live(SchemeId::PlbIntegrityCompressed, cfg);
    // Thrash the PLB over the whole address space until an access ends
    // with stash-resident blocks, so the stash-field flip targets a
    // real block (the PLB is trivially nonempty throughout).
    {
        Xoshiro256 rng(77);
        const u64 n = cfg.capacityBytes / cfg.blockBytes;
        for (int i = 0; i < 2000; ++i) {
            live.frontend().access(rng.below(n), i % 3 == 0);
            if (stashOccupancy(live, SchemeId::PlbIntegrityCompressed) >
                0)
                break;
        }
    }
    ASSERT_GT(stashOccupancy(live, SchemeId::PlbIntegrityCompressed), 0u);

    const std::vector<u8> blob = live.checkpoint();
    const std::vector<u8> payload(
        blob.begin() + ckpt::kHeaderBytes,
        blob.end() - static_cast<long>(ckpt::kTagBytes));

    // Walk the payload to the exact offsets of each field class.
    Cursor c{payload};
    c.skip(ckpt::kTagSystem);
    c.skip(ckpt::kTagDataPlane);
    c.enter(ckpt::kTagFrontend);
    EXPECT_EQ(c.u32f(), 1u); // unified frontend
    const u64 posmap_end = c.enter(ckpt::kTagPosMap);
    ASSERT_GT(c.u64f(), 0u);
    const u64 posmap_entry_off = c.pos; // first on-chip PosMap entry
    c.pos = posmap_end;
    c.skip(ckpt::kTagRng);
    const u64 plb_end = c.enter(ckpt::kTagPlb);
    c.u64f(); // sets
    c.u32f(); // ways
    c.u64f(); // clock
    u64 plb_tag_off = 0;
    while (c.pos < plb_end) {
        if (c.u8f() != 0) {
            plb_tag_off = c.pos; // first valid entry's address tag
            break;
        }
    }
    ASSERT_NE(plb_tag_off, 0u) << "no PLB-resident PosMap block";
    c.pos = plb_end;
    c.skip(ckpt::kTagOracle);
    c.enter(ckpt::kTagBackend);
    c.enter(ckpt::kTagStash);
    c.u32f(); // capacity
    c.u32f(); // slack
    const u64 stash_size = c.u64f();
    ASSERT_GT(stash_size, 0u);
    const u64 free_count = c.u64f();
    c.pos += 4 * free_count;
    c.u64f(); // index slot
    c.u32f(); // pool index
    c.u64f(); // addr
    const u64 stash_leaf_off = c.pos; // first stashed block's leaf

    struct FlipCase {
        const char* name;
        u64 blob_off;
    };
    const FlipCase cases[] = {
        {"version", 8},
        {"fingerprint", 16},
        {"lengthPrefix", 24},
        {"posmapEntry", ckpt::kHeaderBytes + posmap_entry_off},
        {"plbTag", ckpt::kHeaderBytes + plb_tag_off},
        {"stashLeaf", ckpt::kHeaderBytes + stash_leaf_off},
        {"macTag", blob.size() - 1},
    };
    for (const FlipCase& f : cases) {
        std::vector<u8> tampered = blob;
        ASSERT_LT(f.blob_off, tampered.size()) << f.name;
        tampered[f.blob_off] ^= 0x01;
        OramSystem victim(SchemeId::PlbIntegrityCompressed, cfg);
        EXPECT_THROW(victim.restore(tampered), CheckpointError)
            << "flipped field: " << f.name;
    }

    // Control: the untampered snapshot restores fine.
    OramSystem control(SchemeId::PlbIntegrityCompressed, cfg);
    control.restore(blob);
}

} // namespace
} // namespace froram
