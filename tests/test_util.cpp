/**
 * @file
 * Unit tests for util/: bit helpers, PRNG, statistics, histograms and the
 * statistical machinery used by the obliviousness tests.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bitops.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace froram {
namespace {

TEST(Bitops, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(u64{1} << 40), 40u);
    EXPECT_EQ(log2Floor((u64{1} << 40) + 5), 40u);
}

TEST(Bitops, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil((u64{1} << 30) + 1), 31u);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(u64{1} << 50));
    EXPECT_FALSE(isPow2((u64{1} << 50) - 1));
}

TEST(Bitops, RoundUp)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_EQ(roundUp(100, 0), 100u);
}

TEST(Bitops, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 64), 0xdeadbeefu);
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(Rng, Deterministic)
{
    Xoshiro256 a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowIsInRange)
{
    Xoshiro256 rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Xoshiro256 rng(11);
    const u64 bins = 16;
    Histogram h(bins);
    for (int i = 0; i < 160000; ++i)
        h.add(rng.below(bins));
    // chi^2 with 15 dof at alpha=0.001 ~ 37.7.
    EXPECT_LT(h.chiSquareUniform(), chiSquareCritical(15, 0.001));
}

TEST(Rng, UniformInUnitInterval)
{
    Xoshiro256 rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Stats, IncGetRatio)
{
    StatSet s("x");
    EXPECT_EQ(s.get("a"), 0u);
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.get("a"), 5u);
    s.set("b", 10);
    EXPECT_DOUBLE_EQ(s.ratio("a", "b"), 0.5);
    EXPECT_DOUBLE_EQ(s.ratio("a", "zero"), 0.0);
}

TEST(Stats, Merge)
{
    StatSet a("a"), b("b");
    a.inc("x", 2);
    b.inc("x", 3);
    b.inc("y", 1);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 1u);
}

TEST(Histogram, ChiSquareUniformDetectsSkew)
{
    Histogram uniform(8), skewed(8);
    Xoshiro256 rng(5);
    for (int i = 0; i < 80000; ++i) {
        uniform.add(rng.below(8));
        skewed.add(rng.chance(0.5) ? 0 : rng.below(8));
    }
    EXPECT_LT(uniform.chiSquareUniform(), chiSquareCritical(7, 0.001));
    EXPECT_GT(skewed.chiSquareUniform(), chiSquareCritical(7, 0.001));
}

TEST(Histogram, TwoSampleTestSeparatesDistributions)
{
    Histogram a(16), b(16), c(16);
    Xoshiro256 rng(6);
    for (int i = 0; i < 50000; ++i) {
        a.add(rng.below(16));
        b.add(rng.below(16));
        c.add(rng.below(8)); // different support
    }
    EXPECT_LT(a.chiSquareTwoSample(b), chiSquareCritical(15, 0.001));
    EXPECT_GT(a.chiSquareTwoSample(c), chiSquareCritical(15, 0.001));
    EXPECT_LT(a.ksDistance(b), 0.02);
    EXPECT_GT(a.ksDistance(c), 0.2);
}

TEST(Histogram, RejectsOutOfRange)
{
    Histogram h(4);
    EXPECT_THROW(h.add(4), PanicError);
}

TEST(NormalQuantile, KnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-6);
    EXPECT_NEAR(normalQuantile(0.975), 1.95996, 1e-3);
    EXPECT_NEAR(normalQuantile(0.999), 3.0902, 1e-2);
}

TEST(ChiSquareCritical, MatchesTables)
{
    // chi2(0.05, 10) = 18.307; chi2(0.001, 15) = 37.697.
    EXPECT_NEAR(chiSquareCritical(10, 0.05), 18.307, 0.5);
    EXPECT_NEAR(chiSquareCritical(15, 0.001), 37.697, 1.2);
}

TEST(TextTable, RendersAlignedAndCsv)
{
    TextTable t({"name", "value"});
    t.newRow();
    t.cell("alpha");
    t.cell(u64{42});
    t.newRow();
    t.cell("b");
    t.cell(3.14159, 2);
    std::ostringstream text, csv;
    t.print(text);
    t.printCsv(csv);
    EXPECT_NE(text.str().find("alpha"), std::string::npos);
    EXPECT_NE(text.str().find("42"), std::string::npos);
    EXPECT_EQ(csv.str(), "name,value\nalpha,42\nb,3.14\n");
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Errors, PanicAndFatalCarryMessages)
{
    try {
        panic("boom ", 42);
        FAIL();
    } catch (const PanicError& e) {
        EXPECT_NE(std::string(e.what()).find("boom 42"),
                  std::string::npos);
    }
    try {
        fatal("bad config: ", "x");
        FAIL();
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("bad config"),
                  std::string::npos);
    }
}

} // namespace
} // namespace froram
