/**
 * @file
 * PosMap machinery tests: recursion geometry, block content formats
 * (leaves / compressed / flat counters), and the PLB cache.
 */
#include <gtest/gtest.h>

#include "core/plb.hpp"
#include "core/posmap_format.hpp"
#include "core/recursion.hpp"

namespace froram {
namespace {

TEST(Recursion, PaperGeometryRx8)
{
    // R_X8 at 4 GB / 64 B blocks: N = 2^26, X = 8, stop at 2^17 entries
    // => H = 4 (Section 7.1.4).
    const auto g =
        RecursionGeometry::compute(u64{1} << 26, 8, u64{1} << 17);
    EXPECT_EQ(g.h, 4u);
    EXPECT_EQ(g.levelBlocks[0], u64{1} << 26);
    EXPECT_EQ(g.levelBlocks[1], u64{1} << 23);
    EXPECT_EQ(g.levelBlocks[2], u64{1} << 20);
    EXPECT_EQ(g.levelBlocks[3], u64{1} << 17);
    EXPECT_EQ(g.onChipEntries, u64{1} << 17);
}

TEST(Recursion, PaperGeometryPcX32)
{
    // PC_X32: X = 32, on-chip <= 2^15 entries => 2^26 -> 2^21 -> 2^16
    // -> 2^11 (H = 4), 2^11-entry on-chip PosMap (Section 7.1.4).
    const auto g =
        RecursionGeometry::compute(u64{1} << 26, 32, u64{1} << 15);
    EXPECT_EQ(g.h, 4u);
    EXPECT_EQ(g.onChipEntries, u64{1} << 11);
}

TEST(Recursion, UnifiedAddressesAreDisjoint)
{
    const auto g = RecursionGeometry::compute(1000, 8, 4);
    // Base offsets partition the unified space.
    for (u32 i = 1; i < g.h; ++i)
        EXPECT_EQ(g.base[i], g.base[i - 1] + g.levelBlocks[i - 1]);
    EXPECT_EQ(g.totalBlocks, g.base[g.h - 1] + g.levelBlocks[g.h - 1]);
    // Unified tree grows by less than a factor X/(X-1).
    EXPECT_LT(g.totalBlocks, 1000 * 8 / 7 + g.h);
}

TEST(Recursion, AddressDerivation)
{
    const auto g = RecursionGeometry::compute(4096, 16, 4);
    // a_i = a_0 / X^i (Section 3.2).
    EXPECT_EQ(g.levelAddr(0, 1234), 1234u);
    EXPECT_EQ(g.levelAddr(1, 1234), 77u);   // 1234/16
    EXPECT_EQ(g.levelAddr(2, 1234), 4u);    // 1234/256
    EXPECT_EQ(g.entryIndex(1, 1234), 1234u % 16);
    EXPECT_EQ(g.entryIndex(2, 1234), 77u % 16);
}

TEST(Recursion, RejectsBadParameters)
{
    EXPECT_THROW(RecursionGeometry::compute(100, 7, 4), FatalError);
    EXPECT_THROW(RecursionGeometry::compute(100, 8, 0), FatalError);
}

TEST(PosMapFormat, FanoutMatchesPaper)
{
    // 512-bit blocks: Leaves -> X=16, FlatCounter -> X=8 (PI_X8),
    // Compressed beta=14 -> X=32 (PC_X32); 1024-bit: X=64 (PC_X64).
    EXPECT_EQ(PosMapFormat(PosMapFormat::Kind::Leaves, 64).x(), 16u);
    EXPECT_EQ(PosMapFormat(PosMapFormat::Kind::FlatCounter, 64).x(), 8u);
    EXPECT_EQ(PosMapFormat(PosMapFormat::Kind::Compressed, 64, 14).x(),
              32u);
    EXPECT_EQ(PosMapFormat(PosMapFormat::Kind::Compressed, 128, 14).x(),
              64u);
    // R_X8's 32-byte PosMap blocks hold 8 leaves.
    EXPECT_EQ(PosMapFormat(PosMapFormat::Kind::Leaves, 32).x(), 8u);
}

TEST(PosMapFormat, SerializedFitsBlock)
{
    for (auto kind : {PosMapFormat::Kind::Leaves,
                      PosMapFormat::Kind::Compressed,
                      PosMapFormat::Kind::FlatCounter}) {
        for (u64 b : {32, 64, 128, 256}) {
            if (kind == PosMapFormat::Kind::Compressed && b == 32)
                continue; // too small for a 64-bit GC + counters
            PosMapFormat f(kind, b);
            EXPECT_LE(f.serializedBytes(), b)
                << "kind " << static_cast<int>(kind) << " B " << b;
        }
    }
}

TEST(PosMapFormat, LeavesRoundTrip)
{
    PosMapFormat f(PosMapFormat::Kind::Leaves, 64);
    PosMapContent c = f.makeFresh();
    EXPECT_TRUE(f.isCold(c, 3));
    c.leaves[3] = 12345;
    c.leaves[15] = 1;
    std::vector<u8> buf(f.serializedBytes());
    f.serialize(c, buf.data());
    const PosMapContent d = f.deserialize(buf.data());
    EXPECT_EQ(d.leaves[3], 12345u);
    EXPECT_EQ(d.leaves[15], 1u);
    EXPECT_EQ(d.leaves[0], PosMapContent::kUninitLeaf);
    EXPECT_FALSE(f.isCold(d, 3));
}

TEST(PosMapFormat, CompressedRoundTripBitPacking)
{
    PosMapFormat f(PosMapFormat::Kind::Compressed, 64, 14);
    ASSERT_EQ(f.x(), 32u);
    PosMapContent c = f.makeFresh();
    c.gc = 0x1122334455667788ULL;
    for (u32 j = 0; j < f.x(); ++j)
        c.ic[j] = static_cast<u16>((j * 1237) & 0x3fff);
    std::vector<u8> buf(f.serializedBytes());
    ASSERT_EQ(buf.size(), 64u); // exactly fills a 512-bit block
    f.serialize(c, buf.data());
    const PosMapContent d = f.deserialize(buf.data());
    EXPECT_EQ(d.gc, c.gc);
    for (u32 j = 0; j < f.x(); ++j)
        EXPECT_EQ(d.ic[j], c.ic[j]) << "ic " << j;
}

TEST(PosMapFormat, FlatCounterRoundTrip)
{
    PosMapFormat f(PosMapFormat::Kind::FlatCounter, 64);
    PosMapContent c = f.makeFresh();
    c.flat[0] = ~u64{0} - 5;
    c.flat[7] = 42;
    std::vector<u8> buf(f.serializedBytes());
    f.serialize(c, buf.data());
    const PosMapContent d = f.deserialize(buf.data());
    EXPECT_EQ(d.flat[0], ~u64{0} - 5);
    EXPECT_EQ(d.flat[7], 42u);
}

TEST(PosMapFormat, CompressedCountersStrictlyIncrease)
{
    // Observation 3: (GC << beta) | IC never repeats across increments
    // and group remaps.
    PosMapFormat f(PosMapFormat::Kind::Compressed, 64, 3); // beta=3
    PosMapContent c = f.makeFresh();
    u64 last = f.currentCounter(c, 0);
    EXPECT_EQ(last, 0u);
    for (int i = 0; i < 40; ++i) {
        if (f.incrementWouldOverflow(c, 0)) {
            f.bumpGroupCounter(c);
            EXPECT_GT(f.currentCounter(c, 0), last);
            last = f.currentCounter(c, 0);
        }
        f.increment(c, 0);
        EXPECT_GT(f.currentCounter(c, 0), last);
        last = f.currentCounter(c, 0);
    }
}

TEST(PosMapFormat, IncrementOverflowGuard)
{
    PosMapFormat f(PosMapFormat::Kind::Compressed, 64, 3);
    PosMapContent c = f.makeFresh();
    for (int i = 0; i < 7; ++i)
        f.increment(c, 1);
    EXPECT_TRUE(f.incrementWouldOverflow(c, 1));
    EXPECT_THROW(f.increment(c, 1), PanicError);
    f.bumpGroupCounter(c);
    EXPECT_EQ(c.ic[1], 0u);
    EXPECT_EQ(c.gc, 1u);
    EXPECT_FALSE(f.incrementWouldOverflow(c, 1));
}

TEST(PosMapFormat, ColdDetection)
{
    PosMapFormat f(PosMapFormat::Kind::FlatCounter, 64);
    PosMapContent c = f.makeFresh();
    EXPECT_TRUE(f.isCold(c, 2));
    f.increment(c, 2);
    EXPECT_FALSE(f.isCold(c, 2));
}

PlbEntry
entry(Addr a)
{
    PlbEntry e;
    e.addr = a;
    e.leaf = a * 10;
    return e;
}

TEST(PlbCache, HitAndMiss)
{
    Plb plb({1024, 64, 1}); // 16 entries, direct-mapped
    EXPECT_EQ(plb.lookup(5), nullptr);
    EXPECT_FALSE(plb.insert(entry(5)).has_value());
    PlbEntry* e = plb.lookup(5);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->leaf, 50u);
    EXPECT_EQ(plb.stats().get("hits"), 1u);
    EXPECT_EQ(plb.stats().get("misses"), 1u);
}

TEST(PlbCache, DirectMappedConflictEvicts)
{
    Plb plb({1024, 64, 1}); // 16 sets
    EXPECT_FALSE(plb.insert(entry(3)).has_value());
    const auto victim = plb.insert(entry(3 + 16)); // same set
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 3u);
    EXPECT_EQ(plb.lookup(3), nullptr);
    EXPECT_NE(plb.lookup(3 + 16), nullptr);
}

TEST(PlbCache, SetAssociativeLru)
{
    Plb plb({512, 64, 2}); // 8 entries, 2-way, 4 sets
    plb.insert(entry(0));
    plb.insert(entry(4)); // same set as 0
    plb.lookup(0);        // make 0 MRU
    const auto victim = plb.insert(entry(8)); // evicts LRU = 4
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 4u);
    EXPECT_TRUE(plb.probe(0));
}

TEST(PlbCache, DoubleInsertPanics)
{
    Plb plb({1024, 64, 1});
    plb.insert(entry(1));
    EXPECT_THROW(plb.insert(entry(1)), PanicError);
}

TEST(PlbCache, FindDoesNotCountStats)
{
    Plb plb({1024, 64, 1});
    plb.insert(entry(2));
    const u64 h = plb.stats().get("hits");
    const u64 m = plb.stats().get("misses");
    EXPECT_NE(plb.find(2), nullptr);
    EXPECT_EQ(plb.find(99), nullptr);
    EXPECT_EQ(plb.stats().get("hits"), h);
    EXPECT_EQ(plb.stats().get("misses"), m);
}

TEST(PlbCache, DrainReturnsAllValidEntries)
{
    Plb plb({1024, 64, 1});
    plb.insert(entry(1));
    plb.insert(entry(2));
    plb.insert(entry(3));
    const auto all = plb.drain();
    EXPECT_EQ(all.size(), 3u);
    EXPECT_EQ(plb.lookup(1), nullptr);
}

TEST(PlbCache, CapacitySizing)
{
    // 8 KB / 64 B = 128 entries (the paper's hardware default).
    Plb plb({8 * 1024, 64, 1});
    EXPECT_EQ(plb.numEntries(), 128u);
    EXPECT_THROW(Plb({32, 64, 1}), FatalError);
    EXPECT_THROW(Plb({1024, 64, 0}), FatalError);
}

} // namespace
} // namespace froram
