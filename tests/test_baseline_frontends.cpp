/**
 * @file
 * Baseline frontend tests: the Recursive ORAM page-table walk (R_X8) and
 * the Phantom-style flat frontend with its CLOCK block buffer.
 */
#include <gtest/gtest.h>

#include <map>

#include "core/flat_frontend.hpp"
#include "core/recursive_frontend.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

RecursiveFrontendConfig
smallRecursive()
{
    RecursiveFrontendConfig c;
    c.numBlocks = 4096;
    c.blockBytes = 64;
    c.posmapBlockBytes = 32;
    c.maxOnChipEntries = 16; // force H = 4: 4096 -> 512 -> 64 -> 8
    c.storage = StorageMode::Encrypted;
    c.rngSeed = 11;
    return c;
}

TEST(RecursiveFrontend, GeometryAndName)
{
    AesCtrCipher cipher;
    RecursiveFrontend fe(smallRecursive(), &cipher, nullptr);
    EXPECT_EQ(fe.name(), "R_X8");
    EXPECT_EQ(fe.numTrees(), 4u);
    EXPECT_EQ(fe.geometry().levelBlocks[1], 512u);
    EXPECT_EQ(fe.geometry().levelBlocks[3], 8u);
}

TEST(RecursiveFrontend, EveryAccessWalksAllTrees)
{
    AesCtrCipher cipher;
    RecursiveFrontend fe(smallRecursive(), &cipher, nullptr);
    const auto r = fe.access(100, false);
    // No PLB: always H backend accesses (the core cost the paper fixes).
    EXPECT_EQ(r.backendAccesses, 4u);
    EXPECT_GT(r.posmapBytes, 0u);
    EXPECT_GT(r.bytesMoved, r.posmapBytes);
    // PosMap trees are smaller, so data bytes dominate per access.
    EXPECT_EQ(r.bytesMoved,
              fe.fullAccessBytes());
}

TEST(RecursiveFrontend, ReadYourWrites)
{
    AesCtrCipher cipher;
    RecursiveFrontend fe(smallRecursive(), &cipher, nullptr);
    std::map<Addr, u32> version;
    Xoshiro256 rng(3);
    auto pattern = [](Addr a, u32 v) {
        std::vector<u8> d(64);
        for (size_t i = 0; i < d.size(); ++i)
            d[i] = static_cast<u8>(a * 13 + v * 3 + i);
        return d;
    };
    for (u32 round = 0; round < 3; ++round) {
        for (int i = 0; i < 300; ++i) {
            const Addr a = rng.below(4096);
            const auto d = pattern(a, round);
            fe.access(a, true, &d);
            version[a] = round;
        }
        for (const auto& [a, v] : version)
            EXPECT_EQ(fe.access(a, false).data, pattern(a, v))
                << "block " << a;
    }
}

TEST(RecursiveFrontend, TraceTagsTreeIds)
{
    std::vector<TraceEvent> trace;
    AesCtrCipher cipher;
    RecursiveFrontend fe(
        smallRecursive(), &cipher, nullptr,
        [&](const TraceEvent& e) { trace.push_back(e); });
    fe.access(0, false);
    // Walk order: ORam3, ORam2, ORam1, ORam0; each is read+write.
    ASSERT_EQ(trace.size(), 8u);
    EXPECT_EQ(trace[0].treeId, 3u);
    EXPECT_EQ(trace[2].treeId, 2u);
    EXPECT_EQ(trace[4].treeId, 1u);
    EXPECT_EQ(trace[6].treeId, 0u);
}

TEST(RecursiveFrontend, OnChipBitsMatchGeometry)
{
    AesCtrCipher cipher;
    RecursiveFrontend fe(smallRecursive(), &cipher, nullptr);
    // 8 entries x leaf width of the top tree.
    EXPECT_EQ(fe.onChipPosMapBits() % 8, 0u);
    EXPECT_LE(fe.onChipPosMapBits(), 8u * 32);
}

FlatFrontendConfig
smallFlat(u64 buffer_bytes)
{
    FlatFrontendConfig c;
    c.numBlocks = 256;
    c.blockBytes = 256;
    c.z = 4;
    c.forceLevels = 0;
    c.blockBufferBytes = buffer_bytes;
    c.storage = StorageMode::Encrypted;
    c.rngSeed = 21;
    return c;
}

TEST(FlatFrontend, ReadYourWritesNoBuffer)
{
    AesCtrCipher cipher;
    FlatFrontend fe(smallFlat(0), &cipher, nullptr);
    std::vector<u8> d(256, 0x3c);
    fe.access(9, true, &d);
    const auto r = fe.access(9, false);
    EXPECT_EQ(r.data, d);
    EXPECT_EQ(fe.stats().get("accesses"), 2u);
}

TEST(FlatFrontend, BufferHitsAvoidOramAccesses)
{
    AesCtrCipher cipher;
    FlatFrontend fe(smallFlat(4 * 256), &cipher, nullptr); // 4 slots
    std::vector<u8> d(256, 0x42);
    fe.access(1, true, &d);
    const u64 b0 = fe.stats().get("backendAccesses");
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fe.access(1, false).data, d);
    EXPECT_EQ(fe.stats().get("backendAccesses"), b0); // all buffer hits
    EXPECT_EQ(fe.stats().get("bufferHits"), 10u);
}

TEST(FlatFrontend, ClockEvictionWritesBackDirtyBlocks)
{
    AesCtrCipher cipher;
    FlatFrontend fe(smallFlat(2 * 256), &cipher, nullptr); // 2 slots
    std::vector<u8> d1(256, 1), d2(256, 2), d3(256, 3);
    fe.access(1, true, &d1);
    fe.access(2, true, &d2);
    fe.access(3, true, &d3); // evicts a dirty victim -> ORAM write
    EXPECT_GT(fe.stats().get("bufferWritebacks"), 0u);
    // All three blocks still readable with correct data.
    EXPECT_EQ(fe.access(1, false).data, d1);
    EXPECT_EQ(fe.access(2, false).data, d2);
    EXPECT_EQ(fe.access(3, false).data, d3);
}

TEST(FlatFrontend, PhantomParameterization)
{
    // Section 7.1.6: N = 2^20 4 KB blocks, L = 19 forced, ~2.5 MB
    // on-chip PosMap.
    FlatFrontendConfig c;
    c.numBlocks = u64{1} << 20;
    c.blockBytes = 4096;
    c.forceLevels = 19;
    c.storage = StorageMode::Null;
    FlatFrontend fe(c, nullptr, nullptr);
    EXPECT_EQ(fe.params().levels, 19u);
    const double mb =
        static_cast<double>(fe.onChipPosMapBits()) / 8 / 1024 / 1024;
    EXPECT_NEAR(mb, 2.5, 0.3);
    // One access moves ~2 * 20 * bucket bytes; with 4 KB blocks this is
    // hundreds of times the 64 B-block path (the Figure 9 intuition).
    const auto r = fe.access(0, false);
    EXPECT_GT(r.bytesMoved, 500u * 1024);
}

} // namespace
} // namespace froram
