/**
 * @file
 * Path ORAM Backend tests: memory consistency under random access
 * patterns, the Path ORAM invariant (a block is on its path or in the
 * stash), readrmv/append semantics, stash behavior and DRAM coupling.
 * Geometry is swept with TEST_P.
 */
#include <gtest/gtest.h>

#include <map>

#include "mem/timed_dram_backend.hpp"
#include "oram/backend.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

struct Geometry {
    u64 numBlocks;
    u64 blockBytes;
    u32 z;
};

class BackendTest : public ::testing::TestWithParam<Geometry> {
  protected:
    void
    SetUp() override
    {
        const Geometry g = GetParam();
        params_ = OramParams::forCapacity(g.numBlocks * g.blockBytes,
                                          g.blockBytes, g.z);
        BackendConfig bc;
        bc.params = params_;
        backend_ = std::make_unique<PathOramBackend>(
            bc,
            std::make_unique<EncryptedTreeStorage>(params_, &cipher_),
            std::make_unique<FlatLayout>(params_.levels,
                                         params_.bucketPhysBytes()),
            nullptr);
    }

    Leaf randLeaf() { return rng_.below(params_.numLeaves()); }

    std::vector<u8>
    pattern(Addr a, u32 version)
    {
        std::vector<u8> d(params_.blockBytes);
        for (size_t i = 0; i < d.size(); ++i)
            d[i] = static_cast<u8>(a * 131 + version * 17 + i);
        return d;
    }

    OramParams params_;
    AesCtrCipher cipher_;
    std::unique_ptr<PathOramBackend> backend_;
    Xoshiro256 rng_{123};
};

TEST_P(BackendTest, ReadYourWrites)
{
    // Functional model: leaf bookkeeping lives here (stand-in for the
    // Frontend), data must round-trip through path reads/evictions.
    std::map<Addr, Leaf> posmap;
    std::map<Addr, u32> version;
    const u64 n = std::min<u64>(params_.numBlocks, 64);

    for (int round = 0; round < 4; ++round) {
        for (Addr a = 0; a < n; ++a) {
            const Leaf use =
                posmap.count(a) ? posmap[a] : randLeaf();
            const Leaf fresh = randLeaf();
            posmap[a] = fresh;
            const auto data = pattern(a, round);
            backend_->access(Op::Write, a, use, fresh, &data);
            version[a] = round;
        }
        // Random-order readback.
        for (Addr a = 0; a < n; ++a) {
            const Addr target = (a * 31 + 7) % n;
            const Leaf use = posmap[target];
            const Leaf fresh = randLeaf();
            posmap[target] = fresh;
            const auto r =
                backend_->access(Op::Read, target, use, fresh);
            ASSERT_TRUE(r.found) << "block " << target << " lost";
            EXPECT_EQ(r.block.data, pattern(target, version[target]))
                << "stale data for block " << target;
        }
    }
}

TEST_P(BackendTest, ColdReadReturnsZeros)
{
    const Leaf use = randLeaf(), fresh = randLeaf();
    const auto r = backend_->access(Op::Read, 1, use, fresh);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.block.data,
              std::vector<u8>(params_.storedBlockBytes(), 0));
    EXPECT_EQ(backend_->stats().get("coldMisses"), 1u);
}

TEST_P(BackendTest, ReadRmvRemovesAndAppendRestores)
{
    std::map<Addr, Leaf> posmap;
    const auto data = pattern(5, 1);
    Leaf l = randLeaf(), l2 = randLeaf();
    backend_->access(Op::Write, 5, l, l2, &data);
    posmap[5] = l2;

    // readrmv: block leaves the ORAM entirely.
    Leaf l3 = randLeaf();
    auto r = backend_->access(Op::ReadRmv, 5, posmap[5], kNoLeaf);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.block.data, data);
    EXPECT_FALSE(backend_->stash().contains(5));
    EXPECT_FALSE(backend_->locateInTree(5).has_value());

    // append puts it back (with a fresh leaf) without a tree access.
    const u64 accesses_before = backend_->stats().get("accesses");
    Block blk = r.block;
    blk.leaf = l3;
    backend_->append(std::move(blk));
    EXPECT_EQ(backend_->stats().get("accesses"), accesses_before);
    posmap[5] = l3;

    // The block is readable again.
    Leaf l4 = randLeaf();
    r = backend_->access(Op::Read, 5, posmap[5], l4);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.block.data, data);
}

TEST_P(BackendTest, PathInvariantHolds)
{
    // After any access, every block must be in the stash or on the path
    // to its (frontend-tracked) leaf.
    std::map<Addr, Leaf> posmap;
    const u64 n = std::min<u64>(params_.numBlocks, 32);
    for (Addr a = 0; a < n; ++a) {
        const Leaf use = posmap.count(a) ? posmap[a] : randLeaf();
        const Leaf fresh = randLeaf();
        posmap[a] = fresh;
        const auto data = pattern(a, 0);
        backend_->access(Op::Write, a, use, fresh, &data);
    }
    for (const auto& [a, leaf] : posmap) {
        if (backend_->stash().contains(a))
            continue;
        const auto where = backend_->locateInTree(a);
        ASSERT_TRUE(where.has_value()) << "block " << a << " vanished";
        // The bucket must lie on the path to the tracked leaf.
        const u64 path_index_at_level =
            leaf >> (params_.levels - where->level);
        EXPECT_EQ(where->index, path_index_at_level)
            << "block " << a << " off its path (invariant violation)";
    }
}

TEST_P(BackendTest, StashStaysBounded)
{
    std::map<Addr, Leaf> posmap;
    Xoshiro256 addr_rng(77);
    const u64 n = std::min<u64>(params_.numBlocks, 256);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = addr_rng.below(n);
        const Leaf use = posmap.count(a) ? posmap[a] : randLeaf();
        const Leaf fresh = randLeaf();
        posmap[a] = fresh;
        backend_->access(i % 3 == 0 ? Op::Write : Op::Read, a, use,
                         fresh);
    }
    // Z >= 4 keeps the persistent stash tiny (Section 3.1.2).
    EXPECT_LT(backend_->stash().stats().get("peakOccupancy"),
              100u + params_.z * (params_.levels + 1));
}

TEST_P(BackendTest, BytesMovedMatchesGeometry)
{
    const auto r =
        backend_->access(Op::Read, 0, randLeaf(), randLeaf());
    EXPECT_EQ(r.bytesMoved, 2 * params_.pathBytes());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BackendTest,
    ::testing::Values(Geometry{256, 64, 4}, Geometry{1024, 64, 4},
                      Geometry{4096, 64, 4}, Geometry{512, 128, 4},
                      Geometry{1024, 32, 4}, Geometry{1024, 64, 5},
                      Geometry{1024, 64, 3}, Geometry{300, 64, 4}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
        return "N" + std::to_string(info.param.numBlocks) + "_B" +
               std::to_string(info.param.blockBytes) + "_Z" +
               std::to_string(info.param.z);
    });

TEST(BackendTrace, EmitsPathEventsWithLeaves)
{
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    std::vector<TraceEvent> trace;
    BackendConfig bc;
    bc.params = p;
    bc.treeId = 3;
    bc.traceSink = [&](const TraceEvent& e) { trace.push_back(e); };
    AesCtrCipher cipher;
    PathOramBackend backend(
        bc, std::make_unique<EncryptedTreeStorage>(p, &cipher),
        std::make_unique<FlatLayout>(p.levels, p.bucketPhysBytes()),
        nullptr);
    backend.access(Op::Read, 1, 5, 6);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].kind, TraceEvent::Kind::PathRead);
    EXPECT_EQ(trace[0].treeId, 3u);
    EXPECT_EQ(trace[0].leaf, 5u);
    EXPECT_EQ(trace[1].kind, TraceEvent::Kind::PathWrite);
    EXPECT_EQ(trace[1].leaf, 5u);
}

TEST(BackendDram, PathAccessConsumesDramTime)
{
    const OramParams p = OramParams::forCapacity(1 << 20, 64, 4);
    TimedDramBackend dram(DramConfig::ddr3(2));
    BackendConfig bc;
    bc.params = p;
    AesCtrCipher cipher;
    PathOramBackend backend(
        bc, std::make_unique<EncryptedTreeStorage>(p, &cipher),
        std::make_unique<SubtreeLayout>(p.levels, p.bucketPhysBytes(),
                                        2 * 8192),
        &dram);
    const auto r = backend.access(Op::Read, 0, 3, 9);
    EXPECT_GT(r.dramPs, 0u);
    // Sanity: a path (2x pathBytes) at ~21 GB/s takes O(hundreds of ns).
    const double ns = static_cast<double>(r.dramPs) / 1000.0;
    EXPECT_GT(ns, 100.0);
    EXPECT_LT(ns, 10000.0);
}

TEST(BackendHooks, IntegrityHooksFire)
{
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    u32 verifies = 0, updates = 0;
    BackendConfig bc;
    bc.params = p;
    bc.beforePathRead = [&](Leaf) { ++verifies; };
    bc.afterPathWrite = [&](Leaf) { ++updates; };
    AesCtrCipher cipher;
    PathOramBackend backend(
        bc, std::make_unique<EncryptedTreeStorage>(p, &cipher),
        std::make_unique<FlatLayout>(p.levels, p.bucketPhysBytes()),
        nullptr);
    backend.access(Op::Read, 1, 0, 1);
    backend.access(Op::Write, 2, 1, 2);
    EXPECT_EQ(verifies, 2u);
    EXPECT_EQ(updates, 2u);
}

} // namespace
} // namespace froram
