/**
 * @file
 * RequestJournal durability unit tests: append/sync/replay round
 * trips, group-commit watermarks, segment roll + GC, and — the heart
 * of the suite — a FaultInjectingFile-style damage matrix that
 * truncates and bit-flips a recorded journal at every byte and proves
 * replay stops at the last valid record without ever producing a
 * wrong value. Scripted FaultOp::Journal* specs cover the retry /
 * tail-repair / silent-rot paths of the commit I/O itself.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "journal/journal_format.hpp"
#include "journal/request_journal.hpp"
#include "mem/fault_injecting_backend.hpp"

namespace froram {
namespace {

std::string
freshDir(const std::string& tag)
{
    static int counter = 0;
    const std::string dir = ::testing::TempDir() + "froram_journal_" +
                            std::to_string(::getpid()) + "_" + tag +
                            "_" + std::to_string(counter++);
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

JournalConfig
smallConfig()
{
    JournalConfig cfg;
    cfg.enabled = true;
    cfg.fsyncEveryRecords = 8;
    cfg.fsyncMaxDelayUs = 0;
    cfg.segmentBytes = u64{4} << 20;
    return cfg;
}

RetryPolicy
fastRetry(u32 attempts = 3)
{
    RetryPolicy retry;
    retry.maxAttempts = attempts;
    retry.baseBackoffUs = 1;
    retry.maxBackoffUs = 20;
    return retry;
}

/** Deterministic reference record `i` (reads and writes alternate;
 *  write payload bytes are a function of the index). */
JournalRecord
referenceRecord(u64 i)
{
    JournalRecord rec;
    rec.seq = i + 1;
    rec.addr = i * 37 + 5;
    rec.isWrite = i % 3 != 2;
    if (rec.isWrite) {
        rec.payload.resize(16 + i % 3);
        for (u64 j = 0; j < rec.payload.size(); ++j)
            rec.payload[j] = static_cast<u8>(i * 131 + j * 17 + 7);
    }
    return rec;
}

void
appendReference(RequestJournal& j, u64 count)
{
    for (u64 i = 0; i < count; ++i) {
        const JournalRecord rec = referenceRecord(i);
        const u64 seq =
            j.append(rec.addr, rec.isWrite,
                     rec.payload.empty() ? nullptr : rec.payload.data(),
                     rec.payload.size());
        ASSERT_EQ(seq, rec.seq);
    }
}

std::vector<JournalRecord>
replayAll(const RequestJournal& j)
{
    std::vector<JournalRecord> out;
    j.replay(0, j.lastAppended(),
             [&](const JournalRecord& rec) { out.push_back(rec); });
    return out;
}

void
expectMatchesReferencePrefix(const std::vector<JournalRecord>& got)
{
    for (u64 i = 0; i < got.size(); ++i) {
        const JournalRecord want = referenceRecord(i);
        ASSERT_EQ(got[i].seq, want.seq);
        EXPECT_EQ(got[i].addr, want.addr) << "record " << i;
        EXPECT_EQ(got[i].isWrite, want.isWrite) << "record " << i;
        EXPECT_EQ(got[i].payload, want.payload) << "record " << i;
    }
}

std::vector<u8>
readFileBytes(const std::string& path)
{
    std::vector<u8> bytes;
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return bytes;
    u8 buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
writeFileBytes(const std::string& path, const std::vector<u8>& bytes)
{
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    std::fclose(f);
}

TEST(JournalDurability, AppendSyncReplayRoundTrip)
{
    const std::string dir = freshDir("roundtrip");
    RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr,
                     /*reset=*/true);
    EXPECT_EQ(j.lastAppended(), 0u);
    EXPECT_EQ(j.lastDurable(), 0u);
    EXPECT_EQ(j.firstAvailable(), 1u);
    EXPECT_EQ(j.segmentCount(), 1u);

    appendReference(j, 12);
    EXPECT_EQ(j.lastAppended(), 12u);
    EXPECT_EQ(j.unsyncedRecords(), 12u);
    j.sync();
    EXPECT_EQ(j.lastDurable(), 12u);
    EXPECT_EQ(j.unsyncedRecords(), 0u);

    const std::vector<JournalRecord> got = replayAll(j);
    ASSERT_EQ(got.size(), 12u);
    expectMatchesReferencePrefix(got);

    // Range filtering: (from, to] semantics.
    std::vector<u64> seqs;
    j.replay(3, 7, [&](const JournalRecord& rec) {
        seqs.push_back(rec.seq);
    });
    EXPECT_EQ(seqs, (std::vector<u64>{4, 5, 6, 7}));
}

TEST(JournalDurability, GroupCommitWatermarksAndDeadline)
{
    const std::string dir = freshDir("groupcommit");
    JournalConfig cfg = smallConfig();
    cfg.fsyncMaxDelayUs = 500;
    RequestJournal j(dir, 0, cfg, fastRetry(), nullptr, true);

    appendReference(j, 3);
    EXPECT_EQ(j.lastAppended(), 3u);
    EXPECT_EQ(j.lastDurable(), 0u) << "append alone must not be durable";
    ::usleep(2000);
    EXPECT_TRUE(j.syncDue()) << "max-delay half of group commit";
    j.sync();
    EXPECT_EQ(j.lastDurable(), 3u);
    EXPECT_FALSE(j.syncDue());
    j.sync(); // idempotent with nothing unsynced
    EXPECT_EQ(j.lastDurable(), 3u);
}

TEST(JournalDurability, ReopenRecoversDurableRecordsExactly)
{
    const std::string dir = freshDir("reopen");
    {
        RequestJournal j(dir, 2, smallConfig(), fastRetry(), nullptr,
                         true);
        appendReference(j, 9);
        j.sync();
    }
    RequestJournal j(dir, 2, smallConfig(), fastRetry(), nullptr,
                     /*reset=*/false);
    EXPECT_EQ(j.lastAppended(), 9u);
    EXPECT_EQ(j.lastDurable(), 9u);
    const std::vector<JournalRecord> got = replayAll(j);
    ASSERT_EQ(got.size(), 9u);
    expectMatchesReferencePrefix(got);

    // Appends continue the chain where it left off.
    const JournalRecord next = referenceRecord(9);
    EXPECT_EQ(j.append(next.addr, next.isWrite, next.payload.data(),
                       next.payload.size()),
              10u);
}

TEST(JournalDurability, ResetDiscardsThePriorEpoch)
{
    const std::string dir = freshDir("reset");
    {
        RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr,
                         true);
        appendReference(j, 5);
        j.sync();
    }
    RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr,
                     /*reset=*/true);
    EXPECT_EQ(j.lastAppended(), 0u);
    EXPECT_TRUE(replayAll(j).empty());
}

/**
 * The damage matrix: a recorded single-segment journal is truncated at
 * EVERY byte boundary. Whatever survives the torn-tail repair must be
 * an exact prefix of the reference sequence — replay stops at the last
 * valid record and never yields a wrong value.
 */
TEST(JournalDurability, TruncationAtEveryByteNeverReplaysAWrongValue)
{
    const std::string dir = freshDir("trunc");
    constexpr u64 kRecords = 10;
    {
        RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr,
                         true);
        appendReference(j, kRecords);
        j.sync();
    }
    const std::string seg = journal::segmentPath(dir, 0, 1);
    const std::vector<u8> committed = readFileBytes(seg);
    ASSERT_GT(committed.size(), journal::kSegmentHeaderBytes);

    for (u64 len = 0; len < committed.size(); ++len) {
        writeFileBytes(seg, std::vector<u8>(committed.begin(),
                                            committed.begin() +
                                                static_cast<long>(len)));
        RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr,
                         /*reset=*/false);
        EXPECT_LE(j.lastAppended(), kRecords);
        const std::vector<JournalRecord> got = replayAll(j);
        ASSERT_EQ(got.size(), j.lastAppended())
            << "truncation at byte " << len;
        expectMatchesReferencePrefix(got);
    }
    // The intact recording replays in full.
    writeFileBytes(seg, committed);
    RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr, false);
    EXPECT_EQ(j.lastAppended(), kRecords);
    expectMatchesReferencePrefix(replayAll(j));
}

/**
 * Companion matrix: one flipped bit at every byte. The CRC framing
 * must fence the damage — records before the flipped byte replay
 * bit-exactly, the damaged record and everything after it are gone
 * (a flip in the reserved header bytes harms nothing).
 */
TEST(JournalDurability, BitFlipAtEveryByteNeverReplaysAWrongValue)
{
    const std::string dir = freshDir("flip");
    constexpr u64 kRecords = 10;
    {
        RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr,
                         true);
        appendReference(j, kRecords);
        j.sync();
    }
    const std::string seg = journal::segmentPath(dir, 0, 1);
    const std::vector<u8> committed = readFileBytes(seg);

    for (u64 at = 0; at < committed.size(); ++at) {
        std::vector<u8> bad = committed;
        bad[at] ^= static_cast<u8>(1u << (at % 8));
        writeFileBytes(seg, bad);
        RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr,
                         /*reset=*/false);
        const std::vector<JournalRecord> got = replayAll(j);
        ASSERT_EQ(got.size(), j.lastAppended())
            << "bit flip at byte " << at;
        expectMatchesReferencePrefix(got);
    }
}

TEST(JournalDurability, SegmentRollMakesRecordsDurableAndGcReclaims)
{
    const std::string dir = freshDir("roll");
    JournalConfig cfg = smallConfig();
    cfg.segmentBytes = 160; // a handful of records per segment
    RequestJournal j(dir, 1, cfg, fastRetry(), nullptr, true);

    appendReference(j, 20);
    ASSERT_GT(j.segmentCount(), 2u);
    // Rolling seals the previous segment with a barrier: everything
    // except the active segment's unsynced tail is already durable.
    EXPECT_GT(j.lastDurable(), 0u);
    j.sync();
    EXPECT_EQ(j.lastDurable(), 20u);
    expectMatchesReferencePrefix(replayAll(j));

    // GC whole segments covered by seq 11; replay of the suffix still
    // works and the floor moved up.
    const u64 before = j.segmentCount();
    j.truncateThrough(11);
    EXPECT_LT(j.segmentCount(), before);
    EXPECT_GT(j.firstAvailable(), 1u);
    EXPECT_LE(j.firstAvailable(), 12u);
    std::vector<JournalRecord> tail;
    j.replay(11, 20, [&](const JournalRecord& rec) {
        tail.push_back(rec);
    });
    ASSERT_EQ(tail.size(), 9u);
    for (u64 i = 0; i < tail.size(); ++i)
        EXPECT_EQ(tail[i].payload, referenceRecord(11 + i).payload);

    // The active segment survives GC even when fully covered.
    j.truncateThrough(20);
    EXPECT_GE(j.segmentCount(), 1u);
    EXPECT_EQ(j.lastAppended(), 20u);
}

TEST(JournalDurability, MissingMiddleSegmentDropsEverythingAfterTheGap)
{
    const std::string dir = freshDir("gap");
    JournalConfig cfg = smallConfig();
    cfg.segmentBytes = 160;
    {
        RequestJournal j(dir, 0, cfg, fastRetry(), nullptr, true);
        appendReference(j, 20);
        j.sync();
        ASSERT_GE(j.segmentCount(), 3u);
    }
    // Remove segment 2: the chain breaks after segment 1, and records
    // past the gap must never be replayed even though they parse.
    ASSERT_EQ(::unlink(journal::segmentPath(dir, 0, 2).c_str()), 0);
    RequestJournal j(dir, 0, cfg, fastRetry(), nullptr, /*reset=*/false);
    EXPECT_LT(j.lastAppended(), 20u);
    EXPECT_GT(j.lastAppended(), 0u);
    EXPECT_EQ(j.segmentCount(), 1u) << "post-gap segments must be gone";
    const std::vector<JournalRecord> got = replayAll(j);
    ASSERT_EQ(got.size(), j.lastAppended());
    expectMatchesReferencePrefix(got);
}

TEST(JournalDurability, TransientAppendFaultsAreRetriedInvisibly)
{
    const std::string dir = freshDir("transient");
    auto sched = std::make_shared<FaultSchedule>();
    RequestJournal j(dir, 0, smallConfig(), fastRetry(3), sched, true);

    FaultSpec spec;
    spec.op = FaultOp::JournalAppend;
    spec.kind = FaultKind::Eio;
    spec.count = 2;
    spec.transient = true;
    sched->inject(spec);

    // A torn transient append on a later record exercises the
    // truncate-then-reissue path as well.
    FaultSpec torn;
    torn.op = FaultOp::JournalAppend;
    torn.kind = FaultKind::TornWrite;
    torn.afterOps = 4;
    torn.count = 1;
    torn.transient = true;
    sched->inject(torn);

    appendReference(j, 8);
    j.sync();
    EXPECT_GE(j.faultsRetried(), 2u);
    EXPECT_EQ(j.lastDurable(), 8u);
    expectMatchesReferencePrefix(replayAll(j));

    // The repaired file is byte-clean: a fresh open sees all 8.
    RequestJournal re(dir, 0, smallConfig(), fastRetry(), nullptr,
                      false);
    EXPECT_EQ(re.lastAppended(), 8u);
}

TEST(JournalDurability, PersistentAppendFaultSurfacesWithTailRepaired)
{
    const std::string dir = freshDir("persistent");
    auto sched = std::make_shared<FaultSchedule>();
    RequestJournal j(dir, 0, smallConfig(), fastRetry(2), sched, true);
    appendReference(j, 3);

    FaultSpec spec;
    spec.op = FaultOp::JournalAppend;
    spec.kind = FaultKind::TornWrite;
    spec.afterOps = sched->opsSeen(FaultOp::JournalAppend);
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    const JournalRecord rec = referenceRecord(3);
    EXPECT_THROW(j.append(rec.addr, rec.isWrite, rec.payload.data(),
                          rec.payload.size()),
                 StorageError);
    EXPECT_EQ(j.lastAppended(), 3u) << "the failed record was discarded";

    // The journal stays usable: the reissued append takes the same
    // sequence id and the chain stays contiguous on disk.
    EXPECT_EQ(j.append(rec.addr, rec.isWrite, rec.payload.data(),
                       rec.payload.size()),
              4u);
    j.sync();
    RequestJournal re(dir, 0, smallConfig(), fastRetry(), nullptr,
                      false);
    EXPECT_EQ(re.lastAppended(), 4u);
    expectMatchesReferencePrefix(replayAll(re));
}

TEST(JournalDurability, SilentAppendBitRotIsFencedAtReopen)
{
    const std::string dir = freshDir("bitrot");
    auto sched = std::make_shared<FaultSchedule>();
    {
        RequestJournal j(dir, 0, smallConfig(), fastRetry(), sched,
                         true);
        FaultSpec spec;
        spec.op = FaultOp::JournalAppend;
        spec.kind = FaultKind::BitRot;
        spec.afterOps = 5;
        spec.count = 1;
        spec.bitIndex = 200;
        sched->inject(spec);
        appendReference(j, 9);
        j.sync(); // the rot is silent: the journal believes all 9 landed
        EXPECT_EQ(j.lastDurable(), 9u);
    }
    // The torn-tail scan stops at the rotted record: 5 clean records
    // survive, the rot and everything behind it are discarded.
    RequestJournal re(dir, 0, smallConfig(), fastRetry(), nullptr,
                      false);
    EXPECT_EQ(re.lastAppended(), 5u);
    const std::vector<JournalRecord> got = replayAll(re);
    ASSERT_EQ(got.size(), 5u);
    expectMatchesReferencePrefix(got);
}

TEST(JournalDurability, SyncFaultLeavesRecordsAppendedNotDurable)
{
    const std::string dir = freshDir("syncfault");
    auto sched = std::make_shared<FaultSchedule>();
    RequestJournal j(dir, 0, smallConfig(), fastRetry(1), sched, true);
    appendReference(j, 4);

    FaultSpec spec;
    spec.op = FaultOp::JournalSync;
    spec.kind = FaultKind::Eio;
    spec.count = 1;
    spec.transient = true; // one attempt budgeted: still surfaces
    sched->inject(spec);

    EXPECT_THROW(j.sync(), StorageError);
    EXPECT_EQ(j.lastDurable(), 0u);
    EXPECT_EQ(j.unsyncedRecords(), 4u);

    // The barrier can simply be reissued once the medium recovers.
    j.sync();
    EXPECT_EQ(j.lastDurable(), 4u);
}

TEST(JournalDurability, RollFaultSurfacesAndTheJournalStaysUsable)
{
    const std::string dir = freshDir("rollfault");
    JournalConfig cfg = smallConfig();
    cfg.segmentBytes = 160;
    auto sched = std::make_shared<FaultSchedule>();
    RequestJournal j(dir, 0, cfg, fastRetry(1), sched, true);

    FaultSpec spec;
    spec.op = FaultOp::JournalRoll;
    spec.kind = FaultKind::Eio;
    spec.count = 1;
    spec.transient = false;
    sched->inject(spec);

    // Append until the roll threshold trips the injected barrier
    // failure; the append that wanted the roll fails, nothing is lost.
    u64 appended = 0;
    try {
        for (u64 i = 0; i < 20; ++i) {
            const JournalRecord rec = referenceRecord(i);
            j.append(rec.addr, rec.isWrite,
                     rec.payload.empty() ? nullptr : rec.payload.data(),
                     rec.payload.size());
            ++appended;
        }
        FAIL() << "the scripted roll fault never fired";
    } catch (const StorageError&) {
    }
    EXPECT_EQ(j.lastAppended(), appended);

    // With the medium healthy again the same append succeeds and the
    // roll completes.
    const JournalRecord rec = referenceRecord(appended);
    EXPECT_EQ(j.append(rec.addr, rec.isWrite,
                       rec.payload.empty() ? nullptr : rec.payload.data(),
                       rec.payload.size()),
              appended + 1);
    j.sync();
    expectMatchesReferencePrefix(replayAll(j));
}

TEST(JournalDurability, RollbackTailDiscardsExactlyTheUnsyncedSuffix)
{
    const std::string dir = freshDir("rollback");
    RequestJournal j(dir, 0, smallConfig(), fastRetry(), nullptr, true);
    appendReference(j, 5);
    j.sync();
    for (u64 i = 5; i < 8; ++i) {
        const JournalRecord rec = referenceRecord(i);
        j.append(rec.addr, rec.isWrite,
                 rec.payload.empty() ? nullptr : rec.payload.data(),
                 rec.payload.size());
    }
    ASSERT_EQ(j.unsyncedRecords(), 3u);

    j.rollbackTail();
    EXPECT_EQ(j.lastAppended(), 5u);
    EXPECT_EQ(j.lastDurable(), 5u);
    EXPECT_EQ(j.unsyncedRecords(), 0u);
    j.rollbackTail(); // idempotent with nothing unsynced

    // The discarded records are gone from disk, and new appends reuse
    // their sequence ids seamlessly.
    const std::vector<JournalRecord> got = replayAll(j);
    ASSERT_EQ(got.size(), 5u);
    expectMatchesReferencePrefix(got);
    for (u64 i = 5; i < 8; ++i) {
        const JournalRecord rec = referenceRecord(i);
        EXPECT_EQ(j.append(rec.addr, rec.isWrite,
                           rec.payload.empty() ? nullptr
                                               : rec.payload.data(),
                           rec.payload.size()),
                  i + 1);
    }
    j.sync();
    RequestJournal re(dir, 0, smallConfig(), fastRetry(), nullptr,
                      false);
    EXPECT_EQ(re.lastAppended(), 8u);
    expectMatchesReferencePrefix(replayAll(re));
}

} // namespace
} // namespace froram
