/**
 * @file
 * Crash-injection harness for the checkpoint commit path.
 *
 * A snapshot commit can die at any byte: mid-write of the temp file,
 * between write and rename, or the committed file can rot afterwards.
 * The contract under test: restore either reproduces the exact
 * pre-crash checkpoint or fails loudly with CheckpointError — it never
 * resumes corrupt state.
 *
 * FaultInjectingFile is the file shim: it takes one recorded commit
 * (the sealed snapshot bytes) and materializes the crash variants —
 * truncation at every byte boundary, one flipped bit at every byte —
 * that a torn or tampered medium would present.
 *
 * The SIGKILL test is the end-to-end variant: a forked child runs a
 * real mmap-backed system, committing full-scope checkpoints as it
 * writes, and is killed at an arbitrary instruction; the parent then
 * opens the survivor checkpoint and verifies every readable record.
 */
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "checkpoint/checkpoint.hpp"
#include "core/oram_system.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::string
tempPath(const std::string& tag)
{
    return ::testing::TempDir() + "froram_crash_" + tag + ".bin";
}

/** File shim presenting crash/tamper variants of one recorded commit. */
class FaultInjectingFile {
  public:
    FaultInjectingFile(std::string path, std::vector<u8> committed)
        : path_(std::move(path)), committed_(std::move(committed))
    {
    }

    ~FaultInjectingFile() { std::remove(path_.c_str()); }

    /** Write the commit truncated to `len` bytes (a torn write). */
    void
    truncateTo(u64 len)
    {
        std::vector<u8> torn(committed_.begin(),
                             committed_.begin() + static_cast<long>(len));
        ckpt::writeFileAtomic(path_, torn);
    }

    /** Write the commit with one bit flipped at byte `at`. */
    void
    flipBitAt(u64 at, u8 bit = 0)
    {
        std::vector<u8> bad = committed_;
        bad[at] ^= static_cast<u8>(1u << bit);
        ckpt::writeFileAtomic(path_, bad);
    }

    /** Write the intact commit. */
    void writeIntact() { ckpt::writeFileAtomic(path_, committed_); }

    const std::string& path() const { return path_; }
    u64 size() const { return committed_.size(); }

  private:
    std::string path_;
    std::vector<u8> committed_;
};

OramSystemConfig
tinyConfig(StorageBackendKind backend, const std::string& path = "")
{
    OramSystemConfig c;
    c.capacityBytes = 1 << 16;
    c.blockBytes = 64;
    c.storage = StorageMode::Encrypted;
    c.backend = backend;
    c.backendPath = path;
    c.plbBytes = 2 * 1024;
    c.onChipTargetBytes = 256;
    c.seed = 0xFEE1;
    return c;
}

void
drive(OramSystem& sys, u64 accesses, u64 seed)
{
    Xoshiro256 rng(seed);
    const u64 n = sys.config().capacityBytes / 64;
    for (u64 i = 0; i < accesses; ++i) {
        const Addr addr = rng.below(n);
        if (i % 2 == 0) {
            std::vector<u8> data(64, static_cast<u8>(addr * 7 + 1));
            sys.frontend().access(addr, true, &data);
        } else {
            sys.frontend().access(addr, false);
        }
    }
}

TEST(CheckpointCrash, TruncationAtEveryByteBoundaryIsRejected)
{
    // A trusted-only mmap snapshot keeps the recorded commit small
    // enough to replay every single truncation point.
    const std::string store = tempPath("trunc_store");
    std::remove(store.c_str());
    OramSystemConfig cfg =
        tinyConfig(StorageBackendKind::MmapFile, store);
    OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
    drive(sys, 60, 1);
    const std::vector<u8> commit =
        sys.checkpoint(CheckpointScope::TrustedOnly);

    FaultInjectingFile shim(tempPath("trunc_snap"), commit);
    for (u64 len = 0; len < shim.size(); ++len) {
        shim.truncateTo(len);
        EXPECT_THROW(sys.restoreFrom(shim.path()), CheckpointError)
            << "truncation at byte " << len << " was not rejected";
    }
    // The intact commit restores: the pre-crash state survives.
    shim.writeIntact();
    sys.restoreFrom(shim.path());
    std::remove(store.c_str());
}

TEST(CheckpointCrash, BitFlipAtEveryByteIsRejected)
{
    const std::string store = tempPath("flip_store");
    std::remove(store.c_str());
    OramSystemConfig cfg = tinyConfig(StorageBackendKind::MmapFile, store);
    OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
    drive(sys, 60, 2);
    const std::vector<u8> commit =
        sys.checkpoint(CheckpointScope::TrustedOnly);

    FaultInjectingFile shim(tempPath("flip_snap"), commit);
    for (u64 at = 0; at < shim.size(); ++at) {
        shim.flipBitAt(at, static_cast<u8>(at % 8));
        EXPECT_THROW(sys.restoreFrom(shim.path()), CheckpointError)
            << "bit flip at byte " << at << " was not rejected";
    }
    shim.writeIntact();
    sys.restoreFrom(shim.path());
    std::remove(store.c_str());
}

TEST(CheckpointCrash, FullScopeSnapshotTruncationSampledAcrossSystemOpen)
{
    // Full-scope snapshots carry the data plane (hundreds of KB); the
    // end-to-end open() path is exercised at sampled truncation points
    // including every boundary of the header and the MAC tail.
    OramSystemConfig cfg = tinyConfig(StorageBackendKind::Flat);
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    drive(sys, 60, 3);
    const std::vector<u8> commit = sys.checkpoint();

    FaultInjectingFile shim(tempPath("full_snap"), commit);
    std::vector<u64> points;
    for (u64 len = 0; len <= ckpt::kHeaderBytes + 4; ++len)
        points.push_back(len); // whole envelope header, byte by byte
    for (u64 len = ckpt::kHeaderBytes + 5; len < commit.size();
         len += 997)
        points.push_back(len); // payload interior, sampled
    for (u64 tail = 1; tail <= ckpt::kTagBytes + 4; ++tail)
        points.push_back(commit.size() - tail); // MAC tail, byte by byte
    for (const u64 len : points) {
        shim.truncateTo(len);
        EXPECT_THROW(
            OramSystem::open(SchemeId::PlbCompressed, cfg, shim.path()),
            CheckpointError)
            << "truncation at byte " << len << " was not rejected";
    }
    shim.writeIntact();
    auto restored =
        OramSystem::open(SchemeId::PlbCompressed, cfg, shim.path());
    drive(*restored, 20, 4);
}

TEST(CheckpointCrash, CrashDuringCommitKeepsPreviousSnapshot)
{
    OramSystemConfig cfg = tinyConfig(StorageBackendKind::Flat);
    const std::string snap = tempPath("commit_snap");
    std::remove(snap.c_str());
    std::remove((snap + ".tmp").c_str());

    OramSystem sys(SchemeId::PlbCompressed, cfg);
    drive(sys, 50, 5);
    sys.checkpointTo(snap);
    const std::vector<u8> blob_a = ckpt::readFile(snap);

    // The system keeps running, then crashes mid-commit of snapshot B:
    // the temp file holds a prefix of B, the rename never happened.
    drive(sys, 30, 6);
    const std::vector<u8> blob_b = sys.checkpoint();
    {
        std::vector<u8> torn(blob_b.begin(),
                             blob_b.begin() +
                                 static_cast<long>(blob_b.size() / 2));
        FILE* f = std::fopen((snap + ".tmp").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(torn.data(), 1, torn.size(), f);
        std::fclose(f);
    }

    // Restore sees snapshot A — the last committed state — bit for bit.
    auto restored = OramSystem::open(SchemeId::PlbCompressed, cfg, snap);
    OramSystem replica(SchemeId::PlbCompressed, cfg);
    replica.restore(blob_a);
    Xoshiro256 rng(7);
    for (int i = 0; i < 40; ++i) {
        const Addr addr = rng.below(512);
        const auto ra = restored->frontend().access(addr, false);
        const auto rb = replica.frontend().access(addr, false);
        EXPECT_EQ(ra.data, rb.data);
        EXPECT_EQ(ra.cycles, rb.cycles);
    }
    std::remove(snap.c_str());
    std::remove((snap + ".tmp").c_str());
}

TEST(CheckpointCrash, SigkillMidRunRestoresConsistentState)
{
    const std::string store = tempPath("sigkill_store");
    const std::string snap = tempPath("sigkill_snap");
    std::remove(store.c_str());
    std::remove(snap.c_str());
    std::remove((snap + ".tmp").c_str());
    OramSystemConfig cfg = tinyConfig(StorageBackendKind::MmapFile, store);
    const u64 n = cfg.capacityBytes / cfg.blockBytes;

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: write deterministic records round-robin, committing a
        // full-scope checkpoint every 8 writes, until killed.
        try {
            OramSystem sys(SchemeId::PlbIntegrityCompressed, cfg);
            for (u64 i = 0;; ++i) {
                const Addr addr = i % n;
                std::vector<u8> data(cfg.blockBytes);
                for (u64 j = 0; j < data.size(); ++j)
                    data[j] = static_cast<u8>(addr * 31 + j);
                sys.frontend().access(addr, true, &data);
                if (i % 8 == 7)
                    sys.checkpointTo(snap, CheckpointScope::Full);
            }
        } catch (...) {
            _exit(9);
        }
    }

    // Parent: let the child commit a few checkpoints, then kill -9.
    ::usleep(400 * 1000);
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child exited on its own (status " << status
        << "); the kill landed after an error";

    // If no commit completed before the kill, restore fails loudly and
    // that is the correct (if unlucky) outcome.
    std::vector<u8> committed;
    try {
        committed = ckpt::readFile(snap);
    } catch (const CheckpointError&) {
        GTEST_SKIP() << "child was killed before the first commit";
    }

    // A committed snapshot must open — rename is atomic, so the file is
    // never torn — and every record it exposes must verify end to end
    // (reads are PMMAC-checked; a rolled-back tree that disagreed with
    // the restored counters would throw IntegrityViolation).
    auto sys = OramSystem::open(SchemeId::PlbIntegrityCompressed, cfg,
                                snap);
    u64 written = 0;
    for (Addr addr = 0; addr < n; ++addr) {
        const auto r = sys->frontend().access(addr, false);
        if (r.coldMiss)
            continue; // never reached this address before the crash
        ++written;
        for (u64 j = 0; j < r.data.size(); ++j)
            ASSERT_EQ(r.data[j], static_cast<u8>(addr * 31 + j))
                << "addr " << addr << " byte " << j;
    }
    EXPECT_GT(written, 0u);
    std::remove(store.c_str());
    std::remove(snap.c_str());
    std::remove((snap + ".tmp").c_str());
}

} // namespace
} // namespace froram
