/**
 * @file
 * ShardedOramService behavior: address-map bijection, functional
 * correctness of the blocking and batched APIs against a reference
 * map, worker-count determinism (results AND per-shard adversary
 * traces must be bit-identical for 1 vs N workers, on all three
 * backends), and multi-threaded submitter safety (the test the TSan CI
 * leg leans on).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <thread>
#include <unistd.h>

#include "shard/sharded_service.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::string
freshDir(const std::string& tag)
{
    // Unique across runs too (the pid), so a previous run's leftovers
    // can never masquerade as this run's directories.
    static int counter = 0;
    return ::testing::TempDir() + "froram_shard_" +
           std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++);
}

ShardedServiceConfig
smallConfig(u32 shards, u32 workers,
            StorageBackendKind kind = StorageBackendKind::Flat)
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbCompressed;
    cfg.base.capacityBytes = u64{1} << 20; // 16384 blocks
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = kind;
    cfg.base.seed = 0x5eed1;
    cfg.numShards = shards;
    cfg.numWorkers = workers;
    return cfg;
}

std::vector<u8>
payloadFor(Addr addr, u64 version, u64 block_bytes)
{
    std::vector<u8> data(block_bytes);
    for (u64 j = 0; j < block_bytes; ++j)
        data[j] = static_cast<u8>(addr * 31 + version * 131 + j);
    return data;
}

TEST(ShardedService, AddressMapIsBalancedBijection)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/5, /*workers=*/1);
    cfg.base.capacityBytes = 64 * 1024; // 1024 blocks over 5 shards
    ShardedOramService svc(cfg);

    const u64 n = svc.numBlocks();
    const u64 local_cap = divCeil(n, svc.numShards());
    std::set<std::pair<u32, Addr>> seen;
    std::vector<u64> per_shard(svc.numShards(), 0);
    for (Addr a = 0; a < n; ++a) {
        const u32 s = svc.shardOf(a);
        const Addr local = svc.shardLocalAddr(a);
        ASSERT_LT(s, svc.numShards());
        ASSERT_LT(local, local_cap);
        ASSERT_TRUE(seen.emplace(s, local).second)
            << "two addresses mapped to shard " << s << " slot "
            << local;
        ++per_shard[s];
    }
    // Perfect balance up to the final partial group.
    const u64 lo =
        *std::min_element(per_shard.begin(), per_shard.end());
    const u64 hi =
        *std::max_element(per_shard.begin(), per_shard.end());
    EXPECT_LE(hi - lo, 1u);
}

TEST(ShardedService, BlockingAccessMatchesReferenceMap)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/4, /*workers=*/2);
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;

    std::map<Addr, std::vector<u8>> reference;
    Xoshiro256 rng(42);
    for (int i = 0; i < 600; ++i) {
        const Addr addr = rng.below(svc.numBlocks());
        if (rng.below(2) == 0) {
            const std::vector<u8> data = payloadFor(addr, i, bb);
            svc.access(addr, true, &data);
            reference[addr] = data;
        } else {
            const FrontendResult r = svc.access(addr, false);
            const auto it = reference.find(addr);
            if (it == reference.end()) {
                EXPECT_TRUE(r.coldMiss ||
                            std::all_of(r.data.begin(), r.data.end(),
                                        [](u8 b) { return b == 0; }));
            } else {
                ASSERT_EQ(r.data.size(), bb);
                EXPECT_EQ(r.data, it->second) << "addr " << addr;
            }
        }
    }
}

TEST(ShardedService, BatchedSubmitMatchesReferenceAndOrdersPerAddress)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/4, /*workers=*/4);
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;

    // One batch containing a write and a read of the SAME address:
    // per-address FIFO means the read must observe the write.
    std::vector<ShardRequest> batch(3);
    batch[0].addr = 7;
    batch[0].isWrite = true;
    batch[0].writeData = payloadFor(7, 1, bb);
    batch[1].addr = 7;
    batch[2].addr = 7 + svc.numShards(); // same shard lane, other group
    auto results = svc.submit(std::move(batch)).get();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[1].result.data, payloadFor(7, 1, bb));
    EXPECT_EQ(results[0].shard, results[1].shard);
    EXPECT_EQ(results[0].addr, 7u);

    // Larger mixed batches against a reference map.
    std::map<Addr, std::vector<u8>> reference;
    Xoshiro256 rng(43);
    for (int round = 0; round < 20; ++round) {
        std::vector<ShardRequest> b(32);
        // Per-address FIFO: a read at batch index i observes exactly
        // the writes at indices < i (plus earlier batches), so track
        // the expectation while filling, in order. Empty = cold.
        std::vector<std::vector<u8>> expect(b.size());
        for (size_t i = 0; i < b.size(); ++i) {
            b[i].addr = rng.below(svc.numBlocks());
            if (rng.below(2) == 0) {
                b[i].isWrite = true;
                b[i].writeData =
                    payloadFor(b[i].addr, round * 100 + i, bb);
                reference[b[i].addr] = b[i].writeData;
            } else {
                const auto it = reference.find(b[i].addr);
                if (it != reference.end())
                    expect[i] = it->second;
            }
        }
        auto rs = svc.submit(std::move(b)).get();
        ASSERT_EQ(rs.size(), expect.size());
        for (size_t i = 0; i < rs.size(); ++i) {
            if (!expect[i].empty()) {
                EXPECT_EQ(rs[i].result.data, expect[i])
                    << "round " << round << " index " << i;
            }
        }
    }
}

TEST(ShardedService, OutOfRangeAddressRejectedWithoutEnqueuing)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/2, /*workers=*/1);
    ShardedOramService svc(cfg);
    std::vector<ShardRequest> batch(1);
    batch[0].addr = svc.numBlocks();
    EXPECT_THROW(svc.submit(std::move(batch)), FatalError);
    // The service is still fully operational afterwards.
    const std::vector<u8> data =
        payloadFor(3, 1, cfg.base.blockBytes);
    svc.access(3, true, &data);
    EXPECT_EQ(svc.access(3, false).data, data);
}

/** Drive one deterministic request sequence through a service. */
std::vector<std::vector<u8>>
runSequence(ShardedOramService& svc, u64 block_bytes)
{
    Xoshiro256 rng(7);
    std::vector<std::vector<u8>> reads;
    for (int round = 0; round < 12; ++round) {
        std::vector<ShardRequest> batch(24);
        for (size_t i = 0; i < batch.size(); ++i) {
            batch[i].addr = rng.below(svc.numBlocks());
            if (rng.below(3) == 0) {
                batch[i].isWrite = true;
                batch[i].writeData = payloadFor(
                    batch[i].addr, round * 1000 + i, block_bytes);
            }
        }
        auto rs = svc.submit(std::move(batch)).get();
        for (auto& r : rs)
            reads.push_back(r.result.data);
    }
    return reads;
}

/** Per-shard adversary trace flattened to comparable tuples. */
std::vector<std::vector<u64>>
shardTraces(ShardedOramService& svc)
{
    std::vector<std::vector<u64>> traces(svc.numShards());
    for (u32 s = 0; s < svc.numShards(); ++s)
        for (const TraceEvent& e : svc.shard(s).trace()) {
            traces[s].push_back(static_cast<u64>(e.kind));
            traces[s].push_back(e.treeId);
            traces[s].push_back(e.leaf);
        }
    return traces;
}

class ShardedDeterminism
    : public ::testing::TestWithParam<StorageBackendKind> {};

/**
 * The satellite determinism guarantee: read results and per-shard
 * trace leaves are byte-identical regardless of the worker count, on
 * every backend.
 */
TEST_P(ShardedDeterminism, WorkerCountInvariant)
{
    const StorageBackendKind kind = GetParam();
    auto build = [&](u32 workers, const std::string& dir) {
        ShardedServiceConfig cfg =
            smallConfig(/*shards=*/4, workers, kind);
        cfg.base.capacityBytes = u64{256} << 10;
        cfg.base.collectTrace = true;
        if (kind == StorageBackendKind::MmapFile)
            cfg.directory = dir;
        return std::make_unique<ShardedOramService>(cfg);
    };

    const std::string dir1 = freshDir("det1");
    const std::string dir4 = freshDir("det4");
    auto svc1 = build(1, dir1);
    auto svc4 = build(4, dir4);
    ASSERT_EQ(svc1->numWorkers(), 1u);
    ASSERT_EQ(svc4->numWorkers(), 4u);

    const auto reads1 = runSequence(*svc1, 64);
    const auto reads4 = runSequence(*svc4, 64);
    EXPECT_EQ(reads1, reads4);

    svc1->drain();
    svc4->drain();
    const auto traces1 = shardTraces(*svc1);
    const auto traces4 = shardTraces(*svc4);
    ASSERT_EQ(traces1.size(), traces4.size());
    for (u32 s = 0; s < traces1.size(); ++s)
        EXPECT_EQ(traces1[s], traces4[s]) << "shard " << s;
    for (u32 s = 0; s < svc1->numShards(); ++s)
        EXPECT_FALSE(svc1->shard(s).trace().empty());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ShardedDeterminism,
                         ::testing::Values(StorageBackendKind::Flat,
                                           StorageBackendKind::TimedDram,
                                           StorageBackendKind::MmapFile),
                         [](const auto& info) {
                             return std::string(toString(info.param));
                         });

TEST(ShardedService, AccessRequestSpanSubmitMatchesShardRequests)
{
    // The unified-surface overload copies payloads into the owned
    // batch; results must match the ShardRequest form bit for bit.
    ShardedServiceConfig cfg = smallConfig(/*shards=*/3, /*workers=*/2);
    ShardedOramService a(cfg), b(cfg);
    const u64 bb = cfg.base.blockBytes;

    Xoshiro256 rng(11);
    std::vector<ShardRequest> owned(64);
    std::vector<AccessRequest> span(64);
    std::vector<std::vector<u8>> payloads(64);
    for (u64 i = 0; i < owned.size(); ++i) {
        owned[i].addr = span[i].addr = rng.below(a.numBlocks());
        if (i % 2 == 0) {
            owned[i].isWrite = span[i].isWrite = true;
            payloads[i] = payloadFor(owned[i].addr, i, bb);
            owned[i].writeData = payloads[i];
            span[i].writeData = &payloads[i];
        }
    }
    const auto ra = a.submit(owned).get();
    const auto rb = b.submit(span.data(), span.size()).get();
    ASSERT_EQ(ra.size(), rb.size());
    for (u64 i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].shard, rb[i].shard) << i;
        EXPECT_EQ(ra[i].result.data, rb[i].result.data) << i;
    }
    // prefetchOnly entries are rejected up front.
    AccessRequest hint;
    hint.prefetchOnly = true;
    EXPECT_THROW(b.submit(&hint, 1), FatalError);
}

TEST(ShardedService, RingShardsMatchReferenceAndStayDeterministic)
{
    // Every shard runs a Ring-scheme ORAM: functional correctness
    // against a reference map, plus worker-count invariance of the
    // per-shard traces (which now include EvictPath/BucketReshuffle
    // events driven by each shard's own round counter).
    auto build = [&](u32 workers) {
        ShardedServiceConfig cfg = smallConfig(/*shards=*/4, workers);
        cfg.base.capacityBytes = u64{256} << 10;
        cfg.base.collectTrace = true;
        cfg.base.bucketScheme = BucketSchemeKind::Ring;
        return std::make_unique<ShardedOramService>(cfg);
    };
    auto svc1 = build(1);
    auto svc4 = build(4);

    std::map<Addr, std::vector<u8>> reference;
    Xoshiro256 rng(7);
    const u64 bb = svc1->shard(0).frontend().dataBlockBytes();
    for (int i = 0; i < 400; ++i) {
        const Addr addr = rng.below(svc1->numBlocks());
        if (rng.below(2) == 0) {
            const std::vector<u8> data = payloadFor(addr, i, bb);
            svc1->access(addr, true, &data);
            svc4->access(addr, true, &data);
            reference[addr] = data;
        } else {
            const FrontendResult r1 = svc1->access(addr, false);
            const FrontendResult r4 = svc4->access(addr, false);
            EXPECT_EQ(r1.data, r4.data) << "addr " << addr;
            const auto it = reference.find(addr);
            if (it != reference.end()) {
                EXPECT_EQ(r1.data, it->second) << "addr " << addr;
            }
        }
    }
    svc1->drain();
    svc4->drain();
    const auto traces1 = shardTraces(*svc1);
    const auto traces4 = shardTraces(*svc4);
    for (u32 s = 0; s < svc1->numShards(); ++s) {
        EXPECT_EQ(traces1[s], traces4[s]) << "shard " << s;
        // Ring shards emit scheduled evictions.
        bool evicts = false;
        for (const TraceEvent& e : svc1->shard(s).trace())
            evicts |= e.kind == TraceEvent::Kind::EvictPath;
        EXPECT_TRUE(evicts) << "shard " << s;
    }
}

TEST(ShardedService, ConcurrentSubmittersOnDisjointAddresses)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/8, /*workers=*/4);
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;
    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 80;

    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Thread t owns addresses congruent to t mod kThreads.
            Xoshiro256 rng(100 + t);
            for (int i = 0; i < kOpsPerThread; ++i) {
                const Addr addr =
                    (rng.below(svc.numBlocks() / kThreads)) *
                        kThreads +
                    static_cast<u64>(t);
                const std::vector<u8> data = payloadFor(addr, i, bb);
                svc.access(addr, true, &data);
                const FrontendResult r = svc.access(addr, false);
                if (r.data != data)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(ShardedService, DrainQuiescesAndShardsStayConsistent)
{
    ShardedServiceConfig cfg = smallConfig(/*shards=*/4, /*workers=*/2);
    ShardedOramService svc(cfg);
    const u64 bb = cfg.base.blockBytes;

    std::vector<std::future<ShardedOramService::BatchResult>> futs;
    for (int round = 0; round < 8; ++round) {
        std::vector<ShardRequest> batch(16);
        for (size_t i = 0; i < batch.size(); ++i) {
            batch[i].addr = static_cast<Addr>(round * 16 + i);
            batch[i].isWrite = true;
            batch[i].writeData =
                payloadFor(batch[i].addr, round, bb);
        }
        futs.push_back(svc.submit(std::move(batch)));
    }
    svc.drain();
    // After drain every future must be ready.
    for (auto& f : futs)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    for (int round = 0; round < 8; ++round)
        for (int i = 0; i < 16; ++i) {
            const Addr addr = static_cast<Addr>(round * 16 + i);
            EXPECT_EQ(svc.access(addr, false).data,
                      payloadFor(addr, round, bb));
        }
}

} // namespace
} // namespace froram
