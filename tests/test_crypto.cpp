/**
 * @file
 * Crypto tests: AES-128 against FIPS-197 / SP 800-38A vectors, SHA3-224
 * against FIPS-202 vectors, PRF/MAC properties, and the stream-cipher
 * pad-uniqueness properties the encryption layer depends on.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "crypto/aes128.hpp"
#include "crypto/aesni.hpp"
#include "crypto/prf.hpp"
#include "crypto/sha3.hpp"
#include "crypto/stream_cipher.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::vector<u8>
fromHex(const std::string& hex)
{
    std::vector<u8> out;
    for (size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<u8>(
            std::stoul(hex.substr(i, 2), nullptr, 16)));
    return out;
}

std::string
toHex(const u8* data, size_t len)
{
    static const char* digits = "0123456789abcdef";
    std::string s;
    for (size_t i = 0; i < len; ++i) {
        s += digits[data[i] >> 4];
        s += digits[data[i] & 0xf];
    }
    return s;
}

TEST(Aes128, Fips197Vector)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(key.data());
    u8 ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp80038aEcbVectors)
{
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    Aes128 aes(key.data());
    const char* pts[4] = {"6bc1bee22e409f96e93d7e117393172a",
                          "ae2d8a571e03ac9c9eb76fac45af8e51",
                          "30c81c46a35ce411e5fbc1191a0a52ef",
                          "f69f2445df4f9b17ad2b417be66c3710"};
    const char* cts[4] = {"3ad77bb40d7a3660a89ecaf32466ef97",
                          "f5d3d58503b9699de785895a96fdbaaf",
                          "43b1cd7f598ece23881b00e3ed030688",
                          "7b0c785e27e8ad3f8223207104725dd4"};
    for (int i = 0; i < 4; ++i) {
        const auto pt = fromHex(pts[i]);
        u8 ct[16];
        aes.encryptBlock(pt.data(), ct);
        EXPECT_EQ(toHex(ct, 16), cts[i]) << "vector " << i;
    }
}

TEST(Aes128, InPlaceEncryption)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    auto buf = fromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(key.data());
    aes.encryptBlock(buf.data(), buf.data());
    EXPECT_EQ(toHex(buf.data(), 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, PortablePathMatchesFips197)
{
    // The software tables must stay correct independently of whatever
    // encryptBlock dispatches to on this machine.
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(key.data());
    u8 ct[16];
    aes.encryptBlockPortable(pt.data(), ct);
    EXPECT_EQ(toHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesNi, Fips197VectorOnHardwarePath)
{
    if (!aesni::supported())
        GTEST_SKIP() << "CPU has no AES-NI";
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(key.data());
    u8 ct[16];
    aesni::encryptBlock(aes.roundKeyBytes(), pt.data(), ct);
    EXPECT_EQ(toHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesNi, Sp80038aEcbVectorsOnHardwarePath)
{
    if (!aesni::supported())
        GTEST_SKIP() << "CPU has no AES-NI";
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    Aes128 aes(key.data());
    const char* pts[4] = {"6bc1bee22e409f96e93d7e117393172a",
                          "ae2d8a571e03ac9c9eb76fac45af8e51",
                          "30c81c46a35ce411e5fbc1191a0a52ef",
                          "f69f2445df4f9b17ad2b417be66c3710"};
    const char* cts[4] = {"3ad77bb40d7a3660a89ecaf32466ef97",
                          "f5d3d58503b9699de785895a96fdbaaf",
                          "43b1cd7f598ece23881b00e3ed030688",
                          "7b0c785e27e8ad3f8223207104725dd4"};
    for (int i = 0; i < 4; ++i) {
        const auto pt = fromHex(pts[i]);
        u8 ct[16];
        aesni::encryptBlock(aes.roundKeyBytes(), pt.data(), ct);
        EXPECT_EQ(toHex(ct, 16), cts[i]) << "vector " << i;
    }
}

TEST(AesNi, HardwareMatchesPortableOnRandomBlocks)
{
    if (!aesni::supported())
        GTEST_SKIP() << "CPU has no AES-NI";
    Xoshiro256 rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        u8 key[16], pt[16], hw[16], sw[16];
        for (auto& b : key)
            b = static_cast<u8>(rng.next());
        for (auto& b : pt)
            b = static_cast<u8>(rng.next());
        Aes128 aes(key);
        aesni::encryptBlock(aes.roundKeyBytes(), pt, hw);
        aes.encryptBlockPortable(pt, sw);
        ASSERT_EQ(0, std::memcmp(hw, sw, 16)) << "trial " << trial;
    }
}

TEST(Aes128, RekeyChangesOutput)
{
    const auto k1 = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto k2 = fromHex("100102030405060708090a0b0c0d0e0f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(k1.data());
    u8 a[16], b[16];
    aes.encryptBlock(pt.data(), a);
    aes.setKey(k2.data());
    aes.encryptBlock(pt.data(), b);
    EXPECT_NE(0, std::memcmp(a, b, 16));
}

TEST(Sha3_224, EmptyMessage)
{
    const auto d = Sha3_224::hash(nullptr, 0);
    EXPECT_EQ(toHex(d.data(), d.size()),
              "6b4e03423667dbb73b6e15454f0eb1abd4597f9a1b078e3f5b5a6bc7");
}

TEST(Sha3_224, Abc)
{
    const std::string msg = "abc";
    const auto d =
        Sha3_224::hash(reinterpret_cast<const u8*>(msg.data()), msg.size());
    EXPECT_EQ(toHex(d.data(), d.size()),
              "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf");
}

TEST(Sha3_224, LongMessageMultipleBlocks)
{
    // 448 a's spans several 144-byte rate blocks; known digest of
    // the FIPS "alphabet-soup" message.
    const std::string msg =
        "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
        "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
    const auto d =
        Sha3_224::hash(reinterpret_cast<const u8*>(msg.data()), msg.size());
    EXPECT_EQ(toHex(d.data(), d.size()),
              "543e6868e1666c1a643630df77367ae5a62a85070a51c14cbf665cbc");
}

TEST(Sha3_224, IncrementalMatchesOneShot)
{
    std::vector<u8> msg(1000);
    Xoshiro256 rng(9);
    for (auto& b : msg)
        b = static_cast<u8>(rng.next());
    const auto whole = Sha3_224::hash(msg.data(), msg.size());
    Sha3_224 h;
    h.update(msg.data(), 100);
    h.update(msg.data() + 100, 44);
    h.update(msg.data() + 144, 856);
    u8 digest[Sha3_224::kDigestBytes];
    h.finalize(digest);
    EXPECT_EQ(0, std::memcmp(digest, whole.data(), sizeof(digest)));
}

TEST(Prf, DeterministicAndKeyed)
{
    u8 k1[16] = {1}, k2[16] = {2};
    Prf p1(k1), p1b(k1), p2(k2);
    EXPECT_EQ(p1.eval(5, 7), p1b.eval(5, 7));
    EXPECT_NE(p1.eval(5, 7), p2.eval(5, 7));
    EXPECT_NE(p1.eval(5, 7), p1.eval(5, 8));
    EXPECT_NE(p1.eval(5, 7), p1.eval(6, 7));
    EXPECT_NE(p1.eval(5, 7, 0), p1.eval(5, 7, 1));
}

TEST(Prf, LeafForStaysInRange)
{
    u8 key[16] = {3};
    Prf prf(key);
    for (u64 c = 0; c < 1000; ++c) {
        EXPECT_LT(prf.leafFor(c, c * 3, 12), u64{1} << 12);
    }
}

TEST(Prf, LeafDistributionIsUniform)
{
    u8 key[16] = {4};
    Prf prf(key);
    const u32 levels = 6; // 64 leaves
    std::vector<u64> counts(64, 0);
    const int n = 64000;
    for (int i = 0; i < n; ++i)
        counts[prf.leafFor(42, static_cast<u64>(i), levels)]++;
    const double expected = static_cast<double>(n) / 64;
    double chi2 = 0;
    for (u64 c : counts) {
        const double d = static_cast<double>(c) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 120.0); // chi2(63 dof, 1e-5) ~ 117
}

TEST(Mac, VerifyAcceptsAndRejects)
{
    u8 key[16] = {5};
    Mac mac(key);
    std::vector<u8> data(64, 0xab);
    const auto tag = mac.compute(10, 99, data.data(), data.size());
    EXPECT_TRUE(mac.verify(tag, 10, 99, data.data(), data.size()));
    // Any change to counter, address or data must fail.
    EXPECT_FALSE(mac.verify(tag, 11, 99, data.data(), data.size()));
    EXPECT_FALSE(mac.verify(tag, 10, 98, data.data(), data.size()));
    data[0] ^= 1;
    EXPECT_FALSE(mac.verify(tag, 10, 99, data.data(), data.size()));
}

TEST(Mac, TagsDifferAcrossCounters)
{
    u8 key[16] = {6};
    Mac mac(key);
    std::vector<u8> data(64, 0);
    std::set<std::string> tags;
    for (u64 c = 0; c < 200; ++c) {
        const auto t = mac.compute(c, 7, data.data(), data.size());
        tags.insert(toHex(t.data(), t.size()));
    }
    EXPECT_EQ(tags.size(), 200u); // replay-resistant: all distinct
}

template <typename CipherT>
class StreamCipherTest : public ::testing::Test {
  public:
    CipherT cipher;
};

using CipherTypes = ::testing::Types<AesCtrCipher, FastCipher>;
TYPED_TEST_SUITE(StreamCipherTest, CipherTypes);

TYPED_TEST(StreamCipherTest, RoundTrip)
{
    std::vector<u8> data(300);
    Xoshiro256 rng(10);
    for (auto& b : data)
        b = static_cast<u8>(rng.next());
    auto copy = data;
    this->cipher.xorCrypt(123, 456, copy.data(), copy.size());
    EXPECT_NE(copy, data);
    this->cipher.xorCrypt(123, 456, copy.data(), copy.size());
    EXPECT_EQ(copy, data);
}

TYPED_TEST(StreamCipherTest, PadsUniquePerSeedAndChunk)
{
    std::set<std::string> pads;
    u8 pad[16];
    for (u64 hi = 0; hi < 8; ++hi) {
        for (u64 lo = 0; lo < 8; ++lo) {
            for (u32 chunk = 0; chunk < 8; ++chunk) {
                this->cipher.pad(hi, lo, chunk, pad);
                pads.insert(toHex(pad, 16));
            }
        }
    }
    EXPECT_EQ(pads.size(), 8u * 8 * 8);
}

TYPED_TEST(StreamCipherTest, SameSeedSamePad)
{
    u8 a[16], b[16];
    this->cipher.pad(77, 88, 3, a);
    this->cipher.pad(77, 88, 3, b);
    EXPECT_EQ(0, std::memcmp(a, b, 16));
}

TYPED_TEST(StreamCipherTest, BulkMatchesPerChunkReference)
{
    // xorCryptBulk must be byte-identical to the per-chunk xorCrypt
    // reference across odd lengths and unaligned buffer offsets,
    // including the partial trailing chunk.
    Xoshiro256 rng(21);
    std::vector<u8> backing(512 + 8);
    for (size_t align = 0; align < 8; ++align) {
        for (const size_t len :
             {size_t{0}, size_t{1}, size_t{15}, size_t{16}, size_t{17},
              size_t{31}, size_t{48}, size_t{63}, size_t{100},
              size_t{127}, size_t{128}, size_t{129}, size_t{255},
              size_t{312}, size_t{471}}) {
            for (auto& b : backing)
                b = static_cast<u8>(rng.next());
            u8* data = backing.data() + align;
            std::vector<u8> reference(data, data + len);
            this->cipher.xorCrypt(9991, 37, reference.data(),
                                  reference.size());
            this->cipher.xorCryptBulk(9991, 37, data, len);
            // memcmp's pointers must be non-null even for len == 0
            // (an empty vector's data() may be null under UBSan).
            if (len != 0) {
                ASSERT_EQ(0, std::memcmp(data, reference.data(), len))
                    << "align " << align << " len " << len;
            }
        }
    }
}

TYPED_TEST(StreamCipherTest, BulkOutOfPlaceMatchesInPlace)
{
    Xoshiro256 rng(22);
    std::vector<u8> src(300), dst(300, 0), in_place(300);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = in_place[i] = static_cast<u8>(rng.next());
    this->cipher.xorCryptBulkTo(5, 6, src.data(), dst.data(), src.size());
    this->cipher.xorCryptBulk(5, 6, in_place.data(), in_place.size());
    EXPECT_EQ(dst, in_place);
}

TYPED_TEST(StreamCipherTest, SpansMatchPerSpanBulk)
{
    // xorCryptSpans must be byte-identical to one xorCryptBulkTo per
    // span, across mixed lengths (partial tails included), mixed seeds
    // and both in-place and out-of-place spans — the whole-path decrypt
    // shape of the gather engine.
    Xoshiro256 rng(31);
    constexpr size_t kSpans = 23;
    const size_t lens[] = {312, 8, 16, 17, 1, 120, 312, 64};
    std::vector<std::vector<u8>> srcs(kSpans), dsts(kSpans),
        refs(kSpans);
    std::vector<CryptSpan> spans(kSpans);
    for (size_t i = 0; i < kSpans; ++i) {
        const size_t len = lens[i % 8];
        srcs[i].resize(len);
        for (auto& b : srcs[i])
            b = static_cast<u8>(rng.next());
        refs[i] = srcs[i];
        this->cipher.xorCryptBulkTo(1000 + i, 7 * i, refs[i].data(),
                                    refs[i].data(), len);
        const bool in_place = i % 3 == 0;
        if (in_place) {
            spans[i] = {1000 + i, 7 * i, srcs[i].data(), srcs[i].data(),
                        len};
        } else {
            dsts[i].assign(len, 0);
            spans[i] = {1000 + i, 7 * i, srcs[i].data(), dsts[i].data(),
                        len};
        }
    }
    this->cipher.xorCryptSpans(spans.data(), spans.size());
    for (size_t i = 0; i < kSpans; ++i) {
        const std::vector<u8>& got = i % 3 == 0 ? srcs[i] : dsts[i];
        EXPECT_EQ(got, refs[i]) << "span " << i;
    }
}

/** Scope guard: force the software AES path, restore on exit even if an
 *  assertion bails out of the test early. */
class ForceSoftwareAes {
  public:
    ForceSoftwareAes() { aesni::setForceDisabled(true); }
    ~ForceSoftwareAes() { aesni::setForceDisabled(false); }
};

TEST(AesCtrCipher, BulkIdenticalWithAndWithoutAesNi)
{
    if (!aesni::supported())
        GTEST_SKIP() << "CPU has no AES-NI";
    u8 key[16];
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<u8>(3 * i + 1);
    AesCtrCipher cipher(key);
    Xoshiro256 rng(23);
    for (const size_t len : {size_t{1}, size_t{16}, size_t{100},
                             size_t{312}, size_t{500}}) {
        std::vector<u8> data(len);
        for (auto& b : data)
            b = static_cast<u8>(rng.next());
        std::vector<u8> hw = data;
        cipher.xorCryptBulk(42, 7, hw.data(), hw.size());
        std::vector<u8> sw = data;
        {
            ForceSoftwareAes guard;
            cipher.xorCryptBulk(42, 7, sw.data(), sw.size());
        }
        ASSERT_EQ(hw, sw) << "len " << len;
    }
}

TEST(AesCtrCipher, SpansIdenticalWithAndWithoutAesNi)
{
    if (!aesni::supported())
        GTEST_SKIP() << "CPU has no AES-NI";
    u8 key[16];
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<u8>(5 * i + 2);
    AesCtrCipher cipher(key);
    Xoshiro256 rng(29);
    constexpr size_t kSpans = 21; // one ORAM path's worth of buckets
    std::vector<std::vector<u8>> hw(kSpans), sw(kSpans);
    std::vector<CryptSpan> spans(kSpans);
    for (size_t i = 0; i < kSpans; ++i) {
        hw[i].resize(312); // bucketPhysBytes - seed field, with tail
        for (auto& b : hw[i])
            b = static_cast<u8>(rng.next());
        sw[i] = hw[i];
    }
    for (size_t i = 0; i < kSpans; ++i)
        spans[i] = {90 + i, 3, hw[i].data(), hw[i].data(),
                    hw[i].size()};
    cipher.xorCryptSpans(spans.data(), spans.size());
    {
        ForceSoftwareAes guard;
        for (size_t i = 0; i < kSpans; ++i)
            spans[i] = {90 + i, 3, sw[i].data(), sw[i].data(),
                        sw[i].size()};
        cipher.xorCryptSpans(spans.data(), spans.size());
    }
    for (size_t i = 0; i < kSpans; ++i)
        ASSERT_EQ(hw[i], sw[i]) << "span " << i;
}

} // namespace
} // namespace froram
