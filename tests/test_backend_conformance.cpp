/**
 * @file
 * Shared conformance suite for the pluggable storage backends.
 *
 * Every StorageBackend implementation must provide the same observable
 * data-plane semantics (zero-filled cold reads, byte-exact round trips,
 * stable region allocation); the timing plane and persistence are allowed
 * to differ and are pinned per kind. The same checks run against all
 * three backends via TEST_P, including the mmap reopen-and-verify paths
 * at both the raw-byte and the encrypted-bucket (BackedTreeStorage)
 * level, and a cross-backend determinism check over a full OramSystem.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "checkpoint/checkpoint.hpp"
#include "core/oram_system.hpp"
#include "mem/fault_injecting_backend.hpp"
#include "mem/flat_memory_backend.hpp"
#include "mem/mmap_file_backend.hpp"
#include "mem/retrying_backend.hpp"
#include "mem/storage_backend.hpp"
#include "mem/timed_dram_backend.hpp"
#include "oram/tree_storage.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

std::string
tempPath(const std::string& tag)
{
    return ::testing::TempDir() + "froram_conformance_" + tag + ".bin";
}

class BackendConformance
    : public ::testing::TestWithParam<StorageBackendKind> {
  protected:
    void
    SetUp() override
    {
        path_ = tempPath(toString(GetParam()));
        std::remove(path_.c_str());
        backend_ = make(/*reset=*/true);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::unique_ptr<StorageBackend>
    make(bool reset)
    {
        StorageBackendConfig c;
        c.kind = GetParam();
        c.dramChannels = 2;
        c.path = path_;
        c.fileBytes = u64{8} << 20;
        c.reset = reset;
        return makeStorageBackend(c);
    }

    std::string path_;
    std::unique_ptr<StorageBackend> backend_;
};

TEST_P(BackendConformance, ColdReadsAreZeroFilled)
{
    std::vector<u8> buf(4096, 0xAB);
    backend_->read(12345, buf.data(), buf.size());
    for (const u8 b : buf)
        ASSERT_EQ(b, 0);
}

TEST_P(BackendConformance, RoundTripsAcrossChunkBoundaries)
{
    // Straddle the 64 KB chunk granularity of the RAM backends with an
    // unaligned extent, and mix in small writes at both ends.
    const u64 base = 64 * 1024 - 37;
    std::vector<u8> out(128 * 1024 + 3);
    Xoshiro256 rng(42);
    for (auto& b : out)
        b = static_cast<u8>(rng.next());
    backend_->write(base, out.data(), out.size());

    std::vector<u8> in(out.size());
    backend_->read(base, in.data(), in.size());
    EXPECT_EQ(in, out);

    // Bytes adjacent to the extent stay zero.
    u8 edge[2] = {0xFF, 0xFF};
    backend_->read(base - 1, edge, 1);
    backend_->read(base + out.size(), edge + 1, 1);
    EXPECT_EQ(edge[0], 0);
    EXPECT_EQ(edge[1], 0);
}

TEST_P(BackendConformance, OverwriteIsLastWriterWins)
{
    const std::vector<u8> first(1000, 0x11);
    const std::vector<u8> second(100, 0x22);
    backend_->write(500, first.data(), first.size());
    backend_->write(900, second.data(), second.size());

    std::vector<u8> in(1000);
    backend_->read(500, in.data(), in.size());
    for (u64 i = 0; i < in.size(); ++i)
        ASSERT_EQ(in[i], 500 + i < 900 || 500 + i >= 1000 ? 0x11 : 0x22)
            << "offset " << i;
}

TEST_P(BackendConformance, RegionAllocatorIsAlignedAndDisjoint)
{
    const u64 a = backend_->allocRegion(100);
    const u64 b = backend_->allocRegion(7);
    const u64 c = backend_->allocRegion(4096);
    EXPECT_EQ(a, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(c, b + 7);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(c % 64, 0u);
    EXPECT_GE(backend_->allocatedBytes(), c + 4096);
}

TEST_P(BackendConformance, TimingPlaneMatchesKind)
{
    std::vector<DramRequest> reqs;
    for (u64 i = 0; i < 64; ++i)
        reqs.push_back({i * backend_->burstBytes(), i % 2 == 0});
    const u64 ps = backend_->accessBatch(reqs);
    if (GetParam() == StorageBackendKind::TimedDram) {
        EXPECT_TRUE(backend_->timed());
        EXPECT_GT(ps, 0u);
        ASSERT_NE(backend_->dramModel(), nullptr);
        EXPECT_EQ(backend_->dramModel()->config().channels, 2u);
    } else {
        EXPECT_FALSE(backend_->timed());
        EXPECT_EQ(ps, 0u);
        EXPECT_EQ(backend_->dramModel(), nullptr);
    }
    EXPECT_GT(backend_->burstBytes(), 0u);
    EXPECT_GT(backend_->layoutUnitBytes(), 0u);
}

TEST_P(BackendConformance, PersistenceFlagAndSync)
{
    EXPECT_EQ(backend_->persistent(),
              GetParam() == StorageBackendKind::MmapFile);
    const std::vector<u8> bytes(64, 0x5A);
    backend_->write(0, bytes.data(), bytes.size());
    backend_->sync(); // must be a safe no-op on volatile backends
}

TEST_P(BackendConformance, TouchedBytesGrowWithWrites)
{
    const std::vector<u8> bytes(64 * 1024, 0x77);
    backend_->write(0, bytes.data(), bytes.size());
    backend_->sync();
    EXPECT_GT(backend_->bytesTouched(), 0u);
}

TEST_P(BackendConformance, DecoratorChainIsConformant)
{
    // The fault-injection and retry decorators must be drop-in
    // StorageBackends over every medium: with an idle schedule armed,
    // all data-plane and metadata observables match the bare backend's,
    // and a one-shot transient fault is absorbed invisibly.
    auto sched = std::make_shared<FaultSchedule>();
    RetryPolicy retry;
    retry.maxAttempts = 4;
    retry.baseBackoffUs = 1;
    retry.maxBackoffUs = 2;
    const StorageBackendKind kind = backend_->kind();
    const bool wasTimed = backend_->timed();
    const bool wasPersistent = backend_->persistent();
    auto chain = std::make_unique<RetryingBackend>(
        std::make_unique<FaultInjectingBackend>(std::move(backend_),
                                                sched),
        retry);

    EXPECT_EQ(chain->kind(), kind);
    EXPECT_EQ(chain->timed(), wasTimed);
    EXPECT_EQ(chain->persistent(), wasPersistent);

    std::vector<u8> cold(512, 0xCD);
    chain->read(4096, cold.data(), cold.size());
    for (const u8 b : cold)
        ASSERT_EQ(b, 0);

    const u64 base = 64 * 1024 - 13;
    std::vector<u8> out(96 * 1024 + 5);
    Xoshiro256 rng(17);
    for (auto& b : out)
        b = static_cast<u8>(rng.next());
    chain->write(base, out.data(), out.size());
    std::vector<u8> in(out.size());
    chain->read(base, in.data(), in.size());
    EXPECT_EQ(in, out);

    EXPECT_EQ(chain->allocRegion(128) % 64, 0u);
    chain->sync();
    EXPECT_EQ(sched->faultsFired(), 0u);
    EXPECT_EQ(chain->transientFaultsRetried(), 0u);

    // One scripted transient EIO on the very next read: the retry layer
    // absorbs it, the caller sees only the correct bytes.
    FaultSpec spec;
    spec.op = FaultOp::Read;
    spec.kind = FaultKind::Eio;
    spec.afterOps = sched->opsSeen(FaultOp::Read);
    spec.count = 1;
    spec.transient = true;
    sched->inject(spec);
    std::fill(in.begin(), in.end(), 0);
    chain->read(base, in.data(), in.size());
    EXPECT_EQ(in, out);
    EXPECT_EQ(sched->faultsFired(), 1u);
    EXPECT_EQ(chain->transientFaultsRetried(), 1u);
}

TEST_P(BackendConformance, BackedTreeStorageRoundTripsBuckets)
{
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    FastCipher cipher;
    BackedTreeStorage storage(p, &cipher, SeedScheme::GlobalCounter,
                              *backend_);
    EXPECT_FALSE(storage.resumed());
    EXPECT_EQ(storage.bucketsTouched(), 0u);

    // Never-written buckets decode as all-dummy.
    EXPECT_EQ(storage.readBucket(3).occupancy(), 0u);

    Xoshiro256 rng(7);
    Bucket bucket = Bucket::empty(p);
    for (u32 s = 0; s < p.z; ++s) {
        bucket.slots[s].addr = s + 1;
        bucket.slots[s].leaf = rng.below(p.numLeaves());
        bucket.slots[s].data.assign(p.storedBlockBytes(),
                                    static_cast<u8>(0x30 + s));
    }
    storage.writeBucket(5, bucket);
    storage.writeBucket(5, bucket); // re-encryption over the old image
    EXPECT_EQ(storage.bucketsTouched(), 1u);

    const Bucket back = storage.readBucket(5);
    for (u32 s = 0; s < p.z; ++s) {
        EXPECT_EQ(back.slots[s].addr, bucket.slots[s].addr);
        EXPECT_EQ(back.slots[s].leaf, bucket.slots[s].leaf);
        EXPECT_EQ(back.slots[s].data, bucket.slots[s].data);
    }

    // The tamper API works over any medium: flipping ciphertext garbles
    // the decode without faulting.
    EXPECT_TRUE(storage.hasImage(5));
    EXPECT_FALSE(storage.rawImage(5).empty());
    storage.flipBit(5, 8 * 64);
    (void)storage.readBucket(5);
}

TEST_P(BackendConformance, BackedTreeStoragePerBucketSeedAdvances)
{
    // The PerBucket scheme reads the previous image's seed field off the
    // backend (8 bytes, not the whole bucket) and increments it on every
    // rewrite; a broken fetch would silently reuse one-time pads.
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    FastCipher cipher;
    BackedTreeStorage storage(p, &cipher, SeedScheme::PerBucket,
                              *backend_);

    Bucket bucket = Bucket::empty(p);
    bucket.slots[0].addr = 9;
    bucket.slots[0].leaf = 3;
    bucket.slots[0].data.assign(p.storedBlockBytes(), 0xA7);

    std::vector<u8> images[3];
    for (int rewrite = 0; rewrite < 3; ++rewrite) {
        storage.writeBucket(5, bucket);
        images[rewrite] = storage.rawImage(5);
        // Stored plaintext seed field: 1, 2, 3 across rewrites.
        EXPECT_EQ(loadLe(images[rewrite].data(), 8),
                  static_cast<u64>(rewrite + 1));
        const Bucket back = storage.readBucket(5);
        EXPECT_EQ(back.slots[0].addr, 9u);
        EXPECT_EQ(back.slots[0].data, bucket.slots[0].data);
    }
    // Fresh seeds => fresh pads: identical plaintext, distinct images.
    EXPECT_NE(images[0], images[1]);
    EXPECT_NE(images[1], images[2]);

    // Other buckets keep independent seed chains.
    storage.writeBucket(6, bucket);
    EXPECT_EQ(loadLe(storage.rawImage(6).data(), 8), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values(StorageBackendKind::Flat,
                                           StorageBackendKind::TimedDram,
                                           StorageBackendKind::MmapFile),
                         [](const auto& info) {
                             return std::string(toString(info.param));
                         });

// ---------------------------------------------------------- mmap-specific

TEST(MmapFileBackend, ReopenSeesPreviousBytes)
{
    const std::string path = tempPath("reopen_raw");
    std::remove(path.c_str());
    std::vector<u8> out(100 * 1024);
    Xoshiro256 rng(11);
    for (auto& b : out)
        b = static_cast<u8>(rng.next());

    {
        MmapFileBackend backend(path, u64{4} << 20, /*reset=*/true);
        backend.write(777, out.data(), out.size());
        backend.sync();
    }
    {
        MmapFileBackend backend(path, u64{4} << 20, /*reset=*/false);
        std::vector<u8> in(out.size());
        backend.read(777, in.data(), in.size());
        EXPECT_EQ(in, out);
    }
    {
        // reset=true discards the previous contents.
        MmapFileBackend backend(path, u64{4} << 20, /*reset=*/true);
        u8 byte = 0xFF;
        backend.read(777, &byte, 1);
        EXPECT_EQ(byte, 0);
    }
    std::remove(path.c_str());
}

TEST(MmapFileBackend, RejectsRegionsPastCapacity)
{
    const std::string path = tempPath("capacity");
    std::remove(path.c_str());
    MmapFileBackend backend(path, 64 * 1024, /*reset=*/true);
    backend.allocRegion(32 * 1024);
    EXPECT_THROW(backend.allocRegion(64 * 1024), FatalError);
    std::remove(path.c_str());
}

TEST(MmapFileBackend, BackedTreeStorageReopensAndVerifies)
{
    const std::string path = tempPath("reopen_tree");
    std::remove(path.c_str());
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    FastCipher cipher;
    Xoshiro256 rng(13);

    std::vector<std::pair<u64, Bucket>> written;
    u64 seed_after = 0;
    {
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/true);
        BackedTreeStorage storage(p, &cipher, SeedScheme::GlobalCounter,
                                  backend);
        EXPECT_FALSE(storage.resumed());
        for (u64 id : {u64{0}, u64{9}, u64{p.numBuckets() - 1}}) {
            Bucket b = Bucket::empty(p);
            b.slots[0].addr = id + 1;
            b.slots[0].leaf = rng.below(p.numLeaves());
            b.slots[0].data.assign(p.storedBlockBytes(),
                                   static_cast<u8>(id * 31 + 1));
            storage.writeBucket(id, b);
            written.emplace_back(id, b);
        }
        seed_after = storage.codec()->globalSeed();
        backend.sync();
    }
    {
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/false);
        BackedTreeStorage storage(p, &cipher, SeedScheme::GlobalCounter,
                                  backend);
        EXPECT_TRUE(storage.resumed());
        EXPECT_EQ(storage.bucketsTouched(), written.size());
        // The seed register resumed monotonically: no pad reuse.
        EXPECT_GE(storage.codec()->globalSeed(), seed_after);
        for (const auto& [id, expect] : written) {
            const Bucket got = storage.readBucket(id);
            EXPECT_EQ(got.slots[0].addr, expect.slots[0].addr);
            EXPECT_EQ(got.slots[0].leaf, expect.slots[0].leaf);
            EXPECT_EQ(got.slots[0].data, expect.slots[0].data);
        }
        // Unwritten buckets still read as dummy after resume.
        EXPECT_EQ(storage.readBucket(1).occupancy(), 0u);
    }
    std::remove(path.c_str());
}

TEST(MmapFileBackend, ResumeUnderDifferentKeyIsRejected)
{
    const std::string path = tempPath("wrong_key");
    std::remove(path.c_str());
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    {
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/true);
        AesCtrCipher cipher;
        BackedTreeStorage storage(p, &cipher, SeedScheme::GlobalCounter,
                                  backend);
        Bucket b = Bucket::empty(p);
        b.slots[0].addr = 1;
        b.slots[0].data.assign(p.storedBlockBytes(), 7);
        b.slots[0].leaf = 0;
        storage.writeBucket(0, b);
        backend.sync();
    }
    {
        // A different pad generator (wrong key) must not silently decode
        // the persisted tree into garbage.
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/false);
        FastCipher other;
        EXPECT_THROW(BackedTreeStorage(p, &other, SeedScheme::GlobalCounter,
                                       backend),
                     FatalError);
    }
    std::remove(path.c_str());
}

TEST(MmapFileBackend, ResumeOfHeapOrderV1RegionIsRejected)
{
    // Regions written by the pre-gather heap-order placement carry the
    // FRORAMT1 magic; the subtree-placed format must refuse them loudly
    // instead of treating the region as fresh and wiping the tree.
    const std::string path = tempPath("v1_region");
    std::remove(path.c_str());
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    FastCipher cipher;
    {
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/true);
        BackedTreeStorage storage(p, &cipher, SeedScheme::GlobalCounter,
                                  backend);
        Bucket b = Bucket::empty(p);
        b.slots[0].addr = 1;
        b.slots[0].leaf = 0;
        b.slots[0].data.assign(p.storedBlockBytes(), 0x3C);
        storage.writeBucket(0, b);
        backend.sync();
    }
    {
        // Rewrite the region magic to the V1 ("FRORAMT1") value.
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/false);
        u8 magic[8];
        storeLe(magic, 0x46524F52414D5431ULL);
        backend.write(0, magic, 8);
        backend.sync();
    }
    {
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/false);
        EXPECT_THROW(BackedTreeStorage(p, &cipher,
                                       SeedScheme::GlobalCounter,
                                       backend),
                     FatalError);
        // Nothing was clobbered: the V1 magic is still there.
        u8 magic[8];
        backend.read(0, magic, 8);
        EXPECT_EQ(loadLe(magic), 0x46524F52414D5431ULL);
    }
    std::remove(path.c_str());
}

TEST(MmapFileBackend, ResumeUnderDifferentGeometryIsRejected)
{
    const std::string path = tempPath("wrong_geometry");
    std::remove(path.c_str());
    FastCipher cipher;
    {
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/true);
        const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
        BackedTreeStorage storage(p, &cipher, SeedScheme::GlobalCounter,
                                  backend);
        backend.sync();
    }
    {
        // Reopening without reset under a different tree shape must not
        // silently clobber the persisted region.
        MmapFileBackend backend(path, u64{16} << 20, /*reset=*/false);
        const OramParams p = OramParams::forCapacity(1 << 18, 64, 4);
        EXPECT_THROW(BackedTreeStorage(p, &cipher,
                                       SeedScheme::GlobalCounter, backend),
                     FatalError);
    }
    std::remove(path.c_str());
}

TEST(BucketCodec, PadDomainsSeparateTreesSharingOneCipher)
{
    // Two trees at the same seed-register value sharing one cipher must
    // not produce pad-reusing ciphertexts (the recursive hierarchy case).
    const OramParams p = OramParams::forCapacity(1 << 16, 64, 4);
    AesCtrCipher cipher;
    EncryptedTreeStorage tree0(p, &cipher, SeedScheme::GlobalCounter, 0);
    EncryptedTreeStorage tree1(p, &cipher, SeedScheme::GlobalCounter, 1);

    Bucket b = Bucket::empty(p);
    b.slots[0].addr = 1;
    b.slots[0].leaf = 0;
    b.slots[0].data.assign(p.storedBlockBytes(), 0xEE);
    tree0.writeBucket(0, b);
    tree1.writeBucket(0, b);

    const auto img0 = tree0.rawImage(0);
    const auto img1 = tree1.rawImage(0);
    ASSERT_EQ(img0.size(), img1.size());
    // Same stored seed (both registers started at 1)...
    EXPECT_TRUE(std::equal(img0.begin(), img0.begin() + 8, img1.begin()));
    // ...but domain-separated pads: ciphertexts differ.
    EXPECT_NE(img0, img1);
    // And both decode back to the same plaintext.
    EXPECT_EQ(tree0.readBucket(0).slots[0].data,
              tree1.readBucket(0).slots[0].data);
}

// ------------------------------------------------- whole-system conformance

/** Run a deterministic workload and fingerprint every read payload. */
std::vector<std::vector<u8>>
runWorkload(OramSystem& sys)
{
    Xoshiro256 rng(99);
    std::vector<std::vector<u8>> reads;
    for (u64 i = 0; i < 200; ++i) {
        const Addr addr = rng.below(256);
        if (i % 3 == 0) {
            std::vector<u8> data(sys.frontend().dataBlockBytes());
            for (auto& b : data)
                b = static_cast<u8>(rng.next());
            sys.frontend().access(addr, true, &data);
        } else {
            reads.push_back(sys.frontend().access(addr, false).data);
        }
    }
    return reads;
}

class SystemConformance
    : public ::testing::TestWithParam<BucketSchemeKind> {};

TEST_P(SystemConformance, IdenticalResultsAcrossBackends)
{
    const std::string path =
        tempPath(std::string("system_") + toString(GetParam()));
    std::remove(path.c_str());

    std::vector<std::vector<std::vector<u8>>> results;
    for (const StorageBackendKind kind :
         {StorageBackendKind::Flat, StorageBackendKind::TimedDram,
          StorageBackendKind::MmapFile}) {
        OramSystemConfig c;
        c.capacityBytes = 1 << 20;
        c.storage = StorageMode::Encrypted;
        c.backend = kind;
        c.backendPath = path;
        c.bucketScheme = GetParam();
        OramSystem sys(SchemeId::PlbIntegrityCompressed, c);
        EXPECT_EQ(sys.storage().kind(), kind);
        results.push_back(runWorkload(sys));
    }

    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0], results[1]) << "flat vs dram diverged";
    EXPECT_EQ(results[0], results[2]) << "flat vs mmap diverged";
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Schemes, SystemConformance,
                         ::testing::Values(BucketSchemeKind::Path,
                                           BucketSchemeKind::Ring),
                         [](const auto& info) {
                             return std::string(toString(info.param));
                         });

// --------------------------------------------------- differential restore

/** Copy a backing file byte for byte (clone of a persisted region). */
void
copyFile(const std::string& from, const std::string& to)
{
    std::ifstream in(from, std::ios::binary);
    ASSERT_TRUE(in.good()) << from;
    std::ofstream out(to, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
    ASSERT_TRUE(out.good()) << to;
}

/**
 * The checkpoint/restore acceptance test: run N accesses, snapshot,
 * then continue M accesses on the live system and on a clone restored
 * in a "fresh process" (fresh OramSystem; for mmap, a byte copy of the
 * backing file). Read values, leaf assignments (the adversary-visible
 * trace), stash occupancy and DRAM-model cycle counts must all match
 * bit for bit.
 */
struct RestoreCase {
    StorageBackendKind kind;
    BucketSchemeKind bucket;
};

class DifferentialRestore
    : public ::testing::TestWithParam<RestoreCase> {};

TEST_P(DifferentialRestore, RestoredCloneMatchesLiveSystem)
{
    const StorageBackendKind kind = GetParam().kind;
    // Per-case names: ctest runs the instances in parallel processes
    // sharing one temp dir.
    const std::string tag =
        std::string(toString(kind)) + "_" +
        toString(GetParam().bucket);
    const std::string live_path = tempPath("diff_live_" + tag);
    const std::string clone_path = tempPath("diff_clone_" + tag);
    const std::string snap = tempPath("diff_snap_" + tag);
    for (const auto& p : {live_path, clone_path, snap})
        std::remove(p.c_str());

    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 18;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = kind;
    cfg.backendPath = live_path;
    cfg.onChipTargetBytes = 512;
    cfg.collectTrace = true;
    cfg.bucketScheme = GetParam().bucket;
    OramSystem live(SchemeId::PlbIntegrityCompressed, cfg);

    // Phase 1: N accesses, then commit a snapshot.
    Xoshiro256 rng1(42);
    for (u64 i = 0; i < 150; ++i) {
        const Addr addr = rng1.below(1024);
        if (i % 3 == 0) {
            std::vector<u8> data(64);
            for (auto& b : data)
                b = static_cast<u8>(rng1.next());
            live.frontend().access(addr, true, &data);
        } else {
            live.frontend().access(addr, false);
        }
    }
    live.checkpointTo(snap);

    // "Fresh process": restore the snapshot into a new system. For the
    // persistent backend the clone gets its own copy of the backing
    // file (the snapshot holds trusted state only and anchors to it);
    // volatile backends travel inside the snapshot.
    OramSystemConfig clone_cfg = cfg;
    if (kind == StorageBackendKind::MmapFile) {
        copyFile(live_path, clone_path);
        clone_cfg.backendPath = clone_path;
    }
    auto clone = OramSystem::open(SchemeId::PlbIntegrityCompressed,
                                  clone_cfg, snap);

    // Phase 2: the same M accesses on both.
    live.clearTrace();
    EXPECT_EQ(clone->trace().size(), 0u);
    const auto phase2 = [](OramSystem& sys, std::vector<u64>& cycles,
                           std::vector<std::vector<u8>>& reads) {
        Xoshiro256 rng(43);
        for (u64 i = 0; i < 150; ++i) {
            const Addr addr = rng.below(1024);
            FrontendResult r;
            if (i % 4 == 0) {
                std::vector<u8> data(64);
                for (auto& b : data)
                    b = static_cast<u8>(rng.next());
                r = sys.frontend().access(addr, true, &data);
            } else {
                r = sys.frontend().access(addr, false);
                reads.push_back(r.data);
            }
            cycles.push_back(r.cycles);
        }
    };
    std::vector<u64> cycles_live, cycles_clone;
    std::vector<std::vector<u8>> reads_live, reads_clone;
    phase2(live, cycles_live, reads_live);
    phase2(*clone, cycles_clone, reads_clone);

    // Read values.
    EXPECT_EQ(reads_live, reads_clone);
    // Cycle counts (for the timed backend these include DRAM time, so
    // the restored DramModel state is on the hook too).
    EXPECT_EQ(cycles_live, cycles_clone);
    if (kind == StorageBackendKind::TimedDram) {
        EXPECT_EQ(live.dram().now(), clone->dram().now());
    }
    // Leaf assignments: the adversary-visible path sequence.
    ASSERT_EQ(live.trace().size(), clone->trace().size());
    for (u64 i = 0; i < live.trace().size(); ++i) {
        EXPECT_EQ(live.trace()[i].leaf, clone->trace()[i].leaf) << i;
        EXPECT_EQ(static_cast<int>(live.trace()[i].kind),
                  static_cast<int>(clone->trace()[i].kind)) << i;
    }
    // Stash occupancy.
    auto& fe_live = static_cast<UnifiedFrontend&>(live.frontend());
    auto& fe_clone = static_cast<UnifiedFrontend&>(clone->frontend());
    EXPECT_EQ(fe_live.backend().stash().occupancy(),
              fe_clone.backend().stash().occupancy());

    for (const auto& p : {live_path, clone_path, snap})
        std::remove(p.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, DifferentialRestore,
    ::testing::Values(
        RestoreCase{StorageBackendKind::Flat, BucketSchemeKind::Path},
        RestoreCase{StorageBackendKind::TimedDram,
                    BucketSchemeKind::Path},
        RestoreCase{StorageBackendKind::MmapFile,
                    BucketSchemeKind::Path},
        // Ring: the restored clone must replay online reads (whose
        // dummy choices consume the scheme RNG), the evict schedule and
        // early reshuffles cycle-identically on every medium.
        RestoreCase{StorageBackendKind::Flat, BucketSchemeKind::Ring},
        RestoreCase{StorageBackendKind::TimedDram,
                    BucketSchemeKind::Ring},
        RestoreCase{StorageBackendKind::MmapFile,
                    BucketSchemeKind::Ring}),
    [](const auto& info) {
        return std::string(toString(info.param.kind)) + "_" +
               toString(info.param.bucket);
    });

// ------------------------------------------- mmap reopen validation (PR 1 gap)

TEST(MmapFileBackend, ReopenUnderDifferentOramGeometryFailsTyped)
{
    // PR 1 latent gap: nothing validated that a reopened file's region
    // layout matched the new configuration before the first access —
    // a mismatched reopen silently clobbered or misread the persisted
    // trees. The superblock's region log now rejects it up front.
    const std::string path = tempPath("reopen_geometry");
    std::remove(path.c_str());
    OramSystemConfig cfg;
    cfg.capacityBytes = 1 << 18;
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = StorageBackendKind::MmapFile;
    cfg.backendPath = path;
    {
        OramSystem sys(SchemeId::PlbCompressed, cfg);
        sys.frontend().access(1, false);
        sys.storage().sync();
    }
    {
        // Same file, different capacity => different region extents.
        OramSystemConfig other = cfg;
        other.capacityBytes = 1 << 19;
        other.backendReset = false;
        EXPECT_THROW(OramSystem(SchemeId::PlbCompressed, other),
                     FatalError);
    }
    {
        // The matching configuration still reopens fine.
        OramSystemConfig same = cfg;
        same.backendReset = false;
        OramSystem sys(SchemeId::PlbCompressed, same);
        sys.frontend().access(1, false);
    }
    std::remove(path.c_str());
}

TEST(MmapFileBackend, ReopenNonBackendFileFailsTyped)
{
    const std::string path = tempPath("reopen_garbage");
    std::remove(path.c_str());
    {
        std::ofstream junk(path, std::ios::binary);
        for (int i = 0; i < 100000; ++i)
            junk.put(static_cast<char>(i * 13 + 7));
    }
    EXPECT_THROW(MmapFileBackend(path, u64{4} << 20, /*reset=*/false),
                 FatalError);
    // reset=true reinitializes it instead.
    MmapFileBackend fresh(path, u64{4} << 20, /*reset=*/true);
    fresh.allocRegion(1024);
    std::remove(path.c_str());
}

TEST(MmapFileBackend, SuperblockRecordsAndReplaysRegionLog)
{
    const std::string path = tempPath("region_log");
    std::remove(path.c_str());
    {
        MmapFileBackend backend(path, u64{4} << 20, /*reset=*/true);
        backend.allocRegion(1000);
        backend.allocRegion(4096);
        ASSERT_EQ(backend.recordedRegions().size(), 2u);
        backend.sync();
    }
    {
        MmapFileBackend backend(path, u64{4} << 20, /*reset=*/false);
        EXPECT_EQ(backend.recordedRegions().size(), 2u);
        // Replaying the same sequence succeeds...
        backend.allocRegion(1000);
        backend.allocRegion(4096);
        // ...and growing past the log appends new entries.
        backend.allocRegion(64);
        EXPECT_EQ(backend.recordedRegions().size(), 3u);
        backend.sync();
    }
    {
        // A diverging first allocation is rejected. (Region ends are
        // logged at 64-byte alignment, so the divergence must cross an
        // alignment boundary to be a real layout change.)
        MmapFileBackend backend(path, u64{4} << 20, /*reset=*/false);
        EXPECT_THROW(backend.allocRegion(2000), FatalError);
    }
    std::remove(path.c_str());
}

TEST(SystemConformanceTimed, TimedBackendAccumulatesDramTime)
{
    OramSystemConfig c;
    c.capacityBytes = 1 << 20;
    c.storage = StorageMode::Encrypted;
    c.backend = StorageBackendKind::TimedDram;
    OramSystem sys(SchemeId::PlbCompressed, c);
    const auto r = sys.frontend().access(1, false);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(sys.dram().now(), 0u);

    // Untimed backends still answer, just with zero memory time.
    c.backend = StorageBackendKind::Flat;
    OramSystem fast(SchemeId::PlbCompressed, c);
    const auto rf = fast.frontend().access(1, false);
    EXPECT_EQ(rf.data, r.data);
    EXPECT_THROW(fast.dram(), FatalError);
}

} // namespace
} // namespace froram
