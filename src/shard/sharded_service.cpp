#include "shard/sharded_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/bitops.hpp"

namespace froram {
namespace {

/** KDF labels: one per key purpose, all distinct from the OramSystem
 *  cipher (0xc1f0e4) and snapshot-MAC (0xc4ec4b5ea1) labels. */
constexpr u64 kMapKdfLabel = 0x5a4d415050524600ULL;      // shard map PRF
constexpr u64 kManifestKdfLabel = 0x5a4d414e46455354ULL; // manifest MAC
/** Per-shard seed derivation domain (mixed with the shard index). */
constexpr u64 kShardSeedDomain = 0x5348415244534442ULL;

/** v2 added the journaled flag and per-shard journal watermarks; open
 *  rejects every other version (no silent migration). */
constexpr u32 kManifestVersion = 2;
constexpr u32 kMaxShards = 4096;
constexpr u32 kMaxWorkers = 64; // submit() routes wakeups via a u64 mask

/** 16 key bytes from a labeled KDF stream (same scheme OramSystem and
 *  the frontends use for their keys). */
void
deriveKey(u64 seed, u64 label, u8* key16)
{
    Xoshiro256 kdf(seed ^ label);
    for (int i = 0; i < 16; ++i)
        key16[i] = static_cast<u8>(kdf.next());
}

/** The one place the snapshot filename format lives: checkpoint()
 *  writes and open() looks up through the same function. */
std::string
snapshotFilePath(const std::string& dir, u32 shard, u64 generation)
{
    char name[48];
    std::snprintf(name, sizeof(name), "shard-%04u.g%llu.ckpt", shard,
                  static_cast<unsigned long long>(generation));
    return dir + "/" + name;
}

} // namespace

const char*
toString(ShardHealth health)
{
    switch (health) {
      case ShardHealth::Healthy:
        return "healthy";
      case ShardHealth::Degraded:
        return "degraded";
      case ShardHealth::Quarantined:
        return "quarantined";
    }
    return "?";
}

const char*
toString(RequestStatus status)
{
    switch (status) {
      case RequestStatus::Ok:
        return "ok";
      case RequestStatus::StorageFault:
        return "storage fault";
      case RequestStatus::IntegrityFault:
        return "integrity fault";
      case RequestStatus::Quarantined:
        return "shard quarantined";
      case RequestStatus::Deadline:
        return "deadline expired";
      case RequestStatus::WorkerLost:
        return "worker thread lost";
    }
    return "?";
}

ShardedOramService::ShardedOramService(const ShardedServiceConfig& config)
    : ShardedOramService(config, /*opening=*/false)
{
}

ShardedOramService::ShardedOramService(const ShardedServiceConfig& config,
                                       bool opening)
    : cfg_(config)
{
    numShards_ = cfg_.numShards;
    if (numShards_ == 0 || numShards_ > kMaxShards)
        fatal("numShards must be in [1, ", kMaxShards, "], got ",
              numShards_);
    dataBlockBytes_ = cfg_.scheme == SchemeId::Phantom
                          ? cfg_.base.phantomBlockBytes
                          : cfg_.base.blockBytes;
    numBlocks_ = cfg_.base.capacityBytes / dataBlockBytes_;
    if (numBlocks_ < numShards_)
        fatal("service capacity (", numBlocks_,
              " blocks) is smaller than the shard count (", numShards_,
              ")");

    u8 key[16];
    deriveKey(cfg_.base.seed, kMapKdfLabel, key);
    mapPrf_.setKey(key);
    deriveKey(cfg_.base.seed, kManifestKdfLabel, key);
    manifestMac_.setKey(key);

    const bool mmap = cfg_.base.backend == StorageBackendKind::MmapFile;
    if (mmap) {
        if (cfg_.directory.empty())
            fatal("the mmap backend needs ShardedServiceConfig::"
                  "directory (one backing file per shard)");
        if (!opening)
            prepareShardDirectory(cfg_.directory, numShards_,
                                  cfg_.base.backendReset);
    }

    shards_.reserve(numShards_);
    for (u32 s = 0; s < numShards_; ++s) {
        auto st = std::make_unique<ShardState>();
        st->sys = std::make_unique<OramSystem>(cfg_.scheme,
                                               shardConfig(s, opening));
        shards_.push_back(std::move(st));
    }

    if (cfg_.supervision.journal.enabled && !opening) {
        // Arm fresh journals (a new service epoch never replays its
        // predecessor's log — open() is the resume path). open() arms
        // its own journals after the restores, using the manifest
        // watermarks.
        if (cfg_.directory.empty())
            fatal("request journaling needs ShardedServiceConfig::"
                  "directory (one journal per shard lives there)");
        if (!mmap)
            prepareShardDirectory(cfg_.directory, numShards_,
                                  cfg_.base.backendReset);
        for (u32 s = 0; s < numShards_; ++s) {
            ShardState& st = *shards_[s];
            st.journal = std::make_unique<RequestJournal>(
                cfg_.directory, s, cfg_.supervision.journal,
                cfg_.supervision.retry, scheduleFor(s), /*reset=*/true);
            // Genesis recovery point: a journaled shard can always
            // roll back (to seq 0 = the freshly initialized state), so
            // the no-recovery-point permanent quarantine is
            // unreachable for it.
            st.recoveryBlob = st.sys->checkpoint(CheckpointScope::Full);
            st.memWatermark = 0;
        }
    }

    u32 nworkers = cfg_.numWorkers;
    if (nworkers == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        nworkers = hw == 0 ? 1 : static_cast<u32>(hw);
    }
    nworkers = std::min(nworkers, numShards_);
    nworkers = std::min(nworkers, kMaxWorkers);
    nworkers = std::max<u32>(nworkers, 1);

    workers_.reserve(nworkers);
    for (u32 w = 0; w < nworkers; ++w)
        workers_.push_back(std::make_unique<Worker>());
    for (u32 s = 0; s < numShards_; ++s) {
        const u32 w = s % nworkers;
        shards_[s]->worker = w;
        workers_[w]->shards.push_back(s);
    }
    for (u32 w = 0; w < nworkers; ++w)
        workers_[w]->thread = std::thread([this, w] {
            // Worker-death guard: if the loop ever leaves abnormally —
            // a library bug, or debugKillWorker in tests — every
            // promise its shards own is failed typed instead of
            // stranded, and the shards quarantine permanently.
            try {
                workerLoop(*workers_[w]);
            } catch (const std::exception& e) {
                onWorkerDeath(*workers_[w], e.what());
            } catch (...) {
                onWorkerDeath(*workers_[w], "unknown error");
            }
        });

    if (!opening && cfg_.supervision.checkpointIntervalMs != 0)
        supervisor_ = std::thread([this] { supervisorLoop(); });
}

OramSystemConfig
ShardedOramService::shardConfig(u32 shard, bool opening) const
{
    const u64 local_blocks = divCeil(numBlocks_, numShards_);
    OramSystemConfig sc = cfg_.base;
    sc.capacityBytes = local_blocks * dataBlockBytes_;
    // Domain separation: every shard derives its own seed, hence
    // its own cipher, PRF, MAC, snapshot and remapping-RNG keys.
    sc.seed = splitmix64Mix(cfg_.base.seed ^ (kShardSeedDomain + shard));
    if (cfg_.base.backend == StorageBackendKind::MmapFile) {
        sc.backendPath = shardBackendPath(cfg_.directory, shard);
        sc.backendReset = opening ? false : cfg_.base.backendReset;
    }
    sc.storageRetry = cfg_.supervision.retry;
    if (shard < cfg_.shardFaultSchedules.size() &&
        cfg_.shardFaultSchedules[shard] != nullptr)
        sc.faultSchedule = cfg_.shardFaultSchedules[shard];
    return sc;
}

std::shared_ptr<FaultSchedule>
ShardedOramService::scheduleFor(u32 shard) const
{
    if (shard < cfg_.shardFaultSchedules.size() &&
        cfg_.shardFaultSchedules[shard] != nullptr)
        return cfg_.shardFaultSchedules[shard];
    return cfg_.base.faultSchedule;
}

ShardedOramService::~ShardedOramService()
{
    // Stop the supervisor first: it submits recovery-point jobs, which
    // must all be in flight (counted in pendingBatches_) before the
    // quiesce below can mean anything.
    if (supervisor_.joinable()) {
        {
            std::lock_guard<std::mutex> g(supMu_);
            supStop_ = true;
        }
        supCv_.notify_one();
        supervisor_.join();
    }
    {
        std::unique_lock<std::shared_mutex> g(gate_);
        stopping_ = true;
    }
    waitIdle();
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) {
        {
            std::lock_guard<std::mutex> g(w->mu);
            ++w->wake;
        }
        w->cv.notify_one();
    }
    for (auto& w : workers_)
        if (w->thread.joinable())
            w->thread.join();
}

/** The full per-batch completion state shared with the workers. */
struct ShardedOramService::Batch {
    std::vector<ShardRequest> reqs;
    BatchResult results;
    std::atomic<u32> remaining{0};
    std::mutex errMu;
    std::exception_ptr error;
    std::promise<BatchResult> promise;
    /** submit() time; request deadlines are measured from here. */
    std::chrono::steady_clock::time_point start;
};

u32
ShardedOramService::shardOf(Addr addr) const
{
    const u64 group = addr / numShards_;
    const u64 lane = addr % numShards_;
    return static_cast<u32>((lane + mapPrf_.eval(group, 0)) %
                            numShards_);
}

OramSystem&
ShardedOramService::shard(u32 index)
{
    FRORAM_ASSERT(index < numShards_, "shard index out of range");
    return *shards_[index]->sys;
}

std::future<ShardedOramService::BatchResult>
ShardedOramService::submit(std::vector<ShardRequest> batch)
{
    auto b = std::make_shared<Batch>();
    b->reqs = std::move(batch);
    const u32 n = static_cast<u32>(b->reqs.size());
    b->results.resize(n);
    std::future<BatchResult> fut = b->promise.get_future();
    if (n == 0) {
        b->promise.set_value(std::move(b->results));
        return fut;
    }
    for (const ShardRequest& r : b->reqs)
        if (r.addr >= numBlocks_)
            fatal("request address ", r.addr, " out of range [0, ",
                  numBlocks_, ")");
    b->remaining.store(n, std::memory_order_relaxed);
    b->start = std::chrono::steady_clock::now();

    std::shared_lock<std::shared_mutex> gate(gate_);
    if (stopping_)
        fatal("submit() on a stopping ShardedOramService");
    {
        std::lock_guard<std::mutex> g(pendMu_);
        ++pendingBatches_;
    }

    u64 touched = 0; // workers with new work (bit per worker, <= 64)
    for (u32 i = 0; i < n; ++i) {
        const u32 s = shardOf(b->reqs[i].addr);
        QueueEntry e{b, i, nullptr};
        if (!shards_[s]->queue.push(std::move(e))) {
            // The owning worker died and closed the queue: fail the
            // request here, typed, instead of stranding its slot.
            QueueEntry dead{b, i, nullptr};
            failEntry(dead, RequestStatus::WorkerLost,
                      "shard " + std::to_string(s) +
                          " lost its worker thread");
            continue;
        }
        touched |= u64{1} << shards_[s]->worker;
    }
    for (u32 w = 0; w < workers_.size(); ++w) {
        if ((touched & (u64{1} << w)) == 0)
            continue;
        {
            std::lock_guard<std::mutex> g(workers_[w]->mu);
            ++workers_[w]->wake;
        }
        workers_[w]->cv.notify_one();
    }
    return fut;
}

std::future<ShardedOramService::BatchResult>
ShardedOramService::submit(const AccessRequest* reqs, size_t n)
{
    std::vector<ShardRequest> batch(n);
    for (size_t i = 0; i < n; ++i) {
        if (reqs[i].prefetchOnly)
            fatal("prefetchOnly requests are not supported by the "
                  "sharded service");
        batch[i].addr = reqs[i].addr;
        batch[i].isWrite = reqs[i].isWrite;
        if (reqs[i].isWrite && reqs[i].writeData != nullptr)
            batch[i].writeData = *reqs[i].writeData;
    }
    return submit(std::move(batch));
}

FrontendResult
ShardedOramService::access(Addr addr, bool is_write,
                           const std::vector<u8>* write_data)
{
    std::vector<ShardRequest> batch(1);
    batch[0].addr = addr;
    batch[0].isWrite = is_write;
    if (is_write && write_data != nullptr)
        batch[0].writeData = *write_data;
    BatchResult r = submit(std::move(batch)).get();
    switch (r[0].status) {
      case RequestStatus::Ok:
        return std::move(r[0].result);
      case RequestStatus::IntegrityFault:
        throw IntegrityViolation(r[0].error);
      default:
        throw StorageError(std::string(toString(r[0].status)) + ": " +
                           r[0].error);
    }
}

void
ShardedOramService::drain()
{
    waitIdle();
}

void
ShardedOramService::waitIdle()
{
    std::unique_lock<std::mutex> g(pendMu_);
    pendCv_.wait(g, [this] { return pendingBatches_ == 0; });
}

void
ShardedOramService::workerLoop(Worker& w)
{
    // Popped entries live in w.local / w.localPos (not a stack vector)
    // so the death guard can see — and fail — what was in flight when
    // the loop threw. process() itself never throws; the only throw
    // points are between entries, so [localPos, end) is exactly the
    // unserviced remainder.
    const auto killCheck = [&] {
        if (w.killRequested.load(std::memory_order_acquire))
            panic("worker killed by debugKillWorker");
    };
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(w.mu);
            w.cv.wait(lk, [&] {
                return w.wake != 0 ||
                       stop_.load(std::memory_order_acquire) ||
                       w.killRequested.load(std::memory_order_acquire);
            });
            w.wake = 0;
        }
        killCheck();
        bool drained = true;
        while (drained) {
            drained = false;
            for (const u32 s : w.shards) {
                w.local.clear();
                w.localPos = 0;
                if (shards_[s]->queue.drainTo(w.local) == 0)
                    continue;
                drained = true;
                // Software pipeline over the popped batch: request
                // i+1's path prefetch is issued before request i runs,
                // so its storage fetch overlaps i's decrypt/evict
                // compute (see process()).
                for (size_t i = 0; i < w.local.size(); ++i) {
                    w.localPos = i;
                    killCheck();
                    process(s, w.local[i],
                            i + 1 < w.local.size() ? &w.local[i + 1]
                                                   : nullptr);
                    w.localPos = i + 1;
                }
                // Drain-end group commit: every entry this pass parked
                // gets acked before the worker moves on, so ack
                // latency is bounded by the drain, not by a timer.
                flushJournal(s);
            }
            // Rollback pass: a shard quarantined during the drain above
            // recovers once its queue is empty — every request queued
            // before this point has been failed typed (the "gap"), so
            // nothing is ever replayed against the rolled-back state.
            for (const u32 s : w.shards)
                if (shards_[s]->needsRecovery && shards_[s]->queue.empty())
                    recoverShard(s);
        }
        if (stop_.load(std::memory_order_acquire)) {
            // Final sweep: nothing new can arrive (the destructor
            // drains before setting stop_), but close the window
            // between the last drain and the flag check anyway.
            for (const u32 s : w.shards) {
                w.local.clear();
                w.localPos = 0;
                shards_[s]->queue.drainTo(w.local);
                for (size_t i = 0; i < w.local.size(); ++i) {
                    w.localPos = i;
                    process(s, w.local[i],
                            i + 1 < w.local.size() ? &w.local[i + 1]
                                                   : nullptr);
                    w.localPos = i + 1;
                }
                flushJournal(s);
            }
            return;
        }
    }
}

void
ShardedOramService::failEntry(QueueEntry& entry, RequestStatus status,
                              const std::string& why)
{
    if (entry.snap != nullptr) {
        entry.snap->done.set_exception(
            std::make_exception_ptr(StorageError(why)));
        std::lock_guard<std::mutex> g(pendMu_);
        --pendingBatches_;
        pendCv_.notify_all();
        return;
    }
    Batch& b = *entry.batch;
    ShardAccessResult& slot = b.results[entry.index];
    slot.addr = b.reqs[entry.index].addr;
    slot.status = status;
    slot.error = why;
    slot.result = FrontendResult{};
    finishOne(b);
}

void
ShardedOramService::quarantineShard(u32 shard_index, RequestStatus status,
                                    const std::string& why)
{
    ShardState& st = *shards_[shard_index];
    {
        std::lock_guard<std::mutex> g(st.healthMu);
        st.health = ShardHealth::Quarantined;
        st.lastError = std::string(toString(status)) + ": " + why;
    }
    st.needsRecovery = true;
    // The pending rollback counts like a batch so drain()/checkpoint()
    // wait for it instead of racing the worker's sys replacement.
    std::lock_guard<std::mutex> g(pendMu_);
    ++pendingBatches_;
}

void
ShardedOramService::recoverShard(u32 shard_index)
{
    ShardState& st = *shards_[shard_index];
    st.needsRecovery = false;
    const auto permanently = [&](const std::string& why) {
        std::lock_guard<std::mutex> g(st.healthMu);
        st.permanent = true;
        st.lastError = why + " (previously: " + st.lastError + ")";
    };
    if (st.recoveryBlob.empty()) {
        permanently("no recovery point; shard quarantined permanently");
    } else if (st.recoveries >= cfg_.supervision.maxRecoveries) {
        permanently("recovery budget exhausted; shard quarantined "
                    "permanently");
    } else {
        // Destroy the fail-stopped system FIRST: with the mmap backend
        // the old instance still maps the shard file, and its
        // destructor flush must not land on top of the rebuilt tree.
        {
            std::lock_guard<std::mutex> g(st.healthMu);
            ++st.recoveries;
        }
        std::unique_ptr<OramSystem> old;
        {
            std::lock_guard<std::mutex> g(st.healthMu);
            old = std::move(st.sys);
        }
        old.reset();
        try {
            OramSystemConfig sc = shardConfig(shard_index,
                                              /*opening=*/false);
            // The Full-scope blob restores the whole data plane, so
            // rebuild from a clean slate even when the file persists.
            sc.backendReset = true;
            auto fresh = std::make_unique<OramSystem>(cfg_.scheme, sc);
            fresh->restore(st.recoveryBlob);
            st.lastRetries = fresh->storageRetries();
            st.cleanStreak = 0;
            std::lock_guard<std::mutex> g(st.healthMu);
            st.sys = std::move(fresh);
            st.health = ShardHealth::Degraded; // re-admitted, watched
        } catch (const std::exception& e) {
            permanently(std::string("rollback failed: ") + e.what());
        }
    }
    std::lock_guard<std::mutex> g(pendMu_);
    --pendingBatches_;
    pendCv_.notify_all();
}

void
ShardedOramService::flushJournal(u32 shard_index)
{
    ShardState& st = *shards_[shard_index];
    if (st.journal == nullptr || st.pendingAck.empty())
        return;
    try {
        st.journal->sync();
    } catch (const StorageError& e) {
        recoverJournaled(shard_index, RequestStatus::StorageFault,
                         std::string("journal group commit failed: ") +
                             e.what());
        return;
    }
    // Barrier done: every parked record is durable — release the acks.
    // Detach the parked list BEFORE completing any future: the last
    // finishOne can wake a drain()er/checkpoint()er, which must then
    // observe an empty pendingAck, not one the worker is mid-clearing.
    std::vector<std::pair<u64, QueueEntry>> acks;
    acks.swap(st.pendingAck);
    for (auto& p : acks)
        finishOne(*p.second.batch);
}

void
ShardedOramService::maybeFlushJournal(u32 shard_index)
{
    ShardState& st = *shards_[shard_index];
    if (st.journal == nullptr || st.pendingAck.empty())
        return;
    const u64 unsynced = st.journal->unsyncedRecords();
    // unsynced == 0 with entries parked means a segment roll already
    // committed them mid-drain — release without another barrier.
    if (unsynced == 0 ||
        unsynced >= cfg_.supervision.journal.fsyncEveryRecords ||
        st.journal->syncDue())
        flushJournal(shard_index);
}

bool
ShardedOramService::recoverJournaled(u32 shard_index,
                                     RequestStatus status,
                                     const std::string& why)
{
    ShardState& st = *shards_[shard_index];
    const auto t0 = std::chrono::steady_clock::now();
    const std::string typed = std::string(toString(status)) + ": " + why;
    const auto failParked = [&](const std::string& msg) {
        std::vector<std::pair<u64, QueueEntry>> parked;
        parked.swap(st.pendingAck);
        for (auto& p : parked)
            failEntry(p.second, status, msg);
    };
    const auto permanently = [&](const std::string& msg) {
        std::lock_guard<std::mutex> g(st.healthMu);
        st.permanent = true;
        st.lastError = msg + " (previously: " + typed + ")";
    };
    bool over_budget;
    {
        std::lock_guard<std::mutex> g(st.healthMu);
        st.health = ShardHealth::Quarantined;
        st.lastError = typed;
        over_budget = st.recoveries >= cfg_.supervision.maxRecoveries;
        if (!over_budget)
            ++st.recoveries;
    }
    if (over_budget) {
        permanently("recovery budget exhausted; shard quarantined "
                    "permanently");
        failParked("recovery budget exhausted (" + typed + ")");
        return false;
    }
    FRORAM_ASSERT(!st.recoveryBlob.empty(),
                  "journaled shard without a recovery point");

    // Salvage: records already appended may still commit, and every
    // one that does will be replayed — its request acked instead of
    // failed. A failed barrier here only shrinks the salvageable
    // suffix (those requests were never acked). Whatever does NOT
    // commit is then physically cut off the tail: a record of a
    // request we are about to fail must not survive to be replayed by
    // a later open().
    try {
        st.journal->sync();
    } catch (...) {
    }
    const u64 durable = st.journal->lastDurable();
    if (st.journal->lastAppended() != durable) {
        try {
            st.journal->rollbackTail();
        } catch (const std::exception& e) {
            permanently(std::string("journal tail rollback failed: ") +
                        e.what());
            failParked(std::string("journal tail rollback failed: ") +
                       e.what());
            return false;
        }
    }

    // Destroy the fail-stopped system FIRST: with the mmap backend the
    // old instance still maps the shard file, and its destructor flush
    // must not land on top of the rebuilt tree.
    std::unique_ptr<OramSystem> old;
    {
        std::lock_guard<std::mutex> g(st.healthMu);
        old = std::move(st.sys);
    }
    old.reset();

    u64 replayed = 0;
    std::unique_ptr<OramSystem> fresh;
    try {
        OramSystemConfig sc = shardConfig(shard_index,
                                          /*opening=*/false);
        // The Full-scope blob restores the whole data plane, so
        // rebuild from a clean slate even when the file persists.
        sc.backendReset = true;
        fresh = std::make_unique<OramSystem>(cfg_.scheme, sc);
        fresh->restore(st.recoveryBlob);
        // Exact replay: the durable suffix goes through the same
        // submit() path that produced it, so the recovered shard is
        // bit-identical — values, traces, checkpoint blobs — to one
        // that never faulted. Parked requests get their result slots
        // refilled by their own replayed execution.
        AccessResult scratch;
        st.journal->replay(
            st.memWatermark, durable, [&](const JournalRecord& rec) {
                AccessResult* out = &scratch;
                for (auto& p : st.pendingAck)
                    if (p.first == rec.seq) {
                        out = &p.second.batch->results[p.second.index]
                                   .result;
                        break;
                    }
                AccessRequest ar;
                ar.addr = rec.addr;
                ar.isWrite = rec.isWrite;
                ar.writeData = rec.isWrite && !rec.payload.empty()
                                   ? &rec.payload
                                   : nullptr;
                fresh->submit(&ar, out, 1);
                ++replayed;
            });
    } catch (const std::exception& e) {
        permanently(std::string("journal replay failed: ") + e.what());
        failParked(std::string("journal replay failed: ") + e.what());
        return false;
    }
    st.lastRetries = fresh->storageRetries();
    st.cleanStreak = 0;
    const u64 ms = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    {
        std::lock_guard<std::mutex> g(st.healthMu);
        st.sys = std::move(fresh);
        st.health = ShardHealth::Degraded; // re-admitted, watched
        st.lastReplayDepth = replayed;
        st.lastRecoveryMs = ms;
    }
    // Ack or fail the parked requests. A durable record means its
    // request was replayed — its effects and result live in the
    // recovered state — so it completes Ok (this is what makes gap
    // requests succeed instead of failing typed). Past the durable
    // tail the record is gone and the request never executed in the
    // surviving timeline; it was never acked, so it fails typed.
    // Nothing is silently dropped and nothing is doubly applied.
    // (Detached before any future completes — see flushJournal.)
    std::vector<std::pair<u64, QueueEntry>> parked;
    parked.swap(st.pendingAck);
    for (auto& p : parked) {
        if (p.first <= durable) {
            ShardAccessResult& ps =
                p.second.batch->results[p.second.index];
            ps.status = RequestStatus::Ok;
            ps.error.clear();
            finishOne(*p.second.batch);
        } else {
            failEntry(p.second, status,
                      "request record was not durable when the shard "
                      "rolled back (" + typed + ")");
        }
    }
    return true;
}

void
ShardedOramService::onWorkerDeath(Worker& w, const std::string& why)
{
    const std::string msg = "worker thread died: " + why;
    // Fail what the loop had popped but not yet serviced...
    for (size_t i = w.localPos; i < w.local.size(); ++i)
        failEntry(w.local[i], RequestStatus::WorkerLost, msg);
    w.local.clear();
    w.localPos = 0;
    // ...then close each owned shard's queue (no producer can slip a
    // new entry past the close) and fail everything still queued.
    for (const u32 s : w.shards) {
        ShardState& st = *shards_[s];
        {
            std::lock_guard<std::mutex> g(st.healthMu);
            st.health = ShardHealth::Quarantined;
            st.permanent = true;
            st.lastError = msg;
        }
        if (st.journal != nullptr && !st.pendingAck.empty()) {
            // Parked entries whose records are already durable
            // executed fine before the death and are acked; unsynced
            // records are cut off the tail and their requests fail
            // typed — never acked, never replayable.
            try {
                st.journal->rollbackTail();
            } catch (...) {
            }
            const u64 durable = st.journal->lastDurable();
            std::vector<std::pair<u64, QueueEntry>> parked;
            parked.swap(st.pendingAck);
            for (auto& p : parked) {
                if (p.first <= durable)
                    finishOne(*p.second.batch);
                else
                    failEntry(p.second, RequestStatus::WorkerLost, msg);
            }
        }
        if (st.needsRecovery) {
            // A rollback was pending; release its drain() hold.
            st.needsRecovery = false;
            std::lock_guard<std::mutex> g(pendMu_);
            --pendingBatches_;
            pendCv_.notify_all();
        }
        st.queue.close();
        std::vector<QueueEntry> leftover;
        st.queue.drainTo(leftover);
        for (QueueEntry& e : leftover)
            failEntry(e, RequestStatus::WorkerLost, msg);
    }
}

void
ShardedOramService::process(u32 shard_index, QueueEntry& entry,
                            const QueueEntry* next)
{
    ShardState& st = *shards_[shard_index];

    if (entry.snap != nullptr) {
        // Recovery-point control entry: capture a sealed Full-scope
        // snapshot at this point of the shard's request order. The
        // service keeps serving its other shards meanwhile — no global
        // quiesce — and a quarantined shard keeps its previous point.
        try {
            // Journaled: commit + ack everything parked first, so the
            // snapshot corresponds exactly to the durable watermark
            // (flushJournal may recover the shard inline — re-check
            // health after).
            flushJournal(shard_index);
            if (st.health != ShardHealth::Quarantined) {
                std::vector<u8> blob =
                    st.sys->checkpoint(CheckpointScope::Full);
                {
                    std::lock_guard<std::mutex> g(st.healthMu);
                    st.recoveryBlob = std::move(blob);
                }
                if (st.journal != nullptr) {
                    // Journal GC: the fresh point covers everything
                    // durable, but reopen-from-manifest still needs
                    // records past the sealed generation — segments
                    // below BOTH watermarks are reclaimable.
                    st.memWatermark = st.journal->lastDurable();
                    st.journal->truncateThrough(std::min(
                        st.memWatermark, st.durableWatermark));
                }
            }
            entry.snap->done.set_value();
        } catch (...) {
            entry.snap->done.set_exception(std::current_exception());
        }
        std::lock_guard<std::mutex> g(pendMu_);
        --pendingBatches_;
        pendCv_.notify_all();
        return;
    }

    Batch& b = *entry.batch;
    const ShardRequest& req = b.reqs[entry.index];
    ShardAccessResult& slot = b.results[entry.index];
    slot.shard = shard_index;
    slot.addr = req.addr;
    slot.status = RequestStatus::Ok;

    // Deadline first, BEFORE the quarantine fast-fail: a request whose
    // deadline expired while it was parked behind a rollback or a
    // journal replay fails Deadline — its true cause — not
    // Quarantined. Expiry is still only evaluated here, at actual
    // service time, so a deadline never interrupts an access (and a
    // recovery that finishes in time costs the request nothing).
    if (req.deadlineUs != 0) {
        const auto waited =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - b.start)
                .count();
        if (waited > static_cast<i64>(req.deadlineUs)) {
            failEntry(entry, RequestStatus::Deadline,
                      "request waited " + std::to_string(waited) +
                          "us, deadline " +
                          std::to_string(req.deadlineUs) + "us");
            return;
        }
    }
    // Quarantine fast-fail: requests in the gap between the fault and
    // re-admission fail typed — they are never replayed against the
    // rolled-back state. Journaled shards recover inline before
    // process() returns, so they only ever reach this permanently
    // quarantined. (health is written only by this worker, so reading
    // our own slot without the lock is race-free.)
    if (st.health == ShardHealth::Quarantined) {
        std::string why;
        {
            std::lock_guard<std::mutex> g(st.healthMu);
            why = st.lastError;
        }
        failEntry(entry, RequestStatus::Quarantined, why);
        return;
    }

    bool parked = false; // journaled: entry pushed to pendingAck
    try {
        const std::vector<u8>* payload =
            req.isWrite && !req.writeData.empty() ? &req.writeData
                                                  : nullptr;
        if (st.journal != nullptr) {
            // Append-then-ack, phase 1: the record goes to the journal
            // BEFORE execution, and the entry parks in pendingAck until
            // a group-commit barrier covers it — only then does its
            // future complete. Reads are journaled too: an ORAM read
            // remaps the PosMap and advances the remapping RNG, so a
            // replay without them would diverge from the original run.
            u64 seq = 0;
            try {
                seq = st.journal->append(
                    shardLocalAddr(req.addr), req.isWrite,
                    payload != nullptr ? payload->data() : nullptr,
                    payload != nullptr ? payload->size() : 0);
            } catch (const StorageError& e) {
                // Append failed past the retry budget, tail repaired:
                // the shard state is untouched, so only THIS request
                // fails — no quarantine, no rollback.
                const std::string why =
                    std::string("journal append failed: ") + e.what();
                st.cleanStreak = 0;
                {
                    std::lock_guard<std::mutex> g(st.healthMu);
                    if (st.health == ShardHealth::Healthy)
                        st.health = ShardHealth::Degraded;
                    st.lastError = why;
                }
                failEntry(entry, RequestStatus::StorageFault, why);
                return;
            }
            st.pendingAck.emplace_back(seq, entry);
            parked = true;
        }
        // Pipeline stage overlap via the unified submit surface: a
        // prefetchOnly entry for the NEXT popped request's path runs
        // before this one's compute. The hint never mutates ORAM
        // state, so per-shard results and traces stay bit-identical
        // to the unpipelined worker (and journal replay, which skips
        // hints, reproduces the same bits).
        if (next != nullptr && next->snap == nullptr) {
            AccessRequest hint;
            hint.addr = shardLocalAddr(
                next->batch->reqs[next->index].addr);
            hint.prefetchOnly = true;
            AccessResult ignored;
            st.sys->submit(&hint, &ignored, 1);
        }
        AccessRequest ar;
        ar.addr = shardLocalAddr(req.addr);
        ar.isWrite = req.isWrite;
        ar.writeData = payload;
        // Straight into the batch slot: the slot is this request's
        // final home, so there is nothing to gain from a bounce
        // through per-shard scratch. OramSystem::submit fail-stops the
        // shard system on any escaping storage/integrity fault.
        st.sys->submit(&ar, &slot.result, 1);

        // Degraded-mode bookkeeping: the retry layer absorbing
        // transient faults shows up as a growing retry counter; a
        // clean streak promotes the shard back to Healthy.
        const u64 retries = st.sys->storageRetries();
        if (retries != st.lastRetries) {
            st.lastRetries = retries;
            st.cleanStreak = 0;
            std::lock_guard<std::mutex> g(st.healthMu);
            if (st.health == ShardHealth::Healthy)
                st.health = ShardHealth::Degraded;
        } else if (++st.cleanStreak >= cfg_.supervision.healthyStreak) {
            st.cleanStreak = 0;
            std::lock_guard<std::mutex> g(st.healthMu);
            if (st.health == ShardHealth::Degraded)
                st.health = ShardHealth::Healthy;
        }
        if (st.journal != nullptr)
            // Append-then-ack, phase 2: the entry stays parked until a
            // barrier covers its record (batch-size/latency threshold
            // here, or the worker's drain-end flush).
            maybeFlushJournal(shard_index);
        else
            finishOne(b);
        return;
    } catch (const IntegrityViolation& e) {
        if (st.journal != nullptr) {
            recoverJournaled(shard_index, RequestStatus::IntegrityFault,
                             e.what());
            return;
        }
        // Quarantine BEFORE finishing the entry: failEntry can complete
        // the batch and drop pendingBatches_ to zero, and a drain()er
        // waking in that window must already see the quarantine and its
        // pending-rollback hold.
        quarantineShard(shard_index, RequestStatus::IntegrityFault,
                        e.what());
        failEntry(entry, RequestStatus::IntegrityFault, e.what());
    } catch (const StorageError& e) {
        if (st.journal != nullptr) {
            recoverJournaled(shard_index, RequestStatus::StorageFault,
                             e.what());
            return;
        }
        quarantineShard(shard_index, RequestStatus::StorageFault,
                        e.what());
        failEntry(entry, RequestStatus::StorageFault, e.what());
    } catch (...) {
        // Not a storage/integrity fault: a library bug or misuse. No
        // typed per-request story exists for these — reject the whole
        // batch's future (legacy semantics) and quarantine the shard
        // permanently (no rollback: the failure mode is unknown).
        const std::exception_ptr eptr = std::current_exception();
        std::string why = "unknown error";
        try {
            std::rethrow_exception(eptr);
        } catch (const std::exception& ex) {
            why = ex.what();
        } catch (...) {
        }
        if (parked) {
            // The faulting entry is the last parked one; its batch is
            // rejected below. Its record — like every unsynced record —
            // is cut off the journal tail, so no future replay can
            // apply a request whose batch was rejected. Earlier parked
            // entries whose records are already durable executed fine
            // and are acked; the rest follow their records into
            // oblivion, typed (they were never acked).
            st.pendingAck.pop_back();
            try {
                st.journal->rollbackTail();
            } catch (...) {
            }
            const u64 durable = st.journal->lastDurable();
            std::vector<std::pair<u64, QueueEntry>> parked;
            parked.swap(st.pendingAck);
            for (auto& p : parked) {
                if (p.first <= durable)
                    finishOne(*p.second.batch);
                else
                    failEntry(p.second, RequestStatus::StorageFault,
                              "request record discarded: the shard "
                              "failed non-fault (" + why + ")");
            }
        }
        {
            std::lock_guard<std::mutex> g(st.healthMu);
            st.health = ShardHealth::Quarantined;
            st.permanent = true;
            st.lastError = why;
        }
        {
            std::lock_guard<std::mutex> g(b.errMu);
            if (!b.error)
                b.error = eptr;
        }
        finishOne(b);
    }
}

void
ShardedOramService::finishOne(Batch& b)
{
    if (b.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return;
    if (b.error)
        b.promise.set_exception(b.error);
    else
        b.promise.set_value(std::move(b.results));
    std::lock_guard<std::mutex> g(pendMu_);
    --pendingBatches_;
    pendCv_.notify_all();
}

ShardHealth
ShardedOramService::shardHealth(u32 index) const
{
    FRORAM_ASSERT(index < numShards_, "shard index out of range");
    std::lock_guard<std::mutex> g(shards_[index]->healthMu);
    return shards_[index]->health;
}

ShardedOramService::ShardHealthReport
ShardedOramService::shardReport(u32 index) const
{
    FRORAM_ASSERT(index < numShards_, "shard index out of range");
    const ShardState& st = *shards_[index];
    ShardHealthReport r;
    std::lock_guard<std::mutex> g(st.healthMu);
    r.health = st.health;
    r.recoveries = st.recoveries;
    r.lastError = st.lastError;
    r.hasRecoveryPoint = !st.recoveryBlob.empty();
    // st.sys is null only inside the worker's rollback window, which
    // holds healthMu around both the detach and the reattach.
    r.transientFaults = st.sys != nullptr ? st.sys->storageRetries() : 0;
    r.journaled = st.journal != nullptr;
    if (st.journal != nullptr) {
        // Watermarks are atomics; journal lag observed from any thread
        // is a point-in-time reading, like the health state itself.
        r.journalLagRecords = st.journal->unsyncedRecords();
        r.transientFaults += st.journal->faultsRetried();
    }
    r.lastReplayDepth = st.lastReplayDepth;
    r.lastRecoveryMs = st.lastRecoveryMs;
    return r;
}

void
ShardedOramService::refreshRecoveryPoints()
{
    std::vector<std::shared_ptr<SnapshotJob>> jobs;
    jobs.reserve(numShards_);
    {
        std::shared_lock<std::shared_mutex> gate(gate_);
        if (stopping_)
            return;
        u64 touched = 0;
        for (u32 s = 0; s < numShards_; ++s) {
            auto job = std::make_shared<SnapshotJob>();
            {
                std::lock_guard<std::mutex> g(pendMu_);
                ++pendingBatches_;
            }
            QueueEntry e;
            e.snap = job;
            if (!shards_[s]->queue.push(std::move(e))) {
                // Worker gone: the shard is permanently quarantined and
                // keeps (at most) its old point; nothing to wait for.
                job->done.set_value();
                std::lock_guard<std::mutex> g(pendMu_);
                --pendingBatches_;
                pendCv_.notify_all();
            } else {
                touched |= u64{1} << shards_[s]->worker;
            }
            jobs.push_back(std::move(job));
        }
        for (u32 w = 0; w < workers_.size(); ++w) {
            if ((touched & (u64{1} << w)) == 0)
                continue;
            {
                std::lock_guard<std::mutex> g(workers_[w]->mu);
                ++workers_[w]->wake;
            }
            workers_[w]->cv.notify_one();
        }
    }
    // Wait out every capture before rethrowing the first failure, so a
    // caller never races jobs it believes are finished.
    std::exception_ptr first;
    for (auto& job : jobs) {
        try {
            job->done.get_future().get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

void
ShardedOramService::supervisorLoop()
{
    const auto interval =
        std::chrono::milliseconds(cfg_.supervision.checkpointIntervalMs);
    std::unique_lock<std::mutex> lk(supMu_);
    for (;;) {
        if (supCv_.wait_for(lk, interval, [this] { return supStop_; }))
            return;
        lk.unlock();
        try {
            refreshRecoveryPoints();
        } catch (...) {
            // A failed capture leaves the previous recovery point in
            // place; the next tick retries. Shard-level causes surface
            // through shardReport(), not by killing the supervisor.
        }
        lk.lock();
    }
}

void
ShardedOramService::debugKillWorker(u32 index)
{
    FRORAM_ASSERT(index < workers_.size(), "worker index out of range");
    Worker& w = *workers_[index];
    w.killRequested.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> g(w.mu);
        ++w.wake;
    }
    w.cv.notify_one();
}

u64
ShardedOramService::fingerprintFor(const ShardedServiceConfig& config)
{
    u64 h = 0x46524F52414D5348ULL; // "FRORAMSH"
    const auto mix = [&h](u64 v) { h = splitmix64Mix(h ^ v); };
    mix(static_cast<u64>(config.base.storage));
    mix(config.base.realAes ? 1 : 0);
    mix(static_cast<u64>(config.base.seedScheme));
    mix(config.base.seed);
    mix(config.base.z);
    return h;
}

u64
ShardedOramService::serviceFingerprint() const
{
    return fingerprintFor(cfg_);
}

std::string
ShardedOramService::manifestPath() const
{
    return cfg_.directory + "/MANIFEST";
}

std::string
ShardedOramService::snapshotPath(u32 shard, u64 generation) const
{
    return snapshotFilePath(cfg_.directory, shard, generation);
}

void
ShardedOramService::checkpoint(CheckpointScope scope)
{
    // Quiesce: block new submissions and wait out in-flight batches, so
    // every shard snapshot is taken at one consistent service point.
    std::unique_lock<std::shared_mutex> gate(gate_);
    waitIdle();

    if (cfg_.directory.empty())
        fatal("sharded checkpoint needs ShardedServiceConfig::"
              "directory");
    for (u32 s = 0; s < numShards_; ++s) {
        std::lock_guard<std::mutex> g(shards_[s]->healthMu);
        if (shards_[s]->health == ShardHealth::Quarantined)
            fatal("refusing to checkpoint: shard ", s,
                  " is quarantined: ", shards_[s]->lastError);
    }
    // Volatile backends have no shard files; this just creates the
    // directory (and validates it is ours) on first use.
    if (cfg_.base.backend != StorageBackendKind::MmapFile)
        prepareShardDirectory(cfg_.directory, numShards_,
                              /*reset=*/false);

    const bool journaled = cfg_.supervision.journal.enabled;
    if (journaled) {
        // A journaled generation anchors REPLAY: open() restores the
        // blob and drives the journal suffix forward, which only a
        // Full-scope restore can back. (TrustedOnly blobs anchor a
        // divergence *check* against the live data plane instead — a
        // replay-advanced state would always be rejected by it.)
        if (scope == CheckpointScope::TrustedOnly)
            fatal("a journaled service checkpoints CheckpointScope::"
                  "Full only: a TrustedOnly anchor cannot back journal "
                  "replay");
        scope = CheckpointScope::Full;
    }

    const u64 gen = generation_ + 1;
    std::vector<std::vector<u8>> blobs(numShards_);
    std::vector<std::vector<u8>> tags;
    std::vector<u64> sizes;
    std::vector<u64> marks(numShards_, 0);
    tags.reserve(numShards_);
    sizes.reserve(numShards_);
    for (u32 s = 0; s < numShards_; ++s) {
        ShardState& st = *shards_[s];
        if (journaled) {
            // Quiesced: every batch completed, so every parked record
            // was group-committed — the journal is exactly caught up
            // with the state being sealed.
            FRORAM_ASSERT(st.pendingAck.empty(),
                          "quiesced service holds parked acks");
            marks[s] = st.journal->lastDurable();
            FRORAM_ASSERT(marks[s] == st.journal->lastAppended(),
                          "quiesced journal holds unsynced records");
        }
        blobs[s] = st.sys->checkpoint(scope);
        ckpt::writeFileAtomic(snapshotPath(s, gen), blobs[s]);
        tags.push_back(ckpt::sealedTag(blobs[s]));
        sizes.push_back(blobs[s].size());
    }

    CheckpointWriter w;
    w.begin(ckpt::kTagManifest);
    w.putU32(kManifestVersion);
    w.putU32(numShards_);
    w.putU32(static_cast<u32>(cfg_.scheme));
    w.putU32(static_cast<u32>(cfg_.base.backend));
    w.putU64(numBlocks_);
    w.putU64(dataBlockBytes_);
    w.putU64(gen);
    w.putU32(journaled ? 1 : 0);
    for (u32 s = 0; s < numShards_; ++s) {
        w.putU64(shards_[s]->sys->configFingerprint());
        w.putBytes(tags[s].data(), tags[s].size());
        w.putU64(sizes[s]);
        w.putU64(marks[s]); // journal watermark (0 when unjournaled)
    }
    w.end();
    // Commit point: only this rename makes generation `gen` current; a
    // crash before it leaves the previous generation fully restorable.
    ckpt::writeFileAtomic(manifestPath(),
                          ckpt::seal(w.bytes(), manifestMac_,
                                     serviceFingerprint()));

    if (generation_ != 0)
        for (u32 s = 0; s < numShards_; ++s)
            std::remove(snapshotPath(s, generation_).c_str());
    generation_ = gen;

    if (journaled) {
        // The sealed generation IS a recovery point: adopt it as the
        // in-memory one and GC every journal segment it covers — both
        // rollback (from memWatermark) and reopen (from
        // durableWatermark) now need nothing older.
        for (u32 s = 0; s < numShards_; ++s) {
            ShardState& st = *shards_[s];
            st.durableWatermark = marks[s];
            st.memWatermark = marks[s];
            st.recoveryBlob = std::move(blobs[s]);
            st.journal->truncateThrough(marks[s]);
        }
    }
}

std::unique_ptr<ShardedOramService>
ShardedOramService::open(ShardedServiceConfig config)
{
    if (config.directory.empty())
        fatal("ShardedOramService::open needs a service directory");

    // Stage 1 — authenticate + parse the manifest, using only key
    // material derived from the config (no shard is constructed yet).
    u8 key[16];
    deriveKey(config.base.seed, kManifestKdfLabel, key);
    Mac mac(key);
    const u64 fp = fingerprintFor(config);
    const std::string mpath = config.directory + "/MANIFEST";
    const std::vector<u8> payload =
        ckpt::unseal(ckpt::readFile(mpath), mac, fp);
    CheckpointReader r(payload.data(), payload.size());
    r.enter(ckpt::kTagManifest);
    if (r.getU32() != kManifestVersion)
        throw CheckpointError("unsupported shard manifest version");
    const u32 m_shards = r.getU32();
    const u32 m_scheme = r.getU32();
    const u32 m_backend = r.getU32();
    const u64 m_blocks = r.getU64();
    const u64 m_block_bytes = r.getU64();
    const u64 m_gen = r.getU64();
    const u32 m_journaled = r.getU32();
    if (m_shards != config.numShards)
        throw CheckpointError(
            "manifest records " + std::to_string(m_shards) +
            " shards but this service is configured for " +
            std::to_string(config.numShards));
    if (m_scheme != static_cast<u32>(config.scheme) ||
        m_backend != static_cast<u32>(config.base.backend))
        throw CheckpointError(
            "manifest was written under a different scheme or backend "
            "kind");
    const u64 cfg_block_bytes =
        config.scheme == SchemeId::Phantom
            ? config.base.phantomBlockBytes
            : config.base.blockBytes;
    if (m_block_bytes != cfg_block_bytes ||
        m_blocks != config.base.capacityBytes / cfg_block_bytes)
        throw CheckpointError(
            "manifest was written for a different capacity or block "
            "size");
    struct ShardPin {
        u64 fingerprint;
        std::vector<u8> tag;
        u64 bytes;
        u64 watermark;
    };
    std::vector<ShardPin> pins(m_shards);
    for (u32 s = 0; s < m_shards; ++s) {
        pins[s].fingerprint = r.getU64();
        pins[s].tag.resize(ckpt::kTagBytes);
        r.getBytes(pins[s].tag.data(), pins[s].tag.size());
        pins[s].bytes = r.getU64();
        pins[s].watermark = r.getU64();
    }
    r.exit();
    r.expectEnd();
    if (m_journaled != 0 && !config.supervision.journal.enabled)
        throw CheckpointError(
            "manifest records a journaled service; open it with "
            "supervision.journal.enabled so the journal suffix past "
            "the checkpoint is replayed, not silently dropped");

    // Stage 2 — pre-validate the directory so a partially written (or
    // partially deleted) service fails *before* any file is created or
    // any shard constructed: open() never clobbers what it rejects.
    const bool mmap =
        config.base.backend == StorageBackendKind::MmapFile;
    if (mmap && countShardBackendFiles(config.directory) != m_shards)
        throw CheckpointError(
            "service directory does not hold exactly " +
            std::to_string(m_shards) + " shard backend files");
    for (u32 s = 0; s < m_shards; ++s)
        if (!ckpt::fileExists(snapshotFilePath(config.directory, s,
                                               m_gen)))
            throw CheckpointError(
                "snapshot of shard " + std::to_string(s) +
                " (generation " + std::to_string(m_gen) +
                ") is missing");

    // Stage 3 — construct over the existing backends and restore every
    // shard. Any failure destroys the half-built service wholesale; a
    // caller never observes a service with a mix of restored and fresh
    // shards.
    config.base.backendReset = false;
    std::unique_ptr<ShardedOramService> svc(
        new ShardedOramService(config, /*opening=*/true));
    svc->generation_ = m_gen;
    for (u32 s = 0; s < m_shards; ++s) {
        const std::vector<u8> blob =
            ckpt::readFile(snapshotFilePath(config.directory, s,
                                            m_gen));
        if (blob.size() != pins[s].bytes ||
            ckpt::sealedTag(blob) != pins[s].tag)
            throw CheckpointError(
                "snapshot of shard " + std::to_string(s) +
                " does not match the manifest (rolled back, swapped "
                "or corrupt)");
        if (svc->shards_[s]->sys->configFingerprint() !=
            pins[s].fingerprint)
            throw CheckpointError(
                "shard " + std::to_string(s) +
                " configuration fingerprint mismatch");
        svc->shards_[s]->sys->restore(blob);
    }

    // Stage 4 (journaled) — arm each shard's journal and replay its
    // suffix past the manifest watermark through the same submit()
    // path; determinism makes the result bit-identical to the
    // pre-crash shard, so every acknowledged request survives even a
    // kill -9 with no final checkpoint (RPO = 0). No requests can be
    // in flight here (the service has not been returned yet), so the
    // workers' ownership of journal state has not begun.
    if (config.supervision.journal.enabled) {
        for (u32 s = 0; s < m_shards; ++s) {
            ShardState& st = *svc->shards_[s];
            auto j = std::make_unique<RequestJournal>(
                config.directory, s, config.supervision.journal,
                config.supervision.retry, svc->scheduleFor(s),
                /*reset=*/m_journaled == 0);
            const u64 from = m_journaled != 0 ? pins[s].watermark : 0;
            u64 replayed = 0;
            if (m_journaled != 0) {
                if (j->lastAppended() < from)
                    throw CheckpointError(
                        "journal of shard " + std::to_string(s) +
                        " ends at record " +
                        std::to_string(j->lastAppended()) +
                        " but the manifest pins watermark " +
                        std::to_string(from) +
                        " (journal rolled back, truncated or deleted)");
                if (j->lastAppended() > from &&
                    j->firstAvailable() > from + 1)
                    throw CheckpointError(
                        "journal of shard " + std::to_string(s) +
                        " is missing segments: replay must start after "
                        "record " + std::to_string(from) +
                        " but the oldest record on disk is " +
                        std::to_string(j->firstAvailable()));
                try {
                    AccessResult scratch;
                    j->replay(from, j->lastAppended(),
                              [&](const JournalRecord& rec) {
                                  AccessRequest ar;
                                  ar.addr = rec.addr;
                                  ar.isWrite = rec.isWrite;
                                  ar.writeData = rec.isWrite &&
                                                         !rec.payload
                                                              .empty()
                                                     ? &rec.payload
                                                     : nullptr;
                                  st.sys->submit(&ar, &scratch, 1);
                                  ++replayed;
                              });
                } catch (const std::exception& e) {
                    throw CheckpointError(
                        "journal replay of shard " + std::to_string(s) +
                        " failed: " + e.what());
                }
            }
            st.journal = std::move(j);
            st.durableWatermark = m_journaled != 0 ? from : ~u64{0};
            st.memWatermark = st.journal->lastDurable();
            // The replayed state is the new recovery point (rollback
            // must never land before what open() already replayed).
            st.recoveryBlob = st.sys->checkpoint(CheckpointScope::Full);
            {
                std::lock_guard<std::mutex> g(st.healthMu);
                st.lastReplayDepth = replayed;
            }
            if (m_journaled != 0)
                st.journal->truncateThrough(
                    std::min(st.memWatermark, st.durableWatermark));
        }
        if (m_journaled == 0)
            // First journaled open of a pre-journal service: commit a
            // journaled (v2, watermarked) generation NOW, so the
            // RPO = 0 contract holds from the moment open() returns.
            svc->checkpoint(CheckpointScope::Full);
    }

    // The opening constructor defers the recovery-point supervisor so
    // no capture can race the restores above; start it now.
    if (config.supervision.checkpointIntervalMs != 0)
        svc->supervisor_ = std::thread([p = svc.get()] {
            p->supervisorLoop();
        });
    return svc;
}

} // namespace froram
