/**
 * @file
 * Sharded multi-threaded ORAM service.
 *
 * A ShardedOramService PRF-partitions a block address space across N
 * independent OramSystem shards — each with its own storage region (or
 * backing file), domain-separated cipher/MAC keys, stash, PLB and
 * integrity counters — and drives them from a fixed worker-thread pool
 * behind an asynchronous batched API.
 *
 * Address → shard mapping. An address a splits into a *group*
 * g = a / N and a *lane* l = a % N; the shard is (l + PRF_K(g)) mod N
 * and the shard-local address is g. For every group the N lanes land on
 * N distinct shards (a keyed rotation), so the map is a bijection onto
 * shard-local addresses, every shard holds exactly ⌈blocks/N⌉ slots,
 * and which shard serves a given address is pseudorandom to anyone
 * without K. Obliviousness is preserved *per shard*: each shard is an
 * unmodified OramSystem whose access sequence is independent of the
 * data accessed; what the service adds is only the (standard for
 * partitioned ORAMs) shard-choice channel, which under the PRF is a
 * keyed rotation of the public lane index.
 *
 * Threading model. Shard s is owned by worker s mod W: every request
 * for a shard is executed by one thread, in exactly the order it was
 * submitted (per-shard MPSC queue, single consumer). Hence results and
 * per-shard adversary traces are bit-identical for any worker count,
 * per-address completion order equals submission order, and no lock is
 * ever taken around OramSystem internals. submit()/access() are safe
 * from any number of threads.
 *
 * Persistence. With the mmap backend each shard gets its own backing
 * file under a service directory (`shard-NNNN.oram`). checkpoint()
 * quiesces the pool, writes one sealed per-shard snapshot
 * (`shard-NNNN.gG.ckpt`, atomic each) and then commits a sealed
 * MANIFEST recording the generation and every snapshot's MAC tag — the
 * manifest rename is the commit point, so a crash anywhere leaves the
 * previous generation fully intact. open() verifies the manifest, that
 * every shard file and snapshot of the recorded generation exists and
 * carries the exact tag the manifest pinned (an individually
 * rolled-back shard snapshot is rejected), and then restores all
 * shards, or fails without leaving a half-open service.
 *
 * Supervision (see README "Fault model & recovery"). Each shard has a
 * health state: Healthy → Degraded (transient storage faults were
 * absorbed by the retry layer; cleared after a configurable streak of
 * clean accesses) → Quarantined (a storage/integrity fault escaped and
 * the shard's OramSystem fail-stopped). A quarantined shard fails its
 * address slice with typed per-request errors while sibling shards keep
 * serving; its owning worker then rolls it back to its last in-memory
 * recovery point (a sealed Full-scope snapshot captured by
 * refreshRecoveryPoints() or the periodic supervisor thread), failing —
 * never replaying — every request queued in the gap, and re-admits it
 * as Degraded. Rollback discards all writes since the recovery point:
 * the RPO is bounded by the recovery-point cadence. A shard with no
 * recovery point, an exhausted recovery budget, or a lost worker
 * thread is quarantined permanently. Faults surface as
 * ShardAccessResult::status (the future always resolves); only
 * non-fault exceptions — library bugs, misuse — reject the future.
 *
 * Journaled mode (SupervisionConfig::journal.enabled; see
 * src/journal/request_journal.hpp). Every request is appended to a
 * per-shard write-ahead journal BEFORE execution, and its future
 * completes only after a group-commit barrier covers its record
 * (append-then-ack). That upgrades rollback from bounded-RPO to
 * lossless: recovery restores the last recovery point and REPLAYS the
 * durable journal suffix through the same submit() path — determinism
 * makes the recovered shard bit-identical (values, traces, checkpoint
 * blobs) to one that never faulted, and gap requests succeed instead of
 * failing typed. checkpoint()/open() carry a per-shard journal
 * watermark in the (v2) manifest, so a kill -9'd process reopens with
 * zero acknowledged requests lost: replay covers everything past the
 * sealed generation. Journal-off services take this path nowhere — the
 * hot path is unchanged.
 */
#ifndef FRORAM_SHARD_SHARDED_SERVICE_HPP
#define FRORAM_SHARD_SHARDED_SERVICE_HPP

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/oram_system.hpp"
#include "journal/request_journal.hpp"
#include "shard/request_queue.hpp"

namespace froram {

/** Per-shard health state (see file comment). */
enum class ShardHealth : u32 {
    Healthy,    ///< serving, no recent transient faults
    Degraded,   ///< serving, but transient faults were absorbed recently
    Quarantined ///< fail-stopped; address slice fails typed until
                ///  rollback re-admits it (or permanently)
};

const char* toString(ShardHealth health);

/** Typed outcome of one request (ShardAccessResult::status). */
enum class RequestStatus : u32 {
    Ok,             ///< result holds the access outcome
    StorageFault,   ///< a StorageError escaped the retry budget
    IntegrityFault, ///< PMMAC/MAC verification failed (tampering)
    Quarantined,    ///< the shard was quarantined when the request ran
    Deadline,       ///< the per-request deadline expired before service
    WorkerLost      ///< the owning worker thread died
};

const char* toString(RequestStatus status);

/** Supervision knobs (operational — never part of any fingerprint). */
struct SupervisionConfig {
    /** Transient-fault retry policy for every shard's storage (applies
     *  when fault plumbing is armed; see StorageBackendConfig). */
    RetryPolicy retry{};
    /** Rollback budget per shard; exhausted = permanent quarantine. */
    u32 maxRecoveries = 8;
    /** Clean accesses that promote Degraded back to Healthy. */
    u32 healthyStreak = 128;
    /** Periodic in-memory recovery-point cadence in milliseconds
     *  (0 = none; capture via refreshRecoveryPoints() instead). This
     *  bounds the RPO: rollback loses at most one interval of writes
     *  (journaled shards lose nothing — replay covers the interval). */
    u64 checkpointIntervalMs = 0;
    /** Per-shard request journaling (RPO = 0 when enabled; see the
     *  file comment and src/journal/request_journal.hpp). Off by
     *  default: the unjournaled hot path keeps zero added cost. */
    JournalConfig journal{};
};

/** Configuration of a ShardedOramService. */
struct ShardedServiceConfig {
    SchemeId scheme = SchemeId::PlbCompressed;
    /**
     * Per-shard system template. `capacityBytes` is the TOTAL service
     * capacity (divided across shards); `seed` is the service master
     * seed (each shard derives a domain-separated seed, so no two
     * shards share cipher, PRF, MAC or remapping-RNG key material);
     * `backendPath`/`backendReset` are ignored for mmap — the service
     * carves one file per shard under `directory` instead.
     */
    OramSystemConfig base{};
    u32 numShards = 4;
    /** Worker threads; 0 = min(numShards, hardware threads). Capped at
     *  64 and at numShards (extra workers would never own a shard). */
    u32 numWorkers = 0;
    /** Service directory: mmap shard files + checkpoint snapshots.
     *  Required for the mmap backend and for checkpoint()/open(). */
    std::string directory;
    /** Health/retry/recovery policy (see SupervisionConfig). */
    SupervisionConfig supervision{};
    /** Per-shard fault schedules (tests/chaos): schedule s, when
     *  present and non-null, arms fault injection on shard s's storage.
     *  base.faultSchedule, when set, applies to ALL shards instead. */
    std::vector<std::shared_ptr<FaultSchedule>> shardFaultSchedules;
};

/** One access request; writes own their payload (empty = zero-fill). */
struct ShardRequest {
    Addr addr = 0;
    bool isWrite = false;
    std::vector<u8> writeData;
    /** Fail the request typed (RequestStatus::Deadline) if it has not
     *  started service this many microseconds after submit() (0 =
     *  no deadline). Expiry is checked when the owning worker picks
     *  the request up, so a deadline never interrupts an access. */
    u64 deadlineUs = 0;
};

/** Completion record for one request of a batch. */
struct ShardAccessResult {
    u32 shard = 0;           ///< shard that served the request
    Addr addr = 0;           ///< global address (as submitted)
    RequestStatus status = RequestStatus::Ok;
    std::string error;       ///< diagnostic when status != Ok
    FrontendResult result{}; ///< payload + accounting (status == Ok)
};

/** PRF-partitioned multi-threaded ORAM service (see file comment). */
class ShardedOramService {
  public:
    using BatchResult = std::vector<ShardAccessResult>;

    explicit ShardedOramService(const ShardedServiceConfig& config);
    ~ShardedOramService();

    ShardedOramService(const ShardedOramService&) = delete;
    ShardedOramService& operator=(const ShardedOramService&) = delete;

    /**
     * Enqueue a batch of requests and return a future for the full
     * batch (results in submission order). Requests are routed to their
     * shards and executed concurrently across shards, FIFO within each
     * shard.
     *
     * Fault semantics: storage/integrity faults, quarantine, expired
     * deadlines and lost workers surface as per-request
     * ShardAccessResult::status values — the future still resolves with
     * set_value, and sibling shards (and unaffected requests of the
     * same batch) complete normally. The future only rethrows for
     * NON-fault exceptions (PanicError and friends: a library bug, not
     * a storage fault). It never hangs: every enqueued request is
     * eventually finished by its worker, the worker-death guard, or
     * the submit-side closed-queue path.
     *
     * Addresses are validated here — an out-of-range address throws
     * FatalError immediately and enqueues nothing.
     */
    std::future<BatchResult> submit(std::vector<ShardRequest> batch);

    /**
     * Unified-surface overload: the Frontend/OramSystem AccessRequest
     * span form. Payloads are copied into the owned ShardRequest batch
     * (the async service outlives the caller's buffers); prefetchOnly
     * entries are not supported here and throw FatalError — hinting is
     * the shard workers' job.
     */
    std::future<BatchResult> submit(const AccessRequest* reqs, size_t n);

    /** Blocking convenience wrapper preserving OramSystem::access
     *  semantics for a single request (routed through the pool;
     *  deprecated thin wrapper over submit()). Non-Ok statuses are
     *  rethrown typed: IntegrityViolation for IntegrityFault,
     *  StorageError otherwise. */
    FrontendResult access(Addr addr, bool is_write,
                          const std::vector<u8>* write_data = nullptr);

    /** Block until every submitted batch has completed. */
    void drain();

    /** @name Supervision @{ */

    /** Health snapshot of one shard (any thread). */
    ShardHealth shardHealth(u32 index) const;

    /** Aggregate supervision counters of one shard (any thread). */
    struct ShardHealthReport {
        ShardHealth health = ShardHealth::Healthy;
        u64 transientFaults = 0; ///< retries absorbed by the backend
        u64 recoveries = 0;      ///< rollbacks performed
        bool hasRecoveryPoint = false;
        std::string lastError;   ///< most recent fault diagnostic
        bool journaled = false;  ///< request journaling armed
        /** Journal lag: records appended but not yet group-committed
         *  (their futures are still parked; 0 when idle). */
        u64 journalLagRecords = 0;
        /** Records replayed by the most recent rollback or open(). */
        u64 lastReplayDepth = 0;
        /** Wall-clock of the most recent journaled rollback, ms. */
        u64 lastRecoveryMs = 0;
    };
    ShardHealthReport shardReport(u32 index) const;

    /**
     * Capture a fresh in-memory recovery point (sealed Full-scope
     * snapshot) for every serving shard and block until all are taken.
     * Runs on the worker threads — one shard at a time per worker, in
     * queue order with normal requests — so the service keeps serving
     * while the points are captured (no global quiesce). Quarantined
     * shards keep their previous point. This is what rollback restores
     * to; the periodic supervisor thread (checkpointIntervalMs) calls
     * it on a cadence to bound the RPO.
     */
    void refreshRecoveryPoints();

    /**
     * TEST HOOK: make worker `index` die (throw) at its next loop
     * iteration, exercising the worker-death guard: all in-flight and
     * queued requests of its shards fail with RequestStatus::WorkerLost
     * and the shards are permanently quarantined. Not for production.
     */
    void debugKillWorker(u32 index);
    /** @} */

    /** @name Geometry / introspection @{ */
    u32 numShards() const { return numShards_; }
    u32 numWorkers() const { return static_cast<u32>(workers_.size()); }
    u64 numBlocks() const { return numBlocks_; }
    /** Shard serving global address `addr` (the keyed rotation). */
    u32 shardOf(Addr addr) const;
    /** Shard-local address of global address `addr` (its group). */
    Addr shardLocalAddr(Addr addr) const { return addr / numShards_; }
    /** Direct access to one shard system (tests/benches; only safe
     *  while no requests are in flight — call drain() first). */
    OramSystem& shard(u32 index);
    const ShardedServiceConfig& config() const { return cfg_; }
    /** @} */

    /** @name Checkpoint / resume
     *
     * checkpoint() blocks new submissions, waits for in-flight batches,
     * snapshots every shard and atomically commits the manifest (the
     * previous generation stays restorable until then). open() resumes
     * a persisted service in a fresh process, verifying the manifest
     * and every pinned snapshot before any shard state is applied; all
     * failure modes raise CheckpointError (or FatalError for a torn
     * shard directory) and never yield a half-open service.
     *
     * Journaled services checkpoint Full scope only (scope Auto is
     * forced to Full; explicit TrustedOnly is fatal — a TrustedOnly
     * anchor cannot back journal replay), record a per-shard journal
     * watermark in the manifest, and GC journal segments the sealed
     * generation covers. open() then replays each shard's journal
     * suffix past its watermark, so acknowledged requests survive even
     * a kill -9 with no final checkpoint. A journaled manifest refuses
     * to open with journaling disabled (the suffix would be silently
     * dropped); an unjournaled manifest opened WITH journaling starts
     * fresh journals and immediately commits a journaled generation.
     * @{ */
    void checkpoint(CheckpointScope scope = CheckpointScope::Auto);
    static std::unique_ptr<ShardedOramService>
    open(ShardedServiceConfig config);

    /** Manifest envelope fingerprint (service-shape digest). */
    u64 serviceFingerprint() const;
    /** Snapshot generation last committed or opened (0 = none). */
    u64 generation() const { return generation_; }
    /** @} */

  private:
    struct Batch;

    /** Recovery-point capture job (counts as one pending batch). */
    struct SnapshotJob {
        std::promise<void> done;
    };

    /** Routing entry: one request of one batch, or (when `snap` is
     *  set) a recovery-point control entry for the shard. */
    struct QueueEntry {
        std::shared_ptr<Batch> batch;
        u32 index = 0;
        std::shared_ptr<SnapshotJob> snap;
    };

    /** Per-shard state. `sys`, `recoveryBlob` and the supervision
     *  counters are touched only by the owning worker once requests
     *  flow (construction/checkpoint access is gated + drained);
     *  `health`/`lastError`/`recoveries` are additionally readable from
     *  any thread under `healthMu`. */
    struct ShardState {
        std::unique_ptr<OramSystem> sys;
        MpscQueue<QueueEntry> queue;
        u32 worker = 0;

        mutable std::mutex healthMu;
        ShardHealth health = ShardHealth::Healthy; ///< under healthMu
        bool permanent = false; ///< quarantine is final (under healthMu)
        std::string lastError;  ///< under healthMu
        u64 recoveries = 0;     ///< under healthMu

        /** Last sealed Full-scope snapshot (empty = no recovery point);
         *  owning worker only. */
        std::vector<u8> recoveryBlob;
        bool needsRecovery = false;  ///< owning worker only
        u64 lastRetries = 0;         ///< storageRetries() watermark
        u64 cleanStreak = 0;         ///< consecutive clean accesses

        /** Request journal (null = unjournaled hot path). Owned by the
         *  worker once requests flow; ctor/checkpoint()/open() touch it
         *  only with the pool quiesced. */
        std::unique_ptr<RequestJournal> journal;
        /** Appended-but-unacked entries as (seq, entry), in sequence
         *  order (owning worker only). Futures complete only once a
         *  barrier covers their record — append-then-ack. */
        std::vector<std::pair<u64, QueueEntry>> pendingAck;
        /** Journal seq recoveryBlob corresponds to (owning worker). */
        u64 memWatermark = 0;
        /** Journal seq the last sealed on-disk generation corresponds
         *  to (~0 = none committed yet); touched only quiesced. */
        u64 durableWatermark = ~u64{0};
        u64 lastReplayDepth = 0; ///< under healthMu
        u64 lastRecoveryMs = 0;  ///< under healthMu
    };

    struct Worker {
        std::mutex mu;
        std::condition_variable cv;
        u64 wake = 0; ///< pending wakeups (guarded by mu)
        std::vector<u32> shards;
        std::thread thread;
        std::atomic<bool> killRequested{false}; ///< debugKillWorker
        /** Popped-but-unserviced entries, exposed as members so the
         *  death guard can fail what the loop had in flight. */
        std::vector<QueueEntry> local;
        size_t localPos = 0;
    };

    ShardedOramService(const ShardedServiceConfig& config, bool opening);

    /** serviceFingerprint(), computable before any shard exists. */
    static u64 fingerprintFor(const ShardedServiceConfig& config);

    /** Per-shard OramSystemConfig (ctor and rollback reconstruction). */
    OramSystemConfig shardConfig(u32 shard, bool opening) const;

    void workerLoop(Worker& w);
    /** Everything after a worker thread leaves workerLoop abnormally:
     *  permanently quarantine its shards, close + fail their queues. */
    void onWorkerDeath(Worker& w, const std::string& why);
    /** Service one popped request; `next` (the following request popped
     *  for the same shard, if any) gets its path prefetch issued first
     *  so storage fetch overlaps this request's compute. */
    void process(u32 shard_index, QueueEntry& entry,
                 const QueueEntry* next = nullptr);
    /** Fail one entry typed without touching the shard (quarantine /
     *  deadline / worker-death paths). */
    void failEntry(QueueEntry& entry, RequestStatus status,
                   const std::string& why);
    /** Quarantine + immediate fault bookkeeping (owning worker). */
    void quarantineShard(u32 shard_index, RequestStatus status,
                         const std::string& why);
    /** Attempt rollback of a quarantined shard to its recovery point
     *  (owning worker, queue drained). */
    void recoverShard(u32 shard_index);
    /** Effective fault schedule of one shard (the journal shares it
     *  with the shard's data plane, so chaos scripts target either). */
    std::shared_ptr<FaultSchedule> scheduleFor(u32 shard) const;
    /** Group commit + ack release: barrier the shard's journal, then
     *  finish every parked entry. A failed barrier falls through to
     *  recoverJournaled. Never throws (owning worker). */
    void flushJournal(u32 shard_index);
    /** flushJournal when the group-commit thresholds say so. */
    void maybeFlushJournal(u32 shard_index);
    /** Journaled rollback (inline, owning worker): restore the
     *  recovery point, replay the durable journal suffix through
     *  submit(), then ack every parked request the replay covered and
     *  fail (typed) the ones past the durable tail. Returns false when
     *  the shard quarantined permanently instead. */
    bool recoverJournaled(u32 shard_index, RequestStatus status,
                          const std::string& why);
    void finishOne(Batch& b);
    void waitIdle(); ///< pendingBatches_ == 0 (caller holds no locks)
    void supervisorLoop();

    std::string manifestPath() const;
    std::string snapshotPath(u32 shard, u64 generation) const;

    ShardedServiceConfig cfg_;
    u32 numShards_ = 0;
    u64 numBlocks_ = 0;
    u64 dataBlockBytes_ = 0;
    Prf mapPrf_;        ///< address → shard rotation (dedicated key)
    Mac manifestMac_;   ///< manifest envelope key (dedicated KDF label)
    u64 generation_ = 0;

    std::vector<std::unique_ptr<ShardState>> shards_;
    std::vector<std::unique_ptr<Worker>> workers_;

    /** Submission gate: submit() holds it shared; checkpoint() and the
     *  destructor hold it exclusively to quiesce the pool. */
    std::shared_mutex gate_;
    bool stopping_ = false; ///< guarded by gate_ (exclusive to set)

    std::atomic<bool> stop_{false};
    std::mutex pendMu_;
    std::condition_variable pendCv_;
    u64 pendingBatches_ = 0; ///< guarded by pendMu_

    /** Periodic recovery-point supervisor (checkpointIntervalMs > 0). */
    std::thread supervisor_;
    std::mutex supMu_;
    std::condition_variable supCv_;
    bool supStop_ = false; ///< guarded by supMu_
};

} // namespace froram

#endif // FRORAM_SHARD_SHARDED_SERVICE_HPP
