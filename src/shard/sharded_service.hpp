/**
 * @file
 * Sharded multi-threaded ORAM service.
 *
 * A ShardedOramService PRF-partitions a block address space across N
 * independent OramSystem shards — each with its own storage region (or
 * backing file), domain-separated cipher/MAC keys, stash, PLB and
 * integrity counters — and drives them from a fixed worker-thread pool
 * behind an asynchronous batched API.
 *
 * Address → shard mapping. An address a splits into a *group*
 * g = a / N and a *lane* l = a % N; the shard is (l + PRF_K(g)) mod N
 * and the shard-local address is g. For every group the N lanes land on
 * N distinct shards (a keyed rotation), so the map is a bijection onto
 * shard-local addresses, every shard holds exactly ⌈blocks/N⌉ slots,
 * and which shard serves a given address is pseudorandom to anyone
 * without K. Obliviousness is preserved *per shard*: each shard is an
 * unmodified OramSystem whose access sequence is independent of the
 * data accessed; what the service adds is only the (standard for
 * partitioned ORAMs) shard-choice channel, which under the PRF is a
 * keyed rotation of the public lane index.
 *
 * Threading model. Shard s is owned by worker s mod W: every request
 * for a shard is executed by one thread, in exactly the order it was
 * submitted (per-shard MPSC queue, single consumer). Hence results and
 * per-shard adversary traces are bit-identical for any worker count,
 * per-address completion order equals submission order, and no lock is
 * ever taken around OramSystem internals. submit()/access() are safe
 * from any number of threads.
 *
 * Persistence. With the mmap backend each shard gets its own backing
 * file under a service directory (`shard-NNNN.oram`). checkpoint()
 * quiesces the pool, writes one sealed per-shard snapshot
 * (`shard-NNNN.gG.ckpt`, atomic each) and then commits a sealed
 * MANIFEST recording the generation and every snapshot's MAC tag — the
 * manifest rename is the commit point, so a crash anywhere leaves the
 * previous generation fully intact. open() verifies the manifest, that
 * every shard file and snapshot of the recorded generation exists and
 * carries the exact tag the manifest pinned (an individually
 * rolled-back shard snapshot is rejected), and then restores all
 * shards, or fails without leaving a half-open service.
 */
#ifndef FRORAM_SHARD_SHARDED_SERVICE_HPP
#define FRORAM_SHARD_SHARDED_SERVICE_HPP

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/oram_system.hpp"
#include "shard/request_queue.hpp"

namespace froram {

/** Configuration of a ShardedOramService. */
struct ShardedServiceConfig {
    SchemeId scheme = SchemeId::PlbCompressed;
    /**
     * Per-shard system template. `capacityBytes` is the TOTAL service
     * capacity (divided across shards); `seed` is the service master
     * seed (each shard derives a domain-separated seed, so no two
     * shards share cipher, PRF, MAC or remapping-RNG key material);
     * `backendPath`/`backendReset` are ignored for mmap — the service
     * carves one file per shard under `directory` instead.
     */
    OramSystemConfig base{};
    u32 numShards = 4;
    /** Worker threads; 0 = min(numShards, hardware threads). Capped at
     *  64 and at numShards (extra workers would never own a shard). */
    u32 numWorkers = 0;
    /** Service directory: mmap shard files + checkpoint snapshots.
     *  Required for the mmap backend and for checkpoint()/open(). */
    std::string directory;
};

/** One access request; writes own their payload (empty = zero-fill). */
struct ShardRequest {
    Addr addr = 0;
    bool isWrite = false;
    std::vector<u8> writeData;
};

/** Completion record for one request of a batch. */
struct ShardAccessResult {
    u32 shard = 0;           ///< shard that served the request
    Addr addr = 0;           ///< global address (as submitted)
    FrontendResult result{}; ///< payload + accounting from the shard
};

/** PRF-partitioned multi-threaded ORAM service (see file comment). */
class ShardedOramService {
  public:
    using BatchResult = std::vector<ShardAccessResult>;

    explicit ShardedOramService(const ShardedServiceConfig& config);
    ~ShardedOramService();

    ShardedOramService(const ShardedOramService&) = delete;
    ShardedOramService& operator=(const ShardedOramService&) = delete;

    /**
     * Enqueue a batch of requests and return a future for the full
     * batch (results in submission order). Requests are routed to their
     * shards and executed concurrently across shards, FIFO within each
     * shard. If any request throws (e.g. IntegrityViolation), the
     * future rethrows the first error and the offending shard refuses
     * further requests (wedged); other shards keep serving.
     *
     * Addresses are validated here — an out-of-range address throws
     * FatalError immediately and enqueues nothing.
     */
    std::future<BatchResult> submit(std::vector<ShardRequest> batch);

    /**
     * Unified-surface overload: the Frontend/OramSystem AccessRequest
     * span form. Payloads are copied into the owned ShardRequest batch
     * (the async service outlives the caller's buffers); prefetchOnly
     * entries are not supported here and throw FatalError — hinting is
     * the shard workers' job.
     */
    std::future<BatchResult> submit(const AccessRequest* reqs, size_t n);

    /** Blocking convenience wrapper preserving OramSystem::access
     *  semantics for a single request (routed through the pool;
     *  deprecated thin wrapper over submit()). */
    FrontendResult access(Addr addr, bool is_write,
                          const std::vector<u8>* write_data = nullptr);

    /** Block until every submitted batch has completed. */
    void drain();

    /** @name Geometry / introspection @{ */
    u32 numShards() const { return numShards_; }
    u32 numWorkers() const { return static_cast<u32>(workers_.size()); }
    u64 numBlocks() const { return numBlocks_; }
    /** Shard serving global address `addr` (the keyed rotation). */
    u32 shardOf(Addr addr) const;
    /** Shard-local address of global address `addr` (its group). */
    Addr shardLocalAddr(Addr addr) const { return addr / numShards_; }
    /** Direct access to one shard system (tests/benches; only safe
     *  while no requests are in flight — call drain() first). */
    OramSystem& shard(u32 index);
    const ShardedServiceConfig& config() const { return cfg_; }
    /** @} */

    /** @name Checkpoint / resume
     *
     * checkpoint() blocks new submissions, waits for in-flight batches,
     * snapshots every shard and atomically commits the manifest (the
     * previous generation stays restorable until then). open() resumes
     * a persisted service in a fresh process, verifying the manifest
     * and every pinned snapshot before any shard state is applied; all
     * failure modes raise CheckpointError (or FatalError for a torn
     * shard directory) and never yield a half-open service.
     * @{ */
    void checkpoint(CheckpointScope scope = CheckpointScope::Auto);
    static std::unique_ptr<ShardedOramService>
    open(ShardedServiceConfig config);

    /** Manifest envelope fingerprint (service-shape digest). */
    u64 serviceFingerprint() const;
    /** Snapshot generation last committed or opened (0 = none). */
    u64 generation() const { return generation_; }
    /** @} */

  private:
    struct Batch;

    /** Routing entry: one request of one batch. */
    struct QueueEntry {
        std::shared_ptr<Batch> batch;
        u32 index = 0;
    };

    /** Per-shard state; touched only by the owning worker once requests
     *  flow (construction/checkpoint access is gated + drained). */
    struct ShardState {
        std::unique_ptr<OramSystem> sys;
        MpscQueue<QueueEntry> queue;
        bool failed = false; ///< wedged by an earlier exception
        std::string failReason;
        u32 worker = 0;
    };

    struct Worker {
        std::mutex mu;
        std::condition_variable cv;
        u64 wake = 0; ///< pending wakeups (guarded by mu)
        std::vector<u32> shards;
        std::thread thread;
    };

    ShardedOramService(const ShardedServiceConfig& config, bool opening);

    /** serviceFingerprint(), computable before any shard exists. */
    static u64 fingerprintFor(const ShardedServiceConfig& config);

    void workerLoop(Worker& w);
    /** Service one popped request; `next` (the following request popped
     *  for the same shard, if any) gets its path prefetch issued first
     *  so storage fetch overlaps this request's compute. */
    void process(u32 shard_index, QueueEntry& entry,
                 const QueueEntry* next = nullptr);
    void finishOne(Batch& b);
    void waitIdle(); ///< pendingBatches_ == 0 (caller holds no locks)

    std::string manifestPath() const;
    std::string snapshotPath(u32 shard, u64 generation) const;

    ShardedServiceConfig cfg_;
    u32 numShards_ = 0;
    u64 numBlocks_ = 0;
    u64 dataBlockBytes_ = 0;
    Prf mapPrf_;        ///< address → shard rotation (dedicated key)
    Mac manifestMac_;   ///< manifest envelope key (dedicated KDF label)
    u64 generation_ = 0;

    std::vector<std::unique_ptr<ShardState>> shards_;
    std::vector<std::unique_ptr<Worker>> workers_;

    /** Submission gate: submit() holds it shared; checkpoint() and the
     *  destructor hold it exclusively to quiesce the pool. */
    std::shared_mutex gate_;
    bool stopping_ = false; ///< guarded by gate_ (exclusive to set)

    std::atomic<bool> stop_{false};
    std::mutex pendMu_;
    std::condition_variable pendCv_;
    u64 pendingBatches_ = 0; ///< guarded by pendMu_
};

} // namespace froram

#endif // FRORAM_SHARD_SHARDED_SERVICE_HPP
