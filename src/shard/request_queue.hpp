/**
 * @file
 * Finely-locked MPSC queue for shard request routing.
 *
 * Each shard owns one queue: any number of submitter threads push, and
 * exactly one worker thread (the shard's owner) drains. The single-
 * consumer discipline is what makes the service deterministic — a
 * shard's requests are executed in exactly the order they were pushed,
 * no matter how many workers the pool has — so the queue itself only
 * needs a mutex around a deque, with a swap-based bulk drain to keep
 * the consumer's lock hold time (and lock traffic per request) low.
 */
#ifndef FRORAM_SHARD_REQUEST_QUEUE_HPP
#define FRORAM_SHARD_REQUEST_QUEUE_HPP

#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace froram {

/** Multi-producer single-consumer FIFO (fine-grained lock per queue). */
template <typename T>
class MpscQueue {
  public:
    /**
     * Append one entry (any thread). Returns false — and enqueues
     * nothing — once the queue is closed: the producer must fail the
     * entry itself. This is what keeps a dead consumer from stranding
     * promises: close() + one final drain happen under the same mutex,
     * so no push can slip in between the drain and the closed state.
     */
    bool
    push(T value)
    {
        std::lock_guard<std::mutex> g(mu_);
        if (closed_)
            return false;
        q_.push_back(std::move(value));
        return true;
    }

    /** Refuse all future pushes (consumer-death teardown path). */
    void
    close()
    {
        std::lock_guard<std::mutex> g(mu_);
        closed_ = true;
    }

    /**
     * Move every queued entry onto the back of `out`, preserving FIFO
     * order (consumer thread only). Returns the number drained.
     */
    size_t
    drainTo(std::vector<T>& out)
    {
        std::deque<T> taken;
        {
            std::lock_guard<std::mutex> g(mu_);
            taken.swap(q_);
        }
        for (T& v : taken)
            out.push_back(std::move(v));
        return taken.size();
    }

    bool
    empty() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return q_.empty();
    }

  private:
    mutable std::mutex mu_;
    std::deque<T> q_;
    bool closed_ = false;
};

} // namespace froram

#endif // FRORAM_SHARD_REQUEST_QUEUE_HPP
