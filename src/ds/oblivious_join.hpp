/**
 * @file
 * ObliviousHashJoin: the composition demo — an oblivious range-probe
 * join between an ObliviousIndex (outer, range side) and an
 * ObliviousMap (inner, key side).
 *
 * run(lo, width) answers "for the first `width` index entries with
 * key >= lo, fetch the map record their value points at". A naive plan
 * leaks twice: the range scan's probe count tracks selectivity, and the
 * per-row map lookups track how many rows matched. Here both legs are
 * padded: the range leg costs index.rangeAccesses(width) and the probe
 * leg ALWAYS issues exactly `width` map lookups (rows the range didn't
 * fill probe a dummy key and are discarded in trusted memory), so the
 * total access count is a function of the public (lo-independent) width
 * only:
 *
 *   accessesPerQuery(width) = index.rangeAccesses(width)
 *                           + ObliviousMap::kAccessesPerOp * width
 *
 * The probe leg rides ObliviousMap::getBatch — one pipelined read wave
 * with prefetch hints, then one writeback wave — which is where the
 * batch engine's amortization shows up in BENCH_ds.json's join rows.
 */
#ifndef FRORAM_DS_OBLIVIOUS_JOIN_HPP
#define FRORAM_DS_OBLIVIOUS_JOIN_HPP

#include <vector>

#include "ds/oblivious_index.hpp"
#include "ds/oblivious_map.hpp"

namespace froram {

/** Tuning knobs for ObliviousHashJoin. */
struct ObliviousJoinConfig {
    /** Byte offset of the 8-byte LE foreign key inside each index
     *  value (must leave 8 bytes before the value ends). */
    u32 fkOffset = 0;
};

/** One join answer; vectors are resized to `width` slots, of which the
 *  first `rows` are live (the rest carried dummy probes). */
struct JoinOutput {
    u64 rows = 0;                ///< live rows (range results)
    std::vector<u64> indexKey;   ///< outer key per row
    std::vector<u64> fk;         ///< extracted foreign key per row
    std::vector<u8> indexValue;  ///< width * index.valueBytes() bytes
    std::vector<u8> mapValue;    ///< width * map.valueBytes() bytes
    std::vector<u8> matched;     ///< 1 where the map held the fk
};

class ObliviousHashJoin {
  public:
    ObliviousHashJoin(ObliviousIndex& index, ObliviousMap& map,
                      const ObliviousJoinConfig& config = {});

    /** Execute one join of public width; returns the matched-row count
     *  (invisible to the adversary — the schedule is fixed). `out`'s
     *  buffers are reused across calls. */
    u64 run(u64 lo, u32 width, JoinOutput& out);

    /** Exact ORAM accesses any run(_, width) performs. */
    u64
    accessesPerQuery(u32 width) const
    {
        return index_.rangeAccesses(width) +
               u64{ObliviousMap::kAccessesPerOp} * width;
    }

  private:
    ObliviousIndex& index_;
    ObliviousMap& map_;
    ObliviousJoinConfig cfg_;
    std::vector<u64> probeKeys_;
    std::vector<u8> foundFlags_;
};

} // namespace froram

#endif // FRORAM_DS_OBLIVIOUS_JOIN_HPP
