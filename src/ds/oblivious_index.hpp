/**
 * @file
 * ObliviousIndex: a sorted index with oblivious range queries of padded
 * fixed width, layered purely on Frontend::submit().
 *
 * A range query over a sorted array normally leaks its selectivity: the
 * probe count tracks how many entries matched. ObliviousIndex pads the
 * traversal so the probe count is a function of PUBLIC inputs only —
 * the index geometry and the requested width — never of the data:
 *
 *   range(lo, width) = log2ceil(numBlocks) binary-search probes
 *                      (dummy reads keep the count fixed once the
 *                      search converges or walks off the end)
 *                    + a fixed-width scan wave of consecutive blocks
 *                      sized by width + deltaCapacity, mod numBlocks
 *                      (wrapped blocks hold only keys < lo and filter
 *                      out in trusted memory).
 *
 * Two equal-width queries are therefore trace-equivalent regardless of
 * how many entries actually match (asserted in
 * tests/test_ds_obliviousness.cpp; rangeAccesses() is the closed form).
 *
 * Updates go through a trusted-memory delta buffer: insert() and
 * erase() cost ZERO ORAM accesses, and every deltaCapacity-th update op
 * triggers a rebuild — exactly numBlocks reads + numBlocks writes that
 * stream-merge the delta into the sorted array with a bounded carry
 * queue. The rebuild trigger is a public op COUNTER (not the delta's
 * fill level, which depends on key distinctness), so the rebuild
 * schedule is itself input-independent. erase() is deliberately blind
 * (void): reporting presence would require knowing it, and the delta
 * learns presence only at rebuild time.
 */
#ifndef FRORAM_DS_OBLIVIOUS_INDEX_HPP
#define FRORAM_DS_OBLIVIOUS_INDEX_HPP

#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "core/frontend.hpp"
#include "oram/types.hpp"

namespace froram {

/** Tuning knobs for ObliviousIndex. */
struct ObliviousIndexConfig {
    u32 valueBytes = 16;      ///< fixed payload width per entry
    u32 deltaCapacity = 64;   ///< update ops between rebuilds
    bool batchedProbes = true; ///< submit() waves vs naive per-probe loop
};

/**
 * Sorted index from unique u64 keys to fixed-width byte values over an
 * ORAM address region [base, base + numBlocks).
 *
 * Leakage contract: the adversary learns the number of range queries
 * with each public width, and the update op count (rebuilds fire on a
 * public counter) — never keys, values, match counts or selectivity.
 * Not thread-safe.
 */
class ObliviousIndex {
  public:
    ObliviousIndex(Frontend& fe, Addr base, u64 num_blocks,
                   const ObliviousIndexConfig& config = {});

    /** Insert or update `key` (valueBytes() bytes). Zero ORAM accesses
     *  now; every deltaCapacity-th update op triggers a rebuild
     *  (rebuildAccesses() accesses). Throws FatalError when the index
     *  is full (conservative accounting: pending upserts count). */
    void insert(u64 key, const u8* value);

    /** Blind remove: zero ORAM accesses, same rebuild schedule as
     *  insert(). No return — presence is unknown until rebuild. */
    void erase(u64 key);

    /**
     * Oblivious range query: the first `width` live entries with
     * key >= lo, in ascending key order, merged with the pending delta.
     * keys_out holds width u64s, values_out width * valueBytes() bytes;
     * returns the number of results filled (< width only when the index
     * has fewer matching entries — a count the ADVERSARY never sees;
     * the probe schedule is rangeAccesses(width) regardless).
     */
    u64 range(u64 lo, u32 width, u64* keys_out, u8* values_out);

    /** Exact ORAM accesses any range(_, width) performs — a function of
     *  public geometry + width only (asserted in tests). */
    u64 rangeAccesses(u32 width) const;

    /** Exact ORAM accesses of one rebuild: numBlocks reads + writes. */
    u64 rebuildAccesses() const { return 2 * numBlocks_; }

    /** Force a rebuild now (e.g. before measuring query-only load). */
    void flush() { rebuild(); }

    /**
     * Setup helper: load `n` strictly-increasing keys with their values
     * directly into the sorted array (numBlocks writes, clears the
     * delta). Not an oblivious op — intended for initial population.
     */
    void bulkLoad(const u64* keys, const u8* values, u64 n);

    /** Entries in the rebuilt array (pending delta not counted). */
    u64 size() const { return size_; }
    u64 capacityEntries() const { return numBlocks_ * entriesPerBlock_; }
    u32 valueBytes() const { return cfg_.valueBytes; }

    /** @name Checkpoint/restore — trusted residue (delta buffer, size,
     *  rebuild counter); geometry/config mismatches raise
     *  CheckpointError. @{ */
    void saveState(CheckpointWriter& w) const;
    void restoreState(CheckpointReader& r);
    /** @} */

  private:
    struct DeltaEntry {
        u64 key;
        std::vector<u8> value;
        bool tombstone;
    };

    void upsertDelta(u64 key, const u8* value, bool tombstone);
    void maybeRebuild();
    void rebuild();
    /** Read block `b` into blockBuf_ (one ORAM access). */
    void readBlock(u64 b);
    void writeBlock(u64 b, const std::vector<u8>& img);
    u64 entryKey(const std::vector<u8>& img, u64 slot) const;
    bool entryLive(const std::vector<u8>& img, u64 slot) const;
    /** First key of block image, or ~0 when the block is empty. */
    u64 firstKey(const std::vector<u8>& img) const;
    u64 scanBlocksFor(u32 width) const;

    Frontend& fe_;
    Addr base_;
    u64 numBlocks_;
    ObliviousIndexConfig cfg_;
    u32 entryBytes_;
    u64 entriesPerBlock_;
    u32 binProbes_; ///< fixed binary-search probe count: log2ceil(numBlocks)
    u64 size_ = 0;
    u64 updatesSinceRebuild_ = 0;
    std::vector<DeltaEntry> delta_; ///< sorted by key

    // Reused wave buffers.
    AccessResult bres_;
    std::vector<AccessRequest> scanReqs_;
    std::vector<AccessResult> scanRes_;
};

} // namespace froram

#endif // FRORAM_DS_OBLIVIOUS_INDEX_HPP
