#include "ds/oblivious_join.hpp"

#include <cstring>

namespace froram {

namespace {

/** Probe key for rows the range didn't fill. Any value works — the map
 *  issues its fixed probe schedule regardless and the result is
 *  discarded — but ~0 can never collide with a live key (ObliviousIndex
 *  reserves it, and trusted memory drops the row anyway). */
constexpr u64 kDummyProbeKey = ~u64{0};

} // namespace

ObliviousHashJoin::ObliviousHashJoin(ObliviousIndex& index,
                                     ObliviousMap& map,
                                     const ObliviousJoinConfig& config)
    : index_(index), map_(map), cfg_(config)
{
    FRORAM_ASSERT(cfg_.fkOffset + 8 <= index_.valueBytes(),
                  "foreign key does not fit inside the index value");
}

u64
ObliviousHashJoin::run(u64 lo, u32 width, JoinOutput& out)
{
    const u32 ivb = index_.valueBytes();
    const u32 mvb = map_.valueBytes();
    out.indexKey.resize(width);
    out.fk.resize(width);
    out.indexValue.resize(size_t{width} * ivb);
    out.mapValue.resize(size_t{width} * mvb);
    out.matched.assign(width, 0);

    // Leg 1: padded range scan (index.rangeAccesses(width) probes).
    out.rows = index_.range(lo, width, out.indexKey.data(),
                            out.indexValue.data());

    // Leg 2: ALWAYS `width` map probes — unfilled rows probe a dummy
    // key so the probe count never tracks the range's selectivity.
    probeKeys_.resize(width);
    foundFlags_.resize(width);
    for (u32 i = 0; i < width; ++i) {
        if (i < out.rows) {
            u64 fk = 0;
            const u8* p =
                out.indexValue.data() + size_t{i} * ivb + cfg_.fkOffset;
            for (int b = 0; b < 8; ++b)
                fk |= static_cast<u64>(p[b]) << (8 * b);
            out.fk[i] = fk;
            probeKeys_[i] = fk;
        } else {
            out.fk[i] = 0;
            probeKeys_[i] = kDummyProbeKey;
        }
    }
    map_.getBatch(probeKeys_.data(), width, out.mapValue.data(),
                  foundFlags_.data());

    u64 matched = 0;
    for (u32 i = 0; i < width; ++i) {
        const bool live = i < out.rows && foundFlags_[i] != 0;
        out.matched[i] = live ? 1 : 0;
        matched += live ? 1 : 0;
    }
    return matched;
}

} // namespace froram
