/**
 * @file
 * ObliviousMap: a cuckoo-style oblivious hashmap layered purely on the
 * unified Frontend::submit() access surface.
 *
 * The ORAM below hides WHICH block an access touches; what it cannot
 * hide is HOW MANY accesses a data-structure operation issues. A naive
 * hash table probes until it finds the key (or a hole), so its access
 * COUNT leaks the load factor, hit/miss outcome and probe-chain shape.
 * ObliviousMap therefore fixes the probe schedule: every operation —
 * get, put and erase, hit or miss — issues exactly kAccessesPerOp
 * submit() accesses (two bucket reads followed by two bucket
 * writebacks, dummies included), so any two same-length op sequences
 * are trace-equivalent regardless of keys, values or hit rates. Since
 * the ORAM also makes reads and writes indistinguishable, the op TYPE
 * is hidden too, not just its arguments.
 *
 * Layout: d = 2 candidate buckets per key, derived with a keyed PRF
 * (AES-128) so bucket addresses are unlinkable to key values; each
 * bucket is one ORAM block holding blockBytes / slotBytes fixed-width
 * slots. Insertion into two full buckets evicts a deterministic victim
 * into a small trusted-memory overflow stash (the classic cuckoo stash,
 * bounded by config.overflowCapacity); because every op writes both
 * touched buckets back anyway, stash entries drain opportunistically
 * into any touched bucket with a free slot, at zero extra accesses.
 *
 * Batching: with config.batchedProbes (default) the read wave of an op
 * goes through one submit() span — request i+1's storage fetch overlaps
 * request i's compute — and each read wave appends prefetchOnly hints
 * for the freshly remapped paths the write wave is about to walk.
 * getBatch() amortizes further by staging ALL probes of a key batch in
 * two waves (2n reads + hints, then 2n writebacks). With batchedProbes
 * off, every probe is a standalone frontend access (the naive per-probe
 * loop the BENCH_ds.json rows compare against).
 */
#ifndef FRORAM_DS_OBLIVIOUS_MAP_HPP
#define FRORAM_DS_OBLIVIOUS_MAP_HPP

#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "core/frontend.hpp"
#include "crypto/prf.hpp"
#include "oram/types.hpp"

namespace froram {

/** Tuning knobs for ObliviousMap. */
struct ObliviousMapConfig {
    u32 valueBytes = 16;      ///< fixed payload width per entry
    u32 overflowCapacity = 64; ///< trusted cuckoo-stash bound
    u64 seed = 0x0b11f0;      ///< PRF key derivation seed
    bool batchedProbes = true; ///< submit() waves vs naive per-probe loop
};

/**
 * Fixed-capacity oblivious hashmap from u64 keys to fixed-width byte
 * values over an ORAM address region [base, base + numBuckets).
 *
 * Leakage contract: the adversary learns the NUMBER of operations (each
 * op is exactly kAccessesPerOp backend accesses) and nothing else — not
 * keys, values, hit/miss outcomes, load factor, or even whether an op
 * was a get, put or erase. Not thread-safe; one map per Frontend user.
 */
class ObliviousMap {
  public:
    /** Backend accesses per operation: 2 bucket reads + 2 writebacks.
     *  Constant by construction; asserted input-independent in
     *  tests/test_ds_obliviousness.cpp. */
    static constexpr u32 kAccessesPerOp = 4;

    /**
     * @param fe frontend whose submit() surface carries every probe
     * @param base first ORAM block address of the map's region
     * @param num_buckets region size in blocks (one bucket per block)
     * @param config see ObliviousMapConfig
     */
    ObliviousMap(Frontend& fe, Addr base, u64 num_buckets,
                 const ObliviousMapConfig& config = {});

    /**
     * Look up `key`; copies valueBytes() bytes into `value_out` (left
     * untouched on miss) and returns whether the key was present.
     * Issues exactly kAccessesPerOp accesses either way. Allocation-
     * free once warmed (asserted in tests/test_hotpath_alloc.cpp).
     */
    bool get(u64 key, u8* value_out);

    /** Insert or update `key` with valueBytes() bytes from `value`.
     *  Exactly kAccessesPerOp accesses. Throws FatalError if the
     *  overflow stash exceeds its bound (table overloaded). */
    void put(u64 key, const u8* value);

    /** Remove `key`; returns whether it was present. Exactly
     *  kAccessesPerOp accesses either way. */
    bool erase(u64 key);

    /**
     * Batched multi-get: n keys through two submit() waves (2n reads +
     * prefetch hints, then 2n writebacks), amortizing the pipeline
     * across the whole batch. values_out holds n * valueBytes() bytes;
     * found_out n 0/1 flags. Returns the number of hits. Exactly
     * kAccessesPerOp * n accesses regardless of content (duplicate
     * keys/buckets included: colliding writebacks carry one canonical
     * image, so the count never depends on key collisions).
     */
    u64 getBatch(const u64* keys, u64 n, u8* values_out, u8* found_out);

    /** Live entries (tracked in trusted memory). */
    u64 size() const { return size_; }
    /** Entries currently parked in the trusted overflow stash. */
    u64 overflowSize() const { return overflow_.size(); }
    /** Maximum entries the region can hold. */
    u64 capacity() const { return numBuckets_ * slotsPerBucket_; }
    u32 valueBytes() const { return cfg_.valueBytes; }

    /** @name Checkpoint/restore
     *
     * The map's trusted residue (overflow stash, size, op counter) —
     * everything not already captured by the owning OramSystem's
     * snapshot. Restoring into a map with a different geometry or
     * config raises CheckpointError. After restoreState() on a system
     * restored from the matching snapshot, replay continues
     * bit-identically (values and adversary trace).
     * @{ */
    void saveState(CheckpointWriter& w) const;
    void restoreState(CheckpointReader& r);
    /** @} */

  private:
    struct OverflowEntry {
        u64 key;
        std::vector<u8> value;
    };

    Addr bucketOf(u64 key, u32 which) const;
    /** Slot offset of `slot` within a bucket image. */
    size_t slotAt(u32 slot) const { return size_t{slot} * slotBytes_; }
    /** Find `key` in `img`; returns slot index or kNoSlot. */
    u32 findSlot(const std::vector<u8>& img, u64 key) const;
    /** First free slot in `img`, or kNoSlot. */
    u32 freeSlot(const std::vector<u8>& img) const;
    void writeSlot(std::vector<u8>& img, u32 slot, u64 key,
                   const u8* value) const;
    u64 slotKey(const std::vector<u8>& img, u32 slot) const;

    /** Run `n` staged requests: one submit() span (batched) or a naive
     *  per-probe accessInto loop that skips hint entries. */
    void runWave(const AccessRequest* reqs, AccessResult* results, u64 n);

    /** Read the two candidate buckets of `key` (single-op fast path,
     *  reused wave buffers); sets img0_/img1_ canonical pointers. */
    void readBuckets(u64 key);
    /** Write both buckets back (the uniform tail of every op). */
    void writeBuckets();
    /** Move overflow-stash entries into free slots of the buckets
     *  currently in hand (zero extra accesses). */
    void drainOverflow(std::vector<u8>* imgs[2], const Addr addrs[2],
                       u32 n_imgs);

    static constexpr u32 kNoSlot = ~u32{0};

    Frontend& fe_;
    Addr base_;
    u64 numBuckets_;
    ObliviousMapConfig cfg_;
    u32 slotBytes_;
    u32 slotsPerBucket_;
    Prf prf_;
    u64 size_ = 0;
    u64 opCount_ = 0;
    std::vector<OverflowEntry> overflow_;

    // Reused wave buffers: zero per-op allocation once warmed.
    Addr addr_[2];
    std::vector<AccessRequest> readReqs_;
    std::vector<AccessResult> readRes_;
    std::vector<AccessRequest> writeReqs_;
    std::vector<AccessResult> writeRes_;
    // getBatch scratch (canonical-image map + wave arrays). The wave
    // vectors are separate from the per-op ones and grow-only: sharing
    // them would let a per-op resize(4) destroy the batch-sized
    // AccessResults (and their warmed payload buffers), putting an
    // allocation back into every subsequent batch.
    std::vector<Addr> batchAddrs_;
    std::vector<u32> batchCanon_;
    std::vector<AccessRequest> batchReadReqs_;
    std::vector<AccessResult> batchReadRes_;
    std::vector<AccessRequest> batchWriteReqs_;
    std::vector<AccessResult> batchWriteRes_;
};

} // namespace froram

#endif // FRORAM_DS_OBLIVIOUS_MAP_HPP
