#include "ds/oblivious_index.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

namespace froram {

namespace {

constexpr u32 kIndexStateVersion = 1;
/** Sentinel "no key": empty blocks sort above every real key in the
 *  binary search. Real keys of ~0 are rejected at insert. */
constexpr u64 kNoKey = ~u64{0};

} // namespace

ObliviousIndex::ObliviousIndex(Frontend& fe, Addr base, u64 num_blocks,
                               const ObliviousIndexConfig& config)
    : fe_(fe), base_(base), numBlocks_(num_blocks), cfg_(config)
{
    FRORAM_ASSERT(numBlocks_ >= 1, "ObliviousIndex needs >= 1 block");
    FRORAM_ASSERT(cfg_.valueBytes >= 1, "valueBytes must be nonzero");
    FRORAM_ASSERT(cfg_.deltaCapacity >= 1, "deltaCapacity must be >= 1");
    entryBytes_ = 1 + 8 + cfg_.valueBytes;
    const u64 block_bytes = fe_.dataBlockBytes();
    FRORAM_ASSERT(entryBytes_ <= block_bytes,
                  "value too wide for one ORAM block");
    entriesPerBlock_ = block_bytes / entryBytes_;

    u64 p2 = 1;
    binProbes_ = 0;
    while (p2 < numBlocks_) {
        p2 <<= 1;
        ++binProbes_;
    }
    delta_.reserve(cfg_.deltaCapacity);
}

u64
ObliviousIndex::entryKey(const std::vector<u8>& img, u64 slot) const
{
    const u8* p = img.data() + slot * entryBytes_ + 1;
    u64 k = 0;
    for (int i = 0; i < 8; ++i)
        k |= static_cast<u64>(p[i]) << (8 * i);
    return k;
}

bool
ObliviousIndex::entryLive(const std::vector<u8>& img, u64 slot) const
{
    return img[slot * entryBytes_] != 0;
}

u64
ObliviousIndex::firstKey(const std::vector<u8>& img) const
{
    return entryLive(img, 0) ? entryKey(img, 0) : kNoKey;
}

void
ObliviousIndex::readBlock(u64 b)
{
    fe_.accessInto(bres_, base_ + b, false);
}

void
ObliviousIndex::writeBlock(u64 b, const std::vector<u8>& img)
{
    const AccessRequest req{base_ + b, true, &img, false};
    AccessResult res;
    fe_.submit(&req, &res, 1);
}

void
ObliviousIndex::upsertDelta(u64 key, const u8* value, bool tombstone)
{
    if (key == kNoKey)
        fatal("ObliviousIndex: key ", key, " is reserved");
    auto it = std::lower_bound(
        delta_.begin(), delta_.end(), key,
        [](const DeltaEntry& e, u64 k) { return e.key < k; });
    if (it != delta_.end() && it->key == key) {
        it->tombstone = tombstone;
        if (!tombstone)
            it->value.assign(value, value + cfg_.valueBytes);
        else
            it->value.clear();
        return;
    }
    DeltaEntry e;
    e.key = key;
    e.tombstone = tombstone;
    if (!tombstone)
        e.value.assign(value, value + cfg_.valueBytes);
    delta_.insert(it, std::move(e));
}

void
ObliviousIndex::insert(u64 key, const u8* value)
{
    // Conservative fullness guard: every pending non-tombstone delta
    // entry MIGHT be a new key (an upsert of an existing key is
    // indistinguishable without probing, which would leak).
    u64 live_delta = 0;
    for (const auto& e : delta_)
        live_delta += e.tombstone ? 0 : 1;
    if (size_ + live_delta >= capacityEntries())
        fatal("ObliviousIndex full (", size_, " entries + ", live_delta,
              " pending of ", capacityEntries(), ")");
    upsertDelta(key, value, false);
    maybeRebuild();
}

void
ObliviousIndex::erase(u64 key)
{
    upsertDelta(key, nullptr, true);
    maybeRebuild();
}

void
ObliviousIndex::maybeRebuild()
{
    // Counter-based trigger: fires every deltaCapacity-th UPDATE OP.
    // The delta's fill level would be a data-dependent trigger (repeat
    // keys coalesce); the op counter is public.
    if (++updatesSinceRebuild_ >= cfg_.deltaCapacity)
        rebuild();
}

void
ObliviousIndex::rebuild()
{
    const u64 epb = entriesPerBlock_;
    const u64 b = numBlocks_;
    // Read-ahead bound: merged entries shift by at most deltaCapacity
    // positions (inserts push right, tombstones pull left), so writing
    // block w only ever consumes old entries already read by block
    // w + ahead. Uses the PUBLIC capacity, not the current delta size,
    // to keep the schedule input-independent.
    const u64 ahead =
        std::min(b, (cfg_.deltaCapacity + epb - 1) / epb + 1);

    struct OldEntry {
        u64 key;
        std::vector<u8> value;
    };
    std::deque<OldEntry> old_q;
    // The old stream ends at the first non-full block (entries are
    // left-compacted, so everything after it is empty) or when all
    // blocks are read; reads past that point are uniformity dummies.
    bool old_done = false;
    size_t di = 0; // next delta entry
    u64 merged = 0;
    std::vector<u8> out_img(fe_.dataBlockBytes(), 0);
    u64 out_fill = 0;

    auto put_entry = [&](u64 key, const u8* value) {
        u8* p = out_img.data() + out_fill * entryBytes_;
        p[0] = 1;
        for (int i = 0; i < 8; ++i)
            p[1 + i] = static_cast<u8>(key >> (8 * i));
        std::memcpy(p + 9, value, cfg_.valueBytes);
        ++out_fill;
        ++merged;
    };

    // Emit the next merged entry into out_img, or return false when the
    // merged stream is exhausted. Never stalls: the ahead bound
    // guarantees old_q holds every entry the current write can need.
    auto emit_one = [&]() -> bool {
        for (;;) {
            const bool old_avail = !old_q.empty();
            FRORAM_ASSERT(old_avail || old_done,
                          "ObliviousIndex rebuild read-ahead underrun");
            const bool d_avail = di < delta_.size();
            if (!old_avail && !d_avail)
                return false;
            if (d_avail &&
                (!old_avail || delta_[di].key <= old_q.front().key)) {
                const DeltaEntry& d = delta_[di];
                if (old_avail && old_q.front().key == d.key)
                    old_q.pop_front(); // delta supersedes the old entry
                ++di;
                if (d.tombstone)
                    continue;
                put_entry(d.key, d.value.data());
                return true;
            }
            put_entry(old_q.front().key, old_q.front().value.data());
            old_q.pop_front();
            return true;
        }
    };

    for (u64 i = 0; i < b + ahead; ++i) {
        if (i < b) {
            readBlock(i);
            u64 live = 0;
            if (!old_done) {
                for (u64 s = 0; s < epb; ++s) {
                    if (!entryLive(bres_.data, s))
                        break; // entries are left-compacted
                    OldEntry e;
                    e.key = entryKey(bres_.data, s);
                    e.value.assign(
                        bres_.data.data() + s * entryBytes_ + 9,
                        bres_.data.data() + s * entryBytes_ + 9 +
                            cfg_.valueBytes);
                    old_q.push_back(std::move(e));
                    ++live;
                }
            }
            if (live < epb || i + 1 == b)
                old_done = true;
        }
        if (i >= ahead) {
            std::fill(out_img.begin(), out_img.end(), 0);
            out_fill = 0;
            while (out_fill < epb && emit_one()) {
            }
            writeBlock(i - ahead, out_img);
        }
    }
    FRORAM_ASSERT(old_q.empty() && di == delta_.size(),
                  "ObliviousIndex rebuild left unmerged entries");
    FRORAM_ASSERT(merged <= capacityEntries(),
                  "ObliviousIndex rebuild overflow");
    size_ = merged;
    delta_.clear();
    updatesSinceRebuild_ = 0;
}

u64
ObliviousIndex::scanBlocksFor(u32 width) const
{
    // Enough consecutive blocks to cover `width` results even if every
    // pending tombstone kills a scanned entry, plus one block of
    // alignment slack. Both terms are public.
    const u64 need = u64{width} + cfg_.deltaCapacity;
    return std::min(numBlocks_,
                    (need + entriesPerBlock_ - 1) / entriesPerBlock_ + 1);
}

u64
ObliviousIndex::rangeAccesses(u32 width) const
{
    return binProbes_ + scanBlocksFor(width);
}

u64
ObliviousIndex::range(u64 lo, u32 width, u64* keys_out, u8* values_out)
{
    if (width == 0)
        return 0;

    // Phase 1: binary lifting for the last block whose first key <= lo,
    // in exactly binProbes_ probes. Out-of-range or converged steps
    // re-read the current block (a dummy: one real access, discarded).
    u64 lo_b = 0;
    u64 step = binProbes_ == 0 ? 0 : (u64{1} << (binProbes_ - 1));
    for (u32 i = 0; i < binProbes_; ++i, step >>= 1) {
        const u64 cand = lo_b + step;
        const u64 probe = cand < numBlocks_ ? cand : lo_b;
        readBlock(probe);
        const u64 fk = firstKey(bres_.data);
        if (cand < numBlocks_ && fk != kNoKey && fk <= lo)
            lo_b = cand;
    }

    // Phase 2: fixed-width scan wave of consecutive blocks (mod B).
    // Wrapped blocks hold only keys < lo (they precede lo_b in the
    // sorted layout) and filter out below.
    const u64 scan = scanBlocksFor(width);
    scanReqs_.resize(scan);
    scanRes_.resize(scan);
    for (u64 j = 0; j < scan; ++j)
        scanReqs_[j] = {base_ + (lo_b + j) % numBlocks_, false, nullptr,
                        false};
    if (cfg_.batchedProbes) {
        fe_.submit(scanReqs_.data(), scanRes_.data(), scan);
    } else {
        for (u64 j = 0; j < scan; ++j)
            fe_.submit(&scanReqs_[j], &scanRes_[j], 1);
    }

    // Phase 3 (trusted memory): merge scanned candidates with the
    // pending delta; delta wins on equal keys, tombstones drop.
    auto dit = std::lower_bound(
        delta_.begin(), delta_.end(), lo,
        [](const DeltaEntry& e, u64 k) { return e.key < k; });
    u64 out = 0;
    u64 j = 0, s = 0;
    auto next_candidate = [&](u64& key) -> const u8* {
        while (j < scan) {
            if (lo_b + j >= numBlocks_) {
                // wrapped block: keys < lo by layout, skip wholesale
                ++j;
                s = 0;
                continue;
            }
            const std::vector<u8>& img = scanRes_[j].data;
            if (s >= entriesPerBlock_ || !entryLive(img, s)) {
                ++j;
                s = 0;
                continue;
            }
            const u64 k = entryKey(img, s);
            if (k < lo) {
                ++s;
                continue;
            }
            key = k;
            return img.data() + s * entryBytes_ + 9;
        }
        return nullptr;
    };
    for (;;) {
        if (out >= width)
            break;
        u64 ck = 0;
        const u8* cv = next_candidate(ck);
        const bool d_avail = dit != delta_.end();
        u64 key;
        const u8* val;
        if (d_avail && (cv == nullptr || dit->key <= ck)) {
            if (cv != nullptr && dit->key == ck)
                ++s; // delta supersedes the scanned entry
            const DeltaEntry& d = *dit;
            ++dit;
            if (d.tombstone)
                continue;
            key = d.key;
            val = d.value.data();
        } else if (cv != nullptr) {
            key = ck;
            val = cv;
            ++s;
        } else {
            break;
        }
        keys_out[out] = key;
        std::memcpy(values_out + out * cfg_.valueBytes, val,
                    cfg_.valueBytes);
        ++out;
    }
    return out;
}

void
ObliviousIndex::bulkLoad(const u64* keys, const u8* values, u64 n)
{
    FRORAM_ASSERT(n <= capacityEntries(), "bulkLoad exceeds capacity");
    std::vector<u8> img(fe_.dataBlockBytes(), 0);
    u64 at = 0;
    for (u64 b = 0; b < numBlocks_; ++b) {
        std::fill(img.begin(), img.end(), 0);
        for (u64 s = 0; s < entriesPerBlock_ && at < n; ++s, ++at) {
            FRORAM_ASSERT(at == 0 || keys[at] > keys[at - 1],
                          "bulkLoad keys must be strictly increasing");
            FRORAM_ASSERT(keys[at] != kNoKey, "reserved key in bulkLoad");
            u8* p = img.data() + s * entryBytes_;
            p[0] = 1;
            for (int i = 0; i < 8; ++i)
                p[1 + i] = static_cast<u8>(keys[at] >> (8 * i));
            std::memcpy(p + 9, values + at * cfg_.valueBytes,
                        cfg_.valueBytes);
        }
        writeBlock(b, img);
    }
    size_ = n;
    delta_.clear();
    updatesSinceRebuild_ = 0;
}

void
ObliviousIndex::saveState(CheckpointWriter& w) const
{
    w.begin(ckpt::kTagDsIndex);
    w.putU32(kIndexStateVersion);
    w.putU64(numBlocks_);
    w.putU32(cfg_.valueBytes);
    w.putU32(cfg_.deltaCapacity);
    w.putU64(size_);
    w.putU64(updatesSinceRebuild_);
    w.putU64(delta_.size());
    for (const auto& e : delta_) {
        w.putU64(e.key);
        w.putU8(e.tombstone ? 1 : 0);
        w.putBlob(e.value.data(), e.value.size());
    }
    w.end();
}

void
ObliviousIndex::restoreState(CheckpointReader& r)
{
    r.enter(ckpt::kTagDsIndex);
    if (r.getU32() != kIndexStateVersion)
        throw CheckpointError("ObliviousIndex state version mismatch");
    if (r.getU64() != numBlocks_)
        throw CheckpointError("ObliviousIndex geometry mismatch");
    if (r.getU32() != cfg_.valueBytes)
        throw CheckpointError("ObliviousIndex valueBytes mismatch");
    if (r.getU32() != cfg_.deltaCapacity)
        throw CheckpointError("ObliviousIndex deltaCapacity mismatch");
    size_ = r.getU64();
    updatesSinceRebuild_ = r.getU64();
    const u64 n = r.getU64();
    delta_.clear();
    for (u64 i = 0; i < n; ++i) {
        DeltaEntry e;
        e.key = r.getU64();
        e.tombstone = r.getU8() != 0;
        e.value = r.getBlob();
        if (e.value.size() != (e.tombstone ? 0 : cfg_.valueBytes))
            throw CheckpointError("ObliviousIndex delta entry width "
                                  "mismatch");
        delta_.push_back(std::move(e));
    }
    r.exit();
}

} // namespace froram
