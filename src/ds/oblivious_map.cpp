#include "ds/oblivious_map.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace froram {

namespace {

constexpr u32 kMapStateVersion = 1;

} // namespace

ObliviousMap::ObliviousMap(Frontend& fe, Addr base, u64 num_buckets,
                           const ObliviousMapConfig& config)
    : fe_(fe), base_(base), numBuckets_(num_buckets), cfg_(config)
{
    FRORAM_ASSERT(numBuckets_ >= 2, "ObliviousMap needs >= 2 buckets");
    FRORAM_ASSERT(cfg_.valueBytes >= 1, "valueBytes must be nonzero");
    slotBytes_ = 1 + 8 + cfg_.valueBytes;
    const u64 block_bytes = fe_.dataBlockBytes();
    FRORAM_ASSERT(slotBytes_ <= block_bytes,
                  "value too wide for one ORAM block");
    slotsPerBucket_ = static_cast<u32>(block_bytes / slotBytes_);

    // Derive the bucket-placement PRF key from the config seed. The
    // key never leaves trusted memory; bucket addresses are therefore
    // unlinkable to key values without it.
    Xoshiro256 kdf(cfg_.seed ^ 0xD5A7A5EC0B11F0ULL);
    u8 key[16];
    for (int w = 0; w < 2; ++w) {
        const u64 bits = kdf.next();
        for (int i = 0; i < 8; ++i)
            key[w * 8 + i] = static_cast<u8>(bits >> (8 * i));
    }
    prf_.setKey(key);

    overflow_.reserve(cfg_.overflowCapacity);
    // Pre-size the single-op wave buffers; steady-state ops re-resize to
    // the same lengths, which never reallocates.
    readReqs_.resize(4);
    readRes_.resize(4);
    writeReqs_.resize(2);
    writeRes_.resize(2);
}

Addr
ObliviousMap::bucketOf(u64 key, u32 which) const
{
    return base_ + prf_.eval(key, which, 0xD5) % numBuckets_;
}

u32
ObliviousMap::findSlot(const std::vector<u8>& img, u64 key) const
{
    for (u32 s = 0; s < slotsPerBucket_; ++s) {
        const size_t at = slotAt(s);
        if (img[at] != 0 && slotKey(img, s) == key)
            return s;
    }
    return kNoSlot;
}

u32
ObliviousMap::freeSlot(const std::vector<u8>& img) const
{
    for (u32 s = 0; s < slotsPerBucket_; ++s)
        if (img[slotAt(s)] == 0)
            return s;
    return kNoSlot;
}

void
ObliviousMap::writeSlot(std::vector<u8>& img, u32 slot, u64 key,
                        const u8* value) const
{
    u8* p = img.data() + slotAt(slot);
    p[0] = 1;
    for (int i = 0; i < 8; ++i)
        p[1 + i] = static_cast<u8>(key >> (8 * i));
    std::memcpy(p + 9, value, cfg_.valueBytes);
}

u64
ObliviousMap::slotKey(const std::vector<u8>& img, u32 slot) const
{
    const u8* p = img.data() + slotAt(slot) + 1;
    u64 k = 0;
    for (int i = 0; i < 8; ++i)
        k |= static_cast<u64>(p[i]) << (8 * i);
    return k;
}

void
ObliviousMap::runWave(const AccessRequest* reqs, AccessResult* results,
                      u64 n)
{
    if (cfg_.batchedProbes) {
        fe_.submit(reqs, results, n);
        return;
    }
    // Naive per-probe loop: every real request is its own single-entry
    // submit (no pipeline lookahead), and hint entries are dropped. The
    // adversary-visible access COUNT is identical to the batched path —
    // only the storage overlap differs — so obliviousness does not
    // depend on the mode.
    for (u64 i = 0; i < n; ++i) {
        if (reqs[i].prefetchOnly) {
            results[i].reset();
            continue;
        }
        fe_.submit(&reqs[i], &results[i], 1);
    }
}

void
ObliviousMap::readBuckets(u64 key)
{
    addr_[0] = bucketOf(key, 0);
    addr_[1] = bucketOf(key, 1);
    readReqs_.resize(4);
    readRes_.resize(4);
    // Two real reads, then prefetch hints for the SAME addresses: each
    // read freshly remapped its block's leaf, so the hint warms the new
    // path the uniform writeback tail is about to walk.
    readReqs_[0] = {addr_[0], false, nullptr, false};
    readReqs_[1] = {addr_[1], false, nullptr, false};
    readReqs_[2] = {addr_[0], false, nullptr, true};
    readReqs_[3] = {addr_[1], false, nullptr, true};
    runWave(readReqs_.data(), readRes_.data(), 4);
}

void
ObliviousMap::writeBuckets()
{
    // Canonical image per distinct address: when both candidate buckets
    // of a key coincide, both writebacks carry bucket 0's image, so the
    // duplicate write is a harmless identical overwrite and the access
    // count stays fixed at kAccessesPerOp.
    std::vector<u8>* img0 = &readRes_[0].data;
    std::vector<u8>* img1 =
        addr_[1] == addr_[0] ? img0 : &readRes_[1].data;
    writeReqs_.resize(2);
    writeRes_.resize(2);
    writeReqs_[0] = {addr_[0], true, img0, false};
    writeReqs_[1] = {addr_[1], true, img1, false};
    runWave(writeReqs_.data(), writeRes_.data(), 2);
    ++opCount_;
}

void
ObliviousMap::drainOverflow(std::vector<u8>* imgs[2], const Addr addrs[2],
                            u32 n_imgs)
{
    // Opportunistic stash drain: any stash entry whose candidate bucket
    // is in hand moves into a free slot at zero extra accesses (every
    // op writes its touched buckets back regardless).
    for (size_t e = 0; e < overflow_.size();) {
        bool placed = false;
        for (u32 i = 0; i < n_imgs && !placed; ++i) {
            const u64 k = overflow_[e].key;
            if (bucketOf(k, 0) != addrs[i] && bucketOf(k, 1) != addrs[i])
                continue;
            const u32 s = freeSlot(*imgs[i]);
            if (s == kNoSlot)
                continue;
            writeSlot(*imgs[i], s, k, overflow_[e].value.data());
            overflow_.erase(overflow_.begin() +
                            static_cast<std::ptrdiff_t>(e));
            placed = true;
        }
        if (!placed)
            ++e;
    }
}

bool
ObliviousMap::get(u64 key, u8* value_out)
{
    readBuckets(key);
    std::vector<u8>* img0 = &readRes_[0].data;
    std::vector<u8>* img1 =
        addr_[1] == addr_[0] ? img0 : &readRes_[1].data;

    bool found = false;
    u32 s = findSlot(*img0, key);
    if (s != kNoSlot) {
        std::memcpy(value_out, img0->data() + slotAt(s) + 9,
                    cfg_.valueBytes);
        found = true;
    } else if (img1 != img0 && (s = findSlot(*img1, key)) != kNoSlot) {
        std::memcpy(value_out, img1->data() + slotAt(s) + 9,
                    cfg_.valueBytes);
        found = true;
    } else {
        for (const auto& e : overflow_) {
            if (e.key == key) {
                std::memcpy(value_out, e.value.data(), cfg_.valueBytes);
                found = true;
                break;
            }
        }
    }

    std::vector<u8>* imgs[2] = {img0, img1};
    drainOverflow(imgs, addr_, img1 != img0 ? 2 : 1);
    writeBuckets();
    return found;
}

void
ObliviousMap::put(u64 key, const u8* value)
{
    readBuckets(key);
    std::vector<u8>* img0 = &readRes_[0].data;
    std::vector<u8>* img1 =
        addr_[1] == addr_[0] ? img0 : &readRes_[1].data;

    bool stored = false;
    u32 s = findSlot(*img0, key);
    if (s != kNoSlot) {
        writeSlot(*img0, s, key, value);
        stored = true;
    } else if (img1 != img0 && (s = findSlot(*img1, key)) != kNoSlot) {
        writeSlot(*img1, s, key, value);
        stored = true;
    }
    if (!stored) {
        for (auto& e : overflow_) {
            if (e.key == key) {
                std::memcpy(e.value.data(), value, cfg_.valueBytes);
                stored = true;
                break;
            }
        }
    }
    if (!stored) {
        ++size_;
        s = freeSlot(*img0);
        if (s != kNoSlot) {
            writeSlot(*img0, s, key, value);
        } else if (img1 != img0 && (s = freeSlot(*img1)) != kNoSlot) {
            writeSlot(*img1, s, key, value);
        } else {
            // Both candidate buckets full: evict a deterministic victim
            // to the trusted overflow stash and take its slot. The
            // victim choice keys off the op counter, not the data, so
            // replay after checkpoint restore is bit-identical.
            std::vector<u8>* vimg =
                (img1 != img0 && (opCount_ & 1)) ? img1 : img0;
            const u32 vs =
                static_cast<u32>((opCount_ >> 1) % slotsPerBucket_);
            if (overflow_.size() >= cfg_.overflowCapacity)
                fatal("ObliviousMap overflow stash full (",
                      overflow_.size(), " entries); table overloaded");
            OverflowEntry victim;
            victim.key = slotKey(*vimg, vs);
            victim.value.assign(vimg->data() + slotAt(vs) + 9,
                                vimg->data() + slotAt(vs) + 9 +
                                    cfg_.valueBytes);
            overflow_.push_back(std::move(victim));
            writeSlot(*vimg, vs, key, value);
        }
    }

    std::vector<u8>* imgs[2] = {img0, img1};
    drainOverflow(imgs, addr_, img1 != img0 ? 2 : 1);
    writeBuckets();
}

bool
ObliviousMap::erase(u64 key)
{
    readBuckets(key);
    std::vector<u8>* img0 = &readRes_[0].data;
    std::vector<u8>* img1 =
        addr_[1] == addr_[0] ? img0 : &readRes_[1].data;

    bool found = false;
    u32 s = findSlot(*img0, key);
    if (s != kNoSlot) {
        std::memset(img0->data() + slotAt(s), 0, slotBytes_);
        found = true;
    } else if (img1 != img0 && (s = findSlot(*img1, key)) != kNoSlot) {
        std::memset(img1->data() + slotAt(s), 0, slotBytes_);
        found = true;
    } else {
        for (size_t e = 0; e < overflow_.size(); ++e) {
            if (overflow_[e].key == key) {
                overflow_.erase(overflow_.begin() +
                                static_cast<std::ptrdiff_t>(e));
                found = true;
                break;
            }
        }
    }
    if (found)
        --size_;

    std::vector<u8>* imgs[2] = {img0, img1};
    drainOverflow(imgs, addr_, img1 != img0 ? 2 : 1);
    writeBuckets();
    return found;
}

u64
ObliviousMap::getBatch(const u64* keys, u64 n, u8* values_out,
                       u8* found_out)
{
    if (n == 0)
        return 0;
    const u64 probes = 2 * n;
    batchAddrs_.resize(probes);
    batchCanon_.resize(probes);
    for (u64 i = 0; i < n; ++i) {
        batchAddrs_[2 * i] = bucketOf(keys[i], 0);
        batchAddrs_[2 * i + 1] = bucketOf(keys[i], 1);
    }
    // Canonical index per distinct address: duplicate probes (repeated
    // keys, or distinct keys hashing to a shared bucket) all read and
    // write bucket state through the FIRST probe's image, so no update
    // is lost and the access count stays at kAccessesPerOp * n
    // regardless of collisions. Batches are wave-sized, so the
    // quadratic scan is trivial.
    for (u64 j = 0; j < probes; ++j) {
        u64 c = j;
        for (u64 i = 0; i < j; ++i) {
            if (batchAddrs_[i] == batchAddrs_[j]) {
                c = i;
                break;
            }
        }
        batchCanon_[j] = static_cast<u32>(c);
    }

    // Read wave: all 2n probes through one submit() span. The engine's
    // built-in pipeline hints probe j+1's path under probe j (and the
    // writeback wave below gets the same treatment), so no explicit
    // prefetchOnly entries are needed here — at wave sizes the extra
    // hints would only duplicate that work at a worse reuse distance.
    // Grow-only: never shrink, so repeated batches reuse warm buffers.
    if (batchReadReqs_.size() < probes) {
        batchReadReqs_.resize(probes);
        batchReadRes_.resize(probes);
    }
    for (u64 j = 0; j < probes; ++j)
        batchReadReqs_[j] = {batchAddrs_[j], false, nullptr, false};
    runWave(batchReadReqs_.data(), batchReadRes_.data(), probes);

    u64 hits = 0;
    for (u64 i = 0; i < n; ++i) {
        std::vector<u8>* img0 = &batchReadRes_[batchCanon_[2 * i]].data;
        std::vector<u8>* img1 =
            &batchReadRes_[batchCanon_[2 * i + 1]].data;
        bool found = false;
        u32 s = findSlot(*img0, keys[i]);
        if (s != kNoSlot) {
            std::memcpy(values_out + i * cfg_.valueBytes,
                        img0->data() + slotAt(s) + 9, cfg_.valueBytes);
            found = true;
        } else if (img1 != img0 &&
                   (s = findSlot(*img1, keys[i])) != kNoSlot) {
            std::memcpy(values_out + i * cfg_.valueBytes,
                        img1->data() + slotAt(s) + 9, cfg_.valueBytes);
            found = true;
        } else {
            for (const auto& e : overflow_) {
                if (e.key == keys[i]) {
                    std::memcpy(values_out + i * cfg_.valueBytes,
                                e.value.data(), cfg_.valueBytes);
                    found = true;
                    break;
                }
            }
        }
        found_out[i] = found ? 1 : 0;
        hits += found ? 1 : 0;
    }

    // Uniform writeback tail: every probe writes its canonical image
    // back (duplicates overwrite with identical bytes).
    if (batchWriteReqs_.size() < probes) {
        batchWriteReqs_.resize(probes);
        batchWriteRes_.resize(probes);
    }
    for (u64 j = 0; j < probes; ++j)
        batchWriteReqs_[j] = {batchAddrs_[j], true,
                              &batchReadRes_[batchCanon_[j]].data, false};
    runWave(batchWriteReqs_.data(), batchWriteRes_.data(), probes);
    opCount_ += n;
    return hits;
}

void
ObliviousMap::saveState(CheckpointWriter& w) const
{
    w.begin(ckpt::kTagDsMap);
    w.putU32(kMapStateVersion);
    w.putU64(numBuckets_);
    w.putU32(cfg_.valueBytes);
    w.putU64(size_);
    w.putU64(opCount_);
    w.putU64(overflow_.size());
    for (const auto& e : overflow_) {
        w.putU64(e.key);
        w.putBlob(e.value.data(), e.value.size());
    }
    w.end();
}

void
ObliviousMap::restoreState(CheckpointReader& r)
{
    r.enter(ckpt::kTagDsMap);
    if (r.getU32() != kMapStateVersion)
        throw CheckpointError("ObliviousMap state version mismatch");
    if (r.getU64() != numBuckets_)
        throw CheckpointError("ObliviousMap geometry mismatch");
    if (r.getU32() != cfg_.valueBytes)
        throw CheckpointError("ObliviousMap valueBytes mismatch");
    size_ = r.getU64();
    opCount_ = r.getU64();
    const u64 n = r.getU64();
    overflow_.clear();
    for (u64 i = 0; i < n; ++i) {
        OverflowEntry e;
        e.key = r.getU64();
        e.value = r.getBlob();
        if (e.value.size() != cfg_.valueBytes)
            throw CheckpointError("ObliviousMap stash entry width "
                                  "mismatch");
        overflow_.push_back(std::move(e));
    }
    r.exit();
}

} // namespace froram
