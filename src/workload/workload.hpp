/**
 * @file
 * Memory-reference workload generators.
 *
 * Generators produce an infinite stream of MemRef events: a byte address,
 * a read/write flag, and the number of non-memory instructions since the
 * previous reference. Composable primitives (stride, uniform, zipf,
 * pointer-chase) are mixed by MixGen; the SPEC-proxy suite
 * (spec_proxy.hpp) builds on these.
 */
#ifndef FRORAM_WORKLOAD_WORKLOAD_HPP
#define FRORAM_WORKLOAD_WORKLOAD_HPP

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace froram {

/** One memory reference issued by the core. */
struct MemRef {
    u64 addr = 0;        ///< byte address
    bool isWrite = false;
    u32 gap = 2;         ///< non-memory instructions preceding this ref
};

/** Infinite workload stream. */
class WorkloadGen {
  public:
    virtual ~WorkloadGen() = default;
    virtual MemRef next() = 0;
    virtual std::string name() const = 0;
};

/** Sequential / strided scan over a footprint, wrapping around. */
class StrideGen : public WorkloadGen {
  public:
    /**
     * @param footprint_bytes region scanned
     * @param stride_bytes distance between consecutive references
     * @param write_frac fraction of writes
     * @param gap mean instruction gap
     */
    StrideGen(u64 footprint_bytes, u64 stride_bytes, double write_frac,
              u32 gap, u64 seed, u64 base = 0)
        : footprint_(footprint_bytes), stride_(stride_bytes),
          writeFrac_(write_frac), gap_(gap), base_(base), rng_(seed)
    {
    }

    MemRef
    next() override
    {
        MemRef r;
        r.addr = base_ + pos_;
        pos_ = (pos_ + stride_) % footprint_;
        r.isWrite = rng_.chance(writeFrac_);
        r.gap = gap_;
        return r;
    }

    std::string name() const override { return "stride"; }

  private:
    u64 footprint_;
    u64 stride_;
    double writeFrac_;
    u32 gap_;
    u64 base_;
    u64 pos_ = 0;
    Xoshiro256 rng_;
};

/** Uniform random references over a footprint (pointer chasing). */
class UniformGen : public WorkloadGen {
  public:
    UniformGen(u64 footprint_bytes, double write_frac, u32 gap, u64 seed,
               u64 base = 0, u64 align = 64)
        : footprint_(footprint_bytes), writeFrac_(write_frac), gap_(gap),
          base_(base), align_(align), rng_(seed)
    {
    }

    MemRef
    next() override
    {
        MemRef r;
        r.addr = base_ + rng_.below(footprint_ / align_) * align_;
        r.isWrite = rng_.chance(writeFrac_);
        r.gap = gap_;
        return r;
    }

    std::string name() const override { return "uniform"; }

  private:
    u64 footprint_;
    double writeFrac_;
    u32 gap_;
    u64 base_;
    u64 align_;
    Xoshiro256 rng_;
};

/**
 * Zipf-like hot-set references: rank r is chosen with P(r) ~ r^-alpha
 * via a bounded-Pareto inverse-CDF approximation, then mapped to a line
 * in the footprint through a fixed permutation multiplier so hot lines
 * are spread across the address space.
 */
class ZipfGen : public WorkloadGen {
  public:
    ZipfGen(u64 footprint_bytes, double alpha, double write_frac, u32 gap,
            u64 seed, u64 base = 0, u64 align = 64)
        : lines_(footprint_bytes / align), alpha_(alpha),
          writeFrac_(write_frac), gap_(gap), base_(base), align_(align),
          rng_(seed)
    {
        FRORAM_ASSERT(lines_ >= 1, "footprint too small");
        FRORAM_ASSERT(alpha_ > 1.0, "zipf alpha must exceed 1");
    }

    MemRef
    next() override
    {
        const double u = rng_.uniform();
        // Bounded Pareto: rank = (1-u)^(-1/(alpha-1)) - 1, clamped.
        const double raw =
            std::pow(1.0 - u, -1.0 / (alpha_ - 1.0)) - 1.0;
        u64 rank = raw >= static_cast<double>(lines_)
                       ? lines_ - 1
                       : static_cast<u64>(raw);
        // Spread ranks over the footprint with an odd multiplier.
        const u64 line = (rank * 0x9e3779b97f4a7c15ULL) % lines_;
        MemRef r;
        r.addr = base_ + line * align_;
        r.isWrite = rng_.chance(writeFrac_);
        r.gap = gap_;
        return r;
    }

    std::string name() const override { return "zipf"; }

  private:
    u64 lines_;
    double alpha_;
    double writeFrac_;
    u32 gap_;
    u64 base_;
    u64 align_;
    Xoshiro256 rng_;
};

/**
 * Clustered references: pick a cluster (uniformly or zipf-skewed),
 * touch `run` sequential lines inside it, then jump to another cluster.
 * Models the allocation/spatial locality of pointer-heavy programs:
 * successive LLC misses often land in the same region even when the
 * regions themselves are visited in arbitrary order.
 */
class ClusterGen : public WorkloadGen {
  public:
    /**
     * @param footprint_bytes region the clusters live in
     * @param cluster_bytes cluster size (e.g. 2 KB = one PosMap block
     *        of coverage at X = 32, B = 64)
     * @param run sequential lines touched per cluster visit
     * @param alpha 0 = uniform cluster choice; >1 = zipf-skewed
     */
    ClusterGen(u64 footprint_bytes, u64 cluster_bytes, u32 run,
               double alpha, double write_frac, u32 gap, u64 seed,
               u64 base = 0, u64 line = 64)
        : clusters_(footprint_bytes / cluster_bytes),
          clusterBytes_(cluster_bytes), run_(run), alpha_(alpha),
          writeFrac_(write_frac), gap_(gap), base_(base), line_(line),
          rng_(seed)
    {
        FRORAM_ASSERT(clusters_ >= 1, "footprint too small");
        FRORAM_ASSERT(run_ >= 1 && run_ * line_ <= cluster_bytes,
                      "run exceeds cluster");
    }

    MemRef
    next() override
    {
        if (left_ == 0) {
            u64 cluster;
            if (alpha_ > 1.0) {
                const double u = rng_.uniform();
                const double raw =
                    std::pow(1.0 - u, -1.0 / (alpha_ - 1.0)) - 1.0;
                const u64 rank =
                    raw >= static_cast<double>(clusters_)
                        ? clusters_ - 1
                        : static_cast<u64>(raw);
                cluster = (rank * 0x9e3779b97f4a7c15ULL) % clusters_;
            } else {
                cluster = rng_.below(clusters_);
            }
            clusterBase_ = cluster * clusterBytes_;
            offset_ = 0;
            left_ = run_;
        }
        MemRef r;
        r.addr = base_ + clusterBase_ + offset_;
        offset_ += line_;
        --left_;
        r.isWrite = rng_.chance(writeFrac_);
        r.gap = gap_;
        return r;
    }

    std::string name() const override { return "cluster"; }

  private:
    u64 clusters_;
    u64 clusterBytes_;
    u32 run_;
    double alpha_;
    double writeFrac_;
    u32 gap_;
    u64 base_;
    u64 line_;
    u64 clusterBase_ = 0;
    u64 offset_ = 0;
    u32 left_ = 0;
    Xoshiro256 rng_;
};

/** Weighted mixture of sub-generators. */
class MixGen : public WorkloadGen {
  public:
    MixGen(std::string name, u64 seed) : name_(std::move(name)), rng_(seed)
    {
    }

    /** Add a component with the given selection weight. */
    void
    add(std::unique_ptr<WorkloadGen> gen, double weight)
    {
        parts_.push_back({std::move(gen), weight});
        totalWeight_ += weight;
    }

    MemRef
    next() override
    {
        double pick = rng_.uniform() * totalWeight_;
        for (auto& p : parts_) {
            if (pick < p.weight)
                return p.gen->next();
            pick -= p.weight;
        }
        return parts_.back().gen->next();
    }

    std::string name() const override { return name_; }

  private:
    struct Part {
        std::unique_ptr<WorkloadGen> gen;
        double weight;
    };

    std::string name_;
    std::vector<Part> parts_;
    double totalWeight_ = 0;
    Xoshiro256 rng_;
};

} // namespace froram

#endif // FRORAM_WORKLOAD_WORKLOAD_HPP
