#include "workload/spec_proxy.hpp"

#include <mutex>

#include "util/common.hpp"

namespace froram {
namespace {

constexpr u64 kKiB = 1024;
constexpr u64 kMiB = 1024 * 1024;

std::vector<SpecProxySpec>
buildSuite()
{
    std::vector<SpecProxySpec> s;
    // name, zipf(fp, alpha, w), chase(fp, w), stride(fp, stride, w),
    // gap, writeFrac.
    //
    // Calibrated against SPEC06-int LLC behavior at a 1 MB L2 (MPKI
    // targets: astar 6, bzip2 4, gcc 6, gob 1.5, h264 1.2, hmmer 0.7,
    // libq 25, mcf 45, omnet 22, perl 1.5, sjeng 0.8). Hot zipf sets
    // mostly fit the LLC; the chase/stride components set the miss
    // intensity and the *footprint over which misses spread*, which is
    // what the PLB reacts to (bzip2/mcf straddle PLB coverage).
    s.push_back({"astar", 640 * kKiB, 1.60, 0.979, 48 * kMiB, 0.012, 0.0, 16,
                 6 * kMiB, 64, 0.009, 3, 0.30});
    s.push_back({"bzip2", 512 * kKiB, 1.60, 0.987, 4 * kMiB, 0.006, 0.0, 24,
                 3 * kMiB, 128, 0.007, 3, 0.35});
    s.push_back({"gcc", 640 * kKiB, 1.60, 0.980, 24 * kMiB, 0.011, 0.0, 16,
                 8 * kMiB, 64, 0.009, 3, 0.30});
    s.push_back({"gob", 512 * kKiB, 1.80, 0.995, 8 * kMiB, 0.005, 0.0, 8,
                 0, 64, 0.0, 4, 0.25});
    s.push_back({"h264", 512 * kKiB, 1.70, 0.995, 0, 0.0, 0.0, 1,
                 4 * kMiB, 192, 0.005, 4, 0.30});
    s.push_back({"hmmer", 384 * kKiB, 2.00, 0.998, 0, 0.0, 0.0, 1,
                 2 * kMiB, 64, 0.002, 3, 0.40});
    s.push_back({"libq", 512 * kKiB, 1.80, 0.930, 0, 0.0, 0.0, 1,
                 32 * kMiB, 64, 0.070, 2, 0.25});
    s.push_back({"mcf", 768 * kKiB, 1.50, 0.478, 96 * kMiB, 0.510, 1.05, 6,
                 16 * kMiB, 64, 0.012, 2, 0.30});
    s.push_back({"omnet", 640 * kKiB, 1.50, 0.680, 48 * kMiB, 0.310, 1.05, 8,
                 8 * kMiB, 64, 0.010, 3, 0.35});
    s.push_back({"perl", 512 * kKiB, 1.70, 0.994, 16 * kMiB, 0.004, 0.0, 16,
                 4 * kMiB, 64, 0.002, 4, 0.35});
    s.push_back({"sjeng", 448 * kKiB, 1.80, 0.997, 12 * kMiB, 0.003, 0.0, 8,
                 0, 64, 0.0, 4, 0.30});
    return s;
}

} // namespace

const std::vector<SpecProxySpec>&
specSuite()
{
    // One-time build; a magic static was equally race-free, but the
    // explicit call_once keeps the initialization visible now that
    // bench/test harnesses may reach this from shard worker threads.
    static std::once_flag once;
    static std::vector<SpecProxySpec> suite;
    std::call_once(once, [] { suite = buildSuite(); });
    return suite;
}

const SpecProxySpec&
specByName(const std::string& name)
{
    for (const auto& s : specSuite()) {
        if (s.name == name)
            return s;
    }
    fatal("unknown SPEC proxy benchmark: ", name);
}

std::unique_ptr<WorkloadGen>
makeSpecProxy(const SpecProxySpec& spec, u64 seed)
{
    auto mix = std::make_unique<MixGen>(spec.name, seed);
    // Each component lives in a disjoint address region so the mixture
    // resembles a program with distinct heap / pointer / streaming areas.
    u64 base = 0;
    if (spec.zipfWeight > 0 && spec.zipfFootprint > 0) {
        mix->add(std::make_unique<ZipfGen>(spec.zipfFootprint,
                                           spec.zipfAlpha, spec.writeFrac,
                                           spec.gap, seed ^ 0x1111, base),
                 spec.zipfWeight);
        base += spec.zipfFootprint;
    }
    if (spec.chaseWeight > 0 && spec.chaseFootprint > 0) {
        if (spec.chaseRun > 1) {
            mix->add(std::make_unique<ClusterGen>(
                         spec.chaseFootprint, /*cluster_bytes=*/2048,
                         spec.chaseRun, spec.chaseAlpha, spec.writeFrac,
                         spec.gap, seed ^ 0x2222, base),
                     spec.chaseWeight);
        } else if (spec.chaseAlpha > 1.0) {
            mix->add(std::make_unique<ZipfGen>(
                         spec.chaseFootprint, spec.chaseAlpha,
                         spec.writeFrac, spec.gap, seed ^ 0x2222, base),
                     spec.chaseWeight);
        } else {
            mix->add(std::make_unique<UniformGen>(
                         spec.chaseFootprint, spec.writeFrac, spec.gap,
                         seed ^ 0x2222, base),
                     spec.chaseWeight);
        }
        base += spec.chaseFootprint;
    }
    if (spec.strideWeight > 0 && spec.strideFootprint > 0) {
        mix->add(std::make_unique<StrideGen>(spec.strideFootprint,
                                             spec.stride, spec.writeFrac,
                                             spec.gap, seed ^ 0x3333, base),
                 spec.strideWeight);
    }
    return mix;
}

} // namespace froram
