/**
 * @file
 * SPEC CPU2006-int proxy workloads.
 *
 * The paper evaluates 11 SPEC06-int benchmarks under Graphite. SPEC
 * binaries/inputs are proprietary and a 3-billion-instruction cycle
 * simulation is not laptop-scale, so each benchmark is modeled as a
 * parameterized mixture of strided, uniform (pointer-chase) and zipf
 * hot-set references over a calibrated footprint (see DESIGN.md,
 * substitution #1). The parameters are tuned to reproduce the properties
 * the paper's results depend on:
 *
 *  - LLC miss intensity (drives ORAM pressure and the Figure 6 slowdown
 *    ordering: mcf/libq/omnet worst, hmmer/sjeng mildest);
 *  - PosMap-block locality (drives PLB behavior: bzip2/mcf footprints
 *    straddle the 8 KB..128 KB PLB coverage range, Figure 5);
 *  - spatial locality (hmmer/libq like 128 B blocks; bzip2/mcf/omnetpp
 *    dislike them, Figure 8).
 */
#ifndef FRORAM_WORKLOAD_SPEC_PROXY_HPP
#define FRORAM_WORKLOAD_SPEC_PROXY_HPP

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace froram {

/** Mixture parameters of one proxy benchmark. */
struct SpecProxySpec {
    std::string name;
    u64 zipfFootprint = 0;   ///< hot-set bytes
    double zipfAlpha = 1.5;
    double zipfWeight = 0;
    u64 chaseFootprint = 0;  ///< pointer-chase bytes
    double chaseWeight = 0;
    /** 0 = uniform chase; >1 = zipf-skewed chase (hot graph regions
     *  get revisited, as in mcf's actual reference behavior). */
    double chaseAlpha = 0;
    /** Sequential lines touched per chase-cluster visit (spatial
     *  locality of allocations); 1 = fully random lines. */
    u32 chaseRun = 1;
    u64 strideFootprint = 0; ///< streaming bytes
    u64 stride = 64;
    double strideWeight = 0;
    u32 gap = 3;             ///< instructions between references
    double writeFrac = 0.3;
};

/** The 11-benchmark suite of the paper's evaluation. */
const std::vector<SpecProxySpec>& specSuite();

/** Look up a suite entry by name (fatal on unknown name). */
const SpecProxySpec& specByName(const std::string& name);

/** Instantiate the generator for a spec with a deterministic seed. */
std::unique_ptr<WorkloadGen> makeSpecProxy(const SpecProxySpec& spec,
                                           u64 seed);

} // namespace froram

#endif // FRORAM_WORKLOAD_SPEC_PROXY_HPP
