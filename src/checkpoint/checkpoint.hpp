/**
 * @file
 * Checkpoint/restore subsystem: authenticated serialization of the
 * trusted ORAM controller state.
 *
 * Freecursive ORAM's security argument treats the on-chip state — PosMap
 * Lookaside Buffer, on-chip PosMap, stash, integrity counters, the
 * encryption seed register and the leaf-remapping RNG — as one unit. A
 * resumable deployment therefore has to persist that unit atomically and
 * authenticate it on the way back in: a snapshot the adversary can
 * truncate, splice or field-flip without detection would hand back a
 * controller whose counters disagree with the tree it verifies.
 *
 * Three layers, bottom to top:
 *
 *  - CheckpointWriter / CheckpointReader: length-prefixed, tag-framed
 *    binary sections (little-endian). Every read is bounds-checked and
 *    every section tag verified, so a truncated or mis-framed payload
 *    raises CheckpointError instead of decoding garbage.
 *
 *  - the envelope: seal() wraps a payload with magic, format version,
 *    a configuration fingerprint and a 128-bit MAC (keyed SHA3-224 over
 *    the whole header + payload, domain-separated from PMMAC block tags
 *    by a reserved address constant far outside any unified block
 *    address). unseal() verifies all of it and rejects loudly.
 *
 *  - atomic file commit: writeFileAtomic() streams the sealed blob to
 *    `path + ".tmp"`, fsyncs, renames over `path` and fsyncs the parent
 *    directory. A crash at any byte boundary leaves either the previous
 *    complete snapshot or a torn temp file that restore never looks at;
 *    a torn rename target is caught by the length prefix / MAC.
 *
 * Component serialization (Stash, Plb, frontends, ...) lives with each
 * component as saveState()/restoreState() methods over these primitives.
 */
#ifndef FRORAM_CHECKPOINT_CHECKPOINT_HPP
#define FRORAM_CHECKPOINT_CHECKPOINT_HPP

#include <string>
#include <vector>

#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

class Mac;

/**
 * Exception raised when a snapshot cannot be parsed, authenticated or
 * applied. Restore paths throw this instead of resuming corrupt state.
 */
class CheckpointError : public std::runtime_error {
  public:
    explicit CheckpointError(const std::string& what)
        : std::runtime_error("checkpoint: " + what)
    {
    }
};

namespace ckpt {

/** Envelope magic: "FRORAMCK" little-endian. */
constexpr u64 kMagic = 0x4B434D41524F5246ULL;
/** Snapshot format version. Any layout change bumps this; unseal()
 *  rejects every other version (no silent cross-version migration). */
constexpr u32 kVersion = 1;
/**
 * MAC domain separator, passed as the `addr` input of the PMMAC-style
 * keyed MAC. Unified block addresses are bounded by the recursion
 * geometry (far below 2^48), so no PMMAC block tag is ever computed
 * over this address — a snapshot tag can never be replayed as a block
 * tag or vice versa. The checkpoint MAC key is additionally derived
 * with its own KDF label, separating it from the bucket-pad and PMMAC
 * keys.
 */
constexpr u64 kMacDomain = 0xC4EC4B0046524F52ULL;

/** Envelope byte layout (see seal()). */
constexpr u64 kHeaderBytes = 32;
constexpr u64 kTagBytes = 16;

/** @name Section tags ("what am I parsing" guards inside the payload) @{ */
constexpr u32 kTagSystem = 0x53595330;     // "SYS0"
constexpr u32 kTagDataPlane = 0x44415441;  // "DATA"
constexpr u32 kTagDram = 0x4452414D;       // "DRAM"
constexpr u32 kTagFrontend = 0x46524E54;   // "FRNT"
constexpr u32 kTagBackend = 0x424B4E44;    // "BKND"
constexpr u32 kTagStash = 0x53545348;      // "STSH"
constexpr u32 kTagPlb = 0x504C4230;        // "PLB0"
constexpr u32 kTagPosMap = 0x504F534D;     // "POSM"
constexpr u32 kTagTreeStore = 0x54524545;  // "TREE"
constexpr u32 kTagRng = 0x524E4730;        // "RNG0"
constexpr u32 kTagOracle = 0x4F52434C;     // "ORCL"
constexpr u32 kTagBuffer = 0x42554646;     // "BUFF"
constexpr u32 kTagManifest = 0x4D4E4653;   // "MNFS" (sharded service)
constexpr u32 kTagScheme = 0x53434845;     // "SCHE" (bucket-scheme state)
constexpr u32 kTagDsMap = 0x44534D50;      // "DSMP" (ObliviousMap residue)
constexpr u32 kTagDsIndex = 0x44534958;    // "DSIX" (ObliviousIndex residue)
/** @} */

} // namespace ckpt

/** Appends little-endian fields and tag-framed sections to a buffer. */
class CheckpointWriter {
  public:
    void
    putU8(u8 v)
    {
        out_.push_back(v);
    }

    void
    putU32(u32 v)
    {
        putLe(v, 4);
    }

    void
    putU64(u64 v)
    {
        putLe(v, 8);
    }

    void
    putBytes(const u8* data, u64 len)
    {
        out_.insert(out_.end(), data, data + len);
    }

    /** Length-prefixed byte string. */
    void
    putBlob(const u8* data, u64 len)
    {
        putU64(len);
        putBytes(data, len);
    }

    /** Open a section: tag + length placeholder (patched by end()). */
    void
    begin(u32 tag)
    {
        putU32(tag);
        open_.push_back(out_.size());
        putU64(0);
    }

    /** Close the innermost open section, patching its length. */
    void
    end()
    {
        FRORAM_ASSERT(!open_.empty(), "no open checkpoint section");
        const u64 at = open_.back();
        open_.pop_back();
        const u64 len = out_.size() - (at + 8);
        storeLe(out_.data() + at, len);
    }

    /** Serialized bytes; every begun section must be ended. */
    const std::vector<u8>&
    bytes() const
    {
        FRORAM_ASSERT(open_.empty(), "unclosed checkpoint section");
        return out_;
    }

  private:
    void
    putLe(u64 v, u64 nbytes)
    {
        const u64 at = out_.size();
        out_.resize(at + nbytes);
        storeLe(out_.data() + at, v, nbytes);
    }

    std::vector<u8> out_;
    std::vector<u64> open_;
};

/**
 * Bounds-checked reader over a serialized payload. Any overrun, tag
 * mismatch or leftover bytes raises CheckpointError: a snapshot either
 * parses exactly or is rejected wholesale.
 */
class CheckpointReader {
  public:
    CheckpointReader(const u8* data, u64 len) : data_(data), end_(len) {}

    u8
    getU8()
    {
        need(1);
        return data_[pos_++];
    }

    u32
    getU32()
    {
        return static_cast<u32>(getLe(4));
    }

    u64
    getU64()
    {
        return getLe(8);
    }

    void
    getBytes(u8* dst, u64 len)
    {
        need(len);
        for (u64 i = 0; i < len; ++i)
            dst[i] = data_[pos_ + i];
        pos_ += len;
    }

    std::vector<u8>
    getBlob()
    {
        const u64 len = getU64();
        need(len);
        std::vector<u8> out(data_ + pos_, data_ + pos_ + len);
        pos_ += len;
        return out;
    }

    /** Enter a section, verifying its tag and bounding reads to it. */
    void
    enter(u32 expect_tag)
    {
        const u32 tag = getU32();
        if (tag != expect_tag)
            throw CheckpointError("section tag mismatch (expected 0x" +
                                  hex(expect_tag) + ", found 0x" +
                                  hex(tag) + ")");
        const u64 len = getU64();
        need(len);
        bounds_.push_back(end_);
        end_ = pos_ + len;
    }

    /** Leave the current section; it must be fully consumed. */
    void
    exit()
    {
        FRORAM_ASSERT(!bounds_.empty(), "no entered checkpoint section");
        if (pos_ != end_)
            throw CheckpointError(
                "section has " + std::to_string(end_ - pos_) +
                " unconsumed bytes (format drift or corruption)");
        end_ = bounds_.back();
        bounds_.pop_back();
    }

    /** Require the stream to be fully consumed (top-level epilogue). */
    void
    expectEnd() const
    {
        if (pos_ != end_)
            throw CheckpointError(std::to_string(end_ - pos_) +
                                  " trailing bytes after payload");
    }

  private:
    static std::string
    hex(u32 v)
    {
        static const char* digits = "0123456789abcdef";
        std::string s(8, '0');
        for (int i = 7; i >= 0; --i, v >>= 4)
            s[static_cast<size_t>(i)] = digits[v & 0xF];
        return s;
    }

    void
    need(u64 len) const
    {
        if (pos_ + len > end_ || pos_ + len < pos_)
            throw CheckpointError("truncated snapshot payload (need " +
                                  std::to_string(len) + " bytes at offset " +
                                  std::to_string(pos_) + ")");
    }

    u64
    getLe(u64 nbytes)
    {
        need(nbytes);
        const u64 v = loadLe(data_ + pos_, nbytes);
        pos_ += nbytes;
        return v;
    }

    const u8* data_;
    u64 pos_ = 0;
    u64 end_;
    std::vector<u64> bounds_;
};

namespace ckpt {

/**
 * Wrap `payload` in the authenticated envelope:
 *
 *   [0,8)    magic "FRORAMCK"
 *   [8,12)   format version
 *   [12,16)  reserved (zero)
 *   [16,24)  configuration fingerprint
 *   [24,32)  payload length
 *   [32,32+len)        payload
 *   [32+len,48+len)    MAC tag over bytes [0, 32+len)
 */
std::vector<u8> seal(const std::vector<u8>& payload, const Mac& mac,
                     u64 fingerprint);

/**
 * Verify an envelope and return its payload. Throws CheckpointError on
 * any of: short blob, magic/version mismatch, length-prefix mismatch
 * (torn write), fingerprint mismatch (wrong configuration), MAC
 * mismatch (tampering or bit rot).
 */
std::vector<u8> unseal(const std::vector<u8>& blob, const Mac& mac,
                       u64 fingerprint);

/**
 * Atomic commit: write to `path + ".tmp"`, fsync, rename over `path`,
 * fsync the directory. Throws CheckpointError on any I/O failure.
 */
void writeFileAtomic(const std::string& path, const std::vector<u8>& blob);

/** Read a snapshot file wholesale; CheckpointError if unreadable. */
std::vector<u8> readFile(const std::string& path);

/**
 * fsync the directory containing `path` (best effort: a medium that
 * cannot open its directory is already past saving). Creating or
 * renaming a file is only durable once its directory entry is — the
 * checkpoint commit and the journal's segment roll both depend on it.
 */
void fsyncParentDir(const std::string& path);

/** True if a regular file exists at `path` (restore pre-validation:
 *  callers use it to fail atomically before touching any state). */
bool fileExists(const std::string& path);

/** The trailing 16-byte MAC tag of a sealed blob. A sharded manifest
 *  pins each shard snapshot by this tag, so an individually rolled-back
 *  (but validly sealed) shard snapshot is rejected at open(). */
std::vector<u8> sealedTag(const std::vector<u8>& blob);

} // namespace ckpt

} // namespace froram

#endif // FRORAM_CHECKPOINT_CHECKPOINT_HPP
