#include "checkpoint/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "crypto/prf.hpp"

namespace froram {
namespace ckpt {
namespace {

std::string
errnoString()
{
    return std::strerror(errno);
}

/** Directory part of `path` ("." when none) for the post-rename fsync. */
std::string
dirOf(const std::string& path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

std::vector<u8>
seal(const std::vector<u8>& payload, const Mac& mac, u64 fingerprint)
{
    std::vector<u8> blob(kHeaderBytes + payload.size() + kTagBytes);
    storeLe(blob.data(), kMagic);
    storeLe(blob.data() + 8, kVersion, 4);
    storeLe(blob.data() + 12, 0, 4);
    storeLe(blob.data() + 16, fingerprint);
    storeLe(blob.data() + 24, payload.size());
    std::memcpy(blob.data() + kHeaderBytes, payload.data(),
                payload.size());
    const Mac::Tag tag = mac.compute(kVersion, kMacDomain, blob.data(),
                                     kHeaderBytes + payload.size());
    std::memcpy(blob.data() + kHeaderBytes + payload.size(), tag.data(),
                kTagBytes);
    return blob;
}

std::vector<u8>
unseal(const std::vector<u8>& blob, const Mac& mac, u64 fingerprint)
{
    if (blob.size() < kHeaderBytes + kTagBytes)
        throw CheckpointError("snapshot too short (" +
                              std::to_string(blob.size()) +
                              " bytes): torn write or not a snapshot");
    if (loadLe(blob.data()) != kMagic)
        throw CheckpointError("bad magic: not a froram snapshot");
    const u32 version = static_cast<u32>(loadLe(blob.data() + 8, 4));
    if (version != kVersion)
        throw CheckpointError(
            "unsupported snapshot format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(kVersion) + ")");
    const u64 len = loadLe(blob.data() + 24);
    if (blob.size() != kHeaderBytes + len + kTagBytes)
        throw CheckpointError(
            "length prefix says " + std::to_string(len) +
            " payload bytes but the snapshot holds " +
            std::to_string(blob.size()) + " total: torn write");
    Mac::Tag stored;
    std::memcpy(stored.data(), blob.data() + kHeaderBytes + len,
                kTagBytes);
    if (!mac.verify(stored, version, kMacDomain, blob.data(),
                    kHeaderBytes + len))
        throw CheckpointError("MAC mismatch: snapshot was tampered with "
                              "or sealed under a different key");
    // Fingerprint after the MAC: an attacker-controlled fingerprint must
    // not steer error reporting, and an authentic snapshot for a
    // different configuration deserves the specific message.
    if (loadLe(blob.data() + 16) != fingerprint)
        throw CheckpointError(
            "configuration fingerprint mismatch: snapshot was taken "
            "under a different scheme/geometry/seed configuration");
    return std::vector<u8>(blob.begin() + kHeaderBytes,
                           blob.begin() + static_cast<long>(kHeaderBytes +
                                                            len));
}

void
writeFileAtomic(const std::string& path, const std::vector<u8>& blob)
{
    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw CheckpointError("cannot create " + tmp + ": " +
                              errnoString());
    u64 off = 0;
    while (off < blob.size()) {
        const ssize_t n =
            ::write(fd, blob.data() + off, blob.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string err = errnoString();
            ::close(fd);
            ::unlink(tmp.c_str());
            throw CheckpointError("cannot write " + tmp + ": " + err);
        }
        off += static_cast<u64>(n);
    }
    if (::fsync(fd) != 0) {
        const std::string err = errnoString();
        ::close(fd);
        ::unlink(tmp.c_str());
        throw CheckpointError("cannot fsync " + tmp + ": " + err);
    }
    if (::close(fd) != 0)
        throw CheckpointError("cannot close " + tmp + ": " +
                              errnoString());
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string err = errnoString();
        ::unlink(tmp.c_str());
        throw CheckpointError("cannot rename " + tmp + " over " + path +
                              ": " + err);
    }
    // Persist the rename itself; without this a crash can roll the
    // directory entry back to the previous snapshot (which is safe) or
    // to nothing on a fresh path (which restore reports loudly).
    fsyncParentDir(path);
}

void
fsyncParentDir(const std::string& path)
{
    const int dfd = ::open(dirOf(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

std::vector<u8>
readFile(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw CheckpointError("cannot open snapshot " + path + ": " +
                              errnoString());
    std::vector<u8> blob;
    u8 buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string err = errnoString();
            ::close(fd);
            throw CheckpointError("cannot read snapshot " + path + ": " +
                                  err);
        }
        if (n == 0)
            break;
        blob.insert(blob.end(), buf, buf + n);
    }
    ::close(fd);
    return blob;
}

bool
fileExists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::vector<u8>
sealedTag(const std::vector<u8>& blob)
{
    if (blob.size() < kHeaderBytes + kTagBytes)
        throw CheckpointError("sealed blob shorter than its envelope");
    return std::vector<u8>(blob.end() - static_cast<long>(kTagBytes),
                           blob.end());
}

} // namespace ckpt
} // namespace froram
