/**
 * @file
 * On-disk format of the per-shard request journal (see
 * request_journal.hpp for the machine that reads and writes it).
 *
 * A journal is a sequence of segment files under the service directory:
 *
 *   shard-NNNN.jSSSSSS.wal      (NNNN = shard, SSSSSS = segment index)
 *
 * Segment layout:
 *
 *   [0,8)   magic "FRORAMWJ"
 *   [8,12)  format version (kJournalVersion; any layout change bumps
 *           it, and open rejects every other version — same no-silent-
 *           migration policy as the checkpoint envelope)
 *   [12,16) shard index
 *   [16,24) sequence id of the first record this segment holds
 *   [24,28) CRC-32 of bytes [0,24)
 *   [28,32) reserved (zero)
 *   then records, back to back:
 *
 *   [0,4)   frameLen: length of the body in bytes
 *   [4,8)   CRC-32 of the body
 *   [8,8+frameLen) body:
 *       [0,8)   sequence id (strictly +1 per record, across segments)
 *       [8,16)  shard-local block address
 *       [16,17) flags (bit 0: write)
 *       [17,..) write payload (writes only; empty = zero-fill write)
 *
 * All integers little-endian. A record is valid iff its frame fits the
 * file, frameLen is within bounds, the CRC matches and its sequence id
 * continues the chain — the first violation is a torn tail: everything
 * from it on is discarded at open, never misread. The CRC is a crash
 * detector, not an adversary detector; see README "Fault model &
 * recovery" for the journal trust model.
 */
#ifndef FRORAM_JOURNAL_JOURNAL_FORMAT_HPP
#define FRORAM_JOURNAL_JOURNAL_FORMAT_HPP

#include <string>

#include "util/common.hpp"

namespace froram {
namespace journal {

/** Segment magic: "FRORAMWJ" little-endian. */
constexpr u64 kSegmentMagic = 0x4A574D41524F5246ULL;
constexpr u32 kJournalVersion = 1;

constexpr u64 kSegmentHeaderBytes = 32;
/** Record frame prefix: frameLen + body CRC. */
constexpr u64 kRecordFrameBytes = 8;
/** Fixed body bytes before the payload: seq + addr + flags. */
constexpr u64 kRecordBodyFixedBytes = 17;
/** Bound on one record's body (a frameLen beyond this is damage, not a
 *  record — it caps how far a torn length prefix can send the parser). */
constexpr u64 kMaxRecordBodyBytes = u64{1} << 20;

constexpr u8 kFlagWrite = 0x01;

/** Segment file path of (shard, segment index) under `dir` — the one
 *  place the segment filename format lives. */
std::string segmentPath(const std::string& dir, u32 shard, u64 index);

/** Parse a segment filename for `shard`; returns the segment index or
 *  -1 when `name` is not a journal segment of that shard. */
i64 parseSegmentName(const char* name, u32 shard);

} // namespace journal
} // namespace froram

#endif // FRORAM_JOURNAL_JOURNAL_FORMAT_HPP
