#include "journal/request_journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "checkpoint/checkpoint.hpp"
#include "journal/journal_format.hpp"
#include "mem/fault_injecting_backend.hpp"
#include "util/bitops.hpp"
#include "util/crc32.hpp"

namespace froram {
namespace journal {

std::string
segmentPath(const std::string& dir, u32 shard, u64 index)
{
    char name[48];
    std::snprintf(name, sizeof(name), "shard-%04u.j%06llu.wal", shard,
                  static_cast<unsigned long long>(index));
    return dir + "/" + name;
}

i64
parseSegmentName(const char* name, u32 shard)
{
    unsigned idx = 0;
    unsigned long long seg = 0;
    if (std::sscanf(name, "shard-%4u.j%6llu.wal", &idx, &seg) != 2 ||
        idx != shard)
        return -1;
    char expect[48];
    std::snprintf(expect, sizeof(expect), "shard-%04u.j%06llu.wal", idx,
                  seg);
    return std::strcmp(name, expect) == 0 ? static_cast<i64>(seg) : -1;
}

} // namespace journal

namespace {

std::string
errnoString()
{
    return std::strerror(errno);
}

void
writeFully(int fd, const u8* data, u64 len)
{
    u64 off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw StorageError("journal write failed: " + errnoString(),
                               false);
        }
        off += static_cast<u64>(n);
    }
}

std::vector<u8>
readWhole(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw StorageError("cannot open journal segment " + path + ": " +
                           errnoString(),
                           false);
    std::vector<u8> bytes;
    u8 buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string err = errnoString();
            ::close(fd);
            throw StorageError("cannot read journal segment " + path +
                                   ": " + err,
                               false);
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
    return bytes;
}

void
flipBit(u8* bytes, u64 len, u64 bit_index)
{
    if (len == 0)
        return;
    const u64 bit = bit_index % (len * 8);
    bytes[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
}

/** Header validity check; returns the first sequence id via out-param. */
bool
parseSegmentHeader(const std::vector<u8>& bytes, u32 shard,
                   u64* first_seq)
{
    using namespace journal;
    if (bytes.size() < kSegmentHeaderBytes)
        return false;
    if (loadLe(bytes.data()) != kSegmentMagic)
        return false;
    if (loadLe(bytes.data() + 8, 4) != kJournalVersion)
        return false;
    if (loadLe(bytes.data() + 12, 4) != shard)
        return false;
    if (loadLe(bytes.data() + 24, 4) != crc32(bytes.data(), 24))
        return false;
    *first_seq = loadLe(bytes.data() + 16);
    return true;
}

/**
 * Walk the records of a parsed segment starting at `expect_seq`.
 * Returns the byte offset of the first invalid record (bytes.size()
 * when the whole segment is valid) and advances *expect_seq past every
 * valid record. When `fn` is set it is invoked per valid record.
 */
u64
walkRecords(const std::vector<u8>& bytes, u64* expect_seq,
            const std::function<void(const JournalRecord&)>* fn)
{
    using namespace journal;
    u64 off = kSegmentHeaderBytes;
    for (;;) {
        if (off + kRecordFrameBytes > bytes.size())
            return off;
        const u64 body_len = loadLe(bytes.data() + off, 4);
        const u32 want_crc =
            static_cast<u32>(loadLe(bytes.data() + off + 4, 4));
        if (body_len < kRecordBodyFixedBytes ||
            body_len > kMaxRecordBodyBytes)
            return off;
        if (off + kRecordFrameBytes + body_len > bytes.size())
            return off;
        const u8* body = bytes.data() + off + kRecordFrameBytes;
        if (crc32(body, body_len) != want_crc)
            return off;
        const u64 seq = loadLe(body);
        if (seq != *expect_seq)
            return off;
        if (fn != nullptr) {
            JournalRecord rec;
            rec.seq = seq;
            rec.addr = loadLe(body + 8);
            rec.isWrite = (body[16] & kFlagWrite) != 0;
            rec.payload.assign(body + kRecordBodyFixedBytes,
                               body + body_len);
            (*fn)(rec);
        }
        ++*expect_seq;
        off += kRecordFrameBytes + body_len;
    }
}

} // namespace

RequestJournal::RequestJournal(std::string dir, u32 shard,
                               const JournalConfig& cfg,
                               const RetryPolicy& retry,
                               std::shared_ptr<FaultSchedule> schedule,
                               bool reset)
    : dir_(std::move(dir)), shard_(shard), cfg_(cfg), retry_(retry),
      schedule_(std::move(schedule))
{
    if (dir_.empty())
        fatal("a request journal needs a service directory");
    if (retry_.maxAttempts == 0)
        fatal("journal retry policy needs at least one attempt");
    frame_.reserve(256);

    // Enumerate this shard's segments (sorted by segment index).
    std::vector<u64> indices;
    if (DIR* d = ::opendir(dir_.c_str())) {
        while (struct dirent* e = ::readdir(d)) {
            const i64 idx = journal::parseSegmentName(e->d_name, shard_);
            if (idx >= 0)
                indices.push_back(static_cast<u64>(idx));
        }
        ::closedir(d);
    } else {
        throw StorageError("cannot open journal directory " + dir_ +
                               ": " + errnoString(),
                           false);
    }
    std::sort(indices.begin(), indices.end());

    if (reset) {
        for (const u64 idx : indices)
            ::unlink(journal::segmentPath(dir_, shard_, idx).c_str());
        ckpt::fsyncParentDir(journal::segmentPath(dir_, shard_, 1));
        indices.clear();
    }
    for (const u64 idx : indices)
        segments_.push_back(Segment{idx, 0, 0});

    if (segments_.empty()) {
        startSegment(1, 1);
        return;
    }
    openExisting();
}

void
RequestJournal::openExisting()
{
    // Validate the chain oldest-first. The first violation — torn
    // header, invalid record, sequence discontinuity — marks the torn
    // tail: that segment is truncated at its last valid record and
    // every later segment is deleted. Records after damage are NEVER
    // replayed, even if they would parse.
    u64 expect_seq = 0;
    u64 last_seq = 0;
    size_t pos = 0;
    bool damaged = false;
    for (; pos < segments_.size(); ++pos) {
        Segment& seg = segments_[pos];
        const std::string path =
            journal::segmentPath(dir_, shard_, seg.index);
        const std::vector<u8> bytes = readWhole(path);
        u64 first_seq = 0;
        if (!parseSegmentHeader(bytes, shard_, &first_seq) ||
            (pos != 0 && first_seq != last_seq + 1)) {
            // Torn segment header (a crash mid-roll) or a chain break:
            // the whole file holds nothing trustworthy.
            damaged = true;
            break;
        }
        expect_seq = first_seq;
        const u64 valid_end = walkRecords(bytes, &expect_seq, nullptr);
        seg.firstSeq = first_seq;
        seg.lastSeq = expect_seq - 1;
        last_seq = pos == 0 && expect_seq == first_seq
                       ? first_seq - 1
                       : expect_seq - 1;
        if (valid_end != bytes.size()) {
            // Torn tail inside this segment: truncate the damage away
            // (durably) and drop everything after it.
            const int fd = ::open(path.c_str(), O_WRONLY);
            if (fd < 0 ||
                ::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
                const std::string err = errnoString();
                if (fd >= 0)
                    ::close(fd);
                throw StorageError("cannot repair torn journal tail in " +
                                       path + ": " + err,
                                   false);
            }
            ::fdatasync(fd);
            ::close(fd);
            ++pos;
            damaged = true;
            break;
        }
    }
    if (damaged) {
        // `pos` is the first segment position that must not survive.
        for (size_t p = pos; p < segments_.size(); ++p)
            ::unlink(journal::segmentPath(dir_, shard_,
                                          segments_[p].index)
                         .c_str());
        segments_.resize(pos);
        ckpt::fsyncParentDir(journal::segmentPath(dir_, shard_, 1));
    }
    if (segments_.empty()) {
        // The only segment had a torn header, so no record of this
        // journal was ever durable: start over. (GC keeps the active
        // segment alive and a roll makes the previous segment durable
        // first, so an unreadable *first* segment implies seq 1 was
        // never covered — restarting at 1 is exact.)
        startSegment(1, 1);
        return;
    }

    appended_.store(last_seq, std::memory_order_release);
    durable_.store(last_seq, std::memory_order_release);

    // Reopen the surviving tail segment for appending.
    const Segment& active = segments_.back();
    const std::string path =
        journal::segmentPath(dir_, shard_, active.index);
    fd_ = ::open(path.c_str(), O_WRONLY);
    if (fd_ < 0)
        throw StorageError("cannot reopen journal segment " + path +
                               ": " + errnoString(),
                           false);
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0)
        throw StorageError("cannot seek journal segment " + path + ": " +
                           errnoString(),
                           false);
    activeBytes_ = static_cast<u64>(end);
    durableBytes_ = activeBytes_;
}

RequestJournal::~RequestJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
RequestJournal::activePath() const
{
    return journal::segmentPath(dir_, shard_, segments_.back().index);
}

void
RequestJournal::startSegment(u64 index, u64 first_seq)
{
    const std::string path = journal::segmentPath(dir_, shard_, index);
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw StorageError("cannot create journal segment " + path +
                               ": " + errnoString(),
                           false);
    u8 header[journal::kSegmentHeaderBytes] = {0};
    storeLe(header, journal::kSegmentMagic);
    storeLe(header + 8, journal::kJournalVersion, 4);
    storeLe(header + 12, shard_, 4);
    storeLe(header + 16, first_seq);
    storeLe(header + 24, crc32(header, 24), 4);
    try {
        writeFully(fd, header, sizeof(header));
    } catch (...) {
        ::close(fd);
        ::unlink(path.c_str());
        throw;
    }
    // The segment's *name* must be durable before any record in it can
    // be: fdatasync covers file bytes, not the directory entry.
    ckpt::fsyncParentDir(path);
    fd_ = fd;
    activeBytes_ = journal::kSegmentHeaderBytes;
    durableBytes_ = activeBytes_;
    segments_.push_back(Segment{index, first_seq, first_seq - 1});
}

void
RequestJournal::backoffSleep(u32 attempt)
{
    // Mirrors RetryingBackend: exponential doubling, clamped, plus up
    // to +50% deterministic jitter so parallel shards decohere.
    const u32 shift = attempt - 1 < 32 ? attempt - 1 : 31;
    u64 us = retry_.baseBackoffUs << shift;
    us = std::min(std::max(us, retry_.baseBackoffUs),
                  retry_.maxBackoffUs);
    const u64 jitter =
        splitmix64Mix(retry_.jitterSeed ^ (jitterCounter_++ + shard_));
    us += (us / 2) * (jitter & 0xffff) / 0x10000;
    if (us != 0)
        std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void
RequestJournal::repairTail(u64 bytes)
{
    if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(bytes), SEEK_SET) < 0) {
        // The tail cannot be restored to a record boundary: anything
        // appended from here on could land after garbage and be
        // unreachable at replay. Fail-stop the journal.
        failed_ = true;
        throw StorageError(
            "journal tail of shard " + std::to_string(shard_) +
                " is unrecoverable after a failed append: " +
                errnoString(),
            false);
    }
    activeBytes_ = bytes;
}

u64
RequestJournal::append(Addr addr, bool is_write, const u8* payload,
                       u64 len)
{
    using namespace journal;
    if (failed_)
        throw StorageError("journal of shard " + std::to_string(shard_) +
                               " has fail-stopped",
                           false);
    const u64 body_len = kRecordBodyFixedBytes + len;
    if (body_len > kMaxRecordBodyBytes)
        fatal("journal record payload of ", len,
              " bytes exceeds the record bound");
    const u64 seq = lastAppended() + 1;

    if (activeBytes_ + kRecordFrameBytes + body_len > cfg_.segmentBytes &&
        segments_.back().lastSeq >= segments_.back().firstSeq)
        roll(seq);

    frame_.resize(kRecordFrameBytes + body_len);
    u8* body = frame_.data() + kRecordFrameBytes;
    storeLe(body, seq);
    storeLe(body + 8, addr);
    body[16] = is_write ? kFlagWrite : 0;
    if (len != 0)
        std::memcpy(body + kRecordBodyFixedBytes, payload, len);
    storeLe(frame_.data(), body_len, 4);
    storeLe(frame_.data() + 4, crc32(body, body_len), 4);

    const u64 record_off = activeBytes_;
    for (u32 attempt = 1;; ++attempt) {
        try {
            bool wrote = false;
            if (schedule_ != nullptr) {
                const auto d = schedule_->onOp(FaultOp::JournalAppend);
                if (d.fire) {
                    switch (d.spec.kind) {
                      case FaultKind::Eio:
                        throw StorageError(
                            std::string("injected ") +
                                (d.spec.transient ? "transient"
                                                  : "persistent") +
                                " I/O error on journal append",
                            d.spec.transient);
                      case FaultKind::TornWrite: {
                        u64 torn =
                            d.spec.tornBytes == FaultSpec::kHalfTorn
                                ? frame_.size() / 2
                                : d.spec.tornBytes;
                        torn = std::min<u64>(torn, frame_.size());
                        writeFully(fd_, frame_.data(), torn);
                        throw StorageError(
                            "injected torn journal append (" +
                                std::to_string(torn) + "/" +
                                std::to_string(frame_.size()) +
                                " bytes landed)",
                            d.spec.transient);
                      }
                      case FaultKind::BitRot: {
                        // Silent frame corruption: lands fully,
                        // reports success; the torn-tail scan stops at
                        // it on the next open.
                        std::vector<u8> rotten = frame_;
                        flipBit(rotten.data(), rotten.size(),
                                d.spec.bitIndex);
                        writeFully(fd_, rotten.data(), rotten.size());
                        wrote = true;
                        break;
                      }
                      case FaultKind::Latency:
                        if (d.spec.latencyUs != 0)
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(
                                    d.spec.latencyUs));
                        break;
                    }
                }
            }
            if (!wrote)
                writeFully(fd_, frame_.data(), frame_.size());
            break;
        } catch (const StorageError& e) {
            // Truncate whatever prefix landed back off the tail, THEN
            // decide between reissue and surfacing: either way the
            // journal ends at a record boundary.
            repairTail(record_off);
            if (!e.transient() || attempt >= retry_.maxAttempts)
                throw;
            faultsRetried_.fetch_add(1, std::memory_order_relaxed);
            backoffSleep(attempt);
        }
    }

    activeBytes_ += frame_.size();
    segments_.back().lastSeq = seq;
    if (unsyncedRecords() == 0)
        oldestUnsyncedAt_ = std::chrono::steady_clock::now();
    appended_.store(seq, std::memory_order_release);
    return seq;
}

void
RequestJournal::barrier(FaultOp op)
{
    for (u32 attempt = 1;; ++attempt) {
        try {
            if (schedule_ != nullptr) {
                const auto d = schedule_->onOp(op);
                if (d.fire) {
                    if (d.spec.kind == FaultKind::Latency) {
                        if (d.spec.latencyUs != 0)
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(
                                    d.spec.latencyUs));
                    } else {
                        // A failed barrier, however phrased.
                        throw StorageError(
                            std::string("injected journal ") +
                                toString(op) + " failure",
                            d.spec.transient);
                    }
                }
            }
            if (::fdatasync(fd_) != 0)
                throw StorageError("journal fdatasync failed: " +
                                       errnoString(),
                                   false);
            return;
        } catch (const StorageError& e) {
            if (!e.transient() || attempt >= retry_.maxAttempts)
                throw;
            faultsRetried_.fetch_add(1, std::memory_order_relaxed);
            backoffSleep(attempt);
        }
    }
}

void
RequestJournal::sync()
{
    if (failed_)
        throw StorageError("journal of shard " + std::to_string(shard_) +
                               " has fail-stopped",
                           false);
    if (unsyncedRecords() == 0)
        return;
    barrier(FaultOp::JournalSync);
    durable_.store(lastAppended(), std::memory_order_release);
    durableBytes_ = activeBytes_;
}

bool
RequestJournal::syncDue() const
{
    if (cfg_.fsyncMaxDelayUs == 0 || unsyncedRecords() == 0)
        return false;
    const auto waited =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - oldestUnsyncedAt_)
            .count();
    return waited >= static_cast<i64>(cfg_.fsyncMaxDelayUs);
}

void
RequestJournal::roll(u64 next_seq)
{
    // fdatasync on segment roll: a sealed segment is durable before
    // the journal moves past it (its records may be acked as a side
    // effect — group commit only ever syncs *earlier*, never later).
    barrier(FaultOp::JournalRoll);
    durable_.store(lastAppended(), std::memory_order_release);
    durableBytes_ = activeBytes_;
    ::close(fd_);
    fd_ = -1;
    startSegment(segments_.back().index + 1, next_seq);
}

void
RequestJournal::rollbackTail()
{
    const u64 durable = lastDurable();
    if (lastAppended() == durable)
        return;
    repairTail(durableBytes_);
    // Unsynced records are confined to the active segment, so cutting
    // it back to the last barrier restores lastSeq = durable exactly
    // (firstSeq - 1 when the whole segment was unsynced).
    segments_.back().lastSeq = durable;
    appended_.store(durable, std::memory_order_release);
}

u64
RequestJournal::firstAvailable() const
{
    return segments_.front().firstSeq;
}

void
RequestJournal::replay(
    u64 from_seq, u64 to_seq,
    const std::function<void(const JournalRecord&)>& fn) const
{
    for (const Segment& seg : segments_) {
        if (seg.lastSeq < seg.firstSeq || seg.lastSeq <= from_seq)
            continue;
        if (seg.firstSeq > to_seq)
            break;
        const std::vector<u8> bytes =
            readWhole(journal::segmentPath(dir_, shard_, seg.index));
        u64 first_seq = 0;
        if (!parseSegmentHeader(bytes, shard_, &first_seq) ||
            first_seq != seg.firstSeq)
            throw StorageError("journal segment of shard " +
                                   std::to_string(shard_) +
                                   " rotted underneath a running "
                                   "journal",
                               false);
        u64 expect = first_seq;
        const std::function<void(const JournalRecord&)> filtered =
            [&](const JournalRecord& rec) {
                if (rec.seq > from_seq && rec.seq <= to_seq)
                    fn(rec);
            };
        walkRecords(bytes, &expect, &filtered);
        if (expect <= seg.lastSeq &&
            // Appended-but-unsynced bytes live in the page cache and
            // are visible to reads, so a shortfall is real corruption.
            expect <= to_seq)
            throw StorageError(
                "journal record " + std::to_string(expect) +
                    " of shard " + std::to_string(shard_) +
                    " failed validation during replay",
                false);
    }
}

void
RequestJournal::truncateThrough(u64 seq)
{
    bool removed = false;
    while (segments_.size() > 1 && segments_.front().lastSeq <= seq &&
           segments_.front().lastSeq >= segments_.front().firstSeq) {
        ::unlink(journal::segmentPath(dir_, shard_,
                                      segments_.front().index)
                     .c_str());
        segments_.erase(segments_.begin());
        removed = true;
    }
    if (removed)
        ckpt::fsyncParentDir(journal::segmentPath(dir_, shard_, 1));
}

} // namespace froram
