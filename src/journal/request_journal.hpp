/**
 * @file
 * Per-shard write-ahead request journal: the durability layer that
 * turns the supervised shard runtime's bounded-RPO rollback into
 * lossless (RPO = 0) recovery.
 *
 * Why journaling *requests* works here: the whole stack is
 * bit-deterministic — an OramSystem restored from a sealed Full-scope
 * checkpoint and driven with the same request sequence reproduces the
 * same values, adversary traces and checkpoint blobs, bit for bit. So
 * one record per request (shard-local address, op, write payload,
 * sequence id) is a complete recovery recipe: restore the checkpoint,
 * replay the journal suffix through the same submit() path. Reads are
 * journaled too — an ORAM read remaps the PosMap and advances the
 * remapping RNG, so replay without them would diverge.
 *
 * Durability contract (append-then-ack): the shard worker appends a
 * record *before* executing the request and completes the request's
 * future only after the record is durable (group commit: fdatasync
 * after `fsyncEveryRecords` records, after `fsyncMaxDelayUs`, at the
 * end of every queue drain, and on segment roll). An acknowledged
 * request therefore always survives a crash; an unacknowledged one may
 * or may not, and replay decides by what the torn-tail scan finds.
 *
 * Fault surface: every commit I/O consults the shard's FaultSchedule
 * (FaultOp::JournalAppend / JournalSync / JournalRoll), so chaos
 * scripts can target the journal exactly like the data plane. A failed
 * record write is truncated back off the tail before any reissue, which
 * makes the bounded RetryPolicy reissue idempotent.
 *
 * On-disk format: journal_format.hpp. Thread model: owned and driven by
 * one shard worker; lastAppended()/lastDurable()/faultsRetried() are
 * atomics so shardReport() can observe journal lag from any thread.
 */
#ifndef FRORAM_JOURNAL_REQUEST_JOURNAL_HPP
#define FRORAM_JOURNAL_REQUEST_JOURNAL_HPP

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/storage_backend.hpp"
#include "oram/types.hpp"
#include "util/common.hpp"

namespace froram {

class FaultSchedule;
enum class FaultOp : u32; // mem/fault_injecting_backend.hpp

/** Journal arming + group-commit knobs (operational — never part of
 *  any fingerprint). Lives in SupervisionConfig::journal. */
struct JournalConfig {
    /** Arm per-shard request journaling (off = the unjournaled hot
     *  path, with zero added cost and checkpoint-bounded RPO). */
    bool enabled = false;
    /** Group commit: fdatasync once this many records are unsynced
     *  (1 = every record — strict, slow; larger batches amortize the
     *  barrier across requests at no durability cost, because futures
     *  are only completed after the barrier). */
    u64 fsyncEveryRecords = 8;
    /** Group commit: fdatasync when the oldest unsynced record has
     *  waited this long, even if the batch is not full (bounds ack
     *  latency under trickle load; 0 = batch-size/drain-end only). */
    u64 fsyncMaxDelayUs = 2000;
    /** Segment roll threshold (journal GC reclaims whole segments). */
    u64 segmentBytes = u64{4} << 20;
};

/** One replayed journal record (shard-local address space). */
struct JournalRecord {
    u64 seq = 0;
    Addr addr = 0;
    bool isWrite = false;
    std::vector<u8> payload; ///< write image (empty = zero-fill write)
};

/** Per-shard write-ahead journal (see file comment). */
class RequestJournal {
  public:
    /**
     * Open (or create) shard `shard`'s journal under `dir`. With
     * `reset`, any existing segments of this shard are deleted (a new
     * service epoch must never replay its predecessor's log). Without
     * it, the on-disk chain is validated and its torn tail repaired:
     * the first invalid record — short frame, out-of-bounds length,
     * CRC mismatch, sequence gap, torn segment header — is truncated
     * away together with everything after it, so a partial final
     * record is discarded, never misread.
     */
    RequestJournal(std::string dir, u32 shard, const JournalConfig& cfg,
                   const RetryPolicy& retry,
                   std::shared_ptr<FaultSchedule> schedule, bool reset);
    ~RequestJournal();

    RequestJournal(const RequestJournal&) = delete;
    RequestJournal& operator=(const RequestJournal&) = delete;

    /**
     * Append one request record (rolling segments as configured) and
     * return its sequence id. The record is NOT durable until sync()
     * (or a roll) covers it — callers must not complete the request's
     * future before then. Transient failures are reissued under the
     * RetryPolicy after truncating the partial frame back off the
     * tail; a persistent failure throws StorageError with the tail
     * repaired (the journal stays usable for later appends).
     */
    u64 append(Addr addr, bool is_write, const u8* payload, u64 len);

    /** Group-commit barrier: fdatasync the active segment, making
     *  every appended record durable. Throws StorageError when the
     *  barrier ultimately fails (records stay appended-not-durable). */
    void sync();

    /** True when the max-latency half of group commit demands a
     *  sync() now (oldest unsynced record older than fsyncMaxDelayUs). */
    bool syncDue() const;

    /** @name Watermarks (safe from any thread) @{ */
    u64 lastAppended() const
    {
        return appended_.load(std::memory_order_acquire);
    }
    u64 lastDurable() const
    {
        return durable_.load(std::memory_order_acquire);
    }
    u64 unsyncedRecords() const
    {
        return lastAppended() - lastDurable();
    }
    /** Transient journal-commit faults absorbed by the retry layer. */
    u64 faultsRetried() const
    {
        return faultsRetried_.load(std::memory_order_relaxed);
    }
    /** @} */

    /** Smallest sequence id still on disk (GC watermark + 1). */
    u64 firstAvailable() const;

    /** Segment files currently on disk (introspection/tests). */
    u64 segmentCount() const { return segments_.size(); }

    /**
     * Invoke `fn` for every record with from_seq < seq <= to_seq, in
     * sequence order, re-validating frames from disk. Corruption here
     * (impossible after the constructor's repair unless the medium
     * rotted underneath a running journal) throws StorageError.
     */
    void replay(u64 from_seq, u64 to_seq,
                const std::function<void(const JournalRecord&)>& fn) const;

    /**
     * Journal GC: delete whole segments whose every record is covered
     * by a sealed checkpoint (lastSeq <= `seq`). The active segment is
     * always kept, so the chain never becomes empty.
     */
    void truncateThrough(u64 seq);

    /**
     * Discard every appended-but-not-durable record, so that
     * lastAppended() == lastDurable(). Unsynced records always live in
     * the active segment (a roll syncs first), so this is one
     * ftruncate. The shard runtime calls it when it FAILS the parked
     * requests those records belong to — a record of a request that
     * was reported failed must never survive to be replayed. Throws
     * (and fail-stops the journal) if the truncate itself fails.
     */
    void rollbackTail();

  private:
    struct Segment {
        u64 index = 0;
        u64 firstSeq = 0;
        u64 lastSeq = 0; ///< firstSeq - 1 when the segment is empty
    };

    void openExisting();
    /** Create segment `index` whose first record will be `first_seq`. */
    void startSegment(u64 index, u64 first_seq);
    /** Roll to a fresh segment: fdatasync (records become durable),
     *  close, create. `next_seq` is the incoming record's sequence. */
    void roll(u64 next_seq);
    /** ftruncate the active segment back to `bytes` after a failed or
     *  torn append; poisons the journal if the repair itself fails. */
    void repairTail(u64 bytes);
    /** fdatasync the active fd behind the given fault-op hook. */
    void barrier(FaultOp op);
    void backoffSleep(u32 attempt);
    std::string activePath() const;

    std::string dir_;
    u32 shard_ = 0;
    JournalConfig cfg_;
    RetryPolicy retry_;
    std::shared_ptr<FaultSchedule> schedule_;

    std::vector<Segment> segments_; ///< oldest first; back() is active
    int fd_ = -1;                   ///< active segment, positioned at end
    u64 activeBytes_ = 0;
    u64 durableBytes_ = 0; ///< activeBytes_ as of the last barrier
    bool failed_ = false; ///< tail unrecoverable; all commit I/O throws

    std::atomic<u64> appended_{0};
    std::atomic<u64> durable_{0};
    std::atomic<u64> faultsRetried_{0};
    std::chrono::steady_clock::time_point oldestUnsyncedAt_{};
    u64 jitterCounter_ = 0;
    std::vector<u8> frame_; ///< append scratch (capacity reused)
};

} // namespace froram

#endif // FRORAM_JOURNAL_REQUEST_JOURNAL_HPP
