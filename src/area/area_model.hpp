/**
 * @file
 * Analytic silicon-area model for the ORAM controller (Table 3 and
 * Section 7.2.3 substitution -- see DESIGN.md #4).
 *
 * No ASIC flow is available offline, so this model reproduces the
 * paper's post-synthesis area story from first principles: SRAM/RF macro
 * area as a function of bit count (with density tiers: small register
 * files pay more periphery per bit than megabit SRAMs) plus fixed logic
 * blocks for AES, SHA3 and control. The constants are calibrated once
 * against the published nchannel = 2 column of Table 3; the model then
 * *predicts* the other channel counts and the design variants of Section
 * 7.2.3 (no-recursion ~5 mm^2 PosMap, 64 KB PLB +29%/1ch), which the
 * bench and tests check.
 */
#ifndef FRORAM_AREA_AREA_MODEL_HPP
#define FRORAM_AREA_AREA_MODEL_HPP

#include "util/common.hpp"

namespace froram {

/** Per-block area breakdown in mm^2 (32 nm process). */
struct AreaBreakdown {
    double posmap = 0; ///< on-chip PosMap SRAM
    double plb = 0;    ///< PLB data + tag arrays
    double pmmac = 0;  ///< SHA3 core + integrity control
    double misc = 0;   ///< remaining frontend control
    double stash = 0;  ///< stash data/tag + path buffers
    double aes = 0;    ///< bucket (de/en)cryption units

    double frontend() const { return posmap + plb + pmmac + misc; }
    double backend() const { return stash + aes; }
    double total() const { return frontend() + backend(); }
};

/** Design parameters the area depends on. */
struct AreaInputs {
    u32 channels = 2;
    u64 onChipPosMapBits = 8 * 1024 * 8; ///< 8 KB default (Section 7.2.1)
    u64 plbDataBits = 8 * 1024 * 8;      ///< 8 KB default
    u64 plbEntries = 128;                ///< for tag array sizing
    bool integrity = true;               ///< PMMAC present
    u64 stashDataBits = 200 * 512;       ///< 200 blocks of 512 bits
    u64 pathBufferBits = 100 * 512;      ///< Z*(L+1) in-flight blocks
};

/** Calibrated 32 nm area model. */
class AreaModel {
  public:
    /** mm^2 of an SRAM/RF macro holding `bits`, density-tiered. */
    static double sramMm2(u64 bits);

    /** Post-synthesis breakdown (Table 3). */
    static AreaBreakdown synthesis(const AreaInputs& in);

    /** Post-layout breakdown (Section 7.2.2 growth factors). */
    static AreaBreakdown layout(const AreaInputs& in);
};

} // namespace froram

#endif // FRORAM_AREA_AREA_MODEL_HPP
