#include "area/area_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitops.hpp"

namespace froram {
namespace {

// Calibration constants (32 nm, post-synthesis). Derived once from the
// published nchannel = 2 column of Table 3; see header comment.
constexpr double kSmallSramUm2PerBit = 0.351; // register files <= 128 Kb
constexpr double kLargeSramUm2PerBit = 0.205; // SRAM macros >= 512 Kb
constexpr double kPlbPortFactor = 1.30;  // PLB arrays are multi-ported
constexpr double kStashPortFactor = 1.47;
constexpr double kStashWidthPerChannel = 0.013; // datapath widening
constexpr double kSha3CoreMm2 = 0.0359;
constexpr double kPmmacControlMm2 = 0.0030;
constexpr double kMiscFrontendMm2 = 0.0045;
constexpr double kAesOverheadMm2 = 0.018;
constexpr double kAesUnitMm2 = 0.110;   // one 21-stage AES-128 pipeline
constexpr double kAesDatapathMm2 = 0.004; // per extra channel
// Post-layout growth factors (Section 7.2.2).
constexpr double kLayoutFrontend = 1.38;
constexpr double kLayoutStash = 1.24;
constexpr double kLayoutAes = 1.63;

} // namespace

namespace {

/** 0 at/below 2^17 bits, 1 at/above 2^19, linear in log2 between. */
double
sizeTier(u64 bits)
{
    const double lg = std::log2(static_cast<double>(std::max<u64>(bits,
                                                                  1)));
    if (lg <= 17.0)
        return 0.0;
    if (lg >= 19.0)
        return 1.0;
    return (lg - 17.0) / 2.0;
}

} // namespace

double
AreaModel::sramMm2(u64 bits)
{
    if (bits == 0)
        return 0.0;
    // Density tiers: small register files pay more periphery per bit
    // than megabit SRAM macros.
    const double t = sizeTier(bits);
    const double um2_per_bit =
        kSmallSramUm2PerBit + t * (kLargeSramUm2PerBit -
                                   kSmallSramUm2PerBit);
    return static_cast<double>(bits) * um2_per_bit * 1e-6;
}

AreaBreakdown
AreaModel::synthesis(const AreaInputs& in)
{
    AreaBreakdown a;
    a.posmap = sramMm2(in.onChipPosMapBits);

    // PLB: data array plus a tag array (~40 bits of tag/state per
    // entry). Small PLBs are multi-ported register files; large ones are
    // single-port SRAM macros, so the port overhead fades with size.
    const u64 tag_bits = in.plbEntries * 40;
    const double port =
        kPlbPortFactor + sizeTier(in.plbDataBits) * (1.0 - kPlbPortFactor);
    a.plb = (sramMm2(in.plbDataBits) + sramMm2(tag_bits)) * port;

    a.pmmac = in.integrity ? kSha3CoreMm2 + kPmmacControlMm2 : 0.0;
    a.misc = kMiscFrontendMm2;

    // Stash: data + path buffers + ~19% tag/valid overhead, multi-ported,
    // with a datapath that widens with channel count.
    const u64 stash_bits = in.stashDataBits + in.pathBufferBits;
    const double width =
        1.0 + kStashWidthPerChannel * (in.channels > 0 ? in.channels - 1
                                                        : 0);
    a.stash = sramMm2(stash_bits + stash_bits / 5) * kStashPortFactor *
              width;

    // AES: pipelined units sized to rate-match DRAM. A 128-bit AES unit
    // covers two 64-bit DDR channels (footnote 5 of the paper).
    const u32 units = std::max<u32>(1, (in.channels + 1) / 2);
    a.aes = kAesOverheadMm2 + kAesUnitMm2 * units +
            kAesDatapathMm2 * (in.channels > 0 ? in.channels - 1 : 0);
    return a;
}

AreaBreakdown
AreaModel::layout(const AreaInputs& in)
{
    AreaBreakdown a = synthesis(in);
    a.posmap *= kLayoutFrontend;
    a.plb *= kLayoutFrontend;
    a.pmmac *= kLayoutFrontend;
    a.misc *= kLayoutFrontend;
    a.stash *= kLayoutStash;
    a.aes *= kLayoutAes;
    return a;
}

} // namespace froram
