/**
 * @file
 * Two-level cache hierarchy in front of a main-memory backend (either an
 * ORAM Frontend or the insecure DRAM path). Geometry and latencies follow
 * Table 1: 32 KB 4-way L1 (1+1 cycles), 1 MB 16-way L2 (8+3 cycles),
 * 64 B lines. LLC misses and dirty LLC evictions become main-memory
 * accesses, exactly the events the ORAM controller services.
 */
#ifndef FRORAM_CACHESIM_HIERARCHY_HPP
#define FRORAM_CACHESIM_HIERARCHY_HPP

#include <memory>

#include "cachesim/cache.hpp"
#include "core/frontend.hpp"
#include "core/oram_system.hpp"

namespace froram {

/** Anything that can service an LLC miss (ORAM or plain DRAM). */
class MainMemory {
  public:
    virtual ~MainMemory() = default;

    /** Latency (processor cycles) to service one cache-line request. */
    virtual u64 lineAccessCycles(u64 line_addr, u64 line_bytes,
                                 bool is_write) = 0;
};

/** ORAM-backed main memory: lines map onto ORAM data blocks. */
class OramMainMemory : public MainMemory {
  public:
    explicit OramMainMemory(Frontend* frontend) : frontend_(frontend) {}

    u64
    lineAccessCycles(u64 line_addr, u64 line_bytes, bool is_write) override
    {
        const u64 block_bytes = frontend_->dataBlockBytes();
        // Map the line to the ORAM block containing it (block size may
        // exceed the line size, e.g. Phantom's 4 KB blocks).
        const u64 block = line_addr * line_bytes / block_bytes;
        return frontend_->access(block, is_write).cycles;
    }

  private:
    Frontend* frontend_;
};

/** Insecure DRAM-backed main memory. */
class PlainMainMemory : public MainMemory {
  public:
    explicit PlainMainMemory(InsecureMemory* mem) : mem_(mem) {}

    u64
    lineAccessCycles(u64 line_addr, u64 line_bytes, bool is_write) override
    {
        return mem_->accessCycles(line_addr * line_bytes, is_write);
    }

  private:
    InsecureMemory* mem_;
};

/** Latency knobs for the cache levels (Table 1). */
struct HierarchyConfig {
    CacheConfig l1{32 * 1024, 4, 64};
    CacheConfig l2{1024 * 1024, 16, 64};
    u32 l1Cycles = 2;  ///< data + tag
    u32 l2Cycles = 11; ///< data + tag
};

/** L1 + L2 + main memory, with write-back eviction traffic. */
class MemoryHierarchy {
  public:
    MemoryHierarchy(const HierarchyConfig& config, MainMemory* memory);

    /** Latency in cycles of a load/store to `byte_addr`. */
    u64 access(u64 byte_addr, bool is_write);

    /** Drop all cached state (between benchmark configurations). */
    void clear();

    const SetAssocCache& l1() const { return l1_; }
    const SetAssocCache& l2() const { return l2_; }
    const StatSet& stats() const { return stats_; }

  private:
    HierarchyConfig cfg_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    MainMemory* memory_;
    StatSet stats_;
};

} // namespace froram

#endif // FRORAM_CACHESIM_HIERARCHY_HPP
