/**
 * @file
 * In-order single-issue core model (Table 1). Non-memory instructions
 * retire one per cycle; loads/stores stall for the hierarchy latency.
 * This matches the paper's Graphite core configuration at the fidelity
 * the ORAM evaluation depends on: total runtime = compute cycles +
 * serialized memory stall cycles.
 */
#ifndef FRORAM_CACHESIM_CORE_MODEL_HPP
#define FRORAM_CACHESIM_CORE_MODEL_HPP

#include "cachesim/hierarchy.hpp"
#include "workload/workload.hpp"

namespace froram {

/** Aggregate outcome of one core run. */
struct CoreRunResult {
    u64 cycles = 0;
    u64 instructions = 0;
    u64 memRefs = 0;
    u64 llcMisses = 0;

    double
    cyclesPerInstruction() const
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(cycles) / instructions;
    }
};

/** Single-issue in-order core driving a MemoryHierarchy. */
class InOrderCore {
  public:
    explicit InOrderCore(MemoryHierarchy* hierarchy)
        : hierarchy_(hierarchy)
    {
    }

    /**
     * Execute the workload until `num_mem_refs` memory references have
     * been issued (after an optional warmup that is excluded from the
     * returned counters).
     */
    CoreRunResult
    run(WorkloadGen& gen, u64 num_mem_refs, u64 warmup_refs = 0)
    {
        const u64 miss0 = hierarchy_->stats().get("memReads");
        for (u64 i = 0; i < warmup_refs; ++i) {
            const MemRef ref = gen.next();
            hierarchy_->access(ref.addr, ref.isWrite);
        }
        CoreRunResult r;
        const u64 miss_start = hierarchy_->stats().get("memReads") - miss0;
        for (u64 i = 0; i < num_mem_refs; ++i) {
            const MemRef ref = gen.next();
            r.cycles += ref.gap; // non-memory instructions, 1 IPC
            r.instructions += ref.gap + 1;
            r.cycles += hierarchy_->access(ref.addr, ref.isWrite);
            r.memRefs += 1;
        }
        r.llcMisses = hierarchy_->stats().get("memReads") - miss0 -
                      miss_start;
        return r;
    }

  private:
    MemoryHierarchy* hierarchy_;
};

} // namespace froram

#endif // FRORAM_CACHESIM_CORE_MODEL_HPP
