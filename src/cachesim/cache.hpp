/**
 * @file
 * Set-associative write-back cache model (L1/L2 of Table 1).
 */
#ifndef FRORAM_CACHESIM_CACHE_HPP
#define FRORAM_CACHESIM_CACHE_HPP

#include <vector>

#include "util/bitops.hpp"
#include "util/common.hpp"
#include "util/stats.hpp"

namespace froram {

/** Geometry of one cache level. */
struct CacheConfig {
    u64 capacityBytes = 32 * 1024;
    u32 ways = 4;
    u64 lineBytes = 64;
};

/** Outcome of one cache access. */
struct CacheAccess {
    bool hit = false;
    bool evictedValid = false; ///< a line was evicted to make room
    bool evictedDirty = false; ///< ... and it needs writeback
    u64 evictedLineAddr = 0;   ///< line address of the victim
};

/** LRU set-associative write-back cache, addressed by byte address. */
class SetAssocCache {
  public:
    explicit SetAssocCache(const CacheConfig& config,
                           std::string name = "cache");

    /**
     * Access the line containing `byte_addr`; allocate on miss.
     * @param is_write marks the line dirty
     */
    CacheAccess access(u64 byte_addr, bool is_write);

    /**
     * Install a line without a demand access (used for L1 victims being
     * installed into L2). Returns eviction info like access().
     */
    CacheAccess install(u64 line_addr, bool dirty);

    /** True if the line is present (no LRU update). */
    bool probe(u64 byte_addr) const;

    /** Invalidate everything (between benchmark runs). */
    void clear();

    u64 lineBytes() const { return cfg_.lineBytes; }
    u64 lineAddrOf(u64 byte_addr) const { return byte_addr / cfg_.lineBytes; }
    const StatSet& stats() const { return stats_; }
    StatSet& stats() { return stats_; }

  private:
    struct Line {
        bool valid = false;
        bool dirty = false;
        u64 lineAddr = 0;
        u64 lastUse = 0;
    };

    CacheAccess allocate(u64 line_addr, bool dirty);

    CacheConfig cfg_;
    u64 sets_;
    std::vector<Line> lines_; // sets_ x ways_
    u64 clock_ = 0;
    StatSet stats_;
};

} // namespace froram

#endif // FRORAM_CACHESIM_CACHE_HPP
