#include "cachesim/hierarchy.hpp"

namespace froram {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config,
                                 MainMemory* memory)
    : cfg_(config), l1_(config.l1, "l1"), l2_(config.l2, "l2"),
      memory_(memory), stats_("hier")
{
    FRORAM_ASSERT(memory_ != nullptr, "hierarchy needs a memory backend");
    FRORAM_ASSERT(cfg_.l1.lineBytes == cfg_.l2.lineBytes,
                  "L1/L2 line sizes must match");
}

u64
MemoryHierarchy::access(u64 byte_addr, bool is_write)
{
    u64 cycles = cfg_.l1Cycles;
    const CacheAccess a1 = l1_.access(byte_addr, is_write);
    if (a1.hit)
        return cycles;

    // L1 victim goes to L2 (exclusive-ish writeback; clean victims are
    // dropped, which is conservative and scheme-independent).
    if (a1.evictedValid && a1.evictedDirty) {
        const CacheAccess spill = l2_.install(a1.evictedLineAddr, true);
        if (spill.evictedValid && spill.evictedDirty) {
            cycles += memory_->lineAccessCycles(
                spill.evictedLineAddr, l2_.lineBytes(), /*is_write=*/true);
            stats_.inc("memWrites");
        }
    }

    cycles += cfg_.l2Cycles;
    const CacheAccess a2 = l2_.access(byte_addr, is_write);
    if (a2.hit)
        return cycles;

    // LLC miss: fill from main memory.
    cycles += memory_->lineAccessCycles(l2_.lineAddrOf(byte_addr),
                                        l2_.lineBytes(), /*is_write=*/false);
    stats_.inc("memReads");

    // LLC victim writeback.
    if (a2.evictedValid && a2.evictedDirty) {
        cycles += memory_->lineAccessCycles(a2.evictedLineAddr,
                                            l2_.lineBytes(),
                                            /*is_write=*/true);
        stats_.inc("memWrites");
    }
    return cycles;
}

void
MemoryHierarchy::clear()
{
    l1_.clear();
    l2_.clear();
}

} // namespace froram
