#include "cachesim/cache.hpp"

namespace froram {

SetAssocCache::SetAssocCache(const CacheConfig& config, std::string name)
    : cfg_(config), stats_(std::move(name))
{
    if (cfg_.ways == 0 || cfg_.lineBytes == 0)
        fatal("bad cache geometry");
    const u64 lines = cfg_.capacityBytes / cfg_.lineBytes;
    if (lines < cfg_.ways)
        fatal("cache smaller than one set");
    sets_ = lines / cfg_.ways;
    lines_.resize(sets_ * cfg_.ways);
}

CacheAccess
SetAssocCache::access(u64 byte_addr, bool is_write)
{
    const u64 line_addr = lineAddrOf(byte_addr);
    Line* base = &lines_[(line_addr % sets_) * cfg_.ways];
    for (u32 w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr) {
            base[w].lastUse = ++clock_;
            base[w].dirty |= is_write;
            stats_.inc("hits");
            CacheAccess r;
            r.hit = true;
            return r;
        }
    }
    stats_.inc("misses");
    return allocate(line_addr, is_write);
}

CacheAccess
SetAssocCache::install(u64 line_addr, bool dirty)
{
    Line* base = &lines_[(line_addr % sets_) * cfg_.ways];
    for (u32 w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr) {
            base[w].dirty |= dirty;
            base[w].lastUse = ++clock_;
            CacheAccess r;
            r.hit = true;
            return r;
        }
    }
    return allocate(line_addr, dirty);
}

CacheAccess
SetAssocCache::allocate(u64 line_addr, bool dirty)
{
    Line* base = &lines_[(line_addr % sets_) * cfg_.ways];
    Line* victim = &base[0];
    for (u32 w = 0; w < cfg_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    CacheAccess r;
    if (victim->valid) {
        r.evictedValid = true;
        r.evictedDirty = victim->dirty;
        r.evictedLineAddr = victim->lineAddr;
        stats_.inc("evictions");
        if (victim->dirty)
            stats_.inc("dirtyEvictions");
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->lineAddr = line_addr;
    victim->lastUse = ++clock_;
    return r;
}

bool
SetAssocCache::probe(u64 byte_addr) const
{
    const u64 line_addr = lineAddrOf(byte_addr);
    const Line* base = &lines_[(line_addr % sets_) * cfg_.ways];
    for (u32 w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return true;
    }
    return false;
}

void
SetAssocCache::clear()
{
    for (auto& l : lines_)
        l = Line{};
}

} // namespace froram
