#include "integrity/merkle_tree.hpp"

#include <cstring>

namespace froram {

MerkleTree::MerkleTree(const OramParams& params,
                       EncryptedTreeStorage* storage, const u8* key16)
    : params_(params), storage_(storage), stats_("merkle")
{
    FRORAM_ASSERT(storage_ != nullptr, "Merkle tree needs storage");
    std::memcpy(key_.data(), key16, 16);

    // Empty-subtree hashes, leaves up: E(L) = H(key || "empty"),
    // E(l) = H(key || "empty" || E(l+1) || E(l+1)).
    emptyHash_.resize(params_.levels + 1);
    for (i64 l = params_.levels; l >= 0; --l) {
        Sha3_224 h;
        h.update(key_.data(), key_.size());
        const u8 tag = 0xee;
        h.update(&tag, 1);
        if (l < static_cast<i64>(params_.levels)) {
            h.update(emptyHash_[l + 1].data(), emptyHash_[l + 1].size());
            h.update(emptyHash_[l + 1].data(), emptyHash_[l + 1].size());
        }
        h.finalize(emptyHash_[l].data());
    }
    root_ = emptyHash_[0];
}

void
MerkleTree::attach(BackendConfig& config)
{
    config.beforePathRead = [this](Leaf l) { verifyPath(l); };
    config.afterPathWrite = [this](Leaf l) { updatePath(l); };
}

const MerkleTree::Hash&
MerkleTree::storedHash(u32 level, u64 index) const
{
    auto it = hashes_.find(heapIndex(level, index));
    return it == hashes_.end() ? emptyHash_[level] : it->second;
}

MerkleTree::Hash
MerkleTree::hashBucket(u32 level, u64 index, const Hash* left,
                       const Hash* right)
{
    Sha3_224 h;
    h.update(key_.data(), key_.size());
    const std::vector<u8> image =
        storage_->rawImage(heapIndex(level, index));
    if (image.empty()) {
        const u8 tag = 0xee;
        h.update(&tag, 1);
    } else {
        h.update(image.data(), image.size());
    }
    if (level < params_.levels) {
        h.update(left->data(), left->size());
        h.update(right->data(), right->size());
    }
    Hash out;
    h.finalize(out.data());
    stats_.inc("bucketsHashed");
    stats_.inc("blocksHashed", params_.z);
    stats_.inc("bytesHashed",
               image.empty() ? params_.bucketPhysBytes() : image.size());
    return out;
}

void
MerkleTree::verifyPath(Leaf leaf)
{
    stats_.inc("pathVerifies");
    // Recompute hashes bottom-up along the path, using stored hashes for
    // the off-path siblings, and compare the resulting root.
    Hash below{};
    for (i64 l = params_.levels; l >= 0; --l) {
        const u64 idx = leaf >> (params_.levels - l);
        Hash computed;
        if (l == static_cast<i64>(params_.levels)) {
            computed = hashBucket(static_cast<u32>(l), idx, nullptr,
                                  nullptr);
        } else {
            const u64 child_on_path = leaf >> (params_.levels - l - 1);
            const Hash& sibling = storedHash(
                static_cast<u32>(l) + 1, child_on_path ^ 1);
            const Hash* left =
                (child_on_path & 1) == 0 ? &below : &sibling;
            const Hash* right =
                (child_on_path & 1) == 0 ? &sibling : &below;
            computed = hashBucket(static_cast<u32>(l), idx, left, right);
        }
        // Interior consistency: the stored hash (if any) must match what
        // the images imply; the root check is the authoritative one.
        below = computed;
    }
    if (std::memcmp(below.data(), root_.data(), below.size()) != 0)
        throw IntegrityViolation("Merkle: root hash mismatch");
}

void
MerkleTree::updatePath(Leaf leaf)
{
    stats_.inc("pathUpdates");
    Hash below{};
    for (i64 l = params_.levels; l >= 0; --l) {
        const u64 idx = leaf >> (params_.levels - l);
        Hash computed;
        if (l == static_cast<i64>(params_.levels)) {
            computed = hashBucket(static_cast<u32>(l), idx, nullptr,
                                  nullptr);
        } else {
            const u64 child_on_path = leaf >> (params_.levels - l - 1);
            const Hash& sibling = storedHash(
                static_cast<u32>(l) + 1, child_on_path ^ 1);
            const Hash* left =
                (child_on_path & 1) == 0 ? &below : &sibling;
            const Hash* right =
                (child_on_path & 1) == 0 ? &sibling : &below;
            computed = hashBucket(static_cast<u32>(l), idx, left, right);
        }
        hashes_[heapIndex(static_cast<u32>(l), idx)] = computed;
        below = computed;
    }
    root_ = below;
}

} // namespace froram
