/**
 * @file
 * Active-adversary harness (Section 2 threat model: the data center "may
 * additionally try to tamper with the contents of DRAM").
 *
 * Each method implements one attack class against a CodecTreeStorage —
 * any encrypted bucket medium, from the host-RAM map to a persisted mmap
 * region reopened by a resumed controller; the integrity test suite
 * asserts that PMMAC (or the Merkle baseline) either detects the attack
 * or the attack provably cannot affect the block of interest.
 */
#ifndef FRORAM_INTEGRITY_ADVERSARY_HPP
#define FRORAM_INTEGRITY_ADVERSARY_HPP

#include <optional>
#include <vector>

#include "oram/tree_storage.hpp"
#include "util/rng.hpp"

namespace froram {

/** Tampering adversary over one untrusted bucket store. */
class Adversary {
  public:
    Adversary(CodecTreeStorage* storage, const OramParams& params,
              u64 seed = 0xbadc0de)
        : storage_(storage), params_(params), rng_(seed)
    {
    }

    /** Flip a random bit in a random already-written bucket.
     *  @return heap index of the tampered bucket, or nullopt if the tree
     *  has no written buckets yet. */
    std::optional<u64>
    flipRandomBit()
    {
        auto id = pickWrittenBucket();
        if (!id)
            return std::nullopt;
        const u64 bits = storage_->rawImage(*id).size() * 8;
        storage_->flipBit(*id, rng_.below(bits));
        return id;
    }

    /** Flip a specific bit of a specific bucket. */
    void
    flipBit(u64 bucket_id, u64 bit)
    {
        storage_->flipBit(bucket_id, bit);
    }

    /** Snapshot a bucket image for later replay. */
    std::vector<u8>
    snapshot(u64 bucket_id) const
    {
        return storage_->rawImage(bucket_id);
    }

    /** Replay a previously captured image (rollback attack). */
    void
    replay(u64 bucket_id, std::vector<u8> image)
    {
        storage_->replaceImage(bucket_id, std::move(image));
    }

    /** Rewind the plaintext bucket seed (Section 6.4 pad-replay attack). */
    void
    rewindSeed(u64 bucket_id, u64 delta = 1)
    {
        storage_->rewindSeed(bucket_id, delta);
    }

    /**
     * Flip one bit inside the stored payload of a currently-valid block
     * slot (test-harness capability: uses storage introspection to aim
     * at live content, which a real adversary flipping random bits hits
     * with probability proportional to occupancy). Guarantees the flip
     * corrupts MAC-covered bytes of a live block.
     * @return heap index of the tampered bucket, or nullopt if no live
     *         slot exists
     */
    std::optional<u64>
    flipBitInLiveSlotPayload()
    {
        // Scan from a random starting bucket for a valid slot.
        const u64 total = params_.numBuckets();
        const u64 start = rng_.below(total);
        for (u64 k = 0; k < total; ++k) {
            const u64 id = (start + k) % total;
            if (!storage_->hasImage(id))
                continue;
            const Bucket b = storage_->readBucket(id);
            for (u32 s = 0; s < params_.z; ++s) {
                if (!b.slots[s].valid())
                    continue;
                const u64 payload_base =
                    8 + params_.z * params_.slotHeaderBytes() +
                    s * params_.storedBlockBytes();
                const u64 bit =
                    payload_base * 8 +
                    rng_.below(params_.storedBlockBytes() * 8);
                storage_->flipBit(id, bit);
                return id;
            }
        }
        return std::nullopt;
    }

    /** Some bucket that has been written, if any. */
    std::optional<u64>
    pickWrittenBucket()
    {
        // Sample heap indices; the root (0) is written by the first
        // eviction, so fall back to it.
        for (int tries = 0; tries < 64; ++tries) {
            const u64 id = rng_.below(params_.numBuckets());
            if (storage_->hasImage(id))
                return id;
        }
        if (storage_->hasImage(0))
            return 0;
        return std::nullopt;
    }

  private:
    CodecTreeStorage* storage_;
    OramParams params_;
    Xoshiro256 rng_;
};

} // namespace froram

#endif // FRORAM_INTEGRITY_ADVERSARY_HPP
