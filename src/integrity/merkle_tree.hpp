/**
 * @file
 * Merkle tree integrity baseline (Ren et al. [25], the prior scheme the
 * paper compares PMMAC against in Section 6.3).
 *
 * One hash per bucket; a bucket's hash covers its ciphertext image and
 * its two children's hashes, so the root authenticates the whole tree.
 * Verifying or updating a path therefore hashes all Z*(L+1) blocks on the
 * path -- this is exactly the hash-bandwidth cost PMMAC reduces to a
 * single block per access (68x for L=16, 132x for L=32 at Z=4). The
 * parent-child hash dependency is also fundamentally sequential, the
 * serialization bottleneck discussed in Section 6.3.
 */
#ifndef FRORAM_INTEGRITY_MERKLE_TREE_HPP
#define FRORAM_INTEGRITY_MERKLE_TREE_HPP

#include <array>
#include <unordered_map>
#include <vector>

#include "crypto/sha3.hpp"
#include "oram/backend.hpp"
#include "oram/tree_storage.hpp"
#include "util/stats.hpp"

namespace froram {

/** Merkle tree over the buckets of one ORAM tree. */
class MerkleTree {
  public:
    using Hash = std::array<u8, Sha3_224::kDigestBytes>;

    /**
     * @param params tree geometry
     * @param storage the untrusted encrypted bucket store being protected
     * @param key16 16-byte hashing key
     */
    MerkleTree(const OramParams& params, EncryptedTreeStorage* storage,
               const u8* key16);

    /**
     * Install verify/update hooks on a Backend so that every path read is
     * preceded by verifyPath() and every path write followed by
     * updatePath(). Must be called before the Backend is used.
     */
    void attach(BackendConfig& config);

    /**
     * Recompute the hashes along the path to `leaf` from the stored
     * bucket images and compare with the trusted root.
     * @throws IntegrityViolation on any mismatch
     */
    void verifyPath(Leaf leaf);

    /** Recompute and store the hashes along the path (after writeback). */
    void updatePath(Leaf leaf);

    const StatSet& stats() const { return stats_; }
    StatSet& stats() { return stats_; }

    /** Blocks hashed per access (check + update) -- Section 6.3 metric. */
    u64
    blocksHashedPerAccess() const
    {
        return u64{2} * params_.z * (params_.levels + 1);
    }

  private:
    static u64
    heapIndex(u32 level, u64 index)
    {
        return ((u64{1} << level) - 1) + index;
    }

    /** Stored (or default empty-subtree) hash of a bucket. */
    const Hash& storedHash(u32 level, u64 index) const;

    /** Hash of bucket image + child hashes. */
    Hash hashBucket(u32 level, u64 index, const Hash* left,
                    const Hash* right);

    OramParams params_;
    EncryptedTreeStorage* storage_;
    std::array<u8, 16> key_;
    std::unordered_map<u64, Hash> hashes_;
    std::vector<Hash> emptyHash_; // per level: hash of untouched subtree
    Hash root_;
    StatSet stats_;
};

} // namespace froram

#endif // FRORAM_INTEGRITY_MERKLE_TREE_HPP
