/**
 * @file
 * Pluggable bucket schemes: the per-access tree-touch discipline.
 *
 * A BucketScheme owns what is *policy* about an ORAM access — the bucket
 * metadata layout, the read discipline (whole path vs one block per
 * bucket), the eviction schedule (inline per access vs every A accesses)
 * and early reshuffles — while the OramBackend keeps what is *mechanism*:
 * the stash, the gather/prefetch storage layer, the one-kernel spans
 * crypto and the timing plane. The paper's Frontend stack (PLB,
 * compressed PosMap, PMMAC) composes with either scheme unchanged.
 *
 * Two schemes:
 *  - PathBucketScheme: classic Path ORAM [26]. Z-slot buckets, every
 *    access reads the whole path into the stash and evicts back along
 *    the same path. This is the determinism/trace oracle: its storage
 *    traffic, trace and statistics are bit-identical to the pre-seam
 *    backend.
 *  - RingBucketScheme: Ring ORAM (Ren et al.). Buckets carry Z real
 *    slots plus S dummies and per-bucket valid/count metadata; an online
 *    access reads bucket metadata plus ONE block per path bucket (a
 *    random live dummy when the bucket misses), evictions run every A
 *    accesses along deterministic reverse-lexicographic paths, and a
 *    bucket whose read count hits S is early-reshuffled. Online
 *    bandwidth drops from (L+1)*Z blocks to ~(L+1) blocks per access.
 */
#ifndef FRORAM_ORAM_BUCKET_SCHEME_HPP
#define FRORAM_ORAM_BUCKET_SCHEME_HPP

#include <memory>
#include <vector>

#include "oram/backend.hpp"
#include "util/rng.hpp"

namespace froram {

/**
 * Interface between the shared access pipeline (OramBackend::accessInto)
 * and a bucket discipline. One access runs:
 *
 *   issueFetch -> readForAccess -> [op logic on the stash] -> finishAccess
 *
 * readForAccess must guarantee that if a live copy of `addr` was in the
 * tree on this path, it is in the stash afterwards. finishAccess performs
 * whatever writeback the discipline schedules for this access (all of it
 * for Path; possibly none for Ring).
 */
class BucketScheme {
  public:
    explicit BucketScheme(OramBackend& backend) : b_(backend) {}
    virtual ~BucketScheme() = default;

    virtual BucketSchemeKind kind() const = 0;

    /** Read discipline for one access to `addr` along `leaf`'s path. */
    virtual void readForAccess(BackendResult& res, Leaf leaf,
                               Addr addr) = 0;

    /** Eviction/writeback discipline after the op logic ran. */
    virtual void finishAccess(BackendResult& res, Leaf leaf) = 0;

    /**
     * Is slot `slot` of bucket `bucket_id` live (holds current data)?
     * Path slots always are; Ring slots die when an online read consumes
     * them and resurrect on the next eviction/reshuffle rewrite. Used by
     * the backend's test-only tree scans to skip stale ghosts.
     */
    virtual bool
    slotLive(u64 bucket_id, u32 slot) const
    {
        (void)bucket_id;
        (void)slot;
        return true;
    }

    /** @name Checkpoint/restore of scheme-private trusted state
     *
     * A scheme with hasState() == true gets a kTagScheme section inside
     * the backend's checkpoint frame; a stateless scheme writes nothing,
     * which keeps pre-seam (Path) checkpoint images byte-identical.
     * @{ */
    virtual bool hasState() const { return false; }
    virtual void saveState(CheckpointWriter& w) const { (void)w; }
    virtual void restoreState(CheckpointReader& r) { (void)r; }
    /** @} */

  protected:
    OramBackend& b_;
};

/** Classic Path ORAM: whole-path read + inline same-path eviction. */
class PathBucketScheme final : public BucketScheme {
  public:
    using BucketScheme::BucketScheme;

    BucketSchemeKind
    kind() const override
    {
        return BucketSchemeKind::Path;
    }

    void readForAccess(BackendResult& res, Leaf leaf, Addr addr) override;
    void finishAccess(BackendResult& res, Leaf leaf) override;
};

/**
 * Ring ORAM engine.
 *
 * Trusted per-bucket metadata (validMask/count/written) lives client-side
 * in this object, as the paper's controller would hold it on-chip or
 * under MAC; the untrusted image only stores the (encrypted) slot
 * headers. All scheme randomness (dummy-slot draws, eviction slot
 * permutations) comes from a private deterministic PRNG seeded by
 * BackendConfig::schemeSeed, so runs are reproducible and
 * checkpoint/restore can replay them bit for bit.
 */
class RingBucketScheme final : public BucketScheme {
  public:
    explicit RingBucketScheme(OramBackend& backend);

    BucketSchemeKind
    kind() const override
    {
        return BucketSchemeKind::Ring;
    }

    void readForAccess(BackendResult& res, Leaf leaf, Addr addr) override;
    void finishAccess(BackendResult& res, Leaf leaf) override;

    bool
    slotLive(u64 bucket_id, u32 slot) const override
    {
        const RingBucketMeta& m = meta_[bucket_id];
        return m.written != 0 && ((m.validMask >> slot) & 1) != 0;
    }

    bool hasState() const override { return true; }
    void saveState(CheckpointWriter& w) const override;
    void restoreState(CheckpointReader& r) override;

    /** @name Introspection (tests/benches) @{ */
    u32 ringS() const { return ringS_; }
    u32 ringA() const { return ringA_; }
    /** Accesses serviced since start (drives the eviction schedule). */
    u64 round() const { return round_; }
    /** Reverse-lex eviction counter (number of EvictPaths issued). */
    u64 evictCounter() const { return evictG_; }
    /** Online reads still owed on bucket `id` before it must reshuffle. */
    u32
    readsUntilReshuffle(u64 id) const
    {
        return ringS_ - meta_[id].count;
    }
    /** @} */

    /** Reverse the low `bits` bits of `v` (the reverse-lexicographic
     *  eviction order of Ring ORAM / the G counter of [26]). */
    static u64
    reverseBits(u64 v, u32 bits)
    {
        u64 r = 0;
        for (u32 i = 0; i < bits; ++i)
            r |= ((v >> i) & 1) << (bits - 1 - i);
        return r;
    }

  private:
    /** Client-side metadata for one bucket. */
    struct RingBucketMeta {
        u64 validMask = 0; ///< bit s: slot s unread since last rewrite
        u32 count = 0;     ///< online reads since last rewrite
        u8 written = 0;    ///< bucket has been written at least once
    };

    void onlineReadBucket(BackendResult& res, BucketCoord c, Addr addr,
                          bool timed, u64& online_blocks);
    void earlyReshuffle(BackendResult& res, BucketCoord c, bool timed);
    void scheduledEvict(BackendResult& res);

    /** Index of the (k+1)-th set bit of `mask` (k < popcount). */
    static u32
    nthSetBit(u64 mask, u32 k)
    {
        while (k--)
            mask &= mask - 1;
        return log2Floor(mask & (~mask + 1));
    }

    u32 spb_;   ///< slots per bucket (Z + S)
    u32 ringS_; ///< dummy slots / max online reads per bucket epoch
    u32 ringA_; ///< accesses per scheduled EvictPath
    u64 fullMask_;
    u64 round_ = 0;
    u64 evictG_ = 0;
    Xoshiro256 rng_;
    std::vector<RingBucketMeta> meta_; ///< heap-indexed, all buckets

    // Scratch, sized once so the steady state stays allocation-free.
    std::vector<u8> hdr_;            ///< decrypted bucket header
    std::vector<u8> payload_;        ///< one decrypted slot payload
    std::vector<u8> bucketPlain_;    ///< whole-bucket arena (reshuffle)
    std::vector<u64> liveMasks_;     ///< per-level masks for evict fetch
    std::vector<Block*> ringSlots_;  ///< (L+1)*spb writeback pointers
    std::vector<u32> perm_;          ///< per-level slot permutation
    std::vector<DramRequest> dramReqs_; ///< online-read timing batch
};

/** Build the scheme selected by the backend's OramParams. */
std::unique_ptr<BucketScheme> makeBucketScheme(OramBackend& backend);

} // namespace froram

#endif // FRORAM_ORAM_BUCKET_SCHEME_HPP
