/**
 * @file
 * Untrusted external memory holding the ORAM tree.
 *
 * Implementations behind one interface:
 *
 *  - EncryptedTreeStorage: encrypted bucket images in a host-RAM map.
 *    Buckets are materialized lazily; a bucket never written reads as
 *    all-dummy (zeroed-DRAM boot state).
 *
 *  - BackedTreeStorage: encrypted bucket images serialized into a region
 *    of a pluggable StorageBackend (RAM, DRAM-timed RAM, or a persistent
 *    mmap file). This is what OramSystem uses whenever a backend is
 *    attached.
 *
 *  - MetaTreeStorage: stores only decoded per-slot (address, leaf)
 *    metadata, no payload bytes and no encryption. Functionally identical
 *    placement behavior at a fraction of the memory cost; used for the
 *    4-64 GB capacity sweeps. Byte counts for timing come from OramParams,
 *    not from stored bytes, so both modes report identical traffic.
 *
 *  - NullTreeStorage: discards everything; pure bandwidth/latency sweeps.
 *
 * Both encrypted stores share CodecTreeStorage, which also hosts the
 * active-adversary tamper API used by the PMMAC/integrity tests — the
 * adversary can tamper with any medium, not just the RAM map.
 */
#ifndef FRORAM_ORAM_TREE_STORAGE_HPP
#define FRORAM_ORAM_TREE_STORAGE_HPP

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "mem/storage_backend.hpp"
#include "mem/tree_layout.hpp"
#include "oram/bucket.hpp"
#include "oram/bucket_codec.hpp"
#include "util/rng.hpp"

namespace froram {

/** How an ORAM tree stores bucket contents. */
enum class StorageMode {
    Encrypted, ///< real encrypted payloads; supports tampering + integrity
    Meta,      ///< per-slot placement metadata only (large functional sims)
    Null       ///< nothing stored; pure bandwidth/latency accounting
};

/** Abstract untrusted bucket store, addressed by heap index. */
class TreeStorage {
  public:
    virtual ~TreeStorage() = default;

    /** Read and decode the bucket at heap index `id`. */
    virtual Bucket readBucket(u64 id) = 0;

    /** Encode and store the bucket at heap index `id`. */
    virtual void writeBucket(u64 id, const Bucket& bucket) = 0;

    /** Number of buckets ever materialized (memory footprint proxy). */
    virtual u64 bucketsTouched() const = 0;

    /** @name Allocation-free hot-path API
     *
     * PathOramBackend drives the steady-state path through these instead
     * of the Bucket layer: raw reads decrypt into a caller-owned path
     * arena and raw writes encode straight from stash block pointers,
     * with no per-bucket vector churn.
     * @{ */

    /** Plaintext bytes one raw bucket read needs; 0 when this store has
     *  no byte representation (raw reads unsupported). */
    virtual u64 bucketPlainBytes() const { return 0; }

    /** Codec for parsing raw plaintext images, or null if none. */
    virtual const BucketCodec* codec() const { return nullptr; }

    /** True if the bucket has ever been written. Stores that cannot
     *  track this return true (callers must then read to find out). */
    virtual bool hasBucket(u64 id) const
    {
        (void)id;
        return true;
    }

    /**
     * Decrypt bucket `id` into `plain` (bucketPlainBytes()); returns
     * false for never-written buckets (callers treat them as all-dummy,
     * `plain` is untouched). Only valid when bucketPlainBytes() > 0.
     */
    virtual bool
    readBucketRaw(u64 id, u8* plain)
    {
        (void)id;
        (void)plain;
        panic("raw bucket reads unsupported by this storage");
    }

    /**
     * Encode and store `z` slot pointers (null = dummy slot) as bucket
     * `id`. Default bridges to writeBucket() for stores without a
     * faster path.
     */
    virtual void
    writeBucketRaw(u64 id, const Block* const* slots, u32 z)
    {
        Bucket bucket(z);
        for (u32 s = 0; s < z; ++s) {
            if (slots[s] != nullptr)
                bucket.slots[s] = *slots[s];
        }
        writeBucket(id, bucket);
    }

    /** @name Partial bucket reads (Ring ORAM's online access)
     *
     * Ring reads every path bucket's *header* (slot addresses) but the
     * payload of only one slot, so whole-bucket decrypts would forfeit
     * its bandwidth advantage. Only meaningful when codec() != null;
     * payload-less stores (Meta/Null) serve Ring through the Bucket
     * layer instead.
     * @{ */

    /**
     * Decrypt only the header of bucket `id` into `plain`
     * (codec()->headerBytes(); parseable with the codec slot
     * accessors). Returns false for never-written buckets.
     */
    virtual bool
    readBucketHeaderRaw(u64 id, u8* plain)
    {
        (void)id;
        (void)plain;
        panic("partial bucket reads unsupported by this storage");
    }

    /**
     * Decrypt the payload of slot `slot` of bucket `id` into `out`
     * (storedBlockBytes). Returns false for never-written buckets.
     */
    virtual bool
    readSlotPayloadRaw(u64 id, u32 slot, u8* out)
    {
        (void)id;
        (void)slot;
        (void)out;
        panic("partial bucket reads unsupported by this storage");
    }
    /** @} */

    /** @name Whole-path gather IO
     *
     * Path-granular raw IO for stores whose buckets live contiguously on
     * a StorageBackend: the path's buckets are resolved to a handful of
     * gather runs (subtree placement), fetched through gatherView(), and
     * de/encrypted with ONE bulk-cipher call per path — no per-bucket
     * virtual dispatch, no per-bucket cipher setup. PathOramBackend
     * drives its fetch/decrypt/writeback stages through these whenever
     * pathIO() is true and falls back to the per-bucket raw API
     * otherwise.
     * @{ */

    /** True when this store implements the whole-path gather IO. */
    virtual bool pathIO() const { return false; }

    /** Advisory readahead for the path to `leaf` (storage prefetch of
     *  its gather runs); never changes stored bytes. */
    virtual void prefetchPath(u64 leaf) { (void)leaf; }

    /**
     * Decrypt every bucket on the path to `leaf` into `plain` (levels+1
     * images of bucketPlainBytes() each, level order), decrypting all
     * present buckets with one bulk-cipher invocation. present[l] = 0
     * marks a never-written bucket (its arena slot is untouched).
     * Only valid when pathIO() is true.
     */
    virtual void
    readPathRaw(u64 leaf, u8* plain, u8* present)
    {
        (void)leaf;
        (void)plain;
        (void)present;
        panic("whole-path reads unsupported by this storage");
    }

    /**
     * Encode and store all levels+1 buckets of the path to `leaf` from
     * `slots` ((levels+1) * z level-major block pointers, null = dummy),
     * encrypting the whole path with one bulk-cipher invocation.
     * Only valid when pathIO() is true.
     */
    virtual void
    writePathRaw(u64 leaf, const Block* const* slots, u32 z)
    {
        (void)leaf;
        (void)slots;
        (void)z;
        panic("whole-path writes unsupported by this storage");
    }
    /** @} */

    /** @name Checkpoint/restore
     *
     * Serialize/reload the *trusted* residue this store keeps outside
     * the untrusted medium (seed registers, written-bucket bitmaps,
     * or — for RAM/metadata stores — the bucket contents themselves).
     * Defaults are empty: NullTreeStorage has nothing to save.
     * @{ */
    virtual void saveTrustedState(CheckpointWriter& w) const { (void)w; }
    virtual void restoreTrustedState(CheckpointReader& r) { (void)r; }
    /** @} */
};

/**
 * Shared encode/decode layer for payload-carrying encrypted stores, plus
 * the active-adversary tamper API (Section 2 threat model). Subclasses
 * only decide where raw bucket images live.
 */
class CodecTreeStorage : public TreeStorage {
  public:
    CodecTreeStorage(const OramParams& params, const StreamCipher* cipher,
                     SeedScheme scheme, u64 domain = 0)
        : codec_(params, cipher, scheme, domain)
    {
    }

    Bucket
    readBucket(u64 id) override
    {
        if (!hasImage(id))
            return Bucket::empty(codec_.params());
        const std::vector<u8> image = rawImage(id);
        return decodeImage(id, image.data());
    }

    void
    writeBucket(u64 id, const Bucket& bucket) override
    {
        FRORAM_ASSERT(bucket.slots.size() == codec_.slots(),
                      "bucket arity");
        const std::vector<u8> prev = prevImageFor(id);
        const u64 seed =
            codec_.nextSeed(prev.empty() ? 0 : loadLe(prev.data(), 8));
        std::vector<const Block*> slots(codec_.slots());
        for (u32 s = 0; s < codec_.slots(); ++s)
            slots[s] = &bucket.slots[s];
        std::vector<u8> fresh(codec_.physBytes());
        codec_.encodeInto(id, seed, slots.data(), fresh.data(),
                          fresh.data());
        replaceImage(id, std::move(fresh));
    }

    u64 bucketPlainBytes() const override { return codec_.physBytes(); }

    const BucketCodec* codec() const override { return &codec_; }

    bool hasBucket(u64 id) const override { return hasImage(id); }

    /** Generic raw read via rawImage(); subclasses override with
     *  copy-free variants. */
    bool
    readBucketRaw(u64 id, u8* plain) override
    {
        if (!hasImage(id))
            return false;
        const std::vector<u8> image = rawImage(id);
        codec_.decryptInto(id, image.data(), plain);
        return true;
    }

    bool
    readBucketHeaderRaw(u64 id, u8* plain) override
    {
        if (!hasImage(id))
            return false;
        const std::vector<u8> image = rawImage(id);
        codec_.decryptHeaderInto(id, image.data(), plain);
        return true;
    }

    bool
    readSlotPayloadRaw(u64 id, u32 slot, u8* out) override
    {
        if (!hasImage(id))
            return false;
        const std::vector<u8> image = rawImage(id);
        codec_.decryptSlotPayloadInto(id, image.data(), slot, out);
        return true;
    }

    /** @name Active-adversary tamper API
     *  @{ */

    /** True if the bucket has ever been written (has an image). */
    virtual bool hasImage(u64 id) const = 0;

    /** Raw ciphertext of a bucket (copy); empty if never written. */
    virtual std::vector<u8> rawImage(u64 id) const = 0;

    /** Overwrite a bucket image wholesale (replay attack). */
    virtual void replaceImage(u64 id, std::vector<u8> image) = 0;

    /** Flip one bit of a stored bucket image. */
    void
    flipBit(u64 id, u64 bit_index)
    {
        std::vector<u8> image = rawImage(id);
        FRORAM_ASSERT(!image.empty(), "no image to tamper with");
        FRORAM_ASSERT(bit_index / 8 < image.size(), "bit out of range");
        image[bit_index / 8] ^= static_cast<u8>(1u << (bit_index % 8));
        replaceImage(id, std::move(image));
    }

    /** Rewind the plaintext seed field of a bucket (Section 6.4 attack). */
    void
    rewindSeed(u64 id, u64 delta = 1)
    {
        std::vector<u8> image = rawImage(id);
        FRORAM_ASSERT(image.size() >= 8, "no image to tamper with");
        u64 seed = 0;
        for (int i = 0; i < 8; ++i)
            seed |= static_cast<u64>(image[i]) << (8 * i);
        seed -= delta;
        for (int i = 0; i < 8; ++i)
            image[i] = static_cast<u8>(seed >> (8 * i));
        replaceImage(id, std::move(image));
    }
    /** @} */

  protected:
    /**
     * Previous image for re-encryption. Only the PerBucket seed scheme
     * reads it (to increment the stored seed); the default GlobalCounter
     * scheme never does, so skip the fetch on the hot eviction path.
     */
    std::vector<u8>
    prevImageFor(u64 id) const
    {
        if (codec_.scheme() == SeedScheme::PerBucket && hasImage(id))
            return rawImage(id);
        return {};
    }

    /** Decrypt + deserialize a full stored image into a Bucket (the
     *  non-hot-path convenience behind readBucket). */
    Bucket
    decodeImage(u64 id, const u8* image) const
    {
        Bucket bucket = Bucket::empty(codec_.params());
        std::vector<u8> plain(codec_.physBytes());
        codec_.decryptInto(id, image, plain.data());
        const u64 stored = codec_.params().storedBlockBytes();
        for (u32 s = 0; s < codec_.slots(); ++s) {
            Block& slot = bucket.slots[s];
            slot.addr = codec_.slotAddr(plain.data(), s);
            slot.leaf = codec_.slotLeaf(plain.data(), s);
            if (slot.valid()) {
                const u8* p = codec_.slotPayload(plain.data(), s);
                slot.data.assign(p, p + stored);
            }
        }
        return bucket;
    }

    BucketCodec codec_;
};

/** Encrypted storage holding bucket images in a host-RAM map. */
class EncryptedTreeStorage : public CodecTreeStorage {
  public:
    /**
     * @param params tree geometry
     * @param cipher pad generator (not owned)
     * @param scheme bucket-seed management policy (Section 6.4)
     * @param domain pad-domain separator (see BucketCodec)
     */
    EncryptedTreeStorage(const OramParams& params, const StreamCipher* cipher,
                         SeedScheme scheme = SeedScheme::GlobalCounter,
                         u64 domain = 0)
        : CodecTreeStorage(params, cipher, scheme, domain)
    {
    }

    /** Zero-copy read: decode straight from the stored image. */
    Bucket
    readBucket(u64 id) override
    {
        auto it = images_.find(id);
        if (it == images_.end())
            return Bucket::empty(codec_.params());
        return decodeImage(id, it->second.data());
    }

    bool
    readBucketRaw(u64 id, u8* plain) override
    {
        auto it = images_.find(id);
        if (it == images_.end())
            return false;
        codec_.decryptInto(id, it->second.data(), plain);
        return true;
    }

    bool
    readBucketHeaderRaw(u64 id, u8* plain) override
    {
        auto it = images_.find(id);
        if (it == images_.end())
            return false;
        codec_.decryptHeaderInto(id, it->second.data(), plain);
        return true;
    }

    bool
    readSlotPayloadRaw(u64 id, u32 slot, u8* out) override
    {
        auto it = images_.find(id);
        if (it == images_.end())
            return false;
        codec_.decryptSlotPayloadInto(id, it->second.data(), slot, out);
        return true;
    }

    /** Re-encode in place over the stored image; allocation-free once a
     *  bucket's image exists. */
    void
    writeBucketRaw(u64 id, const Block* const* slots, u32 z) override
    {
        FRORAM_ASSERT(z == codec_.slots(), "bucket arity");
        u64 prev_seed = 0;
        auto it = images_.find(id);
        if (codec_.scheme() == SeedScheme::PerBucket &&
            it != images_.end())
            prev_seed = loadLe(it->second.data(), 8);
        std::vector<u8>& image =
            it != images_.end() ? it->second : images_[id];
        image.resize(codec_.physBytes());
        codec_.encodeInto(id, codec_.nextSeed(prev_seed), slots,
                          image.data(), image.data());
    }

    u64 bucketsTouched() const override { return images_.size(); }

    bool hasImage(u64 id) const override { return images_.count(id) != 0; }

    std::vector<u8>
    rawImage(u64 id) const override
    {
        auto it = images_.find(id);
        return it == images_.end() ? std::vector<u8>{} : it->second;
    }

    void
    replaceImage(u64 id, std::vector<u8> image) override
    {
        images_[id] = std::move(image);
    }

    /** RAM-resident images are "trusted residue" in the checkpoint
     *  sense: they live nowhere else, so the snapshot carries them —
     *  together with the seed register, or a restored instance would
     *  re-issue pads already consumed by the carried images. */
    void
    saveTrustedState(CheckpointWriter& w) const override
    {
        w.putU64(codec_.globalSeed());
        const std::map<u64, std::vector<u8>> sorted(images_.begin(),
                                                    images_.end());
        w.putU64(sorted.size());
        for (const auto& [id, image] : sorted) {
            w.putU64(id);
            w.putBlob(image.data(), image.size());
        }
    }

    void
    restoreTrustedState(CheckpointReader& r) override
    {
        const u64 seed = r.getU64();
        if (seed > codec_.globalSeed())
            codec_.setGlobalSeed(seed);
        images_.clear();
        const u64 count = r.getU64();
        for (u64 i = 0; i < count; ++i) {
            const u64 id = r.getU64();
            images_[id] = r.getBlob();
        }
    }

  private:
    std::unordered_map<u64, std::vector<u8>> images_;
};

/**
 * Encrypted storage whose bucket images live in a StorageBackend region.
 *
 * Region layout (all little-endian):
 *
 *   [0, 64)            header: magic, numBuckets, slot bytes, seed register
 *   [64, 64 + ceil(numBuckets / 8))   written-bucket bitmap
 *   [slot base, ...)   numBuckets fixed-size bucket image slots, placed
 *                      by a tail-packed SubtreeLayout: a path's buckets
 *                      occupy one contiguous byte run per depth-k
 *                      subtree, so a path read is a handful of gather
 *                      views (and sequential prefetch streams) instead
 *                      of L+1 scattered heap-order slots
 *
 * On construction over a persistent backend whose region already carries
 * a matching header, the store *resumes*: the bitmap and the encryption
 * seed register are reloaded, so previously written buckets decode again
 * and re-encryption never reuses a one-time pad. (The magic identifies
 * the placement: regions written by the heap-order "FRORAMT1" format
 * predate the subtree placement and are not resumed.)
 */
class BackedTreeStorage : public CodecTreeStorage {
  public:
    /**
     * @param params tree geometry
     * @param cipher pad generator (not owned)
     * @param scheme bucket-seed management policy
     * @param backend storage medium (not owned; must outlive this store)
     * @param domain pad-domain separator (see BucketCodec)
     */
    BackedTreeStorage(const OramParams& params, const StreamCipher* cipher,
                      SeedScheme scheme, StorageBackend& backend,
                      u64 domain = 0);

    void writeBucket(u64 id, const Bucket& bucket) override;

    /** Zero-copy read: decrypts straight out of the backend's memory
     *  (via view()) into the caller's arena. */
    bool readBucketRaw(u64 id, u8* plain) override;

    /** Zero-copy write: encodes from slot pointers and streams the
     *  ciphertext into the backend's memory in place. */
    void writeBucketRaw(u64 id, const Block* const* slots, u32 z) override;

    /** @name Partial bucket reads (Ring online access), straight out of
     *  the backend's memory via view() when available. @{ */
    bool readBucketHeaderRaw(u64 id, u8* plain) override;
    bool readSlotPayloadRaw(u64 id, u32 slot, u8* out) override;
    /** @} */

    /** @name Whole-path gather IO (see TreeStorage)
     *  @{ */
    bool pathIO() const override { return true; }
    void prefetchPath(u64 leaf) override;
    void readPathRaw(u64 leaf, u8* plain, u8* present) override;
    void writePathRaw(u64 leaf, const Block* const* slots, u32 z) override;
    /** @} */

    u64 bucketsTouched() const override { return touched_; }

    bool hasImage(u64 id) const override;
    std::vector<u8> rawImage(u64 id) const override;
    void replaceImage(u64 id, std::vector<u8> image) override;

    /** True if a previous run's region was found and reloaded. */
    bool resumed() const { return resumed_; }

    /** Base address of this tree's region inside the backend. */
    u64 regionBase() const { return base_; }

    /** Total region size (header + bitmap + slots). */
    u64 regionBytes() const;

    /** @name Checkpoint/restore
     *
     * The snapshot carries the seed register and bucket count as an
     * *anchor*; the bitmap and bucket images stay on the backend. On
     * restore, reattach() re-reads and re-validates the region header
     * and bitmap, and — under the GlobalCounter scheme on a persistent
     * backend — the anchor must match the region's persisted seed
     * register exactly: a region that advanced past the checkpoint (or
     * lagged behind it) is rejected with CheckpointError rather than
     * resumed with stale integrity state.
     * @{ */
    void saveTrustedState(CheckpointWriter& w) const override;
    void restoreTrustedState(CheckpointReader& r) override;

    /**
     * Re-read the region header and bitmap from the backend (after the
     * data plane was externally replaced, e.g. by a full-snapshot
     * restore). Validates magic, geometry and cipher fingerprint; the
     * in-memory seed register only ever moves forward.
     */
    void reattach();
    /** @} */

  private:
    static constexpr u64 kHeaderBytes = 64;
    static constexpr u64 kMagic = 0x46524F52414D5432ULL; // "FRORAMT2"
    /** PR 1-4 heap-order placement; recognized only to reject loudly. */
    static constexpr u64 kMagicV1 = 0x46524F52414D5431ULL; // "FRORAMT1"

    u64 bitmapBytes() const { return (numBuckets_ + 7) / 8; }
    u64 slotAddr(u64 id) const;
    void markWritten(u64 id);
    void persistSeed();

    /** Heap index -> (level, index) of the bucket. */
    static BucketCoord
    coordOf(u64 id)
    {
        const u32 level = log2Floor(id + 1);
        return {level, id + 1 - (u64{1} << level)};
    }

    /** Heap index of the level-l bucket on the path to `leaf`. */
    u64
    pathBucketId(u64 leaf, u32 l) const
    {
        return ((u64{1} << l) - 1) + (leaf >> (levels_ - l));
    }

    StorageBackend& backend_;
    u32 levels_ = 0;
    u64 numBuckets_ = 0;
    u64 slotBytes_ = 0;
    u64 base_ = 0;
    u64 fingerprint_ = 0; // cipher-key/domain digest stored in the header
    SubtreeLayout layout_; // tail-packed bucket placement in the region
    std::vector<u8> bitmap_;
    std::vector<u8> stage_; // trusted plaintext staging for raw writes

    // Whole-path scratch, sized once at construction so the gather IO
    // stages are allocation-free (one entry per path level suffices for
    // every quantity below).
    std::vector<PathRun> runs_;       ///< pathRuns decomposition
    std::vector<u64> levelOff_;       ///< per-level offset into its run
    std::vector<ByteSpan> spans_;     ///< gatherView request batch
    std::vector<u8*> views_;          ///< gatherView results
    std::vector<u8*> levelDst_;       ///< writeback destination per level
    std::vector<u64> levelAddr_;      ///< backend address per level
    std::vector<CryptSpan> crypt_;    ///< one bulk-cipher span per bucket
    std::vector<u8> pathStage_;       ///< writeback plaintext staging

    u64 touched_ = 0;
    bool resumed_ = false;
};

/** Metadata-only storage for large-capacity sweeps. */
class MetaTreeStorage : public TreeStorage {
  public:
    explicit MetaTreeStorage(const OramParams& params) : params_(params) {}

    Bucket
    readBucket(u64 id) override
    {
        auto it = meta_.find(id);
        Bucket b = Bucket::empty(params_);
        if (it == meta_.end())
            return b;
        for (u32 s = 0; s < params_.slotsPerBucket(); ++s) {
            b.slots[s].addr = it->second[s].addr;
            b.slots[s].leaf = it->second[s].leaf;
        }
        return b;
    }

    void
    writeBucket(u64 id, const Bucket& bucket) override
    {
        auto& m = meta_[id];
        m.resize(params_.slotsPerBucket());
        for (u32 s = 0; s < params_.slotsPerBucket(); ++s) {
            m[s].addr = bucket.slots[s].addr;
            m[s].leaf = bucket.slots[s].leaf;
        }
    }

    /** Metadata update straight from slot pointers; no payload copies. */
    void
    writeBucketRaw(u64 id, const Block* const* slots, u32 z) override
    {
        FRORAM_ASSERT(z == params_.slotsPerBucket(), "bucket arity");
        auto& m = meta_[id];
        m.resize(params_.slotsPerBucket());
        for (u32 s = 0; s < params_.slotsPerBucket(); ++s) {
            m[s].addr = slots[s] != nullptr ? slots[s]->addr : kDummyAddr;
            m[s].leaf = slots[s] != nullptr ? slots[s]->leaf : kNoLeaf;
        }
    }

    bool hasBucket(u64 id) const override { return meta_.count(id) != 0; }

    u64 bucketsTouched() const override { return meta_.size(); }

    void
    saveTrustedState(CheckpointWriter& w) const override
    {
        const std::map<u64, std::vector<SlotMeta>> sorted(meta_.begin(),
                                                          meta_.end());
        w.putU64(sorted.size());
        for (const auto& [id, slots] : sorted) {
            w.putU64(id);
            for (const SlotMeta& s : slots) {
                w.putU64(s.addr);
                w.putU64(s.leaf);
            }
        }
    }

    void
    restoreTrustedState(CheckpointReader& r) override
    {
        meta_.clear();
        const u64 count = r.getU64();
        for (u64 i = 0; i < count; ++i) {
            auto& slots = meta_[r.getU64()];
            slots.resize(params_.slotsPerBucket());
            for (auto& s : slots) {
                s.addr = r.getU64();
                s.leaf = r.getU64();
            }
        }
    }

  private:
    struct SlotMeta {
        Addr addr = kDummyAddr;
        Leaf leaf = kNoLeaf;
    };

    OramParams params_;
    std::unordered_map<u64, std::vector<SlotMeta>> meta_;
};

/**
 * Discarding storage for pure bandwidth/latency sweeps.
 *
 * Byte-movement and DRAM-timing accounting depend only on *which* buckets
 * a Backend touches, never on their contents; PosMap contents in those
 * sweeps live in the Frontend's content oracle. NullTreeStorage therefore
 * drops all writes and reads back all-dummy buckets, giving O(1) host
 * memory even for 64 GB ORAMs (Figure 7).
 */
class NullTreeStorage : public TreeStorage {
  public:
    explicit NullTreeStorage(const OramParams& params) : params_(params) {}

    Bucket readBucket(u64 id) override { return Bucket::empty(params_); }
    void writeBucket(u64 id, const Bucket& bucket) override {}
    void writeBucketRaw(u64, const Block* const*, u32) override {}
    bool hasBucket(u64) const override { return false; }
    u64 bucketsTouched() const override { return 0; }

  private:
    OramParams params_;
};

/**
 * Construct the tree storage for one ORAM tree: Encrypted mode routes to
 * BackedTreeStorage when a StorageBackend is attached (so bucket bytes
 * live on the chosen medium) and to the RAM map otherwise; Meta and Null
 * modes never store payload bytes and ignore the backend.
 */
std::unique_ptr<TreeStorage>
makeTreeStorage(StorageMode mode, const OramParams& params,
                const StreamCipher* cipher, SeedScheme scheme,
                StorageBackend* backend, u64 domain = 0);

} // namespace froram

#endif // FRORAM_ORAM_TREE_STORAGE_HPP
