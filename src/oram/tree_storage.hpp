/**
 * @file
 * Untrusted external memory holding the ORAM tree.
 *
 * Two implementations behind one interface:
 *
 *  - EncryptedTreeStorage: stores real encrypted bucket images (what DRAM
 *    would hold). Supports the active-adversary tamper API used by the
 *    PMMAC/integrity tests and examples. Buckets are materialized lazily;
 *    a bucket never written reads as all-dummy (zeroed-DRAM boot state).
 *
 *  - MetaTreeStorage: stores only decoded per-slot (address, leaf)
 *    metadata, no payload bytes and no encryption. Functionally identical
 *    placement behavior at a fraction of the memory cost; used for the
 *    4-64 GB capacity sweeps. Byte counts for timing come from OramParams,
 *    not from stored bytes, so both modes report identical traffic.
 */
#ifndef FRORAM_ORAM_TREE_STORAGE_HPP
#define FRORAM_ORAM_TREE_STORAGE_HPP

#include <memory>
#include <unordered_map>
#include <vector>

#include "oram/bucket.hpp"
#include "oram/bucket_codec.hpp"
#include "util/rng.hpp"

namespace froram {

/** Abstract untrusted bucket store, addressed by heap index. */
class TreeStorage {
  public:
    virtual ~TreeStorage() = default;

    /** Read and decode the bucket at heap index `id`. */
    virtual Bucket readBucket(u64 id) = 0;

    /** Encode and store the bucket at heap index `id`. */
    virtual void writeBucket(u64 id, const Bucket& bucket) = 0;

    /** Number of buckets ever materialized (memory footprint proxy). */
    virtual u64 bucketsTouched() const = 0;
};

/** Payload-carrying encrypted storage with a tamper API. */
class EncryptedTreeStorage : public TreeStorage {
  public:
    /**
     * @param params tree geometry
     * @param cipher pad generator (not owned)
     * @param scheme bucket-seed management policy (Section 6.4)
     */
    EncryptedTreeStorage(const OramParams& params, const StreamCipher* cipher,
                         SeedScheme scheme = SeedScheme::GlobalCounter)
        : codec_(params, cipher, scheme)
    {
    }

    Bucket
    readBucket(u64 id) override
    {
        auto it = images_.find(id);
        if (it == images_.end())
            return Bucket::empty(codec_.params());
        return codec_.decode(id, it->second);
    }

    void
    writeBucket(u64 id, const Bucket& bucket) override
    {
        auto& image = images_[id];
        std::vector<u8> fresh;
        codec_.encode(id, bucket, image, fresh);
        image = std::move(fresh);
    }

    u64 bucketsTouched() const override { return images_.size(); }

    /** @name Active-adversary tamper API (Section 2 threat model)
     *  @{ */

    /** True if the bucket has ever been written (has an image). */
    bool hasImage(u64 id) const { return images_.count(id) != 0; }

    /** Raw ciphertext of a bucket (copy); empty if never written. */
    std::vector<u8>
    rawImage(u64 id) const
    {
        auto it = images_.find(id);
        return it == images_.end() ? std::vector<u8>{} : it->second;
    }

    /** Overwrite a bucket image wholesale (replay attack). */
    void
    replaceImage(u64 id, std::vector<u8> image)
    {
        images_[id] = std::move(image);
    }

    /** Flip one bit of a stored bucket image. */
    void
    flipBit(u64 id, u64 bit_index)
    {
        auto it = images_.find(id);
        FRORAM_ASSERT(it != images_.end(), "no image to tamper with");
        FRORAM_ASSERT(bit_index / 8 < it->second.size(), "bit out of range");
        it->second[bit_index / 8] ^= static_cast<u8>(1u << (bit_index % 8));
    }

    /** Rewind the plaintext seed field of a bucket (Section 6.4 attack). */
    void
    rewindSeed(u64 id, u64 delta = 1)
    {
        auto it = images_.find(id);
        FRORAM_ASSERT(it != images_.end(), "no image to tamper with");
        u64 seed = 0;
        for (int i = 0; i < 8; ++i)
            seed |= static_cast<u64>(it->second[i]) << (8 * i);
        seed -= delta;
        for (int i = 0; i < 8; ++i)
            it->second[i] = static_cast<u8>(seed >> (8 * i));
    }
    /** @} */

    const BucketCodec& codec() const { return codec_; }

  private:
    BucketCodec codec_;
    std::unordered_map<u64, std::vector<u8>> images_;
};

/** Metadata-only storage for large-capacity sweeps. */
class MetaTreeStorage : public TreeStorage {
  public:
    explicit MetaTreeStorage(const OramParams& params) : params_(params) {}

    Bucket
    readBucket(u64 id) override
    {
        auto it = meta_.find(id);
        Bucket b = Bucket::empty(params_);
        if (it == meta_.end())
            return b;
        for (u32 s = 0; s < params_.z; ++s) {
            b.slots[s].addr = it->second[s].addr;
            b.slots[s].leaf = it->second[s].leaf;
        }
        return b;
    }

    void
    writeBucket(u64 id, const Bucket& bucket) override
    {
        auto& m = meta_[id];
        m.resize(params_.z);
        for (u32 s = 0; s < params_.z; ++s) {
            m[s].addr = bucket.slots[s].addr;
            m[s].leaf = bucket.slots[s].leaf;
        }
    }

    u64 bucketsTouched() const override { return meta_.size(); }

  private:
    struct SlotMeta {
        Addr addr = kDummyAddr;
        Leaf leaf = kNoLeaf;
    };

    OramParams params_;
    std::unordered_map<u64, std::vector<SlotMeta>> meta_;
};

/**
 * Discarding storage for pure bandwidth/latency sweeps.
 *
 * Byte-movement and DRAM-timing accounting depend only on *which* buckets
 * a Backend touches, never on their contents; PosMap contents in those
 * sweeps live in the Frontend's content oracle. NullTreeStorage therefore
 * drops all writes and reads back all-dummy buckets, giving O(1) host
 * memory even for 64 GB ORAMs (Figure 7).
 */
class NullTreeStorage : public TreeStorage {
  public:
    explicit NullTreeStorage(const OramParams& params) : params_(params) {}

    Bucket readBucket(u64 id) override { return Bucket::empty(params_); }
    void writeBucket(u64 id, const Bucket& bucket) override {}
    u64 bucketsTouched() const override { return 0; }

  private:
    OramParams params_;
};

} // namespace froram

#endif // FRORAM_ORAM_TREE_STORAGE_HPP
