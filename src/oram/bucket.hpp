/**
 * @file
 * Decoded (plaintext) bucket representation.
 */
#ifndef FRORAM_ORAM_BUCKET_HPP
#define FRORAM_ORAM_BUCKET_HPP

#include <vector>

#include "oram/params.hpp"
#include "oram/types.hpp"

namespace froram {

/**
 * One bucket of slotsPerBucket() slots (Z, or Z + S under the Ring
 * scheme), in decoded form. Invalid slots hold kDummyAddr.
 */
struct Bucket {
    std::vector<Block> slots;

    Bucket() = default;
    explicit Bucket(u32 z) : slots(z) {}

    /** Number of valid (real) blocks. */
    u32
    occupancy() const
    {
        u32 n = 0;
        for (const auto& s : slots)
            n += s.valid() ? 1 : 0;
        return n;
    }

    /** An all-dummy bucket of the right arity. */
    static Bucket
    empty(const OramParams& p)
    {
        return Bucket(p.slotsPerBucket());
    }
};

} // namespace froram

#endif // FRORAM_ORAM_BUCKET_HPP
