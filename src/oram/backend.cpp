#include "oram/backend.hpp"

namespace froram {

PathOramBackend::PathOramBackend(const BackendConfig& config,
                                 std::unique_ptr<TreeStorage> storage,
                                 std::unique_ptr<TreeLayout> layout,
                                 StorageBackend* mem)
    : config_(config), storage_(std::move(storage)),
      layout_(std::move(layout)), mem_(mem),
      stash_(config.params.stashCapacity,
             config.params.z * (config.params.levels + 1)),
      stats_("backend")
{
    config_.params.validate();
    FRORAM_ASSERT(storage_ != nullptr, "backend needs tree storage");
}

u64
PathOramBackend::pathDramTime(Leaf leaf, bool is_write)
{
    if (mem_ == nullptr || !mem_->timed() || layout_ == nullptr)
        return 0;
    std::vector<DramRequest> reqs;
    const u64 bucket_bytes = config_.params.bucketPhysBytes();
    const u64 burst = mem_->burstBytes();
    const u64 bursts = divCeil(bucket_bytes, burst);
    reqs.reserve((config_.params.levels + 1) * bursts);
    for (const BucketCoord& c : layout_->path(leaf)) {
        const u64 base = layout_->addressOf(c);
        for (u64 b = 0; b < bursts; ++b)
            reqs.push_back({base + b * burst, is_write});
    }
    return mem_->accessBatch(reqs);
}

void
PathOramBackend::readPath(Leaf leaf)
{
    FRORAM_ASSERT(leaf < config_.params.numLeaves(), "leaf out of range");
    if (config_.beforePathRead)
        config_.beforePathRead(leaf);
    for (u32 l = 0; l <= config_.params.levels; ++l) {
        const BucketCoord c{l, leaf >> (config_.params.levels - l)};
        Bucket bucket = storage_->readBucket(heapIndex(c));
        for (auto& slot : bucket.slots) {
            if (slot.valid())
                stash_.insert(std::move(slot));
        }
    }
    if (config_.traceSink)
        config_.traceSink({TraceEvent::Kind::PathRead, config_.treeId, leaf});
    stats_.inc("pathReads");
}

void
PathOramBackend::writePath(Leaf leaf)
{
    auto per_level =
        stash_.evictPath(leaf, config_.params.levels, config_.params.z);
    for (u32 l = 0; l <= config_.params.levels; ++l) {
        const BucketCoord c{l, leaf >> (config_.params.levels - l)};
        Bucket bucket = Bucket::empty(config_.params);
        auto& chosen = per_level[l];
        for (u32 s = 0; s < chosen.size(); ++s)
            bucket.slots[s] = std::move(chosen[s]);
        storage_->writeBucket(heapIndex(c), bucket);
    }
    if (config_.traceSink)
        config_.traceSink(
            {TraceEvent::Kind::PathWrite, config_.treeId, leaf});
    if (config_.afterPathWrite)
        config_.afterPathWrite(leaf);
    stats_.inc("pathWrites");
}

BackendResult
PathOramBackend::access(Op op, Addr addr, Leaf leaf, Leaf new_leaf,
                        const std::vector<u8>* write_data,
                        const BlockTransform& transform)
{
    FRORAM_ASSERT(op != Op::Append, "use append() for Append");
    BackendResult res;

    readPath(leaf);
    res.dramPs += pathDramTime(leaf, /*is_write=*/false);

    Block* in_stash = stash_.find(addr);
    res.found = in_stash != nullptr;

    switch (op) {
      case Op::Read:
      case Op::Write: {
        if (!in_stash) {
            // Cold miss (lazy init): materialize a zero block, mapped to
            // the fresh leaf, exactly as a boot-time-initialized ORAM
            // would contain it.
            Block fresh;
            fresh.addr = addr;
            fresh.leaf = new_leaf;
            fresh.data.assign(config_.params.storedBlockBytes(), 0);
            stash_.insert(std::move(fresh));
            in_stash = stash_.find(addr);
            stats_.inc("coldMisses");
        }
        in_stash->leaf = new_leaf;
        if (op == Op::Write && write_data != nullptr) {
            FRORAM_ASSERT(
                write_data->size() <= config_.params.storedBlockBytes(),
                "write payload too large");
            in_stash->data = *write_data;
            in_stash->data.resize(config_.params.storedBlockBytes(), 0);
        }
        // Step 4 hook: runs while the block is guaranteed stash-resident
        // (eviction below may immediately write it back to the tree).
        if (transform)
            transform(*in_stash, res.found);
        res.block = *in_stash; // copy out for the Frontend
        break;
      }
      case Op::ReadRmv: {
        if (in_stash) {
            res.block = stash_.remove(addr);
        } else {
            // Cold miss on a PosMap block: synthesize an all-zero block.
            // It is *not* inserted; the Frontend owns it (PLB) now.
            res.block.addr = addr;
            res.block.leaf = new_leaf;
            res.block.data.assign(config_.params.storedBlockBytes(), 0);
            stats_.inc("coldMisses");
        }
        break;
      }
      default:
        panic("unreachable");
    }

    writePath(leaf);
    res.dramPs += pathDramTime(leaf, /*is_write=*/true);
    res.bytesMoved = 2 * config_.params.pathBytes();
    stats_.inc("accesses");
    stats_.inc("bytesMoved", res.bytesMoved);
    stats_.inc(op == Op::ReadRmv ? "readRmvOps"
                                 : (op == Op::Write ? "writeOps" : "readOps"));
    return res;
}

void
PathOramBackend::append(Block block)
{
    FRORAM_ASSERT(block.valid(), "appending dummy block");
    FRORAM_ASSERT(block.leaf < config_.params.numLeaves(),
                  "append without a valid leaf");
    stash_.insert(std::move(block));
    stats_.inc("appends");
}

std::optional<BucketCoord>
PathOramBackend::locateInTree(Addr addr)
{
    for (u32 l = 0; l <= config_.params.levels; ++l) {
        for (u64 i = 0; i < (u64{1} << l); ++i) {
            const BucketCoord c{l, i};
            Bucket b = storage_->readBucket(heapIndex(c));
            for (const auto& slot : b.slots) {
                if (slot.valid() && slot.addr == addr)
                    return c;
            }
        }
    }
    return std::nullopt;
}

} // namespace froram
