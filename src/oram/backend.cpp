#include "oram/backend.hpp"

#include "oram/bucket_scheme.hpp"

namespace froram {

OramBackend::OramBackend(const BackendConfig& config,
                         std::unique_ptr<TreeStorage> storage,
                         std::unique_ptr<TreeLayout> layout,
                         StorageBackend* mem)
    : config_(config), storage_(std::move(storage)),
      layout_(std::move(layout)), mem_(mem),
      stash_(config.params.stashCapacity,
             config.params.z * (config.params.levels + 1),
             config.params.storedBlockBytes()),
      stats_("backend")
{
    config_.params.normalizeRing();
    config_.params.validate();
    FRORAM_ASSERT(storage_ != nullptr, "backend needs tree storage");
    const u64 plain = storage_->bucketPlainBytes();
    if (plain != 0 && storage_->codec() != nullptr)
        pathPlain_.resize((config_.params.levels + 1) * plain);
    pathIO_ = storage_->pathIO() && rawPath();
    pathPresent_.assign(config_.params.levels + 1, 0);
    evictSlots_.assign(
        u64{config_.params.levels + 1} * config_.params.z, nullptr);
    timingRuns_.resize(config_.params.levels + 1);
    timingOff_.resize(config_.params.levels + 1);
    timingSpans_.resize(config_.params.levels + 1);
    scheme_ = makeBucketScheme(*this);
}

OramBackend::~OramBackend() = default;

void
OramBackend::issueFetch(Leaf leaf)
{
    // No storage prefetch here: this path is about to be read
    // synchronously, so advising the kernel now buys nothing. The
    // readahead half of the stage runs as the batch engine's LOOKAHEAD
    // — prefetchPath(next leaf) issued before the CURRENT request's
    // compute (Frontend::accessBatch, shard-worker pipeline).
    FRORAM_ASSERT(leaf < config_.params.numLeaves(), "leaf out of range");
    if (config_.beforePathRead)
        config_.beforePathRead(leaf);
}

u64
OramBackend::pathDramTime(Leaf leaf, bool is_write)
{
    if (mem_ == nullptr || !mem_->timed() || layout_ == nullptr)
        return 0;
    if (pathIO_) {
        // Gather fetch shape: each run of the path is one sequential
        // burst stream from the subtree's base — one row activate per
        // run, then streamed CAS. Only the path's own bucket bytes are
        // transferred (a gather view moves no more than is touched),
        // so the burst count matches the per-bucket request shape; the
        // difference is the stream's contiguity within the run.
        const u64 phys = config_.params.bucketPhysBytes();
        const u32 nruns = layout_->pathRuns(leaf, timingRuns_.data(),
                                            timingOff_.data());
        for (u32 i = 0; i < nruns; ++i)
            timingSpans_[i] = {timingRuns_[i].addr,
                               u64{timingRuns_[i].numLevels} * phys};
        return mem_->streamBatch(timingSpans_.data(), nruns, is_write);
    }
    const u64 bucket_bytes = config_.params.bucketPhysBytes();
    const u64 burst = mem_->burstBytes();
    const u64 bursts = divCeil(bucket_bytes, burst);
    dramReqs_.clear(); // reusable member batch: capacity is retained
    dramReqs_.reserve((config_.params.levels + 1) * bursts);
    for (const BucketCoord& c : layout_->path(leaf)) {
        const u64 base = layout_->addressOf(c);
        for (u64 b = 0; b < bursts; ++b)
            dramReqs_.push_back({base + b * burst, is_write});
    }
    return mem_->accessBatch(dramReqs_);
}

void
OramBackend::fetchPathToStash(Leaf leaf, const u64* live)
{
    const u32 spb = config_.params.slotsPerBucket();
    if (pathIO_) {
        // Gather path: the storage fetches the whole path as a few
        // contiguous runs and decrypts every present bucket with ONE
        // cipher kernel; this loop only scans the arena into pooled
        // stash storage.
        storage_->readPathRaw(leaf, pathPlain_.data(),
                              pathPresent_.data());
        const BucketCodec* codec = storage_->codec();
        const u64 plain_bytes = storage_->bucketPlainBytes();
        const u64 stored = config_.params.storedBlockBytes();
        for (u32 l = 0; l <= config_.params.levels; ++l) {
            if (pathPresent_[l] == 0)
                continue;
            const u64 mask = live != nullptr ? live[l] : ~u64{0};
            const u8* plain = pathPlain_.data() + u64{l} * plain_bytes;
            for (u32 s = 0; s < spb; ++s) {
                if (((mask >> s) & 1) == 0)
                    continue;
                const Addr a = codec->slotAddr(plain, s);
                if (a == kDummyAddr)
                    continue;
                stash_.insertBytes(a, codec->slotLeaf(plain, s),
                                   codec->slotPayload(plain, s), stored);
            }
        }
    } else if (rawPath()) {
        // Raw per-bucket path: decrypt each bucket into the path arena
        // and copy valid blocks into pooled stash storage -- no Bucket,
        // no per-slot vectors.
        const BucketCodec* codec = storage_->codec();
        const u64 plain_bytes = storage_->bucketPlainBytes();
        const u64 stored = config_.params.storedBlockBytes();
        for (u32 l = 0; l <= config_.params.levels; ++l) {
            const BucketCoord c{l, leaf >> (config_.params.levels - l)};
            const u64 mask = live != nullptr ? live[l] : ~u64{0};
            u8* plain = pathPlain_.data() + u64{l} * plain_bytes;
            if (mask == 0 || !storage_->readBucketRaw(heapIndex(c), plain))
                continue;
            for (u32 s = 0; s < spb; ++s) {
                if (((mask >> s) & 1) == 0)
                    continue;
                const Addr a = codec->slotAddr(plain, s);
                if (a == kDummyAddr)
                    continue;
                stash_.insertBytes(a, codec->slotLeaf(plain, s),
                                   codec->slotPayload(plain, s), stored);
            }
        }
    } else {
        for (u32 l = 0; l <= config_.params.levels; ++l) {
            const BucketCoord c{l, leaf >> (config_.params.levels - l)};
            const u64 mask = live != nullptr ? live[l] : ~u64{0};
            if (mask == 0)
                continue;
            Bucket bucket = storage_->readBucket(heapIndex(c));
            for (u32 s = 0; s < bucket.slots.size() && s < 64; ++s) {
                if (((mask >> s) & 1) != 0 && bucket.slots[s].valid())
                    stash_.insert(bucket.slots[s]);
            }
        }
    }
}

void
OramBackend::writebackPath(Leaf leaf, const Block* const* slots)
{
    const u32 spb = config_.params.slotsPerBucket();
    if (pathIO_) {
        // Whole-path writeback: every bucket serialized, then ONE
        // cipher kernel encrypts the path into the gathered views.
        storage_->writePathRaw(leaf, slots, spb);
    } else {
        for (u32 l = 0; l <= config_.params.levels; ++l) {
            const BucketCoord c{l, leaf >> (config_.params.levels - l)};
            storage_->writeBucketRaw(heapIndex(c), slots + u64{l} * spb,
                                     spb);
        }
    }
}

BackendResult
OramBackend::access(Op op, Addr addr, Leaf leaf, Leaf new_leaf,
                    const std::vector<u8>* write_data,
                    const BlockTransform& transform)
{
    BackendResult res;
    accessInto(res, op, addr, leaf, new_leaf, write_data, transform);
    return res;
}

void
OramBackend::accessInto(BackendResult& res, Op op, Addr addr, Leaf leaf,
                        Leaf new_leaf, const std::vector<u8>* write_data,
                        const BlockTransform& transform)
{
    FRORAM_ASSERT(op != Op::Append, "use append() for Append");
    res.found = false;
    res.dramPs = 0;
    res.bytesMoved = 0;

    issueFetch(leaf);
    scheme_->readForAccess(res, leaf, addr);

    Block* in_stash = stash_.find(addr);
    res.found = in_stash != nullptr;

    switch (op) {
      case Op::Read:
      case Op::Write: {
        if (!in_stash) {
            // Cold miss (lazy init): materialize a zero block, mapped to
            // the fresh leaf, exactly as a boot-time-initialized ORAM
            // would contain it.
            in_stash = &stash_.insertBytes(
                addr, new_leaf, nullptr,
                config_.params.storedBlockBytes());
            stats_.inc("coldMisses");
        }
        in_stash->leaf = new_leaf;
        if (op == Op::Write && write_data != nullptr) {
            FRORAM_ASSERT(
                write_data->size() <= config_.params.storedBlockBytes(),
                "write payload too large");
            in_stash->data.assign(write_data->begin(), write_data->end());
            in_stash->data.resize(config_.params.storedBlockBytes(), 0);
        }
        // Step 4 hook: runs while the block is guaranteed stash-resident
        // (eviction below may immediately write it back to the tree).
        if (transform)
            transform(*in_stash, res.found);
        // Copy out for the Frontend (assign, so a reused result's
        // payload buffer is recycled rather than reallocated).
        res.block.addr = in_stash->addr;
        res.block.leaf = in_stash->leaf;
        res.block.data.assign(in_stash->data.begin(),
                              in_stash->data.end());
        break;
      }
      case Op::ReadRmv: {
        if (in_stash) {
            stash_.removeInto(addr, res.block);
        } else {
            // Cold miss on a PosMap block: synthesize an all-zero block.
            // It is *not* inserted; the Frontend owns it (PLB) now.
            res.block.addr = addr;
            res.block.leaf = new_leaf;
            res.block.data.assign(config_.params.storedBlockBytes(), 0);
            stats_.inc("coldMisses");
        }
        break;
      }
      default:
        panic("unreachable");
    }

    scheme_->finishAccess(res, leaf);
    stats_.inc("accesses");
    stats_.inc("bytesMoved", res.bytesMoved);
    stats_.inc(op == Op::ReadRmv ? "readRmvOps"
                                 : (op == Op::Write ? "writeOps" : "readOps"));
}

void
OramBackend::append(Block block)
{
    FRORAM_ASSERT(block.valid(), "appending dummy block");
    FRORAM_ASSERT(block.leaf < config_.params.numLeaves(),
                  "append without a valid leaf");
    stash_.insert(block);
    stats_.inc("appends");
}

void
OramBackend::saveState(CheckpointWriter& w) const
{
    w.begin(ckpt::kTagBackend);
    stash_.saveState(w);
    w.begin(ckpt::kTagTreeStore);
    storage_->saveTrustedState(w);
    w.end();
    // Stateless schemes (Path) write no section, keeping pre-seam
    // checkpoint images byte-identical.
    if (scheme_->hasState()) {
        w.begin(ckpt::kTagScheme);
        scheme_->saveState(w);
        w.end();
    }
    w.end();
}

void
OramBackend::restoreState(CheckpointReader& r)
{
    r.enter(ckpt::kTagBackend);
    stash_.restoreState(r);
    r.enter(ckpt::kTagTreeStore);
    storage_->restoreTrustedState(r);
    r.exit();
    if (scheme_->hasState()) {
        r.enter(ckpt::kTagScheme);
        scheme_->restoreState(r);
        r.exit();
    }
    r.exit();
}

std::optional<BucketCoord>
OramBackend::locateInTree(Addr addr)
{
    const BucketCodec* codec = storage_->codec();
    const u32 spb = config_.params.slotsPerBucket();
    for (u32 l = 0; l <= config_.params.levels; ++l) {
        for (u64 i = 0; i < (u64{1} << l); ++i) {
            const BucketCoord c{l, i};
            const u64 id = heapIndex(c);
            // Never-written buckets decode as all-dummy: skip them
            // without touching (or decoding) storage at all.
            if (!storage_->hasBucket(id))
                continue;
            if (rawPath()) {
                // Raw probe through the path arena's first slot: no
                // Bucket, no per-slot vectors — the debug walk stays
                // allocation-free like the access hot path.
                u8* plain = pathPlain_.data();
                if (!storage_->readBucketRaw(id, plain))
                    continue;
                for (u32 s = 0; s < spb; ++s) {
                    if (codec->slotAddr(plain, s) == addr &&
                        scheme_->slotLive(id, s))
                        return c;
                }
            } else {
                Bucket b = storage_->readBucket(id);
                for (u32 s = 0; s < b.slots.size(); ++s) {
                    if (b.slots[s].valid() && b.slots[s].addr == addr &&
                        scheme_->slotLive(id, s))
                        return c;
                }
            }
        }
    }
    return std::nullopt;
}

} // namespace froram
