#include "oram/bucket_codec.hpp"

#include <cstring>

namespace froram {

BucketCodec::BucketCodec(const OramParams& params, const StreamCipher* cipher,
                         SeedScheme scheme, u64 domain)
    : params_(params), cipher_(cipher), scheme_(scheme), domain_(domain)
{
    FRORAM_ASSERT(cipher_ != nullptr, "codec needs a cipher");
    addrBytes_ = divCeil(params_.addrBits(), 8);
    leafBytes_ = divCeil(params_.levels == 0 ? 1 : params_.levels, 8);
    addrMask_ =
        addrBytes_ >= 8 ? ~u64{0} : (u64{1} << (8 * addrBytes_)) - 1;
    payloadBase_ = 8 + params_.z * (addrBytes_ + leafBytes_);
}

u64
BucketCodec::padSeedHi(u64 bucket_id, u64 stored_seed) const
{
    // GlobalCounter: pad = AES_K(GlobalSeed || Domain || chunk); the
    // (seed, domain) pair guarantees uniqueness across all trees sharing
    // the cipher. PerBucket: pad = AES_K(BucketID || BucketSeed || chunk)
    // as in [26], with the domain folded above any realistic bucket id.
    return scheme_ == SeedScheme::GlobalCounter
               ? stored_seed
               : bucket_id ^ (domain_ << 48);
}

u64
BucketCodec::padSeedLo(u64 bucket_id, u64 stored_seed) const
{
    return scheme_ == SeedScheme::GlobalCounter ? domain_ : stored_seed;
}

void
BucketCodec::serializeInto(u64 seed, const Block* const* slots,
                           u8* stage) const
{
    const u64 phys = params_.bucketPhysBytes();
    const u64 stored = params_.storedBlockBytes();

    std::memset(stage, 0, phys);
    storeLe(stage, seed, 8);

    u8* p = stage + 8;
    for (u32 s = 0; s < params_.z; ++s) {
        const Block* blk = slots[s];
        const bool valid = blk != nullptr && blk->valid();
        storeLe(p, valid ? blk->addr : kDummyAddr, addrBytes_);
        p += addrBytes_;
        storeLe(p, valid ? blk->leaf : 0, leafBytes_);
        p += leafBytes_;
    }
    for (u32 s = 0; s < params_.z; ++s) {
        const Block* blk = slots[s];
        if (blk != nullptr && blk->valid() && !blk->data.empty()) {
            FRORAM_ASSERT(blk->data.size() <= stored,
                          "block payload exceeds slot");
            std::memcpy(p, blk->data.data(), blk->data.size());
        }
        p += stored;
    }
}

void
BucketCodec::encodeInto(u64 bucket_id, u64 seed, const Block* const* slots,
                        u8* stage, u8* dst) const
{
    serializeInto(seed, slots, stage);

    // Only ciphertext (and the plaintext seed field) ever reaches `dst`,
    // which may be a view into untrusted backend memory.
    if (dst != stage)
        std::memcpy(dst, stage, 8);
    cipher_->xorCryptBulkTo(padSeedHi(bucket_id, seed),
                            padSeedLo(bucket_id, seed), stage + 8, dst + 8,
                            params_.bucketPhysBytes() - 8);
}

void
BucketCodec::decryptInto(u64 bucket_id, const u8* image, u8* plain) const
{
    const u64 phys = params_.bucketPhysBytes();
    const u64 seed = loadLe(image, 8);
    if (plain != image)
        std::memcpy(plain, image, 8);
    cipher_->xorCryptBulkTo(padSeedHi(bucket_id, seed),
                            padSeedLo(bucket_id, seed), image + 8,
                            plain + 8, phys - 8);
}

void
BucketCodec::encode(u64 bucket_id, const Bucket& bucket,
                    const std::vector<u8>& prev_image, std::vector<u8>& out)
{
    FRORAM_ASSERT(bucket.slots.size() == params_.z, "bucket arity");
    out.resize(params_.bucketPhysBytes());

    const u64 prev_seed =
        prev_image.empty() ? 0 : loadLe(prev_image.data(), 8);
    const u64 seed = nextSeed(prev_seed);

    std::vector<const Block*> slots(params_.z);
    for (u32 s = 0; s < params_.z; ++s)
        slots[s] = &bucket.slots[s];
    encodeInto(bucket_id, seed, slots.data(), out.data(), out.data());
}

Bucket
BucketCodec::decode(u64 bucket_id, const std::vector<u8>& image) const
{
    Bucket bucket = Bucket::empty(params_);
    if (image.empty())
        return bucket; // never-written bucket: all dummies
    FRORAM_ASSERT(image.size() == params_.bucketPhysBytes(),
                  "bucket image size mismatch");

    std::vector<u8> plain(image.size());
    decryptInto(bucket_id, image.data(), plain.data());

    const u64 stored = params_.storedBlockBytes();
    for (u32 s = 0; s < params_.z; ++s) {
        Block& slot = bucket.slots[s];
        slot.addr = slotAddr(plain.data(), s);
        slot.leaf = slotLeaf(plain.data(), s);
        if (slot.valid()) {
            const u8* p = slotPayload(plain.data(), s);
            slot.data.assign(p, p + stored);
        }
    }
    return bucket;
}

} // namespace froram
