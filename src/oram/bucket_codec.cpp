#include "oram/bucket_codec.hpp"

#include <cstring>

namespace froram {

BucketCodec::BucketCodec(const OramParams& params, const StreamCipher* cipher,
                         SeedScheme scheme, u64 domain)
    : params_(params), cipher_(cipher), scheme_(scheme), domain_(domain)
{
    FRORAM_ASSERT(cipher_ != nullptr, "codec needs a cipher");
    addrBytes_ = divCeil(params_.addrBits(), 8);
    leafBytes_ = divCeil(params_.levels == 0 ? 1 : params_.levels, 8);
}

u64
BucketCodec::padSeedHi(u64 bucket_id, u64 stored_seed) const
{
    // GlobalCounter: pad = AES_K(GlobalSeed || Domain || chunk); the
    // (seed, domain) pair guarantees uniqueness across all trees sharing
    // the cipher. PerBucket: pad = AES_K(BucketID || BucketSeed || chunk)
    // as in [26], with the domain folded above any realistic bucket id.
    return scheme_ == SeedScheme::GlobalCounter
               ? stored_seed
               : bucket_id ^ (domain_ << 48);
}

u64
BucketCodec::padSeedLo(u64 bucket_id, u64 stored_seed) const
{
    return scheme_ == SeedScheme::GlobalCounter ? domain_ : stored_seed;
}

void
BucketCodec::encode(u64 bucket_id, const Bucket& bucket,
                    const std::vector<u8>& prev_image, std::vector<u8>& out)
{
    FRORAM_ASSERT(bucket.slots.size() == params_.z, "bucket arity");
    const u64 phys = params_.bucketPhysBytes();
    out.assign(phys, 0);

    u64 seed;
    if (scheme_ == SeedScheme::GlobalCounter) {
        seed = globalSeed_++;
    } else {
        // Increment whatever seed is currently stored with the bucket --
        // the step that goes wrong when an adversary rewinds it.
        const u64 old_seed =
            prev_image.empty() ? 0 : loadLe(prev_image.data(), 8);
        seed = old_seed + 1;
    }
    storeLe(out.data(), seed, 8);

    u8* p = out.data() + 8;
    for (const auto& slot : bucket.slots) {
        storeLe(p, slot.addr, addrBytes_);
        p += addrBytes_;
        storeLe(p, slot.valid() ? slot.leaf : 0, leafBytes_);
        p += leafBytes_;
    }
    const u64 stored = params_.storedBlockBytes();
    for (const auto& slot : bucket.slots) {
        if (slot.valid() && !slot.data.empty()) {
            FRORAM_ASSERT(slot.data.size() <= stored,
                          "block payload exceeds slot");
            std::memcpy(p, slot.data.data(), slot.data.size());
        }
        p += stored;
    }

    cipher_->xorCrypt(padSeedHi(bucket_id, seed), padSeedLo(bucket_id, seed),
                      out.data() + 8, phys - 8);
}

Bucket
BucketCodec::decode(u64 bucket_id, const std::vector<u8>& image) const
{
    Bucket bucket = Bucket::empty(params_);
    if (image.empty())
        return bucket; // never-written bucket: all dummies
    FRORAM_ASSERT(image.size() == params_.bucketPhysBytes(),
                  "bucket image size mismatch");

    const u64 seed = loadLe(image.data(), 8);
    std::vector<u8> plain(image.begin() + 8, image.end());
    cipher_->xorCrypt(padSeedHi(bucket_id, seed),
                      padSeedLo(bucket_id, seed), plain.data(),
                      plain.size());

    const u8* p = plain.data();
    const u64 addr_mask =
        addrBytes_ >= 8 ? ~u64{0} : (u64{1} << (8 * addrBytes_)) - 1;
    for (auto& slot : bucket.slots) {
        const u64 a = loadLe(p, addrBytes_);
        p += addrBytes_;
        const u64 l = loadLe(p, leafBytes_);
        p += leafBytes_;
        slot.addr = a == addr_mask ? kDummyAddr : a;
        slot.leaf = l;
    }
    const u64 stored = params_.storedBlockBytes();
    for (auto& slot : bucket.slots) {
        if (slot.valid())
            slot.data.assign(p, p + stored);
        p += stored;
    }
    return bucket;
}

} // namespace froram
