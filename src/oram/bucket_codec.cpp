#include "oram/bucket_codec.hpp"

#include <algorithm>
#include <cstring>

namespace froram {

BucketCodec::BucketCodec(const OramParams& params, const StreamCipher* cipher,
                         SeedScheme scheme, u64 domain)
    : params_(params), cipher_(cipher), scheme_(scheme), domain_(domain)
{
    FRORAM_ASSERT(cipher_ != nullptr, "codec needs a cipher");
    slots_ = params_.slotsPerBucket();
    addrBytes_ = divCeil(params_.addrBits(), 8);
    leafBytes_ = divCeil(params_.levels == 0 ? 1 : params_.levels, 8);
    addrMask_ =
        addrBytes_ >= 8 ? ~u64{0} : (u64{1} << (8 * addrBytes_)) - 1;
    payloadBase_ = 8 + slots_ * (addrBytes_ + leafBytes_);
}

u64
BucketCodec::padSeedHi(u64 bucket_id, u64 stored_seed) const
{
    // GlobalCounter: pad = AES_K(GlobalSeed || Domain || chunk); the
    // (seed, domain) pair guarantees uniqueness across all trees sharing
    // the cipher. PerBucket: pad = AES_K(BucketID || BucketSeed || chunk)
    // as in [26], with the domain folded above any realistic bucket id.
    return scheme_ == SeedScheme::GlobalCounter
               ? stored_seed
               : bucket_id ^ (domain_ << 48);
}

u64
BucketCodec::padSeedLo(u64 bucket_id, u64 stored_seed) const
{
    return scheme_ == SeedScheme::GlobalCounter ? domain_ : stored_seed;
}

void
BucketCodec::serializeInto(u64 seed, const Block* const* slots,
                           u8* stage) const
{
    const u64 phys = params_.bucketPhysBytes();
    const u64 stored = params_.storedBlockBytes();

    std::memset(stage, 0, phys);
    storeLe(stage, seed, 8);

    u8* p = stage + 8;
    for (u32 s = 0; s < slots_; ++s) {
        const Block* blk = slots[s];
        const bool valid = blk != nullptr && blk->valid();
        storeLe(p, valid ? blk->addr : kDummyAddr, addrBytes_);
        p += addrBytes_;
        storeLe(p, valid ? blk->leaf : 0, leafBytes_);
        p += leafBytes_;
    }
    for (u32 s = 0; s < slots_; ++s) {
        const Block* blk = slots[s];
        if (blk != nullptr && blk->valid() && !blk->data.empty()) {
            FRORAM_ASSERT(blk->data.size() <= stored,
                          "block payload exceeds slot");
            std::memcpy(p, blk->data.data(), blk->data.size());
        }
        p += stored;
    }
}

void
BucketCodec::encodeInto(u64 bucket_id, u64 seed, const Block* const* slots,
                        u8* stage, u8* dst) const
{
    serializeInto(seed, slots, stage);

    // Only ciphertext (and the plaintext seed field) ever reaches `dst`,
    // which may be a view into untrusted backend memory.
    if (dst != stage)
        std::memcpy(dst, stage, 8);
    cipher_->xorCryptBulkTo(padSeedHi(bucket_id, seed),
                            padSeedLo(bucket_id, seed), stage + 8, dst + 8,
                            params_.bucketPhysBytes() - 8);
}

void
BucketCodec::decryptInto(u64 bucket_id, const u8* image, u8* plain) const
{
    const u64 phys = params_.bucketPhysBytes();
    const u64 seed = loadLe(image, 8);
    if (plain != image)
        std::memcpy(plain, image, 8);
    cipher_->xorCryptBulkTo(padSeedHi(bucket_id, seed),
                            padSeedLo(bucket_id, seed), image + 8,
                            plain + 8, phys - 8);
}

void
BucketCodec::cryptRange(u64 pad_hi, u64 pad_lo, const u8* image, u64 off,
                        u64 len, u8* out) const
{
    // The encrypted region starts at image offset 8 and consumes the pad
    // stream from chunk 0, so byte `off` sits at stream position off - 8.
    // Walk whole 16-byte pad chunks, XORing only the overlapped bytes;
    // a sub-range read touches ~5 chunks, so per-chunk pad() calls cost
    // nothing next to the DRAM transfer they model.
    FRORAM_ASSERT(off >= 8, "range enters the plaintext seed field");
    u64 pos = off - 8; // position within the pad stream
    u8 pad[16];
    while (len != 0) {
        const u64 chunk = pos / 16;
        const u64 within = pos % 16;
        const u64 take = std::min<u64>(16 - within, len);
        cipher_->pad(pad_hi, pad_lo, static_cast<u32>(chunk), pad);
        for (u64 i = 0; i < take; ++i)
            out[i] = image[8 + pos + i] ^ pad[within + i];
        out += take;
        pos += take;
        len -= take;
    }
}

void
BucketCodec::decryptHeaderInto(u64 bucket_id, const u8* image,
                               u8* plain) const
{
    const u64 seed = loadLe(image, 8);
    if (plain != image)
        std::memcpy(plain, image, 8);
    // The header trails the seed field directly, so its pad chunks align
    // with the bulk path: one prefix decrypt, no repositioning needed.
    cipher_->xorCryptBulkTo(padSeedHi(bucket_id, seed),
                            padSeedLo(bucket_id, seed), image + 8,
                            plain + 8, params_.bucketHeaderBytes() - 8);
}

void
BucketCodec::decryptSlotPayloadInto(u64 bucket_id, const u8* image, u32 s,
                                    u8* out) const
{
    FRORAM_ASSERT(s < slots_, "slot out of range");
    const u64 seed = loadLe(image, 8);
    const u64 stored = params_.storedBlockBytes();
    const u64 off = payloadBase_ + u64{s} * stored;
    cryptRange(padSeedHi(bucket_id, seed), padSeedLo(bucket_id, seed),
               image, off, stored, out);
}

} // namespace froram
