/**
 * @file
 * ORAM tree Backend (Sections 3.1 and 4.2.2).
 *
 * The Backend owns the stash and the untrusted tree storage, and services
 * four operations on behalf of a Frontend: Read, Write, ReadRmv and
 * Append. *How* the tree is touched per access — whole-path
 * read-and-evict (Path ORAM) or one-block-per-bucket online reads with
 * scheduled evictions (Ring ORAM) — is delegated to a pluggable
 * BucketScheme (bucket_scheme.hpp); the Backend provides the shared
 * stage pipeline underneath: issueFetch -> path fetch/decrypt ->
 * stash/op logic -> encrypt/writeback, the gather/prefetch storage layer
 * and the one-kernel spans crypto.
 *
 * The Backend is deliberately Frontend-agnostic: the PLB, compressed
 * PosMap and PMMAC (the paper's contributions) all sit in front of this
 * unmodified interface, exactly as the paper requires ("requires no change
 * to the ORAM Backend").
 */
#ifndef FRORAM_ORAM_BACKEND_HPP
#define FRORAM_ORAM_BACKEND_HPP

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mem/storage_backend.hpp"
#include "mem/tree_layout.hpp"
#include "oram/params.hpp"
#include "oram/stash.hpp"
#include "oram/tree_storage.hpp"
#include "oram/types.hpp"
#include "util/stats.hpp"

namespace froram {

class BucketScheme;

/** Result of one Backend access. */
struct BackendResult {
    bool found = false;     ///< block was present (false => cold miss)
    Block block;            ///< for Read/ReadRmv: the block of interest
    u64 dramPs = 0;         ///< DRAM time consumed by this access
    u64 bytesMoved = 0;     ///< tree bytes moved (reads + writebacks)
};

/** Construction-time knobs for a Backend. */
struct BackendConfig {
    OramParams params;
    /** Tree id reported in the adversary trace. */
    u32 treeId = 0;
    /** Emit per-access adversary trace events. */
    TraceSink traceSink;
    /** Called with the leaf before each path read (integrity verify). */
    std::function<void(Leaf)> beforePathRead;
    /** Called with the leaf after each path write (integrity update). */
    std::function<void(Leaf)> afterPathWrite;
    /** Seed for scheme-private randomness (Ring's dummy-slot draws and
     *  eviction offsets); Path consumes no randomness here. */
    u64 schemeSeed = 0x5eed;
};

/** Hardware ORAM Backend over one ORAM tree. */
class OramBackend {
  public:
    /**
     * @param config geometry + tracing
     * @param storage untrusted bucket store (owned)
     * @param layout bucket -> physical address map (owned; may be null
     *        when no timing is attached)
     * @param mem shared storage medium pricing path accesses (not owned;
     *        may be null for purely functional trees)
     */
    OramBackend(const BackendConfig& config,
                std::unique_ptr<TreeStorage> storage,
                std::unique_ptr<TreeLayout> layout, StorageBackend* mem);
    ~OramBackend();

    /**
     * Hook applied to the block of interest between Step 4 (update) and
     * Step 5 (eviction) of the access. The Frontend uses it to verify
     * the old payload (PMMAC) and to install new data + a fresh MAC tag
     * while the block is still guaranteed to be in the stash.
     * @param block the stashed block (mutable)
     * @param found false if this access cold-created the block
     */
    using BlockTransform = std::function<void(Block& block, bool found)>;

    /**
     * Service one access (Section 3.1.1 steps 2-5).
     *
     * @param op Read, Write or ReadRmv
     * @param addr block of interest
     * @param leaf current leaf label for the block (from the Frontend)
     * @param new_leaf fresh label to remap the block to (ignored for
     *        ReadRmv: removed blocks are relabelled by the Frontend)
     * @param write_data payload for Write (empty keeps old payload size)
     * @param transform optional Step-4 hook (Read/Write only)
     */
    BackendResult access(Op op, Addr addr, Leaf leaf, Leaf new_leaf,
                         const std::vector<u8>* write_data = nullptr,
                         const BlockTransform& transform = nullptr);

    /**
     * access() into a caller-owned result. Reusing one BackendResult
     * across calls makes the steady-state access allocation-free (the
     * result block's payload buffer is assigned into, never replaced).
     */
    void accessInto(BackendResult& res, Op op, Addr addr, Leaf leaf,
                    Leaf new_leaf,
                    const std::vector<u8>* write_data = nullptr,
                    const BlockTransform& transform = nullptr);

    /**
     * Append a block to the stash without a tree access (Section 4.2.2).
     * The block must not currently exist anywhere in this ORAM.
     */
    void append(Block block);

    /**
     * Advisory readahead for the path a future access to `leaf` will
     * traverse (storage-level prefetch of its gather runs). Purely a
     * hint: it never changes ORAM state, stored bytes, the trace or the
     * timing plane, so a caller may prefetch a *stale* leaf guess for
     * request i+1 while request i computes — that overlap is the
     * software pipeline of the batched access engine.
     */
    void
    prefetchPath(Leaf leaf)
    {
        if (pathIO_)
            storage_->prefetchPath(leaf);
    }

    /**
     * True when prefetchPath() can actually reach a prefetchable
     * medium. Frontends bail out of their prefetchHint() computation
     * (PLB peek, PRF leaf derivation) on this, so batched access over
     * always-resident backends pays nothing for the hint plumbing.
     */
    bool
    prefetchUseful() const
    {
        return pathIO_ && mem_ != nullptr && mem_->prefetchable();
    }

    /** Blocks currently in the stash. */
    const Stash& stash() const { return stash_; }

    const OramParams& params() const { return config_.params; }
    const StatSet& stats() const { return stats_; }
    StatSet& stats() { return stats_; }

    /** Untrusted storage, exposed for adversary harnesses. */
    TreeStorage& storage() { return *storage_; }

    /** The bucket scheme driving this tree's access discipline. */
    const BucketScheme& scheme() const { return *scheme_; }
    BucketScheme& scheme() { return *scheme_; }

    /**
     * Direct stash/tree scan for invariant checking in tests: returns the
     * (level, bucket) holding a *live* copy of `addr` (dead Ring slots
     * are skipped), or nullopt if it is in the stash or absent.
     * O(tree) -- test use only.
     */
    std::optional<BucketCoord> locateInTree(Addr addr);

    /** @name Checkpoint/restore (stash + tree-storage trusted state +
     *  scheme state) @{ */
    void saveState(CheckpointWriter& w) const;
    void restoreState(CheckpointReader& r);
    /** @} */

    /** Heap index of a bucket coordinate. */
    static u64
    heapIndex(BucketCoord b)
    {
        return ((u64{1} << b.level) - 1) + b.index;
    }

  private:
    friend class PathBucketScheme;
    friend class RingBucketScheme;

    /** @name Shared access-pipeline stages
     *
     * One access runs issueFetch -> scheme read discipline -> the op
     * logic in accessInto -> scheme eviction/writeback. The schemes
     * drive their storage traffic through these shared stages (whole-
     * path gather fetch + one-kernel crypto + timing), so the batched
     * engine's overlap (prefetch of request i+1 under request i's
     * compute) works identically for every scheme.
     * @{ */

    /** Stage 1: integrity hook + leaf bound check. */
    void issueFetch(Leaf leaf);

    /**
     * Fetch and decrypt the path to `leaf` (one gather + one cipher
     * kernel on path-IO storage) and move blocks into the stash.
     * `live` is an optional per-level slot-liveness mask ((levels+1)
     * words; null = all slots live): dead slots — Ring slots already
     * consumed by online reads — are not stashed.
     */
    void fetchPathToStash(Leaf leaf, const u64* live);

    /**
     * Serialize, encrypt (one cipher kernel on path-IO storage) and
     * store all levels+1 buckets of the path from `slots`:
     * (levels+1) * slotsPerBucket level-major block pointers,
     * null = dummy.
     */
    void writebackPath(Leaf leaf, const Block* const* slots);
    /** @} */

    /** Storage-medium time for one whole-path traversal's bursts. */
    u64 pathDramTime(Leaf leaf, bool is_write);

    /** True when storage supports the raw (allocation-free) bucket IO. */
    bool rawPath() const { return pathPlain_.size() != 0; }

    BackendConfig config_;
    std::unique_ptr<TreeStorage> storage_;
    std::unique_ptr<TreeLayout> layout_;
    StorageBackend* mem_;
    Stash stash_;
    StatSet stats_;
    std::unique_ptr<BucketScheme> scheme_;
    bool pathIO_ = false; ///< storage implements whole-path gather IO

    // Hot-path scratch, sized once at construction and reused across
    // accesses so the steady state performs no heap allocation.
    std::vector<u8> pathPlain_;      ///< decrypted path arena (L+1 buckets)
    std::vector<u8> pathPresent_;    ///< per-level present flags
    std::vector<Block*> evictSlots_; ///< (L+1)*z eviction slot pointers
    std::vector<DramRequest> dramReqs_; ///< pathDramTime request batch
    std::vector<PathRun> timingRuns_;   ///< pathDramTime gather runs
    std::vector<u64> timingOff_;        ///< pathRuns offset scratch
    std::vector<ByteSpan> timingSpans_; ///< streamBatch request batch
};

/** Legacy name from before the bucket-scheme seam; the Path discipline
 *  now lives in PathBucketScheme, selected via OramParams. */
using PathOramBackend = OramBackend;

} // namespace froram

#endif // FRORAM_ORAM_BACKEND_HPP
