/**
 * @file
 * Bucket (de)serialization with probabilistic encryption.
 *
 * Wire format of one physical bucket (bucketPhysBytes total):
 *
 *   [0..8)   encryption seed used for this bucket image (plaintext)
 *   [8..)    encrypted region:
 *              per slot: address (addrBytes) | leaf (leafBytes)
 *              then:     per slot payload (storedBlockBytes)
 *            zero padding up to the burst-aligned size
 *
 * Two seed schemes (Section 6.4):
 *  - GlobalCounter (default, secure): pads come from a monotonically
 *    increasing controller register; the stored seed is only an input to
 *    decryption and replaying it cannot force pad reuse on future writes.
 *  - PerBucket ([26], insecure vs active adversaries): the stored seed is
 *    incremented and reused for re-encryption, so a rewound seed makes the
 *    controller reuse a one-time pad. Kept to demonstrate the attack.
 */
#ifndef FRORAM_ORAM_BUCKET_CODEC_HPP
#define FRORAM_ORAM_BUCKET_CODEC_HPP

#include <vector>

#include "crypto/stream_cipher.hpp"
#include "oram/params.hpp"
#include "oram/types.hpp"

namespace froram {

/** Seed management policy for bucket encryption. */
enum class SeedScheme { GlobalCounter, PerBucket };

/**
 * Serializes, encrypts, decrypts and deserializes buckets.
 *
 * One API surface: the raw span layer (nextSeed/encodeInto/decryptInto +
 * slot accessors) operating directly on caller-provided byte buffers —
 * the allocation-free hot path used by the backend's path arena. (The
 * PR 2-era Bucket/vector wrapper layer is gone; callers that need a
 * decoded view parse a decrypted image through the slot accessors.)
 *
 * Buckets carry slotsPerBucket() slots: Z for the Path scheme, Z + S for
 * Ring (whose S dummy slots exist on the wire). The partial-read helpers
 * (decryptHeaderInto/decryptSlotPayloadInto) serve Ring's metadata-then-
 * one-block online read without decrypting whole buckets.
 */
class BucketCodec {
  public:
    /**
     * @param params tree geometry
     * @param cipher pad generator (not owned; must outlive the codec)
     * @param scheme seed management policy
     * @param domain pad-domain separator for codecs sharing one cipher
     *        (e.g. the tree index in a recursive hierarchy); two codecs
     *        with different domains never reuse a pad even at equal seed
     *        register values
     */
    BucketCodec(const OramParams& params, const StreamCipher* cipher,
                SeedScheme scheme = SeedScheme::GlobalCounter,
                u64 domain = 0);

    /** @name Raw span layer (allocation-free hot path)
     *  @{ */

    /** Physical bytes of one bucket image (= plaintext arena bytes). */
    u64 physBytes() const { return params_.bucketPhysBytes(); }

    /** Serialized slots per bucket (Z, or Z + S under Ring). */
    u32 slots() const { return slots_; }

    /** Bytes of the bucket header (seed field + slot headers). */
    u64 headerBytes() const { return params_.bucketHeaderBytes(); }

    /**
     * Advance the seed state and return the seed the next image of a
     * bucket will be encrypted under. GlobalCounter bumps the controller
     * register; PerBucket increments `prev_seed` (the seed read from the
     * bucket's previous image, 0 if never written).
     */
    u64
    nextSeed(u64 prev_seed)
    {
        return scheme_ == SeedScheme::GlobalCounter ? globalSeed_++
                                                    : prev_seed + 1;
    }

    /**
     * Serialize slots() slot pointers (null = dummy slot) and encrypt
     * under `seed` (from nextSeed).
     *
     * @param stage trusted plaintext staging buffer of physBytes(); the
     *        serialized plaintext never touches `dst` directly, so `dst`
     *        may live in untrusted backend memory. stage == dst is
     *        allowed when dst itself is trusted scratch.
     * @param dst receives physBytes() of ciphertext
     */
    void encodeInto(u64 bucket_id, u64 seed, const Block* const* slots,
                    u8* stage, u8* dst) const;

    /**
     * Serialization half of encodeInto: write the plaintext image
     * (seed field + slot headers + payloads + zero padding) of slots()
     * slot pointers into `stage` (physBytes()), without encrypting. The
     * whole-path writeback serializes every bucket this way and then
     * encrypts all of them with one xorCryptSpans call.
     */
    void serializeInto(u64 seed, const Block* const* slots,
                       u8* stage) const;

    /**
     * Decrypt a stored image into `plain` (both physBytes()); the seed
     * field is copied verbatim. image == plain decrypts in place.
     */
    void decryptInto(u64 bucket_id, const u8* image, u8* plain) const;

    /** @name Partial reads (Ring ORAM's online access)
     *
     * Ring reads bucket *metadata* (the header's slot addresses) for
     * every path bucket but the payload of only ONE slot, so decrypting
     * whole buckets would forfeit the scheme's bandwidth advantage.
     * These decrypt a sub-range of the image against the same pad
     * stream (the pad is positioned, not restarted, at the offset).
     * @{ */

    /**
     * Decrypt only the bucket header: `plain` receives headerBytes()
     * (seed field verbatim + decrypted slot headers), parseable with
     * slotAddr/slotLeaf.
     */
    void decryptHeaderInto(u64 bucket_id, const u8* image,
                           u8* plain) const;

    /**
     * Decrypt the payload of slot `s` only: `out` receives
     * storedBlockBytes. `image` is the full stored bucket image.
     */
    void decryptSlotPayloadInto(u64 bucket_id, const u8* image, u32 s,
                                u8* out) const;
    /** @} */

    /**
     * Cipher seed pair for a bucket image stored under `stored_seed`
     * (the plaintext seed field). Callers batching several buckets into
     * one xorCryptSpans call build each span's (seedHi, seedLo) here;
     * encodeInto/decryptInto use the same mapping internally.
     */
    u64 padSeedHi(u64 bucket_id, u64 stored_seed) const;
    u64 padSeedLo(u64 bucket_id, u64 stored_seed) const;

    /** Pad generator backing this codec (for bulk span crypto). */
    const StreamCipher* cipher() const { return cipher_; }

    /** Slot address in a decrypted image; kDummyAddr for dummy slots. */
    Addr
    slotAddr(const u8* plain, u32 s) const
    {
        const u64 a =
            loadLe(plain + 8 + s * (addrBytes_ + leafBytes_), addrBytes_);
        return a == addrMask_ ? kDummyAddr : a;
    }

    /** Slot leaf label in a decrypted image (0 for dummy slots). */
    Leaf
    slotLeaf(const u8* plain, u32 s) const
    {
        return loadLe(plain + 8 + s * (addrBytes_ + leafBytes_) +
                          addrBytes_,
                      leafBytes_);
    }

    /** Slot payload bytes (storedBlockBytes) in a decrypted image. */
    const u8*
    slotPayload(const u8* plain, u32 s) const
    {
        return plain + payloadBase_ + s * params_.storedBlockBytes();
    }

    /** Byte offset of slot `s`'s payload within a bucket image. */
    u64
    slotPayloadOffset(u32 s) const
    {
        return payloadBase_ + s * params_.storedBlockBytes();
    }
    /** @} */

    /** Value of the monotonic global seed register. */
    u64 globalSeed() const { return globalSeed_; }

    /**
     * Restore the global seed register, e.g. from a persisted tree
     * region. Never rewind a live register: pad reuse breaks secrecy.
     */
    void
    setGlobalSeed(u64 seed)
    {
        FRORAM_ASSERT(seed >= globalSeed_,
                      "rewinding the seed register would reuse pads");
        globalSeed_ = seed;
    }

    /**
     * Load the register from a restored snapshot, rewinding if needed.
     * Only sound when the data plane is simultaneously pinned to the
     * same point (whole-image rewrite or divergence anchor): every pad
     * at or past `seed` then re-encrypts the deterministic replay of
     * the timeline that first drew it — the same plaintext under the
     * same pad, never a second plaintext.
     */
    void restoreGlobalSeed(u64 seed) { globalSeed_ = seed; }

    const OramParams& params() const { return params_; }
    SeedScheme scheme() const { return scheme_; }
    u64 domain() const { return domain_; }

  private:
    /** XOR a positioned pad over image[off, off+len) into out (off is an
     *  absolute image offset within the encrypted region, i.e. >= 8). */
    void cryptRange(u64 pad_hi, u64 pad_lo, const u8* image, u64 off,
                    u64 len, u8* out) const;

    OramParams params_;
    const StreamCipher* cipher_;
    SeedScheme scheme_;
    u64 domain_;
    u64 globalSeed_ = 1; // controller register (GlobalCounter scheme)
    u32 slots_;       // serialized slots per bucket (Z or Z + S)
    u64 addrBytes_;
    u64 leafBytes_;
    u64 addrMask_;    // all-ones in addrBytes_: the serialized dummy addr
    u64 payloadBase_; // offset of the first slot payload in an image
};

} // namespace froram

#endif // FRORAM_ORAM_BUCKET_CODEC_HPP
