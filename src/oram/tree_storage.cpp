#include "oram/tree_storage.hpp"

#include <algorithm>

#include "crypto/sha3.hpp"

namespace froram {

BackedTreeStorage::BackedTreeStorage(const OramParams& params,
                                     const StreamCipher* cipher,
                                     SeedScheme scheme,
                                     StorageBackend& backend, u64 domain)
    : CodecTreeStorage(params, cipher, scheme, domain), backend_(backend),
      levels_(params.levels), numBuckets_(params.numBuckets()),
      slotBytes_(params.bucketPhysBytes()),
      layout_(params.levels, params.bucketPhysBytes(),
              backend.layoutUnitBytes(), /*pack_tail=*/true)
{
    // Tail packing makes the subtree placement occupy exactly one slot
    // per bucket, so the region formula stays numBuckets * slotBytes.
    FRORAM_ASSERT(layout_.footprintBytes() == numBuckets_ * slotBytes_,
                  "tail-packed layout must fit the bucket slots exactly");
    base_ = backend_.allocRegion(regionBytes());
    layout_.setBaseAddress(base_ + kHeaderBytes + bitmapBytes());
    bitmap_.assign(bitmapBytes(), 0);
    stage_.assign(slotBytes_, 0);

    const u64 path_levels = u64{levels_} + 1;
    runs_.resize(path_levels);
    levelOff_.resize(path_levels);
    spans_.resize(path_levels);
    views_.resize(path_levels);
    levelDst_.resize(path_levels);
    levelAddr_.resize(path_levels);
    crypt_.resize(path_levels);
    pathStage_.assign(path_levels * slotBytes_, 0);

    // Key/scheme fingerprint: a one-way digest of the cipher's pad for a
    // reserved seed pair. A resume under a different key or seed scheme
    // would XOR stored ciphertext with the wrong pads and silently hand
    // back garbage buckets; the fingerprint turns that into a loud
    // error. Hashing (rather than storing keystream bytes verbatim on
    // the untrusted medium) keeps the pad unusable for forgery.
    u8 pad[16] = {0};
    cipher->xorCrypt(kMagic, domain, pad, 16);
    const auto digest = Sha3_224::hash(pad, 16);
    u8 fingerprint[8];
    std::copy(digest.begin(), digest.begin() + 8, fingerprint);
    fingerprint_ = loadLe(fingerprint);

    u8 header[kHeaderBytes] = {0};
    backend_.read(base_, header, kHeaderBytes);
    if (loadLe(header) == kMagic) {
        // A previous run left a tree here: anything that would decode it
        // wrong (or silently clobber it) must fail loudly instead.
        resumed_ = true;
        reattach();
        return;
    }
    if (loadLe(header) == kMagicV1)
        fatal("persisted ORAM tree at region base ", base_,
              " uses the heap-order FRORAMT1 placement; this build "
              "places buckets by subtree (FRORAMT2) and would misread "
              "it — reset the backend to reinitialize");

    // Fresh region: the bitmap area may hold garbage from an unrelated
    // file, so zero it explicitly before writing the header.
    backend_.write(base_ + kHeaderBytes, bitmap_.data(), bitmapBytes());
    storeLe(header, kMagic);
    storeLe(header + 8, numBuckets_);
    storeLe(header + 16, slotBytes_);
    storeLe(header + 24, codec_.globalSeed());
    storeLe(header + 32, fingerprint_);
    header[40] = static_cast<u8>(scheme);
    for (u64 i = 41; i < kHeaderBytes; ++i)
        header[i] = 0;
    backend_.write(base_, header, kHeaderBytes);
}

void
BackedTreeStorage::reattach()
{
    u8 header[kHeaderBytes] = {0};
    backend_.read(base_, header, kHeaderBytes);
    if (loadLe(header) != kMagic)
        fatal("no persisted ORAM tree at region base ", base_,
              "; the backend region was never initialized");
    if (loadLe(header + 8) != numBuckets_ ||
        loadLe(header + 16) != slotBytes_)
        fatal("persisted ORAM tree has different geometry (",
              loadLe(header + 8), " buckets of ", loadLe(header + 16),
              " bytes vs ", numBuckets_, " of ", slotBytes_,
              "); reset the backend to reinitialize");
    if (loadLe(header + 32) != fingerprint_ ||
        header[40] != static_cast<u8>(codec_.scheme()))
        fatal("persisted ORAM tree was written under a different "
              "cipher key or seed scheme; refusing to decode garbage "
              "(reset the backend to reinitialize)");
    // Reload the bitmap and seed register so previously written buckets
    // decode again and re-encryption never reuses a one-time pad. The
    // in-memory register is never rewound: a restored data plane whose
    // stored register lags the live one keeps the larger value (stored
    // seeds inside bucket images still decrypt; only *new* pads draw
    // from the register).
    backend_.read(base_ + kHeaderBytes, bitmap_.data(), bitmapBytes());
    touched_ = 0;
    for (const u8 byte : bitmap_)
        touched_ += popcount64(byte);
    const u64 stored_seed = loadLe(header + 24);
    if (codec_.scheme() == SeedScheme::GlobalCounter &&
        stored_seed > codec_.globalSeed())
        codec_.setGlobalSeed(stored_seed);
}

void
BackedTreeStorage::saveTrustedState(CheckpointWriter& w) const
{
    w.putU64(base_);
    w.putU64(numBuckets_);
    w.putU64(slotBytes_);
    w.putU8(static_cast<u8>(codec_.scheme()));
    w.putU64(codec_.globalSeed());
    w.putU64(touched_);
}

void
BackedTreeStorage::restoreTrustedState(CheckpointReader& r)
{
    if (r.getU64() != base_ || r.getU64() != numBuckets_ ||
        r.getU64() != slotBytes_)
        throw CheckpointError(
            "tree region layout differs from the checkpointed one");
    if (r.getU8() != static_cast<u8>(codec_.scheme()))
        throw CheckpointError(
            "tree seed scheme differs from the checkpointed one");
    const u64 saved_seed = r.getU64();
    const u64 saved_touched = r.getU64();
    reattach();
    // Divergence anchor: under GlobalCounter every bucket write advances
    // the persisted register, so register equality pins the region to
    // the exact write the checkpoint was taken after. A region that kept
    // running (or went backwards) after the snapshot must not be married
    // to the snapshot's stale stash/PosMap/integrity counters.
    if (codec_.scheme() == SeedScheme::GlobalCounter &&
        backend_.persistent()) {
        u8 buf[8];
        backend_.read(base_ + 24, buf, 8);
        const u64 region_seed = loadLe(buf, 8);
        if (region_seed != saved_seed)
            throw CheckpointError(
                "backend region diverged from the checkpoint (region "
                "seed register " + std::to_string(region_seed) +
                ", checkpoint " + std::to_string(saved_seed) +
                "); restore a matching region or take a full snapshot");
    }
    if (touched_ != saved_touched)
        throw CheckpointError(
            "backend region diverged from the checkpoint (" +
            std::to_string(touched_) + " buckets written vs " +
            std::to_string(saved_touched) + " at checkpoint time)");
    // Adopt the checkpoint's register EXACTLY — including rewinding
    // one that resumed from a further-ahead region header. Every path
    // that reaches here pins region register == checkpoint register
    // (the divergence anchor above for trusted-only restores, the
    // whole-image rewrite for full ones), so the next pad drawn
    // continues the restored timeline. Keeping a larger resumed value
    // instead would fork the re-encryption stream and break
    // bit-identical journal replay after a crash.
    if (codec_.scheme() == SeedScheme::GlobalCounter)
        codec_.restoreGlobalSeed(saved_seed);
}

u64
BackedTreeStorage::regionBytes() const
{
    return kHeaderBytes + bitmapBytes() + numBuckets_ * slotBytes_;
}

u64
BackedTreeStorage::slotAddr(u64 id) const
{
    FRORAM_ASSERT(id < numBuckets_, "bucket id out of range");
    return layout_.addressOf(coordOf(id));
}

bool
BackedTreeStorage::hasImage(u64 id) const
{
    FRORAM_ASSERT(id < numBuckets_, "bucket id out of range");
    return (bitmap_[id / 8] >> (id % 8)) & 1;
}

std::vector<u8>
BackedTreeStorage::rawImage(u64 id) const
{
    if (!hasImage(id))
        return {};
    std::vector<u8> image(slotBytes_);
    backend_.read(slotAddr(id), image.data(), image.size());
    return image;
}

void
BackedTreeStorage::replaceImage(u64 id, std::vector<u8> image)
{
    FRORAM_ASSERT(image.size() == slotBytes_,
                  "bucket image must fill its fixed-size slot");
    backend_.write(slotAddr(id), image.data(), image.size());
    markWritten(id);
}

void
BackedTreeStorage::writeBucket(u64 id, const Bucket& bucket)
{
    FRORAM_ASSERT(bucket.slots.size() == codec_.slots(),
                  "bucket arity");
    std::vector<const Block*> slots(bucket.slots.size());
    for (u32 s = 0; s < slots.size(); ++s)
        slots[s] = &bucket.slots[s];
    writeBucketRaw(id, slots.data(), static_cast<u32>(slots.size()));
}

bool
BackedTreeStorage::readBucketRaw(u64 id, u8* plain)
{
    if (!hasImage(id))
        return false;
    const u64 addr = slotAddr(id);
    if (const u8* image = backend_.view(addr, slotBytes_)) {
        // Decrypt straight out of backend memory into the arena: one
        // pad-XOR pass, no intermediate ciphertext copy.
        codec_.decryptInto(id, image, plain);
    } else {
        backend_.read(addr, plain, slotBytes_);
        codec_.decryptInto(id, plain, plain);
    }
    return true;
}

bool
BackedTreeStorage::readBucketHeaderRaw(u64 id, u8* plain)
{
    if (!hasImage(id))
        return false;
    const u64 addr = slotAddr(id);
    const u64 header = codec_.headerBytes();
    if (const u8* image = backend_.view(addr, header)) {
        codec_.decryptHeaderInto(id, image, plain);
    } else {
        backend_.read(addr, plain, header);
        codec_.decryptHeaderInto(id, plain, plain);
    }
    return true;
}

bool
BackedTreeStorage::readSlotPayloadRaw(u64 id, u32 slot, u8* out)
{
    if (!hasImage(id))
        return false;
    const u64 addr = slotAddr(id);
    // The positioned decrypt wants the seed field and the slot's bytes;
    // a full-bucket view serves both without a copy. Viewless backends
    // read only those two small ranges into a sparse image window
    // instead of transferring the whole bucket.
    if (const u8* image = backend_.view(addr, slotBytes_)) {
        codec_.decryptSlotPayloadInto(id, image, slot, out);
        return true;
    }
    const u64 stored = codec_.params().storedBlockBytes();
    const u64 payload_off = codec_.slotPayloadOffset(slot);
    std::vector<u8> image(payload_off + stored);
    backend_.read(addr, image.data(), 8); // seed field
    backend_.read(addr + payload_off, image.data() + payload_off, stored);
    codec_.decryptSlotPayloadInto(id, image.data(), slot, out);
    return true;
}

void
BackedTreeStorage::writeBucketRaw(u64 id, const Block* const* slots, u32 z)
{
    FRORAM_ASSERT(z == codec_.slots(), "bucket arity");
    const u64 addr = slotAddr(id);

    // Only the PerBucket scheme consults the previous image, and it only
    // needs the 8-byte seed field — never fetch the full bucket.
    u64 prev_seed = 0;
    if (codec_.scheme() == SeedScheme::PerBucket && hasImage(id)) {
        u8 buf[8];
        backend_.read(addr, buf, 8);
        prev_seed = loadLe(buf, 8);
    }
    const u64 seed = codec_.nextSeed(prev_seed);

    // Persist the advanced seed register *before* the image it encrypted:
    // if the *process* dies between the two writes, a resume sees a
    // register ahead of every stored image and never re-issues a used pad
    // (the reverse order could rewind the register past an image already
    // stored). Power-loss ordering would additionally need an msync
    // barrier between the two mmap pages; until then, resume after a
    // kernel crash should reset the backend.
    persistSeed();

    // Serialize into the trusted staging buffer, then stream ciphertext
    // into the backend in place when it exposes a contiguous view (the
    // plaintext never touches untrusted memory either way).
    if (u8* dst = backend_.view(addr, slotBytes_)) {
        codec_.encodeInto(id, seed, slots, stage_.data(), dst);
    } else {
        codec_.encodeInto(id, seed, slots, stage_.data(), stage_.data());
        backend_.write(addr, stage_.data(), slotBytes_);
    }
    markWritten(id);
}

void
BackedTreeStorage::prefetchPath(u64 leaf)
{
    if (!backend_.prefetchable())
        return; // always-resident medium: skip the run decomposition
    const u32 nruns = layout_.pathRuns(leaf, runs_.data(),
                                       levelOff_.data());
    for (u32 i = 0; i < nruns; ++i)
        backend_.prefetch(runs_[i].addr, runs_[i].bytes);
}

void
BackedTreeStorage::readPathRaw(u64 leaf, u8* plain, u8* present)
{
    const u64 phys = slotBytes_;
    const u32 nruns = layout_.pathRuns(leaf, runs_.data(),
                                       levelOff_.data());
    for (u32 i = 0; i < nruns; ++i)
        spans_[i] = {runs_[i].addr, runs_[i].bytes};
    backend_.gatherView(spans_.data(), nruns, views_.data());

    // Stage one: resolve every present bucket to a (src, dst) pair and
    // its pad seeds. Buckets inside a direct view decrypt straight out
    // of backend memory; a viewless run's buckets are copied into the
    // arena first and decrypt in place.
    u32 nspans = 0;
    for (u32 i = 0; i < nruns; ++i) {
        const PathRun& run = runs_[i];
        for (u32 r = 0; r < run.numLevels; ++r) {
            const u32 l = run.firstLevel + r;
            const u64 id = pathBucketId(leaf, l);
            if (!hasImage(id)) {
                present[l] = 0;
                continue;
            }
            present[l] = 1;
            u8* dst = plain + u64{l} * phys;
            const u8* src;
            if (views_[i] != nullptr) {
                src = views_[i] + levelOff_[l];
            } else {
                backend_.read(run.addr + levelOff_[l], dst, phys);
                src = dst;
            }
            const u64 seed = loadLe(src, 8);
            if (src != dst)
                std::memcpy(dst, src, 8);
            crypt_[nspans++] = {codec_.padSeedHi(id, seed),
                                codec_.padSeedLo(id, seed), src + 8,
                                dst + 8, phys - 8};
        }
    }

    // Stage two: one cipher kernel for the whole path.
    codec_.cipher()->xorCryptSpans(crypt_.data(), nspans);
}

void
BackedTreeStorage::writePathRaw(u64 leaf, const Block* const* slots, u32 z)
{
    FRORAM_ASSERT(z == codec_.slots(), "bucket arity");
    const u64 phys = slotBytes_;
    const u32 nruns = layout_.pathRuns(leaf, runs_.data(),
                                       levelOff_.data());
    for (u32 i = 0; i < nruns; ++i)
        spans_[i] = {runs_[i].addr, runs_[i].bytes};
    backend_.gatherView(spans_.data(), nruns, views_.data());

    // Stage one: draw every bucket's seed and serialize its plaintext
    // into the path staging arena. Nothing lands on the backend yet
    // (only the PerBucket scheme reads its 8-byte previous seed).
    u32 nspans = 0;
    for (u32 i = 0; i < nruns; ++i) {
        const PathRun& run = runs_[i];
        for (u32 r = 0; r < run.numLevels; ++r) {
            const u32 l = run.firstLevel + r;
            const u64 id = pathBucketId(leaf, l);
            const u64 addr = run.addr + levelOff_[l];
            u64 prev_seed = 0;
            if (codec_.scheme() == SeedScheme::PerBucket &&
                hasImage(id)) {
                // Previous seed straight from the view when one exists;
                // only a viewless run pays a read() for its 8 bytes.
                if (views_[i] != nullptr) {
                    prev_seed = loadLe(views_[i] + levelOff_[l], 8);
                } else {
                    u8 buf[8];
                    backend_.read(addr, buf, 8);
                    prev_seed = loadLe(buf, 8);
                }
            }
            const u64 seed = codec_.nextSeed(prev_seed);
            u8* stage = pathStage_.data() + u64{l} * phys;
            codec_.serializeInto(seed, slots + u64{l} * z, stage);
            u8* dst = views_[i] != nullptr ? views_[i] + levelOff_[l]
                                           : stage;
            levelDst_[l] = dst;
            levelAddr_[l] = addr;
            crypt_[nspans++] = {codec_.padSeedHi(id, seed),
                                codec_.padSeedLo(id, seed), stage + 8,
                                dst + 8, phys - 8};
        }
    }

    // Persist the advanced seed register *before* any image byte lands
    // (same crash-ordering contract as writeBucketRaw, amortized to one
    // register write per path).
    persistSeed();

    // Stage two: plaintext seed fields to their destinations, then one
    // cipher kernel encrypts the whole path in place.
    for (u32 l = 0; l <= levels_; ++l) {
        u8* stage = pathStage_.data() + u64{l} * phys;
        if (levelDst_[l] != stage)
            std::memcpy(levelDst_[l], stage, 8);
    }
    codec_.cipher()->xorCryptSpans(crypt_.data(), nspans);

    // Stage three: viewless runs stream their staged ciphertext out via
    // write(); every bucket is then marked written.
    for (u32 l = 0; l <= levels_; ++l) {
        u8* stage = pathStage_.data() + u64{l} * phys;
        if (levelDst_[l] == stage)
            backend_.write(levelAddr_[l], stage, phys);
        markWritten(pathBucketId(leaf, l));
    }
}

void
BackedTreeStorage::markWritten(u64 id)
{
    if (hasImage(id))
        return;
    bitmap_[id / 8] |= static_cast<u8>(1u << (id % 8));
    ++touched_;
    backend_.write(base_ + kHeaderBytes + id / 8, &bitmap_[id / 8], 1);
}

void
BackedTreeStorage::persistSeed()
{
    // Only GlobalCounter advances the register, and only a persistent
    // backend can ever read it back; PerBucket seeds live in the bucket
    // images themselves.
    if (codec_.scheme() != SeedScheme::GlobalCounter ||
        !backend_.persistent())
        return;
    u8 buf[8];
    storeLe(buf, codec_.globalSeed());
    backend_.write(base_ + 24, buf, 8);
}

std::unique_ptr<TreeStorage>
makeTreeStorage(StorageMode mode, const OramParams& params,
                const StreamCipher* cipher, SeedScheme scheme,
                StorageBackend* backend, u64 domain)
{
    switch (mode) {
      case StorageMode::Encrypted:
        if (cipher == nullptr)
            fatal("Encrypted storage mode requires a cipher");
        if (backend != nullptr)
            return std::make_unique<BackedTreeStorage>(
                params, cipher, scheme, *backend, domain);
        return std::make_unique<EncryptedTreeStorage>(params, cipher,
                                                      scheme, domain);
      case StorageMode::Meta:
        return std::make_unique<MetaTreeStorage>(params);
      case StorageMode::Null:
        return std::make_unique<NullTreeStorage>(params);
    }
    panic("unreachable");
}

} // namespace froram
