/**
 * @file
 * Fundamental ORAM types: addresses, leaves, operations, blocks, and the
 * adversary-visible trace.
 */
#ifndef FRORAM_ORAM_TYPES_HPP
#define FRORAM_ORAM_TYPES_HPP

#include <functional>
#include <vector>

#include "util/common.hpp"

namespace froram {

/** Logical block address (in the unified space: tag i || a_i, Section 4.2.1). */
using Addr = u64;
/** Leaf label in [0, 2^L). */
using Leaf = u64;

/** Reserved address marking an empty (dummy) bucket slot. */
constexpr Addr kDummyAddr = ~Addr{0};
/** Reserved leaf meaning "no leaf assigned". */
constexpr Leaf kNoLeaf = ~Leaf{0};

/**
 * ORAM Backend operations (Sections 3.1.1 and 4.2.2).
 *
 * Read/Write are ordinary data accesses. ReadRmv physically removes the
 * block after forwarding it to the Frontend (PLB refill); Append inserts a
 * previously removed block back into the stash without a tree access (PLB
 * eviction).
 */
enum class Op { Read, Write, ReadRmv, Append };

/** A data or PosMap block as held by the stash / PLB / Frontend. */
struct Block {
    Addr addr = kDummyAddr;
    Leaf leaf = kNoLeaf;      ///< current (uncompressed) leaf assignment
    std::vector<u8> data;     ///< payload; may be empty in metadata-only mode

    bool valid() const { return addr != kDummyAddr; }
};

/** One adversary-visible event emitted by a Backend. */
struct TraceEvent {
    enum class Kind {
        PathRead,       ///< whole-path read (Path) / one-block-per-bucket
                        ///< online read (Ring); leaf = path touched
        PathWrite,      ///< inline path writeback (Path scheme)
        EvictPath,      ///< scheduled reverse-lex eviction (Ring scheme)
        BucketReshuffle ///< early reshuffle; leaf field = bucket heap id
    };
    Kind kind;
    u32 treeId;  ///< which physical ORAM tree (Recursive baseline has many)
    Leaf leaf;   ///< which path (or bucket, for reshuffles) was touched
};

/** Observer of the adversary-visible request sequence. */
using TraceSink = std::function<void(const TraceEvent&)>;

} // namespace froram

#endif // FRORAM_ORAM_TYPES_HPP
