/**
 * @file
 * ORAM tree geometry and derived parameters.
 */
#ifndef FRORAM_ORAM_PARAMS_HPP
#define FRORAM_ORAM_PARAMS_HPP

#include <string>

#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

/**
 * Geometry of one Path ORAM tree.
 *
 * Defaults mirror Table 1 of the paper: 64-byte blocks, Z = 4, and a tree
 * sized so that real blocks occupy 50% of bucket slots (a 4 GB ORAM needs
 * ~8 GB of DRAM).
 */
struct OramParams {
    u64 numBlocks = 0;      ///< N: real data blocks
    u64 blockBytes = 64;    ///< B: payload bytes per block
    u32 z = 4;              ///< Z: block slots per bucket
    u32 levels = 0;         ///< L: tree levels are 0..L inclusive
    u64 macBytes = 0;       ///< extra per-block MAC bytes (PMMAC)
    u64 burstBytes = 64;    ///< DRAM burst size buckets are padded to
    u32 stashCapacity = 200; ///< stash block slots (excl. transient path)

    /** Number of leaves = 2^L. */
    u64 numLeaves() const { return u64{1} << levels; }

    /** Total buckets in the tree. */
    u64 numBuckets() const { return (u64{1} << (levels + 1)) - 1; }

    /** Bits to encode any unified/logical block address. */
    u32 addrBits() const { return log2Ceil(numBlocks) + 1; }

    /** Stored payload bytes per slot (block + optional MAC). */
    u64 storedBlockBytes() const { return blockBytes + macBytes; }

    /** Serialized per-slot header bytes (address + leaf). */
    u64
    slotHeaderBytes() const
    {
        const u64 addr_bytes = divCeil(addrBits(), 8);
        const u64 leaf_bytes = divCeil(levels == 0 ? 1 : levels, 8);
        return addr_bytes + leaf_bytes;
    }

    /** Bucket header bytes: encryption seed + slot headers. */
    u64
    bucketHeaderBytes() const
    {
        return 8 + z * slotHeaderBytes();
    }

    /** Unpadded serialized bucket size. */
    u64
    bucketRawBytes() const
    {
        return bucketHeaderBytes() + z * storedBlockBytes();
    }

    /** Physical bucket size padded to whole DRAM bursts. */
    u64
    bucketPhysBytes() const
    {
        return roundUp(bucketRawBytes(), burstBytes);
    }

    /** Bytes moved by one path read (or one path write). */
    u64
    pathBytes() const
    {
        return static_cast<u64>(levels + 1) * bucketPhysBytes();
    }

    /** Total external-memory footprint. */
    u64
    footprintBytes() const
    {
        return numBuckets() * bucketPhysBytes();
    }

    /** Logical data capacity in bytes. */
    u64
    capacityBytes() const
    {
        return numBlocks * blockBytes;
    }

    /** Validate invariants; throws FatalError on bad configurations. */
    void
    validate() const
    {
        if (numBlocks == 0)
            fatal("ORAM must hold at least one block");
        if (z == 0)
            fatal("bucket slots Z must be nonzero");
        if (levels == 0 || levels > 48)
            fatal("ORAM levels out of range: ", levels);
        if (blockBytes == 0)
            fatal("block size must be nonzero");
    }

    /**
     * Standard sizing rule: 2^L leaves such that real blocks fill half of
     * all bucket slots, i.e. Z * 2^(L+1) ~= 2N (Section 7.1.1's 50% DRAM
     * utilization).
     */
    static OramParams
    forCapacity(u64 capacity_bytes, u64 block_bytes = 64, u32 z = 4)
    {
        OramParams p;
        p.blockBytes = block_bytes;
        p.z = z;
        p.numBlocks = capacity_bytes / block_bytes;
        FRORAM_ASSERT(p.numBlocks >= 2, "capacity too small");
        const u32 lg_n = log2Ceil(p.numBlocks);
        const u32 lg_z = log2Floor(z);
        p.levels = lg_n > lg_z ? lg_n - lg_z : 1;
        return p;
    }

    std::string toString() const;
};

} // namespace froram

#endif // FRORAM_ORAM_PARAMS_HPP
