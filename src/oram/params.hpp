/**
 * @file
 * ORAM tree geometry and derived parameters.
 */
#ifndef FRORAM_ORAM_PARAMS_HPP
#define FRORAM_ORAM_PARAMS_HPP

#include <string>

#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

/**
 * Bucket-level access discipline of one ORAM tree (the scheme seam).
 *
 *  - Path: read-path-and-evict (Stefanov et al.). Every access reads all
 *    Z blocks of every bucket on the path and writes the path back.
 *  - Ring: Ring ORAM (Ren et al., "Constants Count"). Buckets carry S
 *    extra dummy slots; an access reads ONE block per bucket (the block
 *    of interest or a fresh dummy) and evictions run every A accesses on
 *    deterministic reverse-lexicographic paths.
 */
enum class BucketSchemeKind : u8 { Path, Ring };

const char* toString(BucketSchemeKind kind);
BucketSchemeKind bucketSchemeFromName(const std::string& name);

/**
 * Geometry of one ORAM tree.
 *
 * Defaults mirror Table 1 of the paper: 64-byte blocks, Z = 4, and a tree
 * sized so that real blocks occupy 50% of bucket slots (a 4 GB ORAM needs
 * ~8 GB of DRAM).
 */
struct OramParams {
    u64 numBlocks = 0;      ///< N: real data blocks
    u64 blockBytes = 64;    ///< B: payload bytes per block
    u32 z = 4;              ///< Z: real-block slots per bucket
    u32 levels = 0;         ///< L: tree levels are 0..L inclusive
    u64 macBytes = 0;       ///< extra per-block MAC bytes (PMMAC)
    u64 burstBytes = 64;    ///< DRAM burst size buckets are padded to
    u32 stashCapacity = 200; ///< stash block slots (excl. transient path)
    /** Bucket-level access discipline served by the tree engine. */
    BucketSchemeKind bucketScheme = BucketSchemeKind::Path;
    u32 ringS = 0; ///< Ring: extra dummy slots per bucket (0 = derive)
    u32 ringA = 0; ///< Ring: accesses per scheduled eviction (0 = derive)

    /** Number of leaves = 2^L. */
    u64 numLeaves() const { return u64{1} << levels; }

    /**
     * Physical slots per bucket: Z for Path, Z + S for Ring (the dummy
     * slots exist on the wire so the one-block online read has fresh
     * dummies to draw from). All serialized-size math below uses this.
     */
    u32
    slotsPerBucket() const
    {
        return bucketScheme == BucketSchemeKind::Ring ? z + ringS : z;
    }

    /**
     * Fill derived Ring knobs left at 0: S = Z + 2 dummies (enough that
     * early reshuffles stay rare at A accesses per eviction) and
     * A = max(2, Z - 1), conservative against stash growth (Ring ORAM
     * requires A <= 2Z for a bounded stash; smaller A evicts more).
     */
    void
    normalizeRing()
    {
        if (bucketScheme != BucketSchemeKind::Ring)
            return;
        if (ringS == 0)
            ringS = z + 2;
        if (ringA == 0)
            ringA = z > 3 ? z - 1 : 2;
    }

    /** Total buckets in the tree. */
    u64 numBuckets() const { return (u64{1} << (levels + 1)) - 1; }

    /** Bits to encode any unified/logical block address. */
    u32 addrBits() const { return log2Ceil(numBlocks) + 1; }

    /** Stored payload bytes per slot (block + optional MAC). */
    u64 storedBlockBytes() const { return blockBytes + macBytes; }

    /** Serialized per-slot header bytes (address + leaf). */
    u64
    slotHeaderBytes() const
    {
        const u64 addr_bytes = divCeil(addrBits(), 8);
        const u64 leaf_bytes = divCeil(levels == 0 ? 1 : levels, 8);
        return addr_bytes + leaf_bytes;
    }

    /** Bucket header bytes: encryption seed + slot headers. */
    u64
    bucketHeaderBytes() const
    {
        return 8 + slotsPerBucket() * slotHeaderBytes();
    }

    /** Unpadded serialized bucket size. */
    u64
    bucketRawBytes() const
    {
        return bucketHeaderBytes() + slotsPerBucket() * storedBlockBytes();
    }

    /** Physical bucket size padded to whole DRAM bursts. */
    u64
    bucketPhysBytes() const
    {
        return roundUp(bucketRawBytes(), burstBytes);
    }

    /** Bytes moved by one path read (or one path write). */
    u64
    pathBytes() const
    {
        return static_cast<u64>(levels + 1) * bucketPhysBytes();
    }

    /** Total external-memory footprint. */
    u64
    footprintBytes() const
    {
        return numBuckets() * bucketPhysBytes();
    }

    /** Logical data capacity in bytes. */
    u64
    capacityBytes() const
    {
        return numBlocks * blockBytes;
    }

    /** Validate invariants; throws FatalError on bad configurations. */
    void
    validate() const
    {
        if (numBlocks == 0)
            fatal("ORAM must hold at least one block");
        if (z == 0)
            fatal("bucket slots Z must be nonzero");
        if (levels == 0 || levels > 48)
            fatal("ORAM levels out of range: ", levels);
        if (blockBytes == 0)
            fatal("block size must be nonzero");
        if (bucketScheme == BucketSchemeKind::Ring) {
            if (ringS == 0 || ringA == 0)
                fatal("Ring scheme needs S and A (call normalizeRing)");
            if (slotsPerBucket() > 64)
                fatal("Ring bucket slots exceed the valid-bitmap width");
        }
    }

    /**
     * Standard sizing rule: 2^L leaves such that real blocks fill half of
     * all bucket slots, i.e. Z * 2^(L+1) ~= 2N (Section 7.1.1's 50% DRAM
     * utilization).
     */
    static OramParams
    forCapacity(u64 capacity_bytes, u64 block_bytes = 64, u32 z = 4)
    {
        OramParams p;
        p.blockBytes = block_bytes;
        p.z = z;
        p.numBlocks = capacity_bytes / block_bytes;
        FRORAM_ASSERT(p.numBlocks >= 2, "capacity too small");
        const u32 lg_n = log2Ceil(p.numBlocks);
        const u32 lg_z = log2Floor(z);
        p.levels = lg_n > lg_z ? lg_n - lg_z : 1;
        return p;
    }

    std::string toString() const;
};

} // namespace froram

#endif // FRORAM_ORAM_PARAMS_HPP
