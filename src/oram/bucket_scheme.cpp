#include "oram/bucket_scheme.hpp"

namespace froram {

// ---------------------------------------------------------------- Path

void
PathBucketScheme::readForAccess(BackendResult& res, Leaf leaf, Addr addr)
{
    (void)addr; // whole-path read: the target falls out with the rest
    b_.fetchPathToStash(leaf, nullptr);
    if (b_.config_.traceSink)
        b_.config_.traceSink(
            {TraceEvent::Kind::PathRead, b_.config_.treeId, leaf});
    b_.stats_.inc("pathReads");
    res.dramPs += b_.pathDramTime(leaf, /*is_write=*/false);
}

void
PathBucketScheme::finishAccess(BackendResult& res, Leaf leaf)
{
    const OramParams& p = b_.config_.params;
    b_.stash_.evictPath(leaf, p.levels, p.z, b_.evictSlots_.data());
    b_.writebackPath(leaf, b_.evictSlots_.data());
    b_.stash_.finishEviction();
    if (b_.config_.traceSink)
        b_.config_.traceSink(
            {TraceEvent::Kind::PathWrite, b_.config_.treeId, leaf});
    if (b_.config_.afterPathWrite)
        b_.config_.afterPathWrite(leaf);
    b_.stats_.inc("pathWrites");
    res.dramPs += b_.pathDramTime(leaf, /*is_write=*/true);
    res.bytesMoved = 2 * p.pathBytes();
}

// ---------------------------------------------------------------- Ring

RingBucketScheme::RingBucketScheme(OramBackend& backend)
    : BucketScheme(backend), rng_(backend.config_.schemeSeed)
{
    const OramParams& p = b_.config_.params;
    spb_ = p.slotsPerBucket();
    ringS_ = p.ringS;
    ringA_ = p.ringA;
    FRORAM_ASSERT(ringS_ != 0 && ringA_ != 0,
                  "Ring scheme needs normalized ringS/ringA");
    fullMask_ = spb_ >= 64 ? ~u64{0} : (u64{1} << spb_) - 1;
    meta_.resize((u64{1} << (p.levels + 1)) - 1);
    hdr_.resize(p.bucketHeaderBytes());
    payload_.resize(p.storedBlockBytes());
    bucketPlain_.resize(p.bucketPhysBytes());
    liveMasks_.assign(p.levels + 1, 0);
    ringSlots_.assign(u64{p.levels + 1} * spb_, nullptr);
    perm_.resize(spb_);
}

void
RingBucketScheme::onlineReadBucket(BackendResult& res, BucketCoord c,
                                   Addr addr, bool timed,
                                   u64& online_blocks)
{
    const OramParams& p = b_.config_.params;
    const u64 id = OramBackend::heapIndex(c);
    RingBucketMeta& m = meta_[id];
    if (m.written == 0)
        return; // virgin bucket: provably empty, nothing to hide yet
    if (m.count >= ringS_)
        earlyReshuffle(res, c, timed); // resets count; read proceeds
    const u64 stored = p.storedBlockBytes();

    // Metadata read: locate `addr` among the live slots, and learn which
    // live slots hold dummies (the candidates for a cover read).
    int target = -1;
    u64 dummies = 0;
    if (b_.rawPath()) {
        const BucketCodec* codec = b_.storage_->codec();
        if (!b_.storage_->readBucketHeaderRaw(id, hdr_.data()))
            return;
        for (u32 s = 0; s < spb_; ++s) {
            if (((m.validMask >> s) & 1) == 0)
                continue;
            const Addr a = codec->slotAddr(hdr_.data(), s);
            if (a == addr)
                target = static_cast<int>(s);
            else if (a == kDummyAddr)
                dummies |= u64{1} << s;
        }
        u32 slot;
        if (target >= 0) {
            slot = static_cast<u32>(target);
            b_.storage_->readSlotPayloadRaw(id, slot, payload_.data());
            b_.stash_.insertBytes(addr,
                                  codec->slotLeaf(hdr_.data(), slot),
                                  payload_.data(), stored);
        } else {
            // Cover read: a random live dummy. Its payload is pad bytes
            // the controller would discard; only the transfer is priced.
            FRORAM_ASSERT(dummies != 0, "ring bucket out of dummies");
            slot = nthSetBit(dummies,
                             static_cast<u32>(
                                 rng_.below(popcount64(dummies))));
        }
        m.validMask &= ~(u64{1} << slot);
    } else {
        // Bucket-layer storage (Meta/Null sims): decode once, same
        // discipline.
        Bucket bk = b_.storage_->readBucket(id);
        for (u32 s = 0; s < spb_ && s < bk.slots.size(); ++s) {
            if (((m.validMask >> s) & 1) == 0)
                continue;
            if (bk.slots[s].addr == addr)
                target = static_cast<int>(s);
            else if (!bk.slots[s].valid())
                dummies |= u64{1} << s;
        }
        u32 slot;
        if (target >= 0) {
            slot = static_cast<u32>(target);
            b_.stash_.insertBytes(addr, bk.slots[slot].leaf,
                                  bk.slots[slot].data.data(),
                                  bk.slots[slot].data.size());
        } else if (dummies != 0) {
            slot = nthSetBit(dummies,
                             static_cast<u32>(
                                 rng_.below(popcount64(dummies))));
        } else {
            // Content-free storage (Null) can run out of nominal
            // dummies; burn any live slot, the image is vapor anyway.
            FRORAM_ASSERT(m.validMask != 0, "ring bucket fully consumed");
            slot = nthSetBit(m.validMask,
                             static_cast<u32>(
                                 rng_.below(popcount64(m.validMask))));
        }
        m.validMask &= ~(u64{1} << slot);
    }
    ++m.count;
    ++online_blocks;
    res.bytesMoved += p.bucketHeaderBytes() + stored;
    if (timed) {
        // One metadata+block burst train per touched bucket. The header
        // and the chosen slot are not adjacent in the image; the burst
        // count (what the timing model prices) is the same either way.
        const u64 base = b_.layout_->addressOf(c);
        const u64 burst = b_.mem_->burstBytes();
        const u64 bursts = divCeil(p.bucketHeaderBytes() + stored, burst);
        for (u64 j = 0; j < bursts; ++j)
            dramReqs_.push_back({base + j * burst, false});
    }
}

void
RingBucketScheme::earlyReshuffle(BackendResult& res, BucketCoord c,
                                 bool timed)
{
    const OramParams& p = b_.config_.params;
    const u64 id = OramBackend::heapIndex(c);
    RingBucketMeta& m = meta_[id];
    const u64 stored = p.storedBlockBytes();

    // Pull the bucket's live real blocks into the stash...
    if (b_.rawPath()) {
        const BucketCodec* codec = b_.storage_->codec();
        if (b_.storage_->readBucketRaw(id, bucketPlain_.data())) {
            for (u32 s = 0; s < spb_; ++s) {
                if (((m.validMask >> s) & 1) == 0)
                    continue;
                const Addr a = codec->slotAddr(bucketPlain_.data(), s);
                if (a == kDummyAddr)
                    continue;
                b_.stash_.insertBytes(
                    a, codec->slotLeaf(bucketPlain_.data(), s),
                    codec->slotPayload(bucketPlain_.data(), s), stored);
            }
        }
    } else {
        Bucket bk = b_.storage_->readBucket(id);
        for (u32 s = 0; s < spb_ && s < bk.slots.size(); ++s) {
            if (((m.validMask >> s) & 1) != 0 && bk.slots[s].valid())
                b_.stash_.insert(bk.slots[s]);
        }
    }

    // ...and rewrite it empty (all dummies) under a fresh pad. The
    // stashed blocks re-enter the tree on later EvictPaths. This is the
    // reshuffle-to-empty variant: simpler than write-back-in-place and
    // oblivious for free, at the price of a little extra stash pressure.
    std::fill(ringSlots_.begin(), ringSlots_.begin() + spb_, nullptr);
    b_.storage_->writeBucketRaw(id, ringSlots_.data(), spb_);
    m.validMask = fullMask_;
    m.count = 0;
    m.written = 1;
    if (b_.config_.traceSink)
        b_.config_.traceSink({TraceEvent::Kind::BucketReshuffle,
                              b_.config_.treeId, id});
    b_.stats_.inc("reshuffles");
    res.bytesMoved += 2 * p.bucketPhysBytes();
    if (timed) {
        const u64 base = b_.layout_->addressOf(c);
        const u64 burst = b_.mem_->burstBytes();
        const u64 bursts = divCeil(p.bucketPhysBytes(), burst);
        for (u64 j = 0; j < bursts; ++j) {
            dramReqs_.push_back({base + j * burst, false});
            dramReqs_.push_back({base + j * burst, true});
        }
    }
}

void
RingBucketScheme::readForAccess(BackendResult& res, Leaf leaf, Addr addr)
{
    const OramParams& p = b_.config_.params;
    const bool timed =
        b_.mem_ != nullptr && b_.mem_->timed() && b_.layout_ != nullptr;
    dramReqs_.clear();
    u64 online_blocks = 0;
    for (u32 l = 0; l <= p.levels; ++l) {
        const BucketCoord c{l, leaf >> (p.levels - l)};
        onlineReadBucket(res, c, addr, timed, online_blocks);
    }
    if (timed && !dramReqs_.empty())
        res.dramPs += b_.mem_->accessBatch(dramReqs_);
    if (b_.config_.traceSink)
        b_.config_.traceSink(
            {TraceEvent::Kind::PathRead, b_.config_.treeId, leaf});
    b_.stats_.inc("onlineReads");
    b_.stats_.inc("onlineBlocks", online_blocks);
}

void
RingBucketScheme::finishAccess(BackendResult& res, Leaf leaf)
{
    (void)leaf; // Ring never writes back along the accessed path
    ++round_;
    if (round_ % ringA_ == 0)
        scheduledEvict(res);
}

void
RingBucketScheme::scheduledEvict(BackendResult& res)
{
    const OramParams& p = b_.config_.params;
    const Leaf eleaf = reverseBits(evictG_, p.levels);
    evictG_ = (evictG_ + 1) & (p.numLeaves() - 1);

    if (b_.config_.beforePathRead)
        b_.config_.beforePathRead(eleaf);

    // Fetch the path's live blocks into the stash (dead slots were
    // consumed by online reads; their stale images must not resurrect).
    for (u32 l = 0; l <= p.levels; ++l) {
        const u64 id =
            OramBackend::heapIndex({l, eleaf >> (p.levels - l)});
        liveMasks_[l] = meta_[id].written != 0 ? meta_[id].validMask : 0;
    }
    b_.fetchPathToStash(eleaf, liveMasks_.data());

    // Greedy-evict Z real blocks per level, then scatter them across the
    // Z+S wire slots at PRNG-chosen offsets so the next epoch's online
    // reads touch unpredictable positions.
    b_.stash_.evictPath(eleaf, p.levels, p.z, b_.evictSlots_.data());
    for (u32 l = 0; l <= p.levels; ++l) {
        for (u32 i = 0; i < spb_; ++i)
            perm_[i] = i;
        for (u32 i = spb_ - 1; i > 0; --i) {
            const u32 j = static_cast<u32>(rng_.below(i + 1));
            const u32 t = perm_[i];
            perm_[i] = perm_[j];
            perm_[j] = t;
        }
        Block** dst = ringSlots_.data() + u64{l} * spb_;
        std::fill(dst, dst + spb_, nullptr);
        for (u32 k = 0; k < p.z; ++k)
            dst[perm_[k]] = b_.evictSlots_[u64{l} * p.z + k];
    }
    b_.writebackPath(eleaf, ringSlots_.data());
    b_.stash_.finishEviction();

    for (u32 l = 0; l <= p.levels; ++l) {
        RingBucketMeta& m =
            meta_[OramBackend::heapIndex({l, eleaf >> (p.levels - l)})];
        m.validMask = fullMask_;
        m.count = 0;
        m.written = 1;
    }
    if (b_.config_.traceSink)
        b_.config_.traceSink(
            {TraceEvent::Kind::EvictPath, b_.config_.treeId, eleaf});
    if (b_.config_.afterPathWrite)
        b_.config_.afterPathWrite(eleaf);
    b_.stats_.inc("evictPaths");
    res.bytesMoved += 2 * p.pathBytes();
    res.dramPs += b_.pathDramTime(eleaf, /*is_write=*/false);
    res.dramPs += b_.pathDramTime(eleaf, /*is_write=*/true);
}

void
RingBucketScheme::saveState(CheckpointWriter& w) const
{
    w.putU64(round_);
    w.putU64(evictG_);
    u64 s[4];
    rng_.saveState(s);
    for (const u64 v : s)
        w.putU64(v);
    u64 n = 0;
    for (const RingBucketMeta& m : meta_)
        n += m.written != 0 ? 1 : 0;
    w.putU64(n);
    for (u64 id = 0; id < meta_.size(); ++id) {
        const RingBucketMeta& m = meta_[id];
        if (m.written == 0)
            continue;
        w.putU64(id);
        w.putU64(m.validMask);
        w.putU32(m.count);
    }
}

void
RingBucketScheme::restoreState(CheckpointReader& r)
{
    round_ = r.getU64();
    evictG_ = r.getU64();
    u64 s[4];
    for (u64& v : s)
        v = r.getU64();
    rng_.restoreState(s);
    for (RingBucketMeta& m : meta_)
        m = RingBucketMeta{};
    const u64 n = r.getU64();
    for (u64 i = 0; i < n; ++i) {
        const u64 id = r.getU64();
        if (id >= meta_.size())
            throw CheckpointError("ring meta id out of range");
        RingBucketMeta& m = meta_[id];
        m.validMask = r.getU64();
        m.count = r.getU32();
        m.written = 1;
        if ((m.validMask & ~fullMask_) != 0 || m.count > ringS_)
            throw CheckpointError("ring meta entry corrupt");
    }
}

// -------------------------------------------------------------- factory

std::unique_ptr<BucketScheme>
makeBucketScheme(OramBackend& backend)
{
    switch (backend.params().bucketScheme) {
      case BucketSchemeKind::Path:
        return std::make_unique<PathBucketScheme>(backend);
      case BucketSchemeKind::Ring:
        return std::make_unique<RingBucketScheme>(backend);
    }
    panic("unknown bucket scheme");
}

} // namespace froram
