#include "oram/params.hpp"

#include <sstream>

namespace froram {

std::string
OramParams::toString() const
{
    std::ostringstream os;
    os << "OramParams{N=2^" << log2Ceil(numBlocks) << " (" << numBlocks
       << "), B=" << blockBytes << "B, Z=" << z << ", L=" << levels
       << ", bucket=" << bucketPhysBytes() << "B, path=" << pathBytes()
       << "B, footprint=" << (footprintBytes() >> 20) << "MiB";
    if (macBytes)
        os << ", mac=" << macBytes << "B";
    os << "}";
    return os.str();
}

} // namespace froram
