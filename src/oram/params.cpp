#include "oram/params.hpp"

#include <sstream>

namespace froram {

const char*
toString(BucketSchemeKind kind)
{
    switch (kind) {
      case BucketSchemeKind::Path:
        return "path";
      case BucketSchemeKind::Ring:
        return "ring";
    }
    return "?";
}

BucketSchemeKind
bucketSchemeFromName(const std::string& name)
{
    if (name == "path")
        return BucketSchemeKind::Path;
    if (name == "ring")
        return BucketSchemeKind::Ring;
    fatal("unknown bucket scheme: ", name);
}

std::string
OramParams::toString() const
{
    std::ostringstream os;
    os << "OramParams{N=2^" << log2Ceil(numBlocks) << " (" << numBlocks
       << "), B=" << blockBytes << "B, Z=" << z << ", L=" << levels
       << ", bucket=" << bucketPhysBytes() << "B, path=" << pathBytes()
       << "B, footprint=" << (footprintBytes() >> 20) << "MiB";
    if (macBytes)
        os << ", mac=" << macBytes << "B";
    if (bucketScheme == BucketSchemeKind::Ring)
        os << ", ring{S=" << ringS << ", A=" << ringA << "}";
    os << "}";
    return os.str();
}

} // namespace froram
