/**
 * @file
 * Path ORAM stash: a small trusted memory that temporarily holds blocks
 * between path reads and evictions (Section 3.1).
 *
 * Engineered for an allocation-free steady state: blocks live in a
 * fixed-size pool whose payload buffers are reserved once and only ever
 * assigned into, the address index is an open-addressed table sized at
 * construction, and eviction is a single O(stash + levels * z) pass that
 * buckets blocks by their deepest legal level (instead of rescanning the
 * whole stash once per level).
 */
#ifndef FRORAM_ORAM_STASH_HPP
#define FRORAM_ORAM_STASH_HPP

#include <algorithm>
#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "oram/params.hpp"
#include "oram/types.hpp"
#include "util/stats.hpp"

namespace froram {

/**
 * Stash keyed by block address.
 *
 * Capacity accounting follows [26]: `capacity` counts blocks that persist
 * across accesses; the transient Z*(L+1) path blocks held during an access
 * are allowed on top. insert() panics on persistent overflow, which models
 * the (negligible-probability for Z >= 4) stash-overflow failure.
 */
class Stash {
  public:
    /**
     * @param capacity persistent block capacity (paper default 200)
     * @param transient_slack additional transient headroom (Z*(L+1))
     * @param reserve_block_bytes payload bytes to pre-reserve per pooled
     *        block (storedBlockBytes of the owning tree); inserts within
     *        this size never allocate
     */
    Stash(u32 capacity, u32 transient_slack, u64 reserve_block_bytes = 0)
        : capacity_(capacity), transientSlack_(transient_slack),
          stats_("stash")
    {
        const u64 pool = u64{capacity} + transient_slack + 1;
        pool_.resize(pool);
        chainNext_.assign(pool, kNil);
        freeList_.reserve(pool);
        for (u32 i = 0; i < pool; ++i) {
            pool_[pool - 1 - i].data.reserve(reserve_block_bytes);
            freeList_.push_back(static_cast<u32>(pool - 1 - i));
        }
        evicted_.reserve(pool);
        u64 table = 16;
        while (table < 2 * pool)
            table *= 2;
        keys_.assign(table, kDummyAddr);
        vals_.assign(table, 0);
        mask_ = table - 1;
    }

    /** Insert (or overwrite) a block; the payload is copied into pooled
     *  storage (the argument's buffer is not adopted). */
    void
    insert(const Block& block)
    {
        FRORAM_ASSERT(block.valid(), "inserting dummy block into stash");
        insertBytes(block.addr, block.leaf, block.data.data(),
                    block.data.size());
    }

    /**
     * Allocation-free insert: (addr, leaf) plus `len` payload bytes
     * copied (or zero-filled when `data` is null) into pooled storage.
     */
    Block&
    insertBytes(Addr addr, Leaf leaf, const u8* data, u64 len)
    {
        FRORAM_ASSERT(addr != kDummyAddr,
                      "inserting dummy block into stash");
        u64 slot = findSlot(addr);
        u32 idx;
        if (keys_[slot] == addr) {
            idx = vals_[slot]; // overwrite in place
        } else {
            FRORAM_ASSERT(!freeList_.empty(), "stash pool exhausted");
            idx = freeList_.back();
            freeList_.pop_back();
            keys_[slot] = addr;
            vals_[slot] = idx;
            ++size_;
        }
        Block& b = pool_[idx];
        b.addr = addr;
        b.leaf = leaf;
        if (data != nullptr)
            b.data.assign(data, data + len);
        else
            b.data.assign(len, 0);
        if (size_ > capacity_ + transientSlack_) {
            panic("stash overflow: ", size_, " blocks (capacity ",
                  capacity_, " + transient ", transientSlack_, ")");
        }
        stats_.set("peakOccupancy",
                   std::max<u64>(stats_.get("peakOccupancy"), size_));
        return b;
    }

    /** Does the stash hold `addr`? */
    bool
    contains(Addr addr) const
    {
        // kDummyAddr doubles as the index's empty-slot marker and can
        // never be stashed; answer without probing.
        return addr != kDummyAddr && keys_[findSlot(addr)] == addr;
    }

    /** Pointer to the stashed block, or nullptr. */
    Block*
    find(Addr addr)
    {
        if (addr == kDummyAddr)
            return nullptr;
        const u64 slot = findSlot(addr);
        return keys_[slot] == addr ? &pool_[vals_[slot]] : nullptr;
    }

    /** Copy the block into `out` and release its slot (must exist). */
    void
    removeInto(Addr addr, Block& out)
    {
        FRORAM_ASSERT(addr != kDummyAddr, "removing absent block");
        const u64 slot = findSlot(addr);
        FRORAM_ASSERT(keys_[slot] == addr, "removing absent block");
        const u32 idx = vals_[slot];
        out.addr = pool_[idx].addr;
        out.leaf = pool_[idx].leaf;
        out.data.assign(pool_[idx].data.begin(), pool_[idx].data.end());
        releaseIndexSlot(slot);
        releasePoolSlot(idx);
        --size_;
    }

    /** Remove and return the block (must exist). */
    Block
    remove(Addr addr)
    {
        Block b;
        removeInto(addr, b);
        return b;
    }

    /**
     * Greedy Path ORAM eviction: select up to Z blocks per level for the
     * path to `leaf`, deepest level first, removing them from the stash.
     *
     * Single pass: each block's deepest legal level on the path (the
     * depth of the common prefix of its leaf and `leaf`) is computed
     * once and the block chained onto that level; walking levels deepest
     * first with an overflow carry list reproduces the greedy deepest-
     * first placement without rescanning the stash per level.
     *
     * `slots` is a caller-owned array of (levels + 1) * z entries, laid
     * out [level * z + slot]; entries are set to the chosen blocks
     * (nullptr = dummy). The chosen blocks stay pool-resident — and the
     * pointers valid — until finishEviction() releases them.
     */
    void
    evictPath(Leaf leaf, u32 levels, u32 z, Block** slots)
    {
        FRORAM_ASSERT(evicted_.empty(),
                      "finishEviction() pending from a previous eviction");
        for (u64 i = 0; i < u64{levels + 1} * z; ++i)
            slots[i] = nullptr;

        // Pass 1: chain every stashed block onto its deepest legal level.
        chainHead_.assign(levels + 1, kNil);
        for (u64 t = 0; t <= mask_; ++t) {
            if (keys_[t] == kDummyAddr)
                continue;
            const u32 idx = vals_[t];
            const u64 diff = pool_[idx].leaf ^ leaf;
            // A leaf outside [0, 2^levels) (e.g. decoded from a tampered
            // bucket) shares no prefix with any path: never evictable.
            if ((diff >> levels) != 0)
                continue;
            const u32 d =
                diff == 0 ? levels : levels - 1 - log2Floor(diff);
            chainNext_[idx] = chainHead_[d];
            chainHead_[d] = idx;
        }

        // Pass 2: deepest level first; blocks that miss a full bucket
        // carry over to shallower levels (they remain legal there).
        u32 carry = kNil;
        for (i64 v = levels; v >= 0; --v) {
            u32 head = chainHead_[static_cast<size_t>(v)];
            u32 taken = 0;
            while (taken < z && (head != kNil || carry != kNil)) {
                u32 idx;
                if (head != kNil) {
                    idx = head;
                    head = chainNext_[idx];
                } else {
                    idx = carry;
                    carry = chainNext_[idx];
                }
                slots[static_cast<u64>(v) * z + taken] = &pool_[idx];
                evicted_.push_back(idx);
                eraseIndex(pool_[idx].addr);
                --size_;
                ++taken;
            }
            // Prepend what is left of this level's chain onto the carry.
            while (head != kNil) {
                const u32 next = chainNext_[head];
                chainNext_[head] = carry;
                carry = head;
                head = next;
            }
        }
    }

    /** Return the blocks handed out by evictPath() to the free pool
     *  (their payload buffers are retained for reuse). */
    void
    finishEviction()
    {
        for (const u32 idx : evicted_)
            releasePoolSlot(idx);
        evicted_.clear();
    }

    u64 occupancy() const { return size_; }
    u32 capacity() const { return capacity_; }
    const StatSet& stats() const { return stats_; }

    /** Snapshot of the stashed blocks (test/diagnostic use; copies). */
    std::vector<Block>
    blocksSnapshot() const
    {
        std::vector<Block> out;
        out.reserve(size_);
        for (u64 t = 0; t <= mask_; ++t) {
            if (keys_[t] != kDummyAddr)
                out.push_back(pool_[vals_[t]]);
        }
        return out;
    }

    /** @name Checkpoint/restore
     *
     * The stash serializes its *exact* internal layout — pool slot
     * assignments, free-list order and open-addressed index placement —
     * not just the block set. Eviction walks the index table in slot
     * order, so two stashes holding the same blocks in different table
     * layouts could evict different (equally legal) block subsets; a
     * restored run must replay the original's choices bit for bit.
     * @{ */
    void
    saveState(CheckpointWriter& w) const
    {
        FRORAM_ASSERT(evicted_.empty(),
                      "cannot checkpoint mid-eviction");
        w.begin(ckpt::kTagStash);
        w.putU32(capacity_);
        w.putU32(transientSlack_);
        w.putU64(size_);
        w.putU64(freeList_.size());
        for (const u32 idx : freeList_)
            w.putU32(idx);
        // Occupied pool slots, identified via the index table so the
        // count always matches size_.
        u64 occupied = 0;
        for (u64 t = 0; t <= mask_; ++t) {
            if (keys_[t] == kDummyAddr)
                continue;
            const Block& b = pool_[vals_[t]];
            w.putU64(t);
            w.putU32(vals_[t]);
            w.putU64(b.addr);
            w.putU64(b.leaf);
            w.putBlob(b.data.data(), b.data.size());
            ++occupied;
        }
        FRORAM_ASSERT(occupied == size_, "stash index out of sync");
        w.end();
    }

    void
    restoreState(CheckpointReader& r)
    {
        r.enter(ckpt::kTagStash);
        if (r.getU32() != capacity_ || r.getU32() != transientSlack_)
            throw CheckpointError(
                "stash geometry differs from the checkpointed one");
        const u64 size = r.getU64();
        const u64 free_count = r.getU64();
        if (size + free_count != pool_.size())
            throw CheckpointError("stash pool accounting corrupt");
        // Reset to empty, keeping each pooled payload's reserved buffer.
        for (Block& b : pool_) {
            b.addr = kDummyAddr;
            b.leaf = kNoLeaf;
            b.data.clear();
        }
        freeList_.clear();
        for (u64 i = 0; i < free_count; ++i) {
            const u32 idx = r.getU32();
            if (idx >= pool_.size())
                throw CheckpointError("stash free-list index out of range");
            freeList_.push_back(idx);
        }
        std::fill(keys_.begin(), keys_.end(), kDummyAddr);
        std::fill(vals_.begin(), vals_.end(), 0);
        for (u64 i = 0; i < size; ++i) {
            const u64 slot = r.getU64();
            const u32 idx = r.getU32();
            if (slot > mask_ || idx >= pool_.size())
                throw CheckpointError("stash index entry out of range");
            if (keys_[slot] != kDummyAddr)
                throw CheckpointError("stash index slot reused");
            Block& b = pool_[idx];
            b.addr = r.getU64();
            b.leaf = r.getU64();
            b.data = r.getBlob();
            if (b.addr == kDummyAddr)
                throw CheckpointError("stash holds a dummy block");
            keys_[slot] = b.addr;
            vals_[slot] = idx;
        }
        size_ = size;
        r.exit();
    }
    /** @} */

  private:
    static constexpr u32 kNil = ~u32{0};

    static u64
    hashAddr(Addr a)
    {
        // splitmix64 finalizer: cheap and well-mixed for table probing.
        return splitmix64Mix(a + 0x9e3779b97f4a7c15ULL);
    }

    /** Slot holding `addr`, or the empty slot where it would go. */
    u64
    findSlot(Addr addr) const
    {
        u64 slot = hashAddr(addr) & mask_;
        while (keys_[slot] != kDummyAddr && keys_[slot] != addr)
            slot = (slot + 1) & mask_;
        return slot;
    }

    void
    eraseIndex(Addr addr)
    {
        const u64 slot = findSlot(addr);
        FRORAM_ASSERT(keys_[slot] == addr, "erasing absent index entry");
        releaseIndexSlot(slot);
    }

    /** Backward-shift deletion keeps linear probe chains intact without
     *  tombstones. */
    void
    releaseIndexSlot(u64 slot)
    {
        u64 hole = slot;
        u64 i = slot;
        for (;;) {
            i = (i + 1) & mask_;
            if (keys_[i] == kDummyAddr)
                break;
            const u64 home = hashAddr(keys_[i]) & mask_;
            // Move i's entry into the hole iff the hole lies on i's
            // probe path (cyclic distance from home to i covers hole).
            if (((i - home) & mask_) >= ((i - hole) & mask_)) {
                keys_[hole] = keys_[i];
                vals_[hole] = vals_[i];
                hole = i;
            }
        }
        keys_[hole] = kDummyAddr;
    }

    void
    releasePoolSlot(u32 idx)
    {
        pool_[idx].addr = kDummyAddr;
        pool_[idx].leaf = kNoLeaf;
        freeList_.push_back(idx);
    }

    u32 capacity_;
    u32 transientSlack_;
    u64 size_ = 0;

    std::vector<Block> pool_;    ///< fixed block pool (reserved payloads)
    std::vector<u32> freeList_;  ///< unused pool indices
    std::vector<u64> keys_;      ///< open-addressed index: addresses
    std::vector<u32> vals_;      ///< open-addressed index: pool indices
    u64 mask_ = 0;

    std::vector<u32> chainHead_; ///< evictPath scratch: per-level heads
    std::vector<u32> chainNext_; ///< evictPath scratch: chain links
    std::vector<u32> evicted_;   ///< pool slots pending finishEviction

    StatSet stats_;
};

} // namespace froram

#endif // FRORAM_ORAM_STASH_HPP
