/**
 * @file
 * Path ORAM stash: a small trusted memory that temporarily holds blocks
 * between path reads and evictions (Section 3.1).
 */
#ifndef FRORAM_ORAM_STASH_HPP
#define FRORAM_ORAM_STASH_HPP

#include <unordered_map>
#include <vector>

#include "oram/params.hpp"
#include "oram/types.hpp"
#include "util/stats.hpp"

namespace froram {

/**
 * Stash keyed by block address.
 *
 * Capacity accounting follows [26]: `capacity` counts blocks that persist
 * across accesses; the transient Z*(L+1) path blocks held during an access
 * are allowed on top. insert() panics on persistent overflow, which models
 * the (negligible-probability for Z >= 4) stash-overflow failure.
 */
class Stash {
  public:
    /**
     * @param capacity persistent block capacity (paper default 200)
     * @param transient_slack additional transient headroom (Z*(L+1))
     */
    Stash(u32 capacity, u32 transient_slack)
        : capacity_(capacity), transientSlack_(transient_slack),
          stats_("stash")
    {
    }

    /** Insert (or overwrite) a block. */
    void
    insert(Block block)
    {
        FRORAM_ASSERT(block.valid(), "inserting dummy block into stash");
        blocks_[block.addr] = std::move(block);
        if (blocks_.size() > capacity_ + transientSlack_) {
            panic("stash overflow: ", blocks_.size(), " blocks (capacity ",
                  capacity_, " + transient ", transientSlack_, ")");
        }
        stats_.set("peakOccupancy",
                   std::max<u64>(stats_.get("peakOccupancy"),
                                 blocks_.size()));
    }

    /** Does the stash hold `addr`? */
    bool contains(Addr addr) const { return blocks_.count(addr) != 0; }

    /** Pointer to the stashed block, or nullptr. */
    Block*
    find(Addr addr)
    {
        auto it = blocks_.find(addr);
        return it == blocks_.end() ? nullptr : &it->second;
    }

    /** Remove and return the block (must exist). */
    Block
    remove(Addr addr)
    {
        auto it = blocks_.find(addr);
        FRORAM_ASSERT(it != blocks_.end(), "removing absent block");
        Block b = std::move(it->second);
        blocks_.erase(it);
        return b;
    }

    /**
     * Greedy Path ORAM eviction: select up to Z blocks per level for the
     * path to `leaf`, deepest level first, removing them from the stash.
     *
     * @param leaf the path being written back
     * @param levels tree depth L
     * @param z slots per bucket
     * @return per-level vectors of evicted blocks ([0] = root .. [L])
     */
    std::vector<std::vector<Block>>
    evictPath(Leaf leaf, u32 levels, u32 z)
    {
        std::vector<std::vector<Block>> out(levels + 1);
        // Deepest-first greedy: a block mapped to leaf l can live at level
        // v iff the paths to l and leaf share the first v+1 buckets, i.e.
        // (l >> (L - v)) == (leaf >> (L - v)).
        for (i64 v = levels; v >= 0; --v) {
            auto& dest = out[static_cast<size_t>(v)];
            for (auto it = blocks_.begin();
                 it != blocks_.end() && dest.size() < z;) {
                const Leaf l = it->second.leaf;
                const u32 shift = levels - static_cast<u32>(v);
                if ((l >> shift) == (leaf >> shift)) {
                    dest.push_back(std::move(it->second));
                    it = blocks_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        return out;
    }

    u64 occupancy() const { return blocks_.size(); }
    u32 capacity() const { return capacity_; }
    const StatSet& stats() const { return stats_; }

    /** Iterate over stashed blocks (test/diagnostic use). */
    const std::unordered_map<Addr, Block>& blocks() const { return blocks_; }

  private:
    u32 capacity_;
    u32 transientSlack_;
    std::unordered_map<Addr, Block> blocks_;
    StatSet stats_;
};

} // namespace froram

#endif // FRORAM_ORAM_STASH_HPP
