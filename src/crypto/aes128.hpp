/**
 * @file
 * AES-128 block cipher (FIPS-197), forward direction.
 *
 * The ORAM controller uses AES only in the forward direction: AES-CTR for
 * bucket encryption (decryption XORs the same keystream) and PRF_K for
 * compressed-PosMap leaf derivation (Section 5.1 of the paper).
 *
 * encryptBlock() dispatches at runtime: AES-NI hardware when the CPU has
 * it (see crypto/aesni.hpp), the table-based software implementation
 * otherwise. Both produce identical ciphertext; encryptBlockPortable()
 * pins the software path for cross-checking.
 */
#ifndef FRORAM_CRYPTO_AES128_HPP
#define FRORAM_CRYPTO_AES128_HPP

#include <array>
#include <cstddef>

#include "util/common.hpp"

namespace froram {

/** AES-128 with a fixed 16-byte key, encrypt-only. */
class Aes128 {
  public:
    static constexpr size_t kBlockBytes = 16;
    static constexpr size_t kKeyBytes = 16;
    static constexpr int kRounds = 10;

    /** Construct with an all-zero key. */
    Aes128() { setKey(std::array<u8, kKeyBytes>{}.data()); }

    /** Construct and schedule the given 16-byte key. */
    explicit Aes128(const u8* key16) { setKey(key16); }

    /** (Re)schedule a 16-byte key. */
    void setKey(const u8* key16);

    /** Encrypt one 16-byte block: out = AES_K(in). in/out may alias. */
    void encryptBlock(const u8* in16, u8* out16) const;

    /** Table-based software path, independent of runtime dispatch. */
    void encryptBlockPortable(const u8* in16, u8* out16) const;

    /** Expanded key schedule in FIPS-197 byte order (11 x 16 bytes),
     *  the layout the AES-NI kernels consume. */
    const u8* roundKeyBytes() const { return roundKeyBytes_.data(); }

  private:
    // Round keys as 4 big-endian words per round.
    std::array<u32, 4 * (kRounds + 1)> roundKeys_;
    // The same schedule as raw bytes, for the AES-NI kernels.
    std::array<u8, 16 * (kRounds + 1)> roundKeyBytes_;
};

} // namespace froram

#endif // FRORAM_CRYPTO_AES128_HPP
