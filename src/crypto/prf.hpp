/**
 * @file
 * PRF_K and MAC_K as used by the compressed PosMap (Section 5) and PMMAC
 * (Section 6).
 *
 * PRF_K is AES-128 over a structured 16-byte input encoding; the paper's
 * hardware uses a dedicated 12-cycle AES core for exactly this purpose.
 * MAC_K is a keyed sponge: SHA3-224(K || m) truncated to 128 bits, which is
 * a secure MAC for SHA-3 family sponges.
 */
#ifndef FRORAM_CRYPTO_PRF_HPP
#define FRORAM_CRYPTO_PRF_HPP

#include <array>

#include "crypto/aes128.hpp"
#include "crypto/sha3.hpp"
#include "util/common.hpp"

namespace froram {

/**
 * Pseudorandom function keyed with AES-128.
 *
 * eval(a, c, k) interprets the input as the tuple (block address, counter,
 * sub-block index) from Sections 5.2.1 and 5.4 and returns 64 pseudorandom
 * bits; leafFor() reduces them mod 2^L.
 */
class Prf {
  public:
    Prf() = default;
    explicit Prf(const u8* key16) : aes_(key16) {}

    void setKey(const u8* key16) { aes_.setKey(key16); }

    /** 64 pseudorandom bits for input tuple (a, c, k). */
    u64
    eval(u64 a, u64 c, u32 k = 0) const
    {
        u8 in[16], out[16];
        for (int i = 0; i < 8; ++i)
            in[i] = static_cast<u8>(a >> (8 * i));
        for (int i = 0; i < 4; ++i)
            in[8 + i] = static_cast<u8>(c >> (8 * i));
        // Upper counter bits folded with the sub-block index; the encoding
        // is injective for c < 2^32 * 2^16 and k < 2^16, far beyond any
        // simulated access count.
        for (int i = 0; i < 2; ++i)
            in[12 + i] = static_cast<u8>(c >> (32 + 8 * i));
        in[14] = static_cast<u8>(k);
        in[15] = static_cast<u8>(k >> 8);
        aes_.encryptBlock(in, out);
        u64 r = 0;
        for (int i = 0; i < 8; ++i)
            r |= static_cast<u64>(out[i]) << (8 * i);
        return r;
    }

    /** Leaf label in [0, 2^levels): PRF_K(a || c || k) mod 2^L. */
    u64
    leafFor(u64 a, u64 c, u32 levels, u32 k = 0) const
    {
        return levels >= 64 ? eval(a, c, k)
                            : (eval(a, c, k) & ((u64{1} << levels) - 1));
    }

  private:
    Aes128 aes_;
};

/** Keyed MAC via SHA3-224, truncated to a 128-bit tag. */
class Mac {
  public:
    static constexpr size_t kTagBytes = 16;
    using Tag = std::array<u8, kTagBytes>;

    Mac() : key_{} {}
    explicit Mac(const u8* key16) { setKey(key16); }

    void
    setKey(const u8* key16)
    {
        for (size_t i = 0; i < 16; ++i)
            key_[i] = key16[i];
    }

    /**
     * Tag for the PMMAC tuple h = MAC_K(c || a || d) from Section 6.2.1.
     * @param counter per-block access count c
     * @param addr block address a
     * @param data block payload d
     * @param len payload length in bytes
     */
    Tag
    compute(u64 counter, u64 addr, const u8* data, size_t len) const
    {
        Sha3_224 h;
        h.update(key_.data(), key_.size());
        u8 hdr[16];
        for (int i = 0; i < 8; ++i) {
            hdr[i] = static_cast<u8>(counter >> (8 * i));
            hdr[8 + i] = static_cast<u8>(addr >> (8 * i));
        }
        h.update(hdr, sizeof(hdr));
        h.update(data, len);
        u8 digest[Sha3_224::kDigestBytes];
        h.finalize(digest);
        Tag tag;
        for (size_t i = 0; i < kTagBytes; ++i)
            tag[i] = digest[i];
        return tag;
    }

    /** Constant-time-ish verification of a stored tag. */
    bool
    verify(const Tag& expect, u64 counter, u64 addr, const u8* data,
           size_t len) const
    {
        const Tag actual = compute(counter, addr, data, len);
        u8 diff = 0;
        for (size_t i = 0; i < kTagBytes; ++i)
            diff |= static_cast<u8>(actual[i] ^ expect[i]);
        return diff == 0;
    }

  private:
    std::array<u8, 16> key_;
};

} // namespace froram

#endif // FRORAM_CRYPTO_PRF_HPP
