/**
 * @file
 * AES-NI (hardware AES) kernels with runtime dispatch.
 *
 * The table-based Aes128 stays the portable reference; these kernels are
 * drop-in accelerations selected at runtime via CPUID, so the same binary
 * runs on any x86-64 and produces bit-identical ciphertext either way.
 * The CTR kernel pipelines 8 independent blocks per iteration to hide the
 * AESENC latency, which is where the bulk-encryption speedup comes from.
 *
 * All entry points take the expanded key schedule as 176 bytes in the
 * FIPS-197 byte order (11 round keys of 16 bytes), as exported by
 * Aes128::roundKeyBytes().
 */
#ifndef FRORAM_CRYPTO_AESNI_HPP
#define FRORAM_CRYPTO_AESNI_HPP

#include <cstddef>

#include "util/common.hpp"

namespace froram {

/**
 * One keystream-XOR work item: `len` bytes of `src` XORed with the CTR
 * pad of (seedHi, seedLo) into `dst` (src may alias dst). Defined here
 * (below the StreamCipher layer) so the AES-NI spans kernel and the
 * generic StreamCipher::xorCryptSpans share one description of a span.
 */
struct CryptSpan {
    u64 seedHi = 0;
    u64 seedLo = 0;
    const u8* src = nullptr;
    u8* dst = nullptr;
    u64 len = 0;
};

namespace aesni {

/** True if the CPU executes AES-NI (cached CPUID probe). */
bool supported();

/** supported() minus the test override; the dispatch predicate. */
bool enabled();

/** Test hook: force the portable fallback even on AES-NI hardware. */
void setForceDisabled(bool disabled);

/** Encrypt one block: out16 = AES_K(in16). in/out may alias. */
void encryptBlock(const u8* round_keys176, const u8* in16, u8* out16);

/**
 * CTR keystream XOR: dst[i] = src[i] ^ pad[i], where pad chunk c is
 * AES_K(seed_hi || seed_lo[31:0] || c), the exact counter-block layout of
 * AesCtrCipher::pad. src and dst may alias; a trailing partial chunk is
 * handled byte-wise.
 *
 * Must only be called when enabled() is true.
 */
void xorCtr(const u8* round_keys176, u64 seed_hi, u64 seed_lo,
            const u8* src, u8* dst, size_t len);

/**
 * Multi-span CTR keystream XOR: one kernel invocation processes every
 * span of `spans` (each an independent (seedHi, seedLo) stream, exactly
 * as xorCtr would). Round keys are loaded once, and the 8-wide block
 * pipeline is kept full ACROSS span boundaries, so short spans (one
 * ORAM bucket each) no longer pay a pipeline drain per bucket — this is
 * the "one crypto kernel per path" entry point.
 *
 * Byte-identical to calling xorCtr once per span. Must only be called
 * when enabled() is true.
 */
void xorCtrSpans(const u8* round_keys176, const CryptSpan* spans,
                 size_t n);

} // namespace aesni
} // namespace froram

#endif // FRORAM_CRYPTO_AESNI_HPP
