#include "crypto/aesni.hpp"

#include <atomic>
#include <mutex>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FRORAM_AESNI_COMPILED 1
#include <immintrin.h>
#endif

namespace froram {
namespace aesni {

namespace {

std::atomic<bool> g_force_disabled{false};

/** CPUID probe result, published exactly once. A function-local magic
 *  static was equally race-free; the explicit once_flag + atomic form
 *  (both constant-initialized — constinit in spirit, C++17 in letter)
 *  keeps the guard visible, avoids the per-call guard-variable check,
 *  and leaves the dispatch read a single relaxed atomic load. */
std::once_flag g_probe_once;
std::atomic<bool> g_has_aesni{false};

bool
probeCpu()
{
#ifdef FRORAM_AESNI_COMPILED
    return __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse2");
#else
    return false;
#endif
}

} // namespace

bool
supported()
{
    std::call_once(g_probe_once, [] {
        g_has_aesni.store(probeCpu(), std::memory_order_relaxed);
    });
    return g_has_aesni.load(std::memory_order_relaxed);
}

bool
enabled()
{
    return supported() && !g_force_disabled.load(std::memory_order_relaxed);
}

void
setForceDisabled(bool disabled)
{
    g_force_disabled.store(disabled, std::memory_order_relaxed);
}

#ifdef FRORAM_AESNI_COMPILED

namespace {

#define FRORAM_TARGET_AES __attribute__((target("aes,sse2")))

FRORAM_TARGET_AES inline __m128i
encryptOne(const __m128i rk[11], __m128i s)
{
    s = _mm_xor_si128(s, rk[0]);
    for (int r = 1; r < 10; ++r)
        s = _mm_aesenc_si128(s, rk[r]);
    return _mm_aesenclast_si128(s, rk[10]);
}

/** Counter block for chunk c: seed_hi LE || seed_lo[31:0] LE || c LE. */
FRORAM_TARGET_AES inline __m128i
ctrBlock(u64 seed_hi, u64 lane_lo, u32 chunk)
{
    return _mm_set_epi64x(
        static_cast<long long>(lane_lo |
                               (static_cast<u64>(chunk) << 32)),
        static_cast<long long>(seed_hi));
}

FRORAM_TARGET_AES void
encryptBlockImpl(const u8* rk_bytes, const u8* in16, u8* out16)
{
    __m128i rk[11];
    for (int i = 0; i < 11; ++i)
        rk[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(rk_bytes + 16 * i));
    const __m128i s = encryptOne(
        rk, _mm_loadu_si128(reinterpret_cast<const __m128i*>(in16)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out16), s);
}

/** The 8-wide pipelined CTR body: encrypt counter blocks c..c+7 and XOR
 *  them into src/dst at chunk offset c. Eight independent blocks per
 *  iteration keep the AESENC units saturated (the per-block round chain
 *  is latency-bound otherwise). Shared by the single-stream and the
 *  spans kernels so the counter scheme lives in exactly one place. */
FRORAM_TARGET_AES inline void
xorFull8(const __m128i rk[11], u64 seed_hi, u64 lane_lo, u64 c,
         const u8* src, u8* dst)
{
    __m128i s[8];
    for (int j = 0; j < 8; ++j)
        s[j] = _mm_xor_si128(
            ctrBlock(seed_hi, lane_lo, static_cast<u32>(c + j)), rk[0]);
    for (int r = 1; r < 10; ++r)
        for (int j = 0; j < 8; ++j)
            s[j] = _mm_aesenc_si128(s[j], rk[r]);
    const u8* sp = src + 16 * c;
    u8* dp = dst + 16 * c;
    for (int j = 0; j < 8; ++j) {
        s[j] = _mm_aesenclast_si128(s[j], rk[10]);
        const __m128i d = _mm_xor_si128(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(sp + 16 * j)),
            s[j]);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dp + 16 * j), d);
    }
}

FRORAM_TARGET_AES void
xorCtrImpl(const u8* rk_bytes, u64 seed_hi, u64 seed_lo, const u8* src,
           u8* dst, size_t len)
{
    __m128i rk[11];
    for (int i = 0; i < 11; ++i)
        rk[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(rk_bytes + 16 * i));

    const u64 lane_lo = seed_lo & 0xffffffffULL;
    const size_t nfull = len / 16;
    size_t c = 0;

    for (; c + 8 <= nfull; c += 8)
        xorFull8(rk, seed_hi, lane_lo, c, src, dst);

    for (; c < nfull; ++c) {
        const __m128i pad = encryptOne(
            rk, ctrBlock(seed_hi, lane_lo, static_cast<u32>(c)));
        const __m128i d = _mm_xor_si128(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(src + 16 * c)),
            pad);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16 * c), d);
    }

    const size_t tail = len - 16 * nfull;
    if (tail != 0) {
        const __m128i pad = encryptOne(
            rk, ctrBlock(seed_hi, lane_lo, static_cast<u32>(nfull)));
        alignas(16) u8 p[16];
        _mm_store_si128(reinterpret_cast<__m128i*>(p), pad);
        for (size_t i = 0; i < tail; ++i)
            dst[16 * nfull + i] =
                static_cast<u8>(src[16 * nfull + i] ^ p[i]);
    }
}

/** One enqueued 16-byte chunk of some span (cross-span batching). */
struct ChunkRef {
    __m128i ctr;    // counter block for this chunk
    const u8* src;  // chunk source
    u8* dst;        // chunk destination
    u32 len;        // 16, or the span's trailing partial length
};

/** Encrypt `m` queued counter blocks together (round-interleaved, the
 *  same ILP shape as the 8-wide loop in xorCtrImpl) and XOR them into
 *  their chunks. Partial chunks XOR byte-wise through a pad buffer. */
FRORAM_TARGET_AES inline void
flushChunks(const __m128i rk[11], ChunkRef* q, int m)
{
    __m128i s[8];
    for (int j = 0; j < m; ++j)
        s[j] = _mm_xor_si128(q[j].ctr, rk[0]);
    for (int r = 1; r < 10; ++r)
        for (int j = 0; j < m; ++j)
            s[j] = _mm_aesenc_si128(s[j], rk[r]);
    for (int j = 0; j < m; ++j) {
        s[j] = _mm_aesenclast_si128(s[j], rk[10]);
        if (q[j].len == 16) {
            const __m128i d = _mm_xor_si128(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(q[j].src)),
                s[j]);
            _mm_storeu_si128(reinterpret_cast<__m128i*>(q[j].dst), d);
        } else {
            alignas(16) u8 p[16];
            _mm_store_si128(reinterpret_cast<__m128i*>(p), s[j]);
            for (u32 i = 0; i < q[j].len; ++i)
                q[j].dst[i] = static_cast<u8>(q[j].src[i] ^ p[i]);
        }
    }
}

FRORAM_TARGET_AES void
xorCtrSpansImpl(const u8* rk_bytes, const CryptSpan* spans, size_t n)
{
    __m128i rk[11];
    for (int i = 0; i < 11; ++i)
        rk[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(rk_bytes + 16 * i));

    // Full 8-chunk groups run the straight pipelined body per span
    // (zero bookkeeping, same inner loop as xorCtr but with the round
    // keys loaded once for the whole path). Only the LEFTOVERS — each
    // span's < 8 trailing full chunks and its partial tail, the chunks
    // a per-bucket kernel executes one latency-bound block at a time —
    // flow through a cross-span queue that batches them 8 wide.
    ChunkRef q[8];
    int m = 0;
    for (size_t i = 0; i < n; ++i) {
        const u64 lane_lo = spans[i].seedLo & 0xffffffffULL;
        const u64 hi = spans[i].seedHi;
        const u8* src = spans[i].src;
        u8* dst = spans[i].dst;
        const u64 len = spans[i].len;
        const u64 nfull = len / 16;
        u64 c = 0;
        for (; c + 8 <= nfull; c += 8)
            xorFull8(rk, hi, lane_lo, c, src, dst);
        u64 left = len - 16 * c;
        const u8* sp = src + 16 * c;
        u8* dp = dst + 16 * c;
        while (left > 0) {
            const u32 take = left >= 16 ? 16 : static_cast<u32>(left);
            q[m++] = {ctrBlock(hi, lane_lo, static_cast<u32>(c)), sp,
                      dp, take};
            if (m == 8) {
                flushChunks(rk, q, 8);
                m = 0;
            }
            sp += take;
            dp += take;
            left -= take;
            ++c;
        }
    }
    if (m != 0)
        flushChunks(rk, q, m);
}

#undef FRORAM_TARGET_AES

} // namespace

void
encryptBlock(const u8* round_keys176, const u8* in16, u8* out16)
{
    encryptBlockImpl(round_keys176, in16, out16);
}

void
xorCtr(const u8* round_keys176, u64 seed_hi, u64 seed_lo, const u8* src,
       u8* dst, size_t len)
{
    xorCtrImpl(round_keys176, seed_hi, seed_lo, src, dst, len);
}

void
xorCtrSpans(const u8* round_keys176, const CryptSpan* spans, size_t n)
{
    xorCtrSpansImpl(round_keys176, spans, n);
}

#else // !FRORAM_AESNI_COMPILED

void
encryptBlock(const u8*, const u8*, u8*)
{
    panic("AES-NI kernel called on a platform without AES-NI support");
}

void
xorCtr(const u8*, u64, u64, const u8*, u8*, size_t)
{
    panic("AES-NI kernel called on a platform without AES-NI support");
}

void
xorCtrSpans(const u8*, const CryptSpan*, size_t)
{
    panic("AES-NI kernel called on a platform without AES-NI support");
}

#endif // FRORAM_AESNI_COMPILED

} // namespace aesni
} // namespace froram
