#include "crypto/aesni.hpp"

#include <atomic>
#include <mutex>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FRORAM_AESNI_COMPILED 1
#include <immintrin.h>
#endif

namespace froram {
namespace aesni {

namespace {

std::atomic<bool> g_force_disabled{false};

/** CPUID probe result, published exactly once. A function-local magic
 *  static was equally race-free; the explicit once_flag + atomic form
 *  (both constant-initialized — constinit in spirit, C++17 in letter)
 *  keeps the guard visible, avoids the per-call guard-variable check,
 *  and leaves the dispatch read a single relaxed atomic load. */
std::once_flag g_probe_once;
std::atomic<bool> g_has_aesni{false};

bool
probeCpu()
{
#ifdef FRORAM_AESNI_COMPILED
    return __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse2");
#else
    return false;
#endif
}

} // namespace

bool
supported()
{
    std::call_once(g_probe_once, [] {
        g_has_aesni.store(probeCpu(), std::memory_order_relaxed);
    });
    return g_has_aesni.load(std::memory_order_relaxed);
}

bool
enabled()
{
    return supported() && !g_force_disabled.load(std::memory_order_relaxed);
}

void
setForceDisabled(bool disabled)
{
    g_force_disabled.store(disabled, std::memory_order_relaxed);
}

#ifdef FRORAM_AESNI_COMPILED

namespace {

#define FRORAM_TARGET_AES __attribute__((target("aes,sse2")))

FRORAM_TARGET_AES inline __m128i
encryptOne(const __m128i rk[11], __m128i s)
{
    s = _mm_xor_si128(s, rk[0]);
    for (int r = 1; r < 10; ++r)
        s = _mm_aesenc_si128(s, rk[r]);
    return _mm_aesenclast_si128(s, rk[10]);
}

/** Counter block for chunk c: seed_hi LE || seed_lo[31:0] LE || c LE. */
FRORAM_TARGET_AES inline __m128i
ctrBlock(u64 seed_hi, u64 lane_lo, u32 chunk)
{
    return _mm_set_epi64x(
        static_cast<long long>(lane_lo |
                               (static_cast<u64>(chunk) << 32)),
        static_cast<long long>(seed_hi));
}

FRORAM_TARGET_AES void
encryptBlockImpl(const u8* rk_bytes, const u8* in16, u8* out16)
{
    __m128i rk[11];
    for (int i = 0; i < 11; ++i)
        rk[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(rk_bytes + 16 * i));
    const __m128i s = encryptOne(
        rk, _mm_loadu_si128(reinterpret_cast<const __m128i*>(in16)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out16), s);
}

FRORAM_TARGET_AES void
xorCtrImpl(const u8* rk_bytes, u64 seed_hi, u64 seed_lo, const u8* src,
           u8* dst, size_t len)
{
    __m128i rk[11];
    for (int i = 0; i < 11; ++i)
        rk[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(rk_bytes + 16 * i));

    const u64 lane_lo = seed_lo & 0xffffffffULL;
    const size_t nfull = len / 16;
    size_t c = 0;

    // 8 independent counter blocks per iteration keep the AESENC units
    // saturated (the per-block round chain is latency-bound otherwise).
    for (; c + 8 <= nfull; c += 8) {
        __m128i s[8];
        for (int j = 0; j < 8; ++j)
            s[j] = _mm_xor_si128(
                ctrBlock(seed_hi, lane_lo, static_cast<u32>(c + j)),
                rk[0]);
        for (int r = 1; r < 10; ++r)
            for (int j = 0; j < 8; ++j)
                s[j] = _mm_aesenc_si128(s[j], rk[r]);
        const u8* sp = src + 16 * c;
        u8* dp = dst + 16 * c;
        for (int j = 0; j < 8; ++j) {
            s[j] = _mm_aesenclast_si128(s[j], rk[10]);
            const __m128i d = _mm_xor_si128(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(sp + 16 * j)),
                s[j]);
            _mm_storeu_si128(reinterpret_cast<__m128i*>(dp + 16 * j), d);
        }
    }

    for (; c < nfull; ++c) {
        const __m128i pad = encryptOne(
            rk, ctrBlock(seed_hi, lane_lo, static_cast<u32>(c)));
        const __m128i d = _mm_xor_si128(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(src + 16 * c)),
            pad);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16 * c), d);
    }

    const size_t tail = len - 16 * nfull;
    if (tail != 0) {
        const __m128i pad = encryptOne(
            rk, ctrBlock(seed_hi, lane_lo, static_cast<u32>(nfull)));
        alignas(16) u8 p[16];
        _mm_store_si128(reinterpret_cast<__m128i*>(p), pad);
        for (size_t i = 0; i < tail; ++i)
            dst[16 * nfull + i] =
                static_cast<u8>(src[16 * nfull + i] ^ p[i]);
    }
}

#undef FRORAM_TARGET_AES

} // namespace

void
encryptBlock(const u8* round_keys176, const u8* in16, u8* out16)
{
    encryptBlockImpl(round_keys176, in16, out16);
}

void
xorCtr(const u8* round_keys176, u64 seed_hi, u64 seed_lo, const u8* src,
       u8* dst, size_t len)
{
    xorCtrImpl(round_keys176, seed_hi, seed_lo, src, dst, len);
}

#else // !FRORAM_AESNI_COMPILED

void
encryptBlock(const u8*, const u8*, u8*)
{
    panic("AES-NI kernel called on a platform without AES-NI support");
}

void
xorCtr(const u8*, u64, u64, const u8*, u8*, size_t)
{
    panic("AES-NI kernel called on a platform without AES-NI support");
}

#endif // FRORAM_AESNI_COMPILED

} // namespace aesni
} // namespace froram
