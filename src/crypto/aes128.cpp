#include "crypto/aes128.hpp"

#include "crypto/aesni.hpp"

namespace froram {
namespace {

/** FIPS-197 S-box. */
constexpr u8 kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr u8
xtime(u8 x)
{
    return static_cast<u8>((x << 1) ^ ((x >> 7) * 0x1b));
}

struct Tables {
    u32 te0[256], te1[256], te2[256], te3[256];
    constexpr Tables() : te0{}, te1{}, te2{}, te3{}
    {
        for (int i = 0; i < 256; ++i) {
            const u8 s = kSbox[i];
            const u8 s2 = xtime(s);
            const u8 s3 = static_cast<u8>(s2 ^ s);
            // Column as big-endian word of (2s, s, s, 3s).
            const u32 w = (static_cast<u32>(s2) << 24) |
                          (static_cast<u32>(s) << 16) |
                          (static_cast<u32>(s) << 8) | s3;
            te0[i] = w;
            te1[i] = (w >> 8) | (w << 24);
            te2[i] = (w >> 16) | (w << 16);
            te3[i] = (w >> 24) | (w << 8);
        }
    }
};

constexpr Tables kT{};

inline u32
loadBe32(const u8* p)
{
    return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
           (static_cast<u32>(p[2]) << 8) | p[3];
}

inline void
storeBe32(u8* p, u32 v)
{
    p[0] = static_cast<u8>(v >> 24);
    p[1] = static_cast<u8>(v >> 16);
    p[2] = static_cast<u8>(v >> 8);
    p[3] = static_cast<u8>(v);
}

inline u32
subWord(u32 w)
{
    return (static_cast<u32>(kSbox[(w >> 24) & 0xff]) << 24) |
           (static_cast<u32>(kSbox[(w >> 16) & 0xff]) << 16) |
           (static_cast<u32>(kSbox[(w >> 8) & 0xff]) << 8) |
           kSbox[w & 0xff];
}

} // namespace

void
Aes128::setKey(const u8* key16)
{
    static constexpr u32 rcon[10] = {0x01000000, 0x02000000, 0x04000000,
                                     0x08000000, 0x10000000, 0x20000000,
                                     0x40000000, 0x80000000, 0x1b000000,
                                     0x36000000};
    for (int i = 0; i < 4; ++i)
        roundKeys_[i] = loadBe32(key16 + 4 * i);
    for (int i = 4; i < 4 * (kRounds + 1); ++i) {
        u32 t = roundKeys_[i - 1];
        if (i % 4 == 0)
            t = subWord((t << 8) | (t >> 24)) ^ rcon[i / 4 - 1];
        roundKeys_[i] = roundKeys_[i - 4] ^ t;
    }
    // Mirror the schedule as bytes (big-endian word layout is exactly the
    // FIPS-197 byte order the AES-NI kernels load with AESENC).
    for (int i = 0; i < 4 * (kRounds + 1); ++i)
        storeBe32(roundKeyBytes_.data() + 4 * i, roundKeys_[i]);
}

void
Aes128::encryptBlock(const u8* in16, u8* out16) const
{
    if (aesni::enabled()) {
        aesni::encryptBlock(roundKeyBytes_.data(), in16, out16);
        return;
    }
    encryptBlockPortable(in16, out16);
}

void
Aes128::encryptBlockPortable(const u8* in16, u8* out16) const
{
    const u32* rk = roundKeys_.data();
    u32 s0 = loadBe32(in16) ^ rk[0];
    u32 s1 = loadBe32(in16 + 4) ^ rk[1];
    u32 s2 = loadBe32(in16 + 8) ^ rk[2];
    u32 s3 = loadBe32(in16 + 12) ^ rk[3];
    u32 t0, t1, t2, t3;
    for (int r = 1; r < kRounds; ++r) {
        rk += 4;
        t0 = kT.te0[s0 >> 24] ^ kT.te1[(s1 >> 16) & 0xff] ^
             kT.te2[(s2 >> 8) & 0xff] ^ kT.te3[s3 & 0xff] ^ rk[0];
        t1 = kT.te0[s1 >> 24] ^ kT.te1[(s2 >> 16) & 0xff] ^
             kT.te2[(s3 >> 8) & 0xff] ^ kT.te3[s0 & 0xff] ^ rk[1];
        t2 = kT.te0[s2 >> 24] ^ kT.te1[(s3 >> 16) & 0xff] ^
             kT.te2[(s0 >> 8) & 0xff] ^ kT.te3[s1 & 0xff] ^ rk[2];
        t3 = kT.te0[s3 >> 24] ^ kT.te1[(s0 >> 16) & 0xff] ^
             kT.te2[(s1 >> 8) & 0xff] ^ kT.te3[s2 & 0xff] ^ rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }
    rk += 4;
    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    t0 = (static_cast<u32>(kSbox[s0 >> 24]) << 24) |
         (static_cast<u32>(kSbox[(s1 >> 16) & 0xff]) << 16) |
         (static_cast<u32>(kSbox[(s2 >> 8) & 0xff]) << 8) |
         kSbox[s3 & 0xff];
    t1 = (static_cast<u32>(kSbox[s1 >> 24]) << 24) |
         (static_cast<u32>(kSbox[(s2 >> 16) & 0xff]) << 16) |
         (static_cast<u32>(kSbox[(s3 >> 8) & 0xff]) << 8) |
         kSbox[s0 & 0xff];
    t2 = (static_cast<u32>(kSbox[s2 >> 24]) << 24) |
         (static_cast<u32>(kSbox[(s3 >> 16) & 0xff]) << 16) |
         (static_cast<u32>(kSbox[(s0 >> 8) & 0xff]) << 8) |
         kSbox[s1 & 0xff];
    t3 = (static_cast<u32>(kSbox[s3 >> 24]) << 24) |
         (static_cast<u32>(kSbox[(s0 >> 16) & 0xff]) << 16) |
         (static_cast<u32>(kSbox[(s1 >> 8) & 0xff]) << 8) |
         kSbox[s2 & 0xff];
    storeBe32(out16, t0 ^ rk[0]);
    storeBe32(out16 + 4, t1 ^ rk[1]);
    storeBe32(out16 + 8, t2 ^ rk[2]);
    storeBe32(out16 + 12, t3 ^ rk[3]);
}

} // namespace froram
