#include "crypto/sha3.hpp"

#include <cstring>

namespace froram {
namespace {

constexpr u64 kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRotation[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3, 10,
                               43, 25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56,
                               14};

inline u64
rotl64(u64 x, int k)
{
    return k == 0 ? x : (x << k) | (x >> (64 - k));
}

} // namespace

void
Sha3_224::reset()
{
    std::memset(state_, 0, sizeof(state_));
    offset_ = 0;
}

void
Sha3_224::keccakF()
{
    u64* a = state_;
    for (int round = 0; round < 24; ++round) {
        // Theta
        u64 c[5], d[5];
        for (int x = 0; x < 5; ++x)
            c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
        for (int x = 0; x < 5; ++x)
            d[x] = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
        for (int i = 0; i < 25; ++i)
            a[i] ^= d[i % 5];
        // Rho + Pi
        u64 b[25];
        for (int x = 0; x < 5; ++x) {
            for (int y = 0; y < 5; ++y) {
                const int src = x + 5 * y;
                const int dst = y + 5 * ((2 * x + 3 * y) % 5);
                b[dst] = rotl64(a[src], kRotation[src]);
            }
        }
        // Chi
        for (int y = 0; y < 5; ++y) {
            for (int x = 0; x < 5; ++x) {
                a[x + 5 * y] = b[x + 5 * y] ^
                               (~b[(x + 1) % 5 + 5 * y] &
                                b[(x + 2) % 5 + 5 * y]);
            }
        }
        // Iota
        a[0] ^= kRoundConstants[round];
    }
}

void
Sha3_224::update(const u8* data, size_t len)
{
    u8* bytes = reinterpret_cast<u8*>(state_);
    while (len > 0) {
        const size_t take = std::min(len, kRateBytes - offset_);
        for (size_t i = 0; i < take; ++i)
            bytes[offset_ + i] ^= data[i];
        offset_ += take;
        data += take;
        len -= take;
        if (offset_ == kRateBytes) {
            keccakF();
            offset_ = 0;
        }
    }
}

void
Sha3_224::finalize(u8* digest28)
{
    u8* bytes = reinterpret_cast<u8*>(state_);
    // SHA-3 domain separation pad: 0x06 ... 0x80.
    bytes[offset_] ^= 0x06;
    bytes[kRateBytes - 1] ^= 0x80;
    keccakF();
    std::memcpy(digest28, bytes, kDigestBytes);
}

std::array<u8, Sha3_224::kDigestBytes>
Sha3_224::hash(const u8* data, size_t len)
{
    Sha3_224 h;
    h.update(data, len);
    std::array<u8, kDigestBytes> out;
    h.finalize(out.data());
    return out;
}

} // namespace froram
