/**
 * @file
 * Probabilistic encryption layer for ORAM buckets.
 *
 * Buckets are encrypted with a one-time pad generated per 16-byte chunk:
 *
 *  - GlobalSeed scheme (Section 6.4 fix, the default): pad chunk i of a
 *    bucket written under monotonic seed G is AES_K(G || i). The controller
 *    increments G on every bucket write, so pads never repeat even under an
 *    active adversary.
 *  - BucketSeed scheme ([26], kept for the attack demonstration): pad is
 *    AES_K(BucketID || BucketSeed || i) with BucketSeed stored in plaintext
 *    next to the bucket. An adversary who rewinds the stored seed forces
 *    pad reuse (Section 6.4).
 *
 * Two pad generators implement one interface: AesCtrCipher (real AES) and
 * FastCipher (a splitmix64 pad for large timing sweeps, where simulating
 * real AES on every byte would dominate runtime without changing any
 * measured quantity).
 */
#ifndef FRORAM_CRYPTO_STREAM_CIPHER_HPP
#define FRORAM_CRYPTO_STREAM_CIPHER_HPP

#include <cstddef>
#include <cstring>
#include <memory>

#include "crypto/aes128.hpp"
#include "crypto/aesni.hpp"
#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

/** Pad-generating cipher interface: XOR data with pad(seedHi, seedLo, i). */
class StreamCipher {
  public:
    virtual ~StreamCipher() = default;

    /** Write the 16-byte pad for chunk index `chunk` of seed pair. */
    virtual void pad(u64 seed_hi, u64 seed_lo, u32 chunk, u8* out16)
        const = 0;

    /** XOR-encrypt/decrypt `len` bytes in place under (seedHi, seedLo).
     *  Per-chunk reference implementation; the hot path uses the bulk
     *  variants below, which are required to be byte-identical. */
    void
    xorCrypt(u64 seed_hi, u64 seed_lo, u8* data, size_t len) const
    {
        u8 p[16];
        for (size_t off = 0, chunk = 0; off < len; off += 16, ++chunk) {
            pad(seed_hi, seed_lo, static_cast<u32>(chunk), p);
            const size_t take = std::min<size_t>(16, len - off);
            for (size_t i = 0; i < take; ++i)
                data[off + i] ^= p[i];
        }
    }

    /**
     * Bulk keystream XOR: dst[i] = src[i] ^ pad[i] over `len` bytes
     * (src may alias dst). Implementations generate pads many chunks at
     * a time and XOR word-wise; output must equal xorCrypt's.
     */
    virtual void
    xorCryptBulkTo(u64 seed_hi, u64 seed_lo, const u8* src, u8* dst,
                   size_t len) const
    {
        u8 p[16];
        size_t off = 0;
        u32 chunk = 0;
        for (; off + 16 <= len; off += 16, ++chunk) {
            pad(seed_hi, seed_lo, chunk, p);
            u64 a, b, pa, pb;
            std::memcpy(&a, src + off, 8);
            std::memcpy(&b, src + off + 8, 8);
            std::memcpy(&pa, p, 8);
            std::memcpy(&pb, p + 8, 8);
            a ^= pa;
            b ^= pb;
            std::memcpy(dst + off, &a, 8);
            std::memcpy(dst + off + 8, &b, 8);
        }
        if (off < len) {
            pad(seed_hi, seed_lo, chunk, p);
            for (size_t i = 0; off + i < len; ++i)
                dst[off + i] = static_cast<u8>(src[off + i] ^ p[i]);
        }
    }

    /** In-place convenience over xorCryptBulkTo. */
    void
    xorCryptBulk(u64 seed_hi, u64 seed_lo, u8* data, size_t len) const
    {
        xorCryptBulkTo(seed_hi, seed_lo, data, data, len);
    }

    /**
     * Multi-span keystream XOR: process `n` independent spans — e.g.
     * every bucket of one ORAM path, each under its own seed pair — in
     * ONE cipher invocation. Output must be byte-identical to calling
     * xorCryptBulkTo once per span; implementations may (and the AES-NI
     * path does) keep their block pipeline full across span boundaries,
     * which is where the per-path speedup over per-bucket calls comes
     * from. Spans must not overlap each other (src == dst within a span
     * is allowed).
     */
    virtual void
    xorCryptSpans(const CryptSpan* spans, size_t n) const
    {
        for (size_t i = 0; i < n; ++i)
            xorCryptBulkTo(spans[i].seedHi, spans[i].seedLo,
                           spans[i].src, spans[i].dst, spans[i].len);
    }
};

/** Real AES-128 counter-mode pad generator. */
class AesCtrCipher : public StreamCipher {
  public:
    AesCtrCipher() = default;
    explicit AesCtrCipher(const u8* key16) : aes_(key16) {}

    void
    pad(u64 seed_hi, u64 seed_lo, u32 chunk, u8* out16) const override
    {
        u8 in[16];
        for (int i = 0; i < 8; ++i)
            in[i] = static_cast<u8>(seed_hi >> (8 * i));
        for (int i = 0; i < 4; ++i)
            in[8 + i] = static_cast<u8>(seed_lo >> (8 * i));
        for (int i = 0; i < 4; ++i)
            in[12 + i] = static_cast<u8>(chunk >> (8 * i));
        aes_.encryptBlock(in, out16);
    }

    void
    xorCryptBulkTo(u64 seed_hi, u64 seed_lo, const u8* src, u8* dst,
                   size_t len) const override
    {
        if (aesni::enabled()) {
            // Pipelined hardware CTR: 8 counter blocks in flight.
            aesni::xorCtr(aes_.roundKeyBytes(), seed_hi, seed_lo, src,
                          dst, len);
            return;
        }
        // Table-based fallback (one virtual pad call per chunk, XOR
        // word-wise) via the base implementation.
        StreamCipher::xorCryptBulkTo(seed_hi, seed_lo, src, dst, len);
    }

    void
    xorCryptSpans(const CryptSpan* spans, size_t n) const override
    {
        if (aesni::enabled()) {
            // One kernel call for the whole span set: round keys loaded
            // once, 8-block pipeline kept full across spans.
            aesni::xorCtrSpans(aes_.roundKeyBytes(), spans, n);
            return;
        }
        StreamCipher::xorCryptSpans(spans, n);
    }

  private:
    Aes128 aes_;
};

/**
 * Fast non-cryptographic pad (splitmix64 finalizer). Preserves every
 * property the *simulator* depends on -- deterministic pad per (seed,
 * chunk), pad reuse iff seed reuse -- without AES cost. Never used by the
 * integrity or crypto test suites.
 */
class FastCipher : public StreamCipher {
  public:
    void
    pad(u64 seed_hi, u64 seed_lo, u32 chunk, u8* out16) const override
    {
        u64 x = mix(seed_hi ^ mix(seed_lo ^ mix(chunk + 1)));
        u64 y = mix(x ^ 0xdeadbeefcafef00dULL);
        for (int i = 0; i < 8; ++i) {
            out16[i] = static_cast<u8>(x >> (8 * i));
            out16[8 + i] = static_cast<u8>(y >> (8 * i));
        }
    }

    void
    xorCryptBulkTo(u64 seed_hi, u64 seed_lo, const u8* src, u8* dst,
                   size_t len) const override
    {
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
        // The word XOR below relies on the pad halves serializing LE;
        // on other hosts fall back to the byte-exact base path.
        StreamCipher::xorCryptBulkTo(seed_hi, seed_lo, src, dst, len);
#else
        // Little-endian pad halves XOR directly as words; no pad buffer.
        size_t off = 0;
        u32 chunk = 0;
        for (; off + 16 <= len; off += 16, ++chunk) {
            const u64 x = mix(seed_hi ^ mix(seed_lo ^ mix(chunk + 1)));
            const u64 y = mix(x ^ 0xdeadbeefcafef00dULL);
            u64 a, b;
            std::memcpy(&a, src + off, 8);
            std::memcpy(&b, src + off + 8, 8);
            a ^= x;
            b ^= y;
            std::memcpy(dst + off, &a, 8);
            std::memcpy(dst + off + 8, &b, 8);
        }
        if (off < len) {
            u8 p[16];
            pad(seed_hi, seed_lo, chunk, p);
            for (size_t i = 0; off + i < len; ++i)
                dst[off + i] = static_cast<u8>(src[off + i] ^ p[i]);
        }
#endif
    }

  private:
    static u64 mix(u64 z) { return splitmix64Mix(z); }
};

} // namespace froram

#endif // FRORAM_CRYPTO_STREAM_CIPHER_HPP
