/**
 * @file
 * SHA3-224 (FIPS-202, Keccak-f[1600]).
 *
 * PMMAC (Section 6) implements MAC_K with SHA3-224 following the paper's
 * hardware prototype, which used an OpenCores SHA3-224 core.
 */
#ifndef FRORAM_CRYPTO_SHA3_HPP
#define FRORAM_CRYPTO_SHA3_HPP

#include <array>
#include <cstddef>

#include "util/common.hpp"

namespace froram {

/** Incremental SHA3-224 hasher. */
class Sha3_224 {
  public:
    static constexpr size_t kDigestBytes = 28;
    static constexpr size_t kRateBytes = 144; // 1152-bit rate

    Sha3_224() { reset(); }

    /** Reset to the empty-message state. */
    void reset();

    /** Absorb `len` bytes of message. */
    void update(const u8* data, size_t len);

    /** Finalize and write the 28-byte digest. The object must be reset
     *  before reuse. */
    void finalize(u8* digest28);

    /** One-shot convenience: digest of (data, len). */
    static std::array<u8, kDigestBytes> hash(const u8* data, size_t len);

  private:
    void keccakF();

    u64 state_[25];
    size_t offset_; // bytes absorbed into the current rate block
};

} // namespace froram

#endif // FRORAM_CRYPTO_SHA3_HPP
