/**
 * @file
 * PosMap block content formats.
 *
 * A PosMap block holds X entries, one per child block. Three on-the-wire
 * formats, matching the paper's scheme matrix (Section 7.1.4 naming):
 *
 *  - Leaves (P_*): X uncompressed leaf labels, 32 bits each. No counters,
 *    no integrity support.
 *  - Compressed (PC_* / PIC_*, Section 5.2.1): one alpha=64-bit group
 *    counter GC plus X beta-bit individual counters; the leaf of child j
 *    is PRF_K(addr_j || GC || IC_j) mod 2^L.
 *  - FlatCounter (PI_*, Section 6.2.2): X 64-bit monotonic counters;
 *    leaf = PRF_K(addr_j || c_j).
 *
 * Counter formats expose currentCounter(), which doubles as the PMMAC
 * nonce (Section 6.2). The format also decides X for a given block size:
 * Leaves gets X = B/4 rounded down to a power of two; FlatCounter B/8;
 * Compressed packs alpha + X*beta into B (X = 32 for B = 64 bytes,
 * beta = 14 -- the parameterization of Section 5.3).
 */
#ifndef FRORAM_CORE_POSMAP_FORMAT_HPP
#define FRORAM_CORE_POSMAP_FORMAT_HPP

#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

/** Decoded contents of one PosMap block (format-dependent fields). */
struct PosMapContent {
    std::vector<u32> leaves; ///< Leaves format (kUninitLeaf = untouched)
    u64 gc = 0;              ///< Compressed: group counter
    std::vector<u16> ic;     ///< Compressed: individual counters
    std::vector<u64> flat;   ///< FlatCounter format

    static constexpr u32 kUninitLeaf = 0xffffffffu;

    /** @name Checkpoint/restore (all three format variants) @{ */
    void saveState(CheckpointWriter& w) const;
    void restoreState(CheckpointReader& r);
    /** @} */
};

/** Content format descriptor + codec for PosMap blocks. */
class PosMapFormat {
  public:
    enum class Kind { Leaves, Compressed, FlatCounter };

    /**
     * @param kind content format
     * @param block_bytes ORAM block payload size B
     * @param beta individual-counter width for Compressed (paper: 14)
     */
    PosMapFormat(Kind kind, u64 block_bytes, u32 beta = 14);

    Kind kind() const { return kind_; }
    u32 x() const { return x_; }
    u32 beta() const { return beta_; }
    bool hasCounters() const { return kind_ != Kind::Leaves; }

    /** Fresh all-cold content (counters zero / leaves uninitialized). */
    PosMapContent makeFresh() const;

    /**
     * Current counter value of entry j; doubles as the PMMAC nonce.
     * Compressed counters are (GC << beta) | IC_j so they strictly
     * increase across group remaps (Observation 3 in the paper).
     */
    u64 currentCounter(const PosMapContent& c, u32 j) const;

    /** True iff entry j has never been touched. */
    bool isCold(const PosMapContent& c, u32 j) const;

    /**
     * Would incrementing entry j overflow its individual counter (i.e.
     * require a group remap, Section 5.2.2)? Always false for
     * non-Compressed formats.
     */
    bool incrementWouldOverflow(const PosMapContent& c, u32 j) const;

    /** Increment entry j (no overflow allowed; check first). */
    void increment(PosMapContent& c, u32 j) const;

    /** Group remap bookkeeping: GC += 1, all ICs reset to 0. */
    void bumpGroupCounter(PosMapContent& c) const;

    /** Serialized byte size (must fit the ORAM block payload). */
    u64 serializedBytes() const;

    /** Serialize into `out` (exactly serializedBytes() bytes written). */
    void serialize(const PosMapContent& c, u8* out) const;

    /** Deserialize from a block payload. */
    PosMapContent deserialize(const u8* in) const;

  private:
    Kind kind_;
    u32 x_;
    u32 beta_;
    u64 blockBytes_;
};

} // namespace froram

#endif // FRORAM_CORE_POSMAP_FORMAT_HPP
