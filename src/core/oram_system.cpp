#include "core/oram_system.hpp"

#include <algorithm>
#include <cstring>

namespace froram {
namespace {

/**
 * Largest level size (block count) whose on-chip PosMap, at that tree's
 * own leaf width, fits the byte budget. Mirrors the paper's "apply
 * recursion until the on-chip PosMap is <= target" rule with precise
 * per-entry widths.
 */
u64
recursiveStopEntries(u64 num_blocks, u32 x, u32 z, u64 target_bytes)
{
    u64 entries = num_blocks;
    for (;;) {
        const u32 lg_n = log2Ceil(std::max<u64>(entries, 2));
        const u32 lg_z = log2Floor(z);
        const u32 leaf_bits = lg_n > lg_z ? lg_n - lg_z : 1;
        if (entries * leaf_bits <= target_bytes * 8)
            return entries;
        entries = divCeil(entries, x);
    }
}

/**
 * Build the storage medium from the system config. The default MmapFile
 * capacity covers the worst configured scheme: ~2x bucket slots at 50%
 * utilization, burst padding, slot headers, MAC tags, recursion trees
 * and the per-tree header/bitmap — scaled up for Ring's extra dummy
 * slots per bucket. The file is sparse, so over-provisioning costs no
 * disk.
 */
std::unique_ptr<StorageBackend>
makeSystemBackend(const OramSystemConfig& cfg)
{
    StorageBackendConfig sc;
    sc.kind = cfg.backend;
    sc.dramChannels = cfg.dramChannels;
    sc.path = cfg.backendPath;
    u64 mult = 8;
    if (cfg.bucketScheme == BucketSchemeKind::Ring) {
        const u32 s = cfg.ringS != 0 ? cfg.ringS : cfg.z + 2;
        mult = divCeil(u64{8} * (cfg.z + s), cfg.z);
    }
    sc.fileBytes = cfg.backendFileBytes != 0
                       ? cfg.backendFileBytes
                       : mult * cfg.capacityBytes + (u64{16} << 20);
    sc.reset = cfg.backendReset;
    sc.faultSchedule = cfg.faultSchedule;
    sc.retry = cfg.storageRetry;
    return makeStorageBackend(sc);
}

} // namespace

SchemeId
schemeFromName(const std::string& name)
{
    const std::string base = name.substr(0, name.find("_X"));
    if (base == "R")
        return SchemeId::Recursive;
    if (base == "P")
        return SchemeId::Plb;
    if (base == "PC")
        return SchemeId::PlbCompressed;
    if (base == "PI")
        return SchemeId::PlbIntegrity;
    if (base == "PIC")
        return SchemeId::PlbIntegrityCompressed;
    if (base == "Phantom")
        return SchemeId::Phantom;
    fatal("unknown scheme name: ", name);
}

OramSystem::OramSystem(SchemeId scheme, const OramSystemConfig& config)
    : cfg_(config), scheme_(scheme), store_(makeSystemBackend(config))
{
    if (cfg_.realAes) {
        Xoshiro256 kdf(cfg_.seed ^ 0xc1f0e4ULL);
        u8 key[16];
        for (auto& b : key)
            b = static_cast<u8>(kdf.next());
        cipher_ = std::make_unique<AesCtrCipher>(key);
    } else {
        cipher_ = std::make_unique<FastCipher>();
    }

    // Snapshot MAC key: its own KDF label keeps it separate from the
    // bucket-pad and PMMAC keys (the envelope additionally MACs under a
    // reserved address-domain constant; see checkpoint.hpp).
    {
        Xoshiro256 kdf(cfg_.seed ^ 0xc4ec4b5ea1ULL);
        u8 key[16];
        for (auto& b : key)
            b = static_cast<u8>(kdf.next());
        ckptMac_.setKey(key);
    }

    TraceSink sink;
    if (cfg_.collectTrace)
        sink = [this](const TraceEvent& e) { trace_.push_back(e); };

    const u64 num_blocks = cfg_.capacityBytes / cfg_.blockBytes;

    switch (scheme_) {
      case SchemeId::Recursive: {
        RecursiveFrontendConfig rc;
        rc.numBlocks = num_blocks;
        rc.blockBytes = cfg_.blockBytes;
        rc.posmapBlockBytes = cfg_.recursivePosmapBlockBytes;
        rc.z = cfg_.z;
        rc.storage = cfg_.storage;
        rc.seedScheme = cfg_.seedScheme;
        rc.latency = cfg_.latency;
        rc.rngSeed = cfg_.seed;
        rc.stashCapacity = cfg_.stashCapacity;
        rc.bucketScheme = cfg_.bucketScheme;
        rc.ringS = cfg_.ringS;
        rc.ringA = cfg_.ringA;
        const u32 x = PosMapFormat(PosMapFormat::Kind::Leaves,
                                   rc.posmapBlockBytes)
                          .x();
        rc.maxOnChipEntries = recursiveStopEntries(
            num_blocks, x, cfg_.z, cfg_.recursiveOnChipTargetBytes);
        frontend_ = std::make_unique<RecursiveFrontend>(
            rc, cipher_.get(), store_.get(), sink);
        break;
      }
      case SchemeId::Phantom: {
        FlatFrontendConfig fc;
        fc.numBlocks = cfg_.capacityBytes / cfg_.phantomBlockBytes;
        fc.blockBytes = cfg_.phantomBlockBytes;
        fc.z = cfg_.z;
        fc.forceLevels = cfg_.phantomForceLevels;
        fc.blockBufferBytes = cfg_.phantomBufferBytes;
        fc.storage = cfg_.storage;
        fc.seedScheme = cfg_.seedScheme;
        fc.latency = cfg_.latency;
        fc.rngSeed = cfg_.seed;
        fc.stashCapacity = cfg_.stashCapacity;
        fc.bucketScheme = cfg_.bucketScheme;
        fc.ringS = cfg_.ringS;
        fc.ringA = cfg_.ringA;
        frontend_ = std::make_unique<FlatFrontend>(fc, cipher_.get(),
                                                   store_.get(), sink);
        break;
      }
      default: {
        UnifiedFrontendConfig uc;
        uc.numBlocks = num_blocks;
        uc.blockBytes = cfg_.blockBytes;
        uc.z = cfg_.z;
        switch (scheme_) {
          case SchemeId::Plb:
            uc.format = PosMapFormat::Kind::Leaves;
            uc.integrity = false;
            break;
          case SchemeId::PlbCompressed:
            uc.format = PosMapFormat::Kind::Compressed;
            uc.integrity = false;
            break;
          case SchemeId::PlbIntegrity:
            uc.format = PosMapFormat::Kind::FlatCounter;
            uc.integrity = true;
            break;
          case SchemeId::PlbIntegrityCompressed:
            uc.format = PosMapFormat::Kind::Compressed;
            uc.integrity = true;
            break;
          default:
            panic("unreachable");
        }
        uc.plb.capacityBytes = cfg_.plbBytes;
        uc.plb.ways = cfg_.plbWays;
        uc.plb.blockBytes = cfg_.blockBytes;
        uc.onChipTargetBytes = cfg_.onChipTargetBytes;
        uc.storage = cfg_.storage;
        uc.seedScheme = cfg_.seedScheme;
        uc.latency = cfg_.latency;
        uc.rngSeed = cfg_.seed;
        uc.stashCapacity = cfg_.stashCapacity;
        uc.bucketScheme = cfg_.bucketScheme;
        uc.ringS = cfg_.ringS;
        uc.ringA = cfg_.ringA;
        frontend_ = std::make_unique<UnifiedFrontend>(uc, cipher_.get(),
                                                      store_.get(), sink);
        break;
      }
    }
}

u64
OramSystem::configFingerprint() const
{
    u64 h = 0x46524F52414D0001ULL;
    const auto mix = [&h](u64 v) { h = splitmix64Mix(h ^ v); };
    mix(static_cast<u64>(scheme_));
    mix(cfg_.capacityBytes);
    mix(cfg_.blockBytes);
    mix(cfg_.recursivePosmapBlockBytes);
    mix(cfg_.z);
    mix(cfg_.dramChannels);
    mix(static_cast<u64>(cfg_.backend));
    u64 ghz_bits = 0;
    std::memcpy(&ghz_bits, &cfg_.latency.procGHz, sizeof(ghz_bits));
    mix(ghz_bits);
    mix(cfg_.latency.frontendCycles);
    mix(cfg_.latency.backendCycles);
    mix(cfg_.latency.aesPipelineCycles);
    mix(cfg_.latency.sha3Cycles);
    mix(cfg_.latency.prfCycles);
    mix(cfg_.plbBytes);
    mix(cfg_.plbWays);
    mix(cfg_.onChipTargetBytes);
    mix(cfg_.recursiveOnChipTargetBytes);
    mix(static_cast<u64>(cfg_.storage));
    mix(cfg_.realAes ? 1 : 0);
    mix(static_cast<u64>(cfg_.seedScheme));
    mix(cfg_.seed);
    mix(cfg_.stashCapacity);
    mix(static_cast<u64>(cfg_.bucketScheme));
    mix(cfg_.ringS);
    mix(cfg_.ringA);
    mix(cfg_.phantomBlockBytes);
    mix(cfg_.phantomForceLevels);
    mix(cfg_.phantomBufferBytes);
    return h;
}

CheckpointScope
OramSystem::resolveScope(CheckpointScope scope) const
{
    const bool needs_data_plane =
        !store_->persistent() ||
        (cfg_.seedScheme == SeedScheme::PerBucket &&
         cfg_.storage == StorageMode::Encrypted);
    if (scope == CheckpointScope::Auto)
        return needs_data_plane ? CheckpointScope::Full
                                : CheckpointScope::TrustedOnly;
    if (scope == CheckpointScope::TrustedOnly && needs_data_plane) {
        if (!store_->persistent())
            throw CheckpointError(
                "trusted-only snapshots need a persistent backend (the "
                "tree would be lost); use CheckpointScope::Full");
        throw CheckpointError(
            "the PerBucket seed scheme has no divergence anchor; use "
            "CheckpointScope::Full");
    }
    return scope;
}

std::vector<u8>
OramSystem::checkpoint(CheckpointScope scope)
{
    requireUsable(); // never serialize half-restored state
    const CheckpointScope resolved = resolveScope(scope);
    // Make the tree durable before the snapshot that anchors to it, so
    // a committed snapshot never points at a region the medium lost.
    store_->sync();

    CheckpointWriter w;
    w.begin(ckpt::kTagSystem);
    w.putU32(static_cast<u32>(scheme_));
    w.putU32(static_cast<u32>(store_->kind()));
    w.putU32(static_cast<u32>(cfg_.storage));
    w.putU8(resolved == CheckpointScope::Full ? 1 : 0);
    w.end();

    if (resolved == CheckpointScope::Full) {
        w.begin(ckpt::kTagDataPlane);
        const u64 total = store_->allocatedBytes();
        w.putU64(total);
        std::vector<u8> buf(std::min<u64>(std::max<u64>(total, 1),
                                          u64{1} << 20));
        for (u64 off = 0; off < total;) {
            const u64 take = std::min<u64>(buf.size(), total - off);
            store_->read(off, buf.data(), take);
            w.putBytes(buf.data(), take);
            off += take;
        }
        w.end();
    }

    if (DramModel* dram = store_->dramModel())
        dram->saveState(w);

    frontend_->saveState(w);
    return ckpt::seal(w.bytes(), ckptMac_, configFingerprint());
}

void
OramSystem::restore(const std::vector<u8>& blob)
{
    const std::vector<u8> payload =
        ckpt::unseal(blob, ckptMac_, configFingerprint());
    CheckpointReader r(payload.data(), payload.size());

    r.enter(ckpt::kTagSystem);
    if (r.getU32() != static_cast<u32>(scheme_) ||
        r.getU32() != static_cast<u32>(store_->kind()) ||
        r.getU32() != static_cast<u32>(cfg_.storage))
        throw CheckpointError(
            "snapshot was taken under a different scheme, backend kind "
            "or storage mode");
    const bool full = r.getU8() != 0;
    r.exit();

    // Everything up to here only read the snapshot; from the first
    // data-plane or component write onward a failure leaves mixed
    // state, so poison the system (frontend() then refuses) instead of
    // letting a caller keep using half-restored trusted state.
    poisoned_ = true;

    if (full) {
        r.enter(ckpt::kTagDataPlane);
        const u64 total = r.getU64();
        if (total != store_->allocatedBytes())
            throw CheckpointError(
                "snapshot data plane covers " + std::to_string(total) +
                " bytes but this system allocated " +
                std::to_string(store_->allocatedBytes()));
        std::vector<u8> buf(std::min<u64>(std::max<u64>(total, 1),
                                          u64{1} << 20));
        for (u64 off = 0; off < total;) {
            const u64 take = std::min<u64>(buf.size(), total - off);
            r.getBytes(buf.data(), take);
            store_->write(off, buf.data(), take);
            off += take;
        }
        r.exit();
    } else if (!store_->persistent()) {
        throw CheckpointError(
            "trusted-only snapshot cannot be restored onto a volatile "
            "backend: the tree it anchors to is not there");
    }

    if (DramModel* dram = store_->dramModel())
        dram->restoreState(r);

    frontend_->restoreState(r);
    r.expectEnd();
    poisoned_ = false;
    trace_.clear();
    if (store_->persistent())
        store_->sync();
}

void
OramSystem::checkpointTo(const std::string& path, CheckpointScope scope)
{
    ckpt::writeFileAtomic(path, checkpoint(scope));
}

void
OramSystem::restoreFrom(const std::string& path)
{
    restore(ckpt::readFile(path));
}

std::unique_ptr<OramSystem>
OramSystem::open(SchemeId scheme, OramSystemConfig config,
                 const std::string& snapshot_path)
{
    config.backendReset = false;
    auto sys = std::make_unique<OramSystem>(scheme, config);
    sys->restoreFrom(snapshot_path);
    return sys;
}

} // namespace froram
