#include "core/oram_system.hpp"

namespace froram {
namespace {

/**
 * Largest level size (block count) whose on-chip PosMap, at that tree's
 * own leaf width, fits the byte budget. Mirrors the paper's "apply
 * recursion until the on-chip PosMap is <= target" rule with precise
 * per-entry widths.
 */
u64
recursiveStopEntries(u64 num_blocks, u32 x, u32 z, u64 target_bytes)
{
    u64 entries = num_blocks;
    for (;;) {
        const u32 lg_n = log2Ceil(std::max<u64>(entries, 2));
        const u32 lg_z = log2Floor(z);
        const u32 leaf_bits = lg_n > lg_z ? lg_n - lg_z : 1;
        if (entries * leaf_bits <= target_bytes * 8)
            return entries;
        entries = divCeil(entries, x);
    }
}

/**
 * Build the storage medium from the system config. The default MmapFile
 * capacity covers the worst configured scheme: ~2x bucket slots at 50%
 * utilization, burst padding, slot headers, MAC tags, recursion trees
 * and the per-tree header/bitmap. The file is sparse, so
 * over-provisioning costs no disk.
 */
std::unique_ptr<StorageBackend>
makeSystemBackend(const OramSystemConfig& cfg)
{
    StorageBackendConfig sc;
    sc.kind = cfg.backend;
    sc.dramChannels = cfg.dramChannels;
    sc.path = cfg.backendPath;
    sc.fileBytes = cfg.backendFileBytes != 0
                       ? cfg.backendFileBytes
                       : 8 * cfg.capacityBytes + (u64{16} << 20);
    sc.reset = cfg.backendReset;
    return makeStorageBackend(sc);
}

} // namespace

SchemeId
schemeFromName(const std::string& name)
{
    const std::string base = name.substr(0, name.find("_X"));
    if (base == "R")
        return SchemeId::Recursive;
    if (base == "P")
        return SchemeId::Plb;
    if (base == "PC")
        return SchemeId::PlbCompressed;
    if (base == "PI")
        return SchemeId::PlbIntegrity;
    if (base == "PIC")
        return SchemeId::PlbIntegrityCompressed;
    if (base == "Phantom")
        return SchemeId::Phantom;
    fatal("unknown scheme name: ", name);
}

OramSystem::OramSystem(SchemeId scheme, const OramSystemConfig& config)
    : cfg_(config), scheme_(scheme), store_(makeSystemBackend(config))
{
    if (cfg_.realAes) {
        Xoshiro256 kdf(cfg_.seed ^ 0xc1f0e4ULL);
        u8 key[16];
        for (auto& b : key)
            b = static_cast<u8>(kdf.next());
        cipher_ = std::make_unique<AesCtrCipher>(key);
    } else {
        cipher_ = std::make_unique<FastCipher>();
    }

    TraceSink sink;
    if (cfg_.collectTrace)
        sink = [this](const TraceEvent& e) { trace_.push_back(e); };

    const u64 num_blocks = cfg_.capacityBytes / cfg_.blockBytes;

    switch (scheme_) {
      case SchemeId::Recursive: {
        RecursiveFrontendConfig rc;
        rc.numBlocks = num_blocks;
        rc.blockBytes = cfg_.blockBytes;
        rc.posmapBlockBytes = cfg_.recursivePosmapBlockBytes;
        rc.z = cfg_.z;
        rc.storage = cfg_.storage;
        rc.seedScheme = cfg_.seedScheme;
        rc.latency = cfg_.latency;
        rc.rngSeed = cfg_.seed;
        rc.stashCapacity = cfg_.stashCapacity;
        const u32 x = PosMapFormat(PosMapFormat::Kind::Leaves,
                                   rc.posmapBlockBytes)
                          .x();
        rc.maxOnChipEntries = recursiveStopEntries(
            num_blocks, x, cfg_.z, cfg_.recursiveOnChipTargetBytes);
        frontend_ = std::make_unique<RecursiveFrontend>(
            rc, cipher_.get(), store_.get(), sink);
        break;
      }
      case SchemeId::Phantom: {
        FlatFrontendConfig fc;
        fc.numBlocks = cfg_.capacityBytes / cfg_.phantomBlockBytes;
        fc.blockBytes = cfg_.phantomBlockBytes;
        fc.z = cfg_.z;
        fc.forceLevels = cfg_.phantomForceLevels;
        fc.blockBufferBytes = cfg_.phantomBufferBytes;
        fc.storage = cfg_.storage;
        fc.seedScheme = cfg_.seedScheme;
        fc.latency = cfg_.latency;
        fc.rngSeed = cfg_.seed;
        fc.stashCapacity = cfg_.stashCapacity;
        frontend_ = std::make_unique<FlatFrontend>(fc, cipher_.get(),
                                                   store_.get(), sink);
        break;
      }
      default: {
        UnifiedFrontendConfig uc;
        uc.numBlocks = num_blocks;
        uc.blockBytes = cfg_.blockBytes;
        uc.z = cfg_.z;
        switch (scheme_) {
          case SchemeId::Plb:
            uc.format = PosMapFormat::Kind::Leaves;
            uc.integrity = false;
            break;
          case SchemeId::PlbCompressed:
            uc.format = PosMapFormat::Kind::Compressed;
            uc.integrity = false;
            break;
          case SchemeId::PlbIntegrity:
            uc.format = PosMapFormat::Kind::FlatCounter;
            uc.integrity = true;
            break;
          case SchemeId::PlbIntegrityCompressed:
            uc.format = PosMapFormat::Kind::Compressed;
            uc.integrity = true;
            break;
          default:
            panic("unreachable");
        }
        uc.plb.capacityBytes = cfg_.plbBytes;
        uc.plb.ways = cfg_.plbWays;
        uc.plb.blockBytes = cfg_.blockBytes;
        uc.onChipTargetBytes = cfg_.onChipTargetBytes;
        uc.storage = cfg_.storage;
        uc.seedScheme = cfg_.seedScheme;
        uc.latency = cfg_.latency;
        uc.rngSeed = cfg_.seed;
        uc.stashCapacity = cfg_.stashCapacity;
        frontend_ = std::make_unique<UnifiedFrontend>(uc, cipher_.get(),
                                                      store_.get(), sink);
        break;
      }
    }
}

} // namespace froram
