#include "core/flat_frontend.hpp"

namespace froram {

FlatFrontend::FlatFrontend(const FlatFrontendConfig& config,
                           const StreamCipher* cipher, StorageBackend* store,
                           TraceSink trace)
    : config_(config), rng_(config.rngSeed), stats_("frontend")
{
    if (config_.numBlocks == 0)
        fatal("FlatFrontend needs at least one block");

    params_.numBlocks = config_.numBlocks;
    params_.blockBytes = config_.blockBytes;
    params_.z = config_.z;
    params_.stashCapacity = config_.stashCapacity;
    if (config_.forceLevels != 0) {
        params_.levels = config_.forceLevels;
    } else {
        const u32 lg_n = log2Ceil(params_.numBlocks);
        const u32 lg_z = log2Floor(params_.z);
        params_.levels = lg_n > lg_z ? lg_n - lg_z : 1;
    }
    params_.bucketScheme = config_.bucketScheme;
    params_.ringS = config_.ringS;
    params_.ringA = config_.ringA;
    params_.normalizeRing();
    params_.validate();

    std::unique_ptr<TreeStorage> storage = makeTreeStorage(
        config_.storage, params_, cipher, config_.seedScheme, store);

    auto layout = std::make_unique<SubtreeLayout>(
        params_.levels, params_.bucketPhysBytes(), layoutUnitBytes(store));

    BackendConfig bc;
    bc.params = params_;
    bc.treeId = 0;
    bc.traceSink = std::move(trace);
    bc.schemeSeed = config_.rngSeed ^ 0x52494e47ULL; // "RING" domain
    backend_ = std::make_unique<PathOramBackend>(
        bc, std::move(storage), std::move(layout), store);

    posmap_.assign(config_.numBlocks, kUninit);
    if (config_.blockBufferBytes >= config_.blockBytes)
        buffer_.resize(config_.blockBufferBytes / config_.blockBytes);
}

u64
FlatFrontend::onChipPosMapBits() const
{
    return config_.numBlocks * params_.levels;
}

void
FlatFrontend::saveState(CheckpointWriter& w) const
{
    w.begin(ckpt::kTagFrontend);
    w.putU32(3); // frontend kind: flat (Phantom)
    w.begin(ckpt::kTagPosMap);
    w.putU64(posmap_.size());
    for (const u64 v : posmap_)
        w.putU64(v);
    w.end();
    w.begin(ckpt::kTagRng);
    u64 rng[4];
    rng_.saveState(rng);
    for (const u64 v : rng)
        w.putU64(v);
    w.end();
    w.begin(ckpt::kTagBuffer);
    w.putU64(buffer_.size());
    w.putU32(clockHand_);
    for (const BufferSlot& s : buffer_) {
        w.putU8(s.valid ? 1 : 0);
        if (!s.valid)
            continue;
        w.putU8(s.ref ? 1 : 0);
        w.putU8(s.dirty ? 1 : 0);
        w.putU64(s.addr);
        w.putBlob(s.data.data(), s.data.size());
    }
    w.end();
    backend_->saveState(w);
    w.end();
}

void
FlatFrontend::restoreState(CheckpointReader& r)
{
    r.enter(ckpt::kTagFrontend);
    if (r.getU32() != 3)
        throw CheckpointError("snapshot holds a different frontend kind");
    r.enter(ckpt::kTagPosMap);
    if (r.getU64() != posmap_.size())
        throw CheckpointError(
            "on-chip PosMap size differs from the checkpointed one");
    for (u64& v : posmap_)
        v = r.getU64();
    r.exit();
    r.enter(ckpt::kTagRng);
    u64 rng[4];
    for (u64& v : rng)
        v = r.getU64();
    rng_.restoreState(rng);
    r.exit();
    r.enter(ckpt::kTagBuffer);
    if (r.getU64() != buffer_.size())
        throw CheckpointError(
            "block-buffer size differs from the checkpointed one");
    clockHand_ = r.getU32();
    if (!buffer_.empty() && clockHand_ >= buffer_.size())
        throw CheckpointError("block-buffer clock hand out of range");
    for (BufferSlot& s : buffer_) {
        s = BufferSlot{};
        if (r.getU8() == 0)
            continue;
        s.valid = true;
        s.ref = r.getU8() != 0;
        s.dirty = r.getU8() != 0;
        s.addr = r.getU64();
        s.data = r.getBlob();
    }
    r.exit();
    backend_->restoreState(r);
    r.exit();
}

u32
FlatFrontend::clockVictim()
{
    FRORAM_ASSERT(!buffer_.empty(), "no block buffer configured");
    for (;;) {
        BufferSlot& s = buffer_[clockHand_];
        const u32 idx = clockHand_;
        clockHand_ = (clockHand_ + 1) % static_cast<u32>(buffer_.size());
        if (!s.valid || !s.ref)
            return idx;
        s.ref = false;
    }
}

BackendResult
FlatFrontend::oramAccess(Addr addr, bool is_write,
                         const std::vector<u8>* write_data,
                         FrontendResult& res)
{
    const bool cold = posmap_[addr] == kUninit;
    const Leaf use = cold ? rng_.below(params_.numLeaves())
                          : posmap_[addr];
    const Leaf fresh = rng_.below(params_.numLeaves());
    posmap_[addr] = fresh;

    BackendResult r = backend_->access(
        is_write ? Op::Write : Op::Read, addr, use, fresh, write_data);
    res.bytesMoved += r.bytesMoved;
    res.backendAccesses += 1;
    res.coldMiss = res.coldMiss || cold;
    res.cycles += config_.latency.backendCycles +
                  config_.latency.aesPipelineCycles +
                  config_.latency.psToCycles(r.dramPs);
    return r;
}

void
FlatFrontend::serviceHint(Addr addr)
{
    if (!backend_->prefetchUseful() || addr >= config_.numBlocks ||
        posmap_[addr] == kUninit)
        return;
    // A block-buffer hit performs no tree access; only prefetch for
    // requests that will actually miss to the ORAM.
    for (const auto& s : buffer_) {
        if (s.valid && s.addr == addr)
            return;
    }
    backend_->prefetchPath(posmap_[addr]);
}

void
FlatFrontend::serviceAccess(AccessResult& res, const AccessRequest& req)
{
    const Addr addr = req.addr;
    const bool is_write = req.isWrite;
    const std::vector<u8>* const write_data = req.writeData;
    FRORAM_ASSERT(addr < config_.numBlocks, "address out of range");
    res.reset();
    stats_.inc("accesses");
    res.cycles += config_.latency.frontendCycles;

    if (buffer_.empty()) {
        BackendResult r = oramAccess(addr, is_write, write_data, res);
        if (config_.storage == StorageMode::Encrypted && r.found)
            res.data.assign(r.block.data.begin(),
                            r.block.data.begin() +
                                static_cast<long>(config_.blockBytes));
        stats_.inc("cycles", res.cycles);
        stats_.inc("bytesMoved", res.bytesMoved);
        stats_.inc("backendAccesses", res.backendAccesses);
        return;
    }

    // Block buffer (CLOCK): hits are served on-chip.
    for (auto& s : buffer_) {
        if (s.valid && s.addr == addr) {
            s.ref = true;
            if (is_write) {
                s.dirty = true;
                if (write_data != nullptr) {
                    s.data = *write_data;
                    s.data.resize(config_.blockBytes, 0);
                }
            }
            res.data = s.data;
            stats_.inc("bufferHits");
            stats_.inc("cycles", res.cycles);
            return;
        }
    }
    stats_.inc("bufferMisses");

    // Miss: fetch through ORAM, then install, evicting (and writing
    // back) the CLOCK victim.
    BackendResult r = oramAccess(addr, /*is_write=*/false, nullptr, res);
    BufferSlot incoming;
    incoming.valid = true;
    incoming.ref = true;
    incoming.dirty = is_write;
    incoming.addr = addr;
    if (config_.storage == StorageMode::Encrypted) {
        if (is_write && write_data != nullptr) {
            incoming.data = *write_data;
        } else {
            incoming.data = r.block.data;
        }
        incoming.data.resize(config_.blockBytes, 0);
        res.data = incoming.data;
    } else if (is_write) {
        incoming.dirty = true;
    }

    const u32 v = clockVictim();
    BufferSlot victim = std::move(buffer_[v]);
    buffer_[v] = std::move(incoming);
    if (victim.valid && victim.dirty) {
        // Dirty writeback costs a full ORAM access.
        std::vector<u8>* payload =
            victim.data.empty() ? nullptr : &victim.data;
        oramAccess(victim.addr, /*is_write=*/true, payload, res);
        stats_.inc("bufferWritebacks");
    }

    stats_.inc("cycles", res.cycles);
    stats_.inc("bytesMoved", res.bytesMoved);
    stats_.inc("backendAccesses", res.backendAccesses);
}

} // namespace froram
