/**
 * @file
 * Top-level system builder: assembles a complete ORAM memory system
 * (frontend + backend(s) + DRAM timing + encryption) for each scheme in
 * the paper's evaluation, using its naming convention (Section 7.1.4):
 *
 *   R_X8    Recursive baseline ([26]), separate trees, 32 B PosMap blocks
 *   P_X16   PLB only
 *   PC_X32  PLB + compressed PosMap
 *   PI_X8   PLB + PMMAC with flat counters
 *   PIC_X32 PLB + compressed PosMap + PMMAC
 *   Phantom non-recursive 4 KB-block baseline ([21])
 *
 * (The _X suffix is derived from the block size, so the same SchemeId
 * yields PC_X64 under the 128-byte-block configuration of Figure 8.)
 */
#ifndef FRORAM_CORE_ORAM_SYSTEM_HPP
#define FRORAM_CORE_ORAM_SYSTEM_HPP

#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "core/flat_frontend.hpp"
#include "core/recursive_frontend.hpp"
#include "core/unified_frontend.hpp"
#include "crypto/prf.hpp"
#include "mem/dram_model.hpp"
#include "mem/storage_backend.hpp"

namespace froram {

/** The schemes of the paper's evaluation. */
enum class SchemeId {
    Recursive,              ///< R_X*
    Plb,                    ///< P_X*
    PlbCompressed,          ///< PC_X*
    PlbIntegrity,           ///< PI_X*
    PlbIntegrityCompressed, ///< PIC_X*
    Phantom                 ///< non-recursive large-block baseline
};

/** Canonical scheme id from a name like "PC" or "PC_X32". */
SchemeId schemeFromName(const std::string& name);

/** Full-system configuration shared by all schemes. */
struct OramSystemConfig {
    u64 capacityBytes = u64{4} << 30; ///< data ORAM capacity (Table 1: 4 GB)
    u64 blockBytes = 64;              ///< ORAM/data block size
    u64 recursivePosmapBlockBytes = 32; ///< R_X*: PosMap ORAM block size
    u32 z = 4;
    u32 dramChannels = 2;
    /** Storage medium under the tree(s). TimedDram reproduces the paper's
     *  evaluation; Flat is the fast functional path; MmapFile persists. */
    StorageBackendKind backend = StorageBackendKind::TimedDram;
    std::string backendPath;   ///< MmapFile: backing file
    u64 backendFileBytes = 0;  ///< MmapFile capacity (0: sized from config)
    bool backendReset = true;  ///< MmapFile: truncate instead of reopening
    LatencyModel latency{};
    u64 plbBytes = 64 * 1024; ///< evaluation default (Section 7.1.3)
    u32 plbWays = 1;          ///< direct-mapped
    u64 onChipTargetBytes = 128 * 1024;          ///< unified schemes
    u64 recursiveOnChipTargetBytes = 256 * 1024; ///< R_X* (Section 7.1.4)
    StorageMode storage = StorageMode::Meta;
    bool realAes = false; ///< AES-CTR pads vs fast simulation pads
    SeedScheme seedScheme = SeedScheme::GlobalCounter;
    u64 seed = 0x5eed;
    u32 stashCapacity = 200;
    /** Bucket discipline for every tree (Path or Ring; see
     *  oram/bucket_scheme.hpp). */
    BucketSchemeKind bucketScheme = BucketSchemeKind::Path;
    u32 ringS = 0; ///< Ring dummy slots (0 = normalizeRing default)
    u32 ringA = 0; ///< Ring eviction rate (0 = normalizeRing default)
    bool collectTrace = false; ///< buffer the adversary-visible trace
    /** Phantom-specific knobs (Section 7.1.6). */
    u64 phantomBlockBytes = 4096;
    u32 phantomForceLevels = 19;
    u64 phantomBufferBytes = 32 * 1024;
    /**
     * Optional fault plumbing (tests/chaos runs), passed through to
     * StorageBackendConfig: when `faultSchedule` is set the storage
     * medium is wrapped in a FaultInjectingBackend honoring it, plus a
     * RetryingBackend absorbing transient faults under `storageRetry`.
     * Operational, not behavioral: excluded from configFingerprint()
     * (a snapshot restores identically with or without injection).
     */
    std::shared_ptr<FaultSchedule> faultSchedule;
    RetryPolicy storageRetry{};
};

/**
 * How much of the system a snapshot captures.
 *
 *  - TrustedOnly: the trusted controller state plus per-tree divergence
 *    anchors; the untrusted tree stays on the (persistent) backend.
 *    Restore requires the region's seed register to match the anchor
 *    exactly, so a region that kept running after the snapshot is
 *    rejected instead of resumed with stale integrity counters.
 *  - Full: additionally captures the backend data plane, making the
 *    snapshot a self-contained recovery point (kill-anywhere restore;
 *    required for volatile backends, whose tree lives nowhere else).
 *  - Auto: Full for volatile backends or the PerBucket seed scheme
 *    (which has no divergence anchor), TrustedOnly otherwise.
 */
enum class CheckpointScope { Auto, TrustedOnly, Full };

/** A complete ORAM memory system for one scheme. */
class OramSystem {
  public:
    OramSystem(SchemeId scheme, const OramSystemConfig& config);

    /** @name Checkpoint/restore
     *
     * checkpoint() serializes the complete trusted state — on-chip
     * PosMap(s), PLB, stash(es), recursion metadata, integrity
     * counters, seed registers, DRAM-timing state and the remapping
     * RNG — into a sealed blob (versioned, length-prefixed, MAC'd; see
     * src/checkpoint/). checkpointTo() additionally commits it to a
     * file atomically (write-then-rename), so a crash at any byte
     * leaves either the previous snapshot or a detectable torn file.
     *
     * restore()/restoreFrom() apply a snapshot to a freshly constructed
     * system of the *same* configuration; open() is the one-call resume
     * path for a persisted system. All failure modes (torn file, MAC or
     * version mismatch, wrong configuration, diverged backend region)
     * raise CheckpointError and corrupt state is never silently
     * resumed: failures detected before anything was written leave the
     * system untouched, and a failure that interrupts a partially
     * applied restore poisons the system — frontend() refuses from then
     * on (construct a fresh system, as open() does, to retry).
     * @{ */
    std::vector<u8> checkpoint(CheckpointScope scope
                               = CheckpointScope::Auto);
    void restore(const std::vector<u8>& blob);
    void checkpointTo(const std::string& path,
                      CheckpointScope scope = CheckpointScope::Auto);
    void restoreFrom(const std::string& path);

    /**
     * Resume a persisted system in a fresh process: constructs the
     * system over the existing backend (backendReset forced off) and
     * applies the snapshot at `snapshot_path`. The result reproduces
     * bit-identical access results and timing-model state versus the
     * checkpointed instance.
     */
    static std::unique_ptr<OramSystem> open(SchemeId scheme,
                                            OramSystemConfig config,
                                            const std::string&
                                                snapshot_path);

    /** Fingerprint of every behavior-affecting configuration field;
     *  embedded in the snapshot envelope and checked on restore. */
    u64 configFingerprint() const;
    /** @} */

    /**
     * Unified access surface (see Frontend::submit): the
     * single-threaded entry point to the staged pipelined engine.
     * Results, trace and all trusted state are bit-identical to issuing
     * the requests through frontend().access() one by one; request
     * i+1's storage prefetch overlaps request i's decrypt/evict
     * compute.
     */
    void
    submit(const AccessRequest* reqs, AccessResult* results, size_t n)
    {
        // Fail-stop containment: a StorageError that escaped the retry
        // layer, or an IntegrityViolation, may have left the engine's
        // per-access state machine mid-transition (the PosMap entry is
        // remapped BEFORE the path access), so continuing could return
        // wrong values. Latch faulted_ and refuse all further access;
        // recovery is restore-from-checkpoint into a fresh system.
        try {
            frontend().submit(reqs, results, n);
        } catch (const StorageError&) {
            faulted_ = true;
            throw;
        } catch (const IntegrityViolation&) {
            faulted_ = true;
            throw;
        }
    }

    /** Vector convenience over the pointer form; `results` is resized
     *  (its elements — including payload buffers — are reused). */
    void
    submit(const std::vector<AccessRequest>& reqs,
           std::vector<AccessResult>& results)
    {
        results.resize(reqs.size());
        submit(reqs.data(), results.data(), reqs.size());
    }

    /** Historical name for submit() (deprecated thin wrapper). */
    void
    accessBatch(const BatchRequest* reqs, FrontendResult* results,
                size_t n)
    {
        submit(reqs, results, n);
    }

    /** Historical vector form of submit() (deprecated thin wrapper). */
    void
    accessBatch(const std::vector<BatchRequest>& reqs,
                std::vector<FrontendResult>& results)
    {
        submit(reqs, results);
    }

    Frontend&
    frontend()
    {
        requireUsable();
        return *frontend_;
    }
    const Frontend&
    frontend() const
    {
        requireUsable();
        return *frontend_;
    }

    /** The storage medium under the ORAM tree(s). */
    StorageBackend& storage() { return *store_; }
    const StorageBackend& storage() const { return *store_; }

    /** Transient storage faults absorbed below the engine so far (0
     *  without fault plumbing); a growing value under a steady workload
     *  is the shard supervisor's "degraded" signal. */
    u64 storageRetries() const { return store_->transientFaultsRetried(); }

    /** True once a storage/integrity fault escaped submit() and the
     *  system fail-stopped (see submit()). */
    bool faulted() const { return faulted_; }

    /** DRAM timing model; fatal unless the backend is DRAM-timed. */
    DramModel&
    dram()
    {
        DramModel* model = store_->dramModel();
        if (model == nullptr)
            fatal("backend '", toString(store_->kind()),
                  "' has no DRAM timing model");
        return *model;
    }

    SchemeId scheme() const { return scheme_; }
    const OramSystemConfig& config() const { return cfg_; }

    /** Adversary-visible trace (collectTrace must be enabled). */
    const std::vector<TraceEvent>& trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

  private:
    /** Resolve Auto and reject unsatisfiable explicit scopes. */
    CheckpointScope resolveScope(CheckpointScope scope) const;

    void
    requireUsable() const
    {
        if (poisoned_)
            throw CheckpointError(
                "system is in a partially restored state after a failed "
                "restore; construct a fresh system and retry");
        if (faulted_)
            throw StorageError(
                "system fail-stopped after an unrecovered storage or "
                "integrity fault; restore a checkpoint into a fresh "
                "system to resume");
    }

    bool poisoned_ = false; ///< a restore failed after it began writing
    bool faulted_ = false;  ///< a fault escaped submit(); see submit()
    OramSystemConfig cfg_;
    SchemeId scheme_;
    std::unique_ptr<StorageBackend> store_;
    std::unique_ptr<StreamCipher> cipher_;
    std::unique_ptr<Frontend> frontend_;
    Mac ckptMac_; ///< snapshot authentication key (dedicated KDF label)
    std::vector<TraceEvent> trace_;
};

/**
 * The insecure baseline: LLC misses go straight to DRAM (Section 7.1.2:
 * "a DRAM access for an insecure system takes on average 58 processor
 * cycles" in the paper's setup).
 */
class InsecureMemory {
  public:
    InsecureMemory(u32 dram_channels, const LatencyModel& latency,
                   u32 controller_cycles = 15)
        : dram_(DramConfig::ddr3(dram_channels)), latency_(latency),
          controllerCycles_(controller_cycles)
    {
    }

    /** Latency of one cache-line fill/writeback in processor cycles. */
    u64
    accessCycles(u64 byte_addr, bool is_write)
    {
        return controllerCycles_ +
               latency_.psToCycles(dram_.accessSingle(byte_addr, is_write));
    }

    DramModel& dram() { return dram_; }

  private:
    DramModel dram_;
    LatencyModel latency_;
    u32 controllerCycles_;
};

} // namespace froram

#endif // FRORAM_CORE_ORAM_SYSTEM_HPP
