/**
 * @file
 * Baseline Recursive ORAM Frontend (Section 3.2; the R_X8 configuration
 * of the evaluation, following Ren et al. [26]).
 *
 * Each recursion level lives in its own physical ORAM tree: the Data
 * ORAM (ORam0) plus H-1 PosMap ORAMs, typically with smaller blocks
 * (32-byte PosMap blocks for R_X8). Every access performs a full
 * page-table-walk: on-chip PosMap, then ORam_{H-1} .. ORam_1, then the
 * Data ORAM -- there is no PLB and nothing is ever skipped.
 */
#ifndef FRORAM_CORE_RECURSIVE_FRONTEND_HPP
#define FRORAM_CORE_RECURSIVE_FRONTEND_HPP

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/frontend.hpp"
#include "core/posmap_format.hpp"
#include "core/recursion.hpp"
#include "oram/backend.hpp" // StorageMode via oram/tree_storage.hpp
#include "util/rng.hpp"

namespace froram {

/** Configuration of the Recursive baseline. */
struct RecursiveFrontendConfig {
    u64 numBlocks = 0;          ///< N data blocks
    u64 blockBytes = 64;        ///< Data ORAM block size
    u64 posmapBlockBytes = 32;  ///< PosMap ORAM block size ([26]: 32 B)
    u32 z = 4;
    u64 maxOnChipEntries = u64{1} << 17; ///< paper R_X8: 2^17 (272 KB)
    StorageMode storage = StorageMode::Encrypted;
    SeedScheme seedScheme = SeedScheme::GlobalCounter;
    LatencyModel latency{};
    u64 rngSeed = 0x5eed;
    u32 stashCapacity = 200;
    /** Bucket discipline for every tree of the hierarchy. */
    BucketSchemeKind bucketScheme = BucketSchemeKind::Path;
    u32 ringS = 0; ///< Ring dummy slots (0 = normalizeRing default)
    u32 ringA = 0; ///< Ring eviction rate (0 = normalizeRing default)
};

/** The Recursive ORAM baseline Frontend. */
class RecursiveFrontend : public Frontend {
  public:
    /**
     * @param config baseline configuration
     * @param cipher pad generator for Encrypted storage (not owned)
     * @param store shared storage backend (not owned; may be null)
     * @param trace adversary trace; events carry the tree id, which is
     *        what the PLB-insecurity demonstration (Section 4.1.2)
     *        observes
     */
    RecursiveFrontend(const RecursiveFrontendConfig& config,
                      const StreamCipher* cipher, StorageBackend* store,
                      TraceSink trace = nullptr);

    std::string name() const override;
    u64 dataBlockBytes() const override { return config_.blockBytes; }
    u64 onChipPosMapBits() const override;
    const StatSet& stats() const override { return stats_; }

    const RecursionGeometry& geometry() const { return geo_; }
    u32 numTrees() const { return geo_.h; }
    PathOramBackend& tree(u32 i) { return *trees_.at(i); }

    /** Sum of per-tree path bytes for one full recursive access. */
    u64 fullAccessBytes() const;

    void saveState(CheckpointWriter& w) const override;
    void restoreState(CheckpointReader& r) override;

  protected:
    void serviceAccess(AccessResult& res,
                       const AccessRequest& req) override;

    /** Submit-pipeline hint: the on-chip PosMap pins the FIRST tree a
     *  recursive access touches (ORam_{H-1}); prefetch that path. */
    void serviceHint(Addr addr) override;

  private:
    Leaf randomLeafFor(u32 tree) const;

    /** Read-modify(-write) the PosMap entry for child a_{i-1} inside
     *  tree i's block a_i; returns the child's old leaf. */
    Leaf walkLevel(u32 tree_level, Addr a0, FrontendResult& res);

    RecursiveFrontendConfig config_;
    PosMapFormat format_;   // Leaves format over posmapBlockBytes
    RecursionGeometry geo_;
    std::vector<OramParams> treeParams_;
    std::vector<std::unique_ptr<PathOramBackend>> trees_;
    std::vector<u64> onChip_; // leaf per ORam_{H-1} block (~0 = uninit)
    /** PosMap contents for Meta/Null modes, keyed (tree << 48 | addr). */
    std::unordered_map<u64, PosMapContent> oracle_;
    mutable Xoshiro256 rng_;
    StatSet stats_;

    static constexpr u64 kUninit = ~u64{0};
};

} // namespace froram

#endif // FRORAM_CORE_RECURSIVE_FRONTEND_HPP
