/**
 * @file
 * The Freecursive ORAM Frontend: PLB + Unified ORAM tree (Section 4),
 * optional PosMap compression (Section 5) and optional PMMAC integrity
 * verification (Section 6).
 *
 * All PosMap levels and the data blocks live in one physical ORAM tree
 * (ORamU); PosMap blocks are checked out of the tree into the PLB with
 * readrmv and appended back on eviction. The scheme matrix of Section
 * 7.1.4 maps onto the configuration:
 *
 *   P_X16   : format = Leaves,      integrity = false
 *   PC_X32  : format = Compressed,  integrity = false
 *   PI_X8   : format = FlatCounter, integrity = true
 *   PIC_X32 : format = Compressed,  integrity = true
 */
#ifndef FRORAM_CORE_UNIFIED_FRONTEND_HPP
#define FRORAM_CORE_UNIFIED_FRONTEND_HPP

#include <memory>
#include <unordered_map>

#include "core/frontend.hpp"
#include "core/plb.hpp"
#include "core/posmap_format.hpp"
#include "core/recursion.hpp"
#include "crypto/prf.hpp"
#include "oram/backend.hpp"
#include "util/rng.hpp"

namespace froram {

/** Configuration for a UnifiedFrontend and its Backend. */
struct UnifiedFrontendConfig {
    u64 numBlocks = 0;        ///< N data blocks
    u64 blockBytes = 64;      ///< B
    u32 z = 4;                ///< bucket slots
    PosMapFormat::Kind format = PosMapFormat::Kind::Compressed;
    u32 beta = 14;            ///< compressed IC width
    bool integrity = false;   ///< PMMAC on/off
    PlbConfig plb{};          ///< PLB geometry
    u64 onChipTargetBytes = 128 * 1024; ///< recurse until on-chip <= this
    StorageMode storage = StorageMode::Encrypted;
    SeedScheme seedScheme = SeedScheme::GlobalCounter;
    LatencyModel latency{};
    u64 rngSeed = 0x5eed;
    u64 macBytes = 16;        ///< PMMAC tag bytes per block
    u32 stashCapacity = 200;
    /** Bucket discipline for the unified tree (Path or Ring). */
    BucketSchemeKind bucketScheme = BucketSchemeKind::Path;
    u32 ringS = 0; ///< Ring dummy slots (0 = normalizeRing default)
    u32 ringA = 0; ///< Ring eviction rate (0 = normalizeRing default)
};

/** PLB + unified-tree Frontend (the paper's proposal). */
class UnifiedFrontend : public Frontend {
  public:
    /**
     * @param config scheme configuration
     * @param cipher pad generator for Encrypted storage (may be null for
     *        Meta/Null modes; not owned)
     * @param store shared storage backend holding tree bytes and pricing
     *        accesses (may be null for untimed RAM storage; not owned)
     * @param trace adversary-visible trace sink (may be empty)
     */
    UnifiedFrontend(const UnifiedFrontendConfig& config,
                    const StreamCipher* cipher, StorageBackend* store,
                    TraceSink trace = nullptr);

    std::string name() const override;
    u64 dataBlockBytes() const override { return config_.blockBytes; }
    u64 onChipPosMapBits() const override;
    const StatSet& stats() const override { return stats_; }

    /** @name Introspection (tests, benches) @{ */
    const RecursionGeometry& geometry() const { return geo_; }
    const PosMapFormat& format() const { return format_; }
    Plb& plb() { return plb_; }
    PathOramBackend& backend() { return *backend_; }
    const UnifiedFrontendConfig& config() const { return config_; }
    /** Append every PLB-resident block back to the stash (invariant
     *  checks: afterwards, all blocks live in stash or tree). */
    void drainPlb();
    /** @} */

    void saveState(CheckpointWriter& w) const override;
    void restoreState(CheckpointReader& r) override;

  protected:
    /** The single access hook (Sections 4-6 pipeline; see submit()). */
    void serviceAccess(AccessResult& res,
                       const AccessRequest& req) override;

    /**
     * Submit-pipeline hint: when the PosMap entry covering `addr` is
     * resident (PLB for deep hierarchies, the on-chip PosMap for
     * shallow ones), compute the leaf its data path WOULD take under
     * current state — a pure read: no PLB LRU refresh, no counter
     * bump, no trace — and issue the storage prefetch for that path.
     */
    void serviceHint(Addr addr) override;

  private:
    /** Result of touching (reading + remapping) one PosMap entry. */
    struct EntryTouch {
        Leaf oldLeaf = kNoLeaf;
        Leaf newLeaf = kNoLeaf;
        u64 oldCounter = 0;
        u64 newCounter = 0;
        bool wasCold = false;
    };

    /** Unified tree leaf count exponent. */
    u32 treeLevels() const { return params_.levels; }

    Leaf randomLeaf() { return rng_.below(params_.numLeaves()); }

    /**
     * Read + remap the PosMap entry holding the leaf of the level-
     * `child_level` block covering a0. The parent is the on-chip PosMap
     * (child_level == H-1) or a PLB-resident block (which must be
     * present).
     */
    EntryTouch touchEntryForChild(u32 child_level, Addr a0,
                                  FrontendResult& res);

    /** Entry access within a decoded PosMap block. */
    EntryTouch touchEntryIn(PosMapContent& content, u32 child_level,
                            u64 child_index, FrontendResult& res);

    /** Section 5.2.2: GC += 1, reset ICs, re-route every group member. */
    void groupRemap(PosMapContent& content, u32 child_level,
                    u64 group_first_index, FrontendResult& res);

    /** Accumulate one BackendResult into the running FrontendResult. */
    void account(FrontendResult& res, const BackendResult& r,
                 bool posmap_overhead);

    /** PMMAC verification of a fetched payload (Section 6.2.1). */
    void verifyPayload(bool found, const std::vector<u8>& data, Addr uaddr,
                       u64 counter, bool expect_cold, FrontendResult& res);

    /** MAC tag written into a payload's trailing macBytes. */
    void writeTag(std::vector<u8>& payload, u64 counter, Addr uaddr);

    /** Obtain decoded PosMap content for a fetched block. */
    PosMapContent contentOf(const BackendResult& r, Addr uaddr);

    /** Insert a fetched PosMap block into the PLB; append any victim. */
    void insertIntoPlb(Addr uaddr, const EntryTouch& touch,
                       PosMapContent content, FrontendResult& res);

    /** Step-3/4 data-block transform body (verify, apply write,
     *  re-tag, copy out); reads its per-access inputs from xctx_. */
    void applyDataXform(Block& blk, bool found);

    /** Serialize a PLB entry back into a stash block and append it. */
    void appendEvicted(PlbEntry entry, FrontendResult& res);

    UnifiedFrontendConfig config_;
    RecursionGeometry geo_;
    PosMapFormat format_;
    OramParams params_;     // unified tree geometry
    std::unique_ptr<PathOramBackend> backend_;
    Plb plb_;
    Prf prf_;
    Mac mac_;
    Xoshiro256 rng_;
    /** On-chip PosMap: leaf (Leaves format) or counter per top block. */
    std::vector<u64> onChip_;
    /** PosMap contents for Meta/Null storage modes. */
    std::unordered_map<Addr, PosMapContent> oracle_;
    /** Reusable backend-access result: keeps the per-access payload
     *  copy-out from reallocating on every step-2/step-3 access. */
    BackendResult bres_;
    /** Per-access inputs of applyDataXform, staged by serviceAccess. */
    struct XformCtx {
        AccessResult* res = nullptr;
        const EntryTouch* touch = nullptr;
        Addr a0 = 0;
        bool isWrite = false;
        bool carries = false;
        const std::vector<u8>* writeData = nullptr;
    };
    XformCtx xctx_;
    /** Constructed once with a single `this` capture (fits the
     *  std::function small-buffer), so the hot path never heap-
     *  allocates a fresh closure per access. */
    PathOramBackend::BlockTransform dataXform_ =
        [this](Block& blk, bool found) { applyDataXform(blk, found); };
    StatSet stats_;

    static constexpr u64 kOnChipUninit = ~u64{0};
};

} // namespace froram

#endif // FRORAM_CORE_UNIFIED_FRONTEND_HPP
