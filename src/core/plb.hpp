/**
 * @file
 * PosMap Lookaside Buffer (Section 4).
 *
 * A conventional set-associative hardware cache, except that it caches
 * whole PosMap blocks (akin to caching page tables, not single
 * translations -- Section 4.1.4). Cached blocks are checked out of the
 * ORAM tree via readrmv and carry their current leaf (and, for counter
 * formats, their current access count) so that an evicted block can be
 * appended back to the stash (Section 4.2.3).
 */
#ifndef FRORAM_CORE_PLB_HPP
#define FRORAM_CORE_PLB_HPP

#include <optional>
#include <vector>

#include "core/posmap_format.hpp"
#include "oram/types.hpp"
#include "util/stats.hpp"

namespace froram {

/** One PLB-resident PosMap block. */
struct PlbEntry {
    bool valid = false;
    Addr addr = kDummyAddr; ///< unified address (i || a_i)
    Leaf leaf = kNoLeaf;    ///< current leaf in the unified tree
    u64 counter = 0;        ///< current PMMAC counter for this block
    PosMapContent content;  ///< decoded entries
    u64 lastUse = 0;        ///< LRU timestamp
};

/** Configuration of a PLB. */
struct PlbConfig {
    u64 capacityBytes = 8 * 1024; ///< paper default: 8 KB (Section 7.2)
    u64 blockBytes = 64;          ///< ORAM block size
    u32 ways = 1;                 ///< 1 = direct-mapped (paper default)
};

/** The PLB cache. */
class Plb {
  public:
    explicit Plb(const PlbConfig& config);

    /**
     * Look up the PosMap block with unified address `addr`.
     * @return pointer to the entry on hit (stats updated), else nullptr
     */
    PlbEntry* lookup(Addr addr);

    /** Is `addr` present? (no stats / LRU side effects) */
    bool probe(Addr addr) const;

    /**
     * Read-only lookup with NO stats and NO LRU refresh: the batched
     * access engine peeks at resident PosMap blocks to compute prefetch
     * hints, which must leave the PLB's architectural state (and hence
     * every future eviction choice) untouched.
     */
    const PlbEntry* peek(Addr addr) const;

    /**
     * Internal lookup used by the Frontend walk: refreshes LRU but does
     * not count toward hit/miss statistics (those model the architectural
     * "PLB lookup loop" of Section 4.2.4 only).
     */
    PlbEntry* find(Addr addr);

    /**
     * Insert a block, possibly evicting the set's LRU victim.
     * @return the evicted entry, to be appended to the ORAM stash
     */
    std::optional<PlbEntry> insert(PlbEntry entry);

    /**
     * Remove and return every valid entry (used at drain/teardown so the
     * checked-out blocks can be appended back).
     */
    std::vector<PlbEntry> drain();

    u64 numEntries() const { return static_cast<u64>(sets_) * ways_; }
    u32 ways() const { return ways_; }
    const StatSet& stats() const { return stats_; }
    StatSet& stats() { return stats_; }

    /** @name Checkpoint/restore (exact set/way/LRU layout) @{ */
    void saveState(CheckpointWriter& w) const;
    void restoreState(CheckpointReader& r);
    /** @} */

  private:
    u64 setIndex(Addr addr) const { return addr % sets_; }

    u64 sets_;
    u32 ways_;
    std::vector<PlbEntry> entries_; // sets_ x ways_, row-major
    u64 clock_ = 0;
    StatSet stats_;
};

} // namespace froram

#endif // FRORAM_CORE_PLB_HPP
