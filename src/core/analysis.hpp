/**
 * @file
 * Closed-form bandwidth analysis of Recursive ORAM (Figure 3 and the
 * asymptotic discussion of Section 3.2.1). Every quantity here is derived
 * from the same OramParams/RecursionGeometry the simulator uses, so the
 * analytic and simulated numbers are mutually consistent.
 */
#ifndef FRORAM_CORE_ANALYSIS_HPP
#define FRORAM_CORE_ANALYSIS_HPP

#include <vector>

#include "core/recursion.hpp"
#include "oram/params.hpp"

namespace froram {

/** Byte breakdown of one full Recursive ORAM access. */
struct RecursionBandwidth {
    u32 h = 1;                     ///< ORAM count (incl. Data ORAM)
    std::vector<u64> treeBytes;    ///< read+write bytes per tree, [0]=data
    u64 dataBytes = 0;             ///< Data ORAM bytes
    u64 posmapBytes = 0;           ///< all PosMap ORAMs combined
    u64 onChipPosMapBits = 0;

    u64 totalBytes() const { return dataBytes + posmapBytes; }

    /** Fraction of bytes spent on PosMap ORAM lookups (Figure 3 y-axis). */
    double
    posmapFraction() const
    {
        const u64 t = totalBytes();
        return t == 0 ? 0.0
                      : static_cast<double>(posmapBytes) /
                            static_cast<double>(t);
    }
};

/**
 * Analyze a Recursive ORAM configuration.
 *
 * @param capacity_bytes Data ORAM capacity
 * @param data_block_bytes Data ORAM block size
 * @param posmap_block_bytes PosMap ORAM block size (X = blocks/4 leaves)
 * @param z bucket slots
 * @param onchip_target_bytes recurse until the on-chip PosMap fits this
 */
inline RecursionBandwidth
analyzeRecursiveBandwidth(u64 capacity_bytes, u64 data_block_bytes,
                          u64 posmap_block_bytes, u32 z,
                          u64 onchip_target_bytes)
{
    RecursionBandwidth out;
    const u64 n = capacity_bytes / data_block_bytes;
    const u32 x = static_cast<u32>(
        u64{1} << log2Floor(std::max<u64>(posmap_block_bytes / 4, 2)));

    // Build the level sizes with the same stop rule as the simulator:
    // stop when the on-chip PosMap (entries x that tree's leaf width)
    // fits the target.
    std::vector<u64> levels{n};
    auto leaf_bits = [&](u64 blocks) {
        const u32 lg_n = log2Ceil(std::max<u64>(blocks, 2));
        const u32 lg_z = log2Floor(z);
        return lg_n > lg_z ? lg_n - lg_z : 1;
    };
    while (levels.back() * leaf_bits(levels.back()) >
           onchip_target_bytes * 8) {
        levels.push_back(divCeil(levels.back(), x));
    }
    out.h = static_cast<u32>(levels.size());
    out.onChipPosMapBits = levels.back() * leaf_bits(levels.back());

    for (u32 i = 0; i < out.h; ++i) {
        OramParams p;
        p.numBlocks = levels[i];
        p.blockBytes = i == 0 ? data_block_bytes : posmap_block_bytes;
        p.z = z;
        p.levels = leaf_bits(levels[i]);
        const u64 bytes = 2 * p.pathBytes(); // path read + path write
        out.treeBytes.push_back(bytes);
        if (i == 0)
            out.dataBytes += bytes;
        else
            out.posmapBytes += bytes;
    }
    return out;
}

} // namespace froram

#endif // FRORAM_CORE_ANALYSIS_HPP
