#include "core/unified_frontend.hpp"

#include <cstring>
#include <map>

namespace froram {
namespace {

u64
maxOnChipEntries(const UnifiedFrontendConfig& cfg)
{
    // Estimate bits per on-chip entry: 64-bit counters under PMMAC,
    // 32-bit uncompressed leaves otherwise (the precise leaf width is
    // reported by onChipPosMapBits() for area accounting).
    const u64 entry_bits = cfg.integrity ? 64 : 32;
    const u64 entries = cfg.onChipTargetBytes * 8 / entry_bits;
    return entries == 0 ? 1 : entries;
}

OramParams
makeParams(const UnifiedFrontendConfig& cfg, const RecursionGeometry& geo)
{
    OramParams p;
    p.numBlocks = geo.totalBlocks;
    p.blockBytes = cfg.blockBytes;
    p.z = cfg.z;
    p.macBytes = cfg.integrity ? cfg.macBytes : 0;
    p.stashCapacity = cfg.stashCapacity;
    const u32 lg_n = log2Ceil(p.numBlocks);
    const u32 lg_z = log2Floor(cfg.z);
    p.levels = lg_n > lg_z ? lg_n - lg_z : 1;
    p.bucketScheme = cfg.bucketScheme;
    p.ringS = cfg.ringS;
    p.ringA = cfg.ringA;
    p.normalizeRing();
    return p;
}

std::unique_ptr<TreeLayout>
makeLayout(const OramParams& params, StorageBackend* store)
{
    // Pack subtrees into one DRAM row per channel group ([26]).
    return std::make_unique<SubtreeLayout>(
        params.levels, params.bucketPhysBytes(), layoutUnitBytes(store));
}

} // namespace

UnifiedFrontend::UnifiedFrontend(const UnifiedFrontendConfig& config,
                                 const StreamCipher* cipher,
                                 StorageBackend* store, TraceSink trace)
    : config_(config),
      format_(config.format, config.blockBytes, config.beta),
      params_(),
      plb_([&] {
          PlbConfig pc = config.plb;
          pc.blockBytes = config.blockBytes;
          return pc;
      }()),
      rng_(config.rngSeed),
      stats_("frontend")
{
    if (config_.numBlocks == 0)
        fatal("UnifiedFrontend needs at least one data block");
    if (config_.integrity && !format_.hasCounters())
        fatal("PMMAC requires a counter-based PosMap format");

    geo_ = RecursionGeometry::compute(config_.numBlocks, format_.x(),
                                      maxOnChipEntries(config_));
    params_ = makeParams(config_, geo_);
    params_.validate();
    if (format_.serializedBytes() > config_.blockBytes)
        panic("PosMap content does not fit the block payload");
    if (!format_.hasCounters() && params_.levels > 31)
        fatal("Leaves PosMap format supports at most 31 tree levels");

    BackendConfig bc;
    bc.params = params_;
    bc.treeId = 0;
    bc.traceSink = std::move(trace);
    bc.schemeSeed = config_.rngSeed ^ 0x52494e47ULL; // "RING" domain
    backend_ = std::make_unique<PathOramBackend>(
        bc,
        makeTreeStorage(config_.storage, params_, cipher,
                        config_.seedScheme, store),
        makeLayout(params_, store), store);

    onChip_.assign(geo_.onChipEntries,
                   config_.integrity ? 0 : kOnChipUninit);

    // Keys for PRF_K and MAC_K, derived deterministically from the seed.
    Xoshiro256 kdf(config_.rngSeed ^ 0xf00dfeedULL);
    u8 key[16];
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<u8>(kdf.next());
    prf_.setKey(key);
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<u8>(kdf.next());
    mac_.setKey(key);
}

std::string
UnifiedFrontend::name() const
{
    std::string n = "P";
    if (config_.integrity)
        n += "I";
    if (format_.kind() == PosMapFormat::Kind::Compressed)
        n += "C";
    return n + "_X" + std::to_string(format_.x());
}

u64
UnifiedFrontend::onChipPosMapBits() const
{
    const u64 entry_bits = config_.integrity ? 64 : params_.levels;
    return geo_.onChipEntries * entry_bits;
}

void
UnifiedFrontend::account(FrontendResult& res, const BackendResult& r,
                         bool posmap_overhead)
{
    res.bytesMoved += r.bytesMoved;
    if (posmap_overhead)
        res.posmapBytes += r.bytesMoved;
    res.backendAccesses += 1;
    res.cycles += config_.latency.backendCycles +
                  config_.latency.aesPipelineCycles +
                  config_.latency.psToCycles(r.dramPs);
}

void
UnifiedFrontend::verifyPayload(bool found, const std::vector<u8>& data,
                               Addr uaddr, u64 counter, bool expect_cold,
                               FrontendResult& res)
{
    if (!config_.integrity || config_.storage != StorageMode::Encrypted)
        return;
    if (!found) {
        if (!expect_cold)
            throw IntegrityViolation(
                "PMMAC: block suppressed (expected counter " +
                std::to_string(counter) + " for addr " +
                std::to_string(uaddr) + ")");
        return;
    }
    const u64 body = config_.blockBytes;
    FRORAM_ASSERT(data.size() >= body + config_.macBytes,
                  "fetched block missing MAC field");
    Mac::Tag stored;
    std::memcpy(stored.data(), data.data() + body, Mac::kTagBytes);
    if (!mac_.verify(stored, counter, uaddr, data.data(), body))
        throw IntegrityViolation("PMMAC: MAC mismatch for addr " +
                                 std::to_string(uaddr) + " at counter " +
                                 std::to_string(counter));
    res.cycles += config_.latency.sha3Cycles;
    stats_.inc("macChecks");
}

void
UnifiedFrontend::writeTag(std::vector<u8>& payload, u64 counter, Addr uaddr)
{
    const u64 body = config_.blockBytes;
    FRORAM_ASSERT(payload.size() >= body + config_.macBytes,
                  "payload missing MAC field");
    const Mac::Tag tag = mac_.compute(counter, uaddr, payload.data(), body);
    std::memcpy(payload.data() + body, tag.data(), Mac::kTagBytes);
    stats_.inc("macUpdates");
}

PosMapContent
UnifiedFrontend::contentOf(const BackendResult& r, Addr uaddr)
{
    if (config_.storage != StorageMode::Encrypted) {
        auto it = oracle_.find(uaddr);
        if (it != oracle_.end()) {
            PosMapContent c = std::move(it->second);
            oracle_.erase(it);
            return c;
        }
        return format_.makeFresh();
    }
    if (!r.found)
        return format_.makeFresh();
    return format_.deserialize(r.block.data.data());
}

void
UnifiedFrontend::appendEvicted(PlbEntry entry, FrontendResult& res)
{
    Block blk;
    blk.addr = entry.addr;
    blk.leaf = entry.leaf;
    if (config_.storage == StorageMode::Encrypted) {
        blk.data.assign(params_.storedBlockBytes(), 0);
        format_.serialize(entry.content, blk.data.data());
        if (config_.integrity)
            writeTag(blk.data, entry.counter, entry.addr);
    } else {
        oracle_[entry.addr] = std::move(entry.content);
    }
    backend_->append(std::move(blk));
    stats_.inc("plbAppends");
}

void
UnifiedFrontend::insertIntoPlb(Addr uaddr, const EntryTouch& touch,
                               PosMapContent content, FrontendResult& res)
{
    PlbEntry e;
    e.addr = uaddr;
    e.leaf = touch.newLeaf;
    e.counter = touch.newCounter;
    e.content = std::move(content);
    auto victim = plb_.insert(std::move(e));
    if (victim.has_value())
        appendEvicted(std::move(*victim), res);
}

void
UnifiedFrontend::drainPlb()
{
    FrontendResult scratch;
    for (auto& e : plb_.drain())
        appendEvicted(std::move(e), scratch);
}

void
UnifiedFrontend::saveState(CheckpointWriter& w) const
{
    w.begin(ckpt::kTagFrontend);
    w.putU32(1); // frontend kind: unified
    w.begin(ckpt::kTagPosMap);
    w.putU64(onChip_.size());
    for (const u64 v : onChip_)
        w.putU64(v);
    w.end();
    w.begin(ckpt::kTagRng);
    u64 rng[4];
    rng_.saveState(rng);
    for (const u64 v : rng)
        w.putU64(v);
    w.end();
    plb_.saveState(w);
    w.begin(ckpt::kTagOracle);
    const std::map<Addr, const PosMapContent*> sorted = [&] {
        std::map<Addr, const PosMapContent*> m;
        for (const auto& [addr, content] : oracle_)
            m.emplace(addr, &content);
        return m;
    }();
    w.putU64(sorted.size());
    for (const auto& [addr, content] : sorted) {
        w.putU64(addr);
        content->saveState(w);
    }
    w.end();
    backend_->saveState(w);
    w.end();
}

void
UnifiedFrontend::restoreState(CheckpointReader& r)
{
    r.enter(ckpt::kTagFrontend);
    if (r.getU32() != 1)
        throw CheckpointError("snapshot holds a different frontend kind");
    r.enter(ckpt::kTagPosMap);
    if (r.getU64() != onChip_.size())
        throw CheckpointError(
            "on-chip PosMap size differs from the checkpointed one");
    for (u64& v : onChip_)
        v = r.getU64();
    r.exit();
    r.enter(ckpt::kTagRng);
    u64 rng[4];
    for (u64& v : rng)
        v = r.getU64();
    rng_.restoreState(rng);
    r.exit();
    plb_.restoreState(r);
    r.enter(ckpt::kTagOracle);
    oracle_.clear();
    const u64 oracle_count = r.getU64();
    for (u64 i = 0; i < oracle_count; ++i) {
        const Addr addr = r.getU64();
        oracle_[addr].restoreState(r);
    }
    r.exit();
    backend_->restoreState(r);
    r.exit();
}

UnifiedFrontend::EntryTouch
UnifiedFrontend::touchEntryIn(PosMapContent& content, u32 child_level,
                              u64 child_index, FrontendResult& res)
{
    const u32 j = static_cast<u32>(child_index & (format_.x() - 1));
    const Addr child_uaddr = geo_.base[child_level] + child_index;
    EntryTouch t;
    if (format_.kind() == PosMapFormat::Kind::Leaves) {
        t.wasCold = content.leaves[j] == PosMapContent::kUninitLeaf;
        t.oldLeaf = t.wasCold ? randomLeaf() : content.leaves[j];
        t.newLeaf = randomLeaf();
        content.leaves[j] = static_cast<u32>(t.newLeaf);
        return t;
    }
    if (format_.incrementWouldOverflow(content, j)) {
        groupRemap(content, child_level, child_index & ~u64{format_.x() - 1},
                   res);
    }
    t.oldCounter = format_.currentCounter(content, j);
    t.wasCold = t.oldCounter == 0;
    t.oldLeaf = prf_.leafFor(child_uaddr, t.oldCounter, treeLevels());
    format_.increment(content, j);
    t.newCounter = format_.currentCounter(content, j);
    t.newLeaf = prf_.leafFor(child_uaddr, t.newCounter, treeLevels());
    res.cycles += 2 * config_.latency.prfCycles;
    return t;
}

void
UnifiedFrontend::groupRemap(PosMapContent& content, u32 child_level,
                            u64 group_first_index, FrontendResult& res)
{
    FRORAM_ASSERT(format_.kind() == PosMapFormat::Kind::Compressed,
                  "group remap is Compressed-only");
    stats_.inc("groupRemaps");
    const u64 old_gc = content.gc;
    const u64 new_counter = (old_gc + 1) << format_.beta();

    for (u32 m = 0; m < format_.x(); ++m) {
        const u64 idx = group_first_index + m;
        if (idx >= geo_.levelBlocks[child_level])
            break;
        const Addr uaddr = geo_.base[child_level] + idx;
        const u64 old_counter = (old_gc << format_.beta()) | content.ic[m];
        const Leaf new_leaf =
            prf_.leafFor(uaddr, new_counter, treeLevels());
        res.cycles += 2 * config_.latency.prfCycles;

        // A PLB-resident group member is relabelled in place; it will be
        // re-tagged with its carried counter when evicted.
        if (child_level >= 1) {
            if (PlbEntry* e = plb_.find(uaddr)) {
                e->leaf = new_leaf;
                e->counter = new_counter;
                continue;
            }
        }

        const Leaf old_leaf =
            prf_.leafFor(uaddr, old_counter, treeLevels());
        BackendResult r =
            backend_->access(Op::ReadRmv, uaddr, old_leaf, kNoLeaf);
        account(res, r, /*posmap_overhead=*/true);
        verifyPayload(r.found, r.block.data, uaddr, old_counter,
                      old_counter == 0, res);
        Block blk = std::move(r.block);
        blk.addr = uaddr;
        blk.leaf = new_leaf;
        if (config_.integrity && config_.storage == StorageMode::Encrypted)
            writeTag(blk.data, new_counter, uaddr);
        backend_->append(std::move(blk));
        stats_.inc("groupRemapAccesses");
    }
    format_.bumpGroupCounter(content);
}

UnifiedFrontend::EntryTouch
UnifiedFrontend::touchEntryForChild(u32 child_level, Addr a0,
                                    FrontendResult& res)
{
    const Addr child_uaddr = geo_.unifiedAddr(child_level, a0);
    const u32 parent_level = child_level + 1;

    if (parent_level == geo_.h) {
        // Parent is the on-chip PosMap (root of trust).
        const u64 idx = geo_.levelAddr(child_level, a0);
        FRORAM_ASSERT(idx < onChip_.size(), "on-chip index out of range");
        u64& slot = onChip_[idx];
        EntryTouch t;
        if (config_.integrity) {
            t.oldCounter = slot;
            t.wasCold = slot == 0;
            t.oldLeaf =
                prf_.leafFor(child_uaddr, t.oldCounter, treeLevels());
            slot += 1;
            t.newCounter = slot;
            t.newLeaf =
                prf_.leafFor(child_uaddr, t.newCounter, treeLevels());
            res.cycles += 2 * config_.latency.prfCycles;
        } else {
            t.wasCold = slot == kOnChipUninit;
            t.oldLeaf = t.wasCold ? randomLeaf() : slot;
            t.newLeaf = randomLeaf();
            slot = t.newLeaf;
        }
        return t;
    }

    PlbEntry* parent = plb_.find(geo_.unifiedAddr(parent_level, a0));
    FRORAM_ASSERT(parent != nullptr, "walk parent must be PLB-resident");
    return touchEntryIn(parent->content, child_level,
                        geo_.levelAddr(child_level, a0), res);
}

void
UnifiedFrontend::serviceHint(Addr a0)
{
    if (!backend_->prefetchUseful() || a0 >= geo_.levelBlocks[0])
        return;
    const Addr uaddr0 = geo_.unifiedAddr(0, a0);
    const u64 idx = geo_.levelAddr(0, a0);
    Leaf leaf = kNoLeaf;
    if (geo_.h == 1) {
        // Parent is the on-chip PosMap.
        const u64 slot = onChip_[idx];
        if (config_.integrity)
            leaf = prf_.leafFor(uaddr0, slot, treeLevels());
        else if (slot != kOnChipUninit)
            leaf = slot;
    } else if (const PlbEntry* parent =
                   plb_.peek(geo_.unifiedAddr(1, a0))) {
        const u32 j = static_cast<u32>(idx & (format_.x() - 1));
        if (format_.kind() == PosMapFormat::Kind::Leaves) {
            if (parent->content.leaves[j] != PosMapContent::kUninitLeaf)
                leaf = parent->content.leaves[j];
        } else {
            leaf = prf_.leafFor(
                uaddr0, format_.currentCounter(parent->content, j),
                treeLevels());
        }
    }
    // A miss (or an uninitialized entry) simply yields no hint; the
    // access itself will fetch the parent chain as usual.
    if (leaf != kNoLeaf)
        backend_->prefetchPath(leaf);
}

void
UnifiedFrontend::serviceAccess(AccessResult& res, const AccessRequest& req)
{
    const Addr a0 = req.addr;
    const bool is_write = req.isWrite;
    const std::vector<u8>* const write_data = req.writeData;
    FRORAM_ASSERT(a0 < geo_.levelBlocks[0], "data address out of range");
    res.reset();
    stats_.inc("accesses");
    res.cycles += config_.latency.frontendCycles;

    // Step 1 (Section 4.2.4): PLB lookup loop. Find the smallest i such
    // that block a_{i+1} (holding the leaf of a_i) is PLB-resident.
    u32 start = geo_.h - 1;
    for (u32 i = 0; i + 1 < geo_.h; ++i) {
        if (plb_.lookup(geo_.unifiedAddr(i + 1, a0)) != nullptr) {
            start = i;
            break;
        }
    }
    if (start == 0 && geo_.h > 1)
        stats_.inc("fullPlbHits");

    // Step 2: fetch the missing PosMap blocks a_start .. a_1, refilling
    // the PLB (evictions are appended back to the stash).
    for (u32 i = start; i >= 1; --i) {
        const EntryTouch t = touchEntryForChild(i, a0, res);
        const Addr uaddr = geo_.unifiedAddr(i, a0);
        backend_->accessInto(bres_, Op::ReadRmv, uaddr, t.oldLeaf,
                             kNoLeaf);
        account(res, bres_, /*posmap_overhead=*/true);
        verifyPayload(bres_.found, bres_.block.data, uaddr, t.oldCounter,
                      t.wasCold, res);
        insertIntoPlb(uaddr, t, contentOf(bres_, uaddr), res);
    }

    // Step 3: the data block access. Verification and re-tagging run in
    // the Step-4 transform, while the block is still stash-resident.
    const EntryTouch t = touchEntryForChild(0, a0, res);
    res.coldMiss = t.wasCold;
    xctx_ = {&res, &t, a0, is_write,
             config_.storage == StorageMode::Encrypted, write_data};
    backend_->accessInto(bres_, is_write ? Op::Write : Op::Read, a0,
                         t.oldLeaf, t.newLeaf, nullptr, dataXform_);
    account(res, bres_, /*posmap_overhead=*/false);

    if (t.wasCold)
        stats_.inc("coldMisses");
    stats_.inc("bytesMoved", res.bytesMoved);
    stats_.inc("posmapBytes", res.posmapBytes);
    stats_.inc("backendAccesses", res.backendAccesses);
    stats_.inc("cycles", res.cycles);
}

void
UnifiedFrontend::applyDataXform(Block& blk, bool found)
{
    const XformCtx& c = xctx_;
    verifyPayload(found, blk.data, c.a0, c.touch->oldCounter,
                  c.touch->wasCold, *c.res);
    if (!c.carries)
        return;
    if (c.isWrite) {
        // assign + resize reuse the pooled block's reserved buffer;
        // replacing the vector would reallocate on every write.
        if (c.writeData != nullptr)
            blk.data.assign(c.writeData->begin(), c.writeData->end());
        else
            blk.data.clear();
        blk.data.resize(params_.storedBlockBytes(), 0);
    }
    if (config_.integrity)
        writeTag(blk.data, c.touch->newCounter, c.a0);
    c.res->data.assign(blk.data.begin(),
                       blk.data.begin() +
                           static_cast<long>(config_.blockBytes));
}

} // namespace froram
