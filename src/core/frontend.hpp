/**
 * @file
 * ORAM Frontend interface and the hardware latency model of Table 1.
 *
 * A Frontend implements Step 1 of the Path ORAM access (the PosMap
 * machinery); implementations are the paper's schemes:
 *   - FlatFrontend      : whole PosMap on-chip (Phantom, Section 7.1.6)
 *   - RecursiveFrontend : baseline Recursive ORAM (R_X*, Section 3.2)
 *   - UnifiedFrontend   : PLB + unified tree, optional PosMap compression
 *                         and PMMAC (P/PC/PI/PIC_*, Sections 4-6)
 */
#ifndef FRORAM_CORE_FRONTEND_HPP
#define FRORAM_CORE_FRONTEND_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "oram/types.hpp"
#include "util/stats.hpp"

namespace froram {

/** Fixed hardware latencies, from Table 1 / Section 7.2 measurements. */
struct LatencyModel {
    double procGHz = 1.3;      ///< processor clock (Table 1)
    u32 frontendCycles = 20;   ///< per frontend invocation
    u32 backendCycles = 30;    ///< per Backend access (fixed overhead)
    u32 aesPipelineCycles = 21; ///< decrypt pipeline fill per path
    u32 sha3Cycles = 18;       ///< PMMAC hash check per access
    u32 prfCycles = 12;        ///< one PRF_K leaf derivation

    /** Convert DRAM picoseconds to processor cycles. */
    u64
    psToCycles(u64 ps) const
    {
        return static_cast<u64>(static_cast<double>(ps) * procGHz / 1000.0);
    }
};

/** Outcome of one Frontend access (one LLC miss serviced). */
struct AccessResult {
    u64 cycles = 0;         ///< end-to-end latency in processor cycles
    u64 bytesMoved = 0;     ///< total DRAM bytes (path reads + writes)
    u64 posmapBytes = 0;    ///< subset attributable to PosMap machinery
    u32 backendAccesses = 0; ///< tree accesses performed
    bool coldMiss = false;  ///< first-ever touch of the data block
    std::vector<u8> data;   ///< read payload (payload-carrying mode only)

    /** Clear for reuse, keeping the payload buffer's capacity. */
    void
    reset()
    {
        cycles = 0;
        bytesMoved = 0;
        posmapBytes = 0;
        backendAccesses = 0;
        coldMiss = false;
        data.clear();
    }
};

/** Historical name for AccessResult (pre-submit() API). */
using FrontendResult = AccessResult;

/**
 * One request of the unified access surface (Frontend::submit).
 * Plain-data and non-owning, so callers can stage request arrays
 * without per-request allocation.
 */
struct AccessRequest {
    Addr addr = 0;
    bool isWrite = false;
    /** Write payload (nullptr keeps zeros); not owned. */
    const std::vector<u8>* writeData = nullptr;
    /**
     * Advisory entry: issue a storage prefetch for `addr`'s current
     * path instead of performing an access. Never touches ORAM state,
     * the trace, statistics or the timing plane; its result slot is
     * reset and carries no data.
     */
    bool prefetchOnly = false;
};

/** Historical name for AccessRequest (pre-submit() API). */
using BatchRequest = AccessRequest;

/**
 * Abstract ORAM Frontend: services LLC miss/eviction requests.
 *
 * The access surface is submit(): an ordered span of AccessRequest
 * entries serviced exactly as sequential single accesses would be —
 * results, adversary trace and all trusted state are bit-identical to
 * the one-by-one path — while overlapping request i+1's storage fetch
 * (an advisory serviceHint) with request i's decrypt/evict compute.
 * Implementations plug in via the protected serviceAccess/serviceHint
 * hooks; the legacy access/accessInto/accessBatch/prefetchHint entry
 * points are thin non-virtual wrappers kept for source compatibility.
 */
class Frontend {
  public:
    virtual ~Frontend() = default;

    /**
     * Service `n` requests in submission order. Semantically pure
     * pipelining: outcomes are bit-identical to `n` sequential
     * single-request submits. Before each real request runs, the NEXT
     * request's path prefetch is issued via serviceHint(), so on a
     * faulting backend (mmap) the kernel's readahead runs under the
     * current request's cipher and eviction work. Entries flagged
     * prefetchOnly only issue their hint (their result slot is reset).
     * Single-threaded; a thrown error (e.g. IntegrityViolation) leaves
     * requests past the throwing one unprocessed.
     */
    virtual void
    submit(const AccessRequest* reqs, AccessResult* results, size_t n)
    {
        for (size_t i = 0; i < n; ++i) {
            if (reqs[i].prefetchOnly) {
                serviceHint(reqs[i].addr);
                results[i].reset();
                continue;
            }
            if (i + 1 < n)
                serviceHint(reqs[i + 1].addr);
            serviceAccess(results[i], reqs[i]);
        }
    }

    /** Vector convenience overload of submit(). */
    void
    submit(const std::vector<AccessRequest>& reqs,
           std::vector<AccessResult>& results)
    {
        results.resize(reqs.size());
        submit(reqs.data(), results.data(), reqs.size());
    }

    /**
     * Service one request for data block `addr`.
     * Thin wrapper over submit(); prefer staging AccessRequests.
     * @param addr data block address in [0, N)
     * @param is_write true for an LLC dirty eviction
     * @param write_data payload for writes (nullptr keeps zeros)
     */
    FrontendResult
    access(Addr addr, bool is_write,
           const std::vector<u8>* write_data = nullptr)
    {
        AccessResult res;
        serviceAccess(res, {addr, is_write, write_data, false});
        return res;
    }

    /**
     * Reusable-result variant of access(): identical outcome, but the
     * caller's `res` — including its payload buffer — is reset and
     * reused, so a warmed steady-state caller (a shard worker driving
     * one access after another) performs no per-access allocation for
     * the result. Thin wrapper over the serviceAccess hook.
     */
    void
    accessInto(FrontendResult& res, Addr addr, bool is_write,
               const std::vector<u8>* write_data = nullptr)
    {
        serviceAccess(res, {addr, is_write, write_data, false});
    }

    /** Historical name for submit() (deprecated thin wrapper). */
    void
    accessBatch(const BatchRequest* reqs, FrontendResult* results,
                size_t n)
    {
        submit(reqs, results, n);
    }

    /** Historical name for an advisory serviceHint() (deprecated thin
     *  wrapper); see AccessRequest::prefetchOnly for the submit form. */
    void prefetchHint(Addr addr) { serviceHint(addr); }

    /** Scheme name for reports (e.g. "PC_X32"). */
    virtual std::string name() const = 0;

    /** ORAM data block size in bytes (the unit access() addresses). */
    virtual u64 dataBlockBytes() const = 0;

    /** On-chip PosMap size in bits (area accounting). */
    virtual u64 onChipPosMapBits() const = 0;

    virtual const StatSet& stats() const = 0;

    /** @name Checkpoint/restore
     *
     * Serialize/reload the complete trusted frontend state: on-chip
     * PosMap, PLB, recursion metadata, RNG, and the owned Backend(s)
     * (stash + tree-storage trusted residue). Statistics counters are
     * monitoring-only and restart at zero after a restore.
     * @{ */
    virtual void saveState(CheckpointWriter& w) const = 0;
    virtual void restoreState(CheckpointReader& r) = 0;
    /** @} */

  protected:
    /**
     * Service one real request into `res` (reset first, reusing its
     * payload buffer's capacity). The single implementation hook every
     * access entry point funnels through.
     */
    virtual void serviceAccess(AccessResult& res,
                               const AccessRequest& req) = 0;

    /**
     * Issue an advisory storage prefetch for the path an access to
     * `addr` would take under the CURRENT PosMap state, when that leaf
     * is determinable without any state change (PLB/on-chip resident).
     * A stale or impossible guess is harmless — the hint never touches
     * ORAM state, the trace, statistics or the timing plane, which is
     * what makes the submit pipeline's overlap semantics-free. Hints
     * never throw storage faults either: they bottom out in backend
     * prefetch(), which is advisory by contract (fault injection only
     * delays it, never fails it). Default: no-op.
     */
    virtual void serviceHint(Addr addr) { (void)addr; }
};

} // namespace froram

#endif // FRORAM_CORE_FRONTEND_HPP
