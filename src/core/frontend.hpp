/**
 * @file
 * ORAM Frontend interface and the hardware latency model of Table 1.
 *
 * A Frontend implements Step 1 of the Path ORAM access (the PosMap
 * machinery); implementations are the paper's schemes:
 *   - FlatFrontend      : whole PosMap on-chip (Phantom, Section 7.1.6)
 *   - RecursiveFrontend : baseline Recursive ORAM (R_X*, Section 3.2)
 *   - UnifiedFrontend   : PLB + unified tree, optional PosMap compression
 *                         and PMMAC (P/PC/PI/PIC_*, Sections 4-6)
 */
#ifndef FRORAM_CORE_FRONTEND_HPP
#define FRORAM_CORE_FRONTEND_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "oram/types.hpp"
#include "util/stats.hpp"

namespace froram {

/** Fixed hardware latencies, from Table 1 / Section 7.2 measurements. */
struct LatencyModel {
    double procGHz = 1.3;      ///< processor clock (Table 1)
    u32 frontendCycles = 20;   ///< per frontend invocation
    u32 backendCycles = 30;    ///< per Backend access (fixed overhead)
    u32 aesPipelineCycles = 21; ///< decrypt pipeline fill per path
    u32 sha3Cycles = 18;       ///< PMMAC hash check per access
    u32 prfCycles = 12;        ///< one PRF_K leaf derivation

    /** Convert DRAM picoseconds to processor cycles. */
    u64
    psToCycles(u64 ps) const
    {
        return static_cast<u64>(static_cast<double>(ps) * procGHz / 1000.0);
    }
};

/** Outcome of one Frontend access (one LLC miss serviced). */
struct FrontendResult {
    u64 cycles = 0;         ///< end-to-end latency in processor cycles
    u64 bytesMoved = 0;     ///< total DRAM bytes (path reads + writes)
    u64 posmapBytes = 0;    ///< subset attributable to PosMap machinery
    u32 backendAccesses = 0; ///< tree accesses performed
    bool coldMiss = false;  ///< first-ever touch of the data block
    std::vector<u8> data;   ///< read payload (payload-carrying mode only)

    /** Clear for reuse, keeping the payload buffer's capacity. */
    void
    reset()
    {
        cycles = 0;
        bytesMoved = 0;
        posmapBytes = 0;
        backendAccesses = 0;
        coldMiss = false;
        data.clear();
    }
};

/** One request of a batched access (see Frontend::accessBatch). */
struct BatchRequest {
    Addr addr = 0;
    bool isWrite = false;
    /** Write payload (nullptr keeps zeros); not owned. */
    const std::vector<u8>* writeData = nullptr;
};

/** Abstract ORAM Frontend: services LLC miss/eviction requests. */
class Frontend {
  public:
    virtual ~Frontend() = default;

    /**
     * Service one request for data block `addr`.
     * @param addr data block address in [0, N)
     * @param is_write true for an LLC dirty eviction
     * @param write_data payload for writes (nullptr keeps zeros)
     */
    virtual FrontendResult access(Addr addr, bool is_write,
                                  const std::vector<u8>* write_data
                                  = nullptr) = 0;

    /**
     * Reusable-result variant of access(): identical outcome, but the
     * caller's `res` — including its payload buffer — is reset and
     * reused, so a warmed steady-state caller (a shard worker driving
     * one access after another) performs no per-access allocation for
     * the result. The base implementation falls back to access().
     */
    virtual void
    accessInto(FrontendResult& res, Addr addr, bool is_write,
               const std::vector<u8>* write_data = nullptr)
    {
        res = access(addr, is_write, write_data);
    }

    /**
     * Software-pipelined batch access: service `n` requests exactly as
     * `n` sequential accessInto() calls would — results, adversary
     * trace and all trusted state are bit-identical to the sequential
     * path — while overlapping request i+1's storage fetch with request
     * i's decrypt/evict compute. Before each request runs, the NEXT
     * request's path prefetch is issued via prefetchHint(), so on a
     * faulting backend (mmap) the kernel's readahead runs under the
     * current request's cipher and eviction work. Single-threaded; a
     * thrown error (e.g. IntegrityViolation) leaves requests past the
     * throwing one unprocessed.
     */
    virtual void
    accessBatch(const BatchRequest* reqs, FrontendResult* results,
                size_t n)
    {
        for (size_t i = 0; i < n; ++i) {
            if (i + 1 < n)
                prefetchHint(reqs[i + 1].addr);
            accessInto(results[i], reqs[i].addr, reqs[i].isWrite,
                       reqs[i].writeData);
        }
    }

    /**
     * Issue an advisory storage prefetch for the path an access to
     * `addr` would take under the CURRENT PosMap state, when that leaf
     * is determinable without any state change (PLB/on-chip resident).
     * A stale or impossible guess is harmless — the hint never touches
     * ORAM state, the trace, statistics or the timing plane, which is
     * what makes the batch pipeline's overlap semantics-free. Default:
     * no-op.
     */
    virtual void prefetchHint(Addr addr) { (void)addr; }

    /** Scheme name for reports (e.g. "PC_X32"). */
    virtual std::string name() const = 0;

    /** ORAM data block size in bytes (the unit access() addresses). */
    virtual u64 dataBlockBytes() const = 0;

    /** On-chip PosMap size in bits (area accounting). */
    virtual u64 onChipPosMapBits() const = 0;

    virtual const StatSet& stats() const = 0;

    /** @name Checkpoint/restore
     *
     * Serialize/reload the complete trusted frontend state: on-chip
     * PosMap, PLB, recursion metadata, RNG, and the owned Backend(s)
     * (stash + tree-storage trusted residue). Statistics counters are
     * monitoring-only and restart at zero after a restore.
     * @{ */
    virtual void saveState(CheckpointWriter& w) const = 0;
    virtual void restoreState(CheckpointReader& r) = 0;
    /** @} */
};

} // namespace froram

#endif // FRORAM_CORE_FRONTEND_HPP
