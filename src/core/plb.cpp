#include "core/plb.hpp"

namespace froram {

Plb::Plb(const PlbConfig& config) : ways_(config.ways), stats_("plb")
{
    if (config.ways == 0)
        fatal("PLB must have at least one way");
    u64 entries = config.capacityBytes / config.blockBytes;
    if (entries == 0)
        fatal("PLB smaller than one ORAM block");
    if (entries < ways_)
        entries = ways_;
    sets_ = entries / ways_;
    entries_.resize(sets_ * ways_);
}

PlbEntry*
Plb::lookup(Addr addr)
{
    PlbEntry* base = &entries_[setIndex(addr) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == addr) {
            base[w].lastUse = ++clock_;
            stats_.inc("hits");
            return &base[w];
        }
    }
    stats_.inc("misses");
    return nullptr;
}

PlbEntry*
Plb::find(Addr addr)
{
    PlbEntry* base = &entries_[setIndex(addr) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == addr) {
            base[w].lastUse = ++clock_;
            return &base[w];
        }
    }
    return nullptr;
}

const PlbEntry*
Plb::peek(Addr addr) const
{
    const PlbEntry* base = &entries_[setIndex(addr) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == addr)
            return &base[w];
    }
    return nullptr;
}

bool
Plb::probe(Addr addr) const
{
    const PlbEntry* base = &entries_[setIndex(addr) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == addr)
            return true;
    }
    return false;
}

std::optional<PlbEntry>
Plb::insert(PlbEntry entry)
{
    FRORAM_ASSERT(!probe(entry.addr), "double insert into PLB");
    entry.valid = true;
    entry.lastUse = ++clock_;
    PlbEntry* base = &entries_[setIndex(entry.addr) * ways_];
    PlbEntry* victim = &base[0];
    for (u32 w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            base[w] = std::move(entry);
            stats_.inc("fills");
            return std::nullopt;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    PlbEntry evicted = std::move(*victim);
    *victim = std::move(entry);
    stats_.inc("fills");
    stats_.inc("evictions");
    return evicted;
}

void
Plb::saveState(CheckpointWriter& w) const
{
    w.begin(ckpt::kTagPlb);
    w.putU64(sets_);
    w.putU32(ways_);
    w.putU64(clock_);
    for (const PlbEntry& e : entries_) {
        w.putU8(e.valid ? 1 : 0);
        if (!e.valid)
            continue;
        w.putU64(e.addr);
        w.putU64(e.leaf);
        w.putU64(e.counter);
        w.putU64(e.lastUse);
        e.content.saveState(w);
    }
    w.end();
}

void
Plb::restoreState(CheckpointReader& r)
{
    r.enter(ckpt::kTagPlb);
    if (r.getU64() != sets_ || r.getU32() != ways_)
        throw CheckpointError(
            "PLB geometry differs from the checkpointed one");
    clock_ = r.getU64();
    for (PlbEntry& e : entries_) {
        e = PlbEntry{};
        if (r.getU8() == 0)
            continue;
        e.valid = true;
        e.addr = r.getU64();
        e.leaf = r.getU64();
        e.counter = r.getU64();
        e.lastUse = r.getU64();
        e.content.restoreState(r);
    }
    r.exit();
}

std::vector<PlbEntry>
Plb::drain()
{
    std::vector<PlbEntry> out;
    for (auto& e : entries_) {
        if (e.valid) {
            out.push_back(std::move(e));
            e = PlbEntry{};
        }
    }
    return out;
}

} // namespace froram
