#include "core/plb.hpp"

namespace froram {

Plb::Plb(const PlbConfig& config) : ways_(config.ways), stats_("plb")
{
    if (config.ways == 0)
        fatal("PLB must have at least one way");
    u64 entries = config.capacityBytes / config.blockBytes;
    if (entries == 0)
        fatal("PLB smaller than one ORAM block");
    if (entries < ways_)
        entries = ways_;
    sets_ = entries / ways_;
    entries_.resize(sets_ * ways_);
}

PlbEntry*
Plb::lookup(Addr addr)
{
    PlbEntry* base = &entries_[setIndex(addr) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == addr) {
            base[w].lastUse = ++clock_;
            stats_.inc("hits");
            return &base[w];
        }
    }
    stats_.inc("misses");
    return nullptr;
}

PlbEntry*
Plb::find(Addr addr)
{
    PlbEntry* base = &entries_[setIndex(addr) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == addr) {
            base[w].lastUse = ++clock_;
            return &base[w];
        }
    }
    return nullptr;
}

bool
Plb::probe(Addr addr) const
{
    const PlbEntry* base = &entries_[setIndex(addr) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == addr)
            return true;
    }
    return false;
}

std::optional<PlbEntry>
Plb::insert(PlbEntry entry)
{
    FRORAM_ASSERT(!probe(entry.addr), "double insert into PLB");
    entry.valid = true;
    entry.lastUse = ++clock_;
    PlbEntry* base = &entries_[setIndex(entry.addr) * ways_];
    PlbEntry* victim = &base[0];
    for (u32 w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            base[w] = std::move(entry);
            stats_.inc("fills");
            return std::nullopt;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    PlbEntry evicted = std::move(*victim);
    *victim = std::move(entry);
    stats_.inc("fills");
    stats_.inc("evictions");
    return evicted;
}

std::vector<PlbEntry>
Plb::drain()
{
    std::vector<PlbEntry> out;
    for (auto& e : entries_) {
        if (e.valid) {
            out.push_back(std::move(e));
            e = PlbEntry{};
        }
    }
    return out;
}

} // namespace froram
