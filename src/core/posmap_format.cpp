#include "core/posmap_format.hpp"

#include <cstring>

namespace froram {
namespace {

/** Write `width`-bit little-endian bitfield at bit offset `pos`. */
void
writeBits(u8* buf, u64 pos, u32 width, u64 value)
{
    for (u32 i = 0; i < width; ++i) {
        const u64 bit = pos + i;
        const u8 mask = static_cast<u8>(1u << (bit % 8));
        if ((value >> i) & 1)
            buf[bit / 8] |= mask;
        else
            buf[bit / 8] &= static_cast<u8>(~mask);
    }
}

u64
readBits(const u8* buf, u64 pos, u32 width)
{
    u64 v = 0;
    for (u32 i = 0; i < width; ++i) {
        const u64 bit = pos + i;
        v |= static_cast<u64>((buf[bit / 8] >> (bit % 8)) & 1) << i;
    }
    return v;
}

u32
largestPow2AtMost(u64 v)
{
    FRORAM_ASSERT(v >= 1, "no entries fit");
    return static_cast<u32>(u64{1} << log2Floor(v));
}

} // namespace

void
PosMapContent::saveState(CheckpointWriter& w) const
{
    w.putU64(leaves.size());
    for (const u32 v : leaves)
        w.putU32(v);
    w.putU64(gc);
    w.putU64(ic.size());
    for (const u16 v : ic)
        w.putU32(v);
    w.putU64(flat.size());
    for (const u64 v : flat)
        w.putU64(v);
}

void
PosMapContent::restoreState(CheckpointReader& r)
{
    leaves.resize(r.getU64());
    for (auto& v : leaves)
        v = r.getU32();
    gc = r.getU64();
    ic.resize(r.getU64());
    for (auto& v : ic)
        v = static_cast<u16>(r.getU32());
    flat.resize(r.getU64());
    for (auto& v : flat)
        v = r.getU64();
}

PosMapFormat::PosMapFormat(Kind kind, u64 block_bytes, u32 beta)
    : kind_(kind), beta_(beta), blockBytes_(block_bytes)
{
    switch (kind_) {
      case Kind::Leaves:
        // 32-bit uncompressed leaves (supports L <= 31 plus the
        // uninitialized marker).
        x_ = largestPow2AtMost(block_bytes / 4);
        break;
      case Kind::FlatCounter:
        // 64-bit flat counters (Section 6.2.2: X = B/64 bits = 8 for
        // 512-bit blocks).
        x_ = largestPow2AtMost(block_bytes / 8);
        break;
      case Kind::Compressed: {
        // alpha = 64-bit GC plus X beta-bit ICs packed into B.
        if (beta_ == 0 || beta_ > 16)
            fatal("compressed PosMap beta out of range: ", beta_);
        const u64 bits = block_bytes * 8;
        if (bits <= 64)
            fatal("block too small for compressed PosMap");
        x_ = largestPow2AtMost((bits - 64) / beta_);
        break;
      }
    }
    if (x_ < 2)
        fatal("PosMap fan-out X must be >= 2; block too small");
}

PosMapContent
PosMapFormat::makeFresh() const
{
    PosMapContent c;
    switch (kind_) {
      case Kind::Leaves:
        c.leaves.assign(x_, PosMapContent::kUninitLeaf);
        break;
      case Kind::Compressed:
        c.gc = 0;
        c.ic.assign(x_, 0);
        break;
      case Kind::FlatCounter:
        c.flat.assign(x_, 0);
        break;
    }
    return c;
}

u64
PosMapFormat::currentCounter(const PosMapContent& c, u32 j) const
{
    switch (kind_) {
      case Kind::Compressed:
        return (c.gc << beta_) | c.ic[j];
      case Kind::FlatCounter:
        return c.flat[j];
      default:
        panic("Leaves format has no counters");
    }
}

bool
PosMapFormat::isCold(const PosMapContent& c, u32 j) const
{
    switch (kind_) {
      case Kind::Leaves:
        return c.leaves[j] == PosMapContent::kUninitLeaf;
      case Kind::Compressed:
      case Kind::FlatCounter:
        return currentCounter(c, j) == 0;
    }
    return false;
}

bool
PosMapFormat::incrementWouldOverflow(const PosMapContent& c, u32 j) const
{
    if (kind_ != Kind::Compressed)
        return false;
    return c.ic[j] + 1u >= (1u << beta_);
}

void
PosMapFormat::increment(PosMapContent& c, u32 j) const
{
    switch (kind_) {
      case Kind::Compressed:
        FRORAM_ASSERT(!incrementWouldOverflow(c, j),
                      "IC overflow: group remap required first");
        c.ic[j] += 1;
        break;
      case Kind::FlatCounter:
        c.flat[j] += 1;
        break;
      default:
        panic("Leaves format has no counters");
    }
}

void
PosMapFormat::bumpGroupCounter(PosMapContent& c) const
{
    FRORAM_ASSERT(kind_ == Kind::Compressed, "group counter is Compressed-only");
    c.gc += 1;
    for (auto& v : c.ic)
        v = 0;
}

u64
PosMapFormat::serializedBytes() const
{
    switch (kind_) {
      case Kind::Leaves:
        return u64{4} * x_;
      case Kind::FlatCounter:
        return u64{8} * x_;
      case Kind::Compressed:
        return 8 + divCeil(u64{beta_} * x_, 8);
    }
    return 0;
}

void
PosMapFormat::serialize(const PosMapContent& c, u8* out) const
{
    std::memset(out, 0, serializedBytes());
    switch (kind_) {
      case Kind::Leaves:
        for (u32 j = 0; j < x_; ++j)
            storeLe(out + 4 * j, c.leaves[j], 4);
        break;
      case Kind::FlatCounter:
        for (u32 j = 0; j < x_; ++j)
            storeLe(out + 8 * j, c.flat[j], 8);
        break;
      case Kind::Compressed:
        storeLe(out, c.gc, 8);
        for (u32 j = 0; j < x_; ++j)
            writeBits(out + 8, u64{j} * beta_, beta_, c.ic[j]);
        break;
    }
}

PosMapContent
PosMapFormat::deserialize(const u8* in) const
{
    PosMapContent c = makeFresh();
    switch (kind_) {
      case Kind::Leaves:
        for (u32 j = 0; j < x_; ++j)
            c.leaves[j] = static_cast<u32>(loadLe(in + 4 * j, 4));
        break;
      case Kind::FlatCounter:
        for (u32 j = 0; j < x_; ++j)
            c.flat[j] = loadLe(in + 8 * j, 8);
        break;
      case Kind::Compressed:
        c.gc = loadLe(in, 8);
        for (u32 j = 0; j < x_; ++j)
            c.ic[j] = static_cast<u16>(readBits(in + 8, u64{j} * beta_,
                                                beta_));
        break;
    }
    return c;
}

} // namespace froram
