/**
 * @file
 * Phantom-style Frontend (Section 7.1.6 comparison): the entire PosMap is
 * held on-chip (no recursion), which is only feasible with large ORAM
 * blocks (Phantom: 4 KB blocks, N = 2^20, L = 19, so a ~2.5 MB on-chip
 * PosMap). Includes Phantom's 32 KB block buffer with CLOCK eviction
 * (Section 5.7 of [21]), which coalesces accesses that fall into the same
 * large block.
 */
#ifndef FRORAM_CORE_FLAT_FRONTEND_HPP
#define FRORAM_CORE_FLAT_FRONTEND_HPP

#include <memory>
#include <vector>

#include "core/frontend.hpp"
#include "oram/backend.hpp" // StorageMode via oram/tree_storage.hpp
#include "util/rng.hpp"

namespace froram {

/** Configuration of the flat (non-recursive) Frontend. */
struct FlatFrontendConfig {
    u64 numBlocks = u64{1} << 20; ///< Phantom: 2^20 4 KB blocks = 4 GB
    u64 blockBytes = 4096;
    u32 z = 4;
    u32 forceLevels = 0;          ///< nonzero overrides L (Phantom: 19)
    u64 blockBufferBytes = 32 * 1024; ///< 0 disables the block buffer
    StorageMode storage = StorageMode::Meta;
    SeedScheme seedScheme = SeedScheme::GlobalCounter;
    LatencyModel latency{};
    u64 rngSeed = 0x5eed;
    u32 stashCapacity = 200;
    /** Bucket discipline for the data tree (Path or Ring). */
    BucketSchemeKind bucketScheme = BucketSchemeKind::Path;
    u32 ringS = 0; ///< Ring dummy slots (0 = normalizeRing default)
    u32 ringA = 0; ///< Ring eviction rate (0 = normalizeRing default)
};

/** Whole-PosMap-on-chip Frontend with an optional CLOCK block buffer. */
class FlatFrontend : public Frontend {
  public:
    FlatFrontend(const FlatFrontendConfig& config,
                 const StreamCipher* cipher, StorageBackend* store,
                 TraceSink trace = nullptr);

    std::string name() const override { return "Phantom"; }
    u64 dataBlockBytes() const override { return config_.blockBytes; }
    u64 onChipPosMapBits() const override;
    const StatSet& stats() const override { return stats_; }

    PathOramBackend& backend() { return *backend_; }
    const OramParams& params() const { return params_; }

    void saveState(CheckpointWriter& w) const override;
    void restoreState(CheckpointReader& r) override;

  protected:
    void serviceAccess(AccessResult& res,
                       const AccessRequest& req) override;

    /** Submit-pipeline hint: the whole PosMap is on-chip, so a miss's
     *  exact path is known up front — prefetch it. */
    void serviceHint(Addr addr) override;

  private:
    struct BufferSlot {
        bool valid = false;
        bool ref = false;   // CLOCK reference bit
        bool dirty = false;
        Addr addr = kDummyAddr;
        std::vector<u8> data;
    };

    /** Linear CLOCK sweep to pick a victim slot. */
    u32 clockVictim();

    /** One real ORAM access (read or write) for `addr`. */
    BackendResult oramAccess(Addr addr, bool is_write,
                             const std::vector<u8>* write_data,
                             FrontendResult& res);

    FlatFrontendConfig config_;
    OramParams params_;
    std::unique_ptr<PathOramBackend> backend_;
    std::vector<u64> posmap_; // leaf per block; ~0 = uninitialized
    std::vector<BufferSlot> buffer_;
    u32 clockHand_ = 0;
    Xoshiro256 rng_;
    StatSet stats_;

    static constexpr u64 kUninit = ~u64{0};
};

} // namespace froram

#endif // FRORAM_CORE_FLAT_FRONTEND_HPP
