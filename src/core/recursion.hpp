/**
 * @file
 * Recursive PosMap geometry (Section 3.2).
 *
 * A Recursive ORAM with fan-out X stores the PosMap for level i-1 in
 * blocks of level i; the on-chip PosMap holds one entry per block of the
 * topmost level H-1. This header computes the level sizes and the unified
 * address space used by the PLB design (Section 4.2.1): the paper tags
 * block a_i of recursion level i as "i || a_i"; we realize the same
 * disjoint address space with per-level base offsets, which keeps
 * addresses compact.
 */
#ifndef FRORAM_CORE_RECURSION_HPP
#define FRORAM_CORE_RECURSION_HPP

#include <vector>

#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

/** Level sizes and unified addressing for one recursion. */
struct RecursionGeometry {
    u32 h = 1;          ///< H: number of ORAMs including the Data ORAM
    u32 x = 8;          ///< X: PosMap entries per PosMap block
    u32 xBits = 3;      ///< log2(X)
    std::vector<u64> levelBlocks; ///< blocks per level, [0] = N data blocks
    std::vector<u64> base;        ///< unified-address base per level
    u64 totalBlocks = 0;          ///< all levels combined
    u64 onChipEntries = 0;        ///< entries in the on-chip PosMap

    /**
     * Build the recursion: add PosMap levels until the on-chip PosMap
     * would have at most `max_onchip_entries` entries.
     */
    static RecursionGeometry
    compute(u64 num_data_blocks, u32 x, u64 max_onchip_entries)
    {
        if (!isPow2(x))
            fatal("PosMap fan-out X must be a power of two, got ", x);
        if (max_onchip_entries == 0)
            fatal("on-chip PosMap must hold at least one entry");
        RecursionGeometry g;
        g.x = x;
        g.xBits = log2Floor(x);
        g.levelBlocks.push_back(num_data_blocks);
        while (g.levelBlocks.back() > max_onchip_entries) {
            g.levelBlocks.push_back(divCeil(g.levelBlocks.back(), x));
        }
        g.h = static_cast<u32>(g.levelBlocks.size());
        g.base.resize(g.h);
        u64 acc = 0;
        for (u32 i = 0; i < g.h; ++i) {
            g.base[i] = acc;
            acc += g.levelBlocks[i];
        }
        g.totalBlocks = acc;
        g.onChipEntries = g.levelBlocks.back();
        return g;
    }

    /** Address of the level-i block covering data block a0 (a_i = a0/X^i). */
    u64
    levelAddr(u32 level, u64 a0) const
    {
        return a0 >> (xBits * level);
    }

    /** Unified address of the level-i block covering data block a0. */
    u64
    unifiedAddr(u32 level, u64 a0) const
    {
        return base[level] + levelAddr(level, a0);
    }

    /** Index of level-(i-1) child a_{i-1} within its level-i parent. */
    u64
    entryIndex(u32 parent_level, u64 a0) const
    {
        FRORAM_ASSERT(parent_level >= 1, "data level has no entries");
        return levelAddr(parent_level - 1, a0) & (x - 1);
    }
};

} // namespace froram

#endif // FRORAM_CORE_RECURSION_HPP
