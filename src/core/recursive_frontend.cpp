#include "core/recursive_frontend.hpp"

#include <cstring>
#include <map>

namespace froram {
namespace {

u64
oracleKey(u32 tree, Addr addr)
{
    return (static_cast<u64>(tree) << 48) | addr;
}

} // namespace

RecursiveFrontend::RecursiveFrontend(const RecursiveFrontendConfig& config,
                                     const StreamCipher* cipher,
                                     StorageBackend* store, TraceSink trace)
    : config_(config),
      format_(PosMapFormat::Kind::Leaves, config.posmapBlockBytes),
      rng_(config.rngSeed), stats_("frontend")
{
    if (config_.numBlocks == 0)
        fatal("RecursiveFrontend needs at least one data block");
    geo_ = RecursionGeometry::compute(config_.numBlocks, format_.x(),
                                      config_.maxOnChipEntries);

    u64 dram_base = 0;
    for (u32 i = 0; i < geo_.h; ++i) {
        OramParams p;
        p.numBlocks = geo_.levelBlocks[i];
        p.blockBytes = i == 0 ? config_.blockBytes
                              : config_.posmapBlockBytes;
        p.z = config_.z;
        p.stashCapacity = config_.stashCapacity;
        const u32 lg_n = log2Ceil(std::max<u64>(p.numBlocks, 2));
        const u32 lg_z = log2Floor(p.z);
        p.levels = lg_n > lg_z ? lg_n - lg_z : 1;
        if (p.levels > 31)
            fatal("tree too deep for 32-bit PosMap leaves");
        p.bucketScheme = config_.bucketScheme;
        p.ringS = config_.ringS;
        p.ringA = config_.ringA;
        p.normalizeRing();
        treeParams_.push_back(p);

        // Tree index as pad domain: the recursion hierarchy shares one
        // cipher, and per-tree seed registers would otherwise collide.
        std::unique_ptr<TreeStorage> storage = makeTreeStorage(
            config_.storage, p, cipher, config_.seedScheme, store, i);

        auto layout = std::make_unique<SubtreeLayout>(
            p.levels, p.bucketPhysBytes(), layoutUnitBytes(store));
        layout->setBaseAddress(dram_base);
        dram_base += layout->footprintBytes();

        BackendConfig bc;
        bc.params = p;
        bc.treeId = i;
        bc.traceSink = trace;
        bc.schemeSeed = config_.rngSeed ^ 0x52494e47ULL ^ (u64{i} << 32);
        trees_.push_back(std::make_unique<PathOramBackend>(
            bc, std::move(storage), std::move(layout), store));
    }

    onChip_.assign(geo_.onChipEntries, kUninit);
}

std::string
RecursiveFrontend::name() const
{
    return "R_X" + std::to_string(format_.x());
}

u64
RecursiveFrontend::onChipPosMapBits() const
{
    return geo_.onChipEntries * treeParams_.back().levels;
}

Leaf
RecursiveFrontend::randomLeafFor(u32 tree) const
{
    return rng_.below(treeParams_[tree].numLeaves());
}

u64
RecursiveFrontend::fullAccessBytes() const
{
    u64 total = 0;
    for (const auto& p : treeParams_)
        total += 2 * p.pathBytes();
    return total;
}

void
RecursiveFrontend::saveState(CheckpointWriter& w) const
{
    w.begin(ckpt::kTagFrontend);
    w.putU32(2); // frontend kind: recursive
    w.begin(ckpt::kTagPosMap);
    w.putU64(onChip_.size());
    for (const u64 v : onChip_)
        w.putU64(v);
    w.end();
    w.begin(ckpt::kTagRng);
    u64 rng[4];
    rng_.saveState(rng);
    for (const u64 v : rng)
        w.putU64(v);
    w.end();
    w.begin(ckpt::kTagOracle);
    const std::map<u64, const PosMapContent*> sorted = [&] {
        std::map<u64, const PosMapContent*> m;
        for (const auto& [key, content] : oracle_)
            m.emplace(key, &content);
        return m;
    }();
    w.putU64(sorted.size());
    for (const auto& [key, content] : sorted) {
        w.putU64(key);
        content->saveState(w);
    }
    w.end();
    w.putU32(geo_.h);
    for (const auto& tree : trees_)
        tree->saveState(w);
    w.end();
}

void
RecursiveFrontend::restoreState(CheckpointReader& r)
{
    r.enter(ckpt::kTagFrontend);
    if (r.getU32() != 2)
        throw CheckpointError("snapshot holds a different frontend kind");
    r.enter(ckpt::kTagPosMap);
    if (r.getU64() != onChip_.size())
        throw CheckpointError(
            "on-chip PosMap size differs from the checkpointed one");
    for (u64& v : onChip_)
        v = r.getU64();
    r.exit();
    r.enter(ckpt::kTagRng);
    u64 rng[4];
    for (u64& v : rng)
        v = r.getU64();
    rng_.restoreState(rng);
    r.exit();
    r.enter(ckpt::kTagOracle);
    oracle_.clear();
    const u64 oracle_count = r.getU64();
    for (u64 i = 0; i < oracle_count; ++i) {
        const u64 key = r.getU64();
        oracle_[key].restoreState(r);
    }
    r.exit();
    if (r.getU32() != geo_.h)
        throw CheckpointError(
            "recursion depth differs from the checkpointed one");
    for (auto& tree : trees_)
        tree->restoreState(r);
    r.exit();
}

void
RecursiveFrontend::serviceHint(Addr a0)
{
    if (!trees_[geo_.h - 1]->prefetchUseful() || a0 >= config_.numBlocks)
        return;
    // The walk starts at ORam_{H-1}, whose leaf sits in the on-chip
    // PosMap: that first path is exactly determined by current state
    // (deeper trees' leaves only materialize during the walk).
    const u64 top_idx = geo_.levelAddr(geo_.h - 1, a0);
    if (top_idx < onChip_.size() && onChip_[top_idx] != kUninit)
        trees_[geo_.h - 1]->prefetchPath(onChip_[top_idx]);
}

void
RecursiveFrontend::serviceAccess(AccessResult& res, const AccessRequest& req)
{
    const Addr a0 = req.addr;
    const bool is_write = req.isWrite;
    const std::vector<u8>* const write_data = req.writeData;
    FRORAM_ASSERT(a0 < config_.numBlocks, "data address out of range");
    res.reset();
    stats_.inc("accesses");
    res.cycles += config_.latency.frontendCycles;

    auto account = [&](const BackendResult& r, bool posmap) {
        res.bytesMoved += r.bytesMoved;
        if (posmap)
            res.posmapBytes += r.bytesMoved;
        res.backendAccesses += 1;
        res.cycles += config_.latency.backendCycles +
                      config_.latency.aesPipelineCycles +
                      config_.latency.psToCycles(r.dramPs);
    };

    // On-chip PosMap: leaf of the top-level block (page-table root).
    const u64 top_idx = geo_.levelAddr(geo_.h - 1, a0);
    FRORAM_ASSERT(top_idx < onChip_.size(), "on-chip index out of range");
    bool cold = onChip_[top_idx] == kUninit;
    Leaf use = cold ? randomLeafFor(geo_.h - 1) : onChip_[top_idx];
    Leaf fresh = randomLeafFor(geo_.h - 1);
    onChip_[top_idx] = fresh;

    // Page-table walk: ORam_{H-1} .. ORam_1, extracting and remapping the
    // next level's leaf at each step. The entry update happens in the
    // Step-4 transform, while the PosMap block is still stash-resident.
    for (u32 i = geo_.h - 1; i >= 1; --i) {
        const Addr ai = geo_.levelAddr(i, a0);
        const u32 j = static_cast<u32>(geo_.entryIndex(i, a0));
        const Leaf child_fresh = randomLeafFor(i - 1);
        Leaf child_use = kNoLeaf;
        bool child_cold = false;
        const bool carries = config_.storage == StorageMode::Encrypted;

        PathOramBackend::BlockTransform xform = [&](Block& blk,
                                                    bool found) {
            PosMapContent content;
            if (carries) {
                content = found
                              ? format_.deserialize(blk.data.data())
                              : format_.makeFresh();
            } else {
                auto it = oracle_.find(oracleKey(i, ai));
                content = it != oracle_.end() ? it->second
                                              : format_.makeFresh();
            }
            child_cold =
                content.leaves[j] == PosMapContent::kUninitLeaf;
            child_use = child_cold ? randomLeafFor(i - 1)
                                   : content.leaves[j];
            content.leaves[j] = static_cast<u32>(child_fresh);
            if (carries) {
                blk.data.assign(treeParams_[i].storedBlockBytes(), 0);
                format_.serialize(content, blk.data.data());
            } else {
                oracle_[oracleKey(i, ai)] = std::move(content);
            }
        };

        BackendResult r =
            trees_[i]->access(Op::Read, ai, use, fresh, nullptr, xform);
        account(r, /*posmap=*/true);

        use = child_use;
        fresh = child_fresh;
        cold = child_cold;
    }

    // Data ORAM access.
    BackendResult r = trees_[0]->access(
        is_write ? Op::Write : Op::Read, a0, use, fresh, write_data);
    account(r, /*posmap=*/false);
    res.coldMiss = cold;
    if (cold)
        stats_.inc("coldMisses");
    if (config_.storage == StorageMode::Encrypted) {
        res.data.assign(
            r.block.data.begin(),
            r.block.data.begin() + static_cast<long>(config_.blockBytes));
        if (is_write && write_data != nullptr) {
            res.data = *write_data;
            res.data.resize(config_.blockBytes, 0);
        }
    }

    stats_.inc("bytesMoved", res.bytesMoved);
    stats_.inc("posmapBytes", res.posmapBytes);
    stats_.inc("backendAccesses", res.backendAccesses);
    stats_.inc("cycles", res.cycles);
}

} // namespace froram
