/**
 * @file
 * Transient-fault-absorbing StorageBackend decorator.
 *
 * Retries raw data-plane operations that fail with a *transient*
 * StorageError, under a bounded-attempts / exponential-backoff /
 * deterministic-jitter policy (RetryPolicy). This is the ONLY safe
 * place for retry in the stack: a backend read/write/gatherView/sync
 * carries no trusted ORAM state, so reissuing it is trivially
 * idempotent — whereas the ORAM engines remap the PosMap entry *before*
 * the path access, so replaying a faulted access at that level would
 * fetch the freshly-assigned (still empty) path and return wrong
 * values. Persistent errors, and transient ones that exhaust the
 * budget, are rethrown and fail-stop the owning OramSystem.
 *
 * Jitter is derived from a seeded counter (splitmix64), never from
 * wall-clock or global randomness, so chaos runs are reproducible.
 */
#ifndef FRORAM_MEM_RETRYING_BACKEND_HPP
#define FRORAM_MEM_RETRYING_BACKEND_HPP

#include <atomic>
#include <memory>

#include "mem/storage_backend.hpp"

namespace froram {

/** StorageBackend decorator applying a RetryPolicy (see file doc). */
class RetryingBackend : public StorageBackend {
  public:
    RetryingBackend(std::unique_ptr<StorageBackend> inner,
                    const RetryPolicy& policy);

    StorageBackendKind kind() const override { return inner_->kind(); }

    void read(u64 addr, u8* dst, u64 len) override;
    void write(u64 addr, const u8* src, u64 len) override;
    u8* view(u64 addr, u64 len) override
    {
        return inner_->view(addr, len);
    }
    u32 gatherView(const ByteSpan* spans, u32 n, u8** views) override;
    void prefetch(u64 addr, u64 len) override
    {
        inner_->prefetch(addr, len); // advisory: never throws, no retry
    }
    bool prefetchable() const override { return inner_->prefetchable(); }
    void sync() override;
    bool persistent() const override { return inner_->persistent(); }
    u64 bytesTouched() const override { return inner_->bytesTouched(); }
    u64 transientFaultsRetried() const override
    {
        return retries_.load(std::memory_order_relaxed);
    }

    bool timed() const override { return inner_->timed(); }
    u64 accessBatch(const std::vector<DramRequest>& requests) override
    {
        return inner_->accessBatch(requests);
    }
    u64 streamBatch(const ByteSpan* spans, u32 n, bool is_write) override;
    u64 burstBytes() const override { return inner_->burstBytes(); }
    u64 layoutUnitBytes() const override
    {
        return inner_->layoutUnitBytes();
    }
    DramModel* dramModel() override { return inner_->dramModel(); }

    u64 allocRegion(u64 bytes) override
    {
        return inner_->allocRegion(bytes);
    }
    u64 allocatedBytes() const override
    {
        return inner_->allocatedBytes();
    }

    StorageBackend& inner() { return *inner_; }
    const RetryPolicy& policy() const { return policy_; }

  private:
    /** Sleep before reissue attempt `attempt` (1-based). */
    void backoff(u32 attempt);

    /** Run `fn` under the retry policy; rethrows what it cannot absorb. */
    template <typename Fn>
    auto
    withRetry(Fn&& fn) -> decltype(fn())
    {
        for (u32 attempt = 1;; ++attempt) {
            try {
                return fn();
            } catch (const StorageError& e) {
                if (!e.transient() || attempt >= policy_.maxAttempts)
                    throw;
                retries_.fetch_add(1, std::memory_order_relaxed);
                backoff(attempt);
            }
        }
    }

    std::unique_ptr<StorageBackend> inner_;
    RetryPolicy policy_;
    std::atomic<u64> retries_{0};
    std::atomic<u64> jitterCounter_{0};
};

} // namespace froram

#endif // FRORAM_MEM_RETRYING_BACKEND_HPP
