/**
 * @file
 * Persistent storage backend: file-backed mmap with msync durability.
 */
#ifndef FRORAM_MEM_MMAP_FILE_BACKEND_HPP
#define FRORAM_MEM_MMAP_FILE_BACKEND_HPP

#include <string>
#include <vector>

#include "mem/storage_backend.hpp"

namespace froram {

/**
 * A byte store mapped from a sparse file on disk.
 *
 * The file is created (or reopened) at construction and truncated up to
 * `file_bytes` (plus one superblock page); pages materialize on first
 * touch, so a large capacity costs disk only for buckets actually
 * written. sync() issues a synchronous msync, making everything written
 * so far durable. Reopening with `reset = false` sees the previous
 * run's bytes — the seam the durable oblivious-KV scenario builds on.
 *
 * The first page of the file is a superblock recording the format
 * version and the region-allocation log (the end offset of every
 * allocRegion() call). Region extents are otherwise implied by the
 * deterministic allocation order, so before the superblock existed a
 * reopen under a *different* ORAM configuration would place trees at
 * different offsets and silently clobber (or misread) the persisted
 * regions. Now every reopened allocation is replayed against the log
 * and any mismatch — or a file that is not a froram backend at all —
 * raises a typed FatalError before the first bucket access.
 */
class MmapFileBackend : public StorageBackend {
  public:
    /**
     * @param path backing file, created if absent
     * @param file_bytes data-plane capacity; every allocRegion must fit
     *        under it (the file itself is one superblock page larger)
     * @param reset discard existing contents instead of reopening
     */
    MmapFileBackend(const std::string& path, u64 file_bytes, bool reset);
    ~MmapFileBackend() override;

    MmapFileBackend(const MmapFileBackend&) = delete;
    MmapFileBackend& operator=(const MmapFileBackend&) = delete;

    StorageBackendKind kind() const override
    {
        return StorageBackendKind::MmapFile;
    }

    void read(u64 addr, u8* dst, u64 len) override;
    void write(u64 addr, const u8* src, u64 len) override;
    u8* view(u64 addr, u64 len) override;
    /** madvise(MADV_WILLNEED) on the covering pages: the kernel starts
     *  readahead so upcoming path reads fault less (no-op on failure —
     *  the advice is strictly optional). */
    void prefetch(u64 addr, u64 len) override;
    bool prefetchable() const override { return true; }
    /** Synchronous msync of the whole mapping; throws StorageError when
     *  the kernel reports the flush failed (transient for
     *  EINTR/EAGAIN/EBUSY, persistent otherwise). */
    void sync() override;
    bool persistent() const override { return true; }

    /** Disk blocks actually allocated to the sparse file, in bytes. */
    u64 bytesTouched() const override;

    const std::string& path() const { return path_; }
    u64 capacityBytes() const { return capacity_; }

    /** Region end offsets recorded in the superblock (tests). */
    const std::vector<u64>& recordedRegions() const { return recorded_; }

  protected:
    void onRegionAllocated(u64 total_bytes) override;

  private:
    static constexpr u64 kSuperblockBytes = 4096;
    static constexpr u64 kSuperMagic = 0x314D4D41524F5246ULL; // "FRORAMM1"
    static constexpr u32 kSuperVersion = 1;
    static constexpr u64 kMaxRegions = (kSuperblockBytes - 24) / 8;

    /** Mapped bytes backing data-plane address `addr`. */
    u8* data(u64 addr) { return map_ + kSuperblockBytes + addr; }

    void writeSuperblock();
    void loadSuperblock();

    std::string path_;
    u64 capacity_ = 0; ///< data-plane capacity (file is one page larger)
    int fd_ = -1;
    u8* map_ = nullptr;
    std::vector<u64> recorded_; ///< superblock region-end log
    u64 replayIdx_ = 0;         ///< next recorded entry to validate

    /** Recently advised ranges (see prefetch): +1-encoded base page
     *  and the end of the extent advised from it. */
    static constexpr u64 kAdvisedSlots = 256;
    u64 advisedBase_[kAdvisedSlots] = {};
    u64 advisedEnd_[kAdvisedSlots] = {};
};

} // namespace froram

#endif // FRORAM_MEM_MMAP_FILE_BACKEND_HPP
