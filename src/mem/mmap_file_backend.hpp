/**
 * @file
 * Persistent storage backend: file-backed mmap with msync durability.
 */
#ifndef FRORAM_MEM_MMAP_FILE_BACKEND_HPP
#define FRORAM_MEM_MMAP_FILE_BACKEND_HPP

#include <string>

#include "mem/storage_backend.hpp"

namespace froram {

/**
 * A byte store mapped from a sparse file on disk.
 *
 * The file is created (or reopened) at construction and truncated up to
 * `file_bytes`; pages materialize on first touch, so a large capacity
 * costs disk only for buckets actually written. sync() issues a
 * synchronous msync, making everything written so far durable. Reopening
 * with `reset = false` sees the previous run's bytes — the seam the
 * durable oblivious-KV scenario builds on.
 */
class MmapFileBackend : public StorageBackend {
  public:
    /**
     * @param path backing file, created if absent
     * @param file_bytes capacity; every allocRegion must fit under it
     * @param reset discard existing contents instead of reopening
     */
    MmapFileBackend(const std::string& path, u64 file_bytes, bool reset);
    ~MmapFileBackend() override;

    MmapFileBackend(const MmapFileBackend&) = delete;
    MmapFileBackend& operator=(const MmapFileBackend&) = delete;

    StorageBackendKind kind() const override
    {
        return StorageBackendKind::MmapFile;
    }

    void read(u64 addr, u8* dst, u64 len) override;
    void write(u64 addr, const u8* src, u64 len) override;
    u8* view(u64 addr, u64 len) override;
    void sync() override;
    bool persistent() const override { return true; }

    /** Disk blocks actually allocated to the sparse file, in bytes. */
    u64 bytesTouched() const override;

    const std::string& path() const { return path_; }
    u64 capacityBytes() const { return capacity_; }

  protected:
    void onRegionAllocated(u64 total_bytes) override;

  private:
    std::string path_;
    u64 capacity_ = 0;
    int fd_ = -1;
    u8* map_ = nullptr;
};

} // namespace froram

#endif // FRORAM_MEM_MMAP_FILE_BACKEND_HPP
